// Serial-equivalence suite for the parallel hot-path engine (DESIGN.md §S1):
// every parallel kernel — SpMV, element-wise vector ops, CG/BiCGSTAB solves,
// 4RM/2RM assembly, and the SA trajectory itself — must reproduce the serial
// result at any thread count. The suite is parameterized over {1, 2, 4, 8}
// workers; problem sizes sit above the fan-out grains so the parallel paths
// actually execute.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/sa.hpp"
#include "sparse/parallel.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/solvers.hpp"
#include "sparse/vector_ops.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"

namespace lcn {
namespace {

// 2D 5-point Laplacian on a g x g grid: SPD, and with g = 140 its ~97k
// nonzeros sit well above kSpmvGrain so SpMV fans out.
sparse::CsrMatrix laplacian2d(std::size_t g) {
  const std::size_t n = g * g;
  sparse::TripletList trip(n, n);
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) {
      const std::size_t i = r * g + c;
      trip.add(i, i, 4.0);
      if (r > 0) trip.add(i, i - g, -1.0);
      if (r + 1 < g) trip.add(i, i + g, -1.0);
      if (c > 0) trip.add(i, i - 1, -1.0);
      if (c + 1 < g) trip.add(i, i + 1, -1.0);
    }
  }
  return trip.to_csr();
}

sparse::Vector varied_vector(std::size_t n) {
  sparse::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.37 * static_cast<double>(i)) +
           1e-3 * static_cast<double>(i % 101);
  }
  return x;
}

void expect_vectors_equal(const sparse::Vector& expected,
                          const sparse::Vector& actual, double rel_tol) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double tol = rel_tol * std::max(1.0, std::abs(expected[i]));
    ASSERT_NEAR(expected[i], actual[i], tol) << "index " << i;
  }
}

CoolingProblem assembly_problem() {
  CoolingProblem problem;
  problem.grid = Grid2D(33, 33, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.push_back(
      synthesize_power_map(problem.grid, 4.4, 11));
  problem.source_power.push_back(
      synthesize_power_map(problem.grid, 3.6, 12));
  return problem;
}

std::vector<CoolingNetwork> tree_networks(const CoolingProblem& problem) {
  return std::vector<CoolingNetwork>(
      static_cast<std::size_t>(problem.stack.channel_count()),
      make_tree_network(problem.grid,
                        make_uniform_layout(problem.grid, 10, 20)));
}

void expect_assemblies_equal(const AssembledThermal& expected,
                             const AssembledThermal& actual) {
  ASSERT_EQ(expected.matrix.rows(), actual.matrix.rows());
  ASSERT_EQ(expected.matrix.row_ptr(), actual.matrix.row_ptr());
  ASSERT_EQ(expected.matrix.col_idx(), actual.matrix.col_idx());
  const auto& ev = expected.matrix.values();
  const auto& av = actual.matrix.values();
  ASSERT_EQ(ev.size(), av.size());
  for (std::size_t i = 0; i < ev.size(); ++i) {
    ASSERT_NEAR(ev[i], av[i], 1e-10 * std::max(1.0, std::abs(ev[i])))
        << "nnz " << i;
  }
  expect_vectors_equal(expected.rhs, actual.rhs, 1e-10);
  expect_vectors_equal(expected.capacitance, actual.capacitance, 1e-10);
}

class ParallelEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_global_pool_threads(GetParam()); }
  static void TearDownTestSuite() { set_global_pool_threads(0); }
};

TEST_P(ParallelEquivalence, PoolHasRequestedWidth) {
  EXPECT_EQ(global_pool_threads(), GetParam());
}

TEST_P(ParallelEquivalence, SpmvMatchesSerialReference) {
  const sparse::CsrMatrix a = laplacian2d(140);
  ASSERT_GE(a.nnz(), sparse::kSpmvGrain);  // the parallel path must engage
  const sparse::Vector x = varied_vector(a.cols());
  sparse::Vector reference;
  a.multiply_serial(x, reference);
  sparse::Vector y;
  a.multiply(x, y);
  expect_vectors_equal(reference, y, 1e-10);
}

TEST_P(ParallelEquivalence, SpmvInsidePoolTaskStaysCorrect) {
  // Nested case: SpMV called from inside a parallel_for task must fall back
  // to the serial kernel (ThreadPool::in_task guard) and stay correct.
  const sparse::CsrMatrix a = laplacian2d(140);
  const sparse::Vector x = varied_vector(a.cols());
  sparse::Vector reference;
  a.multiply_serial(x, reference);
  std::vector<sparse::Vector> results(4);
  global_pool().parallel_for(results.size(), [&](std::size_t k) {
    a.multiply(x, results[k]);
  });
  for (const sparse::Vector& y : results) {
    expect_vectors_equal(reference, y, 0.0);
  }
}

TEST_P(ParallelEquivalence, ElementWiseOpsMatchSerialReference) {
  const std::size_t n = 100000;
  ASSERT_GE(n, sparse::kVectorGrain);
  const sparse::Vector x = varied_vector(n);
  sparse::Vector y = varied_vector(n);
  for (std::size_t i = 0; i < n; ++i) y[i] += 0.25;

  sparse::Vector axpy_ref = y;
  for (std::size_t i = 0; i < n; ++i) axpy_ref[i] += 1.7 * x[i];
  sparse::Vector axpy_out = y;
  sparse::axpy(1.7, x, axpy_out);
  expect_vectors_equal(axpy_ref, axpy_out, 1e-10);

  sparse::Vector xpby_ref = y;
  for (std::size_t i = 0; i < n; ++i) xpby_ref[i] = x[i] - 0.6 * xpby_ref[i];
  sparse::Vector xpby_out = y;
  sparse::xpby(x, -0.6, xpby_out);
  expect_vectors_equal(xpby_ref, xpby_out, 1e-10);

  sparse::Vector scale_ref = y;
  for (std::size_t i = 0; i < n; ++i) scale_ref[i] *= 3.25;
  sparse::Vector scale_out = y;
  sparse::scale(3.25, scale_out);
  expect_vectors_equal(scale_ref, scale_out, 1e-10);
}

TEST_P(ParallelEquivalence, CgSolveMatchesSingleThreadRun) {
  const sparse::CsrMatrix a = laplacian2d(140);
  const sparse::Vector b = varied_vector(a.rows());
  const sparse::JacobiPreconditioner jacobi(a);

  set_global_pool_threads(1);
  sparse::Vector x_serial(a.rows(), 0.0);
  const sparse::SolveReport serial = cg_solve(a, b, x_serial, jacobi);
  ASSERT_TRUE(serial.converged);

  set_global_pool_threads(GetParam());
  sparse::Vector x_parallel(a.rows(), 0.0);
  const sparse::SolveReport parallel = cg_solve(a, b, x_parallel, jacobi);
  ASSERT_TRUE(parallel.converged);

  // The kernels are bit-identical, so the iteration trajectory is too.
  EXPECT_EQ(serial.iterations, parallel.iterations);
  expect_vectors_equal(x_serial, x_parallel, 1e-10);
}

TEST_P(ParallelEquivalence, BicgstabSolveMatchesSingleThreadRun) {
  // Nonsymmetric system: a 2RM thermal matrix with advection terms.
  const CoolingProblem problem = assembly_problem();
  const Thermal2RM sim(problem, tree_networks(problem), 2);
  const AssembledThermal system = sim.assemble(4000.0);
  const sparse::Ilu0Preconditioner ilu(system.matrix);

  set_global_pool_threads(1);
  sparse::Vector x_serial(system.matrix.rows(), 0.0);
  const sparse::SolveReport serial =
      bicgstab_solve(system.matrix, system.rhs, x_serial, ilu);
  ASSERT_TRUE(serial.converged);

  set_global_pool_threads(GetParam());
  sparse::Vector x_parallel(system.matrix.rows(), 0.0);
  const sparse::SolveReport parallel =
      bicgstab_solve(system.matrix, system.rhs, x_parallel, ilu);
  ASSERT_TRUE(parallel.converged);

  EXPECT_EQ(serial.iterations, parallel.iterations);
  expect_vectors_equal(x_serial, x_parallel, 1e-10);
}

TEST_P(ParallelEquivalence, Assembly4RmMatchesSingleThreadRun) {
  const CoolingProblem problem = assembly_problem();
  const Thermal4RM sim(problem, tree_networks(problem));

  set_global_pool_threads(1);
  const AssembledThermal reference = sim.assemble(3000.0);
  set_global_pool_threads(GetParam());
  const AssembledThermal assembled = sim.assemble(3000.0);
  expect_assemblies_equal(reference, assembled);
}

TEST_P(ParallelEquivalence, Assembly2RmMatchesSingleThreadRun) {
  const CoolingProblem problem = assembly_problem();
  const Thermal2RM sim(problem, tree_networks(problem), 4);

  set_global_pool_threads(1);
  const AssembledThermal reference = sim.assemble(3000.0);
  set_global_pool_threads(GetParam());
  const AssembledThermal assembled = sim.assemble(3000.0);
  expect_assemblies_equal(reference, assembled);
}

struct SaRunResult {
  std::uint64_t network_hash = 0;
  double score = 0.0;
  double p_sys = 0.0;
  std::size_t evaluations = 0;
};

SaRunResult run_small_sa() {
  BenchmarkCase bench;
  bench.id = 98;
  bench.name = "parallel-equivalence";
  bench.problem.grid = Grid2D(31, 31, 100e-6);
  bench.problem.stack = make_interlayer_stack(2, 200e-6);
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 4.4, 21));
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 3.6, 22));
  bench.constraints.delta_t_max = 12.0;
  bench.constraints.t_max = 400.0;

  TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower, 5);
  std::vector<SaStage> stages;
  stages.push_back(
      {"equiv", 4, 2, 3, 4, SimConfig{ThermalModelKind::k2RM, 3}, false, 1});
  const DesignOutcome outcome = opt.run(stages);
  SaRunResult result;
  result.network_hash = outcome.network.content_hash();
  result.score = outcome.eval.score;
  result.p_sys = outcome.eval.p_sys;
  result.evaluations = outcome.evaluations;
  return result;
}

TEST_P(ParallelEquivalence, SaTrajectoryIndependentOfThreadCount) {
  // Per-neighbor rng streams + bit-identical kernels make the whole SA
  // trajectory — accepted moves, final network, evaluation count — a pure
  // function of the seed, regardless of how many threads score the pool.
  static const SaRunResult reference = [] {
    set_global_pool_threads(1);
    return run_small_sa();
  }();
  set_global_pool_threads(GetParam());
  const SaRunResult run = run_small_sa();
  EXPECT_EQ(reference.network_hash, run.network_hash);
  EXPECT_EQ(reference.evaluations, run.evaluations);
  EXPECT_DOUBLE_EQ(reference.score, run.score);
  EXPECT_DOUBLE_EQ(reference.p_sys, run.p_sys);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lcn
