// Physics property tests probing model structure beyond global balances:
// 2RM complete-conducting-path behaviour, geometric sensitivities of the
// channel model, and scaling laws of the flow network.
#include <gtest/gtest.h>

#include "flow/flow_solver.hpp"
#include "network/generators.hpp"
#include "thermal/model_2rm.hpp"

namespace lcn {
namespace {

constexpr double kPitch = 100e-6;

CoolingProblem problem_with(const Grid2D& grid, double watts) {
  CoolingProblem problem;
  problem.grid = grid;
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.emplace_back(grid, watts / 2);
  problem.source_power.emplace_back(grid, watts / 2);
  return problem;
}

TEST(LaneConduction, LiquidRowBlocksInPlaneHeatSpreading) {
  // Two networks on a 12-row grid (m = 6 => two block rows): (a) channels
  // only in the north block, (b) the same plus a liquid row right at the
  // block boundary, severing the south block's conducting lanes toward the
  // north. Power only in the south half. With lanes cut, the south block
  // must run hotter: its heat reaches the coolant through fewer paths.
  const Grid2D grid(12, 13, kPitch);
  auto build = [&](bool boundary_channel) {
    CoolingNetwork net(grid);
    for (int r : {0, 2}) {
      for (int c = 0; c < grid.cols(); ++c) net.set_liquid(r, c);
      net.add_port({r, 0, Side::kWest, PortKind::kInlet});
      net.add_port({r, grid.cols() - 1, Side::kEast, PortKind::kOutlet});
    }
    if (boundary_channel) {
      const int r = 4;  // last even row of the north block (m = 6)
      for (int c = 0; c < grid.cols(); ++c) net.set_liquid(r, c);
      net.add_port({r, 0, Side::kWest, PortKind::kInlet});
      net.add_port({r, grid.cols() - 1, Side::kEast, PortKind::kOutlet});
    }
    return net;
  };

  CoolingProblem problem = problem_with(grid, 0.0);
  // Power only in the south rows of the bottom source layer.
  for (int r = 6; r < 12; ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      problem.source_power[0].at(r, c) = 0.5 / (6.0 * grid.cols());
    }
  }

  const Thermal2RM without(problem, {build(false)}, 6);
  const Thermal2RM with(problem, {build(true)}, 6);
  const ThermalField f_without = without.simulate(2000.0);
  const ThermalField f_with = with.simulate(2000.0);
  // Adding a channel row normally cools the chip; but for the *south* block
  // the boundary channel also cuts every conducting lane to the north
  // coolant. Check the lane effect exists: the south/north temperature
  // *contrast* must grow when the boundary row is liquid.
  auto south_minus_north = [&](const ThermalField& f) {
    const auto& map = f.source_maps[0];
    return map[static_cast<std::size_t>(f.map_cols) + 0] -
           map[0];  // block row 1 vs block row 0, first column
  };
  EXPECT_GT(south_minus_north(f_with), south_minus_north(f_without) - 1e-9);
}

TEST(ChannelGeometry, TallerChannelsLowerResistanceAndTemperature) {
  const Grid2D grid(21, 21, kPitch);
  const CoolingNetwork net = make_straight_channels(grid);
  double prev_resistance = 1e300;
  double prev_tmax = 1e300;
  for (double h_c : {100e-6, 200e-6, 400e-6}) {
    CoolingProblem problem;
    problem.grid = grid;
    problem.stack = make_interlayer_stack(2, h_c);
    problem.source_power.emplace_back(grid, 2.0);
    problem.source_power.emplace_back(grid, 2.0);
    const Thermal2RM sim(problem, {net}, 3);
    const double resistance = 1.0 / sim.system_flow(1.0);
    const double t_max = sim.simulate(2000.0).t_max;
    EXPECT_LT(resistance, prev_resistance) << "h_c " << h_c;
    EXPECT_LT(t_max, prev_tmax) << "h_c " << h_c;
    prev_resistance = resistance;
    prev_tmax = t_max;
  }
}

TEST(FlowScaling, ViscosityScalesResistanceLinearly) {
  const Grid2D grid(21, 21, kPitch);
  const CoolingNetwork net = make_straight_channels(grid);
  const ChannelGeometry channel{kPitch, 200e-6};
  CoolantProperties water;
  const double r1 =
      FlowSolver(net, channel, water).solve(1.0).system_resistance();
  water.dynamic_viscosity *= 3.0;
  const double r3 =
      FlowSolver(net, channel, water).solve(1.0).system_resistance();
  EXPECT_NEAR(r3, 3.0 * r1, r1 * 1e-9);
}

TEST(FlowScaling, MoreInletsLowerResistance) {
  const Grid2D grid(21, 21, kPitch);
  // Same liquid cells, one vs many inlet openings on the comb trunk.
  const CoolingNetwork one_inlet = make_comb(grid);
  CoolingNetwork many_inlets = make_comb(grid);
  for (int r = 0; r < grid.rows(); r += 2) {
    if (r == 10) continue;  // the comb's own inlet row
    many_inlets.add_port({r, 0, Side::kWest, PortKind::kInlet});
  }
  const ChannelGeometry channel{kPitch, 200e-6};
  const CoolantProperties water;
  const double r_one =
      FlowSolver(one_inlet, channel, water).solve(1.0).system_resistance();
  const double r_many =
      FlowSolver(many_inlets, channel, water).solve(1.0).system_resistance();
  EXPECT_LT(r_many, r_one);
}

// Coolant heat capacity sweep: stronger C_v lowers the coolant temperature
// rise and thus ΔT at a fixed operating point.
class CoolantSweep : public ::testing::TestWithParam<double> {};

TEST_P(CoolantSweep, HigherHeatCapacityCoolsBetter) {
  const Grid2D grid(21, 21, kPitch);
  CoolingProblem problem = problem_with(grid, 4.0);
  const CoolingNetwork net = make_straight_channels(grid);

  const Thermal2RM base(problem, {net}, 3);
  const double t_base = base.simulate(1500.0).t_max;

  problem.coolant.volumetric_heat *= GetParam();
  const Thermal2RM boosted(problem, {net}, 3);
  const double t_boosted = boosted.simulate(1500.0).t_max;
  if (GetParam() > 1.0) {
    EXPECT_LT(t_boosted, t_base);
  } else {
    EXPECT_GT(t_boosted, t_base);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, CoolantSweep,
                         ::testing::Values(0.5, 0.8, 1.5, 2.0, 4.0));

}  // namespace
}  // namespace lcn
