// Tests for the run-time flow-rate management extension (paper §7).
#include <gtest/gtest.h>

#include "network/generators.hpp"
#include "opt/runtime_flow.hpp"

namespace lcn {
namespace {

CoolingProblem nominal_problem() {
  CoolingProblem problem;
  problem.grid = Grid2D(31, 31, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.push_back(synthesize_power_map(problem.grid, 4.0, 21));
  problem.source_power.push_back(synthesize_power_map(problem.grid, 3.0, 22));
  return problem;
}

RuntimeOptions fast_options() {
  RuntimeOptions options;
  options.sim = SimConfig{ThermalModelKind::k2RM, 3};
  return options;
}

TEST(RuntimeFlow, LighterPhasesNeedLessPressure) {
  const CoolingProblem problem = nominal_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  DesignConstraints limits{12.0, 400.0, 0.0};
  const std::vector<PowerPhase> phases = {
      {{0.3, 0.3}, 1.0}, {{1.0, 1.0}, 1.0}, {{1.2, 1.2}, 1.0}};
  const RuntimePlan plan =
      plan_runtime_flow(problem, net, limits, phases, fast_options());
  ASSERT_TRUE(plan.feasible);
  EXPECT_LT(plan.phases[0].p_sys, plan.phases[1].p_sys);
  EXPECT_LT(plan.phases[1].p_sys, plan.phases[2].p_sys);
  for (const PhasePlan& pp : plan.phases) {
    EXPECT_LE(pp.at_p.delta_t, limits.delta_t_max * 1.001);
    EXPECT_LE(pp.at_p.t_max, limits.t_max * 1.001);
  }
}

TEST(RuntimeFlow, AdaptationSavesEnergy) {
  const CoolingProblem problem = nominal_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  DesignConstraints limits{12.0, 400.0, 0.0};
  const std::vector<PowerPhase> phases = {{{0.2, 0.2}, 10.0},
                                          {{1.0, 1.0}, 1.0}};
  const RuntimePlan plan =
      plan_runtime_flow(problem, net, limits, phases, fast_options());
  ASSERT_TRUE(plan.feasible);
  EXPECT_LT(plan.adaptive_energy, plan.worst_case_energy);
  EXPECT_GT(plan.energy_saving(), 0.3);  // long idle phase => big saving
}

TEST(RuntimeFlow, InfeasiblePhaseMarksPlanInfeasible) {
  const CoolingProblem problem = nominal_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  DesignConstraints limits{0.01, 310.0, 0.0};  // impossible gradient limit
  const RuntimePlan plan = plan_runtime_flow(
      problem, net, limits, {{{1.0, 1.0}, 1.0}}, fast_options());
  EXPECT_FALSE(plan.feasible);
}

TEST(RuntimeFlow, TransientVerificationConfirmsSteadyPlan) {
  const CoolingProblem problem = nominal_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  DesignConstraints limits{12.0, 400.0, 0.0};
  const std::vector<PowerPhase> phases = {{{0.4, 0.4}, 0.05},
                                          {{1.0, 1.0}, 0.05}};
  const RuntimePlan plan =
      plan_runtime_flow(problem, net, limits, phases, fast_options());
  ASSERT_TRUE(plan.feasible);
  const TransientCheck check = verify_plan_transient(
      problem, net, limits, phases, plan, /*dt=*/2e-3, fast_options());
  EXPECT_TRUE(check.within_t_max);
  EXPECT_EQ(check.phase_peaks.size(), 2u);
  // The transient trajectory never overshoots the steady envelope by more
  // than the integration tolerance: peaks stay at/below the per-phase
  // steady T_max (heating toward it monotonically from a cooler state).
  EXPECT_LE(check.phase_peaks[1],
            std::max(plan.phases[0].at_p.t_max, plan.phases[1].at_p.t_max) +
                0.5);
  EXPECT_GT(check.peak_t_max, 300.0);
}

TEST(RuntimeFlow, TransientVerifyRejectsBogusPlan) {
  const CoolingProblem problem = nominal_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  DesignConstraints limits{12.0, 400.0, 0.0};
  // Long enough for the stack to essentially reach steady state (~0.1 s
  // time constant on this problem).
  const std::vector<PowerPhase> phases = {{{1.0, 1.0}, 0.6}};
  RuntimePlan plan =
      plan_runtime_flow(problem, net, limits, phases, fast_options());
  ASSERT_TRUE(plan.feasible);
  // Tighten the limit below the planned steady state: the transient check
  // must flag it.
  DesignConstraints tight = limits;
  tight.t_max = plan.phases[0].at_p.t_max - 0.5;
  const TransientCheck check = verify_plan_transient(
      problem, net, tight, phases, plan, /*dt=*/5e-3, fast_options());
  EXPECT_FALSE(check.within_t_max);
}

TEST(RuntimeFlow, ValidatesInputs) {
  const CoolingProblem problem = nominal_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  DesignConstraints limits{12.0, 400.0, 0.0};
  EXPECT_THROW(plan_runtime_flow(problem, net, limits, {}, fast_options()),
               ContractError);
  EXPECT_THROW(plan_runtime_flow(problem, net, limits, {{{1.0}, 1.0}},
                                 fast_options()),
               ContractError);  // wrong per-layer scale count
  EXPECT_THROW(plan_runtime_flow(problem, net, limits,
                                 {{{1.0, 1.0}, -1.0}}, fast_options()),
               ContractError);  // negative duration
}

}  // namespace
}  // namespace lcn
