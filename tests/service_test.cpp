// Multi-tenant serving suite (DESIGN.md §S22): concurrent jobs through the
// fair-share scheduler are bit-identical to solo runs at any pool width,
// per-session counter shards and manifests are isolated, cancellation and
// deadlines unwind cleanly while the scheduler keeps serving, and the wire
// protocol round-trips.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/instrument.hpp"
#include "common/task_context.hpp"
#include "common/thread_pool.hpp"
#include "flow/flow_plan.hpp"
#include "network/generators.hpp"
#include "opt/sa.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"

namespace lcn {
namespace {

using service::JobKind;
using service::JobRequest;
using service::JobResult;
using service::JobStatus;
using service::Scheduler;

// Same small feasible case as the islands suite: quick pressure searches on
// every design the SA can reach.
BenchmarkCase service_case(double watts = 8.0) {
  BenchmarkCase bench;
  bench.id = 98;
  bench.name = "service-unit";
  bench.problem.grid = Grid2D(31, 31, 100e-6);
  bench.problem.stack = make_interlayer_stack(2, 200e-6);
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 0.55 * watts, 11));
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 0.45 * watts, 12));
  bench.constraints.delta_t_max = 12.0;
  bench.constraints.t_max = 400.0;
  return bench;
}

SimConfig fast_sim() { return SimConfig{ThermalModelKind::k2RM, 3}; }

std::vector<SaStage> short_schedule() {
  std::vector<SaStage> stages;
  stages.push_back({"u1-fixedP", 3, 1, 2, 4, fast_sim(), true, 1});
  stages.push_back({"u2-full", 3, 1, 2, 4, fast_sim(), false, 1});
  return stages;
}

// Enough fixed-pressure iterations that a runner is observably mid-SA for
// hundreds of milliseconds — the cancellation/deadline tests need a window.
std::vector<SaStage> long_schedule() {
  std::vector<SaStage> stages;
  stages.push_back({"long", 5000, 1, 2, 4, fast_sim(), true, 1});
  return stages;
}

JobRequest design_request(std::uint64_t seed,
                          std::vector<SaStage> stages = short_schedule()) {
  JobRequest req;
  req.kind = JobKind::kDesign;
  req.seed = seed;
  req.custom_case = std::make_shared<BenchmarkCase>(service_case());
  req.custom_stages = std::move(stages);
  return req;
}

JobRequest evaluate_request() {
  JobRequest req;
  req.kind = JobKind::kEvaluate;
  req.sim = fast_sim();
  // Loose ΔT* so the canonical uniform layout is unambiguously feasible.
  auto bench = std::make_shared<BenchmarkCase>(service_case());
  bench->constraints.delta_t_max = 30.0;
  req.custom_case = std::move(bench);
  return req;
}

JobRequest sweep_request(int scenarios) {
  JobRequest req;
  req.kind = JobKind::kSweep;
  req.sim = fast_sim();
  req.scenarios = scenarios;
  req.seed = 77;
  // Loose limits so the uniform nominal layout is comfortably feasible and
  // the sweep itself is what the job spends its time on.
  auto bench = std::make_shared<BenchmarkCase>(service_case());
  bench->constraints.delta_t_max = 30.0;
  req.custom_case = std::move(bench);
  return req;
}

void wait_until_running(Scheduler& scheduler, std::uint64_t id) {
  for (int i = 0; i < 2000; ++i) {
    const JobStatus status = scheduler.status(id);
    if (status == JobStatus::kRunning) return;
    ASSERT_FALSE(service::job_status_terminal(status))
        << "job finished before it could be observed running";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "job never started running";
}

// ---------------------------------------------------------------------------
// Bit-identity: N concurrent identical jobs == a solo in-process run, at
// every pool width of the §S1 thread sweep.

struct DesignPrint {
  std::uint64_t design_hash = 0;
  std::string network_text;
  double score = 0.0;
  double p_sys = 0.0;
  double w_pump = 0.0;
  int direction = 0;
  std::size_t evaluations = 0;

  friend bool operator==(const DesignPrint&, const DesignPrint&) = default;
};

DesignPrint print_of(const JobResult& result) {
  DesignPrint print;
  print.design_hash = result.design_hash;
  print.network_text = result.network_text;
  print.score = result.score;
  print.p_sys = result.p_sys;
  print.w_pump = result.w_pump;
  print.direction = result.direction;
  print.evaluations = result.evaluations;
  return print;
}

DesignPrint solo_reference(std::uint64_t seed) {
  const BenchmarkCase bench = service_case();
  TreeTopologyOptimizer optimizer(bench, DesignObjective::kPumpingPower,
                                  seed);
  const DesignOutcome outcome = optimizer.run(short_schedule());
  DesignPrint print;
  print.design_hash = outcome.network.content_hash();
  print.network_text = outcome.network.to_text();
  print.score = outcome.eval.score;
  print.p_sys = outcome.eval.p_sys;
  print.w_pump = outcome.eval.w_pump;
  print.direction = outcome.direction;
  print.evaluations = outcome.evaluations;
  return print;
}

class ServiceDeterminism : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_global_pool_threads(GetParam()); }
  static void TearDownTestSuite() { set_global_pool_threads(0); }
};

TEST_P(ServiceDeterminism, ConcurrentIdenticalJobsMatchSoloBitExactly) {
  // The solo reference is computed once, serially; the §S1 contract makes it
  // the reference for every pool width.
  static const DesignPrint reference = [] {
    set_global_pool_threads(1);
    return solo_reference(11);
  }();
  set_global_pool_threads(GetParam());

  Scheduler scheduler(Scheduler::Options{3});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(scheduler.submit(design_request(11)));
    ASSERT_NE(ids.back(), 0u);
  }
  for (const std::uint64_t id : ids) {
    const JobResult result = scheduler.wait(id);
    ASSERT_EQ(result.status, JobStatus::kDone) << result.error;
    EXPECT_EQ(print_of(result), reference);
  }
}

TEST_P(ServiceDeterminism, MixedTenantsDoNotPerturbEachOther) {
  // A design job sharing the scheduler with a sweep and an evaluate tenant
  // must return exactly the solo result: no rng, cache, or counter bleed.
  static const DesignPrint reference = [] {
    set_global_pool_threads(1);
    return solo_reference(23);
  }();
  set_global_pool_threads(GetParam());

  Scheduler scheduler(Scheduler::Options{3});
  const std::uint64_t sweep_id = scheduler.submit(sweep_request(8));
  const std::uint64_t design_id = scheduler.submit(design_request(23));
  const std::uint64_t eval_id = scheduler.submit(evaluate_request());
  const JobResult design = scheduler.wait(design_id);
  ASSERT_EQ(design.status, JobStatus::kDone) << design.error;
  EXPECT_EQ(print_of(design), reference);
  const JobResult sweep = scheduler.wait(sweep_id);
  ASSERT_EQ(sweep.status, JobStatus::kDone) << sweep.error;
  EXPECT_EQ(sweep.scenarios, 8u);
  const JobResult eval = scheduler.wait(eval_id);
  ASSERT_EQ(eval.status, JobStatus::kDone) << eval.error;
  EXPECT_TRUE(eval.feasible);
}

INSTANTIATE_TEST_SUITE_P(Threads, ServiceDeterminism,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "t" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Session isolation: counters and manifests.

TEST(ServiceIsolation, SessionShardsAccountOnlyTheirOwnWork) {
  Scheduler scheduler(Scheduler::Options{2});
  const std::uint64_t sweep_id = scheduler.submit(sweep_request(12));
  const std::uint64_t design_id = scheduler.submit(design_request(11));
  const JobResult sweep = scheduler.wait(sweep_id);
  const JobResult design = scheduler.wait(design_id);
  ASSERT_EQ(sweep.status, JobStatus::kDone) << sweep.error;
  ASSERT_EQ(design.status, JobStatus::kDone) << design.error;

  // The sweep's scenarios land in the sweep's shard and nowhere else.
  EXPECT_EQ(sweep.counters.scenarios_evaluated, 12u);
  EXPECT_EQ(design.counters.scenarios_evaluated, 0u);
  // The design's SA probes are its own; the sweep job runs no SA.
  EXPECT_GT(design.counters.cache_misses, 0u);
  EXPECT_EQ(sweep.counters.cache_misses, 1u);  // its one nominal evaluation
  // Both did real solver work under their own accounting.
  EXPECT_GT(sweep.counters.steady_solves, 0u);
  EXPECT_GT(design.counters.steady_solves, 0u);
  // Exactly one job completion billed to each session.
  EXPECT_EQ(sweep.counters.jobs_completed, 1u);
  EXPECT_EQ(design.counters.jobs_completed, 1u);

  // Manifests carry the session identity and differ between tenants.
  EXPECT_NE(sweep.manifest, design.manifest);
  EXPECT_NE(sweep.manifest.find("\"session\":"), std::string::npos);
  EXPECT_NE(design.manifest.find("\"git_sha\":"), std::string::npos);
}

TEST(ServiceIsolation, ConcurrentShardEqualsSoloShardSerially) {
  // At one pool thread every run is serial, so a session's shard must be
  // byte-identical between a solo scheduler run and a three-tenant run —
  // except wall-clock micros counters. Private flow plans make even the
  // plan hit/miss split session-deterministic.
  set_global_pool_threads(1);
  auto shard_print = [](instrument::Snapshot s) {
    s.assembly_micros = 0;
    s.solve_micros = 0;
    return s.json();
  };

  JobRequest req = design_request(31);
  req.private_flow_plans = true;

  std::string solo_shard;
  {
    Scheduler scheduler(Scheduler::Options{2});
    const JobResult solo = scheduler.wait(scheduler.submit(req));
    ASSERT_EQ(solo.status, JobStatus::kDone) << solo.error;
    solo_shard = shard_print(solo.counters);
  }
  {
    Scheduler scheduler(Scheduler::Options{3});
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) ids.push_back(scheduler.submit(req));
    for (const std::uint64_t id : ids) {
      const JobResult result = scheduler.wait(id);
      ASSERT_EQ(result.status, JobStatus::kDone) << result.error;
      EXPECT_EQ(shard_print(result.counters), solo_shard);
    }
  }
  set_global_pool_threads(0);
}

TEST(ServiceIsolation, PrivateFlowPlansLeaveTheGlobalCacheUntouched) {
  flow_plan_cache_clear();
  ASSERT_EQ(global_flow_plan_cache().size(), 0u);

  Scheduler scheduler(Scheduler::Options{2});
  JobRequest req = evaluate_request();
  req.private_flow_plans = true;
  const JobResult result = scheduler.wait(scheduler.submit(req));
  ASSERT_EQ(result.status, JobStatus::kDone) << result.error;
  // The job analyzed flow plans (billed to its shard) but the global cache
  // never saw them.
  EXPECT_GT(result.counters.flow_plan_misses, 0u);
  EXPECT_EQ(global_flow_plan_cache().size(), 0u);

  // A sharing job populates the global cache as before.
  const JobResult shared = scheduler.wait(scheduler.submit(evaluate_request()));
  ASSERT_EQ(shared.status, JobStatus::kDone) << shared.error;
  EXPECT_GT(global_flow_plan_cache().size(), 0u);
}

// ---------------------------------------------------------------------------
// Cancellation, deadlines, priorities.

TEST(ServiceCancellation, MidSaCancelLeavesSchedulerServing) {
  Scheduler scheduler(Scheduler::Options{2});
  const std::uint64_t id = scheduler.submit(design_request(5, long_schedule()));
  wait_until_running(scheduler, id);
  EXPECT_TRUE(scheduler.cancel(id));
  const JobResult cancelled = scheduler.wait(id);
  EXPECT_EQ(cancelled.status, JobStatus::kCancelled);
  EXPECT_EQ(cancelled.error, "cancelled");
  EXPECT_EQ(cancelled.counters.jobs_cancelled, 1u);
  EXPECT_EQ(cancelled.counters.jobs_completed, 0u);

  // The scheduler is still healthy: a follow-up job runs to completion.
  const JobResult next = scheduler.wait(scheduler.submit(design_request(11)));
  EXPECT_EQ(next.status, JobStatus::kDone) << next.error;

  // Cancelling a finished job is a no-op.
  EXPECT_FALSE(scheduler.cancel(id));
}

TEST(ServiceCancellation, DeadlineExpiryCancelsCooperatively) {
  Scheduler scheduler(Scheduler::Options{2});
  JobRequest req = design_request(5, long_schedule());
  req.timeout_seconds = 0.3;
  const JobResult result = scheduler.wait(scheduler.submit(req));
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_EQ(result.error, "deadline exceeded");
}

TEST(ServiceCancellation, QueuedJobsCancelImmediately) {
  Scheduler scheduler(Scheduler::Options{2});
  // Fill both lanes, then queue a third job and cancel it before it starts.
  const std::uint64_t a = scheduler.submit(design_request(5, long_schedule()));
  const std::uint64_t b = scheduler.submit(design_request(6, long_schedule()));
  wait_until_running(scheduler, a);
  wait_until_running(scheduler, b);
  const std::uint64_t queued = scheduler.submit(design_request(7));
  EXPECT_EQ(scheduler.status(queued), JobStatus::kQueued);
  EXPECT_TRUE(scheduler.cancel(queued));
  const JobResult result = scheduler.wait(queued);
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_EQ(result.error, "cancelled before start");
  scheduler.cancel(a);
  scheduler.cancel(b);
}

TEST(ServiceCancellation, PreRaisedFlagThrowsCancelledNotRuntimeError) {
  // The Cancelled type must not be an lcn::RuntimeError: evaluators convert
  // RuntimeError into "this candidate is infeasible", which would swallow a
  // cancellation instead of unwinding the job.
  std::atomic<bool> cancel{true};
  TaskContext ctx;
  ctx.cancel = &cancel;
  ScopedTaskContext scope(&ctx);
  EXPECT_TRUE(task_cancelled());
  EXPECT_THROW(throw_if_cancelled(), Cancelled);
  try {
    throw_if_cancelled();
    FAIL() << "expected Cancelled";
  } catch (const RuntimeError&) {
    FAIL() << "Cancelled must not be caught as lcn::RuntimeError";
  } catch (const Cancelled&) {
  }
}

TEST(ServiceScheduling, HigherPriorityQueuedJobStartsFirst) {
  Scheduler scheduler(Scheduler::Options{2});
  const std::uint64_t a = scheduler.submit(design_request(5, long_schedule()));
  const std::uint64_t b = scheduler.submit(design_request(6, long_schedule()));
  wait_until_running(scheduler, a);
  wait_until_running(scheduler, b);

  JobRequest low = evaluate_request();
  low.priority = 0;
  JobRequest high = evaluate_request();
  high.priority = 5;
  const std::uint64_t low_id = scheduler.submit(low);
  const std::uint64_t high_id = scheduler.submit(high);

  scheduler.cancel(a);
  scheduler.cancel(b);
  const JobResult high_result = scheduler.wait(high_id);
  const JobResult low_result = scheduler.wait(low_id);
  ASSERT_EQ(high_result.status, JobStatus::kDone) << high_result.error;
  ASSERT_EQ(low_result.status, JobStatus::kDone) << low_result.error;
  // Submitted after `low`, started before it.
  EXPECT_LT(high_result.start_order, low_result.start_order);
}

TEST(ServiceScheduling, DrainRunsEverythingAndRejectsNewWork) {
  Scheduler scheduler(Scheduler::Options{2});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(scheduler.submit(evaluate_request()));
  scheduler.drain();
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(scheduler.status(id), JobStatus::kDone);
  }
  EXPECT_EQ(scheduler.submit(evaluate_request()), 0u);
  const auto jobs = scheduler.jobs();
  EXPECT_EQ(jobs.size(), 4u);
}

// ---------------------------------------------------------------------------
// Progress streaming.

class RecordingSink : public ProgressSink {
 public:
  void bind_job(std::uint64_t id) override { job_id = id; }
  void emit(const char* name, const char* args) override {
    std::lock_guard<std::mutex> lock(mutex);
    events.emplace_back(name, args != nullptr ? args : "");
  }

  std::uint64_t job_id = 0;
  std::mutex mutex;
  std::vector<std::pair<std::string, std::string>> events;
};

TEST(ServiceProgress, SaIterEventsStreamToTheSessionSink) {
  Scheduler scheduler(Scheduler::Options{2});
  RecordingSink sink;
  const std::uint64_t id = scheduler.submit(design_request(11), &sink);
  EXPECT_EQ(sink.job_id, id);
  const JobResult result = scheduler.wait(id);
  ASSERT_EQ(result.status, JobStatus::kDone) << result.error;

  // wait() unblocks when the result is stored, a moment before the runner
  // emits job_done; give the final event a beat to arrive.
  for (int i = 0; i < 200; ++i) {
    {
      std::lock_guard<std::mutex> lock(sink.mutex);
      if (!sink.events.empty() && sink.events.back().first == "job_done")
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  std::lock_guard<std::mutex> lock(sink.mutex);
  ASSERT_GE(sink.events.size(), 3u);
  EXPECT_EQ(sink.events.front().first, "job_started");
  EXPECT_EQ(sink.events.back().first, "job_done");
  std::size_t sa_iters = 0;
  for (const auto& [name, args] : sink.events) {
    if (name == "sa_iter") {
      ++sa_iters;
      EXPECT_NE(args.find("\"stage\":"), std::string::npos);
      EXPECT_NE(args.find("\"best\":"), std::string::npos);
      EXPECT_NE(args.find("\"cache_hit_rate\":"), std::string::npos);
    }
  }
  // Two stages x 3 iterations of the short schedule.
  EXPECT_EQ(sa_iters, 6u);
}

TEST(ServiceProgress, ScenarioJobStreamsPerStepSamples) {
  Scheduler scheduler(Scheduler::Options{2});
  RecordingSink sink;

  JobRequest req;
  req.kind = JobKind::kScenario;
  req.sim = fast_sim();
  auto bench = std::make_shared<BenchmarkCase>(service_case());
  bench->constraints.delta_t_max = 30.0;
  req.custom_case = std::move(bench);
  auto scenario = std::make_shared<ScenarioConfig>();
  scenario->sim = fast_sim();
  scenario->dt = 2e-3;
  scenario->steps = 12;
  scenario->pump.p_fixed = 2000.0;
  req.custom_scenario = scenario;

  const std::uint64_t id = scheduler.submit(std::move(req), &sink);
  const JobResult result = scheduler.wait(id);
  ASSERT_EQ(result.status, JobStatus::kDone) << result.error;
  EXPECT_EQ(result.scenario_steps, 12u);
  EXPECT_GT(result.peak_t_max, 300.0);
  EXPECT_GT(result.t_max, 300.0);
  EXPECT_EQ(result.evaluations, 12u);
  EXPECT_EQ(result.counters.scenario_steps, 12u);

  for (int i = 0; i < 200; ++i) {
    {
      std::lock_guard<std::mutex> lock(sink.mutex);
      if (!sink.events.empty() && sink.events.back().first == "job_done")
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard<std::mutex> lock(sink.mutex);
  std::size_t steps_seen = 0;
  for (const auto& [name, args] : sink.events) {
    if (name == "scenario_step") {
      ++steps_seen;
      EXPECT_NE(args.find("\"t_max\":"), std::string::npos);
      EXPECT_NE(args.find("\"inlet\":"), std::string::npos);
    }
  }
  EXPECT_EQ(steps_seen, 12u);
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(ServiceProtocol, FlatJsonRoundTripsTypesAndEscapes) {
  service::JsonObject obj;
  std::string error;
  ASSERT_TRUE(service::parse_json_object(
      R"({"s":"a\"b\\c\nd","n":-2.5e3,"i":42,"t":true,"f":false,"z":null})",
      obj, error))
      << error;
  EXPECT_EQ(obj.get_string("s"), "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(obj.get_number("n"), -2500.0);
  EXPECT_EQ(obj.get_int("i"), 42);
  EXPECT_TRUE(obj.get_bool("t"));
  EXPECT_FALSE(obj.get_bool("f"));
  EXPECT_FALSE(obj.has("z"));  // null == absent
  EXPECT_EQ(obj.get_int("missing", -7), -7);

  const std::string escaped = service::json_escape("line\none\t\"q\"\\");
  EXPECT_EQ(escaped, "line\\none\\t\\\"q\\\"\\\\");

  EXPECT_FALSE(service::parse_json_object("{\"a\":{}}", obj, error));
  EXPECT_FALSE(service::parse_json_object("[1,2]", obj, error));
  EXPECT_FALSE(service::parse_json_object("{\"a\":1,}", obj, error));
  EXPECT_FALSE(service::parse_json_object("{\"a\":1} extra", obj, error));
}

TEST(ServiceProtocol, ExactIntegersSurviveBeyondDoublePrecision) {
  service::JsonObject obj;
  std::string error;
  // 2^63 + 1 is not representable as a double; the raw token must carry it.
  ASSERT_TRUE(service::parse_json_object(
      R"({"seed":9223372036854775809,"neg":-4,"frac":1.5,"exp":1e3})", obj,
      error))
      << error;
  std::uint64_t value = 0;
  EXPECT_EQ(obj.get_uint64("seed", value), service::JsonObject::IntStatus::kOk);
  EXPECT_EQ(value, 9223372036854775809ULL);
  EXPECT_EQ(obj.get_uint64("neg", value),
            service::JsonObject::IntStatus::kBad);
  EXPECT_EQ(obj.get_uint64("frac", value),
            service::JsonObject::IntStatus::kBad);
  EXPECT_EQ(obj.get_uint64("exp", value),
            service::JsonObject::IntStatus::kBad);
  EXPECT_EQ(obj.get_uint64("absent", value),
            service::JsonObject::IntStatus::kMissing);
  // One digit past UINT64_MAX overflows and must be rejected, not wrapped.
  ASSERT_TRUE(
      service::parse_json_object(R"({"big":184467440737095516160})", obj,
                                 error))
      << error;
  EXPECT_EQ(obj.get_uint64("big", value),
            service::JsonObject::IntStatus::kBad);

  // The same contract at the request layer: exact seeds in, bad seeds out.
  service::Request request;
  ASSERT_TRUE(service::parse_request(
      R"({"op":"submit","kind":"evaluate","seed":18446744073709551615})",
      request, error))
      << error;
  EXPECT_EQ(request.job.seed, 18446744073709551615ULL);
  EXPECT_FALSE(service::parse_request(
      R"({"op":"submit","kind":"evaluate","seed":-1})", request, error));
  EXPECT_FALSE(service::parse_request(R"({"op":"status","job":-3})", request,
                                      error));
  EXPECT_FALSE(service::parse_request(R"({"op":"status","job":2.5})", request,
                                      error));
}

TEST(ServiceProtocol, RequestParsingValidatesFields) {
  service::Request request;
  std::string error;
  ASSERT_TRUE(service::parse_request(
      R"({"op":"submit","kind":"design","case":3,"objective":"p2",)"
      R"("scale":0.2,"seed":9,"shares":2,"priority":1,"timeout":30,)"
      R"("stream":true,"name":"tenant-a"})",
      request, error))
      << error;
  EXPECT_EQ(request.op, service::Request::Op::kSubmit);
  EXPECT_EQ(request.job.kind, JobKind::kDesign);
  EXPECT_EQ(request.job.case_id, 3);
  EXPECT_EQ(request.job.objective, DesignObjective::kThermalGradient);
  EXPECT_DOUBLE_EQ(request.job.scale, 0.2);
  EXPECT_EQ(request.job.seed, 9u);
  EXPECT_EQ(request.job.shares, 2);
  EXPECT_EQ(request.job.priority, 1);
  EXPECT_DOUBLE_EQ(request.job.timeout_seconds, 30.0);
  EXPECT_TRUE(request.stream);
  EXPECT_EQ(request.job.name, "tenant-a");

  // Scenario jobs carry their NDJSON description as one escaped string.
  ASSERT_TRUE(service::parse_request(
      R"({"op":"submit","kind":"scenario",)"
      R"("scenario":"{\"type\":\"scenario\",\"steps\":5}\n"})",
      request, error))
      << error;
  EXPECT_EQ(request.job.kind, JobKind::kScenario);
  EXPECT_EQ(request.job.scenario_text,
            "{\"type\":\"scenario\",\"steps\":5}\n");
  // ...and are rejected without one.
  EXPECT_FALSE(service::parse_request(
      R"({"op":"submit","kind":"scenario"})", request, error));

  ASSERT_TRUE(
      service::parse_request(R"({"op":"cancel","job":7})", request, error));
  EXPECT_EQ(request.op, service::Request::Op::kCancel);
  EXPECT_EQ(request.job_id, 7u);

  EXPECT_FALSE(service::parse_request(R"({"op":"submit","case":9})", request,
                                      error));
  EXPECT_FALSE(service::parse_request(R"({"op":"nope"})", request, error));
  EXPECT_FALSE(service::parse_request(R"({"op":"status"})", request, error));
  EXPECT_FALSE(service::parse_request("not json", request, error));
}

TEST(ServiceProtocol, ResultJsonCarriesScoresCountersAndManifest) {
  JobResult result;
  result.status = JobStatus::kDone;
  result.feasible = true;
  result.score = 0.125;
  result.p_sys = 11187.5;
  result.w_pump = 0.125;
  result.t_max = 340.25;
  result.delta_t = 9.5;
  result.design_hash = 0xdeadbeefULL;
  result.evaluations = 42;
  result.start_order = 3;
  result.manifest = "{\"session\":1}";
  const std::string line = service::result_json(9, result);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(line.find("\"job\":9"), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"done\""), std::string::npos);
  EXPECT_NE(line.find("\"design_hash\":\"00000000deadbeef\""),
            std::string::npos);
  EXPECT_NE(line.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(line.find("\"manifest\":{\"session\":1}"), std::string::npos);

  JobResult failed;
  failed.status = JobStatus::kFailed;
  failed.error = "boom \"quoted\"";
  const std::string failed_line = service::result_json(2, failed);
  EXPECT_NE(failed_line.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(failed_line.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(failed_line.find("\"score\""), std::string::npos);
}

}  // namespace
}  // namespace lcn
