// Physics validation of the 4RM and 2RM thermal models (S5, S6, S7, S8):
// global energy balance, monotonicity in P_sys, upstream/downstream
// structure, 2RM-vs-4RM agreement, transient convergence to steady state.
#include <gtest/gtest.h>

#include <cmath>

#include "network/generators.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"
#include "thermal/transient.hpp"

namespace lcn {
namespace {

constexpr double kPitch = 100e-6;

CoolingProblem small_problem(int n = 21, int dies = 2,
                             double channel_height = 200e-6,
                             double watts = 2.0) {
  CoolingProblem problem;
  problem.grid = Grid2D(n, n, kPitch);
  problem.stack = make_interlayer_stack(dies, channel_height);
  for (int die = 0; die < dies; ++die) {
    problem.source_power.emplace_back(problem.grid, watts / dies);
  }
  return problem;
}

std::vector<CoolingNetwork> straight_networks(const CoolingProblem& problem) {
  return std::vector<CoolingNetwork>(
      static_cast<std::size_t>(problem.stack.channel_count()),
      make_straight_channels(problem.grid));
}

TEST(Thermal4RM, EnergyBalanceAdiabatic) {
  const CoolingProblem problem = small_problem();
  const Thermal4RM sim(problem, straight_networks(problem));
  const AssembledThermal system = sim.assemble(2000.0);
  const ThermalField field = solve_steady(system, 1e-11);
  const double advected = advected_heat(system, field.temperatures);
  // All injected power must leave through the coolant.
  EXPECT_NEAR(advected, problem.total_power(), problem.total_power() * 1e-6);
}

TEST(Thermal4RM, TemperaturesAboveInlet) {
  const CoolingProblem problem = small_problem();
  const Thermal4RM sim(problem, straight_networks(problem));
  const ThermalField field = sim.simulate(2000.0);
  for (double t : field.temperatures) {
    EXPECT_GT(t, problem.inlet_temperature - 1e-6);
  }
  EXPECT_GT(field.t_max, problem.inlet_temperature + 0.5);
}

TEST(Thermal4RM, PeakTemperatureDecreasesWithPressure) {
  const CoolingProblem problem = small_problem();
  const Thermal4RM sim(problem, straight_networks(problem));
  double prev = 1e300;
  for (double p : {500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
    const double t_max = sim.simulate(p).t_max;
    EXPECT_LT(t_max, prev) << "P=" << p;
    prev = t_max;
  }
}

TEST(Thermal4RM, DownstreamHotterThanUpstreamOnUniformPower) {
  const CoolingProblem problem = small_problem();
  const Thermal4RM sim(problem, straight_networks(problem));
  const ThermalField field = sim.simulate(1000.0);
  // Bottom source layer, center row: west (upstream) vs east (downstream).
  const auto& map = field.source_maps[0];
  const int n = field.map_cols;
  const int row = 10;
  const double west = map[static_cast<std::size_t>(row) * n + 1];
  const double east = map[static_cast<std::size_t>(row) * n + (n - 2)];
  EXPECT_GT(east, west + 0.01);
}

TEST(Thermal4RM, SystemFlowAndPumpingPower) {
  const CoolingProblem problem = small_problem();
  const Thermal4RM sim(problem, straight_networks(problem));
  const double q = sim.system_flow(1000.0);
  EXPECT_GT(q, 0.0);
  EXPECT_NEAR(sim.pumping_power(1000.0), 1000.0 * q, 1000.0 * q * 1e-12);
  EXPECT_NEAR(sim.pumping_power(2000.0), 4.0 * sim.pumping_power(1000.0),
              sim.pumping_power(2000.0) * 1e-9);
}

TEST(Thermal4RM, HigherPowerRaisesTemperaturesProportionally) {
  // The system is linear: doubling all power doubles (T - T_in).
  const CoolingProblem p1 = small_problem(21, 2, 200e-6, 1.0);
  const CoolingProblem p2 = small_problem(21, 2, 200e-6, 2.0);
  const Thermal4RM sim1(p1, straight_networks(p1));
  const Thermal4RM sim2(p2, straight_networks(p2));
  const ThermalField f1 = sim1.simulate(1500.0);
  const ThermalField f2 = sim2.simulate(1500.0);
  EXPECT_NEAR(f2.t_max - 300.0, 2.0 * (f1.t_max - 300.0),
              (f1.t_max - 300.0) * 1e-5);
  EXPECT_NEAR(f2.delta_t, 2.0 * f1.delta_t, f1.delta_t * 1e-5 + 1e-9);
}

TEST(Thermal4RM, AmbientSinkLowersTemperatures) {
  CoolingProblem adiabatic = small_problem();
  CoolingProblem cooled = small_problem();
  cooled.ambient_conductance = 1000.0;  // strong top-side sink
  const Thermal4RM sim_a(adiabatic, straight_networks(adiabatic));
  const Thermal4RM sim_c(cooled, straight_networks(cooled));
  EXPECT_GT(sim_a.simulate(1000.0).t_max, sim_c.simulate(1000.0).t_max);
}

TEST(Thermal4RM, MetricsMatchMapExtremes) {
  const CoolingProblem problem = small_problem();
  const Thermal4RM sim(problem, straight_networks(problem));
  const ThermalField field = sim.simulate(1000.0);
  double t_max = 0.0;
  double delta = 0.0;
  for (const auto& map : field.source_maps) {
    double lo = 1e300;
    double hi = -1e300;
    for (double t : map) {
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    t_max = std::max(t_max, hi);
    delta = std::max(delta, hi - lo);
  }
  EXPECT_DOUBLE_EQ(field.t_max, t_max);
  EXPECT_DOUBLE_EQ(field.delta_t, delta);
  EXPECT_EQ(field.per_layer_delta.size(), field.source_maps.size());
}

TEST(Thermal2RM, EnergyBalanceAdiabatic) {
  const CoolingProblem problem = small_problem();
  const Thermal2RM sim(problem, straight_networks(problem), 3);
  const AssembledThermal system = sim.assemble(2000.0);
  const ThermalField field = solve_steady(system, 1e-11);
  const double advected = advected_heat(system, field.temperatures);
  EXPECT_NEAR(advected, problem.total_power(), problem.total_power() * 1e-6);
}

TEST(Thermal2RM, ProblemSizeShrinksQuadratically) {
  const CoolingProblem problem = small_problem();
  const Thermal2RM sim1(problem, straight_networks(problem), 1);
  const Thermal2RM sim3(problem, straight_networks(problem), 3);
  const Thermal2RM sim7(problem, straight_networks(problem), 7);
  EXPECT_GT(sim1.node_count(), 8 * sim3.node_count() / 2);
  EXPECT_GT(sim3.node_count(), sim7.node_count());
  EXPECT_EQ(sim3.block_rows(), 7);
  EXPECT_EQ(sim7.block_rows(), 3);
}

TEST(Thermal2RM, AgreesWith4RMWithinTolerance) {
  const CoolingProblem problem = small_problem();
  const auto nets = straight_networks(problem);
  const Thermal4RM ref(problem, nets);
  const ThermalField f4 = ref.simulate(2000.0);

  for (int m : {1, 2, 3}) {
    const Thermal2RM sim(problem, nets, m);
    const ThermalField f2 = sim.simulate(2000.0);
    // Block-average the 4RM bottom source map and compare node by node.
    double worst = 0.0;
    for (int br = 0; br < sim.block_rows(); ++br) {
      for (int bc = 0; bc < sim.block_cols(); ++bc) {
        double sum = 0.0;
        int count = 0;
        for (int r = br * m; r < std::min((br + 1) * m, f4.map_rows); ++r) {
          for (int c = bc * m; c < std::min((bc + 1) * m, f4.map_cols); ++c) {
            sum += f4.source_maps[0][static_cast<std::size_t>(r) *
                                         f4.map_cols + c];
            ++count;
          }
        }
        const double t4 = sum / count;
        const double t2 =
            f2.source_maps[0][static_cast<std::size_t>(br) * sim.block_cols() +
                              bc];
        worst = std::max(worst, std::abs(t2 - t4) / t4);
      }
    }
    // Paper Fig. 9(a): sub-percent average error for small thermal cells.
    EXPECT_LT(worst, 0.02) << "m=" << m;
  }
}

TEST(Thermal2RM, PeakTemperatureDecreasesWithPressure) {
  const CoolingProblem problem = small_problem();
  const Thermal2RM sim(problem, straight_networks(problem), 3);
  double prev = 1e300;
  for (double p : {500.0, 2000.0, 8000.0}) {
    const double t_max = sim.simulate(p).t_max;
    EXPECT_LT(t_max, prev);
    prev = t_max;
  }
}

TEST(Thermal2RM, ThreeDieStackWithTwoChannelLayers) {
  const CoolingProblem problem = small_problem(21, 3, 200e-6, 3.0);
  const Thermal2RM sim(problem, straight_networks(problem), 3);
  const AssembledThermal system = sim.assemble(3000.0);
  const ThermalField field = solve_steady(system, 1e-11);
  EXPECT_EQ(field.source_maps.size(), 3u);
  EXPECT_NEAR(advected_heat(system, field.temperatures),
              problem.total_power(), problem.total_power() * 1e-6);
}

TEST(Thermal2RM, TreeNetworkEnergyBalance) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork tree =
      make_tree_network(problem.grid, make_uniform_layout(problem.grid, 6, 12));
  const Thermal2RM sim(problem, {tree}, 3);
  const AssembledThermal system = sim.assemble(2000.0);
  const ThermalField field = solve_steady(system, 1e-11);
  EXPECT_NEAR(advected_heat(system, field.temperatures),
              problem.total_power(), problem.total_power() * 1e-6);
}

TEST(Transient, ConvergesToSteadyState) {
  const CoolingProblem problem = small_problem();
  const Thermal4RM sim(problem, straight_networks(problem));
  const AssembledThermal system = sim.assemble(2000.0);
  const ThermalField steady = solve_steady(system);

  TransientOptions options;
  options.dt = 2e-3;
  options.steps = 400;
  std::vector<double> final_temps;
  const auto samples = simulate_transient(
      system, std::vector<double>(system.matrix.rows(), 300.0), options,
      &final_temps);
  ASSERT_EQ(samples.size(), 400u);
  EXPECT_NEAR(samples.back().t_max, steady.t_max, 0.05);
  // Monotone heating from a cold start.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_max, samples[i - 1].t_max - 1e-9);
  }
}

TEST(Transient, ShortHorizonStaysBelowSteady) {
  const CoolingProblem problem = small_problem();
  const Thermal2RM sim(problem, straight_networks(problem), 3);
  const AssembledThermal system = sim.assemble(2000.0);
  const ThermalField steady = solve_steady(system);
  TransientOptions options;
  options.dt = 1e-4;
  options.steps = 5;
  const auto samples = simulate_transient(
      system, std::vector<double>(system.matrix.rows(), 300.0), options);
  EXPECT_LT(samples.back().t_max, steady.t_max);
}

// Property sweep: energy balance holds across pressures, channel heights and
// thermal cell sizes.
struct BalanceParam {
  double p_sys;
  double h_c;
  int m;
};

class EnergyBalanceSweep : public ::testing::TestWithParam<BalanceParam> {};

TEST_P(EnergyBalanceSweep, AdvectedHeatEqualsPower) {
  const BalanceParam param = GetParam();
  const CoolingProblem problem = small_problem(21, 2, param.h_c);
  const auto nets = straight_networks(problem);
  const Thermal2RM sim(problem, nets, param.m);
  const AssembledThermal system = sim.assemble(param.p_sys);
  const ThermalField field = solve_steady(system, 1e-12);
  EXPECT_NEAR(advected_heat(system, field.temperatures),
              problem.total_power(), problem.total_power() * 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnergyBalanceSweep,
    ::testing::Values(BalanceParam{200.0, 200e-6, 1},
                      BalanceParam{1000.0, 200e-6, 2},
                      BalanceParam{5000.0, 200e-6, 4},
                      BalanceParam{1000.0, 400e-6, 3},
                      BalanceParam{20000.0, 400e-6, 3},
                      BalanceParam{500.0, 100e-6, 5}));

}  // namespace
}  // namespace lcn
