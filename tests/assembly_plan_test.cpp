// Refill-equivalence suite for the symbolic/numeric split (DESIGN.md §S18):
// a system produced by refilling a cached plan — sparsity plan, thermal
// assembly plan, flow plan, refactored preconditioner, persistent solver
// workspace — must be *bit-identical* to one produced by a fresh symbolic
// analysis. Every comparison below is exact (operator== on double vectors,
// no tolerances), and the suite is parameterized over {1, 2, 4, 8} pool
// threads so the guarantee holds under the parallel assembly paths too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/instrument.hpp"
#include "common/thread_pool.hpp"
#include "flow/flow_plan.hpp"
#include "flow/flow_solver.hpp"
#include "geom/benchmarks.hpp"
#include "geom/materials.hpp"
#include "network/generators.hpp"
#include "opt/evaluator.hpp"
#include "sparse/ic0.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/solvers.hpp"
#include "sparse/sparsity_plan.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"

namespace lcn {
namespace {

CoolingProblem plan_problem() {
  CoolingProblem problem;
  problem.grid = Grid2D(33, 33, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.push_back(synthesize_power_map(problem.grid, 4.4, 31));
  problem.source_power.push_back(synthesize_power_map(problem.grid, 3.6, 32));
  return problem;
}

CoolingNetwork grid_network(const CoolingProblem& problem) {
  return make_tree_network(problem.grid,
                           make_uniform_layout(problem.grid, 10, 20));
}

std::vector<CoolingNetwork> replicated(const CoolingProblem& problem,
                                       const CoolingNetwork& net) {
  return std::vector<CoolingNetwork>(
      static_cast<std::size_t>(problem.stack.channel_count()), net);
}

/// Exact (bitwise) equality of two assembled systems.
void expect_bit_identical(const AssembledThermal& expected,
                          const AssembledThermal& actual) {
  EXPECT_EQ(expected.matrix.rows(), actual.matrix.rows());
  EXPECT_EQ(expected.matrix.row_ptr(), actual.matrix.row_ptr());
  EXPECT_EQ(expected.matrix.col_idx(), actual.matrix.col_idx());
  EXPECT_EQ(expected.matrix.values(), actual.matrix.values());
  EXPECT_EQ(expected.rhs, actual.rhs);
  EXPECT_EQ(expected.capacitance, actual.capacitance);
  EXPECT_EQ(expected.outlet_terms, actual.outlet_terms);
  EXPECT_EQ(expected.inlet_flow_total, actual.inlet_flow_total);
  EXPECT_EQ(expected.source_nodes, actual.source_nodes);
}

class RefillEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_global_pool_threads(GetParam()); }
  static void TearDownTestSuite() { set_global_pool_threads(0); }
};

TEST_P(RefillEquivalence, SparsityPlanRefillMatchesCompress) {
  // Triplet sequence with heavy duplication and out-of-order emission — the
  // refill must reproduce TripletList::to_csr bit-for-bit, including the
  // order duplicates are summed in.
  const std::size_t n = 50;
  std::vector<sparse::Triplet> trips;
  for (std::size_t k = 0; k < 6 * n; ++k) {
    const std::size_t i = (k * 7) % n;
    const std::size_t j = (k * 13 + k / n) % n;
    const double v = 1e-3 * static_cast<double>(k % 17) + 0.037 +
                     1e-12 * static_cast<double>(k);  // never zero
    trips.push_back({i, j, v});
  }
  sparse::TripletList list(n, n);
  for (const sparse::Triplet& t : trips) list.add(t.row, t.col, t.value);
  const sparse::CsrMatrix fresh = list.to_csr();

  const sparse::SparsityPlan plan = sparse::SparsityPlan::analyze(n, n, trips);
  const sparse::CsrMatrix refilled = plan.refill_matrix(
      [&](std::size_t s) { return trips[s].value; });

  EXPECT_EQ(fresh.row_ptr(), refilled.row_ptr());
  EXPECT_EQ(fresh.col_idx(), refilled.col_idx());
  EXPECT_EQ(fresh.values(), refilled.values());
}

TEST_P(RefillEquivalence, RefilledThermal2RmMatchesFreshModel) {
  const CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  // Long-lived model: repeated probes refill one cached plan.
  const Thermal2RM probing(problem, replicated(problem, net), 4);
  probing.assemble(2000.0);  // builds the plan
  const instrument::Snapshot before = instrument::snapshot();
  for (const double p_sys : {2000.0, 3500.0, 5000.0, 2000.0}) {
    const AssembledThermal refilled = probing.assemble(p_sys);
    // Reference: a model constructed from scratch, so its plan — and the
    // symbolic analysis underneath — is rebuilt fresh for this probe.
    const Thermal2RM fresh(problem, replicated(problem, net), 4);
    expect_bit_identical(fresh.assemble(p_sys), refilled);
  }
  const instrument::Snapshot after = instrument::snapshot();
  const instrument::Snapshot d = instrument::delta(before, after);
  // The probing model never redoes symbolic work: 4 of the 8 assemblies are
  // pure refills on its cached plan, and the only symbolic builds are the 4
  // fresh reference models'.
  EXPECT_EQ(d.assemblies_refill, 8u);
  EXPECT_EQ(d.assemblies_symbolic, 4u);
}

TEST_P(RefillEquivalence, RefilledThermal4RmMatchesFreshModel) {
  const CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  const Thermal4RM probing(problem, replicated(problem, net));
  for (const double p_sys : {2500.0, 4000.0, 2500.0}) {
    const AssembledThermal refilled = probing.assemble(p_sys);
    const Thermal4RM fresh(problem, replicated(problem, net));
    expect_bit_identical(fresh.assemble(p_sys), refilled);
  }
}

TEST_P(RefillEquivalence, RefillSurvivesNetworkMutation) {
  // Interleave probes on a mutated network between probes on the original:
  // the flow-plan cache must keep the two patterns apart and each model's
  // assembly plan must stay bound to its own network.
  const CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  CoolingNetwork mutated =
      make_tree_network(problem.grid, make_uniform_layout(problem.grid, 8, 16));
  ASSERT_FALSE(net == mutated);

  const Thermal2RM original(problem, replicated(problem, net), 4);
  const AssembledThermal before_mutation = original.assemble(3000.0);

  const Thermal2RM changed(problem, replicated(problem, mutated), 4);
  const AssembledThermal mutated_sys = changed.assemble(3000.0);
  EXPECT_NE(before_mutation.matrix.values(), mutated_sys.matrix.values());

  // Back to the original network; force the reference through a cold cache
  // so it cannot share any symbolic state with the probing model.
  const AssembledThermal again = original.assemble(3000.0);
  expect_bit_identical(before_mutation, again);
  flow_plan_cache_clear();
  const Thermal2RM fresh(problem, replicated(problem, net), 4);
  expect_bit_identical(fresh.assemble(3000.0), again);
}

TEST_P(RefillEquivalence, RefillMatchesFreshUnderConductanceScaling) {
  // Reliability-style per-cell conductance scaling changes matrix values but
  // not the pattern — exactly the case the flow plan exists for.
  CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  problem.flow_options.cell_conductance_scale.assign(
      problem.grid.cell_count(), 1.0);
  for (std::size_t c = 0; c < problem.grid.cell_count(); c += 3) {
    problem.flow_options.cell_conductance_scale[c] = 0.35;
  }
  const Thermal2RM probing(problem, replicated(problem, net), 4);
  const AssembledThermal refilled = probing.assemble(4200.0);
  flow_plan_cache_clear();
  const Thermal2RM fresh(problem, replicated(problem, net), 4);
  expect_bit_identical(fresh.assemble(4200.0), refilled);
}

TEST_P(RefillEquivalence, FlowPlanRefillMatchesFreshFlowSolve) {
  CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  int channel_layer = -1;
  for (int l = 0; l < problem.stack.layer_count(); ++l) {
    if (problem.stack.layer(l).kind == LayerKind::kChannel) {
      channel_layer = l;
      break;
    }
  }
  ASSERT_GE(channel_layer, 0);
  FlowOptions options = problem.flow_options;
  options.cell_conductance_scale.assign(problem.grid.cell_count(), 1.0);
  for (std::size_t c = 1; c < problem.grid.cell_count(); c += 5) {
    options.cell_conductance_scale[c] = 0.6;
  }
  const FlowSolver solver(net, problem.channel_geometry(channel_layer),
                          problem.coolant, options);

  flow_plan_cache_clear();
  const instrument::Snapshot before = instrument::snapshot();
  const FlowSolution cold = solver.solve(1.0);   // cache miss: analyze
  const FlowSolution warm = solver.solve(1.0);   // cache hit: refill
  const instrument::Snapshot d =
      instrument::delta(before, instrument::snapshot());
  EXPECT_EQ(d.flow_plan_misses, 1u);
  EXPECT_EQ(d.flow_plan_hits, 1u);

  EXPECT_EQ(cold.pressure, warm.pressure);
  EXPECT_EQ(cold.q_east, warm.q_east);
  EXPECT_EQ(cold.q_south, warm.q_south);
  EXPECT_EQ(cold.port_flow, warm.port_flow);
  EXPECT_EQ(cold.system_flow, warm.system_flow);

  // Reference pressure field from a hand-built fresh triplet traversal (the
  // historical assembly path, reproduced verbatim): the refill-based solve
  // must match it bit-for-bit.
  const Grid2D& grid = net.grid();
  const std::size_t n = warm.liquid_cells.size();
  const double g_bulk = fluid_conductance(
      problem.channel_geometry(channel_layer), problem.coolant, grid.pitch());
  const double g_edge = g_bulk * options.edge_conductance_factor;
  const std::vector<double>& scale = options.cell_conductance_scale;
  auto pair_g = [&](std::size_t a, std::size_t b) {
    return g_bulk * (2.0 * scale[a] * scale[b] / (scale[a] + scale[b]));
  };
  sparse::TripletList trips(n, n);
  sparse::Vector rhs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const CellCoord cc = grid.coord(warm.liquid_cells[i]);
    const int neighbors[2][2] = {{cc.row, cc.col + 1}, {cc.row + 1, cc.col}};
    for (const auto& nb : neighbors) {
      if (!grid.in_bounds(nb[0], nb[1])) continue;
      const std::int32_t jdx = warm.liquid_index[grid.index(nb[0], nb[1])];
      if (jdx < 0) continue;
      const auto j = static_cast<std::size_t>(jdx);
      const double g = pair_g(warm.liquid_cells[i], warm.liquid_cells[j]);
      trips.add(i, i, g);
      trips.add(j, j, g);
      trips.add(i, j, -g);
      trips.add(j, i, -g);
    }
  }
  for (const Port& port : net.ports()) {
    const auto i = static_cast<std::size_t>(
        warm.liquid_index[grid.index(port.row, port.col)]);
    const double g = g_edge * scale[grid.index(port.row, port.col)];
    trips.add(i, i, g);
    if (port.kind == PortKind::kInlet) rhs[i] += g * 1.0;
  }
  sparse::Vector pressure(n, 0.0);
  sparse::SolveOptions solve_opts;
  solve_opts.rel_tolerance = options.rel_tolerance;
  sparse::solve_spd_or_throw(trips.to_csr(), rhs, pressure,
                             "flow pressure solve", solve_opts);
  EXPECT_EQ(pressure, warm.pressure);
}

TEST_P(RefillEquivalence, PreconditionerRefactorMatchesFreshFactorization) {
  const CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  const Thermal2RM sim(problem, replicated(problem, net), 4);
  const AssembledThermal sys_a = sim.assemble(2000.0);
  const AssembledThermal sys_b = sim.assemble(5000.0);
  // Refilled systems share index arrays, so refactor() takes the
  // numeric-only path; its result must match a from-scratch factorization.
  ASSERT_EQ(sys_a.matrix.shared_row_ptr(), sys_b.matrix.shared_row_ptr());

  sparse::Ilu0Preconditioner refactored(sys_a.matrix);
  refactored.refactor(sys_b.matrix);
  const sparse::Ilu0Preconditioner fresh(sys_b.matrix);
  const sparse::Vector probe = sys_b.rhs;
  sparse::Vector out_refactored(probe.size(), 0.0);
  sparse::Vector out_fresh(probe.size(), 0.0);
  refactored.apply(probe, out_refactored);
  fresh.apply(probe, out_fresh);
  EXPECT_EQ(out_fresh, out_refactored);
}

TEST_P(RefillEquivalence, WorkspaceSolveMatchesAllocatingSolve) {
  const CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  const Thermal2RM sim(problem, replicated(problem, net), 4);

  SteadyWorkspace workspace;
  std::vector<double> warm_alloc;
  std::vector<double> warm_ws;
  for (const double p_sys : {2000.0, 3500.0, 5000.0}) {
    const AssembledThermal sys = sim.assemble(p_sys);
    const ThermalField alloc = solve_steady(
        sys, 1e-9, warm_alloc.empty() ? nullptr : &warm_alloc);
    const ThermalField reused = solve_steady(
        sys, 1e-9, warm_ws.empty() ? nullptr : &warm_ws, &workspace);
    EXPECT_EQ(alloc.temperatures, reused.temperatures);
    EXPECT_EQ(alloc.t_max, reused.t_max);
    EXPECT_EQ(alloc.delta_t, reused.delta_t);
    warm_alloc = alloc.temperatures;
    warm_ws = reused.temperatures;
  }
}

TEST_P(RefillEquivalence, GmresMethodSelectionSolvesThermalSystem) {
  // The opt-in method selector routes the shared entry point straight to
  // ILU(0)-preconditioned GMRES; it must agree with the default BiCGSTAB
  // cascade to solver tolerance on the nonsymmetric thermal system.
  const CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  const Thermal2RM sim(problem, replicated(problem, net), 4);
  const AssembledThermal sys = sim.assemble(3000.0);

  sparse::Vector x_auto(sys.matrix.rows(), problem.inlet_temperature);
  sparse::SolveOptions auto_opts;
  auto_opts.rel_tolerance = 1e-10;
  sparse::solve_general_or_throw(sys.matrix, sys.rhs, x_auto, "auto cascade",
                                 auto_opts);

  sparse::Vector x_gmres(sys.matrix.rows(), problem.inlet_temperature);
  sparse::SolveOptions gmres_opts;
  gmres_opts.rel_tolerance = 1e-10;
  gmres_opts.method = sparse::GeneralMethod::kGmres;
  gmres_opts.gmres_restart = 60;
  sparse::solve_general_or_throw(sys.matrix, sys.rhs, x_gmres, "gmres direct",
                                 gmres_opts);

  ASSERT_EQ(x_auto.size(), x_gmres.size());
  for (std::size_t i = 0; i < x_auto.size(); ++i) {
    ASSERT_NEAR(x_auto[i], x_gmres[i],
                1e-6 * std::max(1.0, std::abs(x_auto[i])))
        << "node " << i;
  }
}

TEST_P(RefillEquivalence, EvaluatorProbeCacheKeysOnBitPattern) {
  const CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  SystemEvaluator eval(problem, net, SimConfig{ThermalModelKind::k2RM, 4});
  const ThermalProbe first = eval.probe(3000.0);
  ASSERT_EQ(eval.simulations(), 1u);
  // Exact same double: served from the probe cache, no new simulation.
  const ThermalProbe again = eval.probe(3000.0);
  EXPECT_EQ(eval.simulations(), 1u);
  EXPECT_EQ(first.delta_t, again.delta_t);
  EXPECT_EQ(first.t_max, again.t_max);
  // A neighboring double is a different bit pattern — exact-match semantics
  // mean it simulates again (cheaply, through the cached plan).
  eval.probe(std::nextafter(3000.0, 4000.0));
  EXPECT_EQ(eval.simulations(), 2u);
}

TEST_P(RefillEquivalence, EvaluatorWorkspaceCountsReuses) {
  const CoolingProblem problem = plan_problem();
  const CoolingNetwork net = grid_network(problem);
  SystemEvaluator eval(problem, net, SimConfig{ThermalModelKind::k2RM, 4});
  const instrument::Snapshot before = instrument::snapshot();
  eval.probe(2000.0);
  eval.probe(2600.0);
  eval.probe(3200.0);
  const instrument::Snapshot d =
      instrument::delta(before, instrument::snapshot());
  EXPECT_GE(d.workspace_reuses, 3u);
  EXPECT_EQ(d.assemblies_refill, 3u);
}

INSTANTIATE_TEST_SUITE_P(Threads, RefillEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lcn
