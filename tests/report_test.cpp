// Tests for the design report generator.
#include <gtest/gtest.h>

#include "network/generators.hpp"
#include "opt/report.hpp"

namespace lcn {
namespace {

BenchmarkCase quick_case() {
  BenchmarkCase bench;
  bench.id = 97;
  bench.name = "unit-report";
  bench.problem.grid = Grid2D(21, 21, 100e-6);
  bench.problem.stack = make_interlayer_stack(2, 200e-6);
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 2.0, 61));
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 2.0, 62));
  bench.constraints.delta_t_max = 50.0;
  bench.constraints.t_max = 500.0;
  return bench;
}

TEST(DesignReport, ContainsEverySection) {
  const BenchmarkCase bench = quick_case();
  const CoolingNetwork net = make_straight_channels(bench.problem.grid);
  ReportOptions options;
  options.use_4rm = false;
  options.thermal_cell = 3;
  const std::string report = design_report(bench, net, 3000.0, options);
  for (const char* needle :
       {"design report", "constraints", "design rules: clean", "network:",
        "hydraulics @ 3.00 kPa", "laminar: model valid", "thermal (2RM)",
        "source layer 0", "source layer 1", "bottom source layer"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(DesignReport, FlagsConstraintViolations) {
  BenchmarkCase bench = quick_case();
  bench.constraints.t_max = 301.0;  // impossible
  bench.constraints.delta_t_max = 0.1;
  const CoolingNetwork net = make_straight_channels(bench.problem.grid);
  ReportOptions options;
  options.use_4rm = false;
  options.include_heatmap = false;
  const std::string report = design_report(bench, net, 1000.0, options);
  EXPECT_NE(report.find("VIOLATED"), std::string::npos);
  EXPECT_EQ(report.find("bottom source layer"), std::string::npos);
}

TEST(DesignReport, RejectsNonPositivePressure) {
  const BenchmarkCase bench = quick_case();
  const CoolingNetwork net = make_straight_channels(bench.problem.grid);
  EXPECT_THROW(design_report(bench, net, 0.0), ContractError);
}

}  // namespace
}  // namespace lcn
