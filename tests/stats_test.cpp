// Tests for flow statistics (Reynolds/laminar validation) and network
// geometric statistics.
#include <gtest/gtest.h>

#include "flow/flow_stats.hpp"
#include "network/generators.hpp"
#include "network/network_stats.hpp"

namespace lcn {
namespace {

constexpr double kPitch = 100e-6;

TEST(FlowStats, SingleChannelVelocityAndReynolds) {
  const int n = 11;
  const Grid2D grid(1, n, kPitch);
  CoolingNetwork net(grid, false);
  for (int c = 0; c < n; ++c) net.set_liquid(0, c);
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  net.add_port({0, n - 1, Side::kEast, PortKind::kOutlet});

  const ChannelGeometry channel{kPitch, 200e-6};
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, channel, water).solve(1000.0);
  const FlowStats stats = compute_flow_stats(net, sol, channel, water);

  // Uniform channel: every segment carries Q_sys, v = Q/A.
  const double v_expected = sol.system_flow / channel.cross_section();
  EXPECT_NEAR(stats.max_velocity, v_expected, v_expected * 1e-6);
  EXPECT_NEAR(stats.mean_velocity, v_expected, v_expected * 1e-6);
  EXPECT_EQ(stats.stagnant_cells, 0u);
  EXPECT_NEAR(stats.max_reynolds,
              segment_reynolds(v_expected, channel, water), 1e-9);
  EXPECT_TRUE(stats.laminar());
}

TEST(FlowStats, ScalesLinearlyWithPressure) {
  const Grid2D grid(21, 21, kPitch);
  const CoolingNetwork net = make_straight_channels(grid);
  const ChannelGeometry channel{kPitch, 200e-6};
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, channel, water).solve(1.0);
  const FlowStats s1 = compute_flow_stats(net, sol, channel, water, 1000.0);
  const FlowStats s2 = compute_flow_stats(net, sol, channel, water, 2000.0);
  EXPECT_NEAR(s2.max_velocity, 2.0 * s1.max_velocity,
              s2.max_velocity * 1e-9);
  EXPECT_NEAR(s2.max_reynolds, 2.0 * s1.max_reynolds,
              s2.max_reynolds * 1e-9);
}

TEST(FlowStats, BenchmarkPressuresStayLaminar) {
  // The paper's model assumes laminar flow; at the Table 3 operating points
  // (~10 kPa) the channels must be well below the transition.
  const Grid2D grid(101, 101, kPitch);
  const CoolingNetwork net = make_straight_channels(grid);
  const ChannelGeometry channel{kPitch, 200e-6};
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, channel, water).solve(1.0);
  const FlowStats stats =
      compute_flow_stats(net, sol, channel, water, 15000.0);
  EXPECT_TRUE(stats.laminar()) << "Re = " << stats.max_reynolds;
}

TEST(FlowStats, DeadEndCellsAreStagnant) {
  const Grid2D grid(5, 9, kPitch);
  CoolingNetwork net(grid, false);
  for (int c = 0; c < 9; ++c) net.set_liquid(0, c);
  // Dead-end stub hanging off the channel.
  net.set_liquid(1, 4);
  net.set_liquid(2, 4);
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  net.add_port({0, 8, Side::kEast, PortKind::kOutlet});
  const ChannelGeometry channel{kPitch, 200e-6};
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, channel, water).solve(1000.0);
  const FlowStats stats = compute_flow_stats(net, sol, channel, water);
  EXPECT_GE(stats.stagnant_cells, 1u);
}

TEST(NetworkStats, StraightChannelsCounts) {
  const Grid2D grid(21, 21, kPitch);
  const NetworkStats stats =
      compute_network_stats(make_straight_channels(grid), 200e-6);
  EXPECT_EQ(stats.liquid_cells, 11u * 21u);
  EXPECT_EQ(stats.branch_cells, 0u);
  EXPECT_EQ(stats.bend_cells, 0u);
  EXPECT_EQ(stats.dead_end_cells, 0u);
  // Interior cells of each row are straight.
  EXPECT_EQ(stats.straight_cells, 11u * 19u);
  EXPECT_EQ(stats.inlet_count, 11u);
  EXPECT_EQ(stats.outlet_count, 11u);
  // Side walls: each channel row is sealed top/bottom along its length plus
  // two end caps... ends carry ports but are still wall-less liquid faces.
  EXPECT_NEAR(stats.side_wall_area,
              11.0 * (2 * 21 + 2) * kPitch * 200e-6, 1e-12);
  EXPECT_NEAR(stats.liquid_fraction, 11.0 * 21.0 / 441.0, 1e-12);
}

TEST(NetworkStats, TreeHasBranchesAndBends) {
  const Grid2D grid(21, 21, kPitch);
  const NetworkStats stats = compute_network_stats(
      make_tree_network(grid, make_uniform_layout(grid, 6, 12)), 200e-6);
  EXPECT_GT(stats.branch_cells, 0u);
  EXPECT_GT(stats.bend_cells, 0u);
  EXPECT_EQ(stats.dead_end_cells, 0u);
  EXPECT_GT(stats.inlet_count, 0u);
}

TEST(NetworkStats, TsvCountMatchesPattern) {
  const Grid2D grid(21, 21, kPitch);
  const NetworkStats stats =
      compute_network_stats(CoolingNetwork(grid), 200e-6);
  EXPECT_EQ(stats.tsv_cells, 10u * 10u);  // odd/odd cells
  EXPECT_EQ(stats.liquid_cells, 0u);
}

TEST(ModulatedStraight, KeepsSelectedRowsOnly) {
  const Grid2D grid(21, 21, kPitch);
  std::vector<bool> enabled(11, false);
  enabled[0] = enabled[5] = enabled[10] = true;
  const CoolingNetwork net = make_modulated_straight(grid, enabled);
  EXPECT_EQ(net.liquid_count(), 3u * 21u);
  EXPECT_EQ(net.ports().size(), 6u);
  EXPECT_TRUE(net.is_liquid(10, 3));
  EXPECT_FALSE(net.is_liquid(2, 3));
  EXPECT_THROW(make_modulated_straight(grid, std::vector<bool>(11, false)),
               ContractError);
  EXPECT_THROW(make_modulated_straight(grid, std::vector<bool>(7, true)),
               ContractError);
}

TEST(ModulatedStraight, DensityProfileFollowsPower) {
  const Grid2D grid(21, 21, kPitch);
  PowerMap map(grid, 0.0);
  // Heat concentrated in the top band.
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 21; ++c) map.at(r, c) = 1.0;
  }
  const std::vector<bool> profile = density_profile_from_power(map, 3);
  EXPECT_EQ(std::count(profile.begin(), profile.end(), true), 3);
  // The selected rows are in the hot band (channel rows 0, 1, 2 = rows 0,2,4).
  EXPECT_TRUE(profile[0]);
  EXPECT_TRUE(profile[1]);
  EXPECT_TRUE(profile[2]);
}

}  // namespace
}  // namespace lcn
