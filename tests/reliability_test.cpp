// Reliability engine (DESIGN.md §S17): fault-model semantics, graceful
// degradation, and the Monte-Carlo sweep's determinism contract — identical
// statistics, bit for bit, at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/instrument.hpp"
#include "common/thread_pool.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/sa.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/robust.hpp"
#include "reliability/sweep.hpp"

namespace lcn {
namespace {

CoolingProblem small_problem() {
  CoolingProblem problem;
  problem.grid = Grid2D(31, 31, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.push_back(
      synthesize_power_map(problem.grid, 4.0, 31));
  problem.source_power.push_back(
      synthesize_power_map(problem.grid, 3.2, 32));
  return problem;
}

CoolingNetwork tree_network(const CoolingProblem& problem) {
  return make_tree_network(problem.grid,
                           make_uniform_layout(problem.grid, 10, 20));
}

DesignConstraints loose_limits() {
  DesignConstraints limits;
  limits.delta_t_max = 40.0;
  limits.t_max = 500.0;
  return limits;
}

SweepOptions small_sweep_options(int scenarios = 24) {
  SweepOptions options;
  options.scenarios = scenarios;
  options.seed = 77;
  options.sim = SimConfig{ThermalModelKind::k2RM, 4};
  options.search.rel_precision = 1e-2;
  options.search.max_probes = 40;
  return options;
}

TEST(FaultModelTest, ZeroMagnitudeScenarioReproducesNominalProbeExactly) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = tree_network(problem);
  SystemEvaluator nominal(problem, net, SimConfig{ThermalModelKind::k2RM, 4});
  const ThermalProbe reference = nominal.probe(5000.0);

  FaultScenario zero;
  zero.faults.push_back(
      {FaultKind::kChannelBlockage, 8, 8, 1, /*severity=*/0.0, 0.0, -1});
  zero.faults.push_back({FaultKind::kPumpDroop, 0, 0, 0, 0.0, 0.0, -1});
  zero.faults.push_back({FaultKind::kInletDrift, 0, 0, 0, 0.0, 0.0, -1});
  zero.faults.push_back({FaultKind::kPowerExcursion, 0, 0, 0, 0.0, 0.0, -1});
  const DegradedSystem degraded = apply_scenario(problem, net, zero);

  EXPECT_EQ(degraded.network, net);
  EXPECT_EQ(degraded.pressure_derate, 1.0);
  EXPECT_TRUE(degraded.problem.flow_options.cell_conductance_scale.empty());
  SystemEvaluator eval(degraded.problem, degraded.network,
                       SimConfig{ThermalModelKind::k2RM, 4});
  const ThermalProbe probe = eval.probe(5000.0);
  EXPECT_EQ(reference.delta_t, probe.delta_t);
  EXPECT_EQ(reference.t_max, probe.t_max);
}

TEST(FaultModelTest, PartialBlockageRaisesResistanceAndPeakTemperature) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = tree_network(problem);
  SystemEvaluator nominal(problem, net, SimConfig{ThermalModelKind::k2RM, 4});
  const ThermalProbe ref = nominal.probe(5000.0);
  const double w_ref = nominal.pumping_power(5000.0);

  // Clog the west half, where every tree's trunk enters: with all trunks
  // throttled the network must run hotter at the same pressure.
  FaultScenario scenario;
  scenario.faults.push_back(
      {FaultKind::kChannelBlockage, 15, 0, 15, /*severity=*/0.9, 0.0, -1});
  const DegradedSystem degraded = apply_scenario(problem, net, scenario);
  ASSERT_FALSE(degraded.problem.flow_options.cell_conductance_scale.empty());
  EXPECT_EQ(degraded.network, net);  // partial blockage keeps the geometry

  SystemEvaluator eval(degraded.problem, degraded.network,
                       SimConfig{ThermalModelKind::k2RM, 4});
  // Higher hydraulic resistance => less coolant at the same pressure =>
  // lower pumping power and a hotter chip.
  EXPECT_LT(eval.pumping_power(5000.0), w_ref);
  EXPECT_GT(eval.probe(5000.0).t_max, ref.t_max);
}

TEST(FaultModelTest, FullyBlockedInletBranchIsInfeasible) {
  const CoolingProblem problem = small_problem();
  // A serpentine has exactly one inlet; fully blocking its cell leaves a
  // liquid network whose pump is decoupled — no flow, no evaluation.
  CoolingNetwork net = make_serpentine(problem.grid);
  ASSERT_EQ(net.ports().size(), 2u);
  const Port inlet = net.ports().front().kind == PortKind::kInlet
                         ? net.ports().front()
                         : net.ports().back();

  FaultScenario scenario;
  scenario.faults.push_back({FaultKind::kChannelBlockage, inlet.row,
                             inlet.col, 0, /*severity=*/1.0, 0.0, -1});
  const DegradedSystem degraded = apply_scenario(problem, net, scenario);
  EXPECT_LT(degraded.network.liquid_count(), net.liquid_count());

  const ScenarioOutcome outcome =
      evaluate_scenario(degraded, scenario, loose_limits(), 5000.0,
                        small_sweep_options());
  EXPECT_FALSE(outcome.evaluated);
  EXPECT_FALSE(outcome.feasible);
  EXPECT_EQ(outcome.recovery, RecoveryKind::kUnrecoverable);
}

TEST(FaultModelTest, PumpDroopAndDriftComposeIntoDegradedSystem) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = tree_network(problem);
  FaultScenario scenario;
  scenario.faults.push_back({FaultKind::kPumpDroop, 0, 0, 0, 0.2, 0.0, -1});
  scenario.faults.push_back({FaultKind::kPumpDroop, 0, 0, 0, 0.5, 0.0, -1});
  scenario.faults.push_back({FaultKind::kInletDrift, 0, 0, 0, 0.0, 5.0, -1});
  scenario.faults.push_back(
      {FaultKind::kPowerExcursion, 0, 0, 0, 0.0, 0.25, 1});
  const DegradedSystem degraded = apply_scenario(problem, net, scenario);
  EXPECT_DOUBLE_EQ(degraded.pressure_derate, 0.8 * 0.5);
  EXPECT_DOUBLE_EQ(degraded.delivered_pressure(1000.0), 400.0);
  EXPECT_DOUBLE_EQ(degraded.problem.inlet_temperature,
                   problem.inlet_temperature + 5.0);
  EXPECT_NEAR(degraded.problem.source_power[1].total(),
              1.25 * problem.source_power[1].total(), 1e-9);
  EXPECT_DOUBLE_EQ(degraded.problem.source_power[0].total(),
                   problem.source_power[0].total());
  // The nominal inputs are untouched.
  EXPECT_DOUBLE_EQ(problem.inlet_temperature, 300.0);
}

TEST(FaultModelTest, ScenarioSamplingIsAPureFunctionOfSeedAndIndex) {
  FaultDistribution dist;
  dist.p_blockage = 1.0;  // scenarios always non-empty, so seeds can't alias
  const Grid2D grid(31, 31, 100e-6);
  for (const std::size_t index : {std::size_t{0}, std::size_t{7}}) {
    Rng a = scenario_rng(123, index);
    Rng b = scenario_rng(123, index);
    const FaultScenario sa = sample_scenario(dist, grid, 2, a);
    const FaultScenario sb = sample_scenario(dist, grid, 2, b);
    EXPECT_EQ(sa.faults, sb.faults);
    EXPECT_EQ(scenario_fingerprint(sa), scenario_fingerprint(sb));
  }
  Rng a = scenario_rng(123, 0);
  Rng b = scenario_rng(124, 0);
  const FaultScenario sa = sample_scenario(dist, grid, 2, a);
  const FaultScenario sb = sample_scenario(dist, grid, 2, b);
  EXPECT_NE(scenario_fingerprint(sa), scenario_fingerprint(sb));
}

TEST(SweepTest, DroopOnlyScenarioIsRecoverableWithHigherCommand) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = tree_network(problem);
  DesignConstraints limits;
  limits.delta_t_max = 12.0;
  limits.t_max = 400.0;

  // Find the nominal operating point, then starve the pump by 40%: the
  // delivered pressure falls below the feasibility threshold and the planner
  // must find a higher command that restores it.
  const SweepOptions options = small_sweep_options();
  SystemEvaluator eval(problem, net, SimConfig{ThermalModelKind::k2RM, 4});
  const EvalResult nominal = evaluate_p1(eval, limits, options.search);
  ASSERT_TRUE(nominal.feasible);

  FaultScenario scenario;
  scenario.faults.push_back({FaultKind::kPumpDroop, 0, 0, 0, 0.4, 0.0, -1});
  const DegradedSystem degraded = apply_scenario(problem, net, scenario);
  const ScenarioOutcome outcome =
      evaluate_scenario(degraded, scenario, limits, nominal.p_sys, options);
  ASSERT_TRUE(outcome.evaluated);
  EXPECT_FALSE(outcome.feasible);
  ASSERT_EQ(outcome.recovery, RecoveryKind::kRecovered);
  // The recovery command exceeds the nominal one (it must out-shout the
  // droop) and its pumping power is at least the nominal operating cost.
  EXPECT_GT(outcome.recovery_p_sys, nominal.p_sys);
  EXPECT_GE(outcome.recovery_w_pump, nominal.w_pump * (1.0 - 1e-6));
}

TEST(SweepTest, ReportStatisticsAreConsistent) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = tree_network(problem);
  const SweepReport report = run_sweep(problem, net, loose_limits(), 5000.0,
                                       small_sweep_options(16));
  ASSERT_EQ(report.outcomes.size(), 16u);
  EXPECT_GE(report.p_exceed_t_max, 0.0);
  EXPECT_LE(report.p_exceed_t_max, 1.0);
  EXPECT_GE(report.p_exceed_delta_t, 0.0);
  EXPECT_LE(report.p_exceed_delta_t, 1.0);
  EXPECT_EQ(report.infeasible,
            report.recovered + report.unrecoverable);
  EXPECT_GE(report.worst_scenario, 0);
  EXPECT_LT(report.worst_scenario, 16);
  EXPECT_GE(report.t_margin_q90, report.t_margin_q50);
  EXPECT_GE(report.t_margin_q50, report.t_margin_q10);
  // The loose limits keep the nominal design feasible.
  EXPECT_LT(report.nominal.t_max, loose_limits().t_max);
}

TEST(SweepTest, SweepBumpsInstrumentationCounters) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = tree_network(problem);
  const instrument::Snapshot before = instrument::snapshot();
  const SweepReport report = run_sweep(problem, net, loose_limits(), 5000.0,
                                       small_sweep_options(12));
  const instrument::Snapshot delta =
      instrument::delta(before, instrument::snapshot());
  EXPECT_EQ(delta.scenarios_evaluated, 12u);
  EXPECT_EQ(delta.scenarios_infeasible,
            static_cast<std::uint64_t>(report.infeasible));
  EXPECT_GE(delta.recovery_searches,
            static_cast<std::uint64_t>(report.recovered));
  // The new counters are part of the JSON record schema.
  EXPECT_NE(delta.json().find("\"scenarios_evaluated\":12"),
            std::string::npos);
}

TEST(RobustTest, EmptySampleEqualsNominalEvaluation) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = tree_network(problem);
  DesignConstraints limits;
  limits.delta_t_max = 12.0;
  limits.t_max = 400.0;
  SystemEvaluator eval(problem, net, SimConfig{ThermalModelKind::k2RM, 4});
  const EvalResult nominal = evaluate_p1(eval, limits);

  const EvalResult robust = robust_evaluate(
      problem, net, limits, EvalMode::kFullP1,
      SimConfig{ThermalModelKind::k2RM, 4}, PressureSearchOptions{},
      RobustSample{});
  EXPECT_EQ(nominal.feasible, robust.feasible);
  EXPECT_EQ(nominal.score, robust.score);
}

TEST(RobustTest, WorstCaseScoreIsNoBetterThanNominal) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = tree_network(problem);
  DesignConstraints limits;
  limits.delta_t_max = 20.0;
  limits.t_max = 450.0;
  const SimConfig sim{ThermalModelKind::k2RM, 4};

  SystemEvaluator eval(problem, net, sim);
  const EvalResult nominal = evaluate_p1(eval, limits);
  ASSERT_TRUE(nominal.feasible);

  RobustOptions options;
  options.scenarios = 3;
  options.seed = 5;
  // Keep the sample gentle so the degraded variants stay feasible.
  options.distribution.full_blockage_fraction = 0.0;
  options.distribution.severity_max = 0.5;
  const RobustSample sample(problem.grid, 2, options);
  ASSERT_EQ(sample.scenarios().size(), 3u);

  const EvalResult robust =
      robust_evaluate(problem, net, limits, EvalMode::kFullP1, sim,
                      PressureSearchOptions{}, sample);
  if (robust.feasible) {
    EXPECT_GE(robust.score, nominal.score);
  }
}

// ---------------------------------------------------------------------------
// Determinism across thread counts (the PR-1 contract extended to sweeps).

class ReliabilityParallel : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_global_pool_threads(GetParam()); }
  static void TearDownTestSuite() { set_global_pool_threads(0); }
};

void expect_reports_identical(const SweepReport& a, const SweepReport& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t k = 0; k < a.outcomes.size(); ++k) {
    const ScenarioOutcome& x = a.outcomes[k];
    const ScenarioOutcome& y = b.outcomes[k];
    EXPECT_EQ(x.scenario.faults, y.scenario.faults) << "scenario " << k;
    EXPECT_EQ(x.evaluated, y.evaluated) << "scenario " << k;
    EXPECT_EQ(x.feasible, y.feasible) << "scenario " << k;
    EXPECT_EQ(x.p_delivered, y.p_delivered) << "scenario " << k;
    EXPECT_EQ(x.w_pump, y.w_pump) << "scenario " << k;
    EXPECT_EQ(x.at_p.t_max, y.at_p.t_max) << "scenario " << k;
    EXPECT_EQ(x.at_p.delta_t, y.at_p.delta_t) << "scenario " << k;
    EXPECT_EQ(x.recovery, y.recovery) << "scenario " << k;
    EXPECT_EQ(x.recovery_p_sys, y.recovery_p_sys) << "scenario " << k;
    EXPECT_EQ(x.recovery_w_pump, y.recovery_w_pump) << "scenario " << k;
  }
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.infeasible, b.infeasible);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.unrecoverable, b.unrecoverable);
  EXPECT_EQ(a.p_exceed_t_max, b.p_exceed_t_max);
  EXPECT_EQ(a.p_exceed_delta_t, b.p_exceed_delta_t);
  EXPECT_EQ(a.t_margin_q10, b.t_margin_q10);
  EXPECT_EQ(a.t_margin_q50, b.t_margin_q50);
  EXPECT_EQ(a.t_margin_q90, b.t_margin_q90);
  EXPECT_EQ(a.dt_margin_q10, b.dt_margin_q10);
  EXPECT_EQ(a.dt_margin_q50, b.dt_margin_q50);
  EXPECT_EQ(a.dt_margin_q90, b.dt_margin_q90);
  EXPECT_EQ(a.worst_scenario, b.worst_scenario);
  EXPECT_EQ(a.mean_recovery_w_extra, b.mean_recovery_w_extra);
}

TEST_P(ReliabilityParallel, SweepStatisticsIndependentOfThreadCount) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = tree_network(problem);
  DesignConstraints limits;
  limits.delta_t_max = 12.0;
  limits.t_max = 380.0;

  static const SweepReport reference = [&] {
    set_global_pool_threads(1);
    return run_sweep(problem, net, limits, 5000.0, small_sweep_options());
  }();
  set_global_pool_threads(GetParam());
  const SweepReport report =
      run_sweep(problem, net, limits, 5000.0, small_sweep_options());
  expect_reports_identical(reference, report);
}

INSTANTIATE_TEST_SUITE_P(Threads, ReliabilityParallel,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(RobustSaTest, RobustSaRunIsDeterministicAcrossThreadCounts) {
  BenchmarkCase bench;
  bench.id = 97;
  bench.name = "robust-sa";
  bench.problem = small_problem();
  bench.constraints.delta_t_max = 14.0;
  bench.constraints.t_max = 420.0;

  RobustOptions robust;
  robust.scenarios = 2;
  robust.seed = 9;
  robust.distribution.full_blockage_fraction = 0.0;
  robust.distribution.severity_max = 0.5;

  auto run_once = [&]() {
    TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower, 7);
    opt.enable_robust_mode(robust);
    std::vector<SaStage> stages;
    stages.push_back(
        {"robust", 2, 1, 2, 4, SimConfig{ThermalModelKind::k2RM, 4}, false,
         1});
    const DesignOutcome outcome = opt.run(stages);
    return std::pair{outcome.network.content_hash(), outcome.eval.score};
  };

  set_global_pool_threads(1);
  const auto reference = run_once();
  set_global_pool_threads(4);
  const auto parallel = run_once();
  set_global_pool_threads(0);
  EXPECT_EQ(reference.first, parallel.first);
  EXPECT_EQ(reference.second, parallel.second);
}

}  // namespace
}  // namespace lcn
