// Determinism suite for island SA / parallel tempering (DESIGN.md §S21):
// a K=1 island run with communication off reproduces the plain single-chain
// optimizer exactly; a K=4 communicating run — best design, Pareto archive,
// migration/swap logs, counters — is bit-identical at any thread count; and
// communication decisions replay exactly from the seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/thread_pool.hpp"
#include "network/generators.hpp"
#include "opt/islands.hpp"
#include "opt/sa.hpp"

namespace lcn {
namespace {

BenchmarkCase island_case(double watts = 8.0) {
  BenchmarkCase bench;
  bench.id = 97;
  bench.name = "island-unit";
  bench.problem.grid = Grid2D(31, 31, 100e-6);
  bench.problem.stack = make_interlayer_stack(2, 200e-6);
  // Same power distribution as opt_test's small_case: the problem is
  // feasible at ΔT* = 12, so pressure searches terminate quickly on every
  // design any chain can reach (hot-spot seeds that make the case
  // infeasible send each probe into a 60-probe Krylov grind).
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 0.55 * watts, 11));
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 0.45 * watts, 12));
  bench.constraints.delta_t_max = 12.0;
  bench.constraints.t_max = 400.0;
  return bench;
}

SimConfig fast_sim() { return SimConfig{ThermalModelKind::k2RM, 3}; }

// A short two-stage schedule covering both cost modes of Problem 1
// (fixed-pressure stage-1 cost, then the full pressure search).
std::vector<SaStage> p1_schedule() {
  std::vector<SaStage> stages;
  stages.push_back({"u1-fixedP", 3, 1, 2, 4, fast_sim(), true, 1});
  stages.push_back({"u2-full", 3, 1, 2, 4, fast_sim(), false, 1});
  return stages;
}

// Problem-2 schedule with grouped iterations (leader/follower probes).
std::vector<SaStage> p2_schedule() {
  std::vector<SaStage> stages;
  stages.push_back({"g1", 4, 1, 2, 4, fast_sim(), false, 2});
  return stages;
}

// The deterministic fingerprint of an island run: everything the §S21
// contract pins down. Cache hit/miss totals are deliberately absent — with
// several workers two chains can miss on the same key concurrently, so
// those totals are the one documented thread-count-dependent quantity.
struct RunPrint {
  std::uint64_t best_design = 0;
  double best_score = 0.0;
  int best_island = 0;
  std::size_t evaluations = 0;
  std::vector<std::uint64_t> island_designs;
  std::vector<double> island_scores;
  std::uint64_t migrations = 0;
  std::uint64_t migration_attempts = 0;
  std::uint64_t pt_swaps = 0;
  std::uint64_t pt_swap_attempts = 0;
  std::vector<CommEvent> events;
  std::string archive;
  std::uint64_t archive_inserts = 0;

  friend bool operator==(const RunPrint&, const RunPrint&) = default;
};

RunPrint run_print(const IslandOutcome& out) {
  RunPrint print;
  print.best_design = out.best.network.content_hash();
  print.best_score = out.best.eval.score;
  print.best_island = out.best_island;
  print.evaluations = out.best.evaluations;
  print.island_designs = out.island_designs;
  print.island_scores = out.island_scores;
  print.migrations = out.migrations;
  print.migration_attempts = out.migration_attempts;
  print.pt_swaps = out.pt_swaps;
  print.pt_swap_attempts = out.pt_swap_attempts;
  print.events = out.events;
  print.archive = out.archive.to_jsonl();
  print.archive_inserts = out.archive.inserted();
  return print;
}

IslandOptions communicating_options() {
  IslandOptions options;
  options.islands = 4;
  options.migration_period = 2;
  options.tempering = true;
  return options;
}

TEST(Islands, SoloIslandMatchesPlainOptimizerBitExactly) {
  const BenchmarkCase bench = island_case();
  const std::vector<SaStage> stages = p1_schedule();

  TreeTopologyOptimizer plain(bench, DesignObjective::kPumpingPower, 11);
  const DesignOutcome reference = plain.run(stages);

  IslandOptions solo;  // islands = 1, migration off, tempering off
  IslandOptimizer islands(bench, DesignObjective::kPumpingPower, solo, 11);
  const IslandOutcome outcome = islands.run(stages);

  EXPECT_EQ(outcome.best.network.content_hash(),
            reference.network.content_hash());
  EXPECT_EQ(outcome.best.direction, reference.direction);
  EXPECT_EQ(outcome.best.evaluations, reference.evaluations);
  EXPECT_DOUBLE_EQ(outcome.best.eval.score, reference.eval.score);
  EXPECT_DOUBLE_EQ(outcome.best.eval.p_sys, reference.eval.p_sys);
  EXPECT_DOUBLE_EQ(outcome.best.eval.w_pump, reference.eval.w_pump);
  // A lone chain never communicates.
  EXPECT_EQ(outcome.best_island, 0);
  EXPECT_TRUE(outcome.events.empty());
  EXPECT_EQ(outcome.migration_attempts, 0u);
  EXPECT_EQ(outcome.pt_swap_attempts, 0u);
  ASSERT_EQ(outcome.island_designs.size(), 1u);
  EXPECT_EQ(outcome.island_designs[0], reference.network.content_hash());
  EXPECT_FALSE(outcome.archive.empty());
}

TEST(Islands, SoloIslandMatchesPlainOnProblem2GroupedStages) {
  const BenchmarkCase bench = island_case();
  const std::vector<SaStage> stages = p2_schedule();

  TreeTopologyOptimizer plain(bench, DesignObjective::kThermalGradient, 7);
  const DesignOutcome reference = plain.run(stages);

  IslandOptimizer islands(bench, DesignObjective::kThermalGradient,
                          IslandOptions{}, 7);
  const IslandOutcome outcome = islands.run(stages);
  EXPECT_EQ(outcome.best.network.content_hash(),
            reference.network.content_hash());
  EXPECT_EQ(outcome.best.evaluations, reference.evaluations);
  EXPECT_DOUBLE_EQ(outcome.best.eval.score, reference.eval.score);
}

TEST(Islands, CommunicationReplaysExactlyFromTheSeed) {
  const BenchmarkCase bench = island_case();
  const std::vector<SaStage> stages = p1_schedule();
  const IslandOptions options = communicating_options();

  IslandOptimizer a(bench, DesignObjective::kPumpingPower, options, 37);
  IslandOptimizer b(bench, DesignObjective::kPumpingPower, options, 37);
  const RunPrint first = run_print(a.run(stages));
  const RunPrint second = run_print(b.run(stages));
  EXPECT_EQ(first, second);

  // The event log is structurally sound: tempering pairs are adjacent with
  // alternating parity, migration donors never self-donate, and the
  // accepted flags reconcile with the counters.
  std::uint64_t swaps = 0, migrations = 0;
  for (const CommEvent& e : first.events) {
    if (e.kind == CommEvent::Kind::kPtSwap) {
      EXPECT_EQ(e.to, e.from + 1);
      EXPECT_EQ(e.from % 2, e.iter % 2);
      if (e.accepted) ++swaps;
    } else {
      EXPECT_NE(e.from, e.to);
      EXPECT_GE(e.from, 0);
      EXPECT_LT(e.from, options.islands);
      if (e.accepted) ++migrations;
    }
  }
  EXPECT_EQ(swaps, first.pt_swaps);
  EXPECT_EQ(migrations, first.migrations);
  EXPECT_GT(first.pt_swap_attempts, 0u);
  EXPECT_GT(first.migration_attempts, 0u);
  // Attempts are schedule-determined: every island attempts a migration at
  // each migration point regardless of acceptance.
  EXPECT_EQ(first.migration_attempts % options.islands, 0u);
}

TEST(Islands, DisabledCommunicationLeavesNoTrace) {
  const BenchmarkCase bench = island_case();
  IslandOptions options;
  options.islands = 2;  // K > 1 but no migration, no tempering
  IslandOptimizer opt(bench, DesignObjective::kPumpingPower, options, 3);
  const IslandOutcome out = opt.run(p1_schedule());
  EXPECT_TRUE(out.events.empty());
  EXPECT_EQ(out.migration_attempts, 0u);
  EXPECT_EQ(out.pt_swap_attempts, 0u);
  ASSERT_EQ(out.island_designs.size(), 2u);
}

TEST(Islands, SharedCacheDeduplicatesAcrossChains) {
  const BenchmarkCase bench = island_case();
  IslandOptions options;
  options.islands = 3;
  IslandOptimizer opt(bench, DesignObjective::kPumpingPower, options, 5);
  const IslandOutcome out = opt.run(p1_schedule());
  // All chains start every round from the same seeded incumbent, so the
  // second and third chains' round-opening evaluations must hit the entry
  // the first chain stored in the shared cache.
  EXPECT_GT(opt.cache().hits(), 0u);
  // And the population as a whole looked up exactly one cache entry per
  // candidate scoring.
  EXPECT_GE(out.best.evaluations, opt.cache().misses());
}

TEST(Islands, RobustModeRekeysSharedCacheAndStaysDeterministic) {
  const BenchmarkCase bench = island_case();
  IslandOptions options;
  options.islands = 2;
  options.migration_period = 2;

  RobustOptions robust;
  robust.scenarios = 1;
  // The default robust seed's first scenario is the empty "nominal" draw,
  // which would make one-scenario robust scoring a no-op; this seed draws
  // droop(24%) + drift(+1.7K), so worst-case scores genuinely differ.
  robust.seed = 2;

  IslandOptimizer nominal(bench, DesignObjective::kPumpingPower, options, 13);
  const IslandOutcome nominal_out = nominal.run(p1_schedule());

  IslandOptimizer a(bench, DesignObjective::kPumpingPower, options, 13);
  a.enable_robust_mode(robust);
  const IslandOutcome robust_a = a.run(p1_schedule());

  IslandOptimizer b(bench, DesignObjective::kPumpingPower, options, 13);
  b.enable_robust_mode(robust);
  const IslandOutcome robust_b = b.run(p1_schedule());

  // Robust runs replay bit-identically...
  EXPECT_EQ(run_print(robust_a), run_print(robust_b));
  // ...and share the cache across chains under the robust fingerprint.
  EXPECT_GT(a.cache().hits(), 0u);
  // Worst-case-over-faults scoring differs from nominal scoring: identical
  // archives would mean the robust fingerprint aliased nominal entries.
  EXPECT_NE(run_print(robust_a).archive, run_print(nominal_out).archive);
}

// Thread sweep: the full communicating fingerprint at 1/2/4/8 workers must
// equal the single-thread reference (same idiom as ParallelEquivalence).
class IslandDeterminism : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_global_pool_threads(GetParam()); }
  static void TearDownTestSuite() { set_global_pool_threads(0); }
};

struct SweepResult {
  RunPrint print;
  instrument::Snapshot delta;  ///< process counters attributable to the run
};

SweepResult run_communicating() {
  const BenchmarkCase bench = island_case();
  IslandOptimizer opt(bench, DesignObjective::kPumpingPower,
                      communicating_options(), 23);
  const instrument::Snapshot before = instrument::snapshot();
  const IslandOutcome out = opt.run(p1_schedule());
  const instrument::Snapshot after = instrument::snapshot();
  SweepResult result;
  result.print = run_print(out);
  result.delta = instrument::delta(before, after);
  return result;
}

TEST_P(IslandDeterminism, CommunicatingRunIsThreadCountInvariant) {
  static const SweepResult reference = [] {
    set_global_pool_threads(1);
    return run_communicating();
  }();
  set_global_pool_threads(GetParam());
  const SweepResult run = run_communicating();
  EXPECT_EQ(reference.print, run.print);
  // The §S21 instrument counters are main-thread-ordered, so their deltas
  // are exact at any pool width — and reconcile with the outcome.
  EXPECT_EQ(run.delta.island_migrations, run.print.migrations);
  EXPECT_EQ(run.delta.pt_swaps, run.print.pt_swaps);
  EXPECT_EQ(run.delta.archive_inserts, run.print.archive_inserts);
  EXPECT_EQ(reference.delta.island_migrations, run.delta.island_migrations);
  EXPECT_EQ(reference.delta.pt_swaps, run.delta.pt_swaps);
  EXPECT_EQ(reference.delta.archive_inserts, run.delta.archive_inserts);
}

INSTANTIATE_TEST_SUITE_P(Threads, IslandDeterminism,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(IslandOptions, EnvParsingUsesDocumentedDefaults) {
  unsetenv("LCN_ISLANDS");
  unsetenv("LCN_MIGRATION_PERIOD");
  unsetenv("LCN_PT");
  IslandOptions options = island_options_from_env();
  EXPECT_EQ(options.islands, 4);
  EXPECT_EQ(options.migration_period, 8);
  EXPECT_FALSE(options.tempering);

  setenv("LCN_ISLANDS", "6", 1);
  setenv("LCN_MIGRATION_PERIOD", "0", 1);
  setenv("LCN_PT", "1", 1);
  options = island_options_from_env();
  EXPECT_EQ(options.islands, 6);
  EXPECT_EQ(options.migration_period, 0);
  EXPECT_TRUE(options.tempering);

  setenv("LCN_ISLANDS", "-3", 1);  // nonsense clamps to a single island
  options = island_options_from_env();
  EXPECT_EQ(options.islands, 1);
  unsetenv("LCN_ISLANDS");
  unsetenv("LCN_MIGRATION_PERIOD");
  unsetenv("LCN_PT");
}

TEST(IslandOptions, InvalidConfigurationsAreRejected) {
  const BenchmarkCase bench = island_case();
  IslandOptions zero;
  zero.islands = 0;
  EXPECT_THROW(
      IslandOptimizer(bench, DesignObjective::kPumpingPower, zero, 1),
      ContractError);
  IslandOptions bad_spread;
  bad_spread.tempering_spread = 0.0;
  EXPECT_THROW(
      IslandOptimizer(bench, DesignObjective::kPumpingPower, bad_spread, 1),
      ContractError);
  IslandOptimizer ok(bench, DesignObjective::kPumpingPower, IslandOptions{},
                     1);
  EXPECT_THROW(ok.run({}), ContractError);
}

}  // namespace
}  // namespace lcn
