// Tests for the synthetic ICCAD-2015 benchmark suite (S11): every Table 2
// statistic must be matched exactly, and the cases must be well-posed for
// both problem formulations.
#include <gtest/gtest.h>

#include "geom/benchmarks.hpp"
#include "network/design_rules.hpp"
#include "network/generators.hpp"

namespace lcn {
namespace {

TEST(IccadCases, Table2StatisticsMatchThePaper) {
  struct Row {
    int dies;
    double h_c;
    double power;
    double dt_star;
    double tmax_star;
  };
  const Row expected[5] = {
      {2, 200e-6, 42.038, 15.0, 358.15}, {2, 400e-6, 37.038, 10.0, 358.15},
      {2, 400e-6, 43.038, 15.0, 358.15}, {3, 200e-6, 43.438, 10.0, 358.15},
      {2, 400e-6, 148.174, 10.0, 338.15}};
  for (int id = 1; id <= 5; ++id) {
    const BenchmarkCase bench = make_iccad_case(id);
    const Row& row = expected[id - 1];
    EXPECT_EQ(bench.dies(), row.dies) << "case " << id;
    EXPECT_NEAR(bench.channel_height(), row.h_c, 1e-12) << "case " << id;
    EXPECT_NEAR(bench.problem.total_power(), row.power, 1e-6)
        << "case " << id;
    EXPECT_DOUBLE_EQ(bench.constraints.delta_t_max, row.dt_star)
        << "case " << id;
    EXPECT_DOUBLE_EQ(bench.constraints.t_max, row.tmax_star) << "case " << id;
    // 10.1 mm die, 101x101 basic cells of 100 µm.
    EXPECT_EQ(bench.problem.grid.rows(), 101);
    EXPECT_EQ(bench.problem.grid.cols(), 101);
    EXPECT_NEAR(bench.problem.grid.pitch(), 100e-6, 1e-15);
  }
}

TEST(IccadCases, CaseSpecificConstraints) {
  EXPECT_TRUE(make_iccad_case(1).forbidden.empty());
  EXPECT_FALSE(make_iccad_case(3).forbidden.empty());
  EXPECT_FALSE(make_iccad_case(1).matched_layers);
  EXPECT_TRUE(make_iccad_case(4).matched_layers);
  // Case 4 has two channel layers to match across.
  EXPECT_EQ(make_iccad_case(4).problem.stack.channel_count(), 2);
}

TEST(IccadCases, Deterministic) {
  const BenchmarkCase a = make_iccad_case(2);
  const BenchmarkCase b = make_iccad_case(2);
  EXPECT_EQ(a.problem.source_power[0].cells(),
            b.problem.source_power[0].cells());
  EXPECT_EQ(a.problem.source_power[1].cells(),
            b.problem.source_power[1].cells());
}

TEST(IccadCases, PowerMapsAreNonUniformAndSmooth) {
  for (int id = 1; id <= 5; ++id) {
    const BenchmarkCase bench = make_iccad_case(id);
    for (const PowerMap& map : bench.problem.source_power) {
      const double mean = map.total() / map.grid().cell_count();
      EXPECT_GT(map.max_cell(), 1.5 * mean) << "case " << id;
      // Smoothness: no cell-to-cell jump exceeding the map's peak.
      for (int r = 0; r < map.grid().rows(); ++r) {
        for (int c = 0; c + 1 < map.grid().cols(); ++c) {
          ASSERT_LT(std::abs(map.at(r, c + 1) - map.at(r, c)),
                    0.6 * map.max_cell())
              << "case " << id;
        }
      }
    }
  }
}

TEST(IccadCases, RejectsInvalidId) {
  EXPECT_THROW(make_iccad_case(0), ContractError);
  EXPECT_THROW(make_iccad_case(6), ContractError);
}

TEST(IccadCases, Problem2BudgetIsTenthOfAPercent) {
  const BenchmarkCase bench = make_iccad_case(5);
  EXPECT_NEAR(problem2_pump_budget(bench), 0.148174, 1e-6);
}

TEST(IccadCases, Case3StraightBaselineDetoursCleanly) {
  const BenchmarkCase bench = make_iccad_case(3);
  CoolingNetwork net = make_straight_channels(bench.problem.grid);
  apply_forbidden_region(net, bench.forbidden);
  DesignRules rules;
  rules.forbidden = bench.forbidden;
  EXPECT_TRUE(check_design_rules(net, rules).ok());
}

TEST(IccadCases, AllCasesValidateAndTreesFit) {
  for (const BenchmarkCase& bench : all_iccad_cases()) {
    EXPECT_NO_THROW(bench.problem.validate());
    CoolingNetwork net = make_tree_network(
        bench.problem.grid, make_uniform_layout(bench.problem.grid, 30, 64));
    if (!bench.forbidden.empty()) {
      apply_forbidden_region(net, bench.forbidden);
    }
    DesignRules rules;
    rules.forbidden = bench.forbidden;
    EXPECT_TRUE(check_design_rules(net, rules).ok())
        << "case " << bench.id;
  }
}

}  // namespace
}  // namespace lcn
