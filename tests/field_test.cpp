// Tests for field/metric extraction, heatmap rendering, and physical
// invariances (D4 symmetry of the full simulation pipeline).
#include <gtest/gtest.h>

#include "network/generators.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"
#include "thermal/temp_map.hpp"

namespace lcn {
namespace {

AssembledThermal tiny_system() {
  AssembledThermal system;
  sparse::TripletList t(4, 4);
  for (std::size_t i = 0; i < 4; ++i) t.add(i, i, 1.0);
  system.matrix = t.to_csr();
  system.rhs.assign(4, 0.0);
  system.capacitance.assign(4, 1.0);
  system.source_nodes = {{0, 1}, {2, 3}};
  system.map_rows = 1;
  system.map_cols = 2;
  system.inlet_temperature = 300.0;
  system.volumetric_heat = 4.18e6;
  return system;
}

TEST(MakeField, ExtractsMetricsPerLayer) {
  const AssembledThermal system = tiny_system();
  const ThermalField field = make_field(system, {310.0, 312.0, 305.0, 330.0});
  EXPECT_DOUBLE_EQ(field.t_max, 330.0);
  EXPECT_DOUBLE_EQ(field.per_layer_delta[0], 2.0);
  EXPECT_DOUBLE_EQ(field.per_layer_delta[1], 25.0);
  EXPECT_DOUBLE_EQ(field.delta_t, 25.0);
  EXPECT_EQ(field.source_maps[0], (std::vector<double>{310.0, 312.0}));
}

TEST(MakeField, RejectsWrongSize) {
  const AssembledThermal system = tiny_system();
  EXPECT_THROW(make_field(system, {1.0, 2.0}), ContractError);
}

TEST(AdvectedHeat, SumsOutletEnthalpy) {
  AssembledThermal system = tiny_system();
  system.outlet_terms = {{1, 2e-9}, {3, 1e-9}};
  const double q = advected_heat(system, {300.0, 310.0, 300.0, 320.0});
  EXPECT_NEAR(q, 4.18e6 * (2e-9 * 10.0 + 1e-9 * 20.0), 1e-9);
}

TEST(AsciiHeatmap, RendersWithLegendAndRightShape) {
  const AssembledThermal system = tiny_system();
  const ThermalField field = make_field(system, {310.0, 312.0, 305.0, 330.0});
  const std::string art = ascii_heatmap(field, 0, 8);
  EXPECT_NE(art.find("min 310.00 K"), std::string::npos);
  EXPECT_NE(art.find("max 312.00 K"), std::string::npos);
  EXPECT_THROW(ascii_heatmap(field, 5), ContractError);
}

TEST(TemperatureCsv, MatrixShape) {
  const AssembledThermal system = tiny_system();
  const ThermalField field = make_field(system, {310.0, 312.0, 305.0, 330.0});
  EXPECT_EQ(temperature_csv(field, 0), "310.0000,312.0000\n");
  EXPECT_EQ(temperature_csv(field, 1), "305.0000,330.0000\n");
}

// Physical invariance: rotating the whole world (power maps + network) by a
// D4 symmetry must leave every metric unchanged.
class D4Invariance : public ::testing::TestWithParam<int> {};

TEST_P(D4Invariance, MetricsInvariantUnderWorldTransform) {
  const int code = GetParam();
  const D4Transform t(code);

  CoolingProblem problem;
  problem.grid = Grid2D(21, 21, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.push_back(synthesize_power_map(problem.grid, 3.0, 8));
  problem.source_power.push_back(synthesize_power_map(problem.grid, 2.0, 9));

  const CoolingNetwork net =
      make_tree_network(problem.grid, make_uniform_layout(problem.grid, 6, 12));

  CoolingProblem transformed = problem;
  transformed.source_power.clear();
  for (const PowerMap& map : problem.source_power) {
    transformed.source_power.push_back(map.transformed(t));
  }
  const CoolingNetwork net_t = net.transformed(t);

  const Thermal2RM sim(problem, {net}, 3);
  const Thermal2RM sim_t(transformed, {net_t}, 3);
  const ThermalField a = sim.simulate(3000.0);
  const ThermalField b = sim_t.simulate(3000.0);
  EXPECT_NEAR(a.t_max, b.t_max, 0.05) << "code " << code;
  EXPECT_NEAR(a.delta_t, b.delta_t, 0.05) << "code " << code;
  EXPECT_NEAR(sim.system_flow(1.0), sim_t.system_flow(1.0),
              sim.system_flow(1.0) * 1e-6)
      << "code " << code;
}

INSTANTIATE_TEST_SUITE_P(Codes, D4Invariance, ::testing::Range(0, 8));

// 4RM invariance for one non-trivial code (full-resolution check).
TEST(D4Invariance4RM, Rotation90) {
  const D4Transform t(1);
  CoolingProblem problem;
  problem.grid = Grid2D(15, 15, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.push_back(synthesize_power_map(problem.grid, 2.0, 5));
  problem.source_power.push_back(synthesize_power_map(problem.grid, 2.0, 6));
  const CoolingNetwork net = make_straight_channels(problem.grid);

  CoolingProblem transformed = problem;
  transformed.source_power.clear();
  for (const PowerMap& map : problem.source_power) {
    transformed.source_power.push_back(map.transformed(t));
  }
  const Thermal4RM sim(problem, {net});
  const Thermal4RM sim_t(transformed, {net.transformed(t)});
  const ThermalField a = sim.simulate(2000.0);
  const ThermalField b = sim_t.simulate(2000.0);
  EXPECT_NEAR(a.t_max, b.t_max, 1e-3);
  EXPECT_NEAR(a.delta_t, b.delta_t, 1e-3);
}

}  // namespace
}  // namespace lcn
