// Tests for restarted GMRES (S1 extension) and the solver fallback chain.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/dense.hpp"
#include "sparse/gmres.hpp"

namespace lcn::sparse {
namespace {

CsrMatrix advective_matrix(std::size_t n, double advection, Rng& rng) {
  TripletList t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 4.0 + rng.next_double());
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0 - advection);
      t.add(i + 1, i, -1.0 + advection);
    }
    if (i + 9 < n) t.add(i, i + 9, -0.3 * rng.next_double());
  }
  return t.to_csr();
}

TEST(Gmres, ConvergesOnAdvectiveSystems) {
  Rng rng(31);
  for (double advection : {0.0, 0.5, 0.95}) {
    const std::size_t n = 200;
    const CsrMatrix a = advective_matrix(n, advection, rng);
    Vector b(n);
    for (auto& v : b) v = rng.next_real(-1.0, 1.0);
    Vector x;
    const Ilu0Preconditioner m(a);
    const SolveReport report = gmres_solve(a, b, x, m);
    EXPECT_TRUE(report.converged) << "advection " << advection;
    Vector r = a.multiply(x);
    axpy(-1.0, b, r);
    EXPECT_LT(norm2(r) / norm2(b), 1e-8);
  }
}

TEST(Gmres, MatchesDenseReference) {
  Rng rng(77);
  const std::size_t n = 40;
  const CsrMatrix a = advective_matrix(n, 0.7, rng);
  Vector b(n);
  for (auto& v : b) v = rng.next_real(-2.0, 2.0);
  Vector x;
  const IdentityPreconditioner id;
  ASSERT_TRUE(gmres_solve(a, b, x, id).converged);
  const DenseLu lu(DenseMatrix::from_csr(a));
  const Vector ref = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], ref[i], 1e-7);
}

TEST(Gmres, SmallRestartStillConverges) {
  Rng rng(5);
  const std::size_t n = 120;
  const CsrMatrix a = advective_matrix(n, 0.4, rng);
  Vector b(n, 1.0);
  Vector x;
  const JacobiPreconditioner m(a);
  GmresOptions options;
  options.restart = 5;  // forces many restarts
  const SolveReport report = gmres_solve(a, b, x, m, options);
  EXPECT_TRUE(report.converged);
}

TEST(Gmres, ZeroRhs) {
  Rng rng(1);
  const CsrMatrix a = advective_matrix(10, 0.2, rng);
  Vector x(10, 3.0);
  const IdentityPreconditioner id;
  const SolveReport report = gmres_solve(a, Vector(10, 0.0), x, id);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(x, Vector(10, 0.0));
}

TEST(Gmres, ExactInOneKrylovStepForIdentity) {
  TripletList t(6, 6);
  for (std::size_t i = 0; i < 6; ++i) t.add(i, i, 1.0);
  const CsrMatrix a = t.to_csr();
  Vector b = {1, 2, 3, 4, 5, 6};
  Vector x;
  const IdentityPreconditioner id;
  const SolveReport report = gmres_solve(a, b, x, id);
  EXPECT_TRUE(report.converged);
  EXPECT_LE(report.iterations, 2u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], b[i], 1e-12);
}

}  // namespace
}  // namespace lcn::sparse
