// Tests for the persistent Pareto archive (DESIGN.md §S21): dominance
// semantics, insertion-order independence, content-hash dedup, hypervolume,
// and exact JSONL round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "opt/pareto.hpp"

namespace lcn {
namespace {

ParetoPoint point(std::uint64_t design, double w, double dt, double tmax,
                  double p_sys = 1000.0, const std::string& tag = "t") {
  ParetoPoint p;
  p.design = design;
  p.w_pump = w;
  p.delta_t = dt;
  p.t_max = tmax;
  p.p_sys = p_sys;
  p.tag = tag;
  return p;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(ParetoDominance, StrictDominanceNeedsOneStrictImprovement) {
  const ParetoPoint a = point(1, 1.0, 2.0, 3.0);
  EXPECT_FALSE(pareto_dominates(a, a));  // equal objectives: no dominance
  EXPECT_TRUE(pareto_dominates(a, point(2, 1.0, 2.0, 3.5)));
  EXPECT_TRUE(pareto_dominates(a, point(2, 2.0, 3.0, 4.0)));
  EXPECT_FALSE(pareto_dominates(point(2, 1.0, 2.0, 3.5), a));
  // Trade-offs dominate in neither direction.
  EXPECT_FALSE(pareto_dominates(a, point(2, 0.5, 9.0, 3.0)));
  EXPECT_FALSE(pareto_dominates(point(2, 0.5, 9.0, 3.0), a));
}

TEST(ParetoArchive, InsertClassifiesAndCounts) {
  ParetoArchive archive;
  EXPECT_EQ(archive.insert(point(1, 2.0, 2.0, 2.0)), ArchiveInsert::kInserted);
  EXPECT_EQ(archive.insert(point(1, 9.0, 9.0, 9.0)),
            ArchiveInsert::kDuplicate);  // same design hash, values ignored
  EXPECT_EQ(archive.insert(point(2, 3.0, 3.0, 3.0)),
            ArchiveInsert::kDominated);
  EXPECT_EQ(archive.insert(point(3, 1.0, 1.0, 1.0)), ArchiveInsert::kInserted);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(archive.insert(point(4, inf, 1.0, 1.0)),
            ArchiveInsert::kNotFinite);
  ASSERT_EQ(archive.size(), 1u);  // design 3 pruned design 1
  EXPECT_EQ(archive.points().front().design, 3u);
  EXPECT_EQ(archive.attempts(), 5u);
  EXPECT_EQ(archive.inserted(), 2u);
  EXPECT_EQ(archive.duplicates(), 1u);
  EXPECT_EQ(archive.dominated(), 1u);
  EXPECT_EQ(archive.pruned(), 1u);
}

TEST(ParetoArchive, ObjectiveTiesFromDistinctDesignsCoexist) {
  ParetoArchive archive;
  EXPECT_EQ(archive.insert(point(1, 1.0, 2.0, 3.0)), ArchiveInsert::kInserted);
  EXPECT_EQ(archive.insert(point(2, 1.0, 2.0, 3.0)), ArchiveInsert::kInserted);
  EXPECT_EQ(archive.size(), 2u);
  // A strictly better point prunes both ties at once.
  EXPECT_EQ(archive.insert(point(3, 1.0, 2.0, 2.0)), ArchiveInsert::kInserted);
  ASSERT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.pruned(), 2u);
}

TEST(ParetoArchive, FrontierIsInsertionOrderIndependent) {
  // A mix of dominated, dominating, tied and trade-off points; every
  // permutation of arrival must converge to the same surviving set.
  std::vector<ParetoPoint> pts = {
      point(1, 5.0, 5.0, 5.0), point(2, 1.0, 9.0, 5.0),
      point(3, 9.0, 1.0, 5.0), point(4, 5.0, 5.0, 5.0),
      point(5, 6.0, 6.0, 6.0),  // dominated by 1 and 4
      point(6, 1.0, 9.0, 4.0),  // dominates nobody, beats 2 on t_max
  };
  std::sort(pts.begin(), pts.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.design < b.design;
            });
  std::string reference;
  int permutations = 0;
  do {
    ParetoArchive archive;
    for (const ParetoPoint& p : pts) archive.insert(p);
    const std::string frontier = archive.to_jsonl();
    if (reference.empty()) {
      reference = frontier;
    } else {
      ASSERT_EQ(frontier, reference) << "permutation " << permutations;
    }
    ++permutations;
  } while (std::next_permutation(
      pts.begin(), pts.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
        return a.design < b.design;
      }));
  EXPECT_EQ(permutations, 720);
}

TEST(ParetoArchive, NoDominatedPointSurvives) {
  // Deterministic pseudo-random cloud; after all insertions the surviving
  // set must be mutually non-dominating and every rejected point must be
  // dominated by (or tie) some survivor.
  std::vector<ParetoPoint> pts;
  std::uint64_t x = 88172645463325252ull;
  auto rnd = [&x]() {  // xorshift64
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<double>(x % 1000u) / 100.0;
  };
  for (std::uint64_t d = 1; d <= 200; ++d) {
    pts.push_back(point(d, rnd(), rnd(), rnd()));
  }
  ParetoArchive archive;
  for (const ParetoPoint& p : pts) archive.insert(p);
  const std::vector<ParetoPoint>& front = archive.points();
  ASSERT_FALSE(front.empty());
  for (const ParetoPoint& a : front) {
    for (const ParetoPoint& b : front) {
      EXPECT_FALSE(pareto_dominates(a, b))
          << a.design << " dominates " << b.design;
    }
  }
  for (const ParetoPoint& p : pts) {
    const bool survived =
        std::any_of(front.begin(), front.end(), [&](const ParetoPoint& f) {
          return f.design == p.design;
        });
    if (survived) continue;
    const bool covered =
        std::any_of(front.begin(), front.end(), [&](const ParetoPoint& f) {
          return pareto_dominates(f, p) ||
                 (f.w_pump == p.w_pump && f.delta_t == p.delta_t &&
                  f.t_max == p.t_max);
        });
    EXPECT_TRUE(covered) << "design " << p.design
                         << " rejected but not dominated";
  }
}

TEST(ParetoArchive, HypervolumeMatchesHandComputedStaircase) {
  // Single t_max level: 2D staircase of (1,5), (2,3), (5,1) w.r.t. (10,10)
  // has area 5 + 21 + 45 = 71; the slab [1, 2) gives it thickness 1.
  ParetoArchive archive;
  archive.insert(point(1, 1.0, 5.0, 1.0));
  archive.insert(point(2, 2.0, 3.0, 1.0));
  archive.insert(point(3, 5.0, 1.0, 1.0));
  EXPECT_NEAR(archive.hypervolume(10.0, 10.0, 2.0), 71.0, 1e-12);

  // A point entering at t_max = 1.5 splits the sweep into two slabs:
  // 0.5 * 71 + 0.5 * (71 + the newcomer's extra 2x0.5 strip).
  archive.insert(point(4, 0.5, 8.0, 1.5));
  EXPECT_NEAR(archive.hypervolume(10.0, 10.0, 2.0), 71.5, 1e-12);

  // Points at or beyond the reference contribute nothing.
  archive.insert(point(5, 10.0, 0.5, 1.0));
  EXPECT_NEAR(archive.hypervolume(10.0, 10.0, 2.0), 71.5, 1e-12);
  EXPECT_EQ(archive.hypervolume(0.4, 10.0, 2.0), 0.0);
  EXPECT_EQ(ParetoArchive().hypervolume(1.0, 1.0, 1.0), 0.0);
}

TEST(ParetoArchive, HypervolumeGrowsWithFrontier) {
  ParetoArchive archive;
  archive.insert(point(1, 4.0, 4.0, 4.0));
  const double before = archive.hypervolume(10.0, 10.0, 10.0);
  archive.insert(point(2, 1.0, 8.0, 8.0));  // new trade-off corner
  const double after = archive.hypervolume(10.0, 10.0, 10.0);
  EXPECT_GT(before, 0.0);
  EXPECT_GT(after, before);
}

TEST(ParetoArchive, JsonlRoundTripIsExact) {
  ParetoArchive archive;
  // Awkward doubles (non-terminating binary fractions, subnormal-ish
  // magnitudes) and a tag needing escapes.
  ParetoPoint a = point(0xDEADBEEFCAFEBABEull, 1.0 / 3.0, 2.0 / 7.0,
                        313.15000000000003, 4321.000000000001);
  a.tag = "island2/\"s1\"\\coarse\nline2";
  ParetoPoint b = point(7, 1e-300, 6.02e23, 1.0 + 1e-15, 0.1);
  ASSERT_EQ(archive.insert(a), ArchiveInsert::kInserted);
  ASSERT_EQ(archive.insert(b), ArchiveInsert::kInserted);

  const std::string path = temp_path("pareto_roundtrip.jsonl");
  archive.save_jsonl(path);
  const ParetoArchive loaded = ParetoArchive::load_jsonl(path);
  ASSERT_EQ(loaded.size(), archive.size());
  const std::vector<ParetoPoint> want = archive.sorted();
  const std::vector<ParetoPoint> got = loaded.sorted();
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].design, want[i].design);
    EXPECT_EQ(got[i].w_pump, want[i].w_pump);  // bit-exact, not NEAR
    EXPECT_EQ(got[i].delta_t, want[i].delta_t);
    EXPECT_EQ(got[i].t_max, want[i].t_max);
    EXPECT_EQ(got[i].p_sys, want[i].p_sys);
    EXPECT_EQ(got[i].tag, want[i].tag);
  }
  // Serializing the loaded archive reproduces the file byte for byte.
  EXPECT_EQ(loaded.to_jsonl(), archive.to_jsonl());
  std::remove(path.c_str());
}

TEST(ParetoArchive, LoadRepairsDominatedSnapshotRows) {
  // A hand-edited snapshot may contain dominated rows; loading re-inserts
  // every line, so the result is still a valid frontier.
  const std::string path = temp_path("pareto_dominated.jsonl");
  {
    ParetoArchive archive;
    archive.insert(point(1, 1.0, 1.0, 1.0));
    archive.save_jsonl(path);
  }
  ParetoArchive dominated_rows;
  dominated_rows.insert(point(2, 5.0, 5.0, 5.0));
  {
    // Append a dominated row by hand.
    std::string contents = ParetoArchive::load_jsonl(path).to_jsonl() +
                           dominated_rows.to_jsonl();
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(contents.data(), 1, contents.size(), f);
    std::fclose(f);
  }
  const ParetoArchive loaded = ParetoArchive::load_jsonl(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.points().front().design, 1u);
  EXPECT_EQ(loaded.dominated(), 1u);
  std::remove(path.c_str());
}

TEST(ParetoArchive, MalformedSnapshotLinesThrow) {
  EXPECT_THROW(ParetoArchive::parse_point("{\"design\":1}"), RuntimeError);
  EXPECT_THROW(
      ParetoArchive::parse_point("{\"design\":1,\"w_pump\":oops,"
                                 "\"delta_t\":1,\"t_max\":1,\"p_sys\":1,"
                                 "\"tag\":\"x\"}"),
      RuntimeError);
  EXPECT_THROW(ParetoArchive::load_jsonl(temp_path("does_not_exist.jsonl")),
               RuntimeError);
}

TEST(ParetoArchive, ClearResetsPointsAndCounters) {
  ParetoArchive archive;
  archive.insert(point(1, 1.0, 1.0, 1.0));
  archive.insert(point(1, 1.0, 1.0, 1.0));
  archive.clear();
  EXPECT_TRUE(archive.empty());
  EXPECT_EQ(archive.attempts(), 0u);
  EXPECT_EQ(archive.inserted(), 0u);
  EXPECT_EQ(archive.duplicates(), 0u);
}

// ---------------------------------------------------------------------------
// Transient-aware objective (§S23): t_peak as an optional 4th dimension.

ParetoPoint transient_point(std::uint64_t design, double w, double dt,
                            double tmax, double t_peak) {
  ParetoPoint p = point(design, w, dt, tmax);
  p.t_peak = t_peak;
  return p;
}

TEST(ParetoTransient, TPeakBreaksSteadyDominance) {
  // b is weakly worse than a in every steady objective, but its lower
  // transient peak makes the two incomparable under the 4D order.
  const ParetoPoint a = transient_point(1, 1.0, 2.0, 3.0, 320.0);
  const ParetoPoint b = transient_point(2, 1.0, 2.0, 3.5, 310.0);
  EXPECT_TRUE(pareto_dominates(a, b));  // steady order ignores t_peak
  EXPECT_FALSE(pareto_dominates_transient(a, b));
  EXPECT_FALSE(pareto_dominates_transient(b, a));
  // With an equal t_peak the steady order is restored.
  EXPECT_TRUE(pareto_dominates_transient(
      a, transient_point(2, 1.0, 2.0, 3.5, 320.0)));
}

TEST(ParetoTransient, ArchiveModeControlsPruning) {
  const ParetoPoint steady_better = transient_point(1, 1.0, 2.0, 3.0, 320.0);
  const ParetoPoint transient_better =
      transient_point(2, 1.5, 2.5, 3.5, 305.0);

  ParetoArchive steady;  // default: 3 objectives
  EXPECT_FALSE(steady.transient_objective());
  EXPECT_EQ(steady.insert(steady_better), ArchiveInsert::kInserted);
  EXPECT_EQ(steady.insert(transient_better), ArchiveInsert::kDominated);

  ParetoArchive transient(true);  // t_peak counts: both survive
  EXPECT_TRUE(transient.transient_objective());
  EXPECT_EQ(transient.insert(steady_better), ArchiveInsert::kInserted);
  EXPECT_EQ(transient.insert(transient_better), ArchiveInsert::kInserted);
  EXPECT_EQ(transient.size(), 2u);

  // A point worse in all four objectives is still pruned.
  EXPECT_EQ(transient.insert(transient_point(3, 2.0, 3.0, 4.0, 330.0)),
            ArchiveInsert::kDominated);
  // Non-finite t_peak is rejected only when the objective is active.
  const ParetoPoint bad_peak = transient_point(
      4, 0.1, 0.1, 0.1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(transient.insert(bad_peak), ArchiveInsert::kNotFinite);
  EXPECT_EQ(steady.insert(bad_peak), ArchiveInsert::kInserted);
}

TEST(ParetoTransient, JsonlRoundTripCarriesTPeak) {
  ParetoArchive archive(true);
  archive.insert(transient_point(7, 0.25, 5.0, 350.0, 0x1.8p8));
  archive.insert(transient_point(8, 0.5, 4.0, 351.0, 359.875));
  const std::string path = temp_path("pareto_transient.jsonl");
  archive.save_jsonl(path);

  const ParetoArchive loaded = ParetoArchive::load_jsonl(path, true);
  EXPECT_TRUE(loaded.transient_objective());
  EXPECT_EQ(loaded.sorted(), archive.sorted());
  std::remove(path.c_str());
}

TEST(ParetoTransient, LegacySnapshotLinesLoadWithZeroTPeak) {
  const ParetoPoint p = ParetoArchive::parse_point(
      "{\"design\":5,\"w_pump\":1,\"delta_t\":2,\"t_max\":3,\"p_sys\":4,"
      "\"tag\":\"old\"}");
  EXPECT_EQ(p.t_peak, 0.0);
  EXPECT_EQ(p.design, 5u);
}

}  // namespace
}  // namespace lcn
