// Randomized robustness tests: serialization round-trips on random
// networks, DRC consistency on random carvings, and solver robustness on
// randomly perturbed assemblies. All seeds fixed for reproducibility.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flow/flow_solver.hpp"
#include "network/design_rules.hpp"
#include "network/generators.hpp"

namespace lcn {
namespace {

/// Random blob of liquid cells grown from a boundary seed (respecting the
/// TSV keep-out), with one inlet and outlets wherever it meets the east
/// edge.
CoolingNetwork random_blob(const Grid2D& grid, Rng& rng) {
  CoolingNetwork net(grid);
  int row = 2 * static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>((grid.rows() + 1) / 2)));
  net.set_liquid(row, 0);
  net.add_port({row, 0, Side::kWest, PortKind::kInlet});
  int r = row;
  int c = 0;
  const int steps = 40 + static_cast<int>(rng.next_below(200));
  for (int i = 0; i < steps; ++i) {
    const int dir = static_cast<int>(rng.next_below(4));
    const int dr[] = {0, 0, 1, -1};
    const int dc[] = {1, -1, 0, 0};
    const int nr = r + dr[dir];
    const int nc = c + dc[dir];
    if (!grid.in_bounds(nr, nc) || is_tsv_cell(nr, nc)) continue;
    r = nr;
    c = nc;
    net.set_liquid(r, c);
  }
  // Walk east to guarantee an outlet-reaching path.
  for (int cc = c; cc < grid.cols(); ++cc) {
    if (is_tsv_cell(r, cc)) --r;  // sidestep TSVs (r even => never needed)
    net.set_liquid(r, cc);
  }
  net.add_port({r, grid.cols() - 1, Side::kEast, PortKind::kOutlet});
  return net;
}

TEST(Fuzz, SerializationRoundTripsRandomNetworks) {
  Rng rng(9001);
  const Grid2D grid(21, 21, 100e-6);
  for (int trial = 0; trial < 25; ++trial) {
    const CoolingNetwork net = random_blob(grid, rng);
    const CoolingNetwork back = CoolingNetwork::from_text(net.to_text());
    ASSERT_EQ(net, back) << "trial " << trial;
  }
}

TEST(Fuzz, TransformRoundTripsRandomNetworks) {
  Rng rng(77);
  const Grid2D grid(21, 21, 100e-6);
  for (int trial = 0; trial < 10; ++trial) {
    const CoolingNetwork net = random_blob(grid, rng);
    for (int code = 0; code < D4Transform::kCount; ++code) {
      const D4Transform t(code);
      const CoolingNetwork back =
          net.transformed(t).transformed(t.inverse());
      ASSERT_EQ(net, back) << "trial " << trial << " code " << code;
    }
  }
}

TEST(Fuzz, FlowSolverHandlesRandomConnectedBlobs) {
  Rng rng(4242);
  const Grid2D grid(21, 21, 100e-6);
  const ChannelGeometry channel{100e-6, 200e-6};
  const CoolantProperties water;
  for (int trial = 0; trial < 15; ++trial) {
    const CoolingNetwork net = random_blob(grid, rng);
    // The blob may contain pockets unreachable from ports only if the walk
    // disconnected them — it cannot (one connected walk), so flow solves.
    const FlowSolution sol = FlowSolver(net, channel, water).solve(1.0);
    EXPECT_GT(sol.system_flow, 0.0) << "trial " << trial;
    for (double p : sol.pressure) {
      ASSERT_GE(p, -1e-9);
      ASSERT_LE(p, 1.0 + 1e-9);
    }
  }
}

TEST(Fuzz, DrcCleanNetworksAlwaysFlowSolvable) {
  // Property: any network that passes DRC has a non-singular flow system.
  Rng rng(31337);
  const Grid2D grid(21, 21, 100e-6);
  const ChannelGeometry channel{100e-6, 200e-6};
  const CoolantProperties water;
  int clean_count = 0;
  for (int trial = 0; trial < 30; ++trial) {
    CoolingNetwork net = random_blob(grid, rng);
    // Randomly punch holes to provoke stagnant components.
    for (int holes = 0; holes < 6; ++holes) {
      const int r = static_cast<int>(rng.next_below(21));
      const int c = static_cast<int>(rng.next_below(21));
      net.set_solid(r, c);
    }
    // Ports may now sit on solid cells — rebuild a consistent port list.
    CoolingNetwork repaired(grid);
    for (int r = 0; r < 21; ++r) {
      for (int c = 0; c < 21; ++c) {
        if (net.is_liquid(r, c)) repaired.set_liquid(r, c);
      }
    }
    for (const Port& port : net.ports()) {
      if (repaired.is_liquid(port.row, port.col)) repaired.add_port(port);
    }
    if (!check_design_rules(repaired).ok()) continue;
    ++clean_count;
    EXPECT_NO_THROW({
      const FlowSolution sol =
          FlowSolver(repaired, channel, water).solve(1.0);
      EXPECT_GT(sol.system_flow, 0.0);
    }) << "trial " << trial;
  }
  EXPECT_GT(clean_count, 0);
}

}  // namespace
}  // namespace lcn
