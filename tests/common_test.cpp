// Unit tests for the common substrate: contracts, RNG, tables, CSV,
// strings, env knobs, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/instrument.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace lcn {
namespace {

TEST(Contracts, RequireThrowsContractError) {
  EXPECT_THROW(LCN_REQUIRE(false, "boom"), ContractError);
  EXPECT_NO_THROW(LCN_REQUIRE(true, "fine"));
  EXPECT_THROW(LCN_CHECK(false, "bug"), InternalError);
}

TEST(Rng, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(43);
  EXPECT_NE(Rng(42).next_u64(), c.next_u64());
}

TEST(Rng, UniformDoublesInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), ContractError);
}

TEST(Rng, ForkedStreamsDiverge) {
  Rng parent(5);
  Rng child = parent.fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.next_u64() != child.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TextTable, AlignsColumnsAndRules) {
  TextTable table({"a", "bee"});
  table.add_row({"1", "2"});
  table.add_rule();
  table.add_row({"333", "4"});
  const std::string out = table.str();
  EXPECT_NE(out.find("| a   | bee |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4   |"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), ContractError);
}

TEST(TextTable, CellFormatting) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell_int(-42), "-42");
  EXPECT_EQ(cell_sci(12345.678, 2), "1.23e+04");
  EXPECT_EQ(cell_na(), "N/A");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  CsvWriter csv({"x", "y"});
  csv.add_row({"a,b", "quote\"inside"});
  const std::string out = csv.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Strings, SplitAndTrim) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("port 1 2", "port"));
  EXPECT_FALSE(starts_with("po", "port"));
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strfmt("%.3f", 1.5), "1.500");
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("LCN_TEST_INT", "123", 1);
  ::setenv("LCN_TEST_BAD", "12x", 1);
  ::setenv("LCN_TEST_FLAG", "1", 1);
  EXPECT_EQ(env_int("LCN_TEST_INT", 9), 123);
  EXPECT_EQ(env_int("LCN_TEST_BAD", 9), 9);
  EXPECT_EQ(env_int("LCN_TEST_MISSING_XYZ", 9), 9);
  EXPECT_TRUE(env_flag("LCN_TEST_FLAG"));
  EXPECT_FALSE(env_flag("LCN_TEST_MISSING_XYZ"));
  ::setenv("LCN_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("LCN_TEST_DBL", 1.0), 2.5);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw RuntimeError("task failed");
                                   }
                                 }),
               RuntimeError);
  // Pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ZeroAndSingleCounts) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Instrument, SnapshotAndResetDrainsEveryCountExactlyOnce) {
  // Race-clean accounting: adds racing snapshot_and_reset() must land either
  // in a drained snapshot or in the final residue — never both, never lost.
  instrument::reset();  // clear residue from earlier tests
  constexpr int kAdds = 200000;
  std::thread writer([] {
    for (int i = 0; i < kAdds; ++i) instrument::add_cache_hit();
  });
  std::uint64_t drained = 0;
  for (int i = 0; i < 1000; ++i) {
    drained += instrument::snapshot_and_reset().cache_hits;
  }
  writer.join();
  drained += instrument::snapshot_and_reset().cache_hits;
  EXPECT_EQ(drained, static_cast<std::uint64_t>(kAdds));
}

TEST(Instrument, JsonIncludesTraceAndProbeCounters) {
  const std::string json = instrument::snapshot().json();
  EXPECT_NE(json.find("\"pressure_probes\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_events_emitted\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_events_dropped\""), std::string::npos);
}

}  // namespace
}  // namespace lcn
