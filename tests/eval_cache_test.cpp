// Evaluator-cache tests (DESIGN.md §S10): content-hash stability, hit/miss
// accounting, key invalidation when the network or the problem changes, and
// the property that a cached evaluation is indistinguishable from a fresh
// one.
#include <gtest/gtest.h>

#include <cmath>

#include "network/generators.hpp"
#include "opt/eval_cache.hpp"
#include "opt/sa.hpp"

namespace lcn {
namespace {

BenchmarkCase small_case() {
  BenchmarkCase bench;
  bench.id = 97;
  bench.name = "cache-unit";
  bench.problem.grid = Grid2D(31, 31, 100e-6);
  bench.problem.stack = make_interlayer_stack(2, 200e-6);
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 4.4, 21));
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 3.6, 22));
  bench.constraints.delta_t_max = 12.0;
  bench.constraints.t_max = 400.0;
  return bench;
}

SimConfig fast_sim() { return SimConfig{ThermalModelKind::k2RM, 3}; }

TEST(ContentHash, StableAcrossCopiesAndSensitiveToEdits) {
  const Grid2D grid(21, 21, 100e-6);
  CoolingNetwork net(grid);
  net.set_liquid(0, 0);
  const CoolingNetwork copy = net;
  EXPECT_EQ(net.content_hash(), copy.content_hash());

  // Any cell edit must move the hash.
  CoolingNetwork carved = net;
  carved.set_liquid(0, 2);
  EXPECT_NE(net.content_hash(), carved.content_hash());

  // So must a port edit, even with identical cells.
  CoolingNetwork ported = net;
  ported.add_port({0, 0, Side::kNorth, PortKind::kInlet});
  EXPECT_NE(net.content_hash(), ported.content_hash());
}

TEST(ContentHash, TransformRoundTripPreservesHash) {
  const Grid2D grid(21, 21, 100e-6);
  const CoolingNetwork net = make_tree_network(
      grid, make_uniform_layout(grid, 6, 12));
  for (int dir = 0; dir < D4Transform::kCount; ++dir) {
    const D4Transform t(dir);
    const CoolingNetwork back =
        net.transformed(t).transformed(t.inverse());
    EXPECT_EQ(net.content_hash(), back.content_hash()) << "dir " << dir;
  }
}

TEST(EvalCacheKey, ChangesWithNetworkModeModelAndPressure) {
  const BenchmarkCase bench = small_case();
  const std::uint64_t fp = problem_fingerprint(bench.problem);
  const CoolingNetwork net = make_straight_channels(bench.problem.grid);

  const EvalCacheKey base =
      make_eval_key(fp, net, fast_sim(), EvalMode::kFullP1);
  EXPECT_EQ(base, make_eval_key(fp, net, fast_sim(), EvalMode::kFullP1));

  // Different network (an extra carved cell on a solid site).
  CoolingNetwork a(bench.problem.grid);
  a.set_liquid(0, 0);
  CoolingNetwork b(bench.problem.grid);
  b.set_liquid(0, 2);
  EXPECT_FALSE(make_eval_key(fp, a, fast_sim(), EvalMode::kFullP1) ==
               make_eval_key(fp, b, fast_sim(), EvalMode::kFullP1));
  // Different evaluation mode.
  EXPECT_FALSE(base == make_eval_key(fp, net, fast_sim(),
                                     EvalMode::kFullP2));
  // Different thermal model config.
  EXPECT_FALSE(base == make_eval_key(fp, net,
                                     SimConfig{ThermalModelKind::k2RM, 4},
                                     EvalMode::kFullP1));
  // Fixed-pressure modes key on the operating point ...
  const EvalCacheKey at2k = make_eval_key(fp, net, fast_sim(),
                                          EvalMode::kFixedPressure, 2000.0);
  const EvalCacheKey at3k = make_eval_key(fp, net, fast_sim(),
                                          EvalMode::kFixedPressure, 3000.0);
  EXPECT_FALSE(at2k == at3k);
  // ... but full searches ignore the hint pressure.
  EXPECT_EQ(base, make_eval_key(fp, net, fast_sim(), EvalMode::kFullP1,
                                5000.0));
}

TEST(ProblemFingerprint, InvalidatesOnStackAndPowerChanges) {
  const BenchmarkCase bench = small_case();
  const std::uint64_t base = problem_fingerprint(bench.problem);

  BenchmarkCase thicker = small_case();
  thicker.problem.stack = make_interlayer_stack(2, 250e-6);
  EXPECT_NE(base, problem_fingerprint(thicker.problem));

  BenchmarkCase hotter = small_case();
  hotter.problem.source_power[0].at(5, 5) += 0.25;
  EXPECT_NE(base, problem_fingerprint(hotter.problem));

  BenchmarkCase warmer_inlet = small_case();
  warmer_inlet.problem.inlet_temperature += 1.0;
  EXPECT_NE(base, problem_fingerprint(warmer_inlet.problem));
}

TEST(EvaluatorCache, AccountsHitsAndMisses) {
  EvaluatorCache cache;
  const BenchmarkCase bench = small_case();
  const std::uint64_t fp = problem_fingerprint(bench.problem);
  const CoolingNetwork net = make_straight_channels(bench.problem.grid);
  const EvalCacheKey key = make_eval_key(fp, net, fast_sim(),
                                         EvalMode::kFullP1);

  EXPECT_FALSE(cache.find(key).has_value());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);

  EvalResult result;
  result.feasible = true;
  result.score = 42.0;
  result.p_sys = 2500.0;
  cache.store(key, result);
  EXPECT_EQ(cache.size(), 1u);

  const auto found = cache.find(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->score, 42.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_NEAR(cache.hit_rate(), 0.5, 1e-12);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_FALSE(cache.find(key).has_value());
}

TEST(EvaluatorCache, CachedEvaluationEqualsFreshEvaluation) {
  const BenchmarkCase bench = small_case();
  const CoolingNetwork net = make_tree_network(
      bench.problem.grid, make_uniform_layout(bench.problem.grid, 8, 16));

  // Two evaluations through one optimizer: the second must be served from
  // the cache.
  TreeTopologyOptimizer cached_opt(bench, DesignObjective::kPumpingPower, 3);
  const EvalResult first = cached_opt.evaluate_network(net, fast_sim());
  const std::uint64_t hits_before = cached_opt.cache().hits();
  const EvalResult second = cached_opt.evaluate_network(net, fast_sim());
  EXPECT_EQ(cached_opt.cache().hits(), hits_before + 1);

  // A fresh optimizer (empty cache) must produce the identical result:
  // evaluations are deterministic, so cached == fresh exactly.
  TreeTopologyOptimizer fresh_opt(bench, DesignObjective::kPumpingPower, 3);
  const EvalResult fresh = fresh_opt.evaluate_network(net, fast_sim());

  for (const EvalResult* other : {&second, &fresh}) {
    EXPECT_EQ(first.feasible, other->feasible);
    EXPECT_DOUBLE_EQ(first.score, other->score);
    EXPECT_DOUBLE_EQ(first.p_sys, other->p_sys);
    EXPECT_DOUBLE_EQ(first.w_pump, other->w_pump);
    EXPECT_DOUBLE_EQ(first.at_p.t_max, other->at_p.t_max);
    EXPECT_DOUBLE_EQ(first.at_p.delta_t, other->at_p.delta_t);
  }
}

TEST(EvaluatorCache, SaRunReportsCacheTraffic) {
  const BenchmarkCase bench = small_case();
  TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower, 5);
  std::vector<SaStage> stages;
  stages.push_back({"cache", 5, 2, 3, 4, fast_sim(), false, 1});
  const DesignOutcome outcome = opt.run(stages);

  // Rounds restart from the incumbent and neighbor pools revisit layouts,
  // so a multi-round run must see real cache traffic.
  EXPECT_EQ(outcome.cache_hits, static_cast<std::size_t>(opt.cache().hits()));
  EXPECT_EQ(outcome.cache_misses,
            static_cast<std::size_t>(opt.cache().misses()));
  EXPECT_GT(outcome.cache_hits, 0u);
  EXPECT_GT(outcome.cache_misses, 0u);
  // Concurrent pool tasks can miss the same key before either stores it, so
  // the map size is bounded by (not equal to) the miss count.
  EXPECT_LE(opt.cache().size(),
            static_cast<std::size_t>(opt.cache().misses()));
  EXPECT_GT(opt.cache().size(), 0u);
}

}  // namespace
}  // namespace lcn
