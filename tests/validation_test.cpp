// Analytic validation of the thermal models against closed-form references
// (S5/S6 physics): coolant enthalpy rise in a single channel, conduction
// through the stack, and the helpers themselves.
#include <gtest/gtest.h>

#include "flow/flow_solver.hpp"
#include "network/generators.hpp"
#include "thermal/model_4rm.hpp"
#include "thermal/validation.hpp"

namespace lcn {
namespace {

TEST(ValidationHelpers, RodProfileBoundaryAndMonotonicity) {
  const double length = 1e-3;
  const double area = 1e-8;
  const double k = 130.0;
  const double power = 0.1;
  EXPECT_DOUBLE_EQ(rod_temperature(length, length, area, k, power, 350.0),
                   350.0);
  // Hotter toward the insulated end.
  double prev = rod_temperature(length, length, area, k, power, 350.0);
  for (double x = length; x >= 0.0; x -= length / 10.0) {
    const double t = rod_temperature(x, length, area, k, power, 350.0);
    EXPECT_GE(t, prev - 1e-12);
    prev = t;
  }
  // Total temperature drop = P·L/(2kA).
  EXPECT_NEAR(rod_temperature(0.0, length, area, k, power, 350.0) - 350.0,
              power * length / (2.0 * k * area), 1e-9);
}

TEST(ValidationHelpers, CoolantAndWallFormulas) {
  const CoolantProperties water;
  EXPECT_NEAR(coolant_outlet_temperature(300.0, 4.183, 1e-6, water), 301.0,
              1e-9);
  EXPECT_NEAR(wall_temperature(310.0, 1.0, 1e4, 1e-4), 311.0, 1e-12);
  EXPECT_THROW(coolant_outlet_temperature(300.0, 1.0, 0.0, water),
               ContractError);
}

TEST(Validation4RM, OutletCoolantMatchesEnthalpyBalance) {
  // Uniformly heated chip with straight channels: the mixed outlet
  // temperature implied by the advected-heat diagnostic must equal the
  // closed-form enthalpy rise.
  CoolingProblem problem;
  problem.grid = Grid2D(21, 21, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.emplace_back(problem.grid, 1.5);
  problem.source_power.emplace_back(problem.grid, 1.5);
  const CoolingNetwork net = make_straight_channels(problem.grid);
  const Thermal4RM sim(problem, {net});

  const double p_sys = 3000.0;
  const AssembledThermal system = sim.assemble(p_sys);
  const ThermalField field = solve_steady(system, 1e-11);

  const double q_sys = sim.system_flow(p_sys);
  const double t_out_expected = coolant_outlet_temperature(
      300.0, problem.total_power(), q_sys, problem.coolant);

  // Flow-weighted mean outlet temperature from the model.
  double flow_sum = 0.0;
  double temp_flow_sum = 0.0;
  for (const auto& [node, flow] : system.outlet_terms) {
    flow_sum += flow;
    temp_flow_sum += flow * field.temperatures[node];
  }
  const double t_out_model = temp_flow_sum / flow_sum;
  EXPECT_NEAR(t_out_model, t_out_expected,
              (t_out_expected - 300.0) * 0.02 + 1e-6);
}

TEST(Validation4RM, VerticalConductionDropMatchesSeriesResistance) {
  // Uniform power in the top die only: the vertical temperature drop from
  // the top source layer down to the channel follows the series conduction
  // path (within the lateral-spreading tolerance of a uniform load).
  CoolingProblem problem;
  problem.grid = Grid2D(21, 21, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.emplace_back(problem.grid, 0.0);
  problem.source_power.emplace_back(problem.grid, 2.0);  // top die only
  const CoolingNetwork net = make_straight_channels(problem.grid);
  const Thermal4RM sim(problem, {net});
  const ThermalField field = sim.simulate(20000.0);  // strong cooling

  // With strong flow the coolant is near 300 K; the top source layer
  // temperature is set by film + conduction resistance of the path
  // top-source -> channel. Check the order of magnitude and the direction
  // (top source must be the hottest layer).
  const auto& bottom = field.source_maps[0];
  const auto& top = field.source_maps[1];
  const int center = (field.map_rows / 2) * field.map_cols + field.map_cols / 2;
  EXPECT_GT(top[static_cast<std::size_t>(center)],
            bottom[static_cast<std::size_t>(center)]);
  EXPECT_GT(field.t_max, 300.5);
  EXPECT_LT(field.t_max, 330.0);
}

}  // namespace
}  // namespace lcn
