// Unit tests for the pressure searches (S9): Algorithm 3 on analytic f with
// known crossings/minima, monotone bisection, golden section.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/pressure_search.hpp"

namespace lcn {
namespace {

// Uni-modal f(p) = a/p + b·p: minimum at sqrt(a/b) with value 2·sqrt(a·b);
// models ΔT(P_sys) with a coolant-heating branch and a gradient-reversal
// branch (paper Fig. 6(a)).
PressureProbe unimodal(double a, double b) {
  return [a, b](double p) { return a / p + b * p; };
}

// Monotone decreasing f(p) = a/p + c (paper Fig. 6(b)).
PressureProbe monotone(double a, double c) {
  return [a, c](double p) { return a / p + c; };
}

TEST(MinimizePressureForTarget, FindsSmallestFeasiblePressure) {
  // f(p) = 1000/p + 0.002p, target 5: crossing at p = (5-sqrt(17))/0.004.
  const double a = 1000.0;
  const double b = 0.002;
  const double target = 5.0;
  const double expected = (target - std::sqrt(target * target - 4 * a * b)) /
                          (2.0 * b);
  const PressureSearchResult result =
      minimize_pressure_for_target(unimodal(a, b), target);
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.p_sys, expected, expected * 0.02);
  EXPECT_LE(result.f_value, target);
}

TEST(MinimizePressureForTarget, InfeasibleTargetReturnsMinimum) {
  // min f = 2·sqrt(a·b) = 2.828 at p ≈ 707; target 2 is unreachable.
  const PressureSearchResult result =
      minimize_pressure_for_target(unimodal(1000.0, 0.002), 2.0);
  EXPECT_FALSE(result.feasible);
  EXPECT_NEAR(result.p_sys, std::sqrt(1000.0 / 0.002), 707.0 * 0.1);
  EXPECT_NEAR(result.f_value, 2.0 * std::sqrt(1000.0 * 0.002), 0.05);
}

TEST(MinimizePressureForTarget, MonotoneDecreasingCrossing) {
  // f(p) = 500/p, target 5 -> p = 100.
  const PressureSearchResult result =
      minimize_pressure_for_target(monotone(500.0, 0.0), 5.0);
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.p_sys, 100.0, 2.5);
}

TEST(MinimizePressureForTarget, PlateauAboveTargetIsInfeasible) {
  // f decays to an asymptote of 8 > target 5: must detect the plateau
  // rather than expanding forever.
  PressureSearchOptions options;
  options.p_max = 1e9;
  const PressureSearchResult result =
      minimize_pressure_for_target(monotone(2000.0, 8.0), 5.0, options);
  EXPECT_FALSE(result.feasible);
  EXPECT_GT(result.f_value, 5.0);
}

TEST(MinimizePressureForTarget, AlreadyFeasibleAtFloor) {
  // f tiny everywhere: the numerical floor is feasible.
  const PressureSearchResult result =
      minimize_pressure_for_target([](double) { return 0.5; }, 5.0);
  EXPECT_TRUE(result.feasible);
  EXPECT_LE(result.p_sys, 2000.0);
}

TEST(MinimizePressureForTarget, UsesFewProbes) {
  int count = 0;
  const PressureProbe f = [&count](double p) {
    ++count;
    return 1000.0 / p + 0.002 * p;
  };
  minimize_pressure_for_target(f, 5.0);
  EXPECT_LT(count, 45);
}

TEST(MinimizePressureMonotone, BisectsToCrossing) {
  // h(p) = 400/p + 300, target 310 -> p = 40.
  const PressureSearchResult result = minimize_pressure_monotone(
      monotone(400.0, 300.0), 310.0, 1.0, 1e6);
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.p_sys, 40.0, 1.0);
  EXPECT_LE(result.f_value, 310.0);
}

TEST(MinimizePressureMonotone, InfeasibleWhenUpperBoundFails) {
  const PressureSearchResult result = minimize_pressure_monotone(
      monotone(400.0, 300.0), 310.0, 1.0, 20.0);  // h(20) = 320 > 310
  EXPECT_FALSE(result.feasible);
}

TEST(MinimizePressureMonotone, LowerBoundAlreadyFeasible) {
  const PressureSearchResult result = minimize_pressure_monotone(
      monotone(400.0, 300.0), 350.0, 100.0, 1e6);  // h(100) = 304
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.p_sys, 100.0);
}

TEST(GoldenSectionMin, FindsUnimodalMinimum) {
  const double p_star = std::sqrt(1000.0 / 0.002);
  const PressureSearchResult result =
      golden_section_min(unimodal(1000.0, 0.002), 10.0, 1e5);
  EXPECT_NEAR(result.p_sys, p_star, p_star * 0.02);
}

TEST(GoldenSectionMin, MonotoneDecreasingConvergesToUpperBound) {
  const PressureSearchResult result =
      golden_section_min(monotone(500.0, 1.0), 10.0, 5000.0);
  EXPECT_NEAR(result.p_sys, 5000.0, 5000.0 * 0.05);
}

// Property sweep: Algorithm 3 returns the true crossing for many (a, b,
// target) combinations.
struct CrossingCase {
  double a;
  double b;
  double target;
};

class Algorithm3Sweep : public ::testing::TestWithParam<CrossingCase> {};

TEST_P(Algorithm3Sweep, MatchesClosedForm) {
  const auto [a, b, target] = GetParam();
  const double disc = target * target - 4.0 * a * b;
  const PressureSearchResult result =
      minimize_pressure_for_target(unimodal(a, b), target);
  if (disc >= 0.0) {
    const double expected = (target - std::sqrt(disc)) / (2.0 * b);
    EXPECT_TRUE(result.feasible);
    EXPECT_NEAR(result.p_sys, expected, expected * 0.03);
  } else {
    EXPECT_FALSE(result.feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Algorithm3Sweep,
    ::testing::Values(CrossingCase{1000.0, 0.002, 5.0},
                      CrossingCase{1000.0, 0.002, 3.0},
                      CrossingCase{1000.0, 0.002, 2.5},
                      CrossingCase{50000.0, 1e-4, 20.0},
                      CrossingCase{200.0, 0.01, 10.0},
                      CrossingCase{200.0, 0.01, 2.0},
                      CrossingCase{8.0e5, 3e-3, 120.0}));

}  // namespace
}  // namespace lcn
