// Unit tests for the geometry substrate (S2): grids, D4 transforms, stacks,
// power maps.
#include <gtest/gtest.h>

#include "geom/grid.hpp"
#include "geom/materials.hpp"
#include "geom/power_map.hpp"
#include "geom/stack.hpp"

namespace lcn {
namespace {

TEST(Grid2D, IndexRoundTrip) {
  const Grid2D grid(7, 5, 100e-6);
  EXPECT_EQ(grid.cell_count(), 35u);
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      const CellCoord back = grid.coord(grid.index(r, c));
      EXPECT_EQ(back.row, r);
      EXPECT_EQ(back.col, c);
    }
  }
}

TEST(Grid2D, RejectsBadDimensions) {
  EXPECT_THROW(Grid2D(0, 5, 1e-4), ContractError);
  EXPECT_THROW(Grid2D(5, 5, 0.0), ContractError);
}

TEST(Grid2D, SideMembership) {
  const Grid2D grid(3, 4, 1e-4);
  EXPECT_TRUE(grid.on_side(0, 2, Side::kNorth));
  EXPECT_TRUE(grid.on_side(2, 2, Side::kSouth));
  EXPECT_TRUE(grid.on_side(1, 0, Side::kWest));
  EXPECT_TRUE(grid.on_side(1, 3, Side::kEast));
  EXPECT_FALSE(grid.on_side(1, 1, Side::kWest));
}

TEST(D4Transform, InverseRoundTripsCellsAndSides) {
  const Grid2D grid(5, 9, 1e-4);
  for (int code = 0; code < D4Transform::kCount; ++code) {
    const D4Transform t(code);
    const D4Transform inv = t.inverse();
    const Grid2D image_grid = t.transform_grid(grid);
    for (int r = 0; r < grid.rows(); ++r) {
      for (int c = 0; c < grid.cols(); ++c) {
        const CellCoord image = t.apply(grid, CellCoord{r, c});
        ASSERT_TRUE(image_grid.in_bounds(image.row, image.col))
            << "code " << code;
        const CellCoord back = inv.apply(image_grid, image);
        EXPECT_EQ(back, (CellCoord{r, c})) << "code " << code;
      }
    }
    for (Side side : kAllSides) {
      EXPECT_EQ(inv.apply(t.apply(side)), side) << "code " << code;
    }
  }
}

TEST(D4Transform, SideMappingConsistentWithCells) {
  // A cell on side s must land on side t.apply(s).
  const Grid2D grid(5, 9, 1e-4);
  for (int code = 0; code < D4Transform::kCount; ++code) {
    const D4Transform t(code);
    const Grid2D image_grid = t.transform_grid(grid);
    const CellCoord west_cell{2, 0};
    const CellCoord image = t.apply(grid, west_cell);
    EXPECT_TRUE(image_grid.on_side(image.row, image.col, t.apply(Side::kWest)))
        << "code " << code;
  }
}

TEST(D4Transform, AllEightImagesDistinctOnAsymmetricPattern) {
  const Grid2D grid(4, 4, 1e-4);
  // An L-shaped marker distinguishes all 8 symmetries.
  std::vector<std::string> images;
  for (int code = 0; code < D4Transform::kCount; ++code) {
    const D4Transform t(code);
    std::string image(16, '.');
    for (const CellCoord cc : {CellCoord{0, 0}, CellCoord{0, 1},
                               CellCoord{1, 0}, CellCoord{2, 0}}) {
      const CellCoord im = t.apply(grid, cc);
      image[static_cast<std::size_t>(im.row * 4 + im.col)] = 'x';
    }
    images.push_back(image);
  }
  for (std::size_t a = 0; a < images.size(); ++a) {
    for (std::size_t b = a + 1; b < images.size(); ++b) {
      EXPECT_NE(images[a], images[b]) << "codes " << a << " vs " << b;
    }
  }
}

TEST(ChannelGeometry, HydraulicDiameter) {
  const ChannelGeometry geom{100e-6, 100e-6};
  EXPECT_NEAR(geom.hydraulic_diameter(), 100e-6, 1e-12);
  const ChannelGeometry tall{100e-6, 300e-6};
  EXPECT_NEAR(tall.hydraulic_diameter(), 2.0 * 100e-6 * 300e-6 / 400e-6,
              1e-12);
}

TEST(Materials, FluidConductanceMatchesFormula) {
  const ChannelGeometry geom{100e-6, 200e-6};
  const CoolantProperties water;
  const double l = 100e-6;
  const double dh = geom.hydraulic_diameter();
  const double expected =
      dh * dh * geom.cross_section() / (32.0 * l * water.dynamic_viscosity);
  EXPECT_NEAR(fluid_conductance(geom, water, l), expected, expected * 1e-12);
}

TEST(Stack, InterlayerStackShape) {
  const Stack two_die = make_interlayer_stack(2, 400e-6);
  // src, bulk, channel, src, bulk
  EXPECT_EQ(two_die.layer_count(), 5);
  EXPECT_EQ(two_die.source_count(), 2);
  EXPECT_EQ(two_die.channel_count(), 1);
  EXPECT_EQ(two_die.channel_layers(), (std::vector<int>{2}));
  EXPECT_EQ(two_die.source_layers(), (std::vector<int>{0, 3}));

  const Stack three_die = make_interlayer_stack(3, 200e-6);
  EXPECT_EQ(three_die.layer_count(), 8);
  EXPECT_EQ(three_die.channel_count(), 2);
}

TEST(Stack, BondingLayerInsertedUnderChannels) {
  InterlayerStackOptions opts;
  opts.bonding_thickness = 20e-6;
  const Stack stack = make_interlayer_stack(3, 200e-6, opts);
  // src, bulk, bond, channel, src, bulk, bond, channel, src, bulk
  EXPECT_EQ(stack.layer_count(), 10);
  EXPECT_EQ(stack.layer(2).name, "bond0");
  EXPECT_NEAR(stack.layer(2).material.conductivity, oxide().conductivity,
              1e-12);
  EXPECT_EQ(stack.channel_layers(), (std::vector<int>{3, 7}));
}

TEST(Stack, BondingOxideRaisesThermalResistance) {
  // Behavior check lives in thermal tests via make_interlayer_stack users;
  // here: zero bonding thickness keeps the historical shape.
  EXPECT_EQ(make_interlayer_stack(2, 200e-6).layer_count(), 5);
}

TEST(Stack, ValidationRejectsChannelAtBoundary) {
  Stack stack;
  stack.add_channel("ch", 1e-4, silicon());
  stack.add_solid("top", 1e-4, silicon());
  EXPECT_THROW(stack.validate(), ContractError);

  Stack adjacent;
  adjacent.add_source("s", 1e-4, silicon());
  adjacent.add_channel("c0", 1e-4, silicon());
  adjacent.add_channel("c1", 1e-4, silicon());
  adjacent.add_solid("top", 1e-4, silicon());
  EXPECT_THROW(adjacent.validate(), ContractError);
}

TEST(PowerMap, UniformMapTotal) {
  const Grid2D grid(10, 10, 1e-4);
  const PowerMap map(grid, 50.0);
  EXPECT_NEAR(map.total(), 50.0, 1e-9);
  EXPECT_NEAR(map.at(3, 7), 0.5, 1e-12);
}

TEST(PowerMap, BlockRasterizationSumsOverlaps) {
  const Grid2D grid(10, 10, 1e-4);
  const std::vector<PowerBlock> blocks = {
      {{0, 0, 4, 4}, 25.0},  // 25 cells, 1 W each
      {{4, 4, 4, 4}, 3.0},   // overlaps at (4,4)
  };
  const PowerMap map(grid, blocks);
  EXPECT_NEAR(map.total(), 28.0, 1e-9);
  EXPECT_NEAR(map.at(4, 4), 1.0 + 3.0, 1e-12);
  EXPECT_NEAR(map.at(9, 9), 0.0, 1e-12);
}

TEST(PowerMap, ScaleToTarget) {
  const Grid2D grid(4, 4, 1e-4);
  PowerMap map(grid, 8.0);
  map.scale_to(2.0);
  EXPECT_NEAR(map.total(), 2.0, 1e-12);
  PowerMap zero(grid, 0.0);
  EXPECT_THROW(zero.scale_to(1.0), ContractError);
}

TEST(PowerMap, TransformPreservesTotalAndMovesCells) {
  const Grid2D grid(4, 6, 1e-4);
  PowerMap map(grid, 0.0);
  map.at(0, 0) = 3.0;
  const PowerMap mirrored = map.transformed(D4Transform(4));
  EXPECT_NEAR(mirrored.total(), 3.0, 1e-12);
  EXPECT_NEAR(mirrored.at(0, 5), 3.0, 1e-12);
  EXPECT_NEAR(mirrored.at(0, 0), 0.0, 1e-12);
}

TEST(SynthesizePowerMap, DeterministicAndOnTarget) {
  const Grid2D grid(50, 50, 1e-4);
  const PowerMap a = synthesize_power_map(grid, 42.0, 123);
  const PowerMap b = synthesize_power_map(grid, 42.0, 123);
  EXPECT_EQ(a.cells(), b.cells());
  EXPECT_NEAR(a.total(), 42.0, 1e-9);
  // Non-uniform: peak density well above the mean.
  EXPECT_GT(a.max_cell(), 2.0 * 42.0 / grid.cell_count());
  const PowerMap c = synthesize_power_map(grid, 42.0, 124);
  EXPECT_NE(a.cells(), c.cells());
}

}  // namespace
}  // namespace lcn
