// Tests for the metrics registry (DESIGN.md §S24): fixed log2 bucket math,
// exact rank-based quantiles from bucket counts, bit-identical merges under
// any grouping and any LCN_THREADS, per-session shard billing equal to a
// solo serial reference, Prometheus text-exposition golden format, and the
// live `metrics` op + HTTP scrape over a loopback service::Server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/instrument.hpp"
#include "common/metrics.hpp"
#include "common/task_context.hpp"
#include "common/thread_pool.hpp"
#include "service/server.hpp"

namespace lcn {
namespace {

/// Restores the metrics level on scope exit so tests can flip it freely.
class LevelGuard {
 public:
  LevelGuard() : saved_(metrics::g_level.load()) {}
  ~LevelGuard() { metrics::set_level(saved_); }

 private:
  int saved_;
};

/// Deterministic observation spread: values across many buckets, a function
/// of the index only (never wall-clock time), so every thread count records
/// the same multiset.
double observation(std::size_t i) {
  return 1e-6 * static_cast<double>(1 + (i * 37) % 5000);
}

TEST(MetricsBuckets, BoundsDoubleFromOneMicrosecond) {
  EXPECT_DOUBLE_EQ(metrics::bucket_bound(0), 1e-6);
  for (std::size_t i = 1; i < metrics::kFiniteBuckets; ++i) {
    EXPECT_DOUBLE_EQ(metrics::bucket_bound(i),
                     2.0 * metrics::bucket_bound(i - 1))
        << "bucket " << i;
  }
}

TEST(MetricsBuckets, IndexBoundaries) {
  // An observation equal to a bound lands in that bucket (first bucket with
  // x <= bound); one ulp above spills into the next.
  for (const std::size_t i : {std::size_t{0}, std::size_t{5},
                              metrics::kFiniteBuckets - 1}) {
    const double bound = metrics::bucket_bound(i);
    EXPECT_EQ(metrics::bucket_index(bound), i);
    const double above = std::nextafter(
        bound, std::numeric_limits<double>::infinity());
    EXPECT_EQ(metrics::bucket_index(above),
              i + 1 < metrics::kBucketCount ? i + 1 : i);
  }
  EXPECT_EQ(metrics::bucket_index(5e-7), 0u);
  // Past the largest finite bound: the overflow bucket.
  EXPECT_EQ(metrics::bucket_index(1e9), metrics::kFiniteBuckets);
}

TEST(MetricsBuckets, DegenerateObservationsClampToBucketZero) {
  EXPECT_EQ(metrics::bucket_index(0.0), 0u);
  EXPECT_EQ(metrics::bucket_index(-1.0), 0u);
  EXPECT_EQ(metrics::bucket_index(std::nan("")), 0u);
  EXPECT_EQ(metrics::bucket_index(std::numeric_limits<double>::infinity()),
            0u);
}

TEST(MetricsQuantile, ExactRanksOnHandBuiltBuckets) {
  // 10 observations in bucket 2, 85 in bucket 7, 5 in bucket 20. The
  // quantile is the upper bound of the bucket holding rank ceil(q * 100).
  metrics::HistogramSnapshot snap;
  snap.buckets[2] = 10;
  snap.buckets[7] = 85;
  snap.buckets[20] = 5;
  snap.count = 100;
  EXPECT_DOUBLE_EQ(snap.quantile(0.05), metrics::bucket_bound(2));   // rank 5
  EXPECT_DOUBLE_EQ(snap.quantile(0.10), metrics::bucket_bound(2));   // rank 10
  EXPECT_DOUBLE_EQ(snap.quantile(0.11), metrics::bucket_bound(7));   // rank 11
  EXPECT_DOUBLE_EQ(snap.quantile(0.50), metrics::bucket_bound(7));
  EXPECT_DOUBLE_EQ(snap.quantile(0.95), metrics::bucket_bound(7));   // rank 95
  EXPECT_DOUBLE_EQ(snap.quantile(0.96), metrics::bucket_bound(20));  // rank 96
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), metrics::bucket_bound(20));
  // q clamps to rank >= 1 and the empty histogram reports 0.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), metrics::bucket_bound(2));
  EXPECT_DOUBLE_EQ(metrics::HistogramSnapshot{}.quantile(0.5), 0.0);
}

TEST(MetricsQuantile, OverflowBucketReportsLargestFiniteBound) {
  metrics::HistogramSnapshot snap;
  snap.buckets[metrics::kFiniteBuckets] = 4;
  snap.count = 4;
  EXPECT_DOUBLE_EQ(snap.quantile(0.99),
                   metrics::bucket_bound(metrics::kFiniteBuckets - 1));
  EXPECT_TRUE(std::isfinite(snap.quantile(0.99)));
}

TEST(MetricsQuantile, SampleQuantileMatchesRankDefinition) {
  const std::vector<double> values{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(metrics::sample_quantile(values, 0.5), 3.0);   // rank 3
  EXPECT_DOUBLE_EQ(metrics::sample_quantile(values, 0.2), 1.0);   // rank 1
  EXPECT_DOUBLE_EQ(metrics::sample_quantile(values, 0.21), 2.0);  // rank 2
  EXPECT_DOUBLE_EQ(metrics::sample_quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(metrics::sample_quantile({}, 0.5), 0.0);
}

TEST(MetricsMerge, BitIdenticalUnderAnyGrouping) {
  metrics::Histogram histograms[3];
  for (std::size_t h = 0; h < 3; ++h) {
    for (std::size_t i = 0; i < 1000; ++i) {
      histograms[h].observe(observation(h * 1000 + i));
    }
  }
  const metrics::HistogramSnapshot a = histograms[0].snapshot();
  const metrics::HistogramSnapshot b = histograms[1].snapshot();
  const metrics::HistogramSnapshot c = histograms[2].snapshot();

  metrics::HistogramSnapshot left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  metrics::HistogramSnapshot right = c;  // (c + b) + a
  right.merge(b);
  right.merge(a);

  EXPECT_EQ(left.count, 3000u);
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum_nanos, right.sum_nanos);
  EXPECT_EQ(left.buckets, right.buckets);
}

class MetricsThreads : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_global_pool_threads(GetParam()); }
  static void TearDownTestSuite() { set_global_pool_threads(0); }
};

TEST_P(MetricsThreads, ShardMatchesSoloAtAnyThreadCount) {
  constexpr std::size_t kObservations = 20'000;

  // Solo reference: the same multiset observed serially into one histogram.
  metrics::Histogram solo;
  std::uint64_t solo_count = 0;
  for (std::size_t i = 0; i < kObservations; ++i) {
    solo.observe(observation(i));
    if (i % 7 == 0) ++solo_count;
  }

  // Sharded run: a session shard installed via TaskContext, observations
  // fanned out across the pool. instrument-style billing lands in both the
  // global registry and the session shard.
  metrics::MetricShard shard;
  const metrics::MetricsSnapshot global_before =
      metrics::global_shard().snapshot();
  {
    TaskContext ctx;
    ctx.metrics = &shard;
    ScopedTaskContext scope(&ctx);
    global_pool().parallel_for(kObservations, [](std::size_t i) {
      metrics::observe(metrics::Hist::cache_lookup_seconds, observation(i));
      if (i % 7 == 0) metrics::count(metrics::Counter::slo_breaches);
    });
  }

  const metrics::HistogramSnapshot expected = solo.snapshot();
  const metrics::MetricsSnapshot got = shard.snapshot();
  const metrics::HistogramSnapshot& hist =
      got.hist(metrics::Hist::cache_lookup_seconds);
  EXPECT_EQ(hist.count, kObservations);
  EXPECT_EQ(hist.buckets, expected.buckets);
  EXPECT_EQ(hist.sum_nanos, expected.sum_nanos);
  EXPECT_EQ(got.counter(metrics::Counter::slo_breaches), solo_count);

  // The global registry was billed the same delta.
  const metrics::MetricsSnapshot global_after =
      metrics::global_shard().snapshot();
  EXPECT_EQ(global_after.hist(metrics::Hist::cache_lookup_seconds).count -
                global_before.hist(metrics::Hist::cache_lookup_seconds).count,
            kObservations);
}

INSTANTIATE_TEST_SUITE_P(Threads, MetricsThreads,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}));

TEST(MetricsLevel, ScopedLatencyRespectsLevelGating) {
  const LevelGuard guard;
  metrics::MetricShard shard;
  TaskContext ctx;
  ctx.metrics = &shard;
  ScopedTaskContext scope(&ctx);

  metrics::set_level(0);
  {
    const metrics::ScopedLatency latency(metrics::Hist::gmres_seconds);
  }
  EXPECT_EQ(shard.snapshot().hist(metrics::Hist::gmres_seconds).count, 0u);

  metrics::set_level(metrics::kCoarse);
  {
    // A fine site stays silent at the coarse level...
    const metrics::ScopedLatency fine(metrics::Hist::mg_vcycle_seconds,
                                      metrics::kFine);
    // ...while a coarse site records.
    const metrics::ScopedLatency coarse(metrics::Hist::gmres_seconds);
  }
  EXPECT_EQ(shard.snapshot().hist(metrics::Hist::mg_vcycle_seconds).count, 0u);
  EXPECT_EQ(shard.snapshot().hist(metrics::Hist::gmres_seconds).count, 1u);
}

TEST(MetricsSnapshotJson, CarriesHistogramsGaugesCounters) {
  metrics::MetricShard shard;
  shard.histograms[static_cast<std::size_t>(
                       metrics::Hist::solve_steady_seconds)]
      .observe(3e-6);
  shard.gauges[static_cast<std::size_t>(metrics::Gauge::queue_depth)].store(5);
  shard.counters[static_cast<std::size_t>(
                     metrics::Counter::deadline_misses)]
      .store(2);
  const std::string json = shard.snapshot().json();
  EXPECT_NE(json.find("\"solve_steady_seconds\":{\"count\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sum_nanos\":3000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_depth\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"deadline_misses\":2"), std::string::npos) << json;
}

TEST(MetricsPrometheus, GoldenExpositionFormat) {
  metrics::MetricShard shard;
  // Two observations in bucket 0 (1 µs each) and one in bucket 2 (3 µs):
  // cumulative bucket series 2, 2, 3, 3, ... and sum_nanos = 5000.
  auto& hist = shard.histograms[static_cast<std::size_t>(
      metrics::Hist::solve_steady_seconds)];
  hist.observe(1e-6);
  hist.observe(1e-6);
  hist.observe(3e-6);
  shard.gauges[static_cast<std::size_t>(metrics::Gauge::running_jobs)]
      .store(3);
  shard.counters[static_cast<std::size_t>(metrics::Counter::slo_breaches)]
      .store(7);

  const std::string text = metrics::prometheus_text(
      shard.snapshot(), instrument::snapshot(), "foo=\"bar\"");

  const char* const expected[] = {
      "# HELP lcn_solve_steady_seconds Steady-state thermal solve wall time\n",
      "# TYPE lcn_solve_steady_seconds histogram\n",
      "lcn_solve_steady_seconds_bucket{foo=\"bar\",le=\"1e-06\"} 2\n",
      "lcn_solve_steady_seconds_bucket{foo=\"bar\",le=\"2e-06\"} 2\n",
      "lcn_solve_steady_seconds_bucket{foo=\"bar\",le=\"4e-06\"} 3\n",
      "lcn_solve_steady_seconds_bucket{foo=\"bar\",le=\"+Inf\"} 3\n",
      "lcn_solve_steady_seconds_sum{foo=\"bar\"} 5e-06\n",
      "lcn_solve_steady_seconds_count{foo=\"bar\"} 3\n",
      "# TYPE lcn_running_jobs gauge\n",
      "lcn_running_jobs{foo=\"bar\"} 3\n",
      "# TYPE lcn_slo_breaches_total counter\n",
      "lcn_slo_breaches_total{foo=\"bar\"} 7\n",
      // Every instrument work counter rides along.
      "# TYPE lcn_steady_solves_total counter\n",
  };
  for (const char* line : expected) {
    EXPECT_NE(text.find(line), std::string::npos) << "missing: " << line;
  }
  // An empty label set must not leave dangling braces.
  const std::string bare = metrics::prometheus_text(
      shard.snapshot(), instrument::snapshot(), "");
  EXPECT_NE(bare.find("lcn_solve_steady_seconds_bucket{le=\"1e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(bare.find("lcn_solve_steady_seconds_count 3\n"),
            std::string::npos);
  EXPECT_EQ(bare.find("{}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live loopback server: the `metrics` op and the co-hosted HTTP endpoint.

/// Connect a blocking TCP socket to "tcp:127.0.0.1:PORT".
int connect_tcp(const std::string& address) {
  const auto colon = address.rfind(':');
  const int port = std::stoi(address.substr(colon + 1));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << "connect to " << address << ": " << std::strerror(errno);
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

std::string recv_line(int fd) {
  std::string line;
  char ch = 0;
  while (::recv(fd, &ch, 1, 0) == 1) {
    if (ch == '\n') break;
    line.push_back(ch);
  }
  return line;
}

std::string recv_until_eof(int fd) {
  std::string data;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    data.append(buf, static_cast<std::size_t>(n));
  }
  return data;
}

TEST(MetricsServer, MetricsOpAndPrometheusScrapeOverLoopback) {
  service::ServerOptions options;
  options.address = "tcp:127.0.0.1:0";  // ephemeral port
  options.max_running = 1;
  service::Server server(options);
  std::thread runner([&server] { server.run(); });

  // NDJSON metrics op.
  {
    const int fd = connect_tcp(server.address());
    ASSERT_GE(fd, 0);
    send_all(fd, "{\"op\":\"metrics\"}\n");
    const std::string reply = recv_line(fd);
    ::close(fd);
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"histograms\""), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"queue_depth\""), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"manifest\""), std::string::npos) << reply;
  }

  // HTTP scrape on the same port; the server answers and closes.
  {
    const int fd = connect_tcp(server.address());
    ASSERT_GE(fd, 0);
    send_all(fd, "GET /metrics HTTP/1.0\r\n\r\n");
    const std::string response = recv_until_eof(fd);
    ::close(fd);
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(response.find("# TYPE lcn_solve_steady_seconds histogram"),
              std::string::npos);
    EXPECT_NE(response.find("le=\"+Inf\""), std::string::npos);
    EXPECT_NE(response.find("lcn_metrics_scrapes_total"), std::string::npos);
  }

  // Unknown paths get a 404, not a protocol error.
  {
    const int fd = connect_tcp(server.address());
    ASSERT_GE(fd, 0);
    send_all(fd, "GET /other HTTP/1.0\r\n\r\n");
    const std::string response = recv_until_eof(fd);
    ::close(fd);
    EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos);
  }

  server.request_shutdown();
  runner.join();
}

}  // namespace
}  // namespace lcn
