// Unit and property tests for the flow solver (S4): analytic resistances,
// conservation laws, linearity, symmetry.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/flow_solver.hpp"
#include "network/generators.hpp"

namespace lcn {
namespace {

constexpr double kPitch = 100e-6;

ChannelGeometry bench_channel() { return ChannelGeometry{kPitch, 200e-6}; }

TEST(FlowSolver, SingleChannelMatchesAnalyticResistance) {
  // One straight channel of N cells: R = 2/g_edge + (N-1)/g_bulk.
  const int n = 9;
  const Grid2D grid(1, n, kPitch);
  CoolingNetwork net(grid, /*alternating_tsvs=*/false);
  for (int c = 0; c < n; ++c) net.set_liquid(0, c);
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  net.add_port({0, n - 1, Side::kEast, PortKind::kOutlet});

  const CoolantProperties water;
  FlowOptions options;
  options.edge_conductance_factor = 0.5;
  const FlowSolution sol =
      FlowSolver(net, bench_channel(), water, options).solve(1.0);

  const double g_bulk = fluid_conductance(bench_channel(), water, kPitch);
  const double g_edge = 0.5 * g_bulk;
  const double r_expected = 2.0 / g_edge + (n - 1) / g_bulk;
  EXPECT_NEAR(sol.system_resistance(), r_expected, r_expected * 1e-8);

  // Pressure decreases monotonically downstream.
  for (int c = 1; c < n; ++c) {
    EXPECT_LT(sol.pressure[static_cast<std::size_t>(c)],
              sol.pressure[static_cast<std::size_t>(c - 1)]);
  }
  // Uniform flow along the channel equal to the system flow.
  for (int c = 0; c + 1 < n; ++c) {
    EXPECT_NEAR(sol.q_east[static_cast<std::size_t>(c)], sol.system_flow,
                sol.system_flow * 1e-7);
  }
}

TEST(FlowSolver, ParallelChannelsResistanceHalves) {
  const int n = 9;
  const CoolantProperties water;
  auto make_rows = [&](int rows) {
    const Grid2D grid(rows, n, kPitch);
    CoolingNetwork net(grid, false);
    for (int r = 0; r < rows; r += 2) {
      for (int c = 0; c < n; ++c) net.set_liquid(r, c);
      net.add_port({r, 0, Side::kWest, PortKind::kInlet});
      net.add_port({r, n - 1, Side::kEast, PortKind::kOutlet});
    }
    return FlowSolver(net, bench_channel(), water).solve(1.0)
        .system_resistance();
  };
  const double r1 = make_rows(1);
  const double r2 = make_rows(3);  // two channels (rows 0 and 2)
  EXPECT_NEAR(r2, r1 / 2.0, r1 * 1e-8);
}

TEST(FlowSolver, VolumeConservationAtEveryCell) {
  const Grid2D grid(21, 21, kPitch);
  const CoolingNetwork net =
      make_tree_network(grid, make_uniform_layout(grid, 6, 12));
  const CoolantProperties water;
  const FlowSolution sol =
      FlowSolver(net, bench_channel(), water).solve(1.0);

  // Net flow at each cell: east+south outflows minus west+north inflows,
  // plus port flows, must vanish.
  std::vector<double> net_flow(sol.liquid_cells.size(), 0.0);
  for (std::size_t i = 0; i < sol.liquid_cells.size(); ++i) {
    net_flow[i] += sol.q_east[i] + sol.q_south[i];
    const CellCoord cc = grid.coord(sol.liquid_cells[i]);
    if (cc.col > 0) {
      const std::int32_t w = sol.liquid_index[grid.index(cc.row, cc.col - 1)];
      if (w >= 0) net_flow[i] -= sol.q_east[static_cast<std::size_t>(w)];
    }
    if (cc.row > 0) {
      const std::int32_t nn = sol.liquid_index[grid.index(cc.row - 1, cc.col)];
      if (nn >= 0) net_flow[i] -= sol.q_south[static_cast<std::size_t>(nn)];
    }
  }
  for (std::size_t p = 0; p < net.ports().size(); ++p) {
    const Port& port = net.ports()[p];
    const std::int32_t idx = sol.liquid_index[grid.index(port.row, port.col)];
    ASSERT_GE(idx, 0);
    if (port.kind == PortKind::kInlet) {
      net_flow[static_cast<std::size_t>(idx)] -= sol.port_flow[p];
    } else {
      net_flow[static_cast<std::size_t>(idx)] += sol.port_flow[p];
    }
  }
  const double scale = std::abs(sol.system_flow);
  for (std::size_t i = 0; i < net_flow.size(); ++i) {
    EXPECT_LT(std::abs(net_flow[i]), scale * 1e-6) << "cell " << i;
  }
}

TEST(FlowSolver, LinearInPressure) {
  const Grid2D grid(21, 21, kPitch);
  const CoolingNetwork net = make_straight_channels(grid);
  const CoolantProperties water;
  const FlowSolver solver(net, bench_channel(), water);
  const FlowSolution unit = solver.solve(1.0);
  const FlowSolution scaled = solver.solve(3000.0);
  EXPECT_NEAR(scaled.system_flow, 3000.0 * unit.system_flow,
              scaled.system_flow * 1e-9);
  for (std::size_t i = 0; i < unit.pressure.size(); ++i) {
    EXPECT_NEAR(scaled.pressure[i], 3000.0 * unit.pressure[i],
                3000.0 * 1e-9 + std::abs(scaled.pressure[i]) * 1e-7);
  }
}

TEST(FlowSolver, PressuresBoundedByInletAndOutlet) {
  const Grid2D grid(21, 21, kPitch);
  const CoolingNetwork net =
      make_tree_network(grid, make_uniform_layout(grid, 4, 14));
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, bench_channel(), water).solve(1.0);
  for (double p : sol.pressure) {
    EXPECT_GE(p, -1e-9);
    EXPECT_LE(p, 1.0 + 1e-9);
  }
}

TEST(FlowSolver, InflowEqualsOutflow) {
  const Grid2D grid(21, 21, kPitch);
  const CoolingNetwork net = make_comb(grid);
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, bench_channel(), water).solve(1.0);
  double in = 0.0;
  double out = 0.0;
  for (std::size_t p = 0; p < net.ports().size(); ++p) {
    (net.ports()[p].kind == PortKind::kInlet ? in : out) += sol.port_flow[p];
  }
  EXPECT_NEAR(in, out, in * 1e-7);
}

TEST(FlowSolver, MirrorSymmetryOfPressureField) {
  // A vertically symmetric network must give a vertically symmetric field.
  const Grid2D grid(5, 9, kPitch);
  CoolingNetwork net(grid, false);
  for (int r : {0, 4}) {
    for (int c = 0; c < 9; ++c) net.set_liquid(r, c);
  }
  for (int r = 0; r <= 4; ++r) net.set_liquid(r, 4);  // center crossbar
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  net.add_port({4, 0, Side::kWest, PortKind::kInlet});
  net.add_port({0, 8, Side::kEast, PortKind::kOutlet});
  net.add_port({4, 8, Side::kEast, PortKind::kOutlet});
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, bench_channel(), water).solve(1.0);
  for (int c = 0; c < 9; ++c) {
    const double top = sol.pressure[static_cast<std::size_t>(
        sol.liquid_index[grid.index(0, c)])];
    const double bottom = sol.pressure[static_cast<std::size_t>(
        sol.liquid_index[grid.index(4, c)])];
    EXPECT_NEAR(top, bottom, 1e-8);
  }
}

TEST(FlowSolver, ThrowsOnPortlessComponent) {
  const Grid2D grid(5, 5, kPitch);
  CoolingNetwork net(grid, false);
  for (int c = 0; c < 5; ++c) net.set_liquid(0, c);
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  net.add_port({0, 4, Side::kEast, PortKind::kOutlet});
  net.set_liquid(3, 3);  // stranded cell
  const CoolantProperties water;
  EXPECT_THROW(FlowSolver(net, bench_channel(), water).solve(1.0),
               RuntimeError);
}

TEST(FlowSolver, PumpingPowerQuadraticInPressure) {
  const Grid2D grid(21, 21, kPitch);
  const CoolingNetwork net = make_straight_channels(grid);
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, bench_channel(), water).solve(1.0);
  const double w1 = sol.pumping_power(1000.0);
  const double w2 = sol.pumping_power(2000.0);
  EXPECT_NEAR(w2, 4.0 * w1, w2 * 1e-10);
}

// Property sweep: tree-shaped networks distribute more flow to wider
// sections than narrow trunks would suggest, but conservation and bounds
// always hold for any (b1, b2).
class TreeFlowSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TreeFlowSweep, ConservationAndBounds) {
  const auto [b1, b2] = GetParam();
  const Grid2D grid(21, 21, kPitch);
  const CoolingNetwork net =
      make_tree_network(grid, make_uniform_layout(grid, b1, b2));
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, bench_channel(), water).solve(1.0);
  EXPECT_GT(sol.system_flow, 0.0);
  for (double p : sol.pressure) {
    EXPECT_GE(p, -1e-9);
    EXPECT_LE(p, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BranchPositions, TreeFlowSweep,
    ::testing::Values(std::pair{2, 4}, std::pair{2, 18}, std::pair{8, 10},
                      std::pair{8, 16}, std::pair{16, 18}, std::pair{4, 12}));

}  // namespace
}  // namespace lcn
