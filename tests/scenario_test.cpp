// Tests for the dynamic-scenario engine (DESIGN.md §S23): steady
// convergence, thread-count determinism, CDU inlet feedback, throttling,
// pump slew limits, timed faults, boundary-refill bit-identity, and the
// NDJSON scenario format.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/thread_pool.hpp"
#include "network/generators.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scenario_io.hpp"
#include "thermal/field.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"

namespace lcn {
namespace {

CoolingProblem small_problem(int g = 31) {
  CoolingProblem problem;
  problem.grid = Grid2D(g, g, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.push_back(synthesize_power_map(problem.grid, 4.0, 21));
  problem.source_power.push_back(synthesize_power_map(problem.grid, 3.0, 22));
  return problem;
}

std::vector<CoolingNetwork> replicate(const CoolingProblem& problem,
                                      const CoolingNetwork& net) {
  return std::vector<CoolingNetwork>(
      static_cast<std::size_t>(problem.stack.channel_count()), net);
}

ScenarioConfig constant_config(ThermalModelKind model, double p_sys,
                               int steps, double dt = 2e-3) {
  ScenarioConfig config;
  config.sim = SimConfig{model, 3};
  config.dt = dt;
  config.steps = steps;
  config.trace.kind = TraceKind::kConstant;
  config.trace.scale = 1.0;
  config.pump.kind = PumpPolicyKind::kFixed;
  config.pump.p_fixed = p_sys;
  return config;
}

/// Exact-equality comparison of two trajectories, field by field.
void expect_trajectories_identical(const ScenarioResult& a,
                                   const ScenarioResult& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const ScenarioSample& x = a.samples[i];
    const ScenarioSample& y = b.samples[i];
    EXPECT_EQ(x.t_max, y.t_max) << "step " << i;
    EXPECT_EQ(x.delta_t, y.delta_t) << "step " << i;
    EXPECT_EQ(x.inlet_temperature, y.inlet_temperature) << "step " << i;
    EXPECT_EQ(x.p_delivered, y.p_delivered) << "step " << i;
    EXPECT_EQ(x.heat_to_coolant, y.heat_to_coolant) << "step " << i;
    EXPECT_EQ(x.cdu_supply, y.cdu_supply) << "step " << i;
  }
  ASSERT_EQ(a.final_temps.size(), b.final_temps.size());
  for (std::size_t i = 0; i < a.final_temps.size(); ++i) {
    EXPECT_EQ(a.final_temps[i], b.final_temps[i]) << "node " << i;
  }
}

class ScenarioThreads : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_global_pool_threads(GetParam()); }
  static void TearDownTestSuite() { set_global_pool_threads(0); }
};

TEST_P(ScenarioThreads, ConstantPowerConvergesToSteady2RM) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  const double p_sys = 2000.0;

  const Thermal2RM sim(problem, replicate(problem, net), 3);
  const ThermalField steady = solve_steady(sim.assemble(p_sys));

  const ScenarioResult result = run_scenario(
      problem, net, constant_config(ThermalModelKind::k2RM, p_sys, 400));
  ASSERT_EQ(result.steps, 400);
  EXPECT_NEAR(result.samples.back().t_max, steady.t_max, 0.05);
  EXPECT_NEAR(result.samples.back().delta_t, steady.delta_t, 0.05);
  // Monotone heating from the cold start: the peak is the final sample.
  EXPECT_EQ(result.peak_t_max, result.samples.back().t_max);
}

TEST_P(ScenarioThreads, ConstantPowerConvergesToSteady4RM) {
  const CoolingProblem problem = small_problem(21);
  const CoolingNetwork net = make_straight_channels(problem.grid);
  const double p_sys = 2000.0;

  const Thermal4RM sim(problem, replicate(problem, net));
  const ThermalField steady = solve_steady(sim.assemble(p_sys));

  const ScenarioResult result = run_scenario(
      problem, net, constant_config(ThermalModelKind::k4RM, p_sys, 400));
  EXPECT_NEAR(result.samples.back().t_max, steady.t_max, 0.05);
  EXPECT_NEAR(result.samples.back().delta_t, steady.delta_t, 0.05);
}

TEST_P(ScenarioThreads, TrajectoryBitIdenticalAcrossThreadCounts) {
  // A scenario exercising every feedback path at once: bursty power, a
  // thermostat pump under a slew limit, throttling, a timed partial
  // blockage, and the CDU loop closing through the inlet temperature.
  const auto scenario = [] {
    const CoolingProblem problem = small_problem();
    const CoolingNetwork net = make_straight_channels(problem.grid);
    ScenarioConfig config = constant_config(ThermalModelKind::k2RM, 3000.0,
                                            60);
    config.trace.kind = TraceKind::kBursty;
    config.trace.seed = 9;
    config.pump.kind = PumpPolicyKind::kThermostat;
    config.pump.p_fixed = 3000.0;
    config.pump.t_target = 315.0;
    config.pump.gain = 400.0;
    config.pump.slew_rate = 4e5;
    config.throttle.t_throttle = 318.0;
    config.throttle.t_critical = 326.0;
    config.cdu_enabled = true;
    TimedFault blockage;
    blockage.onset = 0.05;
    blockage.fault.kind = FaultKind::kChannelBlockage;
    blockage.fault.row = 15;
    blockage.fault.col = 15;
    blockage.fault.radius = 2;
    blockage.fault.severity = 0.5;
    config.faults.push_back(blockage);
    return run_scenario(problem, net, config);
  };
  static const ScenarioResult reference = [&] {
    set_global_pool_threads(1);
    return scenario();
  }();
  set_global_pool_threads(GetParam());
  expect_trajectories_identical(reference, scenario());
}

INSTANTIATE_TEST_SUITE_P(Threads, ScenarioThreads,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Scenario, CduInletRisesUnderSustainedLoad) {
  // A weak heat exchanger cannot reject the chip's full load, so the
  // recirculating coolant warms and the chip inlet temperature rises —
  // the rack-level feedback a fixed-boundary simulation cannot show.
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  ScenarioConfig config = constant_config(ThermalModelKind::k2RM, 2000.0,
                                          300, 1e-2);
  config.cdu_enabled = true;
  config.cdu.hx_ua = 0.2;           // weak HX: bottleneck of the loop
  config.cdu.facility_flow = 2e-5;  // starved primary side
  config.cdu.loop_volume = 1e-6;    // small loop => fast warm-up

  const ScenarioResult result = run_scenario(problem, net, config);
  // Pinned regression: the inlet must visibly rise above the nominal 300 K
  // inlet, and keep rising through the horizon (sustained load, weak HX).
  EXPECT_GT(result.final_inlet, problem.inlet_temperature + 1.0);
  EXPECT_GT(result.samples.back().inlet_temperature,
            result.samples[result.samples.size() / 2].inlet_temperature);
  // The warmer inlet must feed back into the die temperature: the final
  // T_max exceeds the fixed-inlet steady solution.
  const Thermal2RM sim(problem, replicate(problem, net), 3);
  const ThermalField steady = solve_steady(sim.assemble(2000.0));
  EXPECT_GT(result.samples.back().t_max, steady.t_max + 0.5);
}

TEST(Scenario, ThrottleCapsTemperature) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  ScenarioConfig config = constant_config(ThermalModelKind::k2RM, 1500.0,
                                          250);

  const ScenarioResult unthrottled = run_scenario(problem, net, config);
  ASSERT_GT(unthrottled.peak_t_max, 310.0);

  config.throttle.t_throttle = 308.0;
  config.throttle.t_critical = 312.0;
  config.throttle.min_scale = 0.3;
  const ScenarioResult throttled = run_scenario(problem, net, config);

  EXPECT_LT(throttled.peak_t_max, unthrottled.peak_t_max);
  // The governor actually engaged and reduced power.
  double min_scale_seen = 1.0;
  for (const ScenarioSample& s : throttled.samples) {
    min_scale_seen = std::min(min_scale_seen, s.throttle_scale);
  }
  EXPECT_LT(min_scale_seen, 1.0);
  EXPECT_GE(min_scale_seen, config.throttle.min_scale);
}

TEST(Scenario, SlewRateLimitsPumpCommand) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  ScenarioConfig config = constant_config(ThermalModelKind::k2RM, 1000.0, 40);
  // Thermostat wants a big pressure jump immediately; the actuator may move
  // at most slew_rate * dt per step.
  config.pump.kind = PumpPolicyKind::kThermostat;
  config.pump.p_fixed = 1000.0;
  config.pump.t_target = 250.0;  // far below any temperature => max demand
  config.pump.gain = 1e4;
  config.pump.p_max = 20000.0;
  config.pump.slew_rate = 5e5;

  const ScenarioResult result = run_scenario(problem, net, config);
  const double max_step = config.pump.slew_rate * config.dt;
  for (std::size_t i = 1; i < result.samples.size(); ++i) {
    const double delta = std::abs(result.samples[i].p_command -
                                  result.samples[i - 1].p_command);
    EXPECT_LE(delta, max_step * (1.0 + 1e-12)) << "step " << i;
  }
  // The command ramps rather than jumping: the first step cannot already be
  // at the clamp ceiling.
  EXPECT_LT(result.samples.front().p_command, config.pump.p_max);
  EXPECT_NEAR(result.samples.back().p_command, config.pump.p_max, 1.0);
}

TEST(Scenario, TimedBlockageDivergesTrajectoryAtOnset) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  ScenarioConfig config = constant_config(ThermalModelKind::k2RM, 2000.0, 50);

  const ScenarioResult pristine = run_scenario(problem, net, config);

  TimedFault blockage;
  blockage.onset = 25 * config.dt;  // strikes exactly at step 26's start
  blockage.fault.kind = FaultKind::kChannelBlockage;
  blockage.fault.row = 15;
  blockage.fault.col = 15;
  blockage.fault.radius = 3;
  blockage.fault.severity = 0.7;
  config.faults.push_back(blockage);
  const ScenarioResult faulted = run_scenario(problem, net, config);

  ASSERT_EQ(pristine.samples.size(), faulted.samples.size());
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(pristine.samples[i].t_max, faulted.samples[i].t_max)
        << "pre-onset step " << i;
  }
  // Post-onset the degraded hydraulics run hotter; state carried across the
  // rebuild (no restart transient from the 300 K initial condition).
  EXPECT_GT(faulted.samples.back().t_max, pristine.samples.back().t_max);
  EXPECT_GT(faulted.samples[25].t_max, faulted.samples[24].t_max);
}

TEST(Scenario, FullSeverityBlockageRejected) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  ScenarioConfig config = constant_config(ThermalModelKind::k2RM, 2000.0, 5);
  TimedFault blockage;
  blockage.fault.kind = FaultKind::kChannelBlockage;
  blockage.fault.severity = 1.0;  // would remove nodes => state cannot carry
  config.faults.push_back(blockage);
  EXPECT_THROW(run_scenario(problem, net, config), ContractError);
}

TEST(Scenario, RhsRefillMatchesFullAssemble) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  const Thermal2RM sim(problem, replicate(problem, net), 3);

  BoundaryState boundary;
  boundary.inlet_temperature = 308.5;
  boundary.power_scale = {1.3, 0.4};

  const AssembledThermal direct = sim.plan().assemble(2500.0, boundary);
  AssembledThermal refilled = sim.plan().assemble(2500.0);
  sim.plan().refill_rhs(2500.0, boundary, refilled);

  ASSERT_EQ(direct.rhs.size(), refilled.rhs.size());
  for (std::size_t i = 0; i < direct.rhs.size(); ++i) {
    EXPECT_EQ(direct.rhs[i], refilled.rhs[i]) << "node " << i;
  }
  EXPECT_EQ(direct.inlet_temperature, refilled.inlet_temperature);
  // The matrix is untouched by an RHS refill.
  EXPECT_EQ(direct.matrix.values(), refilled.matrix.values());
}

TEST(Scenario, NominalBoundaryAssembleBitIdentical) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = make_straight_channels(problem.grid);
  const Thermal2RM sim(problem, replicate(problem, net), 3);

  const AssembledThermal a = sim.plan().assemble(2000.0);
  const AssembledThermal b =
      sim.plan().assemble(2000.0, sim.plan().nominal_boundary());
  ASSERT_EQ(a.rhs.size(), b.rhs.size());
  for (std::size_t i = 0; i < a.rhs.size(); ++i) {
    EXPECT_EQ(a.rhs[i], b.rhs[i]) << "node " << i;
  }
  EXPECT_EQ(a.matrix.values(), b.matrix.values());
  EXPECT_EQ(a.inlet_temperature, b.inlet_temperature);
}

TEST(Scenario, PhaseTraceMatchesStepCount) {
  ScenarioConfig config;
  config.dt = 1e-3;
  config.trace.kind = TraceKind::kPhases;
  config.trace.phases = {{{1.0, 1.0}, 5.4e-3}, {{0.5, 0.5}, 2e-3}};
  // ceil(5.4) + ceil(2) = 6 + 2
  EXPECT_EQ(scenario_step_count(config), 8);
  config.trace.kind = TraceKind::kConstant;
  config.steps = 17;
  EXPECT_EQ(scenario_step_count(config), 17);
}

TEST(ScenarioIo, ParsesFullDescription) {
  const ScenarioConfig config = parse_scenario_text(
      "# comment and blank lines are skipped\n"
      "\n"
      "{\"type\":\"scenario\",\"model\":\"4rm\",\"dt\":0.002,\"steps\":50,"
      "\"cdu\":true,\"hx_ua\":1.5,\"t_throttle\":350,\"t_critical\":360}\n"
      "{\"type\":\"phase\",\"scales\":\"1.0,0.5\",\"duration\":0.05,"
      "\"pressure\":4000}\n"
      "{\"type\":\"phase\",\"scales\":\"0.25, 0.75\",\"duration\":0.03,"
      "\"pressure\":2500}\n"
      "{\"type\":\"fault\",\"kind\":\"droop\",\"onset\":0.04,\"ramp\":0.01,"
      "\"severity\":0.3}\n");
  EXPECT_EQ(config.sim.model, ThermalModelKind::k4RM);
  EXPECT_DOUBLE_EQ(config.dt, 0.002);
  EXPECT_TRUE(config.cdu_enabled);
  EXPECT_DOUBLE_EQ(config.cdu.hx_ua, 1.5);
  EXPECT_DOUBLE_EQ(config.throttle.t_throttle, 350.0);
  ASSERT_EQ(config.trace.kind, TraceKind::kPhases);
  ASSERT_EQ(config.trace.phases.size(), 2u);
  EXPECT_EQ(config.trace.phases[0].layer_scale,
            (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(config.trace.phases[1].layer_scale,
            (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(config.pump.kind, PumpPolicyKind::kSchedule);
  EXPECT_EQ(config.pump.schedule, (std::vector<double>{4000.0, 2500.0}));
  ASSERT_EQ(config.faults.size(), 1u);
  EXPECT_EQ(config.faults[0].fault.kind, FaultKind::kPumpDroop);
  EXPECT_DOUBLE_EQ(config.faults[0].onset, 0.04);
  EXPECT_DOUBLE_EQ(config.faults[0].ramp, 0.01);
}

TEST(ScenarioIo, RejectsMalformedInput) {
  // Missing header.
  EXPECT_THROW(parse_scenario_text("{\"type\":\"pump\"}\n"), RuntimeError);
  // Unknown model, reported with the line number.
  try {
    parse_scenario_text("{\"type\":\"scenario\",\"model\":\"9rm\"}\n");
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  // Partial pump schedule: some phases carry pressure, some don't.
  EXPECT_THROW(
      parse_scenario_text(
          "{\"type\":\"scenario\"}\n"
          "{\"type\":\"phase\",\"scales\":\"1,1\",\"pressure\":100}\n"
          "{\"type\":\"phase\",\"scales\":\"1,1\"}\n"),
      RuntimeError);
  // Bad scale list.
  EXPECT_THROW(
      parse_scenario_text("{\"type\":\"scenario\"}\n"
                          "{\"type\":\"phase\",\"scales\":\"1,zap\"}\n"),
      RuntimeError);
  EXPECT_THROW(parse_scenario_text(""), RuntimeError);
}

TEST(ScenarioIo, SampleRowsRoundTripThroughFormats) {
  ScenarioSample sample;
  sample.step = 3;
  sample.time = 0.006;
  sample.t_max = 311.25;
  sample.delta_t = 7.5;
  sample.p_command = 2000.0;
  sample.p_delivered = 1800.0;
  sample.inlet_temperature = 300.5;
  const std::string csv = scenario_sample_csv(sample);
  EXPECT_NE(csv.find("311.25"), std::string::npos);
  // CSV column count matches the header.
  const auto count_commas = [](const std::string& s) {
    std::size_t n = 0;
    for (char c : s) n += c == ',';
    return n;
  };
  EXPECT_EQ(count_commas(csv), count_commas(scenario_csv_header()));
  const std::string json = scenario_sample_json(sample);
  EXPECT_NE(json.find("\"t_max\":311.25"), std::string::npos);
  EXPECT_NE(json.find("\"p_delivered\":1800"), std::string::npos);
}

}  // namespace
}  // namespace lcn
