// Tests for PGM image rendering of temperature/power maps.
#include <gtest/gtest.h>

#include "thermal/image.hpp"

namespace lcn {
namespace {

ThermalField small_field() {
  ThermalField field;
  field.map_rows = 2;
  field.map_cols = 3;
  field.source_maps = {{300.0, 310.0, 320.0, 300.0, 315.0, 330.0}};
  return field;
}

TEST(TemperaturePgm, HeaderAndSize) {
  const std::string pgm = temperature_pgm(small_field(), 0, 2);
  EXPECT_EQ(pgm.substr(0, 3), "P5\n");
  EXPECT_NE(pgm.find("6 4\n255\n"), std::string::npos);
  const std::size_t header_end = pgm.find("255\n") + 4;
  EXPECT_EQ(pgm.size() - header_end, 6u * 4u);  // one byte per pixel
}

TEST(TemperaturePgm, ExtremesMapToBlackAndWhite) {
  const std::string pgm = temperature_pgm(small_field(), 0, 1);
  const std::size_t header_end = pgm.find("255\n") + 4;
  EXPECT_EQ(static_cast<unsigned char>(pgm[header_end]), 0u);  // 300 K
  EXPECT_EQ(static_cast<unsigned char>(pgm[header_end + 5]), 255u);  // 330 K
}

TEST(TemperaturePgm, RejectsBadArgs) {
  EXPECT_THROW(temperature_pgm(small_field(), 1), ContractError);
  EXPECT_THROW(temperature_pgm(small_field(), 0, 0), ContractError);
}

TEST(PowerPgm, UniformMapRendersWithoutCrashing) {
  const Grid2D grid(4, 4, 1e-4);
  const PowerMap map(grid, 1.0);
  const std::string pgm = power_pgm(map, 1);
  EXPECT_EQ(pgm.substr(0, 3), "P5\n");
  const std::size_t header_end = pgm.find("255\n") + 4;
  EXPECT_EQ(pgm.size() - header_end, 16u);
}

}  // namespace
}  // namespace lcn
