// Tests for the stack-description / floorplan file formats (Algorithm 1
// inputs) and their round-trip serializers.
#include <gtest/gtest.h>

#include "geom/problem_io.hpp"

namespace lcn {
namespace {

const std::string kStack = R"(# demo
grid 21 21 100e-6
inlet_temperature 305
ambient 10 298
layer source d0 100e-6 130 1.63e6
layer solid  b0 200e-6 130 1.63e6
layer channel c0 400e-6 130 1.63e6
layer source d1 100e-6 130 1.63e6
layer solid  b1 200e-6 130 1.63e6
constraint delta_t 9
constraint t_max 355
constraint w_pump 0.05
)";

TEST(StackDescription, ParsesEveryDirective) {
  const ProblemDescription desc = parse_stack_description(kStack);
  EXPECT_EQ(desc.problem.grid.rows(), 21);
  EXPECT_NEAR(desc.problem.grid.pitch(), 100e-6, 1e-15);
  EXPECT_DOUBLE_EQ(desc.problem.inlet_temperature, 305.0);
  EXPECT_DOUBLE_EQ(desc.problem.ambient_conductance, 10.0);
  EXPECT_DOUBLE_EQ(desc.problem.ambient_temperature, 298.0);
  EXPECT_EQ(desc.problem.stack.layer_count(), 5);
  EXPECT_EQ(desc.problem.stack.source_count(), 2);
  EXPECT_EQ(desc.problem.stack.channel_count(), 1);
  EXPECT_DOUBLE_EQ(desc.constraints.delta_t_max, 9.0);
  EXPECT_DOUBLE_EQ(desc.constraints.t_max, 355.0);
  EXPECT_DOUBLE_EQ(desc.constraints.w_pump_max, 0.05);
  EXPECT_EQ(desc.problem.source_power.size(), 2u);
}

TEST(StackDescription, RoundTripsThroughFormatter) {
  const ProblemDescription desc = parse_stack_description(kStack);
  const ProblemDescription again =
      parse_stack_description(format_stack_description(desc));
  EXPECT_EQ(again.problem.grid, desc.problem.grid);
  EXPECT_EQ(again.problem.stack.layer_count(),
            desc.problem.stack.layer_count());
  EXPECT_DOUBLE_EQ(again.constraints.delta_t_max,
                   desc.constraints.delta_t_max);
  EXPECT_DOUBLE_EQ(again.problem.ambient_conductance,
                   desc.problem.ambient_conductance);
}

TEST(StackDescription, RejectsMalformedInput) {
  EXPECT_THROW(parse_stack_description("layer source d0 1e-4 130 1.63e6\n"),
               RuntimeError);  // missing grid
  EXPECT_THROW(parse_stack_description("grid 10 10\n"), RuntimeError);
  EXPECT_THROW(parse_stack_description("grid 10 10 1e-4\nwhat 1\n"),
               RuntimeError);
  EXPECT_THROW(parse_stack_description(
                   "grid 10 10 1e-4\nlayer magic x 1e-4 1 1\n"),
               RuntimeError);
  EXPECT_THROW(parse_stack_description(
                   "grid 10 10 1e-4\nconstraint delta_t abc\n"),
               RuntimeError);
  // Stack validation still applies (channel on top is illegal).
  EXPECT_THROW(parse_stack_description(
                   "grid 10 10 1e-4\n"
                   "layer source d0 1e-4 130 1.63e6\n"
                   "layer channel c0 1e-4 130 1.63e6\n"),
               ContractError);
}

TEST(Floorplan, ParsesUnitsAndSumsOverlaps) {
  const Grid2D grid(21, 21, 100e-6);
  const PowerMap map = parse_floorplan(
      "# fp\n"
      "bg 0 0 21 21 4.41\n"
      "hot 5 5 3 3 0.9\n",
      grid);
  EXPECT_NEAR(map.total(), 5.31, 1e-9);
  EXPECT_NEAR(map.at(6, 6), 4.41 / 441.0 + 0.1, 1e-9);
}

TEST(Floorplan, RejectsOutOfBoundsUnits) {
  const Grid2D grid(10, 10, 100e-6);
  EXPECT_THROW(parse_floorplan("u 8 8 5 5 1.0\n", grid), RuntimeError);
  EXPECT_THROW(parse_floorplan("u 0 0 0 3 1.0\n", grid), RuntimeError);
  EXPECT_THROW(parse_floorplan("u 0 0 3 1.0\n", grid), RuntimeError);
}

TEST(Floorplan, FormatterRoundTripsNonZeroCells) {
  const Grid2D grid(8, 8, 100e-6);
  PowerMap map(grid, 0.0);
  map.at(2, 3) = 0.5;
  map.at(7, 0) = 1.25;
  const PowerMap again = parse_floorplan(format_floorplan(map, "u"), grid);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_NEAR(again.at(r, c), map.at(r, c), 1e-12);
    }
  }
}

TEST(ProblemIo, LoadsTheShippedDemoCase) {
  const ProblemDescription desc = load_problem(
      std::string(LCN_DATA_DIR) + "/demo_stack.txt",
      {std::string(LCN_DATA_DIR) + "/demo_die0.flp",
       std::string(LCN_DATA_DIR) + "/demo_die1.flp"});
  EXPECT_EQ(desc.problem.grid.rows(), 51);
  EXPECT_EQ(desc.problem.stack.source_count(), 2);
  EXPECT_NEAR(desc.problem.source_power[0].total(), 6.5, 1e-9);
  EXPECT_NEAR(desc.problem.source_power[1].total(), 4.0, 1e-9);
  EXPECT_NO_THROW(desc.problem.validate());
}

TEST(ProblemIo, MissingFileThrows) {
  EXPECT_THROW(read_text_file("/nonexistent/path/x.txt"), RuntimeError);
}

}  // namespace
}  // namespace lcn
