// Tests for the next-gen solver core (DESIGN.md §S20): SELL-C-σ SpMV
// bit-compatibility with CSR across thread counts, the multigrid
// preconditioner (hierarchy shape, convergence, thread determinism, the
// refactor() structure-change fallback for MG/ILU/IC), mixed-precision
// refinement reaching the full fp64 tolerance, and solve_steady's solver
// configuration dispatch (default config == pre-existing path, bit for bit).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "network/generators.hpp"
#include "sparse/ic0.hpp"
#include "sparse/multigrid.hpp"
#include "sparse/sell.hpp"
#include "sparse/solvers.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"

namespace lcn {
namespace {

using sparse::CsrMatrix;
using sparse::MgGridHint;
using sparse::MultigridPreconditioner;
using sparse::SolveOptions;
using sparse::SolveReport;
using sparse::TripletList;
using sparse::Vector;
using sparse::VectorF;

// 2D 5-point Laplacian on a g x g grid (above kSpmvGrain for g >= 140).
CsrMatrix laplacian2d(std::size_t g) {
  const std::size_t n = g * g;
  TripletList trip(n, n);
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) {
      const std::size_t i = r * g + c;
      trip.add(i, i, 4.0);
      if (r > 0) trip.add(i, i - g, -1.0);
      if (r + 1 < g) trip.add(i, i + g, -1.0);
      if (c > 0) trip.add(i, i - 1, -1.0);
      if (c + 1 < g) trip.add(i, i + 1, -1.0);
    }
  }
  return trip.to_csr();
}

MgGridHint plane_hint(std::size_t g) {
  MgGridHint hint;
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) {
      hint.layer.push_back(0);
      hint.row.push_back(static_cast<std::int32_t>(r));
      hint.col.push_back(static_cast<std::int32_t>(c));
    }
  }
  return hint;
}

Vector varied_vector(std::size_t n) {
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.37 * static_cast<double>(i)) +
           1e-3 * static_cast<double>(i % 101);
  }
  return x;
}

CoolingProblem small_problem(int n = 21, int dies = 2) {
  CoolingProblem problem;
  problem.grid = Grid2D(n, n, 100e-6);
  problem.stack = make_interlayer_stack(dies, 200e-6);
  for (int die = 0; die < dies; ++die) {
    problem.source_power.emplace_back(problem.grid, 2.0 / dies);
  }
  return problem;
}

std::vector<CoolingNetwork> straight_networks(const CoolingProblem& problem) {
  return std::vector<CoolingNetwork>(
      static_cast<std::size_t>(problem.stack.channel_count()),
      make_straight_channels(problem.grid));
}

// ---------------------------------------------------------------- SELL-C-σ

TEST(SellMatrix, MultiplyBitIdenticalToCsrAcrossThreadCounts) {
  const CsrMatrix a = laplacian2d(150);  // fans out: ~112k nnz
  const Vector x = varied_vector(a.cols());
  Vector ref;
  a.multiply_serial(x, ref);

  const sparse::SellMatrixD sell(a);
  EXPECT_EQ(sell.nnz(), a.nnz());
  EXPECT_GE(sell.padded_slots(), sell.nnz());
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    set_global_pool_threads(threads);
    Vector y;
    sell.multiply(x, y);
    EXPECT_EQ(y, ref) << "threads=" << threads;
  }
  set_global_pool_threads(0);
}

TEST(SellMatrix, RefillTracksNewValuesOnSharedStructure) {
  CsrMatrix a = laplacian2d(40);
  sparse::SellMatrixD sell(a);
  ASSERT_TRUE(sell.shares_structure(a));

  // Same structure, new values (borrowing the shared index arrays).
  Vector values = a.values();
  for (double& v : values) v *= 1.75;
  const CsrMatrix b(a.rows(), a.cols(), a.shared_row_ptr(), a.shared_col_idx(),
                    std::move(values));
  sell.refill(b);
  const Vector x = varied_vector(b.cols());
  Vector ref;
  b.multiply_serial(x, ref);
  Vector y;
  sell.multiply(x, y);
  EXPECT_EQ(y, ref);
}

TEST(SellMatrix, RefillRebuildsOnStructureChange) {
  sparse::SellMatrixD sell(laplacian2d(30));
  const CsrMatrix other = laplacian2d(17);  // different pattern entirely
  EXPECT_FALSE(sell.shares_structure(other));
  sell.refill(other);
  EXPECT_EQ(sell.rows(), other.rows());
  EXPECT_EQ(sell.nnz(), other.nnz());
  const Vector x = varied_vector(other.cols());
  Vector ref;
  other.multiply_serial(x, ref);
  Vector y;
  sell.multiply(x, y);
  EXPECT_EQ(y, ref);
}

TEST(SellMatrix, Fp32MultiplyApproximatesFp64) {
  const CsrMatrix a = laplacian2d(40);
  const sparse::SellMatrixF sell32(a);
  const Vector x = varied_vector(a.cols());
  VectorF x32(x.begin(), x.end());
  VectorF y32;
  sell32.multiply(x32, y32);
  Vector ref;
  a.multiply_serial(x, ref);
  ASSERT_EQ(y32.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(y32[i]), ref[i],
                1e-5 * std::max(1.0, std::abs(ref[i])))
        << "index " << i;
  }
}

// --------------------------------------------------------------- multigrid

TEST(Multigrid, BuildsDeepHierarchyFromGridHint) {
  const std::size_t g = 64;
  const CsrMatrix a = laplacian2d(g);
  const MgGridHint hint = plane_hint(g);
  const MultigridPreconditioner mg(a, &hint);
  ASSERT_GE(mg.level_count(), 3u);
  EXPECT_EQ(mg.level_rows(0), a.rows());
  // 2x2 in-plane coarsening: every level shrinks ~4x.
  EXPECT_LE(mg.level_rows(1), a.rows() / 3);
}

TEST(Multigrid, ApplyIsDeterministicAcrossThreadCounts) {
  const std::size_t g = 150;
  const CsrMatrix a = laplacian2d(g);
  const MgGridHint hint = plane_hint(g);
  const MultigridPreconditioner mg(a, &hint);
  const Vector r = varied_vector(a.rows());

  set_global_pool_threads(1);
  Vector ref;
  mg.apply(r, ref);
  for (std::size_t threads : {2u, 4u, 8u}) {
    set_global_pool_threads(threads);
    Vector z;
    mg.apply(r, z);
    EXPECT_EQ(z, ref) << "threads=" << threads;
  }
  set_global_pool_threads(0);
}

TEST(Multigrid, PreconditionedSolveConvergesFasterThanJacobi) {
  const std::size_t g = 96;
  const CsrMatrix a = laplacian2d(g);
  const MgGridHint hint = plane_hint(g);
  const Vector b = varied_vector(a.rows());

  SolveOptions opts;
  opts.rel_tolerance = 1e-10;
  Vector x_mg;
  const MultigridPreconditioner mg(a, &hint);
  const SolveReport mg_report = bicgstab_solve(a, b, x_mg, mg, opts);
  ASSERT_TRUE(mg_report.converged);

  Vector x_j;
  const sparse::JacobiPreconditioner jacobi(a);
  const SolveReport j_report = bicgstab_solve(a, b, x_j, jacobi, opts);
  ASSERT_TRUE(j_report.converged);
  EXPECT_LT(mg_report.iterations * 3, j_report.iterations);

  Vector r = a.multiply(x_mg);
  sparse::axpy(-1.0, b, r);
  EXPECT_LT(sparse::norm2(r) / sparse::norm2(b), 1e-9);
}

TEST(Multigrid, AlgebraicFallbackWithoutHintStillConverges) {
  const CsrMatrix a = laplacian2d(48);
  const MultigridPreconditioner mg(a, nullptr);
  ASSERT_GE(mg.level_count(), 2u);
  const Vector b = varied_vector(a.rows());
  Vector x;
  const SolveReport report = bicgstab_solve(a, b, x, mg);
  EXPECT_TRUE(report.converged);
}

// refactor() contract shared by every refactorable preconditioner: after a
// refactor to a matrix with a DIFFERENT symbolic structure, the
// preconditioner must behave exactly like one freshly built from that
// matrix (full-reconstruction fallback, not a stale numeric refill).
template <class Precon>
void expect_refactor_equals_fresh(const CsrMatrix& first,
                                  const CsrMatrix& second) {
  Precon refactored(first);
  refactored.refactor(second);
  const Precon fresh(second);
  const Vector r = varied_vector(second.rows());
  Vector z_refactored, z_fresh;
  refactored.apply(r, z_refactored);
  fresh.apply(r, z_fresh);
  EXPECT_EQ(z_refactored, z_fresh);
}

TEST(PreconRefactor, FallsBackToFullRebuildOnStructureFlip) {
  const CsrMatrix small = laplacian2d(23);
  const CsrMatrix big = laplacian2d(41);
  expect_refactor_equals_fresh<sparse::Ilu0Preconditioner>(small, big);
  expect_refactor_equals_fresh<sparse::Ic0Preconditioner>(small, big);
  expect_refactor_equals_fresh<MultigridPreconditioner>(small, big);
  // And back down again mid-sequence.
  expect_refactor_equals_fresh<sparse::Ilu0Preconditioner>(big, small);
  expect_refactor_equals_fresh<MultigridPreconditioner>(big, small);
}

TEST(PreconRefactor, SharedStructureRefillMatchesFresh) {
  const CsrMatrix a = laplacian2d(32);
  Vector values = a.values();
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] *= 1.0 + 1e-3 * static_cast<double>(i % 7);
  }
  const CsrMatrix b(a.rows(), a.cols(), a.shared_row_ptr(), a.shared_col_idx(),
                    std::move(values));
  expect_refactor_equals_fresh<sparse::Ilu0Preconditioner>(a, b);

  // For multigrid the bit-identity claim holds on the geometric path, where
  // aggregation depends only on grid coordinates. (Hint-less algebraic
  // aggregation follows the strongest couplings of the *built* matrix, so a
  // numeric refill legitimately keeps the original hierarchy.)
  const MgGridHint hint = plane_hint(32);
  MultigridPreconditioner refactored(a, &hint);
  refactored.refactor(b);
  const MultigridPreconditioner fresh(b, &hint);
  const Vector r = varied_vector(b.rows());
  Vector z_refactored, z_fresh;
  refactored.apply(r, z_refactored);
  fresh.apply(r, z_fresh);
  EXPECT_EQ(z_refactored, z_fresh);
}

// ----------------------------------------------------------- mixed precision

TEST(MixedPrecision, RefinementReachesFp64Tolerance) {
  const std::size_t g = 64;
  const CsrMatrix a = laplacian2d(g);
  const MgGridHint hint = plane_hint(g);
  const MultigridPreconditioner mg(a, &hint);
  const Vector b = varied_vector(a.rows());

  SolveOptions opts;
  opts.rel_tolerance = 1e-10;
  opts.precision = sparse::Precision::kMixed;
  sparse::SolverWorkspace ws;
  Vector x;
  const SolveReport report = sparse::mixed_refined_solve(a, b, x, mg, ws, opts);
  ASSERT_TRUE(report.converged);
  EXPECT_LT(report.relative_residual, opts.rel_tolerance);

  // The reported residual is the true fp64 residual of the returned iterate.
  Vector r = a.multiply(x);
  sparse::axpy(-1.0, b, r);
  EXPECT_NEAR(sparse::norm2(r) / sparse::norm2(b), report.relative_residual,
              1e-16);

  // And the iterate agrees with a pure-fp64 solve to that tolerance.
  Vector x64;
  SolveOptions opts64;
  opts64.rel_tolerance = 1e-10;
  const SolveReport ref = bicgstab_solve(a, b, x64, mg, opts64);
  ASSERT_TRUE(ref.converged);
  const double xnorm = sparse::norm2(x64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x64[i], 1e-6 * std::max(1.0, xnorm)) << "index " << i;
  }
}

TEST(MixedPrecision, CascadeFallsBackToFp64WhenRefinementIsCapped) {
  const CsrMatrix a = laplacian2d(40);
  const Vector b = varied_vector(a.rows());
  SolveOptions opts;
  opts.rel_tolerance = 1e-12;
  opts.precision = sparse::Precision::kMixed;
  opts.mixed_max_refinements = 1;  // too few steps for 12 digits: must stall
  sparse::SolverWorkspace ws;
  const sparse::Ilu0Preconditioner ilu(a);
  Vector x;
  // The public cascade entry point must still deliver the fp64 tolerance.
  EXPECT_NO_THROW(sparse::solve_general_or_throw(a, b, x, "mixed fallback",
                                                 ilu, ws, opts));
  Vector r = a.multiply(x);
  sparse::axpy(-1.0, b, r);
  EXPECT_LT(sparse::norm2(r) / sparse::norm2(b), opts.rel_tolerance);
}

TEST(MixedPrecision, WorkspaceReuseMatchesFreshWorkspace) {
  const CsrMatrix a = laplacian2d(32);
  const Vector b = varied_vector(a.rows());
  const sparse::JacobiPreconditioner m(a);
  SolveOptions opts;
  opts.rel_tolerance = 1e-8;

  sparse::SolverWorkspace fresh;
  Vector x1;
  const SolveReport r1 = sparse::mixed_refined_solve(a, b, x1, m, fresh, opts);

  sparse::SolverWorkspace reused;
  Vector warmup;
  sparse::mixed_refined_solve(a, b, warmup, m, reused, opts);
  Vector x2;
  const SolveReport r2 = sparse::mixed_refined_solve(a, b, x2, m, reused, opts);

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(x1, x2);  // reused scratch never leaks a previous solve
  EXPECT_EQ(r1.iterations, r2.iterations);
}

// ------------------------------------------------------------- solve_steady

TEST(SolveSteadyConfig, DefaultConfigBitIdenticalToLegacyPath) {
  const CoolingProblem problem = small_problem();
  const Thermal4RM sim(problem, straight_networks(problem));
  const AssembledThermal system = sim.assemble(2000.0);

  // No config (env knobs unset in tests) vs explicit default config vs the
  // pre-PR call shape: all three must produce the same bits.
  const ThermalField legacy = solve_steady(system, 1e-9);
  const SteadySolverConfig def;
  const ThermalField with_config =
      solve_steady(system, 1e-9, nullptr, nullptr, &def);
  EXPECT_EQ(legacy.temperatures, with_config.temperatures);

  SteadyWorkspace ws;
  const ThermalField with_ws = solve_steady(system, 1e-9, nullptr, &ws, &def);
  EXPECT_EQ(legacy.temperatures, with_ws.temperatures);
  EXPECT_TRUE(ws.ilu.has_value());
  EXPECT_FALSE(ws.mg.has_value());
}

TEST(SolveSteadyConfig, MultigridAndMixedAgreeWithDefault) {
  const CoolingProblem problem = small_problem();
  const Thermal4RM sim(problem, straight_networks(problem));
  const AssembledThermal system = sim.assemble(2000.0);
  ASSERT_NE(system.mg_hint, nullptr);
  ASSERT_EQ(system.mg_hint->size(), system.matrix.rows());

  const ThermalField ref = solve_steady(system, 1e-10);

  SteadySolverConfig mg_cfg;
  mg_cfg.precon = SteadySolverConfig::Precon::kMultigrid;
  SteadyWorkspace mg_ws;
  const ThermalField mg_field =
      solve_steady(system, 1e-10, nullptr, &mg_ws, &mg_cfg);
  EXPECT_TRUE(mg_ws.mg.has_value());

  SteadySolverConfig mixed_cfg = mg_cfg;
  mixed_cfg.precision = sparse::Precision::kMixed;
  const ThermalField mixed_field =
      solve_steady(system, 1e-10, nullptr, nullptr, &mixed_cfg);

  // Same system solved to 1e-10: fields agree to solver tolerance.
  ASSERT_EQ(ref.temperatures.size(), mg_field.temperatures.size());
  double scale = 0.0;
  for (double t : ref.temperatures) scale = std::max(scale, std::abs(t));
  for (std::size_t i = 0; i < ref.temperatures.size(); ++i) {
    EXPECT_NEAR(mg_field.temperatures[i], ref.temperatures[i], 1e-6 * scale);
    EXPECT_NEAR(mixed_field.temperatures[i], ref.temperatures[i],
                1e-6 * scale);
  }
}

TEST(SolveSteadyConfig, MultigridWorkspaceRefactorsAcrossProbes) {
  const CoolingProblem problem = small_problem();
  const Thermal2RM sim(problem, straight_networks(problem), 3);
  SteadySolverConfig cfg;
  cfg.precon = SteadySolverConfig::Precon::kMultigrid;
  SteadyWorkspace ws;
  double prev = 1e300;
  for (double p : {1000.0, 2000.0, 4000.0}) {
    const AssembledThermal system = sim.assemble(p);
    const ThermalField field = solve_steady(system, 1e-9, nullptr, &ws, &cfg);
    EXPECT_LT(field.t_max, prev) << "P=" << p;
    prev = field.t_max;
  }
  EXPECT_TRUE(ws.mg.has_value());
}

TEST(SolveSteadyConfig, FromEnvDefaultsMatchSeedConfig) {
  const SteadySolverConfig cfg = SteadySolverConfig::from_env();
  const SteadySolverConfig def;
  EXPECT_EQ(cfg.precon, def.precon);
  EXPECT_EQ(cfg.method, def.method);
  EXPECT_EQ(cfg.precision, def.precision);
}

}  // namespace
}  // namespace lcn
