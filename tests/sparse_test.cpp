// Unit tests for the sparse linear algebra substrate (S1).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/gmres.hpp"
#include "sparse/multigrid.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/solvers.hpp"

namespace lcn::sparse {
namespace {

CsrMatrix small_matrix() {
  // [ 4 -1  0]
  // [-1  4 -1]
  // [ 0 -1  4]
  TripletList t(3, 3);
  t.add(0, 0, 4.0);
  t.add(0, 1, -1.0);
  t.add(1, 0, -1.0);
  t.add(1, 1, 4.0);
  t.add(1, 2, -1.0);
  t.add(2, 1, -1.0);
  t.add(2, 2, 4.0);
  return t.to_csr();
}

TEST(TripletList, MergesDuplicatesBySumming) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.5);
  t.add(1, 1, -1.0);
  t.add(0, 1, 0.5);
  const CsrMatrix a = t.to_csr();
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);
}

TEST(TripletList, DropsExplicitZeros) {
  TripletList t(2, 2);
  t.add(0, 0, 0.0);
  t.add(1, 1, 1.0);
  EXPECT_EQ(t.to_csr().nnz(), 1u);
}

TEST(TripletList, RejectsOutOfRangeIndices) {
  TripletList t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), ContractError);
  EXPECT_THROW(t.add(0, 2, 1.0), ContractError);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  const CsrMatrix a = small_matrix();
  const Vector x = {1.0, 2.0, 3.0};
  const Vector y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 4.0 - 2.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0 + 8.0 - 3.0);
  EXPECT_DOUBLE_EQ(y[2], -2.0 + 12.0);
}

TEST(CsrMatrix, SymmetryGapDetectsAsymmetry) {
  EXPECT_DOUBLE_EQ(small_matrix().symmetry_gap(), 0.0);
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 1.0);
  EXPECT_DOUBLE_EQ(t.to_csr().symmetry_gap(), 1.0);
}

TEST(CsrMatrix, DiagonalExtraction) {
  const Vector d = small_matrix().diagonal();
  EXPECT_EQ(d, (Vector{4.0, 4.0, 4.0}));
}

TEST(DenseLu, SolvesSmallSystemExactly) {
  DenseMatrix a(3, 3);
  a(0, 0) = 2.0; a(0, 1) = 1.0; a(0, 2) = -1.0;
  a(1, 0) = -3.0; a(1, 1) = -1.0; a(1, 2) = 2.0;
  a(2, 0) = -2.0; a(2, 1) = 1.0; a(2, 2) = 2.0;
  const DenseLu lu(a);
  const Vector x = lu.solve({8.0, -11.0, -3.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(DenseLu, ThrowsOnSingularMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(DenseLu lu(a), RuntimeError);
}

// Random SPD system: A = B^T B + n I assembled sparsely from a banded B.
CsrMatrix random_spd(std::size_t n, Rng& rng) {
  TripletList t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 4.0 + rng.next_double());
    if (i + 1 < n) {
      const double off = -1.0 + 0.2 * rng.next_double();
      t.add(i, i + 1, off);
      t.add(i + 1, i, off);
    }
    if (i + 7 < n) {
      const double off = -0.3 * rng.next_double();
      t.add(i, i + 7, off);
      t.add(i + 7, i, off);
    }
  }
  return t.to_csr();
}

TEST(CgSolve, ConvergesOnRandomSpdSystems) {
  Rng rng(42);
  for (std::size_t n : {5u, 50u, 500u}) {
    const CsrMatrix a = random_spd(n, rng);
    Vector b(n);
    for (auto& v : b) v = rng.next_real(-1.0, 1.0);
    Vector x;
    const JacobiPreconditioner m(a);
    const SolveReport report = cg_solve(a, b, x, m);
    EXPECT_TRUE(report.converged) << "n=" << n;
    Vector r = a.multiply(x);
    axpy(-1.0, b, r);
    EXPECT_LT(norm2(r) / norm2(b), 1e-9) << "n=" << n;
  }
}

TEST(CgSolve, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = small_matrix();
  Vector x = {5.0, 5.0, 5.0};
  const IdentityPreconditioner id;
  const SolveReport report = cg_solve(a, Vector(3, 0.0), x, id);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(x, Vector(3, 0.0));
}

CsrMatrix random_nonsymmetric(std::size_t n, Rng& rng, double advection) {
  TripletList t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 5.0 + rng.next_double());
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0 - advection * rng.next_double());
      t.add(i + 1, i, -1.0 + advection * rng.next_double());
    }
    if (i + 11 < n) t.add(i, i + 11, -0.4 * rng.next_double());
  }
  return t.to_csr();
}

TEST(BicgstabSolve, ConvergesOnNonsymmetricSystems) {
  Rng rng(7);
  for (std::size_t n : {4u, 64u, 400u}) {
    const CsrMatrix a = random_nonsymmetric(n, rng, 0.8);
    Vector b(n);
    for (auto& v : b) v = rng.next_real(-2.0, 2.0);
    Vector x;
    const Ilu0Preconditioner m(a);
    const SolveReport report = bicgstab_solve(a, b, x, m);
    EXPECT_TRUE(report.converged) << "n=" << n;
    Vector r = a.multiply(x);
    axpy(-1.0, b, r);
    EXPECT_LT(norm2(r) / norm2(b), 1e-8) << "n=" << n;
  }
}

TEST(BicgstabSolve, MatchesDenseLuSolution) {
  Rng rng(99);
  const std::size_t n = 30;
  const CsrMatrix a = random_nonsymmetric(n, rng, 0.5);
  Vector b(n);
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);

  Vector x_iter;
  const Ilu0Preconditioner m(a);
  ASSERT_TRUE(bicgstab_solve(a, b, x_iter, m).converged);

  const DenseLu lu(DenseMatrix::from_csr(a));
  const Vector x_ref = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_iter[i], x_ref[i], 1e-7 * (1.0 + std::abs(x_ref[i])));
  }
}

TEST(Ilu0, ExactForTriangularPattern) {
  // For a lower-triangular matrix ILU(0) is an exact factorization, so one
  // preconditioner application solves the system.
  TripletList t(4, 4);
  t.add(0, 0, 2.0);
  t.add(1, 0, -1.0);
  t.add(1, 1, 3.0);
  t.add(2, 1, -0.5);
  t.add(2, 2, 1.5);
  t.add(3, 3, 4.0);
  const CsrMatrix a = t.to_csr();
  const Ilu0Preconditioner m(a);
  const Vector b = {2.0, 2.0, 1.0, 8.0};
  Vector z;
  m.apply(b, z);
  const Vector az = a.multiply(z);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(az[i], b[i], 1e-12);
}

TEST(Ilu0, ThrowsOnMissingDiagonal) {
  TripletList t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  EXPECT_THROW(Ilu0Preconditioner m(t.to_csr()), RuntimeError);
}

TEST(JacobiPreconditioner, ScalesByInverseDiagonal) {
  const JacobiPreconditioner m(small_matrix());
  Vector z;
  m.apply({4.0, 8.0, -4.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 2.0);
  EXPECT_DOUBLE_EQ(z[2], -1.0);
}

// Property sweep: CG and BiCGSTAB agree with the dense reference across
// sizes and seeds.
class SolverAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverAgreement, SpdCgMatchesDense) {
  Rng rng(GetParam());
  const std::size_t n = 20 + rng.next_below(30);
  const CsrMatrix a = random_spd(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);
  Vector x;
  const JacobiPreconditioner m(a);
  ASSERT_TRUE(cg_solve(a, b, x, m).converged);
  const DenseLu lu(DenseMatrix::from_csr(a));
  const Vector ref = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], ref[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Convergence telemetry (§S19): the recorded residual history must end at
// exactly the report's relative residual on every solver, and recording must
// be strictly opt-in.
TEST(ResidualHistory, CgFinalEntryMatchesReport) {
  Rng rng(11);
  const CsrMatrix a = random_spd(120, rng);
  Vector b(120);
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);
  const JacobiPreconditioner m(a);

  Vector x;
  SolveOptions opts;
  opts.record_residuals = true;
  const SolveReport report = cg_solve(a, b, x, m, opts);
  ASSERT_TRUE(report.converged);
  ASSERT_FALSE(report.residual_history.empty());
  EXPECT_EQ(report.residual_history.back(), report.relative_residual);
  EXPECT_EQ(report.residual_history.size(), report.iterations);

  Vector y;
  const SolveReport quiet = cg_solve(a, b, y, m);
  EXPECT_TRUE(quiet.residual_history.empty());
  EXPECT_EQ(y, x);  // telemetry never perturbs the iterates
}

TEST(ResidualHistory, BicgstabFinalEntryMatchesReport) {
  Rng rng(12);
  const CsrMatrix a = random_nonsymmetric(150, rng, 0.8);
  Vector b(150);
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);
  const Ilu0Preconditioner m(a);

  Vector x;
  SolveOptions opts;
  opts.record_residuals = true;
  const SolveReport report = bicgstab_solve(a, b, x, m, opts);
  ASSERT_TRUE(report.converged);
  ASSERT_FALSE(report.residual_history.empty());
  EXPECT_EQ(report.residual_history.back(), report.relative_residual);

  Vector y;
  const SolveReport quiet = bicgstab_solve(a, b, y, m);
  EXPECT_TRUE(quiet.residual_history.empty());
  EXPECT_EQ(y, x);
}

TEST(ResidualHistory, GmresFinalEntryMatchesReport) {
  Rng rng(13);
  const CsrMatrix a = random_nonsymmetric(150, rng, 0.8);
  Vector b(150);
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);
  const Ilu0Preconditioner m(a);

  Vector x;
  GmresOptions opts;
  opts.record_residuals = true;
  const SolveReport report = gmres_solve(a, b, x, m, opts);
  ASSERT_TRUE(report.converged);
  ASSERT_FALSE(report.residual_history.empty());
  // GMRES per-iteration entries are Givens-implied estimates; the contract
  // still pins the final entry to the reported (true) relative residual.
  EXPECT_EQ(report.residual_history.back(), report.relative_residual);

  Vector y;
  const SolveReport quiet = gmres_solve(a, b, y, m);
  EXPECT_TRUE(quiet.residual_history.empty());
  EXPECT_EQ(y, x);
}

TEST(ResidualHistory, RecordedOnNonConvergence) {
  Rng rng(14);
  const CsrMatrix a = random_spd(200, rng);
  Vector b(200);
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);
  const JacobiPreconditioner m(a);
  Vector x;
  SolveOptions opts;
  opts.record_residuals = true;
  opts.max_iterations = 3;  // force the max-iters exit path
  const SolveReport report = cg_solve(a, b, x, m, opts);
  ASSERT_FALSE(report.converged);
  ASSERT_FALSE(report.residual_history.empty());
  EXPECT_EQ(report.residual_history.back(), report.relative_residual);
}

TEST(ResidualHistory, MultigridPreconditionedFinalEntryMatchesReport) {
  Rng rng(15);
  const CsrMatrix a = random_nonsymmetric(160, rng, 0.6);
  Vector b(160);
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);
  // No grid hint: exercises the algebraic-aggregation hierarchy.
  const MultigridPreconditioner m(a);

  Vector x;
  SolveOptions opts;
  opts.record_residuals = true;
  const SolveReport report = bicgstab_solve(a, b, x, m, opts);
  ASSERT_TRUE(report.converged);
  ASSERT_FALSE(report.residual_history.empty());
  EXPECT_EQ(report.residual_history.back(), report.relative_residual);

  Vector y;
  const SolveReport quiet = bicgstab_solve(a, b, y, m);
  EXPECT_TRUE(quiet.residual_history.empty());
  EXPECT_EQ(y, x);
}

TEST(ResidualHistory, MixedPrecisionFinalEntryMatchesReport) {
  Rng rng(16);
  const CsrMatrix a = random_spd(180, rng);
  Vector b(180);
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);
  const JacobiPreconditioner m(a);

  Vector x;
  SolverWorkspace ws;
  SolveOptions opts;
  opts.rel_tolerance = 1e-10;
  opts.record_residuals = true;
  const SolveReport report = mixed_refined_solve(a, b, x, m, ws, opts);
  ASSERT_TRUE(report.converged);
  ASSERT_FALSE(report.residual_history.empty());
  EXPECT_EQ(report.residual_history.back(), report.relative_residual);

  // Stalled/capped refinement must keep the contract on the failure path.
  Vector y;
  SolveOptions capped = opts;
  capped.mixed_max_refinements = 1;
  capped.rel_tolerance = 1e-14;
  const SolveReport stalled = mixed_refined_solve(a, b, y, m, ws, capped);
  ASSERT_FALSE(stalled.converged);
  ASSERT_FALSE(stalled.residual_history.empty());
  EXPECT_EQ(stalled.residual_history.back(), stalled.relative_residual);

  Vector z;
  SolveOptions unrecorded;
  unrecorded.rel_tolerance = 1e-10;
  const SolveReport quiet = mixed_refined_solve(a, b, z, m, ws, unrecorded);
  EXPECT_TRUE(quiet.residual_history.empty());
  EXPECT_EQ(z, x);  // telemetry never perturbs the iterates
}

}  // namespace
}  // namespace lcn::sparse
