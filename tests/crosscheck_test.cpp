// Cross-validation properties tying the optimizer to the simulators:
//  - Algorithm 2's result matches a brute-force sweep over P_sys on frozen
//    networks (optimality of the pressure search);
//  - the Problem-2 evaluation matches a brute-force constrained sweep;
//  - 2RM and 4RM agree on metrics within a few percent across all network
//    generator families;
//  - network evaluation is invariant under world D4 transforms.
#include <gtest/gtest.h>

#include <cmath>

#include "network/generators.hpp"
#include "opt/evaluator.hpp"
#include "opt/sa.hpp"

namespace lcn {
namespace {

CoolingProblem small_problem(std::uint64_t seed = 41) {
  CoolingProblem problem;
  problem.grid = Grid2D(31, 31, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.push_back(
      synthesize_power_map(problem.grid, 4.5, seed));
  problem.source_power.push_back(
      synthesize_power_map(problem.grid, 3.5, seed + 1));
  return problem;
}

SimConfig fast_sim() { return SimConfig{ThermalModelKind::k2RM, 3}; }

TEST(CrossCheck, AlgorithmTwoMatchesBruteForceSweep) {
  const CoolingProblem problem = small_problem();
  const DesignConstraints limits{12.0, 340.0, 0.0};
  const CoolingNetwork net = make_straight_channels(problem.grid);

  SystemEvaluator eval(problem, net, fast_sim());
  const EvalResult result = evaluate_p1(eval, limits);
  ASSERT_TRUE(result.feasible);

  // Brute force: geometric sweep of pressures; the smallest feasible one
  // bounds the optimum from above/below within the grid resolution.
  SystemEvaluator sweep_eval(problem, net, fast_sim());
  double best_feasible = 1e300;
  for (double p = 200.0; p < 2e5; p *= 1.02) {
    const ThermalProbe probe = sweep_eval.probe(p);
    if (probe.delta_t <= limits.delta_t_max && probe.t_max <= limits.t_max) {
      best_feasible = p;
      break;  // T_max and ΔT are both satisfied; smallest p found
    }
  }
  ASSERT_LT(best_feasible, 1e300);
  EXPECT_NEAR(result.p_sys, best_feasible, best_feasible * 0.04);
}

TEST(CrossCheck, ProblemTwoMatchesBruteForceSweep) {
  const CoolingProblem problem = small_problem();
  DesignConstraints limits{0.0, 340.0, 0.0};
  limits.w_pump_max = 2e-3 * 8.0;
  const CoolingNetwork net = make_straight_channels(problem.grid);

  SystemEvaluator eval(problem, net, fast_sim());
  const EvalResult result = evaluate_p2(eval, limits);
  ASSERT_TRUE(result.feasible);

  SystemEvaluator sweep_eval(problem, net, fast_sim());
  const double p_star =
      std::sqrt(limits.w_pump_max * sweep_eval.system_resistance());
  double best_dt = 1e300;
  for (double p = p_star / 300.0; p <= p_star * 1.0001; p *= 1.05) {
    const ThermalProbe probe = sweep_eval.probe(p);
    if (probe.t_max > limits.t_max) continue;
    best_dt = std::min(best_dt, probe.delta_t);
  }
  ASSERT_LT(best_dt, 1e300);
  EXPECT_LE(result.score, best_dt * 1.02);
  EXPECT_GE(result.score, best_dt * 0.98);
}

// Metric agreement between 2RM and 4RM across every generator family.
class ModelAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ModelAgreement, MetricsWithinFivePercent) {
  const int style = GetParam();
  const CoolingProblem problem = small_problem(style + 100);
  const Grid2D& grid = problem.grid;
  CoolingNetwork net = [&]() {
    switch (style) {
      case 0: return make_straight_channels(grid);
      case 1: return make_comb(grid);
      case 2:
        return make_tree_network(grid, make_uniform_layout(grid, 8, 18));
      case 3:
        return make_tree_network(grid, make_uniform_layout(grid, 14, 26));
      default: {
        std::vector<bool> rows((grid.rows() + 1) / 2, true);
        for (std::size_t i = 0; i < rows.size(); i += 3) rows[i] = false;
        return make_modulated_straight(grid, rows);
      }
    }
  }();

  const double p_sys = 4000.0;
  const Thermal2RM coarse(problem, {net}, 3);
  const Thermal4RM fine(problem, {net});
  const ThermalField f2 = coarse.simulate(p_sys);
  const ThermalField f4 = fine.simulate(p_sys);

  EXPECT_NEAR(f2.t_max, f4.t_max, 0.05 * (f4.t_max - 300.0) + 0.3)
      << "style " << style;
  EXPECT_NEAR(f2.delta_t, f4.delta_t, 0.10 * f4.delta_t + 0.4)
      << "style " << style;
  EXPECT_NEAR(coarse.system_flow(1.0), fine.system_flow(1.0),
              fine.system_flow(1.0) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Styles, ModelAgreement, ::testing::Range(0, 5));

// Full-evaluation invariance under world rotation: rotating power maps,
// network and restricted region together leaves the Problem-1 score
// unchanged.
TEST(CrossCheck, EvaluationInvariantUnderWorldRotation) {
  const CoolingProblem problem = small_problem();
  const DesignConstraints limits{12.0, 400.0, 0.0};
  const CoolingNetwork net =
      make_tree_network(problem.grid, make_uniform_layout(problem.grid, 8, 18));

  // m = 1 so the 2RM block grid is exactly D4-equivariant (for m > 1 the
  // ragged edge blocks of a 31-cell grid move under rotation — a
  // discretization artifact of a few tenths of a kelvin).
  const SimConfig sim{ThermalModelKind::k2RM, 1};
  SystemEvaluator eval(problem, net, sim);
  const EvalResult base = evaluate_p1(eval, limits);
  ASSERT_TRUE(base.feasible);

  const D4Transform t(3);
  CoolingProblem rotated = problem;
  rotated.source_power.clear();
  for (const PowerMap& map : problem.source_power) {
    rotated.source_power.push_back(map.transformed(t));
  }
  SystemEvaluator eval_rot(rotated, net.transformed(t), sim);
  const EvalResult rot = evaluate_p2_at(eval_rot, limits, base.p_sys);
  ASSERT_TRUE(rot.feasible);
  EXPECT_NEAR(rot.at_p.delta_t, base.at_p.delta_t, 0.05);
  EXPECT_NEAR(rot.at_p.t_max, base.at_p.t_max, 0.05);
  EXPECT_NEAR(rot.w_pump, base.w_pump, base.w_pump * 1e-6);
}

// Pumping-power identity: W = P²/R = P·Q for every model and network.
TEST(CrossCheck, PumpingPowerIdentity) {
  const CoolingProblem problem = small_problem();
  const CoolingNetwork net = make_comb(problem.grid);
  const Thermal2RM sim(problem, {net}, 3);
  for (double p : {500.0, 3000.0, 20000.0}) {
    EXPECT_NEAR(sim.pumping_power(p), p * sim.system_flow(p),
                sim.pumping_power(p) * 1e-12);
  }
}

}  // namespace
}  // namespace lcn
