// Coverage for small public API surfaces: side utilities, cell rects,
// stack accessors, node indexing, and error paths not covered elsewhere.
#include <gtest/gtest.h>

#include "flow/flow_solver.hpp"
#include "network/generators.hpp"
#include "thermal/model_4rm.hpp"

namespace lcn {
namespace {

TEST(SideUtils, NamesAndOpposites) {
  EXPECT_STREQ(side_name(Side::kWest), "W");
  EXPECT_STREQ(side_name(Side::kEast), "E");
  EXPECT_STREQ(side_name(Side::kNorth), "N");
  EXPECT_STREQ(side_name(Side::kSouth), "S");
  for (Side s : kAllSides) {
    EXPECT_EQ(opposite(opposite(s)), s);
    EXPECT_NE(opposite(s), s);
  }
}

TEST(CellRect, EmptyAndContains) {
  const CellRect empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.rows(), 0);
  const CellRect rect{2, 3, 5, 7};
  EXPECT_FALSE(rect.empty());
  EXPECT_EQ(rect.rows(), 4);
  EXPECT_EQ(rect.cols(), 5);
  EXPECT_TRUE(rect.contains(2, 3));
  EXPECT_TRUE(rect.contains(5, 7));
  EXPECT_FALSE(rect.contains(1, 3));
  EXPECT_FALSE(rect.contains(2, 8));
}

TEST(CellRect, D4TransformNormalizesCorners) {
  const Grid2D grid(10, 10, 1e-4);
  const CellRect rect{2, 3, 4, 6};
  for (int code = 0; code < D4Transform::kCount; ++code) {
    const D4Transform t(code);
    const CellRect image = t.apply(grid, rect);
    EXPECT_FALSE(image.empty()) << "code " << code;
    EXPECT_EQ(image.rows() * image.cols(), rect.rows() * rect.cols())
        << "code " << code;
    const CellRect back = t.inverse().apply(t.transform_grid(grid), image);
    EXPECT_EQ(back.row0, rect.row0);
    EXPECT_EQ(back.col1, rect.col1);
  }
}

TEST(Stack, TotalThicknessAndAccessors) {
  const Stack stack = make_interlayer_stack(2, 300e-6);
  EXPECT_NEAR(stack.total_thickness(), 2 * (100e-6 + 200e-6) + 300e-6,
              1e-12);
  EXPECT_EQ(stack.layer(2).kind, LayerKind::kChannel);
  EXPECT_EQ(stack.layer(2).channel_index, 0);
  EXPECT_EQ(stack.layer(0).source_index, 0);
  EXPECT_EQ(stack.layer(3).source_index, 1);
}

TEST(Thermal4RM, NodeIndexingIsLayerMajor) {
  CoolingProblem problem;
  problem.grid = Grid2D(5, 5, 1e-4);
  problem.stack = make_interlayer_stack(2, 2e-4);
  problem.source_power.emplace_back(problem.grid, 0.5);
  problem.source_power.emplace_back(problem.grid, 0.5);
  CoolingNetwork net(problem.grid);
  for (int c = 0; c < 5; ++c) net.set_liquid(0, c);
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  net.add_port({0, 4, Side::kEast, PortKind::kOutlet});
  const Thermal4RM sim(problem, {net});
  EXPECT_EQ(sim.node_count(), 5u * 25u);
  EXPECT_EQ(sim.node(0, 0, 0), 0u);
  EXPECT_EQ(sim.node(1, 0, 0), 25u);
  EXPECT_EQ(sim.node(2, 4, 4), 2u * 25u + 24u);
  EXPECT_THROW(sim.node(5, 0, 0), ContractError);
}

TEST(Thermal4RM, RejectsMismatchedInputs) {
  CoolingProblem problem;
  problem.grid = Grid2D(5, 5, 1e-4);
  problem.stack = make_interlayer_stack(2, 2e-4);
  problem.source_power.emplace_back(problem.grid, 0.5);
  problem.source_power.emplace_back(problem.grid, 0.5);
  // Wrong network count.
  EXPECT_THROW(Thermal4RM(problem, {}), ContractError);
  // Wrong network grid.
  CoolingNetwork wrong(Grid2D(7, 7, 1e-4));
  for (int c = 0; c < 7; ++c) wrong.set_liquid(0, c);
  wrong.add_port({0, 0, Side::kWest, PortKind::kInlet});
  wrong.add_port({0, 6, Side::kEast, PortKind::kOutlet});
  EXPECT_THROW(Thermal4RM(problem, {wrong}), ContractError);
}

TEST(FlowSolution, FlowTowardContracts) {
  const Grid2D grid(3, 5, 1e-4);
  CoolingNetwork net(grid, false);
  for (int c = 0; c < 5; ++c) net.set_liquid(0, c);
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  net.add_port({0, 4, Side::kEast, PortKind::kOutlet});
  const ChannelGeometry channel{1e-4, 2e-4};
  const CoolantProperties water;
  const FlowSolution sol = FlowSolver(net, channel, water).solve(1.0);
  // West flow of cell 1 is minus the east flow of cell 0.
  EXPECT_NEAR(sol.flow_toward(grid, 0, 1, Side::kWest),
              -sol.flow_toward(grid, 0, 0, Side::kEast), 1e-18);
  // Boundary and solid-neighbor queries return zero flow.
  EXPECT_DOUBLE_EQ(sol.flow_toward(grid, 0, 0, Side::kWest), 0.0);
  EXPECT_DOUBLE_EQ(sol.flow_toward(grid, 0, 2, Side::kSouth), 0.0);
  // Querying a solid cell is a contract violation.
  EXPECT_THROW(sol.flow_toward(grid, 1, 1, Side::kEast), ContractError);
}

TEST(CoolingProblem, ValidateCatchesMismatches) {
  CoolingProblem problem;
  problem.grid = Grid2D(5, 5, 1e-4);
  problem.stack = make_interlayer_stack(2, 2e-4);
  problem.source_power.emplace_back(problem.grid, 1.0);  // only one map
  EXPECT_THROW(problem.validate(), ContractError);
  problem.source_power.emplace_back(Grid2D(7, 7, 1e-4), 1.0);  // wrong grid
  EXPECT_THROW(problem.validate(), ContractError);
  problem.source_power.pop_back();
  problem.source_power.emplace_back(problem.grid, 1.0);
  EXPECT_NO_THROW(problem.validate());
  EXPECT_THROW(problem.channel_geometry(0), ContractError);  // not a channel
  EXPECT_NEAR(problem.channel_geometry(2).height, 2e-4, 1e-15);
}

}  // namespace
}  // namespace lcn
