// Tests for the IC(0) preconditioner on SPD systems.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/ic0.hpp"
#include "sparse/solvers.hpp"

namespace lcn::sparse {
namespace {

CsrMatrix laplacian_1d(std::size_t n) {
  TripletList t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0 + (i == 0 || i + 1 == n ? 1.0 : 0.0));
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0);
      t.add(i + 1, i, -1.0);
    }
  }
  return t.to_csr();
}

TEST(Ic0, ExactForTridiagonalSpd) {
  // IC(0) on a tridiagonal SPD matrix is the exact Cholesky factorization,
  // so one application solves the system.
  const CsrMatrix a = laplacian_1d(12);
  const Ic0Preconditioner m(a);
  Vector b(12);
  Rng rng(3);
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);
  Vector z;
  m.apply(b, z);
  const Vector az = a.multiply(z);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(az[i], b[i], 1e-10);
}

TEST(Ic0, AcceleratesCgOverJacobi) {
  // 2D 5-point Laplacian with a grounded diagonal.
  const int n = 40;
  TripletList t(static_cast<std::size_t>(n) * n,
                static_cast<std::size_t>(n) * n);
  auto id = [n](int r, int c) {
    return static_cast<std::size_t>(r) * n + static_cast<std::size_t>(c);
  };
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      t.add(id(r, c), id(r, c), 4.01);
      if (r + 1 < n) {
        t.add(id(r, c), id(r + 1, c), -1.0);
        t.add(id(r + 1, c), id(r, c), -1.0);
      }
      if (c + 1 < n) {
        t.add(id(r, c), id(r, c + 1), -1.0);
        t.add(id(r, c + 1), id(r, c), -1.0);
      }
    }
  }
  const CsrMatrix a = t.to_csr();
  Vector b(a.rows(), 1.0);

  Vector x1;
  const JacobiPreconditioner jacobi(a);
  const SolveReport r1 = cg_solve(a, b, x1, jacobi);
  Vector x2;
  const Ic0Preconditioner ic0(a);
  const SolveReport r2 = cg_solve(a, b, x2, ic0);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-6 * (1.0 + std::abs(x1[i])));
  }
}

TEST(Ic0, ThrowsOnIndefiniteMatrix) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 3.0);
  t.add(1, 0, 3.0);
  t.add(1, 1, 1.0);  // eigenvalues 4, -2
  EXPECT_THROW(Ic0Preconditioner m(t.to_csr()), RuntimeError);
}

TEST(Ic0, ThrowsOnMissingDiagonal) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 0, 0.5);
  EXPECT_THROW(Ic0Preconditioner m(t.to_csr()), ContractError);
}

}  // namespace
}  // namespace lcn::sparse
