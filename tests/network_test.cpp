// Unit tests for cooling-network representation, generators and DRC (S3).
#include <gtest/gtest.h>

#include "network/cooling_network.hpp"
#include "network/design_rules.hpp"
#include "network/generators.hpp"

namespace lcn {
namespace {

Grid2D bench_grid(int n = 21) { return Grid2D(n, n, 100e-6); }

TEST(CoolingNetwork, TsvPatternReservedOnOddOdd) {
  const CoolingNetwork net(bench_grid(5));
  EXPECT_EQ(net.kind(1, 1), CellKind::kTsv);
  EXPECT_EQ(net.kind(1, 3), CellKind::kTsv);
  EXPECT_EQ(net.kind(3, 1), CellKind::kTsv);
  EXPECT_EQ(net.kind(0, 0), CellKind::kSolid);
  EXPECT_EQ(net.kind(1, 2), CellKind::kSolid);
}

TEST(CoolingNetwork, CarvingTsvCellThrows) {
  CoolingNetwork net(bench_grid(5));
  EXPECT_THROW(net.set_liquid(1, 1), ContractError);
  net.set_liquid(0, 0);
  EXPECT_TRUE(net.is_liquid(0, 0));
  net.set_solid(0, 0);
  EXPECT_FALSE(net.is_liquid(0, 0));
}

TEST(CoolingNetwork, PortValidation) {
  CoolingNetwork net(bench_grid(5));
  net.set_liquid(0, 0);
  EXPECT_THROW(net.add_port({0, 0, Side::kEast, PortKind::kInlet}),
               ContractError);  // not on east edge
  EXPECT_THROW(net.add_port({2, 2, Side::kWest, PortKind::kInlet}),
               ContractError);  // interior cell
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  EXPECT_THROW(net.add_port({0, 0, Side::kWest, PortKind::kOutlet}),
               ContractError);  // duplicate surface
  net.add_port({0, 0, Side::kNorth, PortKind::kOutlet});  // other surface ok
}

TEST(Generators, StraightChannelsPassDrc) {
  const CoolingNetwork net = make_straight_channels(bench_grid());
  EXPECT_TRUE(check_design_rules(net).ok());
  // 11 channel rows of 21 cells on a 21x21 grid.
  EXPECT_EQ(net.liquid_count(), 11u * 21u);
  EXPECT_EQ(net.ports().size(), 22u);
}

TEST(Generators, AlternatingStraightViolatesManifoldRule) {
  const CoolingNetwork net = make_alternating_straight(bench_grid());
  const DrcResult result = check_design_rules(net);
  EXPECT_FALSE(result.ok());
  bool manifold_violation = false;
  for (const auto& v : result.violations) {
    if (v.find("manifold") != std::string::npos) manifold_violation = true;
  }
  EXPECT_TRUE(manifold_violation);
}

TEST(Generators, SerpentinePassesDrcAndIsOneComponent) {
  for (int n : {5, 7, 21, 31}) {
    const CoolingNetwork net = make_serpentine(bench_grid(n));
    EXPECT_TRUE(check_design_rules(net).ok()) << "n=" << n;
    EXPECT_EQ(net.ports().size(), 2u) << "n=" << n;
  }
}

TEST(Generators, CombPassesDrc) {
  const CoolingNetwork net = make_comb(bench_grid());
  EXPECT_TRUE(check_design_rules(net).ok());
}

TEST(Generators, FitBranchTypesTilesExactly) {
  for (int rows = 2; rows <= 60; ++rows) {
    const auto types = fit_branch_types(rows);
    int sum = 0;
    for (BranchType t : types) sum += branch_channel_rows(t);
    EXPECT_EQ(sum, rows) << "rows=" << rows;
  }
}

TEST(Generators, UniformTreeLayoutPassesDrc) {
  const Grid2D grid = bench_grid();
  const TreeLayout layout = make_uniform_layout(grid, 6, 12);
  const CoolingNetwork net = make_tree_network(grid, layout);
  EXPECT_TRUE(check_design_rules(net).ok());
  // Each tree has exactly one west inlet.
  int inlets = 0;
  for (const Port& p : net.ports()) {
    if (p.kind == PortKind::kInlet) {
      ++inlets;
      EXPECT_EQ(p.side, Side::kWest);
    } else {
      EXPECT_EQ(p.side, Side::kEast);
    }
  }
  EXPECT_EQ(inlets, static_cast<int>(layout.trees.size()));
}

TEST(Generators, TreeLayoutOnPaperSizedGrid) {
  const Grid2D grid(101, 101, 100e-6);
  const TreeLayout layout = make_uniform_layout(grid, 30, 64);
  // 51 channel rows => 12 quad trees + 1 triple.
  EXPECT_EQ(layout.trees.size(), 13u);
  const CoolingNetwork net = make_tree_network(grid, layout);
  EXPECT_TRUE(check_design_rules(net).ok());
}

TEST(Generators, RandomLayoutsAlwaysLegal) {
  const Grid2D grid = bench_grid(31);
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const TreeLayout layout = make_random_layout(grid, rng);
    const CoolingNetwork net = make_tree_network(grid, layout);
    EXPECT_TRUE(check_design_rules(net).ok()) << "trial " << trial;
  }
}

TEST(Generators, LegalizeTreeSpecClampsAndOrders) {
  const Grid2D grid = bench_grid(31);
  TreeSpec spec{BranchType::kQuad, 0, 999, -4};
  legalize_tree_spec(grid, spec);
  EXPECT_EQ(spec.b1 % 2, 0);
  EXPECT_EQ(spec.b2 % 2, 0);
  EXPECT_GE(spec.b1, min_branch_col(grid));
  EXPECT_LT(spec.b1, spec.b2);
  EXPECT_LE(spec.b2, max_branch_col(grid));
}

TEST(ForbiddenRegion, StraightChannelsDetourAroundIt) {
  const Grid2D grid = bench_grid(31);
  CoolingNetwork net = make_straight_channels(grid);
  const CellRect rect{12, 14, 18, 20};
  apply_forbidden_region(net, rect);
  DesignRules rules;
  rules.forbidden = rect;
  EXPECT_TRUE(check_design_rules(net, rules).ok());
  // No liquid inside the region.
  for (int r = rect.row0; r <= rect.row1; ++r) {
    for (int c = rect.col0; c <= rect.col1; ++c) {
      EXPECT_FALSE(net.is_liquid(r, c));
    }
  }
}

TEST(ForbiddenRegion, TreeNetworkDetourPassesDrc) {
  const Grid2D grid = bench_grid(31);
  CoolingNetwork net = make_tree_network(grid, make_uniform_layout(grid, 8, 18));
  const CellRect rect{10, 10, 16, 16};
  apply_forbidden_region(net, rect);
  DesignRules rules;
  rules.forbidden = rect;
  EXPECT_TRUE(check_design_rules(net, rules).ok());
}

TEST(ForbiddenRegion, RejectsRegionTouchingBoundary) {
  const Grid2D grid = bench_grid(31);
  CoolingNetwork net = make_straight_channels(grid);
  EXPECT_THROW(apply_forbidden_region(net, CellRect{0, 5, 4, 9}),
               ContractError);
}

TEST(Drc, DetectsStagnantComponent) {
  const Grid2D grid = bench_grid(9);
  CoolingNetwork net(grid);
  // A channel with ports ...
  for (int c = 0; c < 9; ++c) net.set_liquid(0, c);
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  net.add_port({0, 8, Side::kEast, PortKind::kOutlet});
  // ... plus an isolated liquid pocket.
  net.set_liquid(4, 4);
  const DrcResult result = check_design_rules(net);
  EXPECT_FALSE(result.ok());
  EXPECT_THROW(require_clean(net), ContractError);
}

TEST(Drc, DetectsMissingInlet) {
  const Grid2D grid = bench_grid(9);
  CoolingNetwork net(grid);
  for (int c = 0; c < 9; ++c) net.set_liquid(0, c);
  net.add_port({0, 8, Side::kEast, PortKind::kOutlet});
  const DrcResult result = check_design_rules(net);
  EXPECT_FALSE(result.ok());
}

TEST(Serialization, TextRoundTrip) {
  const Grid2D grid = bench_grid(21);
  const CoolingNetwork net =
      make_tree_network(grid, make_uniform_layout(grid, 6, 12));
  const CoolingNetwork back = CoolingNetwork::from_text(net.to_text());
  EXPECT_EQ(net, back);
}

TEST(Transform, NetworkD4ImagesStayLegal) {
  const Grid2D grid = bench_grid(21);
  const CoolingNetwork net =
      make_tree_network(grid, make_uniform_layout(grid, 6, 12));
  for (int code = 0; code < D4Transform::kCount; ++code) {
    const CoolingNetwork image = net.transformed(D4Transform(code));
    EXPECT_EQ(image.liquid_count(), net.liquid_count()) << "code " << code;
    // TSV keep-out is D4-invariant on an odd-sized grid, so images stay
    // fully legal.
    EXPECT_TRUE(check_design_rules(image).ok()) << "code " << code;
  }
}

class AllGenerators : public ::testing::TestWithParam<int> {};

TEST_P(AllGenerators, EveryStyleLegalAcrossGridSizes) {
  const int n = GetParam();
  const Grid2D grid = bench_grid(n);
  EXPECT_TRUE(check_design_rules(make_straight_channels(grid)).ok());
  EXPECT_TRUE(check_design_rules(make_serpentine(grid)).ok());
  EXPECT_TRUE(check_design_rules(make_comb(grid)).ok());
  if (n >= 9) {
    const TreeLayout layout = make_uniform_layout(grid, 4, 8);
    EXPECT_TRUE(check_design_rules(make_tree_network(grid, layout)).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(GridSizes, AllGenerators,
                         ::testing::Values(5, 9, 13, 21, 31, 51, 101));

}  // namespace
}  // namespace lcn
