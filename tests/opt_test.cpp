// Tests for network evaluation (Algorithm 2 / §5) and the SA topology
// optimizer (S10, S12) on reduced-size problems.
#include <gtest/gtest.h>

#include <cmath>

#include "network/design_rules.hpp"
#include "network/generators.hpp"
#include "opt/evaluator.hpp"
#include "opt/sa.hpp"

namespace lcn {
namespace {

BenchmarkCase small_case(double watts = 8.0, double delta_t_star = 12.0,
                         double t_max_star = 400.0) {
  BenchmarkCase bench;
  bench.id = 99;
  bench.name = "unit-small";
  bench.problem.grid = Grid2D(31, 31, 100e-6);
  bench.problem.stack = make_interlayer_stack(2, 200e-6);
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 0.55 * watts, 11));
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 0.45 * watts, 12));
  bench.constraints.delta_t_max = delta_t_star;
  bench.constraints.t_max = t_max_star;
  return bench;
}

SimConfig fast_sim() { return SimConfig{ThermalModelKind::k2RM, 3}; }

TEST(SystemEvaluator, ProbeCachesByPressure) {
  const BenchmarkCase bench = small_case();
  SystemEvaluator eval(bench.problem,
                       make_straight_channels(bench.problem.grid), fast_sim());
  const ThermalProbe a = eval.probe(2000.0);
  const ThermalProbe b = eval.probe(2000.0);
  EXPECT_EQ(eval.simulations(), 1u);
  EXPECT_DOUBLE_EQ(a.delta_t, b.delta_t);
  eval.probe(3000.0);
  EXPECT_EQ(eval.simulations(), 2u);
}

TEST(SystemEvaluator, PumpingPowerMatchesResistance) {
  const BenchmarkCase bench = small_case();
  SystemEvaluator eval(bench.problem,
                       make_straight_channels(bench.problem.grid), fast_sim());
  const double r = eval.system_resistance();
  EXPECT_NEAR(eval.pumping_power(4000.0), 4000.0 * 4000.0 / r,
              eval.pumping_power(4000.0) * 1e-9);
}

TEST(EvaluateP1, FeasibleSolutionSatisfiesConstraints) {
  const BenchmarkCase bench = small_case();
  SystemEvaluator eval(bench.problem,
                       make_straight_channels(bench.problem.grid), fast_sim());
  const EvalResult result = evaluate_p1(eval, bench.constraints);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.at_p.delta_t, bench.constraints.delta_t_max * 1.001);
  EXPECT_LE(result.at_p.t_max, bench.constraints.t_max * 1.001);
  EXPECT_NEAR(result.score, result.w_pump, result.w_pump * 1e-12);
  EXPECT_GT(result.p_sys, 0.0);
}

TEST(EvaluateP1, ImpossibleGradientIsInfeasible) {
  const BenchmarkCase bench = small_case(8.0, /*delta_t_star=*/0.01);
  SystemEvaluator eval(bench.problem,
                       make_straight_channels(bench.problem.grid), fast_sim());
  const EvalResult result = evaluate_p1(eval, bench.constraints);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(std::isinf(result.score));
}

TEST(EvaluateP1, TightPeakTemperatureRaisesPressure) {
  const BenchmarkCase loose = small_case(8.0, 12.0, 400.0);
  const BenchmarkCase tight = small_case(8.0, 12.0, 316.0);
  SystemEvaluator eval_loose(loose.problem,
                             make_straight_channels(loose.problem.grid),
                             fast_sim());
  SystemEvaluator eval_tight(tight.problem,
                             make_straight_channels(tight.problem.grid),
                             fast_sim());
  const EvalResult a = evaluate_p1(eval_loose, loose.constraints);
  const EvalResult b = evaluate_p1(eval_tight, tight.constraints);
  ASSERT_TRUE(a.feasible);
  if (b.feasible) {
    EXPECT_GE(b.p_sys, a.p_sys);
    EXPECT_LE(b.at_p.t_max, 316.0 * 1.001);
  }
}

TEST(EvaluateP2, RespectsPumpBudget) {
  BenchmarkCase bench = small_case();
  bench.constraints.w_pump_max = 1e-3 * bench.problem.total_power();
  SystemEvaluator eval(bench.problem,
                       make_straight_channels(bench.problem.grid), fast_sim());
  const EvalResult result = evaluate_p2(eval, bench.constraints);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.w_pump, bench.constraints.w_pump_max * 1.001);
  EXPECT_NEAR(result.score, result.at_p.delta_t, 1e-12);
}

TEST(EvaluateP2, LargerBudgetNeverWorse) {
  BenchmarkCase bench = small_case();
  SystemEvaluator eval(bench.problem,
                       make_straight_channels(bench.problem.grid), fast_sim());
  bench.constraints.w_pump_max = 0.5e-3 * bench.problem.total_power();
  const EvalResult small_budget = evaluate_p2(eval, bench.constraints);
  bench.constraints.w_pump_max = 8e-3 * bench.problem.total_power();
  const EvalResult large_budget = evaluate_p2(eval, bench.constraints);
  ASSERT_TRUE(small_budget.feasible);
  ASSERT_TRUE(large_budget.feasible);
  EXPECT_LE(large_budget.score, small_budget.score * 1.02);
}

TEST(EvaluateP2At, OverBudgetPressureIsInfeasible) {
  BenchmarkCase bench = small_case();
  bench.constraints.w_pump_max = 1e-6;
  SystemEvaluator eval(bench.problem,
                       make_straight_channels(bench.problem.grid), fast_sim());
  const EvalResult result =
      evaluate_p2_at(eval, bench.constraints, 1e6);
  EXPECT_FALSE(result.feasible);
}

TEST(Baseline, PicksBestDirectionAndSatisfiesConstraints) {
  const BenchmarkCase bench = small_case();
  const BaselineOutcome base = best_straight_baseline(
      bench, DesignObjective::kPumpingPower, fast_sim());
  ASSERT_TRUE(base.feasible);
  EXPECT_LE(base.eval.at_p.delta_t, bench.constraints.delta_t_max * 1.001);
  EXPECT_TRUE(check_design_rules(base.network).ok());
}

TEST(TreeOptimizer, RealizeAppliesDirectionAndForbiddenRegion) {
  BenchmarkCase bench = small_case();
  bench.forbidden = CellRect{12, 12, 18, 18};
  TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower, 3);
  const TreeLayout layout = make_uniform_layout(bench.problem.grid, 8, 16);
  for (int dir = 0; dir < D4Transform::kCount; ++dir) {
    const CoolingNetwork net = opt.realize(layout, dir);
    DesignRules rules;
    rules.forbidden = bench.forbidden;
    EXPECT_TRUE(check_design_rules(net, rules).ok()) << "dir " << dir;
  }
}

TEST(TreeOptimizer, EvaluateNetworkRejectsDirtyDesigns) {
  const BenchmarkCase bench = small_case();
  TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower, 3);
  // A network violating the TSV keep-out must score +inf.
  CoolingNetwork dirty(bench.problem.grid, /*alternating_tsvs=*/false);
  for (int c = 0; c < 31; ++c) dirty.set_liquid(1, c);  // odd row: TSV row
  dirty.add_port({1, 0, Side::kWest, PortKind::kInlet});
  dirty.add_port({1, 30, Side::kEast, PortKind::kOutlet});
  const EvalResult result = opt.evaluate_network(dirty, fast_sim());
  EXPECT_FALSE(result.feasible);
}

TEST(TreeOptimizer, SaImprovesOrMatchesInitialLayout) {
  const BenchmarkCase bench = small_case();
  TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower, 5);

  // Score of the uniform initial layout (direction 0 for comparability).
  const TreeLayout init = make_uniform_layout(bench.problem.grid, 10, 20);
  const EvalResult init_eval =
      opt.evaluate_network(opt.realize(init, 0), fast_sim());

  std::vector<SaStage> stages;
  stages.push_back({"test", 6, 1, 3, 4, fast_sim(), false, 1});
  const DesignOutcome outcome = opt.run(stages);
  ASSERT_TRUE(outcome.feasible);
  // The sign-off model differs (4RM), so compare loosely: the optimized
  // design must not be drastically worse than the uniform start.
  EXPECT_LT(outcome.eval.score, init_eval.score * 1.5);
  EXPECT_TRUE(check_design_rules(outcome.network).ok());
  EXPECT_GT(outcome.evaluations, 8u);
}

TEST(TreeOptimizer, ThermalGradientObjectiveProducesFeasibleDesign) {
  BenchmarkCase bench = small_case();
  bench.constraints.w_pump_max = 2e-3 * bench.problem.total_power();
  TreeTopologyOptimizer opt(bench, DesignObjective::kThermalGradient, 5);
  std::vector<SaStage> stages;
  stages.push_back({"test", 4, 1, 2, 4, fast_sim(), false, 2});
  const DesignOutcome outcome = opt.run(stages);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_LE(outcome.eval.w_pump, bench.constraints.w_pump_max * 1.001);
}

TEST(Schedules, DefaultStagesAreWellFormed) {
  for (double scale : {0.2, 1.0, 2.0}) {
    for (const auto& stages :
         {default_p1_stages(scale), default_p2_stages(scale)}) {
      ASSERT_FALSE(stages.empty());
      for (const SaStage& s : stages) {
        EXPECT_GE(s.iterations, 1);
        EXPECT_GE(s.rounds, 1);
        EXPECT_GE(s.neighbors, 1);
        EXPECT_GT(s.step, 0);
        EXPECT_EQ(s.step % 2, 0);
        EXPECT_GE(s.group_size, 1);
      }
      // The last stage signs off with the accurate model.
      EXPECT_EQ(stages.back().sim.model, ThermalModelKind::k4RM);
    }
  }
}

}  // namespace
}  // namespace lcn
