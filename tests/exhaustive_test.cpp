// Tests for the exhaustive uniform-layout search, including the SA
// cross-validation it exists for.
#include <gtest/gtest.h>

#include "opt/exhaustive.hpp"

namespace lcn {
namespace {

BenchmarkCase small_case() {
  BenchmarkCase bench;
  bench.id = 98;
  bench.name = "unit-exhaustive";
  bench.problem.grid = Grid2D(21, 21, 100e-6);
  bench.problem.stack = make_interlayer_stack(2, 200e-6);
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 3.0, 31));
  bench.problem.source_power.push_back(
      synthesize_power_map(bench.problem.grid, 2.0, 32));
  bench.constraints.delta_t_max = 12.0;
  bench.constraints.t_max = 400.0;
  return bench;
}

TEST(Exhaustive, FindsFeasibleOptimumOnSmallCase) {
  const BenchmarkCase bench = small_case();
  const SimConfig sim{ThermalModelKind::k2RM, 3};
  const ExhaustiveResult result = exhaustive_uniform_search(
      bench, DesignObjective::kPumpingPower, sim, /*stride=*/4);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.evaluations, 4u);
  EXPECT_LT(result.b1, result.b2);
  EXPECT_LE(result.eval.at_p.delta_t, bench.constraints.delta_t_max * 1.001);
}

TEST(Exhaustive, StrideValidation) {
  const BenchmarkCase bench = small_case();
  const SimConfig sim{ThermalModelKind::k2RM, 3};
  EXPECT_THROW(exhaustive_uniform_search(
                   bench, DesignObjective::kPumpingPower, sim, 3),
               ContractError);
}

TEST(Exhaustive, SaIsNotMuchWorseThanExhaustive) {
  // Cross-validation: SA (which also moves per-tree parameters) should reach
  // a score within a modest factor of the exhaustive *uniform* optimum.
  const BenchmarkCase bench = small_case();
  const SimConfig sim{ThermalModelKind::k2RM, 3};
  const ExhaustiveResult exact = exhaustive_uniform_search(
      bench, DesignObjective::kPumpingPower, sim, /*stride=*/2);
  ASSERT_TRUE(exact.feasible);

  TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower, 13);
  std::vector<SaStage> stages;
  stages.push_back({"x", 8, 1, 4, 4, sim, false, 1});
  const DesignOutcome sa = opt.run(stages);
  ASSERT_TRUE(sa.feasible);
  // Different sign-off model (4RM) => compare loosely.
  EXPECT_LT(sa.eval.score, exact.eval.score * 1.6);
}

}  // namespace
}  // namespace lcn
