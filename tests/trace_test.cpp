// Tests for the structured tracing subsystem (DESIGN.md §S19): the disabled
// path emits nothing at any pool width, enabled spans round-trip through the
// JSONL sink with correct begin/end pairing and per-thread monotonic
// timestamps, and ring overflow is accounted — never silently lost.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/instrument.hpp"
#include "common/manifest.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace lcn {
namespace {

std::string temp_trace_path(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / (std::string("lcn_trace_test_") + tag + ".jsonl")).string();
}

/// Minimal JSONL field extraction for the trace's fixed emission format
/// (write_event in trace.cpp): no nested quoting outside "args".
std::string extract_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  return line.substr(start, end - start);
}

std::uint64_t extract_u64(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0;
  return std::stoull(line.substr(pos + needle.size()));
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    trace::stop();  // idempotent; never leak an active sink between tests
    set_global_pool_threads(0);
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove(path_, ec);
    }
  }
  std::string path_;
};

TEST_F(TraceTest, DisabledPathEmitsNothingAtAnyPoolWidth) {
  ASSERT_FALSE(trace::active());
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    set_global_pool_threads(threads);
    const instrument::Snapshot before = instrument::snapshot();
    {
      LCN_TRACE_SPAN("outer");
      LCN_TRACE_SPAN_FINE("outer_fine");
      global_pool().parallel_for(64, [](std::size_t) {
        LCN_TRACE_SPAN("worker");
        trace::emit_instant("tick", trace::kCoarse, "\"x\":1");
        trace::emit_counter("gauge", trace::kFine, 3.5);
      });
    }
    const instrument::Snapshot d =
        instrument::delta(before, instrument::snapshot());
    EXPECT_EQ(d.trace_events_emitted, 0u) << "threads=" << threads;
    EXPECT_EQ(d.trace_events_dropped, 0u) << "threads=" << threads;
  }
}

TEST_F(TraceTest, SpanNestingRoundTripsThroughJsonlSink) {
  path_ = temp_trace_path("roundtrip");
  set_global_pool_threads(4);

  trace::TraceConfig config;
  config.path = path_;
  config.level = trace::kFine;
  config.background_flush = false;  // deterministic: drain only at stop()
  const instrument::Snapshot before = instrument::snapshot();
  trace::start(config);
  ASSERT_TRUE(trace::active());
  {
    LCN_TRACE_SPAN("outer");
    {
      LCN_TRACE_SPAN_FINE("inner");
      trace::emit_instant("marker", trace::kCoarse, "\"k\":42");
    }
    global_pool().parallel_for(16, [](std::size_t) {
      LCN_TRACE_SPAN("worker");
      LCN_TRACE_SPAN_FINE("worker_inner");
    });
    trace::Span with_args("tail");
    with_args.set_args("\"n\":7");
  }
  trace::stop();
  ASSERT_FALSE(trace::active());
  const instrument::Snapshot d =
      instrument::delta(before, instrument::snapshot());
  EXPECT_EQ(d.trace_events_dropped, 0u);

  const std::vector<std::string> lines = read_lines(path_);
  ASSERT_GE(lines.size(), 2u);

  // Header: the manifest line stamps the trace with build provenance.
  EXPECT_EQ(extract_string(lines[0], "ph"), "M");
  EXPECT_EQ(extract_string(lines[0], "name"), "manifest");
  EXPECT_NE(lines[0].find("\"git_sha\""), std::string::npos);

  // Every event line must parse; B/E must pair up as a stack per tid and
  // timestamps must be monotone non-decreasing per tid (ring FIFO order).
  std::map<std::uint64_t, std::vector<std::string>> stacks;
  std::map<std::uint64_t, std::uint64_t> last_ts;
  std::size_t events = 0;
  bool saw_marker = false;
  bool saw_tail_args = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::string ph = extract_string(line, "ph");
    const std::string name = extract_string(line, "name");
    ASSERT_FALSE(ph.empty()) << line;
    ASSERT_FALSE(name.empty()) << line;
    const std::uint64_t tid = extract_u64(line, "tid");
    const std::uint64_t ts = extract_u64(line, "ts_ns");
    ++events;
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "non-monotonic ts on tid " << tid;
    }
    last_ts[tid] = ts;
    if (ph == "B") {
      stacks[tid].push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty()) << "E without B: " << line;
      EXPECT_EQ(stacks[tid].back(), name) << "mismatched nesting: " << line;
      stacks[tid].pop_back();
      if (name == "tail") {
        saw_tail_args = line.find("\"args\":{\"n\":7}") != std::string::npos;
      }
    } else if (ph == "i" && name == "marker") {
      saw_marker = line.find("\"k\":42") != std::string::npos;
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span(s) on tid " << tid;
  }
  EXPECT_TRUE(saw_marker);
  EXPECT_TRUE(saw_tail_args);
  // 3 main-thread spans (B+E) + marker + 16 worker span pairs * 2 levels.
  EXPECT_EQ(events, d.trace_events_emitted);
  EXPECT_EQ(events, 3u * 2u + 1u + 16u * 2u * 2u);
}

TEST_F(TraceTest, RingOverflowIsCountedNotLost) {
  path_ = temp_trace_path("overflow");
  trace::TraceConfig config;
  config.path = path_;
  config.level = trace::kCoarse;
  config.ring_capacity = 8;
  config.background_flush = false;  // nothing drains while we overflow
  const instrument::Snapshot before = instrument::snapshot();
  trace::start(config);
  for (int i = 0; i < 30; ++i) {
    trace::emit_instant("burst", trace::kCoarse);
  }
  const instrument::Snapshot d =
      instrument::delta(before, instrument::snapshot());
  EXPECT_EQ(d.trace_events_emitted, 8u);
  EXPECT_EQ(d.trace_events_dropped, 22u);
  trace::stop();

  // The sink holds the manifest plus exactly the events that fit the ring.
  const std::vector<std::string> lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 9u);
  EXPECT_EQ(extract_string(lines[0], "ph"), "M");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(extract_string(lines[i], "name"), "burst");
  }
}

TEST_F(TraceTest, FlushDrainsMidSessionAndRestartReusesThreads) {
  path_ = temp_trace_path("restart");
  trace::TraceConfig config;
  config.path = path_;
  config.background_flush = false;
  trace::start(config);
  trace::emit_instant("first", trace::kCoarse);
  trace::flush();
  EXPECT_EQ(read_lines(path_).size(), 2u);  // manifest + first
  trace::stop();

  // Restarting must re-register this thread's ring (fresh session), not
  // write through a stale pointer into freed memory.
  trace::start(config);
  trace::emit_instant("second", trace::kCoarse);
  trace::stop();
  const std::vector<std::string> lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 2u);  // "w" mode truncates: manifest + second
  EXPECT_EQ(extract_string(lines[1], "name"), "second");
}

TEST(Manifest, ProvidesBuildProvenance) {
  const RunManifest& m = run_manifest();
  EXPECT_FALSE(m.git_sha.empty());  // real SHA or the "unknown" backfill
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_GT(m.hardware_threads, 0);
  const std::string json = m.json();
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\""), std::string::npos);
  EXPECT_NE(json.find("\"lcn_threads\""), std::string::npos);
}

}  // namespace
}  // namespace lcn
