// Transient thermal analysis (paper §2.3: the steady models "can be easily
// extended to transient"). Backward-Euler stepping on the assembled RC
// system: (C/Δt + A)·T_{n+1} = b + (C/Δt)·T_n.
#pragma once

#include <vector>

#include "thermal/field.hpp"

namespace lcn {

struct TransientOptions {
  double dt = 1e-3;        ///< s
  int steps = 100;
  double rel_tolerance = 1e-9;
};

struct TransientSample {
  double time = 0.0;
  double t_max = 0.0;
  double delta_t = 0.0;
};

/// Integrate from `initial` (typically all T_in) and report the metric
/// trajectory; when `final_temps` is non-null the last temperature vector is
/// stored there. Unconditionally stable in Δt (backward Euler).
std::vector<TransientSample> simulate_transient(
    const AssembledThermal& system, std::vector<double> initial,
    const TransientOptions& options,
    std::vector<double>* final_temps = nullptr);

}  // namespace lcn
