// Transient thermal analysis (paper §2.3: the steady models "can be easily
// extended to transient"). Backward-Euler stepping on the assembled RC
// system: (C/Δt + A)·T_{n+1} = b + (C/Δt)·T_n.
//
// The stepper follows the S18/S20 solver idiom (DESIGN.md §S23): the
// (C/Δt + A) operator is captured once as a SparsityPlan, rebinding to a new
// assembly of the *same* plan (a pressure change, a boundary refill, a new
// Δt) is a pure numeric refill plus an in-place preconditioner
// refactorization, and the per-step RHS is built with the pooled vector-ops
// idiom so the step loop is bit-identical for any LCN_THREADS.
#pragma once

#include <optional>
#include <vector>

#include "thermal/field.hpp"

namespace lcn {

struct TransientOptions {
  double dt = 1e-3;        ///< s
  int steps = 100;
  double rel_tolerance = 1e-9;
  /// Solver selection (preconditioner / method / precision); unset reads
  /// SteadySolverConfig::from_env(), matching solve_steady.
  std::optional<SteadySolverConfig> solver;
};

struct TransientSample {
  double time = 0.0;
  double t_max = 0.0;
  double delta_t = 0.0;
};

/// Backward-Euler stepper holding the (C/Δt + A) operator and the solver
/// state across steps. The referenced AssembledThermal must outlive the
/// stepper (or the next rebind()); RHS-only refills of that system are
/// picked up automatically — step() reads `system.rhs` each call.
class TransientStepper {
 public:
  TransientStepper(const AssembledThermal& system, double dt,
                   const SteadySolverConfig& config);

  /// Point the stepper at a new assembly and/or time step. When the new
  /// matrix shares the previous one's index arrays (same assembly plan) the
  /// operator is refilled on the cached SparsityPlan and the preconditioner
  /// refactorizes in place; otherwise the symbolic analysis reruns.
  void rebind(const AssembledThermal& system, double dt);

  /// Advance one backward-Euler step in place: temps := T_{n+1}.
  /// Throws lcn::RuntimeError on solver non-convergence.
  void step(std::vector<double>& temps, double rel_tolerance);

  const AssembledThermal& system() const { return *system_; }
  double dt() const { return dt_; }
  std::size_t nodes() const { return n_; }
  /// True when the last rebind() reused the cached symbolic plan.
  bool last_rebind_refilled() const { return last_rebind_refilled_; }

 private:
  void bind(const AssembledThermal& system, double dt);

  const AssembledThermal* system_ = nullptr;
  double dt_ = 0.0;
  std::size_t n_ = 0;
  SteadySolverConfig config_;

  /// C/Δt hoisted once per rebind (the historical path re-derived it per
  /// element per step).
  sparse::Vector cap_over_dt_;
  /// Operator slot sources, in the exact emission order of the historical
  /// fresh triplet build: per row, A's stored entries then the diagonal
  /// capacitance slot. is_diag selects cap_over_dt_[index] over
  /// system.matrix.values()[index].
  struct Slot {
    std::size_t index;
    bool is_diag;
  };
  std::vector<Slot> slots_;
  sparse::SparsityPlan plan_;
  sparse::CsrMatrix lhs_;
  /// Structure key of the bound matrix: same shared col_idx array => same
  /// sparsity, refill instead of re-analyze.
  sparse::SharedIndexes bound_cols_;

  SteadyWorkspace workspace_;
  sparse::Vector rhs_;
  bool last_rebind_refilled_ = false;
};

/// Integrate from `initial` (typically all T_in) and report the metric
/// trajectory; when `final_temps` is non-null the last temperature vector is
/// stored there. Unconditionally stable in Δt (backward Euler).
std::vector<TransientSample> simulate_transient(
    const AssembledThermal& system, std::vector<double> initial,
    const TransientOptions& options,
    std::vector<double>* final_temps = nullptr);

}  // namespace lcn
