#include "thermal/validation.hpp"

#include "common/assert.hpp"

namespace lcn {

double rod_temperature(double x, double length, double area,
                       double conductivity, double total_power,
                       double t_end) {
  LCN_REQUIRE(length > 0.0 && area > 0.0 && conductivity > 0.0,
              "rod geometry must be positive");
  LCN_REQUIRE(x >= 0.0 && x <= length, "position outside the rod");
  // Heat generated uniformly: flux through section x is q(x) = P·x/L toward
  // the sink at x = L. Integrating dT/dx = -q/(kA) from L back to x:
  // T(x) = T_end + P/(kA) · (L² - x²) / (2L).
  return t_end +
         total_power * (length * length - x * x) /
             (2.0 * length * conductivity * area);
}

double coolant_outlet_temperature(double t_in, double heat,
                                  double volumetric_flow,
                                  const CoolantProperties& coolant) {
  LCN_REQUIRE(volumetric_flow > 0.0, "flow must be positive");
  return t_in + heat / (coolant.volumetric_heat * volumetric_flow);
}

double wall_temperature(double t_bulk, double heat, double film_coefficient,
                        double area) {
  LCN_REQUIRE(film_coefficient > 0.0 && area > 0.0,
              "film parameters must be positive");
  return t_bulk + heat / (film_coefficient * area);
}

}  // namespace lcn
