// Assembled thermal RC system and the resulting temperature field + metrics.
//
// Both the 4RM and 2RM simulators produce an AssembledThermal; the steady
// solver, the transient integrator and the metric extraction are shared.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/multigrid.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/solvers.hpp"

namespace lcn {

/// Linear steady-state system A·T = b plus per-node heat capacities (for
/// transient stepping) and the bookkeeping needed to compute metrics.
struct AssembledThermal {
  sparse::CsrMatrix matrix;
  sparse::Vector rhs;
  sparse::Vector capacitance;  ///< J/K per node

  /// Structured-grid coordinates per matrix row (layer, row, col), shared
  /// from the assembly plan. Enables geometric multigrid coarsening; absent
  /// (null) systems still solve — multigrid falls back to algebraic
  /// aggregation.
  std::shared_ptr<const sparse::MgGridHint> mg_hint;

  /// Per source layer: node ids in row-major map order.
  std::vector<std::vector<std::size_t>> source_nodes;
  int map_rows = 0;  ///< dimensions of each source-layer map
  int map_cols = 0;

  /// (node, volumetric flow) for every outlet opening — used for the energy
  /// balance diagnostics (advected heat = Σ C_v·Q·(T_node − T_in)).
  std::vector<std::pair<std::size_t, double>> outlet_terms;
  double inlet_flow_total = 0.0;
  double volumetric_heat = 0.0;   ///< coolant C_v
  double inlet_temperature = 0.0;
};

/// Temperature field with the paper's metrics: peak temperature T_max and
/// thermal gradient ΔT = max_i range(T over source layer i) (§3).
struct ThermalField {
  std::vector<double> temperatures;  ///< all nodes, K

  std::vector<std::vector<double>> source_maps;  ///< per source layer
  int map_rows = 0;
  int map_cols = 0;

  double t_max = 0.0;
  double delta_t = 0.0;
  std::vector<double> per_layer_delta;  ///< ΔT_i per source layer
};

/// Extract maps and metrics from a solved temperature vector.
ThermalField make_field(const AssembledThermal& system,
                        std::vector<double> temperatures);

/// Heat carried out by the coolant, W: Σ_outlets C_v·Q·(T − T_in).
/// With adiabatic boundaries this equals the injected power at steady state.
double advected_heat(const AssembledThermal& system,
                     const std::vector<double>& temperatures);

/// Persistent state for repeated solve_steady() calls on systems that share
/// a sparsity pattern (e.g. probe after probe on one model's assembly plan):
/// the ILU(0) preconditioner keeps its symbolic analysis and refactorizes
/// numerically, and the Krylov scratch vectors are reused instead of
/// reallocated. One workspace per thread — no internal synchronization.
struct SteadyWorkspace {
  std::optional<sparse::Ilu0Preconditioner> ilu;
  std::optional<sparse::MultigridPreconditioner> mg;
  sparse::SolverWorkspace krylov;
};

/// Solver selection for solve_steady (DESIGN.md §S20). The default value is
/// the seed configuration — ILU(0)-preconditioned fp64 cascade — and takes
/// exactly the pre-existing code path, bit for bit. from_env() reads the
/// LCN_SOLVER_* knobs so large-grid runs can switch the whole binary over
/// without a code change (README "Solver selection").
struct SteadySolverConfig {
  enum class Precon {
    kIlu0,       ///< zero fill-in incomplete LU (seed default)
    kMultigrid,  ///< geometric/algebraic multigrid V-cycle
  };
  Precon precon = Precon::kIlu0;
  sparse::GeneralMethod method = sparse::GeneralMethod::kAuto;
  sparse::Precision precision = sparse::Precision::kDouble;

  /// LCN_SOLVER_PRECON=ilu0|mg, LCN_SOLVER_METHOD=auto|bicgstab|gmres,
  /// LCN_SOLVER_PRECISION=double|mixed. Unset/unknown values keep defaults.
  static SteadySolverConfig from_env();
};

/// Solve the steady system (preconditioned BiCGSTAB, GMRES fallback) and
/// build the field. Throws lcn::RuntimeError on non-convergence.
/// `initial_guess` (optional, right size) warm-starts the Krylov solve —
/// the pressure searches probe many nearby P_sys values, and the previous
/// temperature field is an excellent starting point. `workspace` (optional)
/// carries preconditioner + Krylov scratch across calls; the solve itself is
/// bit-identical with or without it. `config` (optional) selects the
/// preconditioner/method/precision; null reads SteadySolverConfig::from_env().
ThermalField solve_steady(const AssembledThermal& system,
                          double rel_tolerance = 1e-9,
                          const std::vector<double>* initial_guess = nullptr,
                          SteadyWorkspace* workspace = nullptr,
                          const SteadySolverConfig* config = nullptr);

}  // namespace lcn
