// The physical problem a cooling system is designed against: chip geometry,
// stack, per-source-layer power maps, coolant, and boundary conditions.
// This is the fixed input; the cooling network(s) and P_sys are the design
// variables layered on top by the optimizer.
#pragma once

#include <vector>

#include "flow/flow_solver.hpp"
#include "geom/grid.hpp"
#include "geom/power_map.hpp"
#include "geom/stack.hpp"

namespace lcn {

struct CoolingProblem {
  Grid2D grid;
  Stack stack;
  /// One power map per source layer, indexed by Layer::source_index.
  std::vector<PowerMap> source_power;
  CoolantProperties coolant;
  double inlet_temperature = 300.0;  ///< T_in, K

  /// Optional convective sink on the top surface, W/(m²·K); 0 = adiabatic
  /// package (all heat leaves through the coolant, the paper's setting).
  double ambient_conductance = 0.0;
  double ambient_temperature = 300.0;

  FlowOptions flow_options;

  /// Channel geometry of a given channel layer: width equals the basic-cell
  /// pitch (w_c = 100 µm in the benchmarks), height equals the layer
  /// thickness h_c.
  ChannelGeometry channel_geometry(int layer_index) const {
    const Layer& layer = stack.layer(layer_index);
    LCN_REQUIRE(layer.kind == LayerKind::kChannel,
                "channel_geometry: not a channel layer");
    return ChannelGeometry{grid.pitch(), layer.thickness};
  }

  double total_power() const {
    double sum = 0.0;
    for (const PowerMap& map : source_power) sum += map.total();
    return sum;
  }

  void validate() const {
    stack.validate();
    LCN_REQUIRE(static_cast<int>(source_power.size()) == stack.source_count(),
                "one power map per source layer required");
    for (const PowerMap& map : source_power) {
      LCN_REQUIRE(map.grid() == grid, "power map grid mismatch");
    }
    LCN_REQUIRE(inlet_temperature > 0.0, "inlet temperature must be positive");
    LCN_REQUIRE(ambient_conductance >= 0.0,
                "ambient conductance must be non-negative");
  }
};

/// A cooling problem together with its design constraints (Table 2 row).
struct DesignConstraints {
  double delta_t_max = 10.0;     ///< ΔT*, K (Problem 1)
  double t_max = 358.15;         ///< T*_max, K
  double w_pump_max = 0.0;       ///< W*_pump, W (Problem 2; 0 = unset)
};

}  // namespace lcn
