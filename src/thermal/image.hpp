// Binary PGM (P5) image output for temperature maps and power maps —
// viewable in any image tool, no dependencies.
#pragma once

#include <string>

#include "geom/power_map.hpp"
#include "thermal/field.hpp"

namespace lcn {

/// Render one source-layer temperature map as an 8-bit grayscale PGM
/// (white = hottest). `upscale` repeats pixels for visibility.
std::string temperature_pgm(const ThermalField& field, int source_layer,
                            int upscale = 4);

/// Render a power map as PGM (white = max density).
std::string power_pgm(const PowerMap& map, int upscale = 4);

}  // namespace lcn
