// Closed-form reference solutions used to validate the thermal models
// (exposed as library functions so tests, examples and benches share them).
#pragma once

#include "geom/materials.hpp"

namespace lcn {

/// Steady 1-D conduction: a rod of length L, cross-section A, conductivity
/// k, insulated except at x = L where T = T_end, with uniform volumetric
/// heating of total power P. Temperature at position x (0 = insulated end):
/// T(x) = T_end + (P / (k·A)) · (L - x²/(2L) - L/2)  ... derived from
/// q(x) = P·x/L and dT/dx = -q/(k·A) integrated from L to x.
double rod_temperature(double x, double length, double area,
                       double conductivity, double total_power,
                       double t_end);

/// Bulk (mixed-mean) coolant temperature after absorbing `heat` watts from
/// an inlet at T_in with volumetric flow Q: T = T_in + heat / (C_v·Q).
double coolant_outlet_temperature(double t_in, double heat,
                                  double volumetric_flow,
                                  const CoolantProperties& coolant);

/// Wall temperature of a channel absorbing a uniform flux through film
/// coefficient h over area A: T_wall = T_bulk + heat / (h·A).
double wall_temperature(double t_bulk, double heat, double film_coefficient,
                        double area);

}  // namespace lcn
