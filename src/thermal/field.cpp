#include "thermal/field.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "common/instrument.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "sparse/solvers.hpp"

namespace lcn {

ThermalField make_field(const AssembledThermal& system,
                        std::vector<double> temperatures) {
  LCN_REQUIRE(temperatures.size() == system.matrix.rows(),
              "temperature vector size mismatch");
  ThermalField field;
  field.temperatures = std::move(temperatures);
  field.map_rows = system.map_rows;
  field.map_cols = system.map_cols;

  field.t_max = 0.0;
  field.delta_t = 0.0;
  for (const auto& nodes : system.source_nodes) {
    std::vector<double> map;
    map.reserve(nodes.size());
    double lo = 1e300;
    double hi = -1e300;
    for (std::size_t node : nodes) {
      const double t = field.temperatures[node];
      map.push_back(t);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    field.per_layer_delta.push_back(hi - lo);
    field.delta_t = std::max(field.delta_t, hi - lo);
    field.t_max = std::max(field.t_max, hi);
    field.source_maps.push_back(std::move(map));
  }
  return field;
}

double advected_heat(const AssembledThermal& system,
                     const std::vector<double>& temperatures) {
  double sum = 0.0;
  for (const auto& [node, flow] : system.outlet_terms) {
    sum += system.volumetric_heat * flow *
           (temperatures[node] - system.inlet_temperature);
  }
  return sum;
}

SteadySolverConfig SteadySolverConfig::from_env() {
  SteadySolverConfig cfg;
  const std::string precon = env_string("LCN_SOLVER_PRECON", "ilu0");
  if (precon == "mg" || precon == "multigrid") {
    cfg.precon = Precon::kMultigrid;
  }
  const std::string method = env_string("LCN_SOLVER_METHOD", "auto");
  if (method == "bicgstab") {
    cfg.method = sparse::GeneralMethod::kBicgstab;
  } else if (method == "gmres") {
    cfg.method = sparse::GeneralMethod::kGmres;
  }
  if (env_string("LCN_SOLVER_PRECISION", "double") == "mixed") {
    cfg.precision = sparse::Precision::kMixed;
  }
  return cfg;
}

ThermalField solve_steady(const AssembledThermal& system, double rel_tolerance,
                          const std::vector<double>* initial_guess,
                          SteadyWorkspace* workspace,
                          const SteadySolverConfig* config) {
  LCN_TRACE_SPAN_FINE("solve_steady");
  std::vector<double> temps;
  if (initial_guess != nullptr &&
      initial_guess->size() == system.matrix.rows()) {
    temps = *initial_guess;
  } else {
    temps.assign(system.matrix.rows(), system.inlet_temperature);
  }
  const SteadySolverConfig cfg =
      config != nullptr ? *config : SteadySolverConfig::from_env();
  sparse::SolveOptions opts;
  opts.rel_tolerance = rel_tolerance;
  opts.method = cfg.method;
  opts.precision = cfg.precision;
  const WallTimer timer;
  const bool use_mg = cfg.precon == SteadySolverConfig::Precon::kMultigrid;
  if (workspace != nullptr) {
    // Matrices refilled from one assembly plan share index arrays, so the
    // preconditioner skips its symbolic analysis on every refactorization.
    if (use_mg) {
      if (workspace->mg) {
        workspace->mg->refactor(system.matrix);
      } else {
        workspace->mg.emplace(system.matrix, system.mg_hint.get());
      }
      sparse::solve_general_or_throw(system.matrix, system.rhs, temps,
                                     "steady thermal solve", *workspace->mg,
                                     workspace->krylov, opts);
    } else {
      if (workspace->ilu) {
        workspace->ilu->refactor(system.matrix);
      } else {
        workspace->ilu.emplace(system.matrix);
      }
      sparse::solve_general_or_throw(system.matrix, system.rhs, temps,
                                     "steady thermal solve", *workspace->ilu,
                                     workspace->krylov, opts);
    }
  } else if (use_mg) {
    const sparse::MultigridPreconditioner mg(system.matrix,
                                             system.mg_hint.get());
    sparse::SolverWorkspace ws;
    sparse::solve_general_or_throw(system.matrix, system.rhs, temps,
                                   "steady thermal solve", mg, ws, opts);
  } else {
    sparse::solve_general_or_throw(system.matrix, system.rhs, temps,
                                   "steady thermal solve", opts);
  }
  const double seconds = timer.seconds();
  instrument::add_steady_solve(seconds);
  if (metrics::enabled()) {
    metrics::observe(metrics::Hist::solve_steady_seconds, seconds);
  }
  return make_field(system, std::move(temps));
}

}  // namespace lcn
