#include "thermal/transient.hpp"

#include "common/assert.hpp"
#include "sparse/solvers.hpp"

namespace lcn {

std::vector<TransientSample> simulate_transient(
    const AssembledThermal& system, std::vector<double> initial,
    const TransientOptions& options, std::vector<double>* final_temps) {
  const std::size_t n = system.matrix.rows();
  LCN_REQUIRE(initial.size() == n, "initial temperature size mismatch");
  LCN_REQUIRE(options.dt > 0.0, "time step must be positive");
  LCN_REQUIRE(options.steps >= 1, "need at least one step");

  // A' = A + diag(C/Δt), assembled once.
  sparse::TripletList triplets(n, n);
  {
    const auto& row_ptr = system.matrix.row_ptr();
    const auto& col_idx = system.matrix.col_idx();
    const auto& values = system.matrix.values();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        triplets.add(r, col_idx[k], values[k]);
      }
      triplets.add(r, r, system.capacitance[r] / options.dt);
    }
  }
  const sparse::CsrMatrix lhs = triplets.to_csr();
  const sparse::Ilu0Preconditioner precond(lhs);

  std::vector<TransientSample> samples;
  samples.reserve(static_cast<std::size_t>(options.steps));
  std::vector<double> temps = std::move(initial);
  std::vector<double> rhs(n);

  sparse::SolveOptions opts;
  opts.rel_tolerance = options.rel_tolerance;

  for (int step = 1; step <= options.steps; ++step) {
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = system.rhs[i] + system.capacitance[i] / options.dt * temps[i];
    }
    const sparse::SolveReport report =
        sparse::bicgstab_solve(lhs, rhs, temps, precond, opts);
    if (!report.converged) {
      throw RuntimeError("transient step " + std::to_string(step) +
                         ": BiCGSTAB failed to converge");
    }
    const ThermalField field = make_field(system, temps);
    samples.push_back({step * options.dt, field.t_max, field.delta_t});
  }
  if (final_temps != nullptr) *final_temps = std::move(temps);
  return samples;
}

}  // namespace lcn
