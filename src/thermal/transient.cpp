#include "thermal/transient.hpp"

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/trace.hpp"
#include "sparse/parallel.hpp"
#include "sparse/solvers.hpp"

namespace lcn {

TransientStepper::TransientStepper(const AssembledThermal& system, double dt,
                                   const SteadySolverConfig& config)
    : config_(config) {
  bind(system, dt);
}

void TransientStepper::rebind(const AssembledThermal& system, double dt) {
  bind(system, dt);
}

void TransientStepper::bind(const AssembledThermal& system, double dt) {
  LCN_REQUIRE(dt > 0.0, "time step must be positive");
  const std::size_t n = system.matrix.rows();
  LCN_REQUIRE(system.capacitance.size() == n,
              "capacitance vector size mismatch");

  // Hoist C/Δt once per rebind; the step loop reads it element-wise. The
  // product cap_over_dt_[i] * T[i] reproduces the historical
  // `capacitance[i] / dt * temps[i]` bit-for-bit (same division, rounded
  // once, then the same multiply).
  cap_over_dt_.resize(n);
  if (sparse::parallel_kernels_enabled(n, sparse::kVectorGrain)) {
    sparse::parallel_ranges(n, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        cap_over_dt_[i] = system.capacitance[i] / dt;
      }
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      cap_over_dt_[i] = system.capacitance[i] / dt;
    }
  }

  // Same assembly plan (shared index arrays) => the (C/Δt + A) pattern is
  // unchanged: plan-refilled matrices keep a stable zero set (constant slots
  // are fixed, advection slots scale with P_sys > 0) and C/Δt is zero only
  // where C is. A different structure reruns the symbolic analysis.
  const bool same_structure =
      system_ != nullptr && n == n_ && bound_cols_ != nullptr &&
      bound_cols_.get() == system.matrix.shared_col_idx().get();
  system_ = &system;
  dt_ = dt;
  n_ = n;
  bound_cols_ = system.matrix.shared_col_idx();

  if (!same_structure) {
    // Capture the slot sources in the exact emission order of the historical
    // fresh triplet build: per row, A's stored entries then the diagonal
    // capacitance term, zero values dropped like TripletList::add drops them.
    const auto& row_ptr = system.matrix.row_ptr();
    const auto& col_idx = system.matrix.col_idx();
    const auto& values = system.matrix.values();
    std::vector<sparse::Triplet> pattern;
    pattern.reserve(values.size() + n);
    slots_.clear();
    slots_.reserve(values.size() + n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        if (values[k] == 0.0) continue;
        pattern.push_back({r, col_idx[k], 0.0});
        slots_.push_back({k, false});
      }
      if (cap_over_dt_[r] != 0.0) {
        pattern.push_back({r, r, 0.0});
        slots_.push_back({r, true});
      }
    }
    plan_ = sparse::SparsityPlan::analyze(n, n, pattern);
    instrument::add_transient_rebuild();
  } else {
    instrument::add_transient_refill();
  }
  last_rebind_refilled_ = same_structure;

  const auto& a_values = system.matrix.values();
  lhs_ = plan_.refill_matrix([&](std::size_t s) -> double {
    const Slot& slot = slots_[s];
    return slot.is_diag ? cap_over_dt_[slot.index] : a_values[slot.index];
  });

  // lhs_ borrows plan_'s index arrays on every refill, so the
  // preconditioner's refactorization skips its symbolic phase.
  if (config_.precon == SteadySolverConfig::Precon::kMultigrid) {
    if (workspace_.mg && same_structure) {
      workspace_.mg->refactor(lhs_);
    } else {
      workspace_.mg.emplace(lhs_, system.mg_hint.get());
    }
  } else {
    if (workspace_.ilu) {
      workspace_.ilu->refactor(lhs_);
    } else {
      workspace_.ilu.emplace(lhs_);
    }
  }
}

void TransientStepper::step(std::vector<double>& temps,
                            double rel_tolerance) {
  LCN_TRACE_SPAN_FINE("transient_step");
  LCN_REQUIRE(temps.size() == n_, "temperature vector size mismatch");

  // rhs = b + (C/Δt) ⊙ T_n. Element-wise with the pooled vector-ops idiom:
  // each element is written by exactly one task with the serial operation
  // order, so the trajectory is bit-identical for any thread count.
  rhs_.resize(n_);
  const sparse::Vector& b = system_->rhs;
  if (sparse::parallel_kernels_enabled(n_, sparse::kVectorGrain)) {
    sparse::parallel_ranges(n_, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        rhs_[i] = b[i] + cap_over_dt_[i] * temps[i];
      }
    });
  } else {
    for (std::size_t i = 0; i < n_; ++i) {
      rhs_[i] = b[i] + cap_over_dt_[i] * temps[i];
    }
  }

  sparse::SolveOptions opts;
  opts.rel_tolerance = rel_tolerance;
  opts.method = config_.method;
  opts.precision = config_.precision;
  if (config_.precon == SteadySolverConfig::Precon::kMultigrid) {
    sparse::solve_general_or_throw(lhs_, rhs_, temps, "transient step",
                                   *workspace_.mg, workspace_.krylov, opts);
  } else {
    sparse::solve_general_or_throw(lhs_, rhs_, temps, "transient step",
                                   *workspace_.ilu, workspace_.krylov, opts);
  }
  instrument::add_transient_step();
}

std::vector<TransientSample> simulate_transient(
    const AssembledThermal& system, std::vector<double> initial,
    const TransientOptions& options, std::vector<double>* final_temps) {
  const std::size_t n = system.matrix.rows();
  LCN_REQUIRE(initial.size() == n, "initial temperature size mismatch");
  LCN_REQUIRE(options.dt > 0.0, "time step must be positive");
  LCN_REQUIRE(options.steps >= 1, "need at least one step");

  const SteadySolverConfig config =
      options.solver ? *options.solver : SteadySolverConfig::from_env();
  TransientStepper stepper(system, options.dt, config);

  std::vector<TransientSample> samples;
  samples.reserve(static_cast<std::size_t>(options.steps));
  std::vector<double> temps = std::move(initial);

  for (int step = 1; step <= options.steps; ++step) {
    stepper.step(temps, options.rel_tolerance);
    const ThermalField field = make_field(system, temps);
    samples.push_back({step * options.dt, field.t_max, field.delta_t});
  }
  if (final_temps != nullptr) *final_temps = std::move(temps);
  return samples;
}

}  // namespace lcn
