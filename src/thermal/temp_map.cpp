#include "thermal/temp_map.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace lcn {

std::string ascii_heatmap(const ThermalField& field, int source_layer,
                          int max_cols) {
  LCN_REQUIRE(source_layer >= 0 &&
                  source_layer < static_cast<int>(field.source_maps.size()),
              "source layer out of range");
  LCN_REQUIRE(max_cols >= 8, "heatmap needs at least 8 columns");
  const auto& map = field.source_maps[static_cast<std::size_t>(source_layer)];
  const int rows = field.map_rows;
  const int cols = field.map_cols;

  double lo = 1e300;
  double hi = -1e300;
  for (double t : map) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  const double span = std::max(hi - lo, 1e-12);

  static const char kRamp[] = " .:-=+*#%@";
  const int levels = static_cast<int>(sizeof(kRamp)) - 2;

  const int step = std::max(1, (cols + max_cols - 1) / max_cols);
  std::ostringstream os;
  os << strfmt("min %.2f K, max %.2f K, range %.2f K (1 char = %dx%d cells)\n",
               lo, hi, hi - lo, step, step);
  for (int r = 0; r < rows; r += step) {
    for (int c = 0; c < cols; c += step) {
      // Average the block the character covers.
      double sum = 0.0;
      int count = 0;
      for (int rr = r; rr < std::min(rows, r + step); ++rr) {
        for (int cc = c; cc < std::min(cols, c + step); ++cc) {
          sum += map[static_cast<std::size_t>(rr) * cols + cc];
          ++count;
        }
      }
      const double t = sum / count;
      const int level = std::clamp(
          static_cast<int>((t - lo) / span * levels), 0, levels);
      os << kRamp[level];
    }
    os << '\n';
  }
  return os.str();
}

std::string temperature_csv(const ThermalField& field, int source_layer) {
  LCN_REQUIRE(source_layer >= 0 &&
                  source_layer < static_cast<int>(field.source_maps.size()),
              "source layer out of range");
  const auto& map = field.source_maps[static_cast<std::size_t>(source_layer)];
  std::ostringstream os;
  for (int r = 0; r < field.map_rows; ++r) {
    for (int c = 0; c < field.map_cols; ++c) {
      if (c > 0) os << ',';
      os << strfmt("%.4f", map[static_cast<std::size_t>(r) * field.map_cols + c]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace lcn
