#include "thermal/model_2rm.hpp"

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "flow/flow_solver.hpp"

namespace lcn {

namespace {

double series(double g1, double g2) {
  if (g1 <= 0.0 || g2 <= 0.0) return 0.0;
  return g1 * g2 / (g1 + g2);
}

constexpr int kWestLane = 0;
constexpr int kEastLane = 1;
constexpr int kNorthLane = 2;
constexpr int kSouthLane = 3;

}  // namespace

Thermal2RM::Thermal2RM(CoolingProblem problem,
                       std::vector<CoolingNetwork> networks, int m)
    : problem_(std::move(problem)), networks_(std::move(networks)), m_(m) {
  problem_.validate();
  LCN_REQUIRE(m >= 1, "thermal cell size must be >= 1");
  LCN_REQUIRE(static_cast<int>(networks_.size()) ==
                  problem_.stack.channel_count(),
              "one cooling network per channel layer required");
  for (const CoolingNetwork& net : networks_) {
    LCN_REQUIRE(net.grid() == problem_.grid,
                "network grid must match the problem grid");
  }
  block_rows_ = (problem_.grid.rows() + m_ - 1) / m_;
  block_cols_ = (problem_.grid.cols() + m_ - 1) / m_;

  for (int layer : problem_.stack.channel_layers()) {
    const int ch = problem_.stack.layer(layer).channel_index;
    const FlowSolver solver(networks_[static_cast<std::size_t>(ch)],
                            problem_.channel_geometry(layer),
                            problem_.coolant, problem_.flow_options);
    flows_.push_back(solver.solve(1.0));
  }
  build_block_stats();
  build_nodes();
}

CellRect Thermal2RM::block_rect(int block_row, int block_col) const {
  CellRect rect;
  rect.row0 = block_row * m_;
  rect.col0 = block_col * m_;
  rect.row1 = std::min(rect.row0 + m_ - 1, problem_.grid.rows() - 1);
  rect.col1 = std::min(rect.col0 + m_ - 1, problem_.grid.cols() - 1);
  return rect;
}

void Thermal2RM::build_block_stats() {
  const Grid2D& grid = problem_.grid;
  const std::size_t nblocks =
      static_cast<std::size_t>(block_rows_) * block_cols_;

  stats_.assign(networks_.size(), {});
  for (std::size_t ch = 0; ch < networks_.size(); ++ch) {
    const CoolingNetwork& net = networks_[ch];
    const FlowSolution& flow = flows_[ch];
    const int layer = problem_.stack.channel_layers()[static_cast<int>(ch)];
    const double h_c = problem_.stack.layer(layer).thickness;
    auto& stats = stats_[ch];
    stats.assign(nblocks, {});

    for (int br = 0; br < block_rows_; ++br) {
      for (int bc = 0; bc < block_cols_; ++bc) {
        BlockStats& s = stats[block_index(br, bc)];
        const CellRect rect = block_rect(br, bc);

        for (int r = rect.row0; r <= rect.row1; ++r) {
          for (int c = rect.col0; c <= rect.col1; ++c) {
            if (net.is_liquid(r, c)) {
              ++s.liquid_cells;
              // Side-wall area: each lateral face whose neighbor is solid
              // (or the chip boundary) is a channel wall.
              const int dr[] = {1, -1, 0, 0};
              const int dc[] = {0, 0, 1, -1};
              for (int k = 0; k < 4; ++k) {
                const int nr = r + dr[k];
                const int nc = c + dc[k];
                if (!grid.in_bounds(nr, nc) || !net.is_liquid(nr, nc)) {
                  s.side_area += grid.pitch() * h_c;
                }
              }
            } else {
              ++s.solid_cells;
            }
          }
        }

        // Complete conducting lanes (Eq. 7): a lane toward an interface
        // conducts only if every cell between the block center and that
        // interface is solid.
        const int half_cols = (rect.cols() + 1) / 2;
        const int half_rows = (rect.rows() + 1) / 2;
        for (int r = rect.row0; r <= rect.row1; ++r) {
          bool west_ok = true;
          bool east_ok = true;
          for (int c = rect.col0; c < rect.col0 + half_cols; ++c) {
            if (net.is_liquid(r, c)) west_ok = false;
          }
          for (int c = rect.col1 - half_cols + 1; c <= rect.col1; ++c) {
            if (net.is_liquid(r, c)) east_ok = false;
          }
          if (west_ok) ++s.lanes[kWestLane];
          if (east_ok) ++s.lanes[kEastLane];
        }
        for (int c = rect.col0; c <= rect.col1; ++c) {
          bool north_ok = true;
          bool south_ok = true;
          for (int r = rect.row0; r < rect.row0 + half_rows; ++r) {
            if (net.is_liquid(r, c)) north_ok = false;
          }
          for (int r = rect.row1 - half_rows + 1; r <= rect.row1; ++r) {
            if (net.is_liquid(r, c)) south_ok = false;
          }
          if (north_ok) ++s.lanes[kNorthLane];
          if (south_ok) ++s.lanes[kSouthLane];
        }

        // Net inter-block flow across the east and south interfaces.
        if (rect.col1 + 1 < grid.cols()) {
          for (int r = rect.row0; r <= rect.row1; ++r) {
            if (!net.is_liquid(r, rect.col1)) continue;
            const std::int32_t li = flow.liquid_index[grid.index(r, rect.col1)];
            s.unit_flow_east += flow.q_east[static_cast<std::size_t>(li)];
          }
        }
        if (rect.row1 + 1 < grid.rows()) {
          for (int c = rect.col0; c <= rect.col1; ++c) {
            if (!net.is_liquid(rect.row1, c)) continue;
            const std::int32_t li = flow.liquid_index[grid.index(rect.row1, c)];
            s.unit_flow_south += flow.q_south[static_cast<std::size_t>(li)];
          }
        }
      }
    }

    // Port flows aggregated per block.
    for (std::size_t p = 0; p < net.ports().size(); ++p) {
      const Port& port = net.ports()[p];
      const std::size_t b = block_index(port.row / m_, port.col / m_);
      if (port.kind == PortKind::kInlet) {
        stats[b].unit_inflow += flow.port_flow[p];
      } else {
        stats[b].unit_outflow += flow.port_flow[p];
      }
    }
  }
}

void Thermal2RM::build_nodes() {
  const std::size_t nblocks =
      static_cast<std::size_t>(block_rows_) * block_cols_;
  node_id_.assign(static_cast<std::size_t>(problem_.stack.layer_count()),
                  std::vector<std::ptrdiff_t>(nblocks * 2, -1));
  std::size_t next = 0;
  for (int l = 0; l < problem_.stack.layer_count(); ++l) {
    const Layer& layer = problem_.stack.layer(l);
    auto& ids = node_id_[static_cast<std::size_t>(l)];
    if (layer.kind != LayerKind::kChannel) {
      for (std::size_t b = 0; b < nblocks; ++b) {
        ids[b * 2] = static_cast<std::ptrdiff_t>(next++);
      }
      continue;
    }
    const auto& stats = stats_[static_cast<std::size_t>(layer.channel_index)];
    for (std::size_t b = 0; b < nblocks; ++b) {
      if (stats[b].solid_cells > 0) {
        ids[b * 2] = static_cast<std::ptrdiff_t>(next++);
      }
      if (stats[b].liquid_cells > 0) {
        ids[b * 2 + 1] = static_cast<std::ptrdiff_t>(next++);
      }
    }
  }
  node_total_ = next;
}

std::ptrdiff_t Thermal2RM::solid_node(int layer, int block_row,
                                      int block_col) const {
  return node_id_[static_cast<std::size_t>(layer)]
                 [block_index(block_row, block_col) * 2];
}

std::ptrdiff_t Thermal2RM::liquid_node(int layer, int block_row,
                                       int block_col) const {
  return node_id_[static_cast<std::size_t>(layer)]
                 [block_index(block_row, block_col) * 2 + 1];
}

double Thermal2RM::system_flow(double p_sys) const {
  double q = 0.0;
  for (const FlowSolution& flow : flows_) q += flow.system_flow * p_sys;
  return q;
}

double Thermal2RM::pumping_power(double p_sys) const {
  return p_sys * system_flow(p_sys);
}

AssembledThermal Thermal2RM::assemble(double p_sys) const {
  LCN_TRACE_SPAN_FINE("assemble_2rm");
  return plan().assemble(p_sys);
}

const ThermalAssemblyPlan& Thermal2RM::plan() const {
  std::lock_guard<std::mutex> lock(*plan_mutex_);
  if (!plan_) plan_ = build_plan();
  return *plan_;
}

std::shared_ptr<const ThermalAssemblyPlan> Thermal2RM::build_plan() const {
  const Grid2D& grid = problem_.grid;
  const Stack& stack = problem_.stack;
  const double pitch = grid.pitch();
  const double cell_area = pitch * pitch;
  const std::size_t n = node_total_;

  auto plan = std::make_shared<ThermalAssemblyPlan>();
  plan->capacitance.assign(n, 0.0);
  plan->map_rows = block_rows_;
  plan->map_cols = block_cols_;
  plan->volumetric_heat = problem_.coolant.volumetric_heat;
  plan->inlet_temperature = problem_.inlet_temperature;

  // Node coordinates for geometric multigrid: both phases of a block share
  // its (layer, block row, block col), so the first vertical coarsening step
  // coalesces the solid/liquid pair along their strong convective coupling.
  {
    auto hint = std::make_shared<sparse::MgGridHint>();
    hint->layer.assign(n, 0);
    hint->row.assign(n, 0);
    hint->col.assign(n, 0);
    for (int l = 0; l < stack.layer_count(); ++l) {
      for (int br = 0; br < block_rows_; ++br) {
        for (int bc = 0; bc < block_cols_; ++bc) {
          for (int phase = 0; phase < 2; ++phase) {
            const std::ptrdiff_t id =
                node_id_[static_cast<std::size_t>(l)]
                        [block_index(br, bc) * 2 +
                         static_cast<std::size_t>(phase)];
            if (id < 0) continue;
            const auto node = static_cast<std::size_t>(id);
            hint->layer[node] = l;
            hint->row[node] = br;
            hint->col[node] = bc;
          }
        }
      }
    }
    plan->mg_hint = std::move(hint);
  }

  // One task per (layer, block row), exactly mirroring the historical
  // fresh-assembly traversal: each task records into a task-local Emitter
  // and writes only its own blocks' capacitance entries, so tasks are
  // data-race free. Emitters are merged in canonical (layer, block-row)
  // order afterwards, which reproduces the serial emission sequence exactly
  // — the recorded plan (and every refill from it) is bit-identical for
  // every thread count.
  struct RowTask {
    int layer = 0;
    int block_row = 0;
    ThermalAssemblyPlan::Emitter em;
    RowTask(int l, int br) : layer(l), block_row(br) {}
  };
  std::vector<RowTask> tasks;
  tasks.reserve(static_cast<std::size_t>(stack.layer_count()) *
                static_cast<std::size_t>(block_rows_));
  for (int l = 0; l < stack.layer_count(); ++l) {
    for (int br = 0; br < block_rows_; ++br) tasks.emplace_back(l, br);
  }

  global_pool().parallel_for(tasks.size(), [&](std::size_t ti) {
    RowTask& task = tasks[ti];
    const int l = task.layer;
    const int br = task.block_row;
    const Layer& layer = stack.layer(l);
    const bool is_channel = layer.kind == LayerKind::kChannel;
    const std::vector<BlockStats>* stats =
        is_channel ? &stats_[static_cast<std::size_t>(layer.channel_index)]
                   : nullptr;
    const double k = layer.material.conductivity;
    const double t = layer.thickness;
    const double h_conv =
        is_channel ? convective_coefficient(problem_.channel_geometry(l),
                                            problem_.coolant)
                   : 0.0;

    ThermalAssemblyPlan::Emitter& em = task.em;
    auto add_pair = [&](std::ptrdiff_t i, std::ptrdiff_t j, double g) {
      if (g <= 0.0 || i < 0 || j < 0) return;
      const auto ii = static_cast<std::size_t>(i);
      const auto jj = static_cast<std::size_t>(j);
      em.add_const(ii, ii, g);
      em.add_const(jj, jj, g);
      em.add_const(ii, jj, -g);
      em.add_const(jj, ii, -g);
    };

    {
      for (int bc = 0; bc < block_cols_; ++bc) {
        const std::size_t b = block_index(br, bc);
        const CellRect rect = block_rect(br, bc);
        const int cells = rect.rows() * rect.cols();
        const std::ptrdiff_t i_solid = solid_node(l, br, bc);
        const std::ptrdiff_t i_liquid =
            is_channel ? liquid_node(l, br, bc) : -1;
        const int nsolid = is_channel ? (*stats)[b].solid_cells : cells;
        const int nliquid = is_channel ? (*stats)[b].liquid_cells : 0;

        // Heat capacities.
        if (i_solid >= 0) {
          plan->capacitance[static_cast<std::size_t>(i_solid)] =
              nsolid * cell_area * t * layer.material.volumetric_heat;
        }
        if (i_liquid >= 0) {
          plan->capacitance[static_cast<std::size_t>(i_liquid)] =
              nliquid * cell_area * t * problem_.coolant.volumetric_heat;
        }

        // --- In-plane solid–solid to the east and south neighbor blocks
        // (Eq. 7: per-side effective conductances in series).
        const struct {
          int dbr, dbc, lane_from, lane_to;
        } dirs[2] = {{0, 1, kEastLane, kWestLane},
                     {1, 0, kSouthLane, kNorthLane}};
        for (const auto& d : dirs) {
          const int nbr = br + d.dbr;
          const int nbc = bc + d.dbc;
          if (nbr >= block_rows_ || nbc >= block_cols_) continue;
          const CellRect nrect = block_rect(nbr, nbc);
          const std::size_t nb = block_index(nbr, nbc);
          const std::ptrdiff_t j_solid = solid_node(l, nbr, nbc);

          // Conducting lanes per side (all lanes for non-channel layers).
          int lanes_i;
          int lanes_j;
          double half_i;
          double half_j;
          if (d.dbc == 1) {  // east
            lanes_i = is_channel ? (*stats)[b].lanes[d.lane_from]
                                 : rect.rows();
            lanes_j = is_channel ? (*stats)[nb].lanes[d.lane_to]
                                 : nrect.rows();
            half_i = rect.cols() * pitch / 2.0;
            half_j = nrect.cols() * pitch / 2.0;
          } else {  // south
            lanes_i = is_channel ? (*stats)[b].lanes[d.lane_from]
                                 : rect.cols();
            lanes_j = is_channel ? (*stats)[nb].lanes[d.lane_to]
                                 : nrect.cols();
            half_i = rect.rows() * pitch / 2.0;
            half_j = nrect.rows() * pitch / 2.0;
          }
          const double g_i = k * t * (lanes_i * pitch) / half_i;
          const double g_j = k * t * (lanes_j * pitch) / half_j;
          add_pair(i_solid, j_solid, series(g_i, g_j));
        }

        // --- Vertical coupling with the layer above.
        if (l + 1 < stack.layer_count()) {
          const Layer& above = stack.layer(l + 1);
          const bool above_channel = above.kind == LayerKind::kChannel;
          const std::ptrdiff_t j_solid = solid_node(l + 1, br, bc);
          const std::ptrdiff_t j_liquid =
              above_channel ? liquid_node(l + 1, br, bc) : -1;
          const auto* stats_above =
              above_channel
                  ? &stats_[static_cast<std::size_t>(above.channel_index)]
                  : nullptr;
          const int nsolid_above =
              above_channel ? (*stats_above)[b].solid_cells : cells;
          const int nliquid_above =
              above_channel ? (*stats_above)[b].liquid_cells : 0;

          // solid (this layer) <-> solid (above): area limited by the
          // smaller solid coverage of the two.
          {
            const double area =
                std::min(nsolid, nsolid_above) * cell_area;
            const double g_i = k * area / (t / 2.0);
            const double g_j =
                above.material.conductivity * area / (above.thickness / 2.0);
            add_pair(i_solid, j_solid, series(g_i, g_j));
          }
          // liquid (this layer) -> solid above (Eq. 8 + Eq. 5).
          if (i_liquid >= 0 && j_solid >= 0) {
            const double area =
                (*stats)[b].liquid_cells * cell_area +
                (*stats)[b].side_area / 2.0;
            const double g_conv = h_conv * area;
            const double g_cond =
                above.material.conductivity * area / (above.thickness / 2.0);
            add_pair(i_liquid, j_solid, series(g_conv, g_cond));
          }
          // solid (this layer) -> liquid above.
          if (i_solid >= 0 && j_liquid >= 0) {
            const double h_above = convective_coefficient(
                problem_.channel_geometry(l + 1), problem_.coolant);
            const double area =
                nliquid_above * cell_area +
                (*stats_above)[b].side_area / 2.0;
            const double g_conv = h_above * area;
            const double g_cond = k * area / (t / 2.0);
            add_pair(i_solid, j_liquid, series(g_conv, g_cond));
          }
        }

        // --- Liquid advection between blocks + ports. All slot emissions
        // are guarded on unit-pressure quantities only, so the recorded
        // pattern is valid for every P_sys > 0.
        if (is_channel && i_liquid >= 0) {
          const auto ii = static_cast<std::size_t>(i_liquid);
          const struct {
            double unit_q;
            int dbr, dbc;
          } adv[2] = {{(*stats)[b].unit_flow_east, 0, 1},
                      {(*stats)[b].unit_flow_south, 1, 0}};
          for (const auto& a : adv) {
            if (a.unit_q == 0.0) continue;
            const std::ptrdiff_t j_liquid =
                liquid_node(l, br + a.dbr, bc + a.dbc);
            LCN_CHECK(j_liquid >= 0,
                      "net inter-block flow into a block without liquid");
            const auto jj = static_cast<std::size_t>(j_liquid);
            using Form = ThermalAssemblyPlan::SlotForm;
            em.add_flow(ii, ii, a.unit_q, Form::kHalf);
            em.add_flow(ii, jj, a.unit_q, Form::kHalf);
            em.add_flow(jj, jj, a.unit_q, Form::kHalfNeg);
            em.add_flow(jj, ii, a.unit_q, Form::kHalfNeg);
          }
          if ((*stats)[b].unit_inflow > 0.0) {
            em.add_rhs_flow(ii, (*stats)[b].unit_inflow);
            em.add_inflow((*stats)[b].unit_inflow);
          }
          if ((*stats)[b].unit_outflow > 0.0) {
            em.add_flow(ii, ii, (*stats)[b].unit_outflow,
                        ThermalAssemblyPlan::SlotForm::kFull);
            em.add_outlet(ii, (*stats)[b].unit_outflow);
          }
        }

        // --- Power injection.
        if (layer.kind == LayerKind::kSource && i_solid >= 0) {
          const PowerMap& map = problem_.source_power[static_cast<std::size_t>(
              layer.source_index)];
          double power = 0.0;
          for (int r = rect.row0; r <= rect.row1; ++r) {
            for (int c = rect.col0; c <= rect.col1; ++c) {
              power += map.at(r, c);
            }
          }
          em.add_rhs_power(static_cast<std::size_t>(i_solid), power,
                           layer.source_index);
        }

        // --- Ambient sink on top.
        if (l == stack.layer_count() - 1 &&
            problem_.ambient_conductance > 0.0 && i_solid >= 0) {
          const double g = problem_.ambient_conductance * cells * cell_area;
          em.add_const(static_cast<std::size_t>(i_solid),
                       static_cast<std::size_t>(i_solid), g);
          em.add_rhs_const(static_cast<std::size_t>(i_solid),
                           g * problem_.ambient_temperature);
        }
      }
    }
  });

  // Merge task-local emitters in canonical order (matches the serial
  // traversal order exactly).
  std::vector<const ThermalAssemblyPlan::Emitter*> parts;
  parts.reserve(tasks.size());
  for (const RowTask& task : tasks) parts.push_back(&task.em);

  // Source maps (block row-major).
  for (int l = 0; l < stack.layer_count(); ++l) {
    if (stack.layer(l).kind != LayerKind::kSource) continue;
    std::vector<std::size_t> nodes;
    nodes.reserve(static_cast<std::size_t>(block_rows_) * block_cols_);
    for (int br = 0; br < block_rows_; ++br) {
      for (int bc = 0; bc < block_cols_; ++bc) {
        const std::ptrdiff_t id = solid_node(l, br, bc);
        LCN_CHECK(id >= 0, "source layers have a node in every block");
        nodes.push_back(static_cast<std::size_t>(id));
      }
    }
    plan->source_nodes.push_back(std::move(nodes));
  }

  plan->finalize(n, parts);
  return plan;
}

ThermalField Thermal2RM::simulate(double p_sys) const {
  return solve_steady(assemble(p_sys));
}

}  // namespace lcn
