// Per-step boundary state for time-varying simulation (DESIGN.md §S23).
//
// The static CoolingProblem fixes the inlet temperature and the nominal
// power maps at assembly-plan build time. A dynamic scenario varies both
// every step — the rack loop warms the inlet, the workload trace and the
// throttle governor scale the die power — without ever changing the matrix
// sparsity or the P_sys-dependent values. BoundaryState carries exactly the
// per-step degrees of freedom that touch only the RHS, so the engine can
// refill the right-hand side in place instead of reassembling the system.
#pragma once

#include <cstddef>
#include <vector>

namespace lcn {

struct BoundaryState {
  /// Coolant temperature at the chip inlet for this step, K.
  double inlet_temperature = 0.0;
  /// Multiplier on each source layer's nominal power map (indexed by
  /// Layer::source_index). Empty means nominal power on every layer.
  std::vector<double> power_scale;

  double scale_for(int source_layer) const {
    return power_scale.empty()
               ? 1.0
               : power_scale[static_cast<std::size_t>(source_layer)];
  }
};

}  // namespace lcn
