// Rendering helpers for source-layer temperature maps (Fig. 10): ASCII
// heatmaps for the terminal and CSV matrices for plotting.
#pragma once

#include <string>

#include "thermal/field.hpp"

namespace lcn {

/// ASCII heatmap of one source layer, downsampled to at most `max_cols`
/// characters wide; intensity ramp from coolest to hottest.
std::string ascii_heatmap(const ThermalField& field, int source_layer,
                          int max_cols = 64);

/// CSV matrix (rows of comma-separated kelvins) of one source layer.
std::string temperature_csv(const ThermalField& field, int source_layer);

}  // namespace lcn
