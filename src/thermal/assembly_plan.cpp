#include "thermal/assembly_plan.hpp"

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/timer.hpp"

namespace lcn {

void ThermalAssemblyPlan::finalize(std::size_t nodes,
                                   const std::vector<const Emitter*>& parts) {
  n = nodes;
  std::size_t slots = 0;
  std::size_t rhs_n = 0;
  std::size_t out_n = 0;
  std::size_t in_n = 0;
  for (const Emitter* e : parts) {
    LCN_REQUIRE(e != nullptr, "assembly plan: null emitter part");
    slots += e->pattern.size();
    rhs_n += e->rhs_ops.size();
    out_n += e->outlet_units.size();
    in_n += e->inflow_units.size();
  }
  std::vector<sparse::Triplet> merged;
  merged.reserve(slots);
  slot_value_.reserve(slots);
  slot_form_.reserve(slots);
  rhs_ops_.reserve(rhs_n);
  outlet_units_.reserve(out_n);
  inflow_units_.reserve(in_n);
  for (const Emitter* e : parts) {
    merged.insert(merged.end(), e->pattern.begin(), e->pattern.end());
    slot_value_.insert(slot_value_.end(), e->slot_value.begin(),
                       e->slot_value.end());
    slot_form_.insert(slot_form_.end(), e->slot_form.begin(),
                      e->slot_form.end());
    rhs_ops_.insert(rhs_ops_.end(), e->rhs_ops.begin(), e->rhs_ops.end());
    outlet_units_.insert(outlet_units_.end(), e->outlet_units.begin(),
                         e->outlet_units.end());
    inflow_units_.insert(inflow_units_.end(), e->inflow_units.begin(),
                         e->inflow_units.end());
  }
  pattern_ = sparse::SparsityPlan::analyze(n, n, merged);
}

void ThermalAssemblyPlan::replay_rhs(double p_sys,
                                     const BoundaryState& boundary,
                                     sparse::Vector& rhs) const {
  LCN_REQUIRE(boundary.power_scale.empty() ||
                  boundary.power_scale.size() == source_nodes.size(),
              "boundary power scale must cover every source layer");
  const double cv = volumetric_heat;
  const bool scaled = !boundary.power_scale.empty();
  rhs.assign(n, 0.0);
  // Replay the ordered RHS contributions (same `+=` sequence as a fresh
  // traversal). The nominal path adds power values verbatim — no `* 1.0`
  // detour — so it stays bit-identical to the historical assembly.
  for (const RhsOp& op : rhs_ops_) {
    if (op.is_flow) {
      const double q = op.value * p_sys;
      rhs[op.node] += cv * q * boundary.inlet_temperature;
    } else if (scaled && op.layer >= 0) {
      rhs[op.node] +=
          op.value * boundary.power_scale[static_cast<std::size_t>(op.layer)];
    } else {
      rhs[op.node] += op.value;
    }
  }
}

AssembledThermal ThermalAssemblyPlan::assemble(double p_sys) const {
  return assemble(p_sys, nominal_boundary());
}

AssembledThermal ThermalAssemblyPlan::assemble(
    double p_sys, const BoundaryState& boundary) const {
  LCN_REQUIRE(p_sys > 0.0, "P_sys must be positive");
  const WallTimer timer;
  const double cv = volumetric_heat;

  AssembledThermal out;
  out.capacitance = capacitance;
  out.map_rows = map_rows;
  out.map_cols = map_cols;
  out.volumetric_heat = volumetric_heat;
  out.inlet_temperature = boundary.inlet_temperature;
  out.source_nodes = source_nodes;
  out.mg_hint = mg_hint;

  replay_rhs(p_sys, boundary, out.rhs);

  out.outlet_terms.reserve(outlet_units_.size());
  for (const auto& [node, unit] : outlet_units_) {
    out.outlet_terms.emplace_back(node, unit * p_sys);
  }
  for (double unit : inflow_units_) out.inlet_flow_total += unit * p_sys;

  // Numeric matrix refill on the cached pattern. The expression per form
  // matches the fresh traversal's arithmetic shape exactly.
  out.matrix = pattern_.refill_matrix([&](std::size_t s) -> double {
    const double v = slot_value_[s];
    switch (slot_form_[s]) {
      case SlotForm::kConst:
        return v;
      case SlotForm::kHalf:
        return cv * (v * p_sys) / 2.0;
      case SlotForm::kHalfNeg:
        return -cv * (v * p_sys) / 2.0;
      case SlotForm::kFull:
        return cv * (v * p_sys);
    }
    return 0.0;  // unreachable
  });

  instrument::add_assembly_refill();
  instrument::add_assembly(timer.seconds());
  return out;
}

void ThermalAssemblyPlan::refill_rhs(double p_sys,
                                     const BoundaryState& boundary,
                                     AssembledThermal& io) const {
  LCN_REQUIRE(p_sys > 0.0, "P_sys must be positive");
  LCN_REQUIRE(io.matrix.rows() == n, "refill_rhs: system/plan size mismatch");
  replay_rhs(p_sys, boundary, io.rhs);
  io.inlet_temperature = boundary.inlet_temperature;
  instrument::add_rhs_refill();
}

}  // namespace lcn
