#include "thermal/model_4rm.hpp"

#include "common/assert.hpp"

namespace lcn {

namespace {

/// Series combination g1 || g2 = g1·g2/(g1+g2) (paper Eq. 5/7 notation).
double series(double g1, double g2) {
  LCN_ASSERT(g1 >= 0.0 && g2 >= 0.0, "conductances must be non-negative");
  if (g1 <= 0.0 || g2 <= 0.0) return 0.0;
  return g1 * g2 / (g1 + g2);
}

}  // namespace

Thermal4RM::Thermal4RM(CoolingProblem problem,
                       std::vector<CoolingNetwork> networks)
    : problem_(std::move(problem)), networks_(std::move(networks)) {
  problem_.validate();
  LCN_REQUIRE(static_cast<int>(networks_.size()) ==
                  problem_.stack.channel_count(),
              "one cooling network per channel layer required");
  for (const CoolingNetwork& net : networks_) {
    LCN_REQUIRE(net.grid() == problem_.grid,
                "network grid must match the problem grid");
  }
  for (int layer : problem_.stack.channel_layers()) {
    const int ch = problem_.stack.layer(layer).channel_index;
    const FlowSolver solver(networks_[static_cast<std::size_t>(ch)],
                            problem_.channel_geometry(layer),
                            problem_.coolant, problem_.flow_options);
    flows_.push_back(solver.solve(1.0));
  }
}

std::size_t Thermal4RM::node_count() const {
  return static_cast<std::size_t>(problem_.stack.layer_count()) *
         problem_.grid.cell_count();
}

std::size_t Thermal4RM::node(int layer, int row, int col) const {
  LCN_REQUIRE(layer >= 0 && layer < problem_.stack.layer_count(),
              "layer out of range");
  return static_cast<std::size_t>(layer) * problem_.grid.cell_count() +
         problem_.grid.index(row, col);
}

double Thermal4RM::system_flow(double p_sys) const {
  double q = 0.0;
  for (const FlowSolution& flow : flows_) q += flow.system_flow * p_sys;
  return q;
}

double Thermal4RM::pumping_power(double p_sys) const {
  return p_sys * system_flow(p_sys);
}

AssembledThermal Thermal4RM::assemble(double p_sys) const {
  LCN_REQUIRE(p_sys > 0.0, "P_sys must be positive");
  const Grid2D& grid = problem_.grid;
  const Stack& stack = problem_.stack;
  const std::size_t ncells = grid.cell_count();
  const int layer_count = stack.layer_count();
  const std::size_t n = node_count();
  const double pitch = grid.pitch();
  const double cell_area = pitch * pitch;

  sparse::TripletList triplets(n, n);
  AssembledThermal out;
  out.rhs.assign(n, 0.0);
  out.capacitance.assign(n, 0.0);
  out.map_rows = grid.rows();
  out.map_cols = grid.cols();
  out.volumetric_heat = problem_.coolant.volumetric_heat;
  out.inlet_temperature = problem_.inlet_temperature;

  auto add_pair = [&](std::size_t i, std::size_t j, double g) {
    if (g <= 0.0) return;
    triplets.add(i, i, g);
    triplets.add(j, j, g);
    triplets.add(i, j, -g);
    triplets.add(j, i, -g);
  };

  for (int l = 0; l < layer_count; ++l) {
    const Layer& layer = stack.layer(l);
    const bool is_channel = layer.kind == LayerKind::kChannel;
    const CoolingNetwork* net =
        is_channel ? &networks_[static_cast<std::size_t>(layer.channel_index)]
                   : nullptr;
    const FlowSolution* flow =
        is_channel ? &flows_[static_cast<std::size_t>(layer.channel_index)]
                   : nullptr;
    const ChannelGeometry geom =
        is_channel ? problem_.channel_geometry(l) : ChannelGeometry{};
    const double h_conv =
        is_channel ? convective_coefficient(geom, problem_.coolant) : 0.0;
    const double k = layer.material.conductivity;
    const double t = layer.thickness;
    const double side_area = pitch * t;  // face between in-plane neighbors

    for (int r = 0; r < grid.rows(); ++r) {
      for (int c = 0; c < grid.cols(); ++c) {
        const std::size_t i = node(l, r, c);
        const bool i_liquid = is_channel && net->is_liquid(r, c);

        // Heat capacity.
        out.capacitance[i] =
            cell_area * t *
            (i_liquid ? problem_.coolant.volumetric_heat
                      : layer.material.volumetric_heat);

        // In-plane coupling with east and south neighbors (each pair once).
        const int nbr[2][2] = {{r, c + 1}, {r + 1, c}};
        for (const auto& nb : nbr) {
          if (!grid.in_bounds(nb[0], nb[1])) continue;
          const std::size_t j = node(l, nb[0], nb[1]);
          const bool j_liquid = is_channel && net->is_liquid(nb[0], nb[1]);
          if (!i_liquid && !j_liquid) {
            // solid–solid conduction (Eq. 4): g = k·A/l.
            add_pair(i, j, k * side_area / pitch);
          } else if (i_liquid != j_liquid) {
            // solid–liquid through a side wall (Eq. 5): film conductance in
            // series with half-cell conduction in the solid.
            const double g_conv = h_conv * side_area;
            const double g_cond = k * side_area / (pitch / 2.0);
            add_pair(i, j, series(g_conv, g_cond));
          }
          // liquid–liquid: advection only, handled below.
        }

        // Vertical coupling with the layer above.
        if (l + 1 < layer_count) {
          const Layer& above = stack.layer(l + 1);
          const bool above_channel = above.kind == LayerKind::kChannel;
          const CoolingNetwork* net_above =
              above_channel
                  ? &networks_[static_cast<std::size_t>(above.channel_index)]
                  : nullptr;
          const std::size_t j = node(l + 1, r, c);
          const bool j_liquid = above_channel && net_above->is_liquid(r, c);
          LCN_ASSERT(!(i_liquid && j_liquid),
                     "adjacent channel layers are rejected by the stack");

          const double g_i =
              i_liquid ? h_conv * cell_area
                       : k * cell_area / (t / 2.0);
          double g_j;
          if (j_liquid) {
            const ChannelGeometry geom_above = problem_.channel_geometry(l + 1);
            g_j = convective_coefficient(geom_above, problem_.coolant) *
                  cell_area;
          } else {
            g_j = above.material.conductivity * cell_area /
                  (above.thickness / 2.0);
          }
          add_pair(i, j, series(g_i, g_j));
        }
      }
    }

    // Liquid–liquid advection (Eq. 6, central differencing) and ports.
    if (is_channel) {
      const double cv = problem_.coolant.volumetric_heat;
      for (std::size_t li = 0; li < flow->liquid_cells.size(); ++li) {
        const CellCoord cc = grid.coord(flow->liquid_cells[li]);
        const std::size_t i = node(l, cc.row, cc.col);
        // East/south directed flows cover each liquid pair exactly once.
        const double q_pair[2] = {flow->q_east[li] * p_sys,
                                  flow->q_south[li] * p_sys};
        const int nbr[2][2] = {{cc.row, cc.col + 1}, {cc.row + 1, cc.col}};
        for (int d = 0; d < 2; ++d) {
          const double q = q_pair[d];  // signed flow i -> j
          if (q == 0.0) continue;
          const std::size_t j = node(l, nbr[d][0], nbr[d][1]);
          // Energy balance row i: -C_v·F_ji·(T_i+T_j)/2 with F_ji = -q.
          triplets.add(i, i, cv * q / 2.0);
          triplets.add(i, j, cv * q / 2.0);
          // Row j: F_ij = +q.
          triplets.add(j, j, -cv * q / 2.0);
          triplets.add(j, i, -cv * q / 2.0);
        }
      }
      for (std::size_t p = 0; p < net->ports().size(); ++p) {
        const Port& port = net->ports()[p];
        const std::size_t i = node(l, port.row, port.col);
        const double q = flow->port_flow[p] * p_sys;
        if (port.kind == PortKind::kInlet) {
          // Inlet face temperature is fixed at T_in: the advected enthalpy
          // C_v·Q·T_in is a constant heat inflow.
          out.rhs[i] += cv * q * problem_.inlet_temperature;
          out.inlet_flow_total += q;
        } else {
          // Outlet face leaves at the cell temperature T_i (paper §2.2):
          // -C_v·(-Q)·T_i = +C_v·Q·T_i on the left-hand side.
          triplets.add(i, i, cv * q);
          out.outlet_terms.emplace_back(i, q);
        }
      }
    }

    // Power injection in source layers.
    if (layer.kind == LayerKind::kSource) {
      const PowerMap& map =
          problem_.source_power[static_cast<std::size_t>(layer.source_index)];
      for (int r = 0; r < grid.rows(); ++r) {
        for (int c = 0; c < grid.cols(); ++c) {
          out.rhs[node(l, r, c)] += map.at(r, c);
        }
      }
    }

    // Ambient sink on the top surface.
    if (l == layer_count - 1 && problem_.ambient_conductance > 0.0) {
      for (int r = 0; r < grid.rows(); ++r) {
        for (int c = 0; c < grid.cols(); ++c) {
          const std::size_t i = node(l, r, c);
          const double g = problem_.ambient_conductance * cell_area;
          triplets.add(i, i, g);
          out.rhs[i] += g * problem_.ambient_temperature;
        }
      }
    }
  }

  // Source-node maps (row-major cell order).
  for (int l = 0; l < layer_count; ++l) {
    if (stack.layer(l).kind != LayerKind::kSource) continue;
    std::vector<std::size_t> nodes;
    nodes.reserve(ncells);
    for (std::size_t cell = 0; cell < ncells; ++cell) {
      nodes.push_back(static_cast<std::size_t>(l) * ncells + cell);
    }
    out.source_nodes.push_back(std::move(nodes));
  }

  out.matrix = triplets.to_csr();
  return out;
}

ThermalField Thermal4RM::simulate(double p_sys) const {
  return solve_steady(assemble(p_sys));
}

}  // namespace lcn
