#include "thermal/model_4rm.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace lcn {

namespace {

/// Series combination g1 || g2 = g1·g2/(g1+g2) (paper Eq. 5/7 notation).
double series(double g1, double g2) {
  LCN_ASSERT(g1 >= 0.0 && g2 >= 0.0, "conductances must be non-negative");
  if (g1 <= 0.0 || g2 <= 0.0) return 0.0;
  return g1 * g2 / (g1 + g2);
}

}  // namespace

Thermal4RM::Thermal4RM(CoolingProblem problem,
                       std::vector<CoolingNetwork> networks)
    : problem_(std::move(problem)), networks_(std::move(networks)) {
  problem_.validate();
  LCN_REQUIRE(static_cast<int>(networks_.size()) ==
                  problem_.stack.channel_count(),
              "one cooling network per channel layer required");
  for (const CoolingNetwork& net : networks_) {
    LCN_REQUIRE(net.grid() == problem_.grid,
                "network grid must match the problem grid");
  }
  for (int layer : problem_.stack.channel_layers()) {
    const int ch = problem_.stack.layer(layer).channel_index;
    const FlowSolver solver(networks_[static_cast<std::size_t>(ch)],
                            problem_.channel_geometry(layer),
                            problem_.coolant, problem_.flow_options);
    flows_.push_back(solver.solve(1.0));
  }
}

std::size_t Thermal4RM::node_count() const {
  return static_cast<std::size_t>(problem_.stack.layer_count()) *
         problem_.grid.cell_count();
}

std::size_t Thermal4RM::node(int layer, int row, int col) const {
  LCN_REQUIRE(layer >= 0 && layer < problem_.stack.layer_count(),
              "layer out of range");
  return static_cast<std::size_t>(layer) * problem_.grid.cell_count() +
         problem_.grid.index(row, col);
}

double Thermal4RM::system_flow(double p_sys) const {
  double q = 0.0;
  for (const FlowSolution& flow : flows_) q += flow.system_flow * p_sys;
  return q;
}

double Thermal4RM::pumping_power(double p_sys) const {
  return p_sys * system_flow(p_sys);
}

AssembledThermal Thermal4RM::assemble(double p_sys) const {
  LCN_TRACE_SPAN_FINE("assemble_4rm");
  return plan().assemble(p_sys);
}

const ThermalAssemblyPlan& Thermal4RM::plan() const {
  std::lock_guard<std::mutex> lock(*plan_mutex_);
  if (!plan_) plan_ = build_plan();
  return *plan_;
}

std::shared_ptr<const ThermalAssemblyPlan> Thermal4RM::build_plan() const {
  const Grid2D& grid = problem_.grid;
  const Stack& stack = problem_.stack;
  const std::size_t ncells = grid.cell_count();
  const int layer_count = stack.layer_count();
  const std::size_t n = node_count();
  const double pitch = grid.pitch();
  const double cell_area = pitch * pitch;

  auto plan = std::make_shared<ThermalAssemblyPlan>();
  plan->capacitance.assign(n, 0.0);
  plan->map_rows = grid.rows();
  plan->map_cols = grid.cols();
  plan->volumetric_heat = problem_.coolant.volumetric_heat;
  plan->inlet_temperature = problem_.inlet_temperature;

  // Node coordinates for geometric multigrid: 4RM nodes are exactly the
  // (layer, row, col) lattice.
  {
    auto hint = std::make_shared<sparse::MgGridHint>();
    hint->layer.reserve(n);
    hint->row.reserve(n);
    hint->col.reserve(n);
    for (int l = 0; l < layer_count; ++l) {
      for (int r = 0; r < grid.rows(); ++r) {
        for (int c = 0; c < grid.cols(); ++c) {
          hint->layer.push_back(l);
          hint->row.push_back(r);
          hint->col.push_back(c);
        }
      }
    }
    plan->mg_hint = std::move(hint);
  }

  // Per-layer context shared by every row block of the layer.
  struct LayerCtx {
    const Layer* layer = nullptr;
    const CoolingNetwork* net = nullptr;
    const FlowSolution* flow = nullptr;
    bool is_channel = false;
    double h_conv = 0.0;
    double k = 0.0;       // conductivity
    double t = 0.0;       // thickness
    double side_area = 0.0;  // face between in-plane neighbors
  };
  std::vector<LayerCtx> ctx(static_cast<std::size_t>(layer_count));
  for (int l = 0; l < layer_count; ++l) {
    LayerCtx& lc = ctx[static_cast<std::size_t>(l)];
    lc.layer = &stack.layer(l);
    lc.is_channel = lc.layer->kind == LayerKind::kChannel;
    if (lc.is_channel) {
      lc.net = &networks_[static_cast<std::size_t>(lc.layer->channel_index)];
      lc.flow = &flows_[static_cast<std::size_t>(lc.layer->channel_index)];
      lc.h_conv = convective_coefficient(problem_.channel_geometry(l),
                                         problem_.coolant);
    }
    lc.k = lc.layer->material.conductivity;
    lc.t = lc.layer->thickness;
    lc.side_area = pitch * lc.t;
  }

  // The per-cell conduction loop dominates assembly cost, so it is split
  // into fixed-size row blocks fanned out across the thread pool. The block
  // layout is independent of the thread count and blocks are merged back in
  // canonical (layer, row) order, so the triplet sequence — and therefore
  // the CSR matrix — is bit-identical for every LCN_THREADS setting.
  constexpr int kBlockRows = 16;
  struct RowBlock {
    int layer = 0;
    int row0 = 0;
    int row1 = 0;  // exclusive
  };
  std::vector<RowBlock> blocks;
  for (int l = 0; l < layer_count; ++l) {
    for (int r0 = 0; r0 < grid.rows(); r0 += kBlockRows) {
      blocks.push_back({l, r0, std::min(r0 + kBlockRows, grid.rows())});
    }
  }
  std::vector<ThermalAssemblyPlan::Emitter> block_ems(blocks.size());

  global_pool().parallel_for(blocks.size(), [&](std::size_t bi) {
    const RowBlock& block = blocks[bi];
    const int l = block.layer;
    const LayerCtx& lc = ctx[static_cast<std::size_t>(l)];
    ThermalAssemblyPlan::Emitter& em = block_ems[bi];
    auto add_pair = [&em](std::size_t i, std::size_t j, double g) {
      if (g <= 0.0) return;
      em.add_const(i, i, g);
      em.add_const(j, j, g);
      em.add_const(i, j, -g);
      em.add_const(j, i, -g);
    };

    for (int r = block.row0; r < block.row1; ++r) {
      for (int c = 0; c < grid.cols(); ++c) {
        const std::size_t i = node(l, r, c);
        const bool i_liquid = lc.is_channel && lc.net->is_liquid(r, c);

        // Heat capacity (each node written by exactly one block).
        plan->capacitance[i] =
            cell_area * lc.t *
            (i_liquid ? problem_.coolant.volumetric_heat
                      : lc.layer->material.volumetric_heat);

        // In-plane coupling with east and south neighbors (each pair once).
        const int nbr[2][2] = {{r, c + 1}, {r + 1, c}};
        for (const auto& nb : nbr) {
          if (!grid.in_bounds(nb[0], nb[1])) continue;
          const std::size_t j = node(l, nb[0], nb[1]);
          const bool j_liquid =
              lc.is_channel && lc.net->is_liquid(nb[0], nb[1]);
          if (!i_liquid && !j_liquid) {
            // solid–solid conduction (Eq. 4): g = k·A/l.
            add_pair(i, j, lc.k * lc.side_area / pitch);
          } else if (i_liquid != j_liquid) {
            // solid–liquid through a side wall (Eq. 5): film conductance in
            // series with half-cell conduction in the solid.
            const double g_conv = lc.h_conv * lc.side_area;
            const double g_cond = lc.k * lc.side_area / (pitch / 2.0);
            add_pair(i, j, series(g_conv, g_cond));
          }
          // liquid–liquid: advection only, handled in the serial tail.
        }

        // Vertical coupling with the layer above.
        if (l + 1 < layer_count) {
          const LayerCtx& above = ctx[static_cast<std::size_t>(l + 1)];
          const std::size_t j = node(l + 1, r, c);
          const bool j_liquid =
              above.is_channel && above.net->is_liquid(r, c);
          LCN_ASSERT(!(i_liquid && j_liquid),
                     "adjacent channel layers are rejected by the stack");

          const double g_i = i_liquid ? lc.h_conv * cell_area
                                      : lc.k * cell_area / (lc.t / 2.0);
          const double g_j = j_liquid
                                 ? above.h_conv * cell_area
                                 : above.k * cell_area / (above.t / 2.0);
          add_pair(i, j, series(g_i, g_j));
        }
      }
    }
  });

  // Serial per-layer tail: advection, ports, power injection, ambient sink.
  // All slot emissions are guarded on unit-pressure quantities only, so the
  // recorded pattern is valid for every P_sys > 0.
  std::vector<ThermalAssemblyPlan::Emitter> tails(
      static_cast<std::size_t>(layer_count));
  for (int l = 0; l < layer_count; ++l) {
    const LayerCtx& lc = ctx[static_cast<std::size_t>(l)];
    ThermalAssemblyPlan::Emitter& em = tails[static_cast<std::size_t>(l)];
    using Form = ThermalAssemblyPlan::SlotForm;

    // Liquid–liquid advection (Eq. 6, central differencing) and ports.
    if (lc.is_channel) {
      for (std::size_t li = 0; li < lc.flow->liquid_cells.size(); ++li) {
        const CellCoord cc = grid.coord(lc.flow->liquid_cells[li]);
        const std::size_t i = node(l, cc.row, cc.col);
        // East/south directed flows cover each liquid pair exactly once.
        const double unit_pair[2] = {lc.flow->q_east[li],
                                     lc.flow->q_south[li]};
        const int nbr[2][2] = {{cc.row, cc.col + 1}, {cc.row + 1, cc.col}};
        for (int d = 0; d < 2; ++d) {
          const double unit = unit_pair[d];  // signed unit flow i -> j
          if (unit == 0.0) continue;
          const std::size_t j = node(l, nbr[d][0], nbr[d][1]);
          // Energy balance row i: -C_v·F_ji·(T_i+T_j)/2 with F_ji = -q.
          em.add_flow(i, i, unit, Form::kHalf);
          em.add_flow(i, j, unit, Form::kHalf);
          // Row j: F_ij = +q.
          em.add_flow(j, j, unit, Form::kHalfNeg);
          em.add_flow(j, i, unit, Form::kHalfNeg);
        }
      }
      for (std::size_t p = 0; p < lc.net->ports().size(); ++p) {
        const Port& port = lc.net->ports()[p];
        const std::size_t i = node(l, port.row, port.col);
        const double unit = lc.flow->port_flow[p];
        if (port.kind == PortKind::kInlet) {
          // Inlet face temperature is fixed at T_in: the advected enthalpy
          // C_v·Q·T_in is a constant heat inflow.
          em.add_rhs_flow(i, unit);
          em.add_inflow(unit);
        } else {
          // Outlet face leaves at the cell temperature T_i (paper §2.2):
          // -C_v·(-Q)·T_i = +C_v·Q·T_i on the left-hand side. A fresh
          // traversal drops the zero matrix entry of a flowless outlet but
          // still records the outlet term — mirror both.
          if (unit != 0.0) em.add_flow(i, i, unit, Form::kFull);
          em.add_outlet(i, unit);
        }
      }
    }

    // Power injection in source layers.
    if (lc.layer->kind == LayerKind::kSource) {
      const PowerMap& map = problem_.source_power[static_cast<std::size_t>(
          lc.layer->source_index)];
      for (int r = 0; r < grid.rows(); ++r) {
        for (int c = 0; c < grid.cols(); ++c) {
          em.add_rhs_power(node(l, r, c), map.at(r, c),
                           lc.layer->source_index);
        }
      }
    }

    // Ambient sink on the top surface.
    if (l == layer_count - 1 && problem_.ambient_conductance > 0.0) {
      for (int r = 0; r < grid.rows(); ++r) {
        for (int c = 0; c < grid.cols(); ++c) {
          const std::size_t i = node(l, r, c);
          const double g = problem_.ambient_conductance * cell_area;
          em.add_const(i, i, g);
          em.add_rhs_const(i, g * problem_.ambient_temperature);
        }
      }
    }
  }

  // Merge in canonical order: layer-major, row blocks first, then the
  // layer's tail — the exact sequence the serial assembly used to emit.
  std::vector<const ThermalAssemblyPlan::Emitter*> parts;
  parts.reserve(blocks.size() + static_cast<std::size_t>(layer_count));
  std::size_t bi = 0;
  for (int l = 0; l < layer_count; ++l) {
    for (; bi < blocks.size() && blocks[bi].layer == l; ++bi) {
      parts.push_back(&block_ems[bi]);
    }
    parts.push_back(&tails[static_cast<std::size_t>(l)]);
  }

  // Source-node maps (row-major cell order).
  for (int l = 0; l < layer_count; ++l) {
    if (stack.layer(l).kind != LayerKind::kSource) continue;
    std::vector<std::size_t> nodes;
    nodes.reserve(ncells);
    for (std::size_t cell = 0; cell < ncells; ++cell) {
      nodes.push_back(static_cast<std::size_t>(l) * ncells + cell);
    }
    plan->source_nodes.push_back(std::move(nodes));
  }

  plan->finalize(n, parts);
  return plan;
}

ThermalField Thermal4RM::simulate(double p_sys) const {
  return solve_steady(assemble(p_sys));
}

}  // namespace lcn
