#include "thermal/image.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace lcn {

namespace {

std::string render_pgm(const std::vector<double>& values, int rows, int cols,
                       int upscale) {
  LCN_REQUIRE(upscale >= 1, "upscale must be >= 1");
  double lo = 1e300;
  double hi = -1e300;
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = std::max(hi - lo, 1e-300);

  std::ostringstream os;
  os << "P5\n" << cols * upscale << ' ' << rows * upscale << "\n255\n";
  for (int r = 0; r < rows; ++r) {
    std::string row_pixels;
    row_pixels.reserve(static_cast<std::size_t>(cols) *
                       static_cast<std::size_t>(upscale));
    for (int c = 0; c < cols; ++c) {
      const double v = values[static_cast<std::size_t>(r) * cols + c];
      const int level =
          std::clamp(static_cast<int>((v - lo) / span * 255.0), 0, 255);
      row_pixels.append(static_cast<std::size_t>(upscale),
                        static_cast<char>(level));
    }
    for (int k = 0; k < upscale; ++k) os << row_pixels;
  }
  return os.str();
}

}  // namespace

std::string temperature_pgm(const ThermalField& field, int source_layer,
                            int upscale) {
  LCN_REQUIRE(source_layer >= 0 &&
                  source_layer < static_cast<int>(field.source_maps.size()),
              "source layer out of range");
  return render_pgm(field.source_maps[static_cast<std::size_t>(source_layer)],
                    field.map_rows, field.map_cols, upscale);
}

std::string power_pgm(const PowerMap& map, int upscale) {
  return render_pgm(map.cells(), map.grid().rows(), map.grid().cols(),
                    upscale);
}

}  // namespace lcn
