// 2-register-model (porous-medium) thermal simulation (paper §2.3).
//
// The horizontal discretization is coarsened to blocks of m×m basic cells.
// In a channel layer every block is represented by up to two nodes — one
// lumped solid node and one lumped liquid node; in solid layers a block is a
// single node. Couplings:
//   solid–solid in-plane   effective conductance through *complete
//                          conducting paths* only (Eq. 7): a lane of cells
//                          running from the block center to the interface
//                          conducts only if every cell on it is solid;
//   solid–liquid           vertical only; the side-wall area is folded into
//                          the top/bottom exchange (Eq. 8), g*_sl,side = 0;
//   liquid–liquid          advection on the *net* flow rate across the block
//                          interface (aggregated from the basic-cell flow
//                          field), central differencing as in Eq. 6.
// An m×m discretization shrinks the system ~m² and accelerates simulation
// by more than m² (Fig. 9(b)), at a small accuracy cost (Fig. 9(a)).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "network/cooling_network.hpp"
#include "thermal/assembly_plan.hpp"
#include "thermal/field.hpp"
#include "thermal/problem.hpp"

namespace lcn {

class Thermal2RM {
 public:
  /// `m` is the thermal-cell size in basic cells (e.g. 4 => 400 µm thermal
  /// cells on the 100 µm benchmark grid). m = 1 recovers a 4RM-resolution
  /// grid (though solid/liquid lumping rules still differ slightly).
  Thermal2RM(CoolingProblem problem, std::vector<CoolingNetwork> networks,
             int m);

  /// Assemble at P_sys. First call builds the cached AssemblyPlan (symbolic
  /// pattern + P_sys-invariant values); every call — including the first —
  /// produces a system bit-identical to the historical fresh traversal.
  AssembledThermal assemble(double p_sys) const;
  ThermalField simulate(double p_sys) const;

  /// The cached symbolic assembly plan (built on first use; shared across
  /// copies of this model).
  const ThermalAssemblyPlan& plan() const;

  double pumping_power(double p_sys) const;
  double system_flow(double p_sys) const;

  int thermal_cell_size() const { return m_; }
  int block_rows() const { return block_rows_; }
  int block_cols() const { return block_cols_; }
  std::size_t node_count() const { return node_total_; }

  const CoolingProblem& problem() const { return problem_; }
  const FlowSolution& flow(int channel_index) const {
    return flows_.at(static_cast<std::size_t>(channel_index));
  }

  /// Node ids; -1 when the node does not exist (e.g. a block with no liquid
  /// cell has no liquid node).
  std::ptrdiff_t solid_node(int layer, int block_row, int block_col) const;
  std::ptrdiff_t liquid_node(int layer, int block_row, int block_col) const;

 private:
  struct BlockStats {            // per channel layer, per block
    int liquid_cells = 0;
    int solid_cells = 0;
    double side_area = 0.0;      ///< lateral liquid wall area, m²
    double unit_inflow = 0.0;    ///< inlet flow at unit pressure
    double unit_outflow = 0.0;
    double unit_flow_east = 0.0;  ///< net flow to the east block, unit P_sys
    double unit_flow_south = 0.0;
    int lanes[4] = {0, 0, 0, 0};  ///< conducting lanes toward W/E/N/S
  };

  std::size_t block_index(int block_row, int block_col) const {
    return static_cast<std::size_t>(block_row) *
               static_cast<std::size_t>(block_cols_) +
           static_cast<std::size_t>(block_col);
  }
  /// Cell extents of a block (inclusive).
  CellRect block_rect(int block_row, int block_col) const;

  void build_nodes();
  void build_block_stats();
  std::shared_ptr<const ThermalAssemblyPlan> build_plan() const;

  CoolingProblem problem_;
  std::vector<CoolingNetwork> networks_;
  std::vector<FlowSolution> flows_;
  int m_ = 1;
  int block_rows_ = 0;
  int block_cols_ = 0;
  std::size_t node_total_ = 0;
  /// node_id_[layer][block*2 + phase] with phase 0 = solid, 1 = liquid.
  std::vector<std::vector<std::ptrdiff_t>> node_id_;
  /// stats_[channel_index][block]
  std::vector<std::vector<BlockStats>> stats_;
  /// Lazily-built assembly plan; shared_ptr members keep the model copyable
  /// (copies share the cached plan — it depends only on immutable state).
  mutable std::shared_ptr<std::mutex> plan_mutex_ =
      std::make_shared<std::mutex>();
  mutable std::shared_ptr<const ThermalAssemblyPlan> plan_;
};

}  // namespace lcn
