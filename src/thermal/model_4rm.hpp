// 4-register-model thermal simulation (paper §2.2).
//
// Thermal cells conform to the basic-cell grid in every layer: each cell of
// each layer is one node. Heat transfer:
//   solid–solid   (Eq. 4)  conduction through cuboids,
//   solid–liquid  (Eq. 5)  convective film in series with half-cell
//                          conduction, both vertically (top/bottom channel
//                          walls) and in-plane (side walls),
//   liquid–liquid (Eq. 6)  advection with central differencing on the local
//                          flow rates from the flow solver.
// This is the accurate/sign-off simulator the 2RM model is validated against
// (Fig. 9) and matches the ICCAD 2015 contest extension of 3D-ICE.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "thermal/assembly_plan.hpp"
#include "thermal/field.hpp"
#include "thermal/problem.hpp"
#include "network/cooling_network.hpp"

namespace lcn {

class Thermal4RM {
 public:
  /// `networks` carries one cooling network per channel layer (ordered by
  /// Layer::channel_index). Unit-pressure flow fields are solved here once;
  /// simulate() scales them to any P_sys (the flow problem is linear).
  Thermal4RM(CoolingProblem problem, std::vector<CoolingNetwork> networks);

  /// Assemble the steady RC system at a given system pressure drop. First
  /// call builds the cached AssemblyPlan (symbolic pattern + P_sys-invariant
  /// values); every call — including the first — produces a system
  /// bit-identical to the historical fresh traversal.
  AssembledThermal assemble(double p_sys) const;

  /// The cached symbolic assembly plan (built on first use; shared across
  /// copies of this model).
  const ThermalAssemblyPlan& plan() const;

  /// Assemble + solve + extract metrics.
  ThermalField simulate(double p_sys) const;

  /// Total pumping power over all channel layers at P_sys (Eq. 10; layers
  /// share the same pressure drop and their flows add).
  double pumping_power(double p_sys) const;
  /// Total system volumetric flow at P_sys.
  double system_flow(double p_sys) const;

  const CoolingProblem& problem() const { return problem_; }
  const std::vector<CoolingNetwork>& networks() const { return networks_; }
  const FlowSolution& flow(int channel_index) const {
    return flows_.at(static_cast<std::size_t>(channel_index));
  }

  std::size_t node_count() const;

  /// Node id of (layer, row, col) — exposed for tests and map extraction.
  std::size_t node(int layer, int row, int col) const;

 private:
  std::shared_ptr<const ThermalAssemblyPlan> build_plan() const;

  CoolingProblem problem_;
  std::vector<CoolingNetwork> networks_;
  std::vector<FlowSolution> flows_;  ///< unit-pressure, per channel layer
  /// Lazily-built assembly plan; shared_ptr members keep the model copyable
  /// (copies share the cached plan — it depends only on immutable state).
  mutable std::shared_ptr<std::mutex> plan_mutex_ =
      std::make_shared<std::mutex>();
  mutable std::shared_ptr<const ThermalAssemblyPlan> plan_;
};

}  // namespace lcn
