// One-time assembly plans for the thermal simulators (DESIGN.md §S18).
//
// For a fixed (problem, network, m) every Thermal2RM/Thermal4RM assembly has
// the same sparsity pattern and the same conduction values — only the
// advection entries, the inlet enthalpy terms and the outlet bookkeeping
// scale with P_sys (the flow problem is linear, so the unit-pressure flow
// field times P_sys is the flow field at P_sys). A ThermalAssemblyPlan
// captures the traversal once: the symbolic pattern (via SparsityPlan), the
// constant values, and for every flow-dependent slot the unit flow plus the
// exact arithmetic form the traversal used. assemble(p_sys) is then a pure
// numeric refill.
//
// Bit-identity contract: ThermalAssemblyPlan::assemble(p) reproduces the
// fresh-traversal AssembledThermal bit-for-bit. Slots are recorded in the
// canonical emission order (the same order the fresh traversal merges its
// task-local buffers), values are recomputed with the identical expression
// shapes (e.g. `cv * (unit * p) / 2.0`, never a pre-multiplied coefficient —
// FP multiplication is not associative), and RHS contributions are replayed
// as the original ordered sequence of `+=` operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sparse/sparsity_plan.hpp"
#include "thermal/boundary.hpp"
#include "thermal/field.hpp"

namespace lcn {

class ThermalAssemblyPlan {
 public:
  /// How a matrix slot's value is produced at refill time.
  enum class SlotForm : std::uint8_t {
    kConst = 0,  ///< value, independent of P_sys
    kHalf,       ///< cv * (unit * P) / 2.0   (advection, row i)
    kHalfNeg,    ///< -cv * (unit * P) / 2.0  (advection, row j)
    kFull,       ///< cv * (unit * P)         (outlet self-term)
  };

  /// One ordered RHS contribution: a constant addend (ambient), a die-power
  /// addend (scalable per source layer by a BoundaryState), or an inlet
  /// enthalpy term rhs[node] += cv·(unit·P)·T_in.
  struct RhsOp {
    std::size_t node;
    double value;  ///< constant addend, or unit flow when is_flow
    bool is_flow;
    /// Source layer of a power addend (BoundaryState::power_scale index);
    /// -1 for boundary-invariant constants (ambient) and for flow ops.
    int layer;
  };

  /// Task-local recording buffer. The model traversal fills one Emitter per
  /// parallel task (mirroring its triplet-list parts) and merges them in
  /// canonical order, so the recorded slot sequence equals the serial
  /// emission sequence for any thread count.
  struct Emitter {
    std::vector<sparse::Triplet> pattern;  ///< values unused (placeholders)
    std::vector<double> slot_value;
    std::vector<SlotForm> slot_form;
    std::vector<RhsOp> rhs_ops;
    std::vector<std::pair<std::size_t, double>> outlet_units;
    std::vector<double> inflow_units;

    /// P_sys-invariant matrix entry. Zero values are dropped exactly like
    /// TripletList::add does in a fresh assembly.
    void add_const(std::size_t i, std::size_t j, double v) {
      if (v == 0.0) return;
      pattern.push_back({i, j, 0.0});
      slot_value.push_back(v);
      slot_form.push_back(SlotForm::kConst);
    }
    /// Flow-dependent matrix entry; `unit` is the unit-pressure flow and
    /// `form` the expression the fresh traversal evaluates.
    void add_flow(std::size_t i, std::size_t j, double unit, SlotForm form) {
      pattern.push_back({i, j, 0.0});
      slot_value.push_back(unit);
      slot_form.push_back(form);
    }
    void add_rhs_const(std::size_t node, double v) {
      rhs_ops.push_back({node, v, false, -1});
    }
    /// Die-power addend, tagged with its source layer so a BoundaryState can
    /// scale it at refill time. Nominal assembly adds the value verbatim.
    void add_rhs_power(std::size_t node, double v, int source_layer) {
      rhs_ops.push_back({node, v, false, source_layer});
    }
    void add_rhs_flow(std::size_t node, double unit) {
      rhs_ops.push_back({node, unit, true, -1});
    }
    void add_outlet(std::size_t node, double unit) {
      outlet_units.emplace_back(node, unit);
    }
    void add_inflow(double unit) { inflow_units.push_back(unit); }
  };

  // P_sys-invariant skeleton, copied into every assembled system.
  std::size_t n = 0;
  int map_rows = 0;
  int map_cols = 0;
  double volumetric_heat = 0.0;  ///< coolant C_v
  double inlet_temperature = 0.0;
  sparse::Vector capacitance;
  std::vector<std::vector<std::size_t>> source_nodes;
  /// Structured-grid coordinates per node for geometric multigrid (§S20);
  /// shared (not copied) into every assembled system. Models that cannot
  /// provide one leave it null and multigrid coarsens algebraically.
  std::shared_ptr<const sparse::MgGridHint> mg_hint;

  /// Concatenate task-local emitters in canonical order and run the symbolic
  /// analysis. Called once by the owning model after its traversal.
  void finalize(std::size_t nodes, const std::vector<const Emitter*>& parts);

  /// Numeric refill: bit-identical to a fresh traversal at `p_sys`.
  AssembledThermal assemble(double p_sys) const;

  /// Refill under a per-step boundary: inlet enthalpy terms use
  /// `boundary.inlet_temperature` and power addends are scaled per source
  /// layer. With the plan's nominal inlet and no power scales this is
  /// bit-identical to assemble(p_sys) (scaling by an exact 1.0 is exact).
  AssembledThermal assemble(double p_sys, const BoundaryState& boundary) const;

  /// Rewrite only `io.rhs` and `io.inlet_temperature` for a new boundary —
  /// the matrix, outlet terms and inlet flow depend on P_sys alone, so a
  /// step that changes power or inlet temperature but not pressure skips
  /// the matrix refill entirely. `io` must have been assembled from this
  /// plan at the same `p_sys`.
  void refill_rhs(double p_sys, const BoundaryState& boundary,
                  AssembledThermal& io) const;

  /// The nominal per-step boundary (the problem's fixed inlet, unit power).
  BoundaryState nominal_boundary() const {
    return BoundaryState{inlet_temperature, {}};
  }

  const sparse::SparsityPlan& pattern() const { return pattern_; }

 private:
  /// Replay the ordered RHS `+=` sequence under a boundary into `rhs`.
  void replay_rhs(double p_sys, const BoundaryState& boundary,
                  sparse::Vector& rhs) const;

  std::vector<double> slot_value_;
  std::vector<SlotForm> slot_form_;
  std::vector<RhsOp> rhs_ops_;
  std::vector<std::pair<std::size_t, double>> outlet_units_;
  std::vector<double> inflow_units_;
  sparse::SparsityPlan pattern_;
};

}  // namespace lcn
