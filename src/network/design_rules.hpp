// Design-rule checking for cooling networks (paper §3):
//  (1) TSV-reserved cells must stay solid (alternating pattern);
//  (2) inlets/outlets only on the chip edges;
//  (3) at most one continuous inlet manifold and one continuous outlet
//      manifold per side — the openings on a side, read in boundary order,
//      must form at most one run of inlets and one run of outlets, not
//      interleaved (this is what rules out the impractical
//      alternating-direction straight channels);
// plus feasibility conditions: at least one inlet and one outlet exist and
// every liquid component reaches both (otherwise the flow system is
// singular), and no liquid in a case-specific restricted region.
#pragma once

#include <string>
#include <vector>

#include "network/cooling_network.hpp"

namespace lcn {

struct DesignRules {
  bool enforce_tsv_keepout = true;
  /// Optional no-channel region (ICCAD case 3); empty rect disables it.
  CellRect forbidden;
};

struct DrcResult {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

DrcResult check_design_rules(const CoolingNetwork& net,
                             const DesignRules& rules = {});

/// Convenience: throws lcn::ContractError listing violations when not clean.
void require_clean(const CoolingNetwork& net, const DesignRules& rules = {});

}  // namespace lcn
