// Geometric statistics of a cooling network: channel length, wall areas,
// bends, branch/merge points, TSV utilization. Used for reporting and for
// reasoning about the §3 trade-off factors (wall contact area vs fluid
// resistance).
#pragma once

#include "network/cooling_network.hpp"

namespace lcn {

struct NetworkStats {
  std::size_t liquid_cells = 0;
  std::size_t tsv_cells = 0;
  std::size_t solid_cells = 0;

  double channel_length = 0.0;   ///< m, total liquid cell span
  double liquid_volume = 0.0;    ///< m³ (needs channel height)
  double top_wall_area = 0.0;    ///< m² (one face)
  double side_wall_area = 0.0;   ///< m², liquid faces against solid/boundary

  std::size_t straight_cells = 0;  ///< exactly two opposite liquid neighbors
  std::size_t bend_cells = 0;      ///< exactly two orthogonal liquid neighbors
  std::size_t branch_cells = 0;    ///< three or more liquid neighbors
  std::size_t dead_end_cells = 0;  ///< at most one liquid neighbor, no port

  std::size_t inlet_count = 0;
  std::size_t outlet_count = 0;

  /// Fraction of the channel-layer area occupied by liquid.
  double liquid_fraction = 0.0;
};

NetworkStats compute_network_stats(const CoolingNetwork& net,
                                   double channel_height);

}  // namespace lcn
