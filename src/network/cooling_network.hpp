// Cooling network representation (paper §2.1): a 2D grid of basic cells in a
// channel layer, each solid, TSV-reserved, or liquid, plus inlet/outlet ports
// on boundary liquid cells. This is the design variable `N` the optimizer
// searches over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/grid.hpp"

namespace lcn {

enum class CellKind : std::uint8_t { kSolid = 0, kTsv = 1, kLiquid = 2 };
enum class PortKind : std::uint8_t { kInlet = 0, kOutlet = 1 };

/// An opening on the chip edge where coolant enters or leaves a boundary
/// liquid cell through the given side surface.
struct Port {
  int row = 0;
  int col = 0;
  Side side = Side::kWest;
  PortKind kind = PortKind::kInlet;

  friend bool operator==(const Port&, const Port&) = default;
};

class CoolingNetwork {
 public:
  CoolingNetwork() = default;
  /// All cells start solid. When `alternating_tsvs` is set, cells at odd
  /// row & odd column are reserved for TSVs (paper design rule 1, Fig. 2).
  explicit CoolingNetwork(const Grid2D& grid, bool alternating_tsvs = true);

  const Grid2D& grid() const { return grid_; }

  CellKind kind(int row, int col) const {
    return cells_[grid_.index(row, col)];
  }
  bool is_liquid(int row, int col) const {
    return kind(row, col) == CellKind::kLiquid;
  }

  /// Carve a liquid cell; throws ContractError on a TSV-reserved cell.
  void set_liquid(int row, int col);
  /// Revert a cell to solid (ports on it must be removed by the caller).
  void set_solid(int row, int col);

  void add_port(const Port& port);
  const std::vector<Port>& ports() const { return ports_; }
  void clear_ports() { ports_.clear(); }
  /// Drop every port opening into the cell; returns how many were removed.
  /// Pairs with set_solid when a fault or an edit removes a boundary cell.
  std::size_t remove_ports_at(int row, int col);

  std::size_t liquid_count() const;
  /// Linear indices (row-major) of all liquid cells, ascending.
  std::vector<std::size_t> liquid_cells() const;

  /// Network mapped through a D4 symmetry (grid may transpose).
  CoolingNetwork transformed(const D4Transform& t) const;

  /// Human-readable cell map (rows of S/T/L characters) + port list.
  std::string to_text() const;
  static CoolingNetwork from_text(const std::string& text);

  /// 64-bit content hash over grid dimensions, cell kinds, and ports.
  /// Networks that compare equal hash equal; used as the evaluator-cache
  /// key so repeated SA probes of an identical design never re-solve.
  std::uint64_t content_hash() const;

  friend bool operator==(const CoolingNetwork&, const CoolingNetwork&) = default;

 private:
  Grid2D grid_;
  std::vector<CellKind> cells_;
  std::vector<Port> ports_;
};

/// True when the cell is reserved for TSVs under the alternating pattern.
inline bool is_tsv_cell(int row, int col) {
  return (row % 2 == 1) && (col % 2 == 1);
}

}  // namespace lcn
