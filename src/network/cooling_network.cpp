#include "network/cooling_network.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"

namespace lcn {

CoolingNetwork::CoolingNetwork(const Grid2D& grid, bool alternating_tsvs)
    : grid_(grid), cells_(grid.cell_count(), CellKind::kSolid) {
  if (alternating_tsvs) {
    for (int r = 0; r < grid_.rows(); ++r) {
      for (int c = 0; c < grid_.cols(); ++c) {
        if (is_tsv_cell(r, c)) cells_[grid_.index(r, c)] = CellKind::kTsv;
      }
    }
  }
}

void CoolingNetwork::set_liquid(int row, int col) {
  LCN_REQUIRE(grid_.in_bounds(row, col), "set_liquid: cell out of bounds");
  CellKind& cell = cells_[grid_.index(row, col)];
  LCN_REQUIRE(cell != CellKind::kTsv,
              "cannot carve a channel through a TSV-reserved cell");
  cell = CellKind::kLiquid;
}

void CoolingNetwork::set_solid(int row, int col) {
  LCN_REQUIRE(grid_.in_bounds(row, col), "set_solid: cell out of bounds");
  CellKind& cell = cells_[grid_.index(row, col)];
  if (cell == CellKind::kLiquid) cell = CellKind::kSolid;
}

void CoolingNetwork::add_port(const Port& port) {
  LCN_REQUIRE(grid_.in_bounds(port.row, port.col),
              "port cell out of bounds");
  LCN_REQUIRE(grid_.on_side(port.row, port.col, port.side),
              "port must sit on the matching chip edge");
  LCN_REQUIRE(is_liquid(port.row, port.col),
              "port must open into a liquid cell");
  for (const Port& existing : ports_) {
    LCN_REQUIRE(!(existing.row == port.row && existing.col == port.col &&
                  existing.side == port.side),
                "duplicate port on the same cell surface");
  }
  ports_.push_back(port);
}

std::size_t CoolingNetwork::remove_ports_at(int row, int col) {
  LCN_REQUIRE(grid_.in_bounds(row, col), "remove_ports_at: cell out of bounds");
  const std::size_t before = ports_.size();
  std::erase_if(ports_, [row, col](const Port& port) {
    return port.row == row && port.col == col;
  });
  return before - ports_.size();
}

std::size_t CoolingNetwork::liquid_count() const {
  return static_cast<std::size_t>(
      std::count(cells_.begin(), cells_.end(), CellKind::kLiquid));
}

std::vector<std::size_t> CoolingNetwork::liquid_cells() const {
  std::vector<std::size_t> out;
  out.reserve(liquid_count());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] == CellKind::kLiquid) out.push_back(i);
  }
  return out;
}

CoolingNetwork CoolingNetwork::transformed(const D4Transform& t) const {
  CoolingNetwork out;
  out.grid_ = t.transform_grid(grid_);
  out.cells_.assign(out.grid_.cell_count(), CellKind::kSolid);
  for (int r = 0; r < grid_.rows(); ++r) {
    for (int c = 0; c < grid_.cols(); ++c) {
      const CellCoord image = t.apply(grid_, CellCoord{r, c});
      out.cells_[out.grid_.index(image.row, image.col)] =
          cells_[grid_.index(r, c)];
    }
  }
  for (const Port& port : ports_) {
    const CellCoord image = t.apply(grid_, CellCoord{port.row, port.col});
    out.ports_.push_back({image.row, image.col, t.apply(port.side), port.kind});
  }
  return out;
}

std::string CoolingNetwork::to_text() const {
  std::ostringstream os;
  os << "grid " << grid_.rows() << ' ' << grid_.cols() << ' ' << grid_.pitch()
     << '\n';
  for (int r = 0; r < grid_.rows(); ++r) {
    for (int c = 0; c < grid_.cols(); ++c) {
      switch (kind(r, c)) {
        case CellKind::kSolid: os << 'S'; break;
        case CellKind::kTsv: os << 'T'; break;
        case CellKind::kLiquid: os << 'L'; break;
      }
    }
    os << '\n';
  }
  for (const Port& port : ports_) {
    os << "port " << port.row << ' ' << port.col << ' '
       << side_name(port.side) << ' '
       << (port.kind == PortKind::kInlet ? "in" : "out") << '\n';
  }
  return os.str();
}

CoolingNetwork CoolingNetwork::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  LCN_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "network text is empty");
  const auto head = split(std::string(trim(line)), ' ');
  LCN_REQUIRE(head.size() == 4 && head[0] == "grid",
              "network text must start with `grid rows cols pitch`");
  const int rows = std::stoi(head[1]);
  const int cols = std::stoi(head[2]);
  const double pitch = std::stod(head[3]);

  CoolingNetwork net(Grid2D(rows, cols, pitch), /*alternating_tsvs=*/false);
  for (int r = 0; r < rows; ++r) {
    LCN_REQUIRE(static_cast<bool>(std::getline(is, line)),
                "network text truncated");
    const std::string_view row_text = trim(line);
    LCN_REQUIRE(static_cast<int>(row_text.size()) == cols,
                "network row width mismatch");
    for (int c = 0; c < cols; ++c) {
      switch (row_text[static_cast<std::size_t>(c)]) {
        case 'S': break;
        case 'T': net.cells_[net.grid_.index(r, c)] = CellKind::kTsv; break;
        case 'L': net.set_liquid(r, c); break;
        default:
          throw ContractError("network text: unknown cell character");
      }
    }
  }
  while (std::getline(is, line)) {
    const std::string_view body = trim(line);
    if (body.empty()) continue;
    const auto fields = split(std::string(body), ' ');
    LCN_REQUIRE(fields.size() == 5 && fields[0] == "port",
                "network text: malformed port line");
    Side side = Side::kWest;
    if (fields[3] == "W") side = Side::kWest;
    else if (fields[3] == "E") side = Side::kEast;
    else if (fields[3] == "N") side = Side::kNorth;
    else if (fields[3] == "S") side = Side::kSouth;
    else throw ContractError("network text: unknown side");
    const PortKind kind =
        fields[4] == "in" ? PortKind::kInlet : PortKind::kOutlet;
    net.add_port({std::stoi(fields[1]), std::stoi(fields[2]), side, kind});
  }
  return net;
}

std::uint64_t CoolingNetwork::content_hash() const {
  // FNV-1a over the canonical content; cheap (one pass over the cell map)
  // relative to even a single flow solve.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(grid_.rows()));
  mix(static_cast<std::uint64_t>(grid_.cols()));
  for (const CellKind kind : cells_) mix(static_cast<std::uint64_t>(kind));
  mix(ports_.size());
  for (const Port& port : ports_) {
    mix(static_cast<std::uint64_t>(port.row));
    mix(static_cast<std::uint64_t>(port.col));
    mix(static_cast<std::uint64_t>(port.side));
    mix(static_cast<std::uint64_t>(port.kind));
  }
  return h;
}

}  // namespace lcn
