#include "network/generators.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lcn {

namespace {

void carve_h(CoolingNetwork& net, int row, int c0, int c1) {
  LCN_ASSERT(c0 <= c1, "carve_h: empty span");
  for (int c = c0; c <= c1; ++c) net.set_liquid(row, c);
}

void carve_v(CoolingNetwork& net, int col, int r0, int r1) {
  LCN_ASSERT(r0 <= r1, "carve_v: empty span");
  for (int r = r0; r <= r1; ++r) net.set_liquid(r, col);
}

}  // namespace

CoolingNetwork make_straight_channels(const Grid2D& grid) {
  CoolingNetwork net(grid);
  for (int r = 0; r < grid.rows(); r += 2) {
    carve_h(net, r, 0, grid.cols() - 1);
    net.add_port({r, 0, Side::kWest, PortKind::kInlet});
    net.add_port({r, grid.cols() - 1, Side::kEast, PortKind::kOutlet});
  }
  return net;
}

CoolingNetwork make_alternating_straight(const Grid2D& grid) {
  CoolingNetwork net(grid);
  bool eastward = true;
  for (int r = 0; r < grid.rows(); r += 2) {
    carve_h(net, r, 0, grid.cols() - 1);
    if (eastward) {
      net.add_port({r, 0, Side::kWest, PortKind::kInlet});
      net.add_port({r, grid.cols() - 1, Side::kEast, PortKind::kOutlet});
    } else {
      net.add_port({r, grid.cols() - 1, Side::kEast, PortKind::kInlet});
      net.add_port({r, 0, Side::kWest, PortKind::kOutlet});
    }
    eastward = !eastward;
  }
  return net;
}

CoolingNetwork make_serpentine(const Grid2D& grid) {
  LCN_REQUIRE(grid.rows() >= 3, "serpentine needs at least three rows");
  CoolingNetwork net(grid);
  const int last_col = grid.cols() - 1;
  bool eastward = true;
  int prev_row = -1;
  for (int r = 0; r < grid.rows(); r += 2) {
    carve_h(net, r, 0, last_col);
    if (prev_row >= 0) {
      // Connect to the previous row at the end the previous pass finished on.
      const int join_col = eastward ? 0 : last_col;
      carve_v(net, join_col, prev_row, r);
    }
    prev_row = r;
    eastward = !eastward;
  }
  net.add_port({0, 0, Side::kWest, PortKind::kInlet});
  // The final row flows east when the row count is odd, west otherwise.
  const int final_row = prev_row;
  if (!eastward) {
    // last pass went east
    net.add_port({final_row, last_col, Side::kEast, PortKind::kOutlet});
  } else {
    net.add_port({final_row, 0, Side::kWest, PortKind::kOutlet});
  }
  return net;
}

CoolingNetwork make_comb(const Grid2D& grid) {
  CoolingNetwork net(grid);
  carve_v(net, 0, 0, grid.rows() - 1);
  for (int r = 0; r < grid.rows(); r += 2) {
    carve_h(net, r, 0, grid.cols() - 1);
    net.add_port({r, grid.cols() - 1, Side::kEast, PortKind::kOutlet});
  }
  int inlet_row = (grid.rows() / 2);
  if (inlet_row % 2 == 1) --inlet_row;
  net.add_port({inlet_row, 0, Side::kWest, PortKind::kInlet});
  return net;
}

CoolingNetwork make_modulated_straight(const Grid2D& grid,
                                       const std::vector<bool>& row_enabled) {
  const int channel_rows = (grid.rows() + 1) / 2;
  LCN_REQUIRE(static_cast<int>(row_enabled.size()) == channel_rows,
              "one flag per even row required");
  LCN_REQUIRE(std::count(row_enabled.begin(), row_enabled.end(), true) > 0,
              "at least one channel row must be enabled");
  CoolingNetwork net(grid);
  for (int k = 0; k < channel_rows; ++k) {
    if (!row_enabled[static_cast<std::size_t>(k)]) continue;
    const int r = 2 * k;
    carve_h(net, r, 0, grid.cols() - 1);
    net.add_port({r, 0, Side::kWest, PortKind::kInlet});
    net.add_port({r, grid.cols() - 1, Side::kEast, PortKind::kOutlet});
  }
  return net;
}

std::vector<bool> density_profile_from_power(const PowerMap& map,
                                             int channels_to_keep) {
  const Grid2D& grid = map.grid();
  const int channel_rows = (grid.rows() + 1) / 2;
  LCN_REQUIRE(channels_to_keep >= 1 && channels_to_keep <= channel_rows,
              "channels_to_keep out of range");

  // Power of the band each channel row cools (its row ± 1).
  std::vector<std::pair<double, int>> band_power;
  for (int k = 0; k < channel_rows; ++k) {
    const int r = 2 * k;
    double power = 0.0;
    for (int rr = std::max(0, r - 1);
         rr <= std::min(grid.rows() - 1, r + 1); ++rr) {
      for (int c = 0; c < grid.cols(); ++c) power += map.at(rr, c);
    }
    band_power.emplace_back(power, k);
  }
  std::sort(band_power.begin(), band_power.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<bool> enabled(static_cast<std::size_t>(channel_rows), false);
  for (int i = 0; i < channels_to_keep; ++i) {
    enabled[static_cast<std::size_t>(band_power[static_cast<std::size_t>(i)]
                                         .second)] = true;
  }
  return enabled;
}

int branch_channel_rows(BranchType type) {
  switch (type) {
    case BranchType::kDouble: return 2;
    case BranchType::kTriple: return 3;
    case BranchType::kQuad: return 4;
  }
  return 0;
}

int branch_row_span(BranchType type) {
  return 2 * (branch_channel_rows(type) - 1);
}

std::vector<BranchType> fit_branch_types(int channel_rows) {
  LCN_REQUIRE(channel_rows >= 2, "need at least two channel rows for a tree");
  std::vector<BranchType> types;
  int remaining = channel_rows;
  while (remaining >= 4) {
    // Keep enough rows for a legal finisher: remainders 1 cannot be tiled by
    // a single tree, so split them as triple+double (3+2).
    if (remaining == 5) break;
    types.push_back(BranchType::kQuad);
    remaining -= 4;
  }
  switch (remaining) {
    case 0: break;
    case 2: types.push_back(BranchType::kDouble); break;
    case 3: types.push_back(BranchType::kTriple); break;
    case 5:
      types.push_back(BranchType::kTriple);
      types.push_back(BranchType::kDouble);
      break;
    default:
      LCN_CHECK(false, "unreachable remainder in fit_branch_types");
  }
  return types;
}

int min_branch_col(const Grid2D& grid) {
  (void)grid;
  return 2;
}

int max_branch_col(const Grid2D& grid) {
  int col = grid.cols() - 3;
  if (col % 2 == 1) --col;
  return col;
}

void legalize_tree_spec(const Grid2D& grid, TreeSpec& spec) {
  const int lo = min_branch_col(grid);
  const int hi = max_branch_col(grid);
  LCN_REQUIRE(hi - lo >= 2, "grid too narrow for a two-branch tree");
  auto to_even = [](int v) { return v - (v % 2 + 2) % 2; };
  spec.b1 = std::clamp(to_even(spec.b1), lo, hi - 2);
  spec.b2 = std::clamp(to_even(spec.b2), spec.b1 + 2, hi);
}

TreeLayout make_uniform_layout(const Grid2D& grid, int b1, int b2) {
  const int channel_rows = (grid.rows() + 1) / 2;
  const std::vector<BranchType> types = fit_branch_types(channel_rows);
  TreeLayout layout;
  int y0 = 0;
  for (BranchType type : types) {
    TreeSpec spec{type, y0, b1, b2};
    legalize_tree_spec(grid, spec);
    layout.trees.push_back(spec);
    y0 += branch_row_span(type) + 2;  // skip the separating odd row
  }
  LCN_CHECK(y0 - 2 == 2 * (channel_rows - 1),
            "tree bands must exactly tile the channel rows");
  return layout;
}

TreeLayout make_random_layout(const Grid2D& grid, Rng& rng) {
  const int lo = min_branch_col(grid);
  const int hi = max_branch_col(grid);
  TreeLayout layout = make_uniform_layout(grid, lo, hi);
  for (TreeSpec& spec : layout.trees) {
    spec.b1 = static_cast<int>(rng.next_int(lo / 2, hi / 2)) * 2;
    spec.b2 = static_cast<int>(rng.next_int(lo / 2, hi / 2)) * 2;
    legalize_tree_spec(grid, spec);
  }
  return layout;
}

TreeLayout make_power_aware_layout(const Grid2D& grid,
                                   const PowerMap& band_power) {
  LCN_REQUIRE(band_power.grid() == grid, "power map grid mismatch");
  TreeLayout layout = make_uniform_layout(grid, min_branch_col(grid),
                                          max_branch_col(grid));
  for (TreeSpec& spec : layout.trees) {
    const int row_end =
        std::min(grid.rows() - 1, spec.y0 + branch_row_span(spec.type));
    // Column profile of the band's power.
    std::vector<double> column_power(static_cast<std::size_t>(grid.cols()),
                                     0.0);
    double total = 0.0;
    for (int r = spec.y0; r <= row_end; ++r) {
      for (int c = 0; c < grid.cols(); ++c) {
        column_power[static_cast<std::size_t>(c)] += band_power.at(r, c);
        total += band_power.at(r, c);
      }
    }
    // Second branch just upstream of the first power quartile, so the
    // full leaf fan covers the hot region; first branch halfway up the
    // trunk.
    int b2 = min_branch_col(grid) + 2;
    if (total > 0.0) {
      double cumulative = 0.0;
      for (int c = 0; c < grid.cols(); ++c) {
        cumulative += column_power[static_cast<std::size_t>(c)];
        if (cumulative >= 0.25 * total) {
          b2 = c - 2;
          break;
        }
      }
    }
    spec.b2 = b2;
    spec.b1 = b2 / 2;
    legalize_tree_spec(grid, spec);
  }
  return layout;
}

namespace {

void carve_tree(CoolingNetwork& net, const TreeSpec& spec) {
  const Grid2D& grid = net.grid();
  const int last_col = grid.cols() - 1;
  LCN_REQUIRE(spec.y0 % 2 == 0, "tree band must start on an even row");
  LCN_REQUIRE(spec.b1 % 2 == 0 && spec.b2 % 2 == 0,
              "branch columns must be even (TSV-free)");
  LCN_REQUIRE(spec.b1 >= 2 && spec.b2 > spec.b1 && spec.b2 <= last_col - 2,
              "branch columns out of range");
  LCN_REQUIRE(spec.y0 + branch_row_span(spec.type) < grid.rows(),
              "tree band exceeds the grid");

  const int ra = spec.y0;
  switch (spec.type) {
    case BranchType::kDouble: {
      const int rb = ra + 2;
      carve_h(net, ra, 0, spec.b1);             // trunk
      carve_v(net, spec.b1, ra, rb);            // split
      carve_h(net, ra, spec.b1, last_col);      // leaf 1
      carve_h(net, rb, spec.b1, last_col);      // leaf 2
      net.add_port({ra, 0, Side::kWest, PortKind::kInlet});
      net.add_port({ra, last_col, Side::kEast, PortKind::kOutlet});
      net.add_port({rb, last_col, Side::kEast, PortKind::kOutlet});
      break;
    }
    case BranchType::kTriple: {
      const int rb = ra + 2;
      const int rc = ra + 4;
      carve_h(net, rb, 0, spec.b1);             // trunk
      carve_v(net, spec.b1, ra, rb);            // first split: rb -> ra
      carve_h(net, ra, spec.b1, spec.b2);       // stage B
      carve_h(net, rb, spec.b1, spec.b2);
      carve_v(net, spec.b2, rb, rc);            // second split: rb -> rc
      carve_h(net, ra, spec.b2, last_col);      // leaves
      carve_h(net, rb, spec.b2, last_col);
      carve_h(net, rc, spec.b2, last_col);
      net.add_port({rb, 0, Side::kWest, PortKind::kInlet});
      net.add_port({ra, last_col, Side::kEast, PortKind::kOutlet});
      net.add_port({rb, last_col, Side::kEast, PortKind::kOutlet});
      net.add_port({rc, last_col, Side::kEast, PortKind::kOutlet});
      break;
    }
    case BranchType::kQuad: {
      const int rb = ra + 2;
      const int rc = ra + 4;
      const int rd = ra + 6;
      carve_h(net, rb, 0, spec.b1);             // trunk
      carve_v(net, spec.b1, rb, rc);            // first split: rb -> rc
      carve_h(net, rb, spec.b1, spec.b2);       // stage B
      carve_h(net, rc, spec.b1, spec.b2);
      carve_v(net, spec.b2, ra, rb);            // second splits
      carve_v(net, spec.b2, rc, rd);
      carve_h(net, ra, spec.b2, last_col);      // leaves
      carve_h(net, rb, spec.b2, last_col);
      carve_h(net, rc, spec.b2, last_col);
      carve_h(net, rd, spec.b2, last_col);
      net.add_port({rb, 0, Side::kWest, PortKind::kInlet});
      net.add_port({ra, last_col, Side::kEast, PortKind::kOutlet});
      net.add_port({rb, last_col, Side::kEast, PortKind::kOutlet});
      net.add_port({rc, last_col, Side::kEast, PortKind::kOutlet});
      net.add_port({rd, last_col, Side::kEast, PortKind::kOutlet});
      break;
    }
  }
}

}  // namespace

CoolingNetwork make_tree_network(const Grid2D& grid,
                                 const TreeLayout& layout) {
  LCN_REQUIRE(!layout.trees.empty(), "tree layout has no trees");
  CoolingNetwork net(grid);
  for (const TreeSpec& spec : layout.trees) carve_tree(net, spec);
  return net;
}

void apply_forbidden_region(CoolingNetwork& net, const CellRect& rect) {
  if (rect.empty()) return;
  const Grid2D& grid = net.grid();
  LCN_REQUIRE(rect.row0 >= 2 && rect.col0 >= 2 &&
                  rect.row1 <= grid.rows() - 3 && rect.col1 <= grid.cols() - 3,
              "restricted region must be interior (2-cell margin)");

  // Detour ring on the nearest TSV-free (even) rows/columns outside the rect.
  auto even_below = [](int v) { return v % 2 == 0 ? v : v - 1; };
  auto even_above = [](int v) { return v % 2 == 0 ? v : v + 1; };
  const int rr0 = even_below(rect.row0 - 1);
  const int rr1 = even_above(rect.row1 + 1);
  const int rc0 = even_below(rect.col0 - 1);
  const int rc1 = even_above(rect.col1 + 1);
  LCN_CHECK(rr0 >= 0 && rc0 >= 0 && rr1 < grid.rows() && rc1 < grid.cols(),
            "detour ring exceeds the grid");

  carve_h(net, rr0, rc0, rc1);
  carve_h(net, rr1, rc0, rc1);
  carve_v(net, rc0, rr0, rr1);
  carve_v(net, rc1, rr0, rr1);

  // Fill the restricted region (and the odd gap rows/cols between region and
  // ring stay as carved by the original generator — they reconnect severed
  // channels to the ring).
  for (int r = rect.row0; r <= rect.row1; ++r) {
    for (int c = rect.col0; c <= rect.col1; ++c) {
      net.set_solid(r, c);
    }
  }
}

}  // namespace lcn
