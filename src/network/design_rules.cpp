#include "network/design_rules.hpp"

#include <algorithm>
#include <queue>

#include "common/strings.hpp"

namespace lcn {

namespace {

/// Position of a boundary cell along its side, for manifold-order checks.
int side_position(const Grid2D& grid, const Port& port) {
  (void)grid;
  switch (port.side) {
    case Side::kWest:
    case Side::kEast:
      return port.row;
    case Side::kNorth:
    case Side::kSouth:
      return port.col;
  }
  return 0;
}

void check_manifolds(const CoolingNetwork& net, DrcResult& out) {
  for (Side side : kAllSides) {
    std::vector<Port> on_side;
    for (const Port& port : net.ports()) {
      if (port.side == side) on_side.push_back(port);
    }
    std::sort(on_side.begin(), on_side.end(),
              [&](const Port& a, const Port& b) {
                return side_position(net.grid(), a) <
                       side_position(net.grid(), b);
              });
    // Count alternation blocks of port kinds along the side.
    int blocks = 0;
    PortKind last = PortKind::kInlet;
    bool inlet_seen = false;
    bool outlet_seen = false;
    for (const Port& port : on_side) {
      if (blocks == 0 || port.kind != last) {
        ++blocks;
        last = port.kind;
        bool& seen =
            port.kind == PortKind::kInlet ? inlet_seen : outlet_seen;
        if (seen) {
          out.violations.push_back(strfmt(
              "side %s: ports of the same kind form more than one "
              "continuous manifold (interleaved inlets/outlets)",
              side_name(side)));
          break;
        }
        seen = true;
      }
    }
  }
}

void check_connectivity(const CoolingNetwork& net, DrcResult& out) {
  const Grid2D& grid = net.grid();
  const std::size_t n = grid.cell_count();
  std::vector<int> component(n, -1);
  int component_count = 0;

  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      if (!net.is_liquid(r, c) || component[grid.index(r, c)] >= 0) continue;
      const int id = component_count++;
      std::queue<CellCoord> frontier;
      frontier.push({r, c});
      component[grid.index(r, c)] = id;
      while (!frontier.empty()) {
        const CellCoord cur = frontier.front();
        frontier.pop();
        const int dr[] = {1, -1, 0, 0};
        const int dc[] = {0, 0, 1, -1};
        for (int k = 0; k < 4; ++k) {
          const int nr = cur.row + dr[k];
          const int nc = cur.col + dc[k];
          if (!grid.in_bounds(nr, nc) || !net.is_liquid(nr, nc)) continue;
          if (component[grid.index(nr, nc)] >= 0) continue;
          component[grid.index(nr, nc)] = id;
          frontier.push({nr, nc});
        }
      }
    }
  }

  std::vector<bool> has_inlet(static_cast<std::size_t>(component_count), false);
  std::vector<bool> has_outlet(static_cast<std::size_t>(component_count),
                               false);
  for (const Port& port : net.ports()) {
    const int id = component[grid.index(port.row, port.col)];
    if (id < 0) continue;  // add_port guarantees liquid, but stay defensive
    (port.kind == PortKind::kInlet ? has_inlet : has_outlet)
        [static_cast<std::size_t>(id)] = true;
  }
  for (int id = 0; id < component_count; ++id) {
    if (!has_inlet[static_cast<std::size_t>(id)] ||
        !has_outlet[static_cast<std::size_t>(id)]) {
      out.violations.push_back(strfmt(
          "liquid component %d is not connected to both an inlet and an "
          "outlet (stagnant coolant / singular flow system)",
          id));
    }
  }
}

}  // namespace

DrcResult check_design_rules(const CoolingNetwork& net,
                             const DesignRules& rules) {
  DrcResult out;
  const Grid2D& grid = net.grid();

  if (rules.enforce_tsv_keepout) {
    for (int r = 0; r < grid.rows(); ++r) {
      for (int c = 0; c < grid.cols(); ++c) {
        if (is_tsv_cell(r, c) && net.is_liquid(r, c)) {
          out.violations.push_back(
              strfmt("liquid cell (%d, %d) violates the TSV keep-out", r, c));
        }
      }
    }
  }

  if (!rules.forbidden.empty()) {
    for (int r = rules.forbidden.row0; r <= rules.forbidden.row1; ++r) {
      for (int c = rules.forbidden.col0; c <= rules.forbidden.col1; ++c) {
        if (grid.in_bounds(r, c) && net.is_liquid(r, c)) {
          out.violations.push_back(strfmt(
              "liquid cell (%d, %d) lies in the restricted region", r, c));
        }
      }
    }
  }

  bool any_inlet = false;
  bool any_outlet = false;
  for (const Port& port : net.ports()) {
    (port.kind == PortKind::kInlet ? any_inlet : any_outlet) = true;
  }
  if (!any_inlet) out.violations.emplace_back("network has no inlet");
  if (!any_outlet) out.violations.emplace_back("network has no outlet");

  check_manifolds(net, out);
  if (any_inlet && any_outlet) check_connectivity(net, out);
  return out;
}

void require_clean(const CoolingNetwork& net, const DesignRules& rules) {
  const DrcResult result = check_design_rules(net, rules);
  if (result.ok()) return;
  std::string message = "design-rule violations:";
  const std::size_t shown = std::min<std::size_t>(result.violations.size(), 5);
  for (std::size_t i = 0; i < shown; ++i) {
    message += "\n  - " + result.violations[i];
  }
  if (result.violations.size() > shown) {
    message += strfmt("\n  (+%zu more)", result.violations.size() - shown);
  }
  throw ContractError(message);
}

}  // namespace lcn
