// Cooling-network generators.
//
// All generators produce networks in a canonical west-to-east frame; the
// eight global flow directions of the paper (Fig. 8(a)) are realized by
// mapping the result through a D4Transform (or equivalently by transforming
// the power map, which is what the optimizer does).
//
// The hierarchical tree-like structure (paper §4.3, Fig. 7) is parameterized
// per tree by the first and second branch columns (b1, b2); three branch
// types (Fig. 8(b)) split the trunk into 2, 3 or 4 leaf channels and are
// fitted to the chip height.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geom/power_map.hpp"
#include "network/cooling_network.hpp"

namespace lcn {

/// Straight microchannels on every even row, inlets west, outlets east
/// (the paper's baseline style, Fig. 1(b)).
CoolingNetwork make_straight_channels(const Grid2D& grid);

/// Straight channels with alternating flow direction per row. Violates the
/// one-continuous-manifold-per-side packaging rule by construction; kept for
/// DRC tests and the §3 discussion.
CoolingNetwork make_alternating_straight(const Grid2D& grid);

/// One serpentine channel snaking through all even rows (manual style used
/// in the Fig. 9 sample set).
CoolingNetwork make_serpentine(const Grid2D& grid);

/// Comb: a vertical supply trunk on the west column feeding every even row
/// (manual style used in the Fig. 9 sample set).
CoolingNetwork make_comb(const Grid2D& grid);

/// Straight channels on a *subset* of the even rows — a grid-based analogue
/// of the channel-density modulation of prior work (GreenCool [10], channel
/// clustering [12]): regions with more heat get denser channels, cool
/// regions fewer, trading contact area against fluid resistance without
/// changing the straight topology. `row_enabled[k]` controls channel row 2k.
CoolingNetwork make_modulated_straight(const Grid2D& grid,
                                       const std::vector<bool>& row_enabled);

/// Heuristic density profile: enable channel rows in proportion to the
/// power their band dissipates, keeping at least `min_channels` rows.
std::vector<bool> density_profile_from_power(const PowerMap& map,
                                             int channels_to_keep);

// ---------------------------------------------------------------------------
// Tree-like networks

/// Branch types (Fig. 8(b)): how many leaf channels a tree fans out into.
enum class BranchType : std::uint8_t {
  kDouble = 0,  ///< 1 trunk -> 2 leaves   (2 channel rows, band of 4 rows)
  kTriple = 1,  ///< 1 -> 2 -> 3 leaves    (3 channel rows, band of 6 rows)
  kQuad = 2,    ///< 1 -> 2 -> 4 leaves    (4 channel rows, band of 8 rows)
};

/// Channel rows a tree of this type occupies.
int branch_channel_rows(BranchType type);
/// Grid rows from a band's first channel row to its last (inclusive span).
int branch_row_span(BranchType type);

struct TreeSpec {
  BranchType type = BranchType::kQuad;
  int y0 = 0;  ///< first (top) channel row of the band; must be even
  int b1 = 2;  ///< first branch column (even)
  int b2 = 4;  ///< second branch column (even, > b1); ignored by kDouble
};

struct TreeLayout {
  std::vector<TreeSpec> trees;
};

/// Choose branch types that exactly tile `channel_rows` rows (greedy: quads
/// plus one smaller tree for the remainder) — the "assigned manually to fit
/// the chip size" step of §4.4, automated.
std::vector<BranchType> fit_branch_types(int channel_rows);

/// Uniform layout: every tree gets the same (b1, b2) — the SA initial
/// solution of §4.4.
TreeLayout make_uniform_layout(const Grid2D& grid, int b1, int b2);

/// Random legal layout (used by the Fig. 9 sample set and tests).
TreeLayout make_random_layout(const Grid2D& grid, Rng& rng);

/// Power-aware layout (in the canonical west-to-east frame): each tree
/// branches just upstream of where its band's power concentrates, so the
/// densest channel region covers the band's hot columns (§3: factor 3
/// compensating factor 2). `band_power` is the combined per-cell power of
/// all source layers, already mapped into the canonical frame.
TreeLayout make_power_aware_layout(const Grid2D& grid,
                                   const PowerMap& band_power);

/// Legal branch-column bounds for the grid: [min_b, max_b], even values.
int min_branch_col(const Grid2D& grid);
int max_branch_col(const Grid2D& grid);

/// Clamp b1/b2 to legal, even, ordered values for the grid.
void legalize_tree_spec(const Grid2D& grid, TreeSpec& spec);

/// Carve the tree-like network for a layout. Throws on malformed layouts.
CoolingNetwork make_tree_network(const Grid2D& grid, const TreeLayout& layout);

// ---------------------------------------------------------------------------
// Restricted regions (ICCAD case 3)

/// Remove liquid inside `rect` and carve a liquid detour ring around it on
/// the nearest TSV-free (even) rows/columns, reconnecting severed channels —
/// the paper fills the region with solid cells "surrounded by liquid cells".
void apply_forbidden_region(CoolingNetwork& net, const CellRect& rect);

}  // namespace lcn
