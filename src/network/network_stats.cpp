#include "network/network_stats.hpp"

namespace lcn {

NetworkStats compute_network_stats(const CoolingNetwork& net,
                                   double channel_height) {
  LCN_REQUIRE(channel_height > 0.0, "channel height must be positive");
  NetworkStats stats;
  const Grid2D& grid = net.grid();
  const double pitch = grid.pitch();

  std::vector<char> has_port(grid.cell_count(), 0);
  for (const Port& port : net.ports()) {
    has_port[grid.index(port.row, port.col)] = 1;
    if (port.kind == PortKind::kInlet) ++stats.inlet_count;
    else ++stats.outlet_count;
  }

  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      switch (net.kind(r, c)) {
        case CellKind::kTsv: ++stats.tsv_cells; continue;
        case CellKind::kSolid: ++stats.solid_cells; continue;
        case CellKind::kLiquid: break;
      }
      ++stats.liquid_cells;
      stats.channel_length += pitch;
      stats.liquid_volume += pitch * pitch * channel_height;
      stats.top_wall_area += pitch * pitch;

      bool north = grid.in_bounds(r - 1, c) && net.is_liquid(r - 1, c);
      bool south = grid.in_bounds(r + 1, c) && net.is_liquid(r + 1, c);
      bool west = grid.in_bounds(r, c - 1) && net.is_liquid(r, c - 1);
      bool east = grid.in_bounds(r, c + 1) && net.is_liquid(r, c + 1);
      const int degree = static_cast<int>(north) + static_cast<int>(south) +
                         static_cast<int>(west) + static_cast<int>(east);
      stats.side_wall_area += (4 - degree) * pitch * channel_height;

      if (degree >= 3) {
        ++stats.branch_cells;
      } else if (degree == 2) {
        if ((north && south) || (west && east)) ++stats.straight_cells;
        else ++stats.bend_cells;
      } else if (!has_port[grid.index(r, c)]) {
        ++stats.dead_end_cells;
      }
    }
  }
  stats.liquid_fraction =
      static_cast<double>(stats.liquid_cells) /
      static_cast<double>(grid.cell_count());
  return stats;
}

}  // namespace lcn
