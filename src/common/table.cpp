#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace lcn {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LCN_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  LCN_REQUIRE(row.size() == header_.size(),
              "row width must match header width");
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < row.size() ? row[c] : std::string();
      os << ' ' << s << std::string(width[c] - s.size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_rule(os);
  emit_row(os, header_);
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule(os);
    } else {
      emit_row(os, row);
    }
  }
  emit_rule(os);
  return os.str();
}

std::string cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string cell_int(long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%ld", value);
  return buf;
}

std::string cell_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string cell_na() { return "N/A"; }

}  // namespace lcn
