#include "common/task_context.hpp"

namespace lcn {

namespace {
thread_local const TaskContext* t_context = nullptr;
}  // namespace

const TaskContext* current_task_context() { return t_context; }

ScopedTaskContext::ScopedTaskContext(const TaskContext* ctx)
    : previous_(t_context) {
  t_context = ctx;
}

ScopedTaskContext::~ScopedTaskContext() { t_context = previous_; }

bool task_cancelled() {
  const TaskContext* ctx = t_context;
  return ctx != nullptr && ctx->cancel != nullptr &&
         ctx->cancel->load(std::memory_order_relaxed);
}

void throw_if_cancelled() {
  if (task_cancelled()) throw Cancelled("job cancelled");
}

ProgressSink* task_progress_sink() {
  const TaskContext* ctx = t_context;
  return ctx != nullptr ? ctx->progress : nullptr;
}

}  // namespace lcn
