// Small string helpers shared by serializers and the bench harness.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lcn {

std::vector<std::string> split(std::string_view text, char sep);
std::string_view trim(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace lcn
