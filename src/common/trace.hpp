// Structured tracing: RAII spans and instant events recorded into per-thread
// lock-free ring buffers and flushed to a JSONL sink (DESIGN.md §S19).
//
// The nested optimizer (SA stages → pressure searches → thermal probes →
// Krylov solves) is observable end to end: coarse spans (level 1) cover SA
// stages/rounds, direction sweeps, reliability sweeps and the per-iteration
// SA progress stream; fine spans (level 2) add every solve, assembly and
// probe. The sink is one self-contained JSON object per line, directly
// convertible to Chrome trace_event format (chrome://tracing / Perfetto) by
// scripts/trace_to_chrome.py.
//
// Overhead contract:
//  - Tracing disabled (the default): every span / event site costs exactly
//    one relaxed atomic load and one predictable branch. No allocation, no
//    clock read, no stores. Tier-1 timings and the bit-identity contracts of
//    §S1/§S18 are untouched — tracing never changes numerics, only records.
//  - Tracing enabled: an event is one steady_clock read plus one write into
//    the calling thread's private ring (single-producer, wait-free). A full
//    ring drops the event and bumps instrument::trace_events_dropped —
//    recording never blocks a hot path on the sink.
//
// Enabling:
//  - Environment: LCN_TRACE=<path> turns tracing on at process start;
//    LCN_TRACE_LEVEL=1|2 picks the verbosity (default 1, coarse);
//    LCN_TRACE_RING overrides the per-thread ring capacity in events.
//    The sink is flushed by a background thread and closed at exit.
//  - Programmatic: trace::start(config) / trace::stop() (used by tests;
//    stop() must not race in-flight traced work — join pool work first).
//
// Thread attribution: the first event on a thread registers a ring and
// assigns a small sequential tid; event order within a tid is the ring's
// FIFO order, so per-thread timestamps are monotonic in the sink.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace lcn::trace {

/// Span/event verbosity. Coarse sites are per-optimizer-iteration and above;
/// fine sites are per-solve and below (hot: thousands per SA iteration).
constexpr int kCoarse = 1;
constexpr int kFine = 2;

/// Current trace level; 0 = disabled. Acquire pairs with the release store
/// in start(), so a thread that observes tracing enabled also sees the
/// initialized sink state (on x86/ARM load-acquire is a plain load, so the
/// disabled-path cost stays one load + one branch).
extern std::atomic<int> g_level;

/// The one check every trace site performs (the "~one branch" of the
/// overhead contract).
inline bool enabled(int level = kCoarse) {
  return g_level.load(std::memory_order_acquire) >= level;
}

struct TraceConfig {
  std::string path;                  ///< JSONL sink path
  int level = kCoarse;               ///< kCoarse or kFine
  std::size_t ring_capacity = 8192;  ///< events per thread before dropping
  /// When false, nothing drains the rings until flush()/stop() — tests use
  /// this to exercise overflow accounting deterministically.
  bool background_flush = true;
};

/// Open the sink, write the run-manifest header line, enable recording.
/// Throws lcn::RuntimeError when the sink cannot be opened. No-op when
/// tracing is already active.
void start(const TraceConfig& config);

/// Disable recording, drain every ring, close the sink. Safe to call when
/// tracing is off. Must not race spans still being recorded.
void stop();

/// Drain all per-thread rings to the sink now (normally the background
/// flusher's job). No-op when tracing is off.
void flush();

/// True between start() and stop().
bool active();

/// Log a one-line warning when any trace events were lost to ring overflow
/// (instrument::trace_events_dropped > 0), so data loss in a recorded trace
/// is never silent. Intended for process exit paths (design_cli, lcn_serve)
/// after the sink is stopped; no-op when nothing was dropped.
void warn_if_dropped();

// Recording primitives. `args` is the *inside* of a JSON object — e.g.
// "\"iters\":12,\"rel\":1e-11" — or nullptr/"" for no args; it is copied
// into the event, so callers may pass temporaries. Arguments longer than the
// event's inline buffer are replaced by "\"truncated\":true" (never emitting
// malformed JSON). All are no-ops below the configured level.
void emit_begin(const char* name, int level);
void emit_end(const char* name, int level, const char* args = nullptr);
void emit_instant(const char* name, int level, const char* args = nullptr);
void emit_counter(const char* name, int level, double value);

/// Maximum copied args length (including terminator) per event.
constexpr std::size_t kArgsCapacity = 224;

/// RAII span. `name` must outlive the trace (string literals only — the ring
/// stores the pointer, not a copy). Optional args set during the span's
/// lifetime are attached to the end event.
class Span {
 public:
  explicit Span(const char* name, int level = kCoarse)
      : name_(name), level_(level), active_(enabled(level)) {
    if (active_) emit_begin(name_, level_);
  }
  ~Span() {
    if (active_) emit_end(name_, level_, has_args_ ? args_ : nullptr);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// Attach args (inner JSON-object text) to the span's end event.
  void set_args(const std::string& args_json);

 private:
  const char* name_;
  int level_;
  bool active_;
  bool has_args_ = false;
  char args_[kArgsCapacity];  // only written when active
};

}  // namespace lcn::trace

#define LCN_TRACE_CONCAT_IMPL(a, b) a##b
#define LCN_TRACE_CONCAT(a, b) LCN_TRACE_CONCAT_IMPL(a, b)

/// Coarse span covering the enclosing scope. Usage: LCN_TRACE_SPAN("name");
#define LCN_TRACE_SPAN(name) \
  ::lcn::trace::Span LCN_TRACE_CONCAT(lcn_trace_span_, __LINE__)(name)

/// Fine (hot-path) span; only recorded at LCN_TRACE_LEVEL >= 2.
#define LCN_TRACE_SPAN_FINE(name)                                  \
  ::lcn::trace::Span LCN_TRACE_CONCAT(lcn_trace_span_, __LINE__)(  \
      name, ::lcn::trace::kFine)
