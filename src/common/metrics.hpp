// Metrics registry: counters, gauges and log-bucketed latency histograms
// (DESIGN.md §S24).
//
// common/instrument answers "how much work ran" (monotonic event counts);
// this layer answers "how long did it take and how is the service doing":
// latency *distributions* for the solver and serving hot paths, health
// gauges for the scheduler, and SLO counters — scrapeable from a live
// lcn_serve daemon (the `metrics` protocol op and a Prometheus text
// endpoint) instead of only post-hoc bench JSON.
//
// Determinism contract: histogram bucket boundaries are fixed at compile
// time (log2-spaced, 1 µs … ~38 h) and per-observation state is integral —
// uint64 bucket counts and a uint64 nanosecond sum. Integer addition
// commutes, so merging thread-striped state, per-session shards or
// snapshots from different processes is bit-identical regardless of
// `LCN_THREADS` or arrival order; quantiles are computed exactly from the
// merged bucket counts (the reported p50/p95/p99 is the upper bound of the
// bucket holding that rank).
//
// Overhead contract (mirrors trace §S19):
//  - Level-gated sites cost one relaxed atomic load + one branch when below
//    the configured level — no clock read, no stores. `LCN_METRICS=0`
//    disables everything, 1 (default) enables coarse sites (per-solve and
//    above), 2 adds fine sites (per-V-cycle, per-SpMV, per-cache-lookup).
//  - An enabled observation is one bucket search over 38 boundaries plus
//    two relaxed atomic adds into the calling thread's stripe (histograms
//    are striped kStripes-ways to keep pool threads off each other's cache
//    lines). bench_metrics measures this against a bare counter add.
//
// Session sharding (§S22): observe()/count() bill the process-wide registry
// and *additionally* the MetricShard of the installed TaskContext, exactly
// like instrument::CounterShard — each tenant gets isolated distributions.
// Gauges are process-health values (queue depth, running jobs) and are
// global-only.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lcn::instrument {
struct Snapshot;  // common/instrument.hpp
}

namespace lcn::metrics {

// ---------------------------------------------------------------------------
// Metric lists (X-macros: enums, name/help tables, shard fields and JSON are
// all generated from one list, same idiom as LCN_INSTRUMENT_COUNTERS).

/// Latency histograms, all in seconds. `coarse` sites record per solve /
/// job / step; `fine` sites are hot (thousands per SA iteration).
#define LCN_METRIC_HISTOGRAMS(X)                                            \
  X(solve_steady_seconds, "Steady-state thermal solve wall time")           \
  X(cg_seconds, "Conjugate-gradient solve wall time")                       \
  X(bicgstab_seconds, "BiCGSTAB solve wall time")                           \
  X(gmres_seconds, "GMRES solve wall time")                                 \
  X(mg_vcycle_seconds, "Multigrid V-cycle application wall time")           \
  X(spmv_batch_seconds, "Sparse matrix-vector multiply wall time")          \
  X(cache_lookup_seconds, "SA evaluator cache lookup wall time")            \
  X(scenario_step_seconds, "Dynamic-scenario engine step wall time")        \
  X(job_design_seconds, "Scheduler design-job wall time")                   \
  X(job_evaluate_seconds, "Scheduler evaluate-job wall time")               \
  X(job_sweep_seconds, "Scheduler sweep-job wall time")                     \
  X(job_scenario_seconds, "Scheduler scenario-job wall time")

/// Health gauges (instantaneous values, set by the scheduler/server).
#define LCN_METRIC_GAUGES(X)                                          \
  X(queue_depth, "Jobs queued and not yet running")                   \
  X(running_jobs, "Jobs currently executing")                         \
  X(client_connections, "Open client connections on service::Server")

/// Monotonic health counters (beyond the work counters in instrument).
#define LCN_METRIC_COUNTERS(X)                                             \
  X(deadline_misses, "Jobs cancelled by the watchdog past their deadline") \
  X(slo_breaches, "Completed jobs whose wall time exceeded LCN_SLO_SECONDS") \
  X(jobs_rejected, "Jobs refused because the scheduler was shutting down") \
  X(metrics_scrapes, "Snapshot requests served (metrics op + HTTP scrapes)")

#define LCN_METRICS_ENUM_ENTRY(name, help) name,
enum class Hist : std::size_t {
  LCN_METRIC_HISTOGRAMS(LCN_METRICS_ENUM_ENTRY) kCount
};
enum class Gauge : std::size_t {
  LCN_METRIC_GAUGES(LCN_METRICS_ENUM_ENTRY) kCount
};
enum class Counter : std::size_t {
  LCN_METRIC_COUNTERS(LCN_METRICS_ENUM_ENTRY) kCount
};
#undef LCN_METRICS_ENUM_ENTRY

constexpr std::size_t kHistCount = static_cast<std::size_t>(Hist::kCount);
constexpr std::size_t kGaugeCount = static_cast<std::size_t>(Gauge::kCount);
constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Metric names as they appear in JSON snapshots and (prefixed with `lcn_`)
/// in the Prometheus exposition.
const char* hist_name(Hist h);
const char* hist_help(Hist h);
const char* gauge_name(Gauge g);
const char* gauge_help(Gauge g);
const char* counter_name(Counter c);
const char* counter_help(Counter c);

// ---------------------------------------------------------------------------
// Level gating (mirrors trace::g_level).

constexpr int kCoarse = 1;
constexpr int kFine = 2;

/// Current metrics level; 0 = disabled. Initialized from LCN_METRICS
/// (default 1, coarse).
extern std::atomic<int> g_level;

/// The one check every gated site performs.
inline bool enabled(int level = kCoarse) {
  return g_level.load(std::memory_order_relaxed) >= level;
}

/// Override the level (tests; also honors a fresh LCN_METRICS on restart).
void set_level(int level);

// ---------------------------------------------------------------------------
// Histogram buckets.

/// Finite bucket upper bounds in seconds: 1e-6 * 2^i for i in [0, 38).
/// Observation x lands in the first bucket with x <= bound; anything above
/// the last finite bound (~76 h) lands in the overflow bucket. 38 finite
/// bounds + overflow = kBucketCount buckets per histogram.
constexpr std::size_t kFiniteBuckets = 38;
constexpr std::size_t kBucketCount = kFiniteBuckets + 1;

/// Upper bound of finite bucket `i` in seconds.
double bucket_bound(std::size_t i);

/// Bucket index for an observation in seconds. Non-finite and negative
/// observations clamp to bucket 0 (they never corrupt the distribution).
std::size_t bucket_index(double seconds);

/// Point-in-time copy of one histogram. All state is integral so merge()
/// is bit-identical under any grouping of the inputs.
struct HistogramSnapshot {
  std::array<std::uint64_t, kBucketCount> buckets{};
  std::uint64_t count = 0;      ///< total observations (== sum of buckets)
  std::uint64_t sum_nanos = 0;  ///< exact integer sum of llround(s * 1e9)

  void merge(const HistogramSnapshot& other);

  /// Exact rank-based quantile from the bucket counts: the upper bound of
  /// the bucket containing observation rank ceil(q * count). Returns 0 when
  /// empty; the overflow bucket reports the largest finite bound (keeps the
  /// value finite for JSON).
  double quantile(double q) const;

  double sum_seconds() const { return static_cast<double>(sum_nanos) * 1e-9; }
};

/// One live histogram: kStripes copies of the bucket array so concurrent
/// pool threads land on different cache lines (round-robin thread
/// assignment). All adds are relaxed; snapshot() sums the stripes.
class Histogram {
 public:
  static constexpr std::size_t kStripes = 8;

  void observe(double seconds);
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kBucketCount> counts{};
    std::atomic<std::uint64_t> sum_nanos{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

// ---------------------------------------------------------------------------
// Shard + snapshot.

/// Point-in-time copy of a whole shard. merge() is bit-identical under any
/// grouping (all integral state).
struct MetricsSnapshot {
  std::array<HistogramSnapshot, kHistCount> histograms{};
  std::array<std::int64_t, kGaugeCount> gauges{};
  std::array<std::uint64_t, kCounterCount> counters{};

  void merge(const MetricsSnapshot& other);  ///< gauges take other's values

  const HistogramSnapshot& hist(Hist h) const {
    return histograms[static_cast<std::size_t>(h)];
  }
  std::int64_t gauge(Gauge g) const {
    return gauges[static_cast<std::size_t>(g)];
  }
  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }

  /// Flat JSON object: histograms (count/sum_nanos/p50/p95/p99 + non-empty
  /// bucket arrays), gauges, counters. Deterministic field order.
  std::string json() const;
};

/// One independent registry of every metric. The process-wide registry is
/// one of these; each service session (§S22) owns another, billed in
/// addition to the global one by observe()/count() performed under its task
/// context.
struct MetricShard {
  std::array<Histogram, kHistCount> histograms;
  std::array<std::atomic<std::int64_t>, kGaugeCount> gauges{};
  std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};

  MetricsSnapshot snapshot() const;
  void reset();
};

/// The process-wide registry.
MetricShard& global_shard();

// ---------------------------------------------------------------------------
// Billing entry points (global + current TaskContext shard, like
// instrument::bump). These are NOT level-gated — gate at the call site with
// enabled()/ScopedLatency so the disabled cost stays one load + one branch.

void observe(Hist h, double seconds);
void count(Counter c, std::uint64_t n = 1);
void gauge_set(Gauge g, std::int64_t value);
void gauge_add(Gauge g, std::int64_t delta);

/// RAII latency observation: reads the clock only when `level` is enabled
/// at construction, observes the elapsed time on destruction. The disabled
/// cost is the enabled() check.
class ScopedLatency {
 public:
  explicit ScopedLatency(Hist h, int level = kCoarse);
  ~ScopedLatency();
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Hist hist_;
  bool active_;
  std::uint64_t start_nanos_ = 0;
};

// ---------------------------------------------------------------------------
// Shared quantile helper (benches): exact rank-based sample quantile of raw
// values — rank ceil(q * n) of the sorted sample, matching
// HistogramSnapshot::quantile on degenerate one-per-bucket data. Sorts a
// copy; returns 0 on an empty sample.
double sample_quantile(std::vector<double> values, double q);

// ---------------------------------------------------------------------------
// Prometheus text exposition (format 0.0.4).

/// `key="value",...` label set built from run_manifest() (git_sha,
/// build_type, threads), for the live endpoint. Tests pass fixed labels.
std::string manifest_labels();

/// Render a full exposition page: every histogram as cumulative
/// `_bucket{le=...}` series + `_sum`/`_count`, gauges, metric counters and
/// every instrument counter as `lcn_<name>_total`. `labels` is the inner
/// label list applied to all series ("" for none).
std::string prometheus_text(const MetricsSnapshot& metrics,
                            const instrument::Snapshot& counters,
                            const std::string& labels);

}  // namespace lcn::metrics
