// Environment-variable knobs used to scale bench workloads without editing
// code (e.g. LCN_SA_SCALE=2 doubles SA iteration counts, LCN_FAST=1 shrinks
// everything for smoke runs).
#pragma once

#include <string>

namespace lcn {

/// Integer env var with default; malformed values fall back to the default.
long env_int(const char* name, long fallback);

/// Floating-point env var with default.
double env_double(const char* name, double fallback);

/// Boolean env var: unset/"0"/"false"/"off" => false, anything else => true.
bool env_flag(const char* name, bool fallback = false);

/// String env var with default.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace lcn
