#include "common/instrument.hpp"

#include <atomic>
#include <cmath>

#include "common/strings.hpp"

namespace lcn::instrument {

namespace {

struct Counters {
  std::atomic<std::uint64_t> spmv_count{0};
  std::atomic<std::uint64_t> spmv_nnz{0};
  std::atomic<std::uint64_t> cg_solves{0};
  std::atomic<std::uint64_t> cg_iterations{0};
  std::atomic<std::uint64_t> bicgstab_solves{0};
  std::atomic<std::uint64_t> bicgstab_iterations{0};
  std::atomic<std::uint64_t> gmres_solves{0};
  std::atomic<std::uint64_t> gmres_iterations{0};
  std::atomic<std::uint64_t> assemblies{0};
  std::atomic<std::uint64_t> assemblies_symbolic{0};
  std::atomic<std::uint64_t> assemblies_refill{0};
  std::atomic<std::uint64_t> workspace_reuses{0};
  std::atomic<std::uint64_t> flow_plan_hits{0};
  std::atomic<std::uint64_t> flow_plan_misses{0};
  std::atomic<std::uint64_t> steady_solves{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> assembly_micros{0};
  std::atomic<std::uint64_t> solve_micros{0};
  std::atomic<std::uint64_t> scenarios_evaluated{0};
  std::atomic<std::uint64_t> scenarios_infeasible{0};
  std::atomic<std::uint64_t> recovery_searches{0};
};

Counters& counters() {
  static Counters c;
  return c;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

std::uint64_t micros(double seconds) {
  return seconds > 0.0 ? static_cast<std::uint64_t>(std::llround(seconds * 1e6))
                       : 0;
}

}  // namespace

void add_spmv(std::uint64_t nnz) {
  counters().spmv_count.fetch_add(1, kRelaxed);
  counters().spmv_nnz.fetch_add(nnz, kRelaxed);
}

void add_cg(std::uint64_t iterations) {
  counters().cg_solves.fetch_add(1, kRelaxed);
  counters().cg_iterations.fetch_add(iterations, kRelaxed);
}

void add_bicgstab(std::uint64_t iterations) {
  counters().bicgstab_solves.fetch_add(1, kRelaxed);
  counters().bicgstab_iterations.fetch_add(iterations, kRelaxed);
}

void add_gmres(std::uint64_t iterations) {
  counters().gmres_solves.fetch_add(1, kRelaxed);
  counters().gmres_iterations.fetch_add(iterations, kRelaxed);
}

void add_assembly(double seconds) {
  counters().assemblies.fetch_add(1, kRelaxed);
  counters().assembly_micros.fetch_add(micros(seconds), kRelaxed);
}

void add_assembly_symbolic() {
  counters().assemblies_symbolic.fetch_add(1, kRelaxed);
}

void add_assembly_refill() {
  counters().assemblies_refill.fetch_add(1, kRelaxed);
}

void add_workspace_reuse() {
  counters().workspace_reuses.fetch_add(1, kRelaxed);
}

void add_flow_plan_hit() { counters().flow_plan_hits.fetch_add(1, kRelaxed); }
void add_flow_plan_miss() {
  counters().flow_plan_misses.fetch_add(1, kRelaxed);
}

void add_steady_solve(double seconds) {
  counters().steady_solves.fetch_add(1, kRelaxed);
  counters().solve_micros.fetch_add(micros(seconds), kRelaxed);
}

void add_cache_hit() { counters().cache_hits.fetch_add(1, kRelaxed); }
void add_cache_miss() { counters().cache_misses.fetch_add(1, kRelaxed); }

void add_scenario_evaluated() {
  counters().scenarios_evaluated.fetch_add(1, kRelaxed);
}
void add_scenario_infeasible() {
  counters().scenarios_infeasible.fetch_add(1, kRelaxed);
}
void add_recovery_search() {
  counters().recovery_searches.fetch_add(1, kRelaxed);
}

Snapshot snapshot() {
  const Counters& c = counters();
  Snapshot s;
  s.spmv_count = c.spmv_count.load(kRelaxed);
  s.spmv_nnz = c.spmv_nnz.load(kRelaxed);
  s.cg_solves = c.cg_solves.load(kRelaxed);
  s.cg_iterations = c.cg_iterations.load(kRelaxed);
  s.bicgstab_solves = c.bicgstab_solves.load(kRelaxed);
  s.bicgstab_iterations = c.bicgstab_iterations.load(kRelaxed);
  s.gmres_solves = c.gmres_solves.load(kRelaxed);
  s.gmres_iterations = c.gmres_iterations.load(kRelaxed);
  s.assemblies = c.assemblies.load(kRelaxed);
  s.assemblies_symbolic = c.assemblies_symbolic.load(kRelaxed);
  s.assemblies_refill = c.assemblies_refill.load(kRelaxed);
  s.workspace_reuses = c.workspace_reuses.load(kRelaxed);
  s.flow_plan_hits = c.flow_plan_hits.load(kRelaxed);
  s.flow_plan_misses = c.flow_plan_misses.load(kRelaxed);
  s.steady_solves = c.steady_solves.load(kRelaxed);
  s.cache_hits = c.cache_hits.load(kRelaxed);
  s.cache_misses = c.cache_misses.load(kRelaxed);
  s.assembly_micros = c.assembly_micros.load(kRelaxed);
  s.solve_micros = c.solve_micros.load(kRelaxed);
  s.scenarios_evaluated = c.scenarios_evaluated.load(kRelaxed);
  s.scenarios_infeasible = c.scenarios_infeasible.load(kRelaxed);
  s.recovery_searches = c.recovery_searches.load(kRelaxed);
  return s;
}

Snapshot delta(const Snapshot& before, const Snapshot& after) {
  Snapshot d;
  d.spmv_count = after.spmv_count - before.spmv_count;
  d.spmv_nnz = after.spmv_nnz - before.spmv_nnz;
  d.cg_solves = after.cg_solves - before.cg_solves;
  d.cg_iterations = after.cg_iterations - before.cg_iterations;
  d.bicgstab_solves = after.bicgstab_solves - before.bicgstab_solves;
  d.bicgstab_iterations = after.bicgstab_iterations - before.bicgstab_iterations;
  d.gmres_solves = after.gmres_solves - before.gmres_solves;
  d.gmres_iterations = after.gmres_iterations - before.gmres_iterations;
  d.assemblies = after.assemblies - before.assemblies;
  d.assemblies_symbolic = after.assemblies_symbolic - before.assemblies_symbolic;
  d.assemblies_refill = after.assemblies_refill - before.assemblies_refill;
  d.workspace_reuses = after.workspace_reuses - before.workspace_reuses;
  d.flow_plan_hits = after.flow_plan_hits - before.flow_plan_hits;
  d.flow_plan_misses = after.flow_plan_misses - before.flow_plan_misses;
  d.steady_solves = after.steady_solves - before.steady_solves;
  d.cache_hits = after.cache_hits - before.cache_hits;
  d.cache_misses = after.cache_misses - before.cache_misses;
  d.assembly_micros = after.assembly_micros - before.assembly_micros;
  d.solve_micros = after.solve_micros - before.solve_micros;
  d.scenarios_evaluated = after.scenarios_evaluated - before.scenarios_evaluated;
  d.scenarios_infeasible = after.scenarios_infeasible - before.scenarios_infeasible;
  d.recovery_searches = after.recovery_searches - before.recovery_searches;
  return d;
}

void reset() {
  Counters& c = counters();
  c.spmv_count.store(0, kRelaxed);
  c.spmv_nnz.store(0, kRelaxed);
  c.cg_solves.store(0, kRelaxed);
  c.cg_iterations.store(0, kRelaxed);
  c.bicgstab_solves.store(0, kRelaxed);
  c.bicgstab_iterations.store(0, kRelaxed);
  c.gmres_solves.store(0, kRelaxed);
  c.gmres_iterations.store(0, kRelaxed);
  c.assemblies.store(0, kRelaxed);
  c.assemblies_symbolic.store(0, kRelaxed);
  c.assemblies_refill.store(0, kRelaxed);
  c.workspace_reuses.store(0, kRelaxed);
  c.flow_plan_hits.store(0, kRelaxed);
  c.flow_plan_misses.store(0, kRelaxed);
  c.steady_solves.store(0, kRelaxed);
  c.cache_hits.store(0, kRelaxed);
  c.cache_misses.store(0, kRelaxed);
  c.assembly_micros.store(0, kRelaxed);
  c.solve_micros.store(0, kRelaxed);
  c.scenarios_evaluated.store(0, kRelaxed);
  c.scenarios_infeasible.store(0, kRelaxed);
  c.recovery_searches.store(0, kRelaxed);
}

double Snapshot::cache_hit_rate() const {
  const std::uint64_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
}

std::string Snapshot::json() const {
  return strfmt(
      "{\"spmv_count\":%llu,\"spmv_nnz\":%llu,"
      "\"cg_solves\":%llu,\"cg_iterations\":%llu,"
      "\"bicgstab_solves\":%llu,\"bicgstab_iterations\":%llu,"
      "\"gmres_solves\":%llu,\"gmres_iterations\":%llu,"
      "\"assemblies\":%llu,\"assemblies_symbolic\":%llu,"
      "\"assemblies_refill\":%llu,\"workspace_reuses\":%llu,"
      "\"flow_plan_hits\":%llu,\"flow_plan_misses\":%llu,"
      "\"steady_solves\":%llu,"
      "\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"cache_hit_rate\":%.4f,"
      "\"assembly_seconds\":%.6f,\"solve_seconds\":%.6f,"
      "\"scenarios_evaluated\":%llu,\"scenarios_infeasible\":%llu,"
      "\"recovery_searches\":%llu}",
      static_cast<unsigned long long>(spmv_count),
      static_cast<unsigned long long>(spmv_nnz),
      static_cast<unsigned long long>(cg_solves),
      static_cast<unsigned long long>(cg_iterations),
      static_cast<unsigned long long>(bicgstab_solves),
      static_cast<unsigned long long>(bicgstab_iterations),
      static_cast<unsigned long long>(gmres_solves),
      static_cast<unsigned long long>(gmres_iterations),
      static_cast<unsigned long long>(assemblies),
      static_cast<unsigned long long>(assemblies_symbolic),
      static_cast<unsigned long long>(assemblies_refill),
      static_cast<unsigned long long>(workspace_reuses),
      static_cast<unsigned long long>(flow_plan_hits),
      static_cast<unsigned long long>(flow_plan_misses),
      static_cast<unsigned long long>(steady_solves),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_hit_rate(),
      assembly_micros * 1e-6, solve_micros * 1e-6,
      static_cast<unsigned long long>(scenarios_evaluated),
      static_cast<unsigned long long>(scenarios_infeasible),
      static_cast<unsigned long long>(recovery_searches));
}

}  // namespace lcn::instrument
