#include "common/instrument.hpp"

#include <atomic>
#include <cmath>

#include "common/strings.hpp"

namespace lcn::instrument {

namespace {

// The one list of counters; Counters, snapshot(), delta() and
// snapshot_and_reset() are all generated from it so a new counter cannot be
// added to one and forgotten in another.
#define LCN_INSTRUMENT_COUNTERS(X) \
  X(spmv_count)                    \
  X(spmv_nnz)                      \
  X(cg_solves)                     \
  X(cg_iterations)                 \
  X(bicgstab_solves)               \
  X(bicgstab_iterations)           \
  X(gmres_solves)                  \
  X(gmres_iterations)              \
  X(assemblies)                    \
  X(assemblies_symbolic)           \
  X(assemblies_refill)             \
  X(workspace_reuses)              \
  X(flow_plan_hits)                \
  X(flow_plan_misses)              \
  X(steady_solves)                 \
  X(pressure_probes)               \
  X(cache_hits)                    \
  X(cache_misses)                  \
  X(assembly_micros)               \
  X(solve_micros)                  \
  X(scenarios_evaluated)           \
  X(scenarios_infeasible)          \
  X(recovery_searches)             \
  X(trace_events_emitted)          \
  X(trace_events_dropped)          \
  X(mg_vcycles)                    \
  X(mg_coarse_solves)              \
  X(fp32_inner_iters)              \
  X(refinement_steps)              \
  X(island_migrations)             \
  X(pt_swaps)                      \
  X(archive_inserts)

struct Counters {
#define LCN_INSTRUMENT_FIELD(name) std::atomic<std::uint64_t> name{0};
  LCN_INSTRUMENT_COUNTERS(LCN_INSTRUMENT_FIELD)
#undef LCN_INSTRUMENT_FIELD
};

Counters& counters() {
  static Counters c;
  return c;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

std::uint64_t micros(double seconds) {
  return seconds > 0.0 ? static_cast<std::uint64_t>(std::llround(seconds * 1e6))
                       : 0;
}

}  // namespace

void add_spmv(std::uint64_t nnz) {
  counters().spmv_count.fetch_add(1, kRelaxed);
  counters().spmv_nnz.fetch_add(nnz, kRelaxed);
}

void add_cg(std::uint64_t iterations) {
  counters().cg_solves.fetch_add(1, kRelaxed);
  counters().cg_iterations.fetch_add(iterations, kRelaxed);
}

void add_bicgstab(std::uint64_t iterations) {
  counters().bicgstab_solves.fetch_add(1, kRelaxed);
  counters().bicgstab_iterations.fetch_add(iterations, kRelaxed);
}

void add_gmres(std::uint64_t iterations) {
  counters().gmres_solves.fetch_add(1, kRelaxed);
  counters().gmres_iterations.fetch_add(iterations, kRelaxed);
}

void add_assembly(double seconds) {
  counters().assemblies.fetch_add(1, kRelaxed);
  counters().assembly_micros.fetch_add(micros(seconds), kRelaxed);
}

void add_assembly_symbolic() {
  counters().assemblies_symbolic.fetch_add(1, kRelaxed);
}

void add_assembly_refill() {
  counters().assemblies_refill.fetch_add(1, kRelaxed);
}

void add_workspace_reuse() {
  counters().workspace_reuses.fetch_add(1, kRelaxed);
}

void add_flow_plan_hit() { counters().flow_plan_hits.fetch_add(1, kRelaxed); }
void add_flow_plan_miss() {
  counters().flow_plan_misses.fetch_add(1, kRelaxed);
}

void add_steady_solve(double seconds) {
  counters().steady_solves.fetch_add(1, kRelaxed);
  counters().solve_micros.fetch_add(micros(seconds), kRelaxed);
}

void add_pressure_probe() {
  counters().pressure_probes.fetch_add(1, kRelaxed);
}

void add_cache_hit() { counters().cache_hits.fetch_add(1, kRelaxed); }
void add_cache_miss() { counters().cache_misses.fetch_add(1, kRelaxed); }

void add_scenario_evaluated() {
  counters().scenarios_evaluated.fetch_add(1, kRelaxed);
}
void add_scenario_infeasible() {
  counters().scenarios_infeasible.fetch_add(1, kRelaxed);
}
void add_recovery_search() {
  counters().recovery_searches.fetch_add(1, kRelaxed);
}

void add_trace_event() {
  counters().trace_events_emitted.fetch_add(1, kRelaxed);
}
void add_trace_drop() {
  counters().trace_events_dropped.fetch_add(1, kRelaxed);
}

void add_mg_vcycle() { counters().mg_vcycles.fetch_add(1, kRelaxed); }
void add_mg_coarse_solve() {
  counters().mg_coarse_solves.fetch_add(1, kRelaxed);
}
void add_fp32_inner(std::uint64_t iterations) {
  counters().fp32_inner_iters.fetch_add(iterations, kRelaxed);
}
void add_refinement_step() {
  counters().refinement_steps.fetch_add(1, kRelaxed);
}
void add_island_migration() {
  counters().island_migrations.fetch_add(1, kRelaxed);
}
void add_pt_swap() { counters().pt_swaps.fetch_add(1, kRelaxed); }
void add_archive_insert() {
  counters().archive_inserts.fetch_add(1, kRelaxed);
}

Snapshot snapshot() {
  const Counters& c = counters();
  Snapshot s;
#define LCN_INSTRUMENT_LOAD(name) s.name = c.name.load(kRelaxed);
  LCN_INSTRUMENT_COUNTERS(LCN_INSTRUMENT_LOAD)
#undef LCN_INSTRUMENT_LOAD
  return s;
}

Snapshot delta(const Snapshot& before, const Snapshot& after) {
  Snapshot d;
#define LCN_INSTRUMENT_DIFF(name) d.name = after.name - before.name;
  LCN_INSTRUMENT_COUNTERS(LCN_INSTRUMENT_DIFF)
#undef LCN_INSTRUMENT_DIFF
  return d;
}

Snapshot snapshot_and_reset() {
  Counters& c = counters();
  Snapshot s;
#define LCN_INSTRUMENT_DRAIN(name) s.name = c.name.exchange(0, kRelaxed);
  LCN_INSTRUMENT_COUNTERS(LCN_INSTRUMENT_DRAIN)
#undef LCN_INSTRUMENT_DRAIN
  return s;
}

void reset() { (void)snapshot_and_reset(); }

double Snapshot::cache_hit_rate() const {
  const std::uint64_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
}

std::string Snapshot::json() const {
  return strfmt(
      "{\"spmv_count\":%llu,\"spmv_nnz\":%llu,"
      "\"cg_solves\":%llu,\"cg_iterations\":%llu,"
      "\"bicgstab_solves\":%llu,\"bicgstab_iterations\":%llu,"
      "\"gmres_solves\":%llu,\"gmres_iterations\":%llu,"
      "\"assemblies\":%llu,\"assemblies_symbolic\":%llu,"
      "\"assemblies_refill\":%llu,\"workspace_reuses\":%llu,"
      "\"flow_plan_hits\":%llu,\"flow_plan_misses\":%llu,"
      "\"steady_solves\":%llu,\"pressure_probes\":%llu,"
      "\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"cache_hit_rate\":%.4f,"
      "\"assembly_seconds\":%.6f,\"solve_seconds\":%.6f,"
      "\"scenarios_evaluated\":%llu,\"scenarios_infeasible\":%llu,"
      "\"recovery_searches\":%llu,"
      "\"trace_events_emitted\":%llu,\"trace_events_dropped\":%llu,"
      "\"mg_vcycles\":%llu,\"mg_coarse_solves\":%llu,"
      "\"fp32_inner_iters\":%llu,\"refinement_steps\":%llu,"
      "\"island_migrations\":%llu,\"pt_swaps\":%llu,"
      "\"archive_inserts\":%llu}",
      static_cast<unsigned long long>(spmv_count),
      static_cast<unsigned long long>(spmv_nnz),
      static_cast<unsigned long long>(cg_solves),
      static_cast<unsigned long long>(cg_iterations),
      static_cast<unsigned long long>(bicgstab_solves),
      static_cast<unsigned long long>(bicgstab_iterations),
      static_cast<unsigned long long>(gmres_solves),
      static_cast<unsigned long long>(gmres_iterations),
      static_cast<unsigned long long>(assemblies),
      static_cast<unsigned long long>(assemblies_symbolic),
      static_cast<unsigned long long>(assemblies_refill),
      static_cast<unsigned long long>(workspace_reuses),
      static_cast<unsigned long long>(flow_plan_hits),
      static_cast<unsigned long long>(flow_plan_misses),
      static_cast<unsigned long long>(steady_solves),
      static_cast<unsigned long long>(pressure_probes),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_hit_rate(),
      assembly_micros * 1e-6, solve_micros * 1e-6,
      static_cast<unsigned long long>(scenarios_evaluated),
      static_cast<unsigned long long>(scenarios_infeasible),
      static_cast<unsigned long long>(recovery_searches),
      static_cast<unsigned long long>(trace_events_emitted),
      static_cast<unsigned long long>(trace_events_dropped),
      static_cast<unsigned long long>(mg_vcycles),
      static_cast<unsigned long long>(mg_coarse_solves),
      static_cast<unsigned long long>(fp32_inner_iters),
      static_cast<unsigned long long>(refinement_steps),
      static_cast<unsigned long long>(island_migrations),
      static_cast<unsigned long long>(pt_swaps),
      static_cast<unsigned long long>(archive_inserts));
}

}  // namespace lcn::instrument
