#include "common/instrument.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "common/task_context.hpp"

namespace lcn::instrument {

namespace {

CounterShard& counters() {
  static CounterShard c;
  return c;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

std::uint64_t micros(double seconds) {
  return seconds > 0.0 ? static_cast<std::uint64_t>(std::llround(seconds * 1e6))
                       : 0;
}

/// Bill the process-wide counters and, when the calling thread runs under a
/// task context with a session shard, that shard too. The thread-local read
/// costs ~the same as the relaxed add, keeping the per-kernel-invocation
/// overhead contract of the header.
void bump(std::atomic<std::uint64_t> CounterShard::*member, std::uint64_t v) {
  (counters().*member).fetch_add(v, kRelaxed);
  const TaskContext* ctx = current_task_context();
  if (ctx != nullptr && ctx->counters != nullptr) {
    (ctx->counters->*member).fetch_add(v, kRelaxed);
  }
}

}  // namespace

void add_spmv(std::uint64_t nnz) {
  bump(&CounterShard::spmv_count, 1);
  bump(&CounterShard::spmv_nnz, nnz);
}

void add_cg(std::uint64_t iterations) {
  bump(&CounterShard::cg_solves, 1);
  bump(&CounterShard::cg_iterations, iterations);
}

void add_bicgstab(std::uint64_t iterations) {
  bump(&CounterShard::bicgstab_solves, 1);
  bump(&CounterShard::bicgstab_iterations, iterations);
}

void add_gmres(std::uint64_t iterations) {
  bump(&CounterShard::gmres_solves, 1);
  bump(&CounterShard::gmres_iterations, iterations);
}

void add_assembly(double seconds) {
  bump(&CounterShard::assemblies, 1);
  bump(&CounterShard::assembly_micros, micros(seconds));
}

void add_assembly_symbolic() { bump(&CounterShard::assemblies_symbolic, 1); }

void add_assembly_refill() { bump(&CounterShard::assemblies_refill, 1); }

void add_workspace_reuse() { bump(&CounterShard::workspace_reuses, 1); }

void add_flow_plan_hit() { bump(&CounterShard::flow_plan_hits, 1); }
void add_flow_plan_miss() { bump(&CounterShard::flow_plan_misses, 1); }

void add_steady_solve(double seconds) {
  bump(&CounterShard::steady_solves, 1);
  bump(&CounterShard::solve_micros, micros(seconds));
}

void add_pressure_probe() { bump(&CounterShard::pressure_probes, 1); }

void add_cache_hit() { bump(&CounterShard::cache_hits, 1); }
void add_cache_miss() { bump(&CounterShard::cache_misses, 1); }

void add_scenario_evaluated() { bump(&CounterShard::scenarios_evaluated, 1); }
void add_scenario_infeasible() { bump(&CounterShard::scenarios_infeasible, 1); }
void add_recovery_search() { bump(&CounterShard::recovery_searches, 1); }

void add_trace_event() { bump(&CounterShard::trace_events_emitted, 1); }
void add_trace_drop() { bump(&CounterShard::trace_events_dropped, 1); }

void add_mg_vcycle() { bump(&CounterShard::mg_vcycles, 1); }
void add_mg_coarse_solve() { bump(&CounterShard::mg_coarse_solves, 1); }
void add_fp32_inner(std::uint64_t iterations) {
  bump(&CounterShard::fp32_inner_iters, iterations);
}
void add_refinement_step() { bump(&CounterShard::refinement_steps, 1); }
void add_island_migration() { bump(&CounterShard::island_migrations, 1); }
void add_pt_swap() { bump(&CounterShard::pt_swaps, 1); }
void add_archive_insert() { bump(&CounterShard::archive_inserts, 1); }
void add_job_completed() { bump(&CounterShard::jobs_completed, 1); }
void add_job_cancelled() { bump(&CounterShard::jobs_cancelled, 1); }
void add_transient_step() { bump(&CounterShard::transient_steps, 1); }
void add_transient_refill() { bump(&CounterShard::transient_refills, 1); }
void add_transient_rebuild() { bump(&CounterShard::transient_rebuilds, 1); }
void add_rhs_refill() { bump(&CounterShard::rhs_refills, 1); }
void add_scenario_step() { bump(&CounterShard::scenario_steps, 1); }

Snapshot CounterShard::snapshot() const {
  Snapshot s;
#define LCN_INSTRUMENT_LOAD(name) s.name = name.load(kRelaxed);
  LCN_INSTRUMENT_COUNTERS(LCN_INSTRUMENT_LOAD)
#undef LCN_INSTRUMENT_LOAD
  return s;
}

Snapshot CounterShard::snapshot_and_reset() {
  Snapshot s;
#define LCN_INSTRUMENT_DRAIN(name) s.name = name.exchange(0, kRelaxed);
  LCN_INSTRUMENT_COUNTERS(LCN_INSTRUMENT_DRAIN)
#undef LCN_INSTRUMENT_DRAIN
  return s;
}

Snapshot snapshot() { return counters().snapshot(); }

Snapshot delta(const Snapshot& before, const Snapshot& after) {
  Snapshot d;
#define LCN_INSTRUMENT_DIFF(name) d.name = after.name - before.name;
  LCN_INSTRUMENT_COUNTERS(LCN_INSTRUMENT_DIFF)
#undef LCN_INSTRUMENT_DIFF
  return d;
}

Snapshot snapshot_and_reset() { return counters().snapshot_and_reset(); }

void reset() { (void)snapshot_and_reset(); }

double Snapshot::cache_hit_rate() const {
  const std::uint64_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
}

std::string Snapshot::json() const {
  return strfmt(
      "{\"spmv_count\":%llu,\"spmv_nnz\":%llu,"
      "\"cg_solves\":%llu,\"cg_iterations\":%llu,"
      "\"bicgstab_solves\":%llu,\"bicgstab_iterations\":%llu,"
      "\"gmres_solves\":%llu,\"gmres_iterations\":%llu,"
      "\"assemblies\":%llu,\"assemblies_symbolic\":%llu,"
      "\"assemblies_refill\":%llu,\"workspace_reuses\":%llu,"
      "\"flow_plan_hits\":%llu,\"flow_plan_misses\":%llu,"
      "\"steady_solves\":%llu,\"pressure_probes\":%llu,"
      "\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"cache_hit_rate\":%.4f,"
      "\"assembly_seconds\":%.6f,\"solve_seconds\":%.6f,"
      "\"scenarios_evaluated\":%llu,\"scenarios_infeasible\":%llu,"
      "\"recovery_searches\":%llu,"
      "\"trace_events_emitted\":%llu,\"trace_events_dropped\":%llu,"
      "\"mg_vcycles\":%llu,\"mg_coarse_solves\":%llu,"
      "\"fp32_inner_iters\":%llu,\"refinement_steps\":%llu,"
      "\"island_migrations\":%llu,\"pt_swaps\":%llu,"
      "\"archive_inserts\":%llu,"
      "\"jobs_completed\":%llu,\"jobs_cancelled\":%llu,"
      "\"transient_steps\":%llu,\"transient_refills\":%llu,"
      "\"transient_rebuilds\":%llu,\"rhs_refills\":%llu,"
      "\"scenario_steps\":%llu}",
      static_cast<unsigned long long>(spmv_count),
      static_cast<unsigned long long>(spmv_nnz),
      static_cast<unsigned long long>(cg_solves),
      static_cast<unsigned long long>(cg_iterations),
      static_cast<unsigned long long>(bicgstab_solves),
      static_cast<unsigned long long>(bicgstab_iterations),
      static_cast<unsigned long long>(gmres_solves),
      static_cast<unsigned long long>(gmres_iterations),
      static_cast<unsigned long long>(assemblies),
      static_cast<unsigned long long>(assemblies_symbolic),
      static_cast<unsigned long long>(assemblies_refill),
      static_cast<unsigned long long>(workspace_reuses),
      static_cast<unsigned long long>(flow_plan_hits),
      static_cast<unsigned long long>(flow_plan_misses),
      static_cast<unsigned long long>(steady_solves),
      static_cast<unsigned long long>(pressure_probes),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_hit_rate(),
      assembly_micros * 1e-6, solve_micros * 1e-6,
      static_cast<unsigned long long>(scenarios_evaluated),
      static_cast<unsigned long long>(scenarios_infeasible),
      static_cast<unsigned long long>(recovery_searches),
      static_cast<unsigned long long>(trace_events_emitted),
      static_cast<unsigned long long>(trace_events_dropped),
      static_cast<unsigned long long>(mg_vcycles),
      static_cast<unsigned long long>(mg_coarse_solves),
      static_cast<unsigned long long>(fp32_inner_iters),
      static_cast<unsigned long long>(refinement_steps),
      static_cast<unsigned long long>(island_migrations),
      static_cast<unsigned long long>(pt_swaps),
      static_cast<unsigned long long>(archive_inserts),
      static_cast<unsigned long long>(jobs_completed),
      static_cast<unsigned long long>(jobs_cancelled),
      static_cast<unsigned long long>(transient_steps),
      static_cast<unsigned long long>(transient_refills),
      static_cast<unsigned long long>(transient_rebuilds),
      static_cast<unsigned long long>(rhs_refills),
      static_cast<unsigned long long>(scenario_steps));
}

}  // namespace lcn::instrument
