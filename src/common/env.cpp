#include "common/env.hpp"

#include <cstdlib>
#include <cstring>

namespace lcn {

long env_int(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  if (*raw == '\0' || std::strcmp(raw, "0") == 0 ||
      std::strcmp(raw, "false") == 0 || std::strcmp(raw, "off") == 0) {
    return false;
  }
  return true;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace lcn
