// ASCII table formatting for the benchmark harness: benches print the same
// rows the paper's tables report, aligned for reading in a terminal.
#pragma once

#include <string>
#include <vector>

namespace lcn {

/// Column-aligned text table. Cells are strings; use cell() helpers to
/// format numbers consistently.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Insert a horizontal rule before the next added row.
  void add_rule();

  /// Render with column padding and header separator.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

/// Fixed-precision formatting helpers.
std::string cell(double value, int precision = 2);
std::string cell_int(long value);
std::string cell_sci(double value, int precision = 3);
/// "N/A" marker used when a configuration is infeasible (paper Table 3).
std::string cell_na();

}  // namespace lcn
