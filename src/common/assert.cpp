#include "common/assert.hpp"

#include <sstream>

namespace lcn::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": `" << expr << "` failed at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void throw_contract(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw ContractError(format("precondition", expr, file, line, msg));
}

void throw_internal(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw InternalError(format("invariant", expr, file, line, msg));
}

}  // namespace lcn::detail
