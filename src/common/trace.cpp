#include "common/trace.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "common/instrument.hpp"
#include "common/log.hpp"
#include "common/manifest.hpp"
#include "common/strings.hpp"

namespace lcn::trace {

std::atomic<int> g_level{0};

namespace {

using Clock = std::chrono::steady_clock;

struct Event {
  std::uint64_t ts_ns = 0;
  const char* name = nullptr;  // string literal at the call site
  std::uint32_t tid = 0;
  char ph = 'i';  // 'B' begin, 'E' end, 'i' instant, 'C' counter
  char args[kArgsCapacity];
};

/// Single-producer (the owning thread) / single-consumer (the flusher, under
/// the state mutex) ring. The producer publishes with a release store of
/// head_; the consumer acquires head_ and releases tail_; a full ring drops.
class Ring {
 public:
  explicit Ring(std::size_t capacity, std::uint32_t tid)
      : slots_(capacity), tid_(tid) {}

  std::uint32_t tid() const { return tid_; }

  bool push(const Event& event) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;  // full — caller accounts the drop
    }
    slots_[head % slots_.size()] = event;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Drain everything published so far through `write`; consumer-side only.
  template <typename Fn>
  void drain(const Fn& write) {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    for (; tail != head; ++tail) write(slots_[tail % slots_.size()]);
    tail_.store(tail, std::memory_order_release);
  }

 private:
  std::vector<Event> slots_;
  const std::uint32_t tid_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
};

struct State {
  std::mutex mutex;  // guards rings, sink, flusher lifecycle
  std::vector<std::unique_ptr<Ring>> rings;
  std::FILE* sink = nullptr;
  Clock::time_point epoch{};
  std::size_t ring_capacity = 8192;
  /// Bumped on every start()/stop() so thread-local ring pointers from an
  /// earlier session are re-registered instead of reused (see local_ring()).
  std::atomic<std::uint64_t> session{0};
  std::thread flusher;
  bool flusher_stop = false;
  std::condition_variable flusher_cv;
};

// Leaked on purpose: pool threads may record until the very end of the
// process, and a destructed State would turn that into use-after-free. The
// sink is closed explicitly by stop() (registered with atexit for the
// env-driven path).
State& state() {
  static State* s = new State;
  return *s;
}

void write_event(std::FILE* sink, const Event& event) {
  if (event.args[0] != '\0') {
    std::fprintf(sink,
                 "{\"ph\":\"%c\",\"tid\":%u,\"ts_ns\":%llu,\"name\":\"%s\","
                 "\"args\":{%s}}\n",
                 event.ph, event.tid,
                 static_cast<unsigned long long>(event.ts_ns), event.name,
                 event.args);
  } else {
    std::fprintf(sink,
                 "{\"ph\":\"%c\",\"tid\":%u,\"ts_ns\":%llu,\"name\":\"%s\"}\n",
                 event.ph, event.tid,
                 static_cast<unsigned long long>(event.ts_ns), event.name);
  }
}

void flush_locked(State& s) {
  if (s.sink == nullptr) return;
  for (const auto& ring : s.rings) {
    ring->drain([&](const Event& event) { write_event(s.sink, event); });
  }
  std::fflush(s.sink);
}

/// The calling thread's ring for the current trace session, registering one
/// on first use. Returns nullptr when the session ended between the
/// enabled() check and here.
Ring* local_ring() {
  thread_local Ring* ring = nullptr;
  thread_local std::uint64_t ring_session = 0;
  State& s = state();
  const std::uint64_t session = s.session.load(std::memory_order_acquire);
  if (ring != nullptr && ring_session == session) return ring;
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.sink == nullptr) return nullptr;  // tracing ended meanwhile
  const auto tid = static_cast<std::uint32_t>(s.rings.size());
  s.rings.push_back(std::make_unique<Ring>(s.ring_capacity, tid));
  ring = s.rings.back().get();
  ring_session = s.session.load(std::memory_order_relaxed);
  return ring;
}

void copy_args(char* dst, const char* args) {
  if (args == nullptr || args[0] == '\0') {
    dst[0] = '\0';
    return;
  }
  const std::size_t len = std::strlen(args);
  if (len < kArgsCapacity) {
    std::memcpy(dst, args, len + 1);
  } else {
    // Never emit malformed JSON from a truncated fragment.
    std::strcpy(dst, "\"truncated\":true");
  }
}

void record(char ph, const char* name, const char* args) {
  Ring* ring = local_ring();
  if (ring == nullptr) return;
  Event event;
  event.ts_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           state().epoch)
          .count());
  event.name = name;
  event.tid = ring->tid();
  event.ph = ph;
  copy_args(event.args, args);
  if (ring->push(event)) {
    instrument::add_trace_event();
  } else {
    instrument::add_trace_drop();
  }
}

void flusher_loop() {
  State& s = state();
  std::unique_lock<std::mutex> lock(s.mutex);
  while (!s.flusher_stop) {
    s.flusher_cv.wait_for(lock, std::chrono::milliseconds(50));
    flush_locked(s);
  }
}

/// Env-driven autostart: LCN_TRACE=<path> enables tracing for the whole
/// process; the sink is drained and closed at exit.
struct EnvInit {
  EnvInit() {
    const std::string path = env_string("LCN_TRACE", "");
    if (path.empty()) return;
    TraceConfig config;
    config.path = path;
    config.level = static_cast<int>(env_int("LCN_TRACE_LEVEL", kCoarse));
    config.ring_capacity =
        static_cast<std::size_t>(env_int("LCN_TRACE_RING", 8192));
    start(config);
    std::atexit([] { stop(); });
  }
};
const EnvInit env_init;

}  // namespace

void start(const TraceConfig& config) {
  State& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.sink != nullptr) return;  // already active
    LCN_REQUIRE(!config.path.empty(), "trace sink path must be non-empty");
    LCN_REQUIRE(config.ring_capacity >= 2, "trace ring capacity too small");
    std::FILE* sink = std::fopen(config.path.c_str(), "w");
    if (sink == nullptr) {
      throw RuntimeError("trace: cannot open sink '" + config.path + "'");
    }
    s.sink = sink;
    s.epoch = Clock::now();
    s.ring_capacity = config.ring_capacity;
    s.rings.clear();
    s.session.fetch_add(1, std::memory_order_release);
    // Manifest header: stamps the trace with the build/run provenance so
    // traces are comparable across the perf trajectory (DESIGN.md §S19).
    std::fprintf(s.sink, "{\"ph\":\"M\",\"name\":\"manifest\",\"args\":%s}\n",
                 run_manifest().json().c_str());
    if (config.background_flush) {
      s.flusher_stop = false;
      // The new thread blocks on s.mutex until this lock releases.
      s.flusher = std::thread(flusher_loop);
    }
  }
  // Release pairs with the acquire in enabled(): a site that observes the
  // new level also observes the sink state written above.
  g_level.store(config.level > kFine     ? kFine
                : config.level < kCoarse ? kCoarse
                                         : config.level,
                std::memory_order_release);
}

void stop() {
  State& s = state();
  g_level.store(0, std::memory_order_release);
  std::thread flusher;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.sink == nullptr) return;
    s.flusher_stop = true;
    flusher = std::move(s.flusher);
    s.flusher_cv.notify_all();
  }
  if (flusher.joinable()) flusher.join();
  std::lock_guard<std::mutex> lock(s.mutex);
  flush_locked(s);
  std::fclose(s.sink);
  s.sink = nullptr;
  s.rings.clear();
  // Bump the session so thread-local ring pointers from this session are
  // re-registered (not dereferenced) if tracing restarts.
  s.session.fetch_add(1, std::memory_order_release);
}

void flush() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  flush_locked(s);
}

bool active() { return g_level.load(std::memory_order_acquire) > 0; }

void emit_begin(const char* name, int level) {
  if (!enabled(level)) return;
  record('B', name, nullptr);
}

void emit_end(const char* name, int level, const char* args) {
  if (!enabled(level)) return;
  record('E', name, args);
}

void emit_instant(const char* name, int level, const char* args) {
  if (!enabled(level)) return;
  record('i', name, args);
}

void emit_counter(const char* name, int level, double value) {
  if (!enabled(level)) return;
  record('C', name, strfmt("\"value\":%.9g", value).c_str());
}

void Span::set_args(const std::string& args_json) {
  if (!active_) return;
  copy_args(args_, args_json.c_str());
  has_args_ = true;
}

void warn_if_dropped() {
  const instrument::Snapshot snap = instrument::snapshot();
  if (snap.trace_events_dropped == 0) return;
  LCN_WARN() << "trace rings overflowed: " << snap.trace_events_dropped
             << " of "
             << (snap.trace_events_emitted + snap.trace_events_dropped)
             << " events dropped — raise LCN_TRACE_RING or lower "
                "LCN_TRACE_LEVEL for a complete trace";
}

}  // namespace lcn::trace
