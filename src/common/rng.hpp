// Deterministic random number generation (SplitMix64 seeding + xoshiro256**).
//
// The optimizer must be reproducible across runs and platforms, so we avoid
// std::mt19937/std::uniform_* whose streams are not portable, and keep the
// whole stream derivable from a single 64-bit seed.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace lcn {

/// SplitMix64 — used to expand a user seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), public domain reference algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire-style rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    LCN_REQUIRE(bound > 0, "next_below needs a positive bound");
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    LCN_REQUIRE(lo <= hi, "next_int needs lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [lo, hi).
  double next_real(double lo, double hi) {
    LCN_REQUIRE(lo <= hi, "next_real needs lo <= hi");
    return lo + (hi - lo) * next_double();
  }

  bool next_bool() { return (next_u64() >> 63) != 0; }

  /// Derive an independent child stream (for per-thread / per-round rngs).
  Rng fork() { return Rng(next_u64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace lcn
