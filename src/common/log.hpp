// Minimal leveled logger. Level is controlled by the LCN_LOG env var
// (error|warn|info|debug); default is warn so library output stays quiet
// inside tests and benches unless asked for.
#pragma once

#include <sstream>
#include <string>

namespace lcn {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);
bool log_enabled(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace lcn

#define LCN_LOG(level)                      \
  if (!::lcn::log_enabled(level)) {         \
  } else                                    \
    ::lcn::detail::LogLine(level)

#define LCN_ERROR() LCN_LOG(::lcn::LogLevel::kError)
#define LCN_WARN() LCN_LOG(::lcn::LogLevel::kWarn)
#define LCN_INFO() LCN_LOG(::lcn::LogLevel::kInfo)
#define LCN_DEBUG() LCN_LOG(::lcn::LogLevel::kDebug)
