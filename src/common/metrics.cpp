#include "common/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/env.hpp"
#include "common/instrument.hpp"
#include "common/manifest.hpp"
#include "common/strings.hpp"
#include "common/task_context.hpp"

namespace lcn::metrics {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

#define LCN_METRICS_NAME_ENTRY(name, help) #name,
#define LCN_METRICS_HELP_ENTRY(name, help) help,
constexpr const char* kHistNames[] = {
    LCN_METRIC_HISTOGRAMS(LCN_METRICS_NAME_ENTRY)};
constexpr const char* kHistHelp[] = {
    LCN_METRIC_HISTOGRAMS(LCN_METRICS_HELP_ENTRY)};
constexpr const char* kGaugeNames[] = {
    LCN_METRIC_GAUGES(LCN_METRICS_NAME_ENTRY)};
constexpr const char* kGaugeHelp[] = {
    LCN_METRIC_GAUGES(LCN_METRICS_HELP_ENTRY)};
constexpr const char* kCounterNames[] = {
    LCN_METRIC_COUNTERS(LCN_METRICS_NAME_ENTRY)};
constexpr const char* kCounterHelp[] = {
    LCN_METRIC_COUNTERS(LCN_METRICS_HELP_ENTRY)};
#undef LCN_METRICS_NAME_ENTRY
#undef LCN_METRICS_HELP_ENTRY

/// The fixed finite bucket bounds (seconds), 1e-6 * 2^i. Computed once; the
/// values are exact binary scalings of 1e-6 so every process agrees on them
/// bit for bit.
const std::array<double, kFiniteBuckets>& bucket_bounds() {
  static const std::array<double, kFiniteBuckets> bounds = [] {
    std::array<double, kFiniteBuckets> b{};
    double v = 1e-6;
    for (std::size_t i = 0; i < kFiniteBuckets; ++i) {
      b[i] = v;
      v *= 2.0;
    }
    return b;
  }();
  return bounds;
}

std::uint64_t to_nanos(double seconds) {
  if (!std::isfinite(seconds) || seconds <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int level_from_env() {
  const long v = env_int("LCN_METRICS", kCoarse);
  return static_cast<int>(std::clamp(v, 0L, 2L));
}

/// Round-robin stripe assignment: each thread picks a stripe on first use
/// and keeps it, spreading pool threads across cache lines without any
/// per-observation coordination.
std::size_t this_thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, kRelaxed) % Histogram::kStripes;
  return stripe;
}

}  // namespace

const char* hist_name(Hist h) {
  return kHistNames[static_cast<std::size_t>(h)];
}
const char* hist_help(Hist h) {
  return kHistHelp[static_cast<std::size_t>(h)];
}
const char* gauge_name(Gauge g) {
  return kGaugeNames[static_cast<std::size_t>(g)];
}
const char* gauge_help(Gauge g) {
  return kGaugeHelp[static_cast<std::size_t>(g)];
}
const char* counter_name(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}
const char* counter_help(Counter c) {
  return kCounterHelp[static_cast<std::size_t>(c)];
}

std::atomic<int> g_level{level_from_env()};

void set_level(int level) {
  g_level.store(std::clamp(level, 0, 2), kRelaxed);
}

double bucket_bound(std::size_t i) { return bucket_bounds()[i]; }

std::size_t bucket_index(double seconds) {
  if (!std::isfinite(seconds) || seconds <= 0.0) return 0;
  const auto& bounds = bucket_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), seconds);
  return static_cast<std::size_t>(it - bounds.begin());  // end() == overflow
}

// ---------------------------------------------------------------------------
// Histogram

void Histogram::observe(double seconds) {
  Stripe& stripe = stripes_[this_thread_stripe()];
  stripe.counts[bucket_index(seconds)].fetch_add(1, kRelaxed);
  stripe.sum_nanos.fetch_add(to_nanos(seconds), kRelaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (const Stripe& stripe : stripes_) {
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      s.buckets[b] += stripe.counts[b].load(kRelaxed);
    }
    s.sum_nanos += stripe.sum_nanos.load(kRelaxed);
  }
  for (const std::uint64_t c : s.buckets) s.count += c;
  return s;
}

void Histogram::reset() {
  for (Stripe& stripe : stripes_) {
    for (auto& c : stripe.counts) c.store(0, kRelaxed);
    stripe.sum_nanos.store(0, kRelaxed);
  }
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum_nanos += other.sum_nanos;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count)));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      return bucket_bound(std::min(b, kFiniteBuckets - 1));
    }
  }
  return bucket_bound(kFiniteBuckets - 1);  // unreachable: count > 0
}

// ---------------------------------------------------------------------------
// Shard + snapshot

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (std::size_t h = 0; h < kHistCount; ++h) {
    histograms[h].merge(other.histograms[h]);
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) gauges[g] = other.gauges[g];
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    counters[c] += other.counters[c];
  }
}

std::string MetricsSnapshot::json() const {
  std::string out = "{\"histograms\":{";
  bool first = true;
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const HistogramSnapshot& hist = histograms[h];
    if (!first) out += ',';
    first = false;
    out += strfmt(
        "\"%s\":{\"count\":%llu,\"sum_nanos\":%llu,"
        "\"p50\":%.9g,\"p95\":%.9g,\"p99\":%.9g",
        kHistNames[h], static_cast<unsigned long long>(hist.count),
        static_cast<unsigned long long>(hist.sum_nanos), hist.quantile(0.50),
        hist.quantile(0.95), hist.quantile(0.99));
    if (hist.count > 0) {
      // Sparse bucket map {bound_or_+inf: count}; bounds render with %.9g so
      // the client can parse them back exactly (doubles here are powers of
      // two times 1e-6).
      out += ",\"buckets\":{";
      bool first_bucket = true;
      for (std::size_t b = 0; b < kBucketCount; ++b) {
        if (hist.buckets[b] == 0) continue;
        if (!first_bucket) out += ',';
        first_bucket = false;
        if (b < kFiniteBuckets) {
          out += strfmt("\"%.9g\":%llu", bucket_bound(b),
                        static_cast<unsigned long long>(hist.buckets[b]));
        } else {
          out += strfmt("\"+inf\":%llu",
                        static_cast<unsigned long long>(hist.buckets[b]));
        }
      }
      out += '}';
    }
    out += '}';
  }
  out += "},\"gauges\":{";
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    out += strfmt("%s\"%s\":%lld", g == 0 ? "" : ",", kGaugeNames[g],
                  static_cast<long long>(gauges[g]));
  }
  out += "},\"counters\":{";
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    out += strfmt("%s\"%s\":%llu", c == 0 ? "" : ",", kCounterNames[c],
                  static_cast<unsigned long long>(counters[c]));
  }
  out += "}}";
  return out;
}

MetricsSnapshot MetricShard::snapshot() const {
  MetricsSnapshot s;
  for (std::size_t h = 0; h < kHistCount; ++h) {
    s.histograms[h] = histograms[h].snapshot();
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    s.gauges[g] = gauges[g].load(kRelaxed);
  }
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    s.counters[c] = counters[c].load(kRelaxed);
  }
  return s;
}

void MetricShard::reset() {
  for (auto& h : histograms) h.reset();
  for (auto& g : gauges) g.store(0, kRelaxed);
  for (auto& c : counters) c.store(0, kRelaxed);
}

MetricShard& global_shard() {
  static MetricShard shard;
  return shard;
}

// ---------------------------------------------------------------------------
// Billing (global + session shard, mirroring instrument::bump)

void observe(Hist h, double seconds) {
  const std::size_t i = static_cast<std::size_t>(h);
  global_shard().histograms[i].observe(seconds);
  const TaskContext* ctx = current_task_context();
  if (ctx != nullptr && ctx->metrics != nullptr) {
    ctx->metrics->histograms[i].observe(seconds);
  }
}

void count(Counter c, std::uint64_t n) {
  const std::size_t i = static_cast<std::size_t>(c);
  global_shard().counters[i].fetch_add(n, kRelaxed);
  const TaskContext* ctx = current_task_context();
  if (ctx != nullptr && ctx->metrics != nullptr) {
    ctx->metrics->counters[i].fetch_add(n, kRelaxed);
  }
}

void gauge_set(Gauge g, std::int64_t value) {
  global_shard().gauges[static_cast<std::size_t>(g)].store(value, kRelaxed);
}

void gauge_add(Gauge g, std::int64_t delta) {
  global_shard().gauges[static_cast<std::size_t>(g)].fetch_add(delta,
                                                               kRelaxed);
}

ScopedLatency::ScopedLatency(Hist h, int level)
    : hist_(h), active_(enabled(level)) {
  if (active_) start_nanos_ = now_nanos();
}

ScopedLatency::~ScopedLatency() {
  if (!active_) return;
  observe(hist_, static_cast<double>(now_nanos() - start_nanos_) * 1e-9);
}

// ---------------------------------------------------------------------------
// Shared sample quantile

double sample_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(values.size())));
  rank = std::clamp<std::size_t>(rank, 1, values.size());
  return values[rank - 1];
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (format 0.0.4)

std::string manifest_labels() {
  const RunManifest& m = run_manifest();
  return strfmt("git_sha=\"%s\",build_type=\"%s\",threads=\"%ld\"",
                m.git_sha.c_str(), m.build_type.c_str(), m.lcn_threads);
}

namespace {

std::string label_block(const std::string& labels) {
  return labels.empty() ? std::string() : "{" + labels + "}";
}

/// `{existing,le="bound"}` — merges the le label into the shared label set.
std::string bucket_labels(const std::string& labels, const char* le) {
  if (labels.empty()) return strfmt("{le=\"%s\"}", le);
  return strfmt("{%s,le=\"%s\"}", labels.c_str(), le);
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& metrics,
                            const instrument::Snapshot& counters,
                            const std::string& labels) {
  std::string out;
  out.reserve(16384);
  const std::string plain = label_block(labels);

  for (std::size_t h = 0; h < kHistCount; ++h) {
    const HistogramSnapshot& hist = metrics.histograms[h];
    out += strfmt("# HELP lcn_%s %s\n", kHistNames[h], kHistHelp[h]);
    out += strfmt("# TYPE lcn_%s histogram\n", kHistNames[h]);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kFiniteBuckets; ++b) {
      cumulative += hist.buckets[b];
      out += strfmt("lcn_%s_bucket%s %llu\n", kHistNames[h],
                    bucket_labels(labels, strfmt("%.9g", bucket_bound(b)).c_str()).c_str(),
                    static_cast<unsigned long long>(cumulative));
    }
    out += strfmt("lcn_%s_bucket%s %llu\n", kHistNames[h],
                  bucket_labels(labels, "+Inf").c_str(),
                  static_cast<unsigned long long>(hist.count));
    out += strfmt("lcn_%s_sum%s %.9g\n", kHistNames[h], plain.c_str(),
                  hist.sum_seconds());
    out += strfmt("lcn_%s_count%s %llu\n", kHistNames[h], plain.c_str(),
                  static_cast<unsigned long long>(hist.count));
  }

  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    out += strfmt("# HELP lcn_%s %s\n", kGaugeNames[g], kGaugeHelp[g]);
    out += strfmt("# TYPE lcn_%s gauge\n", kGaugeNames[g]);
    out += strfmt("lcn_%s%s %lld\n", kGaugeNames[g], plain.c_str(),
                  static_cast<long long>(metrics.gauges[g]));
  }

  for (std::size_t c = 0; c < kCounterCount; ++c) {
    out += strfmt("# HELP lcn_%s_total %s\n", kCounterNames[c],
                  kCounterHelp[c]);
    out += strfmt("# TYPE lcn_%s_total counter\n", kCounterNames[c]);
    out += strfmt("lcn_%s_total%s %llu\n", kCounterNames[c], plain.c_str(),
                  static_cast<unsigned long long>(metrics.counters[c]));
  }

  // Every instrument work counter rides along as lcn_<name>_total, so one
  // scrape covers both registries.
#define LCN_METRICS_PROM_COUNTER(name)                         \
  out += "# TYPE lcn_" #name "_total counter\n";               \
  out += strfmt("lcn_" #name "_total%s %llu\n", plain.c_str(), \
                static_cast<unsigned long long>(counters.name));
  LCN_INSTRUMENT_COUNTERS(LCN_METRICS_PROM_COUNTER)
#undef LCN_METRICS_PROM_COUNTER

  return out;
}

}  // namespace lcn::metrics
