// Lightweight contract checking used across the library.
//
// LCN_REQUIRE  — precondition on public API input; always on; throws
//                lcn::ContractError so callers (and tests) can observe it.
// LCN_CHECK    — internal invariant; always on; throws lcn::InternalError.
// LCN_ASSERT   — hot-path invariant; compiled out in NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>

namespace lcn {

/// Violation of a documented precondition of a public API.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Violation of an internal invariant (a bug in this library).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Runtime failure (singular system, non-convergence, bad file, ...).
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_contract(const char* expr, const char* file, int line,
                                 const std::string& msg);
[[noreturn]] void throw_internal(const char* expr, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace lcn

#define LCN_REQUIRE(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) ::lcn::detail::throw_contract(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define LCN_CHECK(expr, msg)                                            \
  do {                                                                  \
    if (!(expr)) ::lcn::detail::throw_internal(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define LCN_ASSERT(expr, msg) ((void)0)
#else
#define LCN_ASSERT(expr, msg) LCN_CHECK(expr, msg)
#endif
