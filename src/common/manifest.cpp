#include "common/manifest.hpp"

#include <cstdio>
#include <thread>

#include "common/env.hpp"
#include "common/strings.hpp"

// Build configuration baked in by src/CMakeLists.txt; default for unity /
// out-of-tree compiles of this file.
#ifndef LCN_BUILD_TYPE
#define LCN_BUILD_TYPE "unknown"
#endif
#ifndef LCN_SANITIZE_CFG
#define LCN_SANITIZE_CFG ""
#endif

namespace lcn {

namespace {

/// First line of `cmd`, trimmed; "" on any failure (no git, not a repo).
std::string command_line_output(const char* cmd) {
  std::FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) return "";
  char buffer[256];
  std::string out;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out = buffer;
  const int status = ::pclose(pipe);
  if (status != 0) return "";
  return std::string(trim(out));
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out += c;
  }
  return out;
}

RunManifest build_manifest() {
  RunManifest m;
  m.git_sha =
      command_line_output("git describe --always --dirty --abbrev=12 2>/dev/null");
  if (m.git_sha.empty()) m.git_sha = "unknown";
  m.build_type = LCN_BUILD_TYPE;
  m.sanitizer = LCN_SANITIZE_CFG;
  m.compiler = __VERSION__;
  m.lcn_threads = env_int("LCN_THREADS", 0);
  m.hardware_threads =
      static_cast<long>(std::thread::hardware_concurrency());
  m.trace_path = env_string("LCN_TRACE", "");
  m.trace_level =
      m.trace_path.empty() ? 0 : env_int("LCN_TRACE_LEVEL", 1);
  return m;
}

}  // namespace

std::string RunManifest::json() const {
  return strfmt(
      "{\"git_sha\":\"%s\",\"build_type\":\"%s\",\"sanitizer\":\"%s\","
      "\"compiler\":\"%s\",\"lcn_threads\":%ld,\"hardware_threads\":%ld,"
      "\"trace\":\"%s\",\"trace_level\":%ld}",
      json_escape(git_sha).c_str(), json_escape(build_type).c_str(),
      json_escape(sanitizer).c_str(), json_escape(compiler).c_str(),
      lcn_threads, hardware_threads, json_escape(trace_path).c_str(),
      trace_level);
}

const RunManifest& run_manifest() {
  static const RunManifest manifest = build_manifest();
  return manifest;
}

}  // namespace lcn
