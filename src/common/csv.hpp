// CSV emission for benchmark series (figure reproductions write both an
// aligned table to stdout and an optional CSV file for plotting).
#pragma once

#include <string>
#include <vector>

namespace lcn {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<std::string>& row);

  std::string str() const;

  /// Write to path; throws lcn::RuntimeError on I/O failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lcn
