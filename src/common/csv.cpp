#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace lcn {

namespace {
std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  LCN_REQUIRE(!header_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  LCN_REQUIRE(row.size() == header_.size(),
              "csv row width must match header");
  rows_.push_back(row);
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open CSV output file: " + path);
  out << str();
  if (!out) throw RuntimeError("failed writing CSV output file: " + path);
}

}  // namespace lcn
