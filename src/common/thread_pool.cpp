#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/env.hpp"
#include "common/task_context.hpp"

namespace lcn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

thread_local bool t_in_task = false;

// Shared by the caller and all pool shards; owned via shared_ptr so shards
// that dequeue after the caller has already finished stay valid.
struct ForState {
  explicit ForState(std::size_t n, std::function<void(std::size_t)> f)
      : count(n), fn(std::move(f)), context(current_task_context()) {}
  const std::size_t count;
  const std::function<void(std::size_t)> fn;
  /// The submitter's task context, re-installed on every draining worker so
  /// counters/cancellation/progress follow the job across the pool.
  const TaskContext* const context;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  void drain() {
    const bool was_in_task = t_in_task;
    t_in_task = true;
    ScopedTaskContext scope(context);
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) {
        t_in_task = was_in_task;
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == count) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};
}  // namespace

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Run inline when fanning out cannot help: trivial counts, a single
  // worker, or a nested call from inside another parallel_for task (the
  // outer loop already owns the pool; queueing nested shards would only add
  // contention).
  if (count == 1 || workers_.size() == 1 || t_in_task) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>(count, fn);
  std::size_t width = workers_.size();
  // Fair-share cap (§S22): a job running under a scheduler-assigned share
  // fans out over at most `share` workers, the submitting thread included,
  // so concurrent jobs split the pool instead of each flooding the queue.
  // The share is read per call — the scheduler rebalances running jobs live.
  if (state->context != nullptr && state->context->pool_share != nullptr) {
    const std::size_t share =
        state->context->pool_share->load(std::memory_order_relaxed);
    if (share > 0) width = std::min(width, share);
  }
  if (width <= 1) {
    state->drain();  // degenerate share: stay on the submitting thread
    if (state->first_error) std::rethrow_exception(state->first_error);
    return;
  }
  const std::size_t shards = std::min(width, count);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t s = 0; s + 1 < shards; ++s) {
      tasks_.push([state] { state->drain(); });
    }
  }
  cv_.notify_all();
  state->drain();  // the calling thread participates

  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(lock, [&] { return state->done.load() == count; });
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

bool ThreadPool::in_task() { return t_in_task; }

namespace {
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
std::atomic<ThreadPool*> g_pool_ptr{nullptr};

std::size_t default_pool_threads() {
  return static_cast<std::size_t>(env_int("LCN_THREADS", 0));
}
}  // namespace

ThreadPool& global_pool() {
  ThreadPool* pool = g_pool_ptr.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(default_pool_threads());
    g_pool_ptr.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

void set_global_pool_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool_ptr.store(nullptr, std::memory_order_release);
  g_pool.reset();  // joins the old workers
  g_pool = std::make_unique<ThreadPool>(
      threads != 0 ? threads : default_pool_threads());
  g_pool_ptr.store(g_pool.get(), std::memory_order_release);
}

std::size_t global_pool_threads() { return global_pool().size(); }

}  // namespace lcn
