#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

#include "common/env.hpp"

namespace lcn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {
// Shared by the caller and all pool shards; owned via shared_ptr so shards
// that dequeue after the caller has already finished stay valid.
struct ForState {
  explicit ForState(std::size_t n, std::function<void(std::size_t)> f)
      : count(n), fn(std::move(f)) {}
  const std::size_t count;
  const std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == count) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};
}  // namespace

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>(count, fn);
  const std::size_t shards = std::min(workers_.size(), count);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t s = 0; s + 1 < shards; ++s) {
      tasks_.push([state] { state->drain(); });
    }
  }
  cv_.notify_all();
  state->drain();  // the calling thread participates

  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(lock, [&] { return state->done.load() == count; });
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool(static_cast<std::size_t>(env_int("LCN_THREADS", 0)));
  return pool;
}

}  // namespace lcn
