#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace lcn {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\r' ||
                   text[b] == '\n')) {
    ++b;
  }
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' ||
                   text[e - 1] == '\r' || text[e - 1] == '\n')) {
    --e;
  }
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace lcn
