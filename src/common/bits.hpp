// Bit-pattern helpers for floating-point keyed caches and fingerprints.
//
// Memo tables parameterized by a double (the evaluator's per-P_sys probe
// cache, the SA evaluator cache's content hashes) must use *exact-match*
// semantics: a probe at P_sys hits only when the requester passes the very
// same IEEE-754 bit pattern. Keying std::map/std::unordered_map on the
// double itself gets close but is subtly wrong at the edges: +0.0 and -0.0
// compare equal yet can mean different inputs upstream, and NaN breaks
// ordered-map invariants entirely. Keying on the bit pattern makes the
// semantics explicit and total.
#pragma once

#include <bit>
#include <cstdint>

namespace lcn::bits {

/// The exact IEEE-754 bit pattern of `v` — the canonical cache key for a
/// double-valued parameter. Distinguishes +0.0 from -0.0 and every NaN
/// payload from every other; two keys are equal iff the doubles are
/// bit-identical.
inline std::uint64_t double_key(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace lcn::bits
