// Lightweight solver instrumentation (DESIGN.md §S1, sharded in §S22).
//
// The hot numerical paths (SpMV, Krylov solvers, 4RM/2RM assembly, the SA
// evaluator cache) bump relaxed atomic counters; benches snapshot them and
// emit machine-readable perf records (bench_results/BENCH_parallel.json) so
// the perf trajectory of serial vs parallel configurations is tracked over
// time. Counting costs one relaxed atomic add per *kernel invocation* (not
// per element), so the overhead is far below measurement noise.
//
// Multi-tenant sharding (§S22): every add_* always bills the process-wide
// counters, and *additionally* bills the CounterShard of the task context
// installed on the calling thread (common/task_context.hpp), when one is.
// A session's shard therefore accounts exactly the work its own job
// performed — on whichever pool threads it ran — while the global counters
// keep their historical whole-process meaning.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace lcn::instrument {

// The one list of counters; CounterShard, Snapshot conversions and the JSON
// rendering are all generated from it so a new counter cannot be added to
// one and forgotten in another.
#define LCN_INSTRUMENT_COUNTERS(X) \
  X(spmv_count)                    \
  X(spmv_nnz)                      \
  X(cg_solves)                     \
  X(cg_iterations)                 \
  X(bicgstab_solves)               \
  X(bicgstab_iterations)           \
  X(gmres_solves)                  \
  X(gmres_iterations)              \
  X(assemblies)                    \
  X(assemblies_symbolic)           \
  X(assemblies_refill)             \
  X(workspace_reuses)              \
  X(flow_plan_hits)                \
  X(flow_plan_misses)              \
  X(steady_solves)                 \
  X(pressure_probes)               \
  X(cache_hits)                    \
  X(cache_misses)                  \
  X(assembly_micros)               \
  X(solve_micros)                  \
  X(scenarios_evaluated)           \
  X(scenarios_infeasible)          \
  X(recovery_searches)             \
  X(trace_events_emitted)          \
  X(trace_events_dropped)          \
  X(mg_vcycles)                    \
  X(mg_coarse_solves)              \
  X(fp32_inner_iters)              \
  X(refinement_steps)              \
  X(island_migrations)             \
  X(pt_swaps)                      \
  X(archive_inserts)               \
  X(jobs_completed)                \
  X(jobs_cancelled)                \
  X(transient_steps)               \
  X(transient_refills)             \
  X(transient_rebuilds)            \
  X(rhs_refills)                   \
  X(scenario_steps)

/// Point-in-time copy of every counter. `json()` renders a flat JSON object
/// (the "counters" field of the BENCH_parallel.json schema, README §Bench).
struct Snapshot {
  std::uint64_t spmv_count = 0;          ///< CsrMatrix::multiply calls
  std::uint64_t spmv_nnz = 0;            ///< nonzeros streamed by SpMV
  std::uint64_t cg_solves = 0;
  std::uint64_t cg_iterations = 0;
  std::uint64_t bicgstab_solves = 0;
  std::uint64_t bicgstab_iterations = 0;
  std::uint64_t gmres_solves = 0;
  std::uint64_t gmres_iterations = 0;
  std::uint64_t assemblies = 0;          ///< 4RM/2RM system assemblies
  std::uint64_t assemblies_symbolic = 0; ///< one-time AssemblyPlan builds
  std::uint64_t assemblies_refill = 0;   ///< numeric value refills of a plan
  std::uint64_t workspace_reuses = 0;    ///< Krylov solves on a caller workspace
  std::uint64_t flow_plan_hits = 0;      ///< flow pattern served from cache
  std::uint64_t flow_plan_misses = 0;    ///< flow pattern analyzed fresh
  std::uint64_t steady_solves = 0;
  std::uint64_t pressure_probes = 0;     ///< Algorithm-3 / golden-section probes
  std::uint64_t cache_hits = 0;          ///< SA evaluator cache
  std::uint64_t cache_misses = 0;
  std::uint64_t assembly_micros = 0;     ///< wall time in assemble()
  std::uint64_t solve_micros = 0;        ///< wall time in solve_steady()
  std::uint64_t scenarios_evaluated = 0;   ///< reliability fault scenarios
  std::uint64_t scenarios_infeasible = 0;  ///< violated limits / unevaluable
  std::uint64_t recovery_searches = 0;     ///< degradation-planner searches
  std::uint64_t trace_events_emitted = 0;  ///< events recorded into trace rings
  std::uint64_t trace_events_dropped = 0;  ///< events lost to ring overflow
  std::uint64_t mg_vcycles = 0;            ///< multigrid V-cycle applications
  std::uint64_t mg_coarse_solves = 0;      ///< dense coarse-level solves
  std::uint64_t fp32_inner_iters = 0;      ///< fp32 inner Krylov iterations
  std::uint64_t refinement_steps = 0;      ///< fp64 iterative-refinement steps
  std::uint64_t island_migrations = 0;     ///< accepted island best-design moves
  std::uint64_t pt_swaps = 0;              ///< accepted parallel-tempering swaps
  std::uint64_t archive_inserts = 0;       ///< Pareto-archive frontier entries
  std::uint64_t jobs_completed = 0;        ///< scheduler jobs run to completion
  std::uint64_t jobs_cancelled = 0;        ///< scheduler jobs cancelled/timed out
  std::uint64_t transient_steps = 0;       ///< backward-Euler steps solved
  std::uint64_t transient_refills = 0;     ///< same-structure operator refills
  std::uint64_t transient_rebuilds = 0;    ///< full symbolic operator rebuilds
  std::uint64_t rhs_refills = 0;           ///< RHS-only boundary/power refills
  std::uint64_t scenario_steps = 0;        ///< dynamic-scenario engine steps

  double cache_hit_rate() const;
  std::string json() const;
};

/// One independent set of counters. The process-wide counters are one of
/// these; each service session (§S22) owns another, billed in addition to
/// the global one by every add_* performed under its task context.
struct CounterShard {
#define LCN_INSTRUMENT_SHARD_FIELD(name) std::atomic<std::uint64_t> name{0};
  LCN_INSTRUMENT_COUNTERS(LCN_INSTRUMENT_SHARD_FIELD)
#undef LCN_INSTRUMENT_SHARD_FIELD

  /// Point-in-time copy (relaxed loads, same semantics as snapshot()).
  Snapshot snapshot() const;
  /// Race-clean drain: exchange-based, same contract as snapshot_and_reset().
  Snapshot snapshot_and_reset();
  void reset() { (void)snapshot_and_reset(); }
};

void add_spmv(std::uint64_t nnz);
void add_cg(std::uint64_t iterations);
void add_bicgstab(std::uint64_t iterations);
void add_gmres(std::uint64_t iterations);
void add_assembly(double seconds);
void add_assembly_symbolic();
void add_assembly_refill();
void add_workspace_reuse();
void add_flow_plan_hit();
void add_flow_plan_miss();
void add_steady_solve(double seconds);
void add_pressure_probe();
void add_cache_hit();
void add_cache_miss();
void add_scenario_evaluated();
void add_scenario_infeasible();
void add_recovery_search();
void add_trace_event();
void add_trace_drop();
void add_mg_vcycle();
void add_mg_coarse_solve();
void add_fp32_inner(std::uint64_t iterations);
void add_refinement_step();
void add_island_migration();
void add_pt_swap();
void add_archive_insert();
void add_job_completed();
void add_job_cancelled();
void add_transient_step();
void add_transient_refill();
void add_transient_rebuild();
void add_rhs_refill();
void add_scenario_step();

Snapshot snapshot();
/// Difference of two snapshots (per-phase accounting in benches). This is
/// the preferred per-phase pattern — snapshot before, snapshot after, diff —
/// because it needs no coordination with concurrent counter adds.
Snapshot delta(const Snapshot& before, const Snapshot& after);

/// Atomically drain every counter: each counter's value moves into the
/// returned snapshot with a single exchange, so an add racing this call from
/// a pool thread lands either in the returned snapshot or in the fresh epoch
/// — never in both and never lost. This is the one race-clean way to
/// "snapshot then reset"; a separate snapshot() followed by reset() would
/// silently drop adds that land between the two calls.
Snapshot snapshot_and_reset();

/// snapshot_and_reset() discarding the drained values.
void reset();

}  // namespace lcn::instrument
