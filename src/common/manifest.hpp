// Run provenance manifest (DESIGN.md §S19).
//
// Every machine-readable output — bench perf records (bench_util) and trace
// sinks (common/trace) — is stamped with the same manifest so records from
// different commits, thread counts and build configurations stay comparable
// across the perf trajectory. Fields that cannot be determined degrade to
// "unknown" (e.g. git outside a work tree) so downstream JSON consumers keep
// parsing.
#pragma once

#include <string>

namespace lcn {

struct RunManifest {
  std::string git_sha;    ///< `git describe --always --dirty`, or "unknown"
  std::string build_type; ///< CMAKE_BUILD_TYPE baked in at compile time
  std::string sanitizer;  ///< LCN_SANITIZE value, "" when off
  std::string compiler;   ///< __VERSION__
  long lcn_threads = 0;   ///< LCN_THREADS env (0 = hardware default)
  long hardware_threads = 0;
  std::string trace_path; ///< LCN_TRACE sink, "" when tracing is off
  long trace_level = 0;

  /// Flat JSON object, e.g. {"git_sha":"abc123","build_type":"Release",...}.
  std::string json() const;
};

/// The process manifest, computed once on first use (the git lookup shells
/// out) and stable for the life of the process.
const RunManifest& run_manifest();

}  // namespace lcn
