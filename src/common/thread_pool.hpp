// Fixed-size thread pool with a parallel_for_each helper.
//
// The paper evaluates 64 SA neighbors simultaneously on an 80-core server;
// we reproduce the structure with a pool sized to the host (or to the
// LCN_THREADS env knob) so schedules stay identical regardless of core count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lcn {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool; blocks until all done.
  /// Exceptions from tasks are captured and the first one is rethrown.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Pool shared by the optimizer; sized by LCN_THREADS (default: all cores).
ThreadPool& global_pool();

}  // namespace lcn
