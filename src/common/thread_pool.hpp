// Fixed-size thread pool with a parallel_for_each helper.
//
// The paper evaluates 64 SA neighbors simultaneously on an 80-core server;
// we reproduce the structure with a pool sized to the host (or to the
// LCN_THREADS env knob) so schedules stay identical regardless of core count.
//
// Share-aware submission (DESIGN.md §S22): parallel_for captures the
// submitting thread's TaskContext (common/task_context.hpp) and re-installs
// it on every worker that drains the call's shards, so per-session counters,
// cancellation and progress streaming follow the job across the pool. When
// the context carries a pool_share, the call fans out over at most that many
// workers (submitter included) — the fair-share scheduler's mechanism for
// letting K concurrent jobs coexist on one pool without any of them hogging
// the queue. Work distribution never affects results (the §S1 contract), so
// a job's output is bit-identical at any share width.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lcn {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool; blocks until all done.
  /// Exceptions from tasks are captured and the first one is rethrown.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// True while the calling thread is executing a parallel_for task (on any
  /// pool). Data-parallel kernels check this to stay serial when they are
  /// already inside an outer parallel region (e.g. SpMV inside an SA
  /// neighbor evaluation), avoiding oversubscription.
  static bool in_task();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Pool shared by the optimizer and the parallel numerical kernels; sized by
/// LCN_THREADS (default: all cores; 1 keeps every kernel on the legacy
/// serial path).
ThreadPool& global_pool();

/// Rebuild the global pool with `threads` workers (0 = LCN_THREADS/default).
/// Must not be called while pool tasks are in flight; used by tests and
/// benches to compare thread counts within one process.
void set_global_pool_threads(std::size_t threads);

/// Worker count of the global pool (creates it on first use).
std::size_t global_pool_threads();

}  // namespace lcn
