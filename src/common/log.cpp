#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace lcn {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("LCN_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= level_storage().load();
}

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[lcn:%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace lcn
