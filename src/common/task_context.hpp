// Per-task execution context propagated across pool threads (DESIGN.md §S22).
//
// One process now serves many concurrent jobs (src/service), so the state
// that used to be implicitly process-wide — instrument counters, the
// flow-plan cache, cooperative cancellation, the job's share of the thread
// pool, progress streaming — travels with the *task* instead. A TaskContext
// is installed on the submitting thread (ScopedTaskContext) and
// ThreadPool::parallel_for re-installs it on every worker that drains the
// task's shards, so a kernel deep inside an SA neighbor evaluation bills its
// counters to the right session no matter which thread runs it.
//
// Everything here is optional: a null field means "process-wide behavior",
// so single-job binaries (tests, benches, the CLI without --serve) run
// exactly as before with no context installed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lcn {

class FlowPlanCache;  // flow/flow_plan.hpp (common cannot include flow)

namespace instrument {
struct CounterShard;  // common/instrument.hpp
}

namespace metrics {
struct MetricShard;  // common/metrics.hpp
}

/// Receives per-iteration progress events (the sa_iter stream of §S19) for
/// one session, independent of the process-wide trace sink. `args` follows
/// the trace convention: the *inside* of a JSON object, or nullptr/"".
/// Implementations must be thread-safe against their own consumers but are
/// only ever called from the threads executing the owning session's job.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void emit(const char* name, const char* args) = 0;
  /// Called by the scheduler under its lock, before the job is queued, so
  /// the sink knows its job id before the first emit can possibly fire.
  virtual void bind_job(std::uint64_t /*job_id*/) {}
};

/// Cooperative cancellation thrown by throw_if_cancelled(). Deliberately NOT
/// an lcn::RuntimeError: evaluation code converts RuntimeError into an
/// infeasible score, and a cancellation must unwind the whole job instead of
/// being swallowed as "this candidate was infeasible".
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& what) : std::runtime_error(what) {}
};

struct TaskContext {
  /// Session counter shard; add_* in common/instrument bills both this shard
  /// and the process-wide counters when set.
  instrument::CounterShard* counters = nullptr;
  /// Session metrics shard (§S24); metrics::observe()/count() bill both this
  /// shard and the process-wide registry when set.
  metrics::MetricShard* metrics = nullptr;
  /// Cooperative cancellation flag (owned by the scheduler job / the CLI's
  /// SIGINT handler). Checked at coordinator loop boundaries, never inside
  /// parallel kernels, so partial results are never observed.
  const std::atomic<bool>* cancel = nullptr;
  /// The job's current share of the pool width (fair-share scheduling);
  /// parallel_for fans out over at most this many workers. null or a loaded
  /// value of 0 means "whole pool". Atomic so the scheduler can rebalance a
  /// running job when others start or finish.
  const std::atomic<std::size_t>* pool_share = nullptr;
  /// Per-session flow-plan cache shard; flow_plan_for() routes here when
  /// set, the process-wide cache otherwise.
  FlowPlanCache* flow_plans = nullptr;
  /// Per-session progress stream (daemon clients); sa_iter instants are
  /// mirrored here whether or not process-wide tracing is on.
  ProgressSink* progress = nullptr;
};

/// The context installed on the calling thread, nullptr when none.
const TaskContext* current_task_context();

/// Install `ctx` on this thread for the scope's lifetime (restores the
/// previous one on destruction). ThreadPool::parallel_for captures the
/// submitter's context and wraps every shard drain in one of these.
class ScopedTaskContext {
 public:
  explicit ScopedTaskContext(const TaskContext* ctx);
  ~ScopedTaskContext();
  ScopedTaskContext(const ScopedTaskContext&) = delete;
  ScopedTaskContext& operator=(const ScopedTaskContext&) = delete;

 private:
  const TaskContext* previous_;
};

/// True when the current task's cancellation flag is raised.
bool task_cancelled();

/// Throw lcn::Cancelled when the current task's cancellation flag is raised.
/// Cheap enough for per-iteration checks (one thread-local read + one
/// relaxed load when a flag is installed).
void throw_if_cancelled();

/// The current task's progress sink, nullptr when none.
ProgressSink* task_progress_sink();

}  // namespace lcn
