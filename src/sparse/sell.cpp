#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "sparse/parallel.hpp"

namespace lcn::sparse {

namespace {
constexpr std::uint32_t kNoRow = 0xffffffffu;
}

template <typename T>
SellMatrix<T>::SellMatrix(const CsrMatrix& a) {
  analyze(a);
  fill_values(a);
}

template <typename T>
void SellMatrix<T>::refill(const CsrMatrix& a) {
  if (!shares_structure(a)) {
    analyze(a);
  }
  fill_values(a);
}

template <typename T>
void SellMatrix<T>::analyze(const CsrMatrix& a) {
  LCN_REQUIRE(a.rows() < kNoRow && a.cols() < kNoRow,
              "SELL-C-sigma uses 32-bit indices");
  rows_ = a.rows();
  cols_ = a.cols();
  nnz_ = a.nnz();
  src_row_ptr_ = a.shared_row_ptr();
  src_col_idx_ = a.shared_col_idx();

  const std::vector<std::size_t>& row_ptr = a.row_ptr();
  const std::vector<std::size_t>& col_idx = a.col_idx();

  // Order rows by descending length within σ-sized windows. stable_sort
  // keeps equal-length rows in CSR order, so the layout is deterministic.
  std::vector<std::uint32_t> order(rows_);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t w0 = 0; w0 < rows_; w0 += kSortWindow) {
    const std::size_t w1 = std::min(w0 + kSortWindow, rows_);
    std::stable_sort(
        order.begin() + static_cast<std::ptrdiff_t>(w0),
        order.begin() + static_cast<std::ptrdiff_t>(w1),
        [&row_ptr](std::uint32_t ra, std::uint32_t rb) {
          return row_ptr[ra + 1] - row_ptr[ra] > row_ptr[rb + 1] - row_ptr[rb];
        });
  }

  const std::size_t chunks = (rows_ + kChunk - 1) / kChunk;
  chunk_offset_.assign(chunks + 1, 0);
  chunk_len_.assign(chunks, 0);
  perm_.assign(chunks * kChunk, kNoRow);
  len_.assign(chunks * kChunk, 0);

  for (std::size_t ch = 0; ch < chunks; ++ch) {
    std::uint32_t max_len = 0;
    for (std::size_t lane = 0; lane < kChunk; ++lane) {
      const std::size_t pos = ch * kChunk + lane;
      if (pos >= rows_) break;
      const std::uint32_t row = order[pos];
      const auto length =
          static_cast<std::uint32_t>(row_ptr[row + 1] - row_ptr[row]);
      perm_[pos] = row;
      len_[pos] = length;
      max_len = std::max(max_len, length);
    }
    chunk_len_[ch] = max_len;
    chunk_offset_[ch + 1] = chunk_offset_[ch] + max_len * kChunk;
  }

  // Padded column indices, slot-major within each chunk. Padding repeats the
  // lane's last valid column (or 0 for an empty row) so the padded loads hit
  // memory that is already resident; padded values are exactly +0.0.
  col_.assign(chunk_offset_.back(), 0);
  for (std::size_t ch = 0; ch < chunks; ++ch) {
    const std::size_t base = chunk_offset_[ch];
    for (std::size_t lane = 0; lane < kChunk; ++lane) {
      const std::size_t pos = ch * kChunk + lane;
      const std::uint32_t row = pos < perm_.size() ? perm_[pos] : kNoRow;
      if (row == kNoRow) continue;
      const std::size_t k0 = row_ptr[row];
      std::uint32_t last_col = 0;
      for (std::uint32_t s = 0; s < chunk_len_[ch]; ++s) {
        if (s < len_[pos]) {
          last_col = static_cast<std::uint32_t>(col_idx[k0 + s]);
        }
        col_[base + s * kChunk + lane] = last_col;
      }
    }
  }
}

template <typename T>
void SellMatrix<T>::fill_values(const CsrMatrix& a) {
  const std::vector<std::size_t>& row_ptr = a.row_ptr();
  const std::vector<double>& values = a.values();
  val_.assign(chunk_offset_.back(), T(0));
  const std::size_t chunks = chunk_len_.size();
  for (std::size_t ch = 0; ch < chunks; ++ch) {
    const std::size_t base = chunk_offset_[ch];
    for (std::size_t lane = 0; lane < kChunk; ++lane) {
      const std::size_t pos = ch * kChunk + lane;
      if (pos >= perm_.size() || perm_[pos] == kNoRow) continue;
      const std::size_t k0 = row_ptr[perm_[pos]];
      for (std::uint32_t s = 0; s < len_[pos]; ++s) {
        val_[base + s * kChunk + lane] = static_cast<T>(values[k0 + s]);
      }
    }
  }
}

template <typename T>
void SellMatrix<T>::multiply_chunks(const std::vector<T>& x, std::vector<T>& y,
                                    std::size_t c0, std::size_t c1) const {
  for (std::size_t ch = c0; ch < c1; ++ch) {
    const std::size_t base = chunk_offset_[ch];
    const std::uint32_t clen = chunk_len_[ch];
    T acc[kChunk] = {};
    // Slot-major walk: the lane loop has unit stride over val_/col_ and
    // independent accumulators — the auto-vectorizable hot loop.
    for (std::uint32_t s = 0; s < clen; ++s) {
      const T* v = &val_[base + s * kChunk];
      const std::uint32_t* c = &col_[base + s * kChunk];
      for (std::size_t lane = 0; lane < kChunk; ++lane) {
        acc[lane] += v[lane] * x[c[lane]];
      }
    }
    for (std::size_t lane = 0; lane < kChunk; ++lane) {
      const std::size_t pos = ch * kChunk + lane;
      if (pos < perm_.size() && perm_[pos] != kNoRow) {
        y[perm_[pos]] = acc[lane];
      }
    }
  }
}

template <typename T>
void SellMatrix<T>::multiply(const std::vector<T>& x, std::vector<T>& y) const {
  LCN_REQUIRE(x.size() == cols_, "SELL SpMV: x size mismatch");
  LCN_TRACE_SPAN_FINE("sell_spmv");
  const metrics::ScopedLatency latency(metrics::Hist::spmv_batch_seconds,
                                       metrics::kFine);
  instrument::add_spmv(nnz_);
  y.resize(rows_);
  const std::size_t chunks = chunk_len_.size();
  if (!parallel_kernels_enabled(nnz_, kSpmvGrain) || chunks < 2) {
    multiply_chunks(x, y, 0, chunks);
    return;
  }
  // Partition chunks so each range carries a similar slot load (chunk_offset_
  // is the padded-slot prefix sum). Each row is written by exactly one task.
  const std::size_t total = chunk_offset_.back();
  const std::size_t parts = std::min(global_pool_threads(), chunks);
  std::vector<std::size_t> bounds(parts + 1, chunks);
  bounds[0] = 0;
  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t target = total * p / parts;
    bounds[p] = static_cast<std::size_t>(
        std::lower_bound(chunk_offset_.begin(), chunk_offset_.end(), target) -
        chunk_offset_.begin());
  }
  global_pool().parallel_for(parts, [&](std::size_t p) {
    multiply_chunks(x, y, bounds[p], std::min(bounds[p + 1], chunks));
  });
}

template class SellMatrix<double>;
template class SellMatrix<float>;

}  // namespace lcn::sparse
