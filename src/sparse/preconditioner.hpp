// Preconditioners for the iterative solvers.
//
// JacobiPreconditioner suffices for the well-conditioned flow Laplacian;
// Ilu0Preconditioner (zero fill-in incomplete LU) is the default for the
// advective thermal systems, whose asymmetry grows with flow rate.
#pragma once

#include <memory>

#include "sparse/csr.hpp"

namespace lcn::sparse {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  /// z = M^{-1} r
  virtual void apply(const Vector& r, Vector& z) const = 0;
};

/// M = I (no preconditioning).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vector& r, Vector& z) const override { z = r; }
};

/// M = diag(A). Rows with a zero diagonal fall back to identity scaling.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z) const override;

 private:
  Vector inv_diag_;
};

/// Zero fill-in incomplete LU factorization on the sparsity pattern of A.
/// apply() performs the forward/backward triangular solves.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  /// Throws lcn::RuntimeError if a pivot collapses to ~0 (structurally
  /// singular or badly scaled matrix).
  explicit Ilu0Preconditioner(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z) const override;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;     // combined L (unit diag implicit) and U
  std::vector<std::size_t> diag_;  // index of the diagonal entry per row
};

std::unique_ptr<Preconditioner> make_jacobi(const CsrMatrix& a);
std::unique_ptr<Preconditioner> make_ilu0(const CsrMatrix& a);

}  // namespace lcn::sparse
