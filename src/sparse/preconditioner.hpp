// Preconditioners for the iterative solvers.
//
// JacobiPreconditioner suffices for the well-conditioned flow Laplacian;
// Ilu0Preconditioner (zero fill-in incomplete LU) is the default for the
// advective thermal systems, whose asymmetry grows with flow rate.
#pragma once

#include <memory>

#include "sparse/csr.hpp"

namespace lcn::sparse {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  /// z = M^{-1} r
  virtual void apply(const Vector& r, Vector& z) const = 0;

  /// fp32 apply for the mixed-precision inner solves (DESIGN.md §S20). The
  /// default upcasts, runs the fp64 apply, and downcasts — always correct,
  /// never fast. Preconditioners with a native fp32 path (Jacobi, multigrid)
  /// override it.
  virtual void apply_f32(const VectorF& r, VectorF& z) const {
    Vector r64(r.begin(), r.end());
    Vector z64;
    apply(r64, z64);
    z.assign(z64.begin(), z64.end());
  }
};

/// M = I (no preconditioning).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vector& r, Vector& z) const override { z = r; }
};

/// M = diag(A). Rows with a zero diagonal fall back to identity scaling.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z) const override;
  void apply_f32(const VectorF& r, VectorF& z) const override;

 private:
  Vector inv_diag_;
  VectorF inv_diag32_;
};

/// Zero fill-in incomplete LU factorization on the sparsity pattern of A.
/// apply() performs the forward/backward triangular solves.
///
/// The factorization is split into a symbolic phase (borrow A's shared CSR
/// structure, locate diagonals, size the scratch) and a numeric phase (copy
/// values, eliminate). refactor() reruns only the numeric phase when the new
/// matrix shares the previous structure — the per-probe path of the
/// symbolic/numeric split (DESIGN.md §S18).
class Ilu0Preconditioner final : public Preconditioner {
 public:
  /// Throws lcn::RuntimeError if a pivot collapses to ~0 (structurally
  /// singular or badly scaled matrix).
  explicit Ilu0Preconditioner(const CsrMatrix& a);

  /// Refactorize for a new matrix. If `a` shares the previous matrix's
  /// structure (pointer-identical shared index arrays) the symbolic phase is
  /// skipped; either way the resulting factors are bit-identical to a fresh
  /// construction from `a`. On throw (zero pivot) the object is unusable
  /// until a refactor()/reconstruction succeeds.
  void refactor(const CsrMatrix& a);

  void apply(const Vector& r, Vector& z) const override;
  /// Native fp32 triangular solves on an fp32 copy of the factors (used as
  /// the multigrid smoother inside mixed-precision inner solves).
  void apply_f32(const VectorF& r, VectorF& z) const override;

 private:
  void analyze(const CsrMatrix& a);
  void factorize();

  std::size_t n_ = 0;
  SharedIndexes row_ptr_;
  SharedIndexes col_idx_;
  std::vector<double> values_;     // combined L (unit diag implicit) and U
  VectorF values32_;               // fp32 copy of the factors for apply_f32
  std::vector<std::size_t> diag_;  // index of the diagonal entry per row
  std::vector<std::ptrdiff_t> pos_;  // col -> slot scratch (kept all -1)
};

std::unique_ptr<Preconditioner> make_jacobi(const CsrMatrix& a);
std::unique_ptr<Preconditioner> make_ilu0(const CsrMatrix& a);

}  // namespace lcn::sparse
