// Small dense matrix with partial-pivot LU. Used as the reference solver in
// tests and for the tiny 2RM systems where factorization beats Krylov setup.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/csr.hpp"

namespace lcn::sparse {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static DenseMatrix from_csr(const CsrMatrix& a);
  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  Vector multiply(const Vector& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Partial-pivot LU factorization of a square dense matrix.
class DenseLu {
 public:
  /// Throws lcn::RuntimeError if the matrix is singular to working precision.
  explicit DenseLu(DenseMatrix a);

  Vector solve(const Vector& b) const;

  /// |det| sign-less magnitude proxy: product of |pivots| (for tests).
  double pivot_product() const { return pivot_product_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  double pivot_product_ = 1.0;
};

}  // namespace lcn::sparse
