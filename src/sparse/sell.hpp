// SELL-C-σ sparse matrix format for SIMD-friendly SpMV (DESIGN.md §S20).
//
// CSR's row-sequential kernel leaves lane-level parallelism on the table:
// each row is a serial dot product of unpredictable length. SELL-C-σ packs
// C consecutive rows into a chunk stored column-major (slot-major), so the
// inner loop walks C independent accumulators with unit stride — exactly the
// shape auto-vectorizers turn into packed FMA lanes. σ controls a local
// row-length sort (within windows of σ rows) that keeps chunk padding small
// without destroying locality. The thermal stencils are nearly uniform
// (5–9 nonzeros per row), so padding overhead is a few percent.
//
// Bit-compatibility contract: for finite inputs, multiply() produces results
// bit-identical to CsrMatrix::multiply for every thread count. Each output
// row is accumulated by exactly one lane, in the row's CSR entry order,
// followed only by padding terms of exactly +0.0 (which cannot change a
// finite partial sum). Tests pin this with exact == comparisons.
//
// Symbolic/numeric split (§S18 idiom): conversion from a CsrMatrix analyzes
// the structure once; refill() re-reads only the value array when the new
// matrix shares the previous one's index arrays (pointer identity via
// SharedIndexes), which is how the multigrid smoother and the fp32 inner
// solves track refactored systems allocation-free.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace lcn::sparse {

template <typename T>
class SellMatrix {
 public:
  /// Chunk height C: rows packed per column-major chunk. 8 doubles = one
  /// AVX-512 register / two AVX2 registers; 8 floats = one AVX2 register.
  static constexpr std::size_t kChunk = 8;
  /// Sort window σ: rows are ordered by descending length within windows of
  /// σ rows before chunking (stable, so equal-length rows keep CSR order).
  static constexpr std::size_t kSortWindow = 8 * kChunk;

  SellMatrix() = default;
  explicit SellMatrix(const CsrMatrix& a);

  /// Re-read values from `a`. Skips the structural analysis when `a` shares
  /// the previous matrix's index arrays (the refactor-in-place fast path);
  /// otherwise rebuilds from scratch. Either way the result is identical to
  /// a fresh conversion from `a`.
  void refill(const CsrMatrix& a);

  /// True when `a` shares the structure this matrix was converted from
  /// (pointer-identical shared index arrays).
  bool shares_structure(const CsrMatrix& a) const {
    return src_row_ptr_ == a.shared_row_ptr() &&
           src_col_idx_ == a.shared_col_idx();
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return nnz_; }
  /// Stored slots including padding (≥ nnz; the padding overhead).
  std::size_t padded_slots() const { return val_.size(); }

  /// y = A x over chunks fanned out across the global thread pool (each row
  /// written by exactly one task in the serial operation order — results are
  /// identical for every thread count).
  void multiply(const std::vector<T>& x, std::vector<T>& y) const;

 private:
  void analyze(const CsrMatrix& a);
  void fill_values(const CsrMatrix& a);
  void multiply_chunks(const std::vector<T>& x, std::vector<T>& y,
                       std::size_t c0, std::size_t c1) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t nnz_ = 0;
  SharedIndexes src_row_ptr_;
  SharedIndexes src_col_idx_;
  std::vector<std::size_t> chunk_offset_;  ///< slot base per chunk (+end)
  std::vector<std::uint32_t> chunk_len_;   ///< max row length per chunk
  std::vector<std::uint32_t> perm_;        ///< chunk*C+lane -> source row
  std::vector<std::uint32_t> len_;         ///< chunk*C+lane -> row length
  std::vector<std::uint32_t> col_;         ///< padded columns, slot-major
  std::vector<T> val_;                     ///< padded values, slot-major
};

extern template class SellMatrix<double>;
extern template class SellMatrix<float>;

using SellMatrixD = SellMatrix<double>;
using SellMatrixF = SellMatrix<float>;

}  // namespace lcn::sparse
