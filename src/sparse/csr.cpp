#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace lcn::sparse {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  LCN_REQUIRE(row_ptr_.size() == rows_ + 1, "row_ptr size must be rows+1");
  LCN_REQUIRE(col_idx_.size() == values_.size(),
              "col_idx and values must have equal length");
  LCN_REQUIRE(row_ptr_.back() == values_.size(),
              "row_ptr must terminate at nnz");
}

void CsrMatrix::multiply(const Vector& x, Vector& y) const {
  LCN_REQUIRE(x.size() == cols_, "SpMV: x size mismatch");
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[r] = sum;
  }
}

Vector CsrMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply(x, y);
  return y;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  LCN_REQUIRE(row < rows_ && col < cols_, "at: index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::diagonal() const {
  Vector d(rows_, 0.0);
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t r = 0; r < n; ++r) d[r] = at(r, r);
  return d;
}

double CsrMatrix::symmetry_gap() const {
  LCN_REQUIRE(rows_ == cols_, "symmetry_gap requires a square matrix");
  double gap = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      gap = std::max(gap, std::abs(values_[k] - at(col_idx_[k], r)));
    }
  }
  return gap;
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> dense(rows_ * cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      dense[r * cols_ + col_idx_[k]] += values_[k];
    }
  }
  return dense;
}

void TripletList::add(std::size_t row, std::size_t col, double value) {
  LCN_REQUIRE(row < rows_ && col < cols_, "triplet index out of range");
  if (value != 0.0) triplets_.push_back({row, col, value});
}

CsrMatrix TripletList::to_csr() const {
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(sorted.size());
  values.reserve(sorted.size());

  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < sorted.size() && sorted[j].row == sorted[i].row &&
           sorted[j].col == sorted[i].col) {
      sum += sorted[j].value;
      ++j;
    }
    col_idx.push_back(sorted[i].col);
    values.push_back(sum);
    ++row_ptr[sorted[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr[r + 1] += row_ptr[r];

  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace lcn::sparse
