#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "sparse/parallel.hpp"

namespace lcn::sparse {

const SharedIndexes& CsrMatrix::empty_indexes() {
  static const SharedIndexes empty =
      std::make_shared<const std::vector<std::size_t>>();
  return empty;
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : CsrMatrix(rows, cols,
                std::make_shared<const std::vector<std::size_t>>(
                    std::move(row_ptr)),
                std::make_shared<const std::vector<std::size_t>>(
                    std::move(col_idx)),
                std::move(values)) {}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols, SharedIndexes row_ptr,
                     SharedIndexes col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  LCN_REQUIRE(row_ptr_ != nullptr && col_idx_ != nullptr,
              "CSR structure must be non-null");
  LCN_REQUIRE(row_ptr_->size() == rows_ + 1, "row_ptr size must be rows+1");
  LCN_REQUIRE(col_idx_->size() == values_.size(),
              "col_idx and values must have equal length");
  LCN_REQUIRE(row_ptr_->back() == values_.size(),
              "row_ptr must terminate at nnz");
}

void CsrMatrix::multiply_serial(const Vector& x, Vector& y) const {
  LCN_REQUIRE(x.size() == cols_, "SpMV: x size mismatch");
  y.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = (*row_ptr_)[r]; k < (*row_ptr_)[r + 1]; ++k) {
      sum += values_[k] * x[(*col_idx_)[k]];
    }
    y[r] = sum;
  }
}

void CsrMatrix::multiply(const Vector& x, Vector& y) const {
  const metrics::ScopedLatency latency(metrics::Hist::spmv_batch_seconds,
                                       metrics::kFine);
  instrument::add_spmv(nnz());
  if (!parallel_kernels_enabled(nnz(), kSpmvGrain)) {
    multiply_serial(x, y);
    return;
  }
  LCN_REQUIRE(x.size() == cols_, "SpMV: x size mismatch");
  y.resize(rows_);
  // Partition rows so each range carries a similar nonzero load: row_ptr is
  // the nnz prefix sum, so the p-th boundary is the first row whose prefix
  // reaches p/parts of nnz.
  const std::size_t total = nnz();
  const std::size_t parts =
      std::min(global_pool_threads(), std::max<std::size_t>(rows_, 1));
  std::vector<std::size_t> bounds(parts + 1, rows_);
  bounds[0] = 0;
  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t target = total * p / parts;
    bounds[p] = static_cast<std::size_t>(
        std::lower_bound(row_ptr_->begin(), row_ptr_->end(), target) -
        row_ptr_->begin());
  }
  global_pool().parallel_for(parts, [&](std::size_t p) {
    const std::size_t r1 = std::min(bounds[p + 1], rows_);
    for (std::size_t r = bounds[p]; r < r1; ++r) {
      double sum = 0.0;
      for (std::size_t k = (*row_ptr_)[r]; k < (*row_ptr_)[r + 1]; ++k) {
        sum += values_[k] * x[(*col_idx_)[k]];
      }
      y[r] = sum;
    }
  });
}

Vector CsrMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply(x, y);
  return y;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  LCN_REQUIRE(row < rows_ && col < cols_, "at: index out of range");
  const auto begin = col_idx_->begin() + static_cast<std::ptrdiff_t>((*row_ptr_)[row]);
  const auto end = col_idx_->begin() + static_cast<std::ptrdiff_t>((*row_ptr_)[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_->begin())];
}

Vector CsrMatrix::diagonal() const {
  Vector d(rows_, 0.0);
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t r = 0; r < n; ++r) d[r] = at(r, r);
  return d;
}

double CsrMatrix::symmetry_gap() const {
  LCN_REQUIRE(rows_ == cols_, "symmetry_gap requires a square matrix");
  double gap = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = (*row_ptr_)[r]; k < (*row_ptr_)[r + 1]; ++k) {
      gap = std::max(gap, std::abs(values_[k] - at((*col_idx_)[k], r)));
    }
  }
  return gap;
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> dense(rows_ * cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = (*row_ptr_)[r]; k < (*row_ptr_)[r + 1]; ++k) {
      dense[r * cols_ + (*col_idx_)[k]] += values_[k];
    }
  }
  return dense;
}

void TripletList::add(std::size_t row, std::size_t col, double value) {
  LCN_REQUIRE(row < rows_ && col < cols_, "triplet index out of range");
  if (value != 0.0) triplets_.push_back({row, col, value});
}

namespace {

/// Sort, merge duplicates (summing in sorted order), and build CSR.
CsrMatrix compress_triplets(std::size_t rows, std::size_t cols,
                            std::vector<Triplet>&& sorted) {
  std::sort(sorted.begin(), sorted.end(), &triplet_pattern_order);

  std::vector<std::size_t> row_ptr(rows + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(sorted.size());
  values.reserve(sorted.size());

  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < sorted.size() && sorted[j].row == sorted[i].row &&
           sorted[j].col == sorted[i].col) {
      sum += sorted[j].value;
      ++j;
    }
    col_idx.push_back(sorted[i].col);
    values.push_back(sum);
    ++row_ptr[sorted[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) row_ptr[r + 1] += row_ptr[r];

  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace

CsrMatrix TripletList::to_csr() const {
  return compress_triplets(rows_, cols_, std::vector<Triplet>(triplets_));
}

CsrMatrix merge_to_csr(std::size_t rows, std::size_t cols,
                       const std::vector<const TripletList*>& parts) {
  std::size_t total = 0;
  for (const TripletList* part : parts) {
    LCN_REQUIRE(part != nullptr, "merge_to_csr: null part");
    total += part->size();
  }
  std::vector<Triplet> merged;
  merged.reserve(total);
  for (const TripletList* part : parts) {
    merged.insert(merged.end(), part->triplets().begin(),
                  part->triplets().end());
  }
  return compress_triplets(rows, cols, std::move(merged));
}

}  // namespace lcn::sparse
