#include "sparse/dense.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace lcn::sparse {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a) {
  DenseMatrix m(a.rows(), a.cols());
  const auto dense = a.to_dense();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      m(r, c) = dense[r * a.cols() + c];
    }
  }
  return m;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& DenseMatrix::operator()(std::size_t r, std::size_t c) {
  LCN_ASSERT(r < rows_ && c < cols_, "dense index out of range");
  return data_[r * cols_ + c];
}

double DenseMatrix::operator()(std::size_t r, std::size_t c) const {
  LCN_ASSERT(r < rows_ && c < cols_, "dense index out of range");
  return data_[r * cols_ + c];
}

Vector DenseMatrix::multiply(const Vector& x) const {
  LCN_REQUIRE(x.size() == cols_, "dense multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += data_[r * cols_ + c] * x[c];
    y[r] = sum;
  }
  return y;
}

DenseLu::DenseLu(DenseMatrix a) : lu_(std::move(a)) {
  LCN_REQUIRE(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // pivot selection
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) throw RuntimeError("dense LU: singular matrix");
    if (piv != k) {
      std::swap(perm_[piv], perm_[k]);
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(piv, c), lu_(k, c));
    }
    pivot_product_ *= best;

    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / lu_(k, k);
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

Vector DenseLu::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  LCN_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // forward: L y = Pb
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  }
  // backward: U x = y
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(ii, j) * x[j];
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

}  // namespace lcn::sparse
