// Dense vector kernels shared by the iterative solvers.
//
// Element-wise kernels (axpy, xpby, scale) fan out over the global thread
// pool for large vectors; each element is written by exactly one task with
// the serial operation order, so results are bit-identical for any thread
// count. Reductions (dot, norm2) stay serial on purpose: chunked partial
// sums round differently per thread count, which would break the
// serial/parallel equivalence guarantee the SA determinism tests pin down.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "sparse/parallel.hpp"

namespace lcn::sparse {

using Vector = std::vector<double>;
/// fp32 storage for the mixed-precision inner solves (DESIGN.md §S20).
using VectorF = std::vector<float>;

inline double dot(const Vector& a, const Vector& b) {
  LCN_ASSERT(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

inline double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

inline double norm_inf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

/// y += alpha * x
inline void axpy(double alpha, const Vector& x, Vector& y) {
  LCN_ASSERT(x.size() == y.size(), "axpy: size mismatch");
  if (parallel_kernels_enabled(x.size(), kVectorGrain)) {
    parallel_ranges(x.size(), [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) y[i] += alpha * x[i];
    });
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// y = x + beta * y
inline void xpby(const Vector& x, double beta, Vector& y) {
  LCN_ASSERT(x.size() == y.size(), "xpby: size mismatch");
  if (parallel_kernels_enabled(x.size(), kVectorGrain)) {
    parallel_ranges(x.size(), [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) y[i] = x[i] + beta * y[i];
    });
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

inline void scale(double alpha, Vector& x) {
  if (parallel_kernels_enabled(x.size(), kVectorGrain)) {
    parallel_ranges(x.size(), [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) x[i] *= alpha;
    });
    return;
  }
  for (double& v : x) v *= alpha;
}

// fp32 kernels for the mixed-precision inner iterations. Storage and
// multiplies are fp32; reductions accumulate in double (cheap, and it keeps
// the inner Krylov recurrences from drowning in fp32 summation error).
// Reductions stay serial for the same determinism reason as the fp64 ones.

inline double dot_f32(const VectorF& a, const VectorF& b) {
  LCN_ASSERT(a.size() == b.size(), "dot_f32: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

inline double norm2_f32(const VectorF& a) { return std::sqrt(dot_f32(a, a)); }

/// y += alpha * x
inline void axpy_f32(float alpha, const VectorF& x, VectorF& y) {
  LCN_ASSERT(x.size() == y.size(), "axpy_f32: size mismatch");
  if (parallel_kernels_enabled(x.size(), kVectorGrain)) {
    parallel_ranges(x.size(), [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) y[i] += alpha * x[i];
    });
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// y = x + beta * y
inline void xpby_f32(const VectorF& x, float beta, VectorF& y) {
  LCN_ASSERT(x.size() == y.size(), "xpby_f32: size mismatch");
  if (parallel_kernels_enabled(x.size(), kVectorGrain)) {
    parallel_ranges(x.size(), [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) y[i] = x[i] + beta * y[i];
    });
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

}  // namespace lcn::sparse
