// Dense vector kernels shared by the iterative solvers.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace lcn::sparse {

using Vector = std::vector<double>;

inline double dot(const Vector& a, const Vector& b) {
  LCN_ASSERT(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

inline double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

inline double norm_inf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

/// y += alpha * x
inline void axpy(double alpha, const Vector& x, Vector& y) {
  LCN_ASSERT(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// y = x + beta * y
inline void xpby(const Vector& x, double beta, Vector& y) {
  LCN_ASSERT(x.size() == y.size(), "xpby: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

inline void scale(double alpha, Vector& x) {
  for (double& v : x) v *= alpha;
}

}  // namespace lcn::sparse
