// Dense vector kernels shared by the iterative solvers.
//
// Element-wise kernels (axpy, xpby, scale) fan out over the global thread
// pool for large vectors; each element is written by exactly one task with
// the serial operation order, so results are bit-identical for any thread
// count. Reductions (dot, norm2) stay serial on purpose: chunked partial
// sums round differently per thread count, which would break the
// serial/parallel equivalence guarantee the SA determinism tests pin down.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "sparse/parallel.hpp"

namespace lcn::sparse {

using Vector = std::vector<double>;

inline double dot(const Vector& a, const Vector& b) {
  LCN_ASSERT(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

inline double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

inline double norm_inf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

/// y += alpha * x
inline void axpy(double alpha, const Vector& x, Vector& y) {
  LCN_ASSERT(x.size() == y.size(), "axpy: size mismatch");
  if (parallel_kernels_enabled(x.size(), kVectorGrain)) {
    parallel_ranges(x.size(), [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) y[i] += alpha * x[i];
    });
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// y = x + beta * y
inline void xpby(const Vector& x, double beta, Vector& y) {
  LCN_ASSERT(x.size() == y.size(), "xpby: size mismatch");
  if (parallel_kernels_enabled(x.size(), kVectorGrain)) {
    parallel_ranges(x.size(), [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) y[i] = x[i] + beta * y[i];
    });
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

inline void scale(double alpha, Vector& x) {
  if (parallel_kernels_enabled(x.size(), kVectorGrain)) {
    parallel_ranges(x.size(), [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) x[i] *= alpha;
    });
    return;
  }
  for (double& v : x) v *= alpha;
}

}  // namespace lcn::sparse
