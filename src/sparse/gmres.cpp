#include "sparse/gmres.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"

namespace lcn::sparse {

namespace {
// Counter + latency + fine-level span on every exit path; the span member
// is first so its end event fires after the dtor body attaches the outcome
// args.
struct IterationRecorder {
  trace::Span span{"gmres_solve", trace::kFine};
  metrics::ScopedLatency latency{metrics::Hist::gmres_seconds};
  const SolveReport& report;
  ~IterationRecorder() {
    instrument::add_gmres(report.iterations);
    if (span.active()) {
      span.set_args(strfmt("\"iters\":%zu,\"rel\":%.3e,\"converged\":%s",
                           report.iterations, report.relative_residual,
                           report.converged ? "true" : "false"));
    }
  }
};

// The final residual_history entry always equals the reported residual; the
// per-iteration entries are the Givens-implied estimates, so the true
// residual computed at restart boundaries is appended when it differs.
void finish_history(SolveReport& report, bool recording) {
  if (!recording) return;
  if (report.residual_history.empty() ||
      report.residual_history.back() != report.relative_residual) {
    report.residual_history.push_back(report.relative_residual);
  }
}

// The one GMRES implementation; all scratch lives in the workspace. Every
// vector is re-initialised to exactly the state the historical allocating
// version constructed (including the zero fills), so iterates are
// bit-identical whether the workspace is fresh or reused.
SolveReport gmres_impl(const CsrMatrix& a, const Vector& b, Vector& x,
                       const Preconditioner& m, const GmresOptions& options,
                       SolverWorkspace& ws) {
  const std::size_t n = a.rows();
  LCN_REQUIRE(a.cols() == n, "GMRES needs a square matrix");
  LCN_REQUIRE(b.size() == n, "GMRES rhs size mismatch");
  LCN_REQUIRE(options.restart >= 1, "GMRES restart must be >= 1");
  x.resize(n, 0.0);

  SolveReport report;
  const IterationRecorder recorder{.report = report};
  const bool recording = options.record_residuals;
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    report.converged = true;
    finish_history(report, recording);
    return report;
  }

  const std::size_t restart = std::min<std::size_t>(options.restart, n);
  const std::size_t max_outer =
      options.max_outer != 0 ? options.max_outer : (10 * n) / restart + 4;

  // Arnoldi basis (restart+1 vectors) and Hessenberg in Givens-reduced form.
  ws.basis.resize(restart + 1);
  for (Vector& v : ws.basis) v.assign(n, 0.0);
  ws.h.resize(restart + 1);
  for (Vector& row : ws.h) row.assign(restart, 0.0);
  std::vector<Vector>& basis = ws.basis;
  std::vector<Vector>& h = ws.h;
  ws.cs.assign(restart, 0.0);
  ws.sn.assign(restart, 0.0);
  ws.g.assign(restart + 1, 0.0);
  Vector& cs = ws.cs;
  Vector& sn = ws.sn;
  Vector& g = ws.g;
  Vector& z = ws.z;
  Vector& w = ws.w;

  std::size_t total_iters = 0;
  for (std::size_t outer = 0; outer < max_outer; ++outer) {
    // r = b - A x
    a.multiply(x, w);
    Vector& r = ws.r;
    r = b;
    axpy(-1.0, w, r);
    const double beta = norm2(r);
    report.relative_residual = beta / bnorm;
    if (report.relative_residual < options.rel_tolerance) {
      report.converged = true;
      report.iterations = total_iters;
      finish_history(report, recording);
      return report;
    }

    basis[0] = r;
    scale(1.0 / beta, basis[0]);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t k = 0;
    for (; k < restart; ++k) {
      ++total_iters;
      // w = A M^{-1} v_k
      m.apply(basis[k], z);
      a.multiply(z, w);
      // Modified Gram-Schmidt.
      for (std::size_t i = 0; i <= k; ++i) {
        h[i][k] = dot(w, basis[i]);
        axpy(-h[i][k], basis[i], w);
      }
      h[k + 1][k] = norm2(w);
      if (h[k + 1][k] > 1e-300) {
        basis[k + 1] = w;
        scale(1.0 / h[k + 1][k], basis[k + 1]);
      }
      // Apply previous Givens rotations to the new column.
      for (std::size_t i = 0; i < k; ++i) {
        const double tmp = cs[i] * h[i][k] + sn[i] * h[i + 1][k];
        h[i + 1][k] = -sn[i] * h[i][k] + cs[i] * h[i + 1][k];
        h[i][k] = tmp;
      }
      // New rotation annihilating h[k+1][k].
      const double denom =
          std::sqrt(h[k][k] * h[k][k] + h[k + 1][k] * h[k + 1][k]);
      if (denom < 1e-300) {
        ++k;
        break;  // lucky breakdown: exact solution in the subspace
      }
      cs[k] = h[k][k] / denom;
      sn[k] = h[k + 1][k] / denom;
      h[k][k] = denom;
      h[k + 1][k] = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];

      if (recording) {
        report.residual_history.push_back(std::abs(g[k + 1]) / bnorm);
      }
      if (std::abs(g[k + 1]) / bnorm < options.rel_tolerance) {
        ++k;
        break;
      }
    }

    // Back-substitute y from the k x k triangular system, x += M^{-1} V y.
    ws.y.assign(k, 0.0);
    Vector& y = ws.y;
    for (std::size_t ii = k; ii-- > 0;) {
      double sum = g[ii];
      for (std::size_t j = ii + 1; j < k; ++j) sum -= h[ii][j] * y[j];
      y[ii] = sum / h[ii][ii];
    }
    ws.update.assign(n, 0.0);
    Vector& update = ws.update;
    for (std::size_t j = 0; j < k; ++j) axpy(y[j], basis[j], update);
    m.apply(update, z);
    axpy(1.0, z, x);
  }

  a.multiply(x, w);
  Vector& r = ws.r;
  r = b;
  axpy(-1.0, w, r);
  report.relative_residual = norm2(r) / bnorm;
  report.converged = report.relative_residual < options.rel_tolerance;
  report.iterations = total_iters;
  finish_history(report, recording);
  return report;
}
}  // namespace

SolveReport gmres_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                        const Preconditioner& m, const GmresOptions& options) {
  SolverWorkspace ws;
  return gmres_impl(a, b, x, m, options, ws);
}

SolveReport gmres_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                        const Preconditioner& m, SolverWorkspace& ws,
                        const GmresOptions& options) {
  instrument::add_workspace_reuse();
  return gmres_impl(a, b, x, m, options, ws);
}

}  // namespace lcn::sparse
