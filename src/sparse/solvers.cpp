#include "sparse/solvers.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "sparse/gmres.hpp"
#include "sparse/ic0.hpp"

namespace lcn::sparse {

namespace {
std::size_t effective_max_iters(const SolveOptions& opts, std::size_t n) {
  return opts.max_iterations != 0 ? opts.max_iterations : 10 * n + 100;
}

std::size_t retry_max_iters(std::size_t n, const SolveOptions& opts) {
  return 4 * effective_max_iters(opts, n);
}

GmresOptions gmres_options(const SolveOptions& opts) {
  GmresOptions gmres;
  gmres.rel_tolerance = opts.rel_tolerance;
  gmres.restart = opts.gmres_restart;
  gmres.max_outer = opts.gmres_max_outer;
  gmres.record_residuals = opts.record_residuals;
  return gmres;
}

// Records the final iteration count and solve latency on every exit path of
// a solver, plus a fine-level trace span carrying the outcome. The span
// member is declared first so its end event is emitted after
// ~IterationRecorder has attached the args (members destroy in reverse
// order).
struct IterationRecorder {
  trace::Span span;
  metrics::ScopedLatency latency;
  const SolveReport& report;
  void (*record)(std::uint64_t);
  IterationRecorder(const char* name, metrics::Hist hist,
                    const SolveReport& r, void (*rec)(std::uint64_t))
      : span(name, trace::kFine), latency(hist), report(r), record(rec) {}
  ~IterationRecorder() {
    record(report.iterations);
    if (span.active()) {
      span.set_args(strfmt("\"iters\":%zu,\"rel\":%.3e,\"converged\":%s",
                           report.iterations, report.relative_residual,
                           report.converged ? "true" : "false"));
    }
  }
};

// Keeps SolveReport::residual_history's final entry equal to the reported
// relative residual on every exit path (the contract sparse_test asserts).
void finish_history(SolveReport& report, bool recording) {
  if (!recording) return;
  if (report.residual_history.empty() ||
      report.residual_history.back() != report.relative_residual) {
    report.residual_history.push_back(report.relative_residual);
  }
}

// The one CG implementation; scratch lives in the workspace and every vector
// read is re-initialised first, so a fresh and a reused workspace produce
// bit-identical iterates.
SolveReport cg_impl(const CsrMatrix& a, const Vector& b, Vector& x,
                    const Preconditioner& m, const SolveOptions& opts,
                    SolverWorkspace& ws) {
  const std::size_t n = a.rows();
  LCN_REQUIRE(a.cols() == n, "CG needs a square matrix");
  LCN_REQUIRE(b.size() == n, "CG rhs size mismatch");
  x.resize(n, 0.0);

  const double bnorm = norm2(b);
  SolveReport report;
  const IterationRecorder recorder("cg_solve", metrics::Hist::cg_seconds,
                                   report, &instrument::add_cg);
  const bool recording = opts.record_residuals;
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    report.converged = true;
    finish_history(report, recording);
    return report;
  }

  Vector& r = ws.r;
  r = b;
  a.multiply(x, ws.ax);
  axpy(-1.0, ws.ax, r);
  Vector& z = ws.z;
  m.apply(r, z);
  Vector& p = ws.p;
  p = z;
  Vector& ap = ws.ap;
  double rz = dot(r, z);

  const std::size_t max_iters = effective_max_iters(opts, n);
  for (std::size_t it = 0; it < max_iters; ++it) {
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) {
      // Not SPD (or numerically degenerate) — bail out with best effort.
      report.iterations = it;
      report.relative_residual = norm2(r) / bnorm;
      finish_history(report, recording);
      return report;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);

    const double rel = norm2(r) / bnorm;
    if (recording) report.residual_history.push_back(rel);
    if (rel < opts.rel_tolerance) {
      report.converged = true;
      report.iterations = it + 1;
      report.relative_residual = rel;
      return report;
    }

    m.apply(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    xpby(z, beta, p);
  }

  report.iterations = max_iters;
  report.relative_residual = norm2(r) / bnorm;
  finish_history(report, recording);
  return report;
}

SolveReport bicgstab_impl(const CsrMatrix& a, const Vector& b, Vector& x,
                          const Preconditioner& m, const SolveOptions& opts,
                          SolverWorkspace& ws) {
  const std::size_t n = a.rows();
  LCN_REQUIRE(a.cols() == n, "BiCGSTAB needs a square matrix");
  LCN_REQUIRE(b.size() == n, "BiCGSTAB rhs size mismatch");
  x.resize(n, 0.0);

  const double bnorm = norm2(b);
  SolveReport report;
  const IterationRecorder recorder("bicgstab_solve",
                                   metrics::Hist::bicgstab_seconds, report,
                                   &instrument::add_bicgstab);
  const bool recording = opts.record_residuals;
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    report.converged = true;
    finish_history(report, recording);
    return report;
  }

  Vector& r = ws.r;
  r = b;
  a.multiply(x, ws.ax);
  axpy(-1.0, ws.ax, r);
  Vector& r0 = ws.r0;
  r0 = r;
  ws.p.assign(n, 0.0);
  ws.v.assign(n, 0.0);
  Vector& p = ws.p;
  Vector& v = ws.v;
  Vector& phat = ws.phat;
  Vector& shat = ws.shat;
  Vector& s = ws.s;
  Vector& t = ws.t;

  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;

  const std::size_t max_iters = effective_max_iters(opts, n);
  for (std::size_t it = 0; it < max_iters; ++it) {
    const double rho_next = dot(r0, r);
    if (std::abs(rho_next) < 1e-300) break;  // breakdown
    if (it == 0) {
      p = r;
    } else {
      const double beta = (rho_next / rho) * (alpha / omega);
      // p = r + beta * (p - omega * v)
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    rho = rho_next;

    m.apply(p, phat);
    a.multiply(phat, v);
    const double r0v = dot(r0, v);
    if (std::abs(r0v) < 1e-300) break;
    alpha = rho / r0v;

    s = r;
    axpy(-alpha, v, s);
    if (norm2(s) / bnorm < opts.rel_tolerance) {
      axpy(alpha, phat, x);
      report.converged = true;
      report.iterations = it + 1;
      report.relative_residual = norm2(s) / bnorm;
      finish_history(report, recording);
      return report;
    }

    m.apply(s, shat);
    a.multiply(shat, t);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;
    omega = dot(t, s) / tt;

    axpy(alpha, phat, x);
    axpy(omega, shat, x);
    r = s;
    axpy(-omega, t, r);

    const double rel = norm2(r) / bnorm;
    if (recording) report.residual_history.push_back(rel);
    if (rel < opts.rel_tolerance) {
      report.converged = true;
      report.iterations = it + 1;
      report.relative_residual = rel;
      return report;
    }
    if (std::abs(omega) < 1e-300) break;
  }

  a.multiply(x, ws.ax);
  Vector& final_r = ws.t;
  final_r = b;
  axpy(-1.0, ws.ax, final_r);
  report.iterations = max_iters;
  report.relative_residual = norm2(final_r) / bnorm;
  report.converged = report.relative_residual < opts.rel_tolerance;
  finish_history(report, recording);
  return report;
}

// Shared BiCGSTAB→retry→GMRES cascade used by the solve_general_or_throw
// variants; the workspace and preconditioner are caller-owned. With the
// default options this is byte-for-byte the seed cascade; the mixed-precision
// block only runs when opted into and always falls back to the unchanged
// fp64 path when refinement stalls.
void general_cascade(const CsrMatrix& a, const Vector& b, Vector& x,
                     const std::string& context, const Preconditioner& m,
                     SolverWorkspace& ws, const SolveOptions& opts) {
  if (opts.precision == Precision::kMixed) {
    const SolveReport mixed = mixed_refined_solve(a, b, x, m, ws, opts);
    if (mixed.converged) {
      LCN_DEBUG() << context << ": mixed-precision refinement converged in "
                  << mixed.iterations << " fp32 iters, rel residual "
                  << mixed.relative_residual;
      return;
    }
    // Refinement stalled — restart the fp64 cascade from a zero guess so the
    // caller still gets the full fp64 tolerance.
    x.assign(a.rows(), 0.0);
  }
  if (opts.method == GeneralMethod::kGmres) {
    // Opt-in direct GMRES path for hard-to-converge nonsymmetric systems.
    const SolveReport report = gmres_solve(a, b, x, m, ws, gmres_options(opts));
    if (!report.converged) {
      throw RuntimeError(context + ": GMRES failed to converge (rel residual " +
                         std::to_string(report.relative_residual) + " after " +
                         std::to_string(report.iterations) + " iterations)");
    }
    LCN_DEBUG() << context << ": GMRES converged in " << report.iterations
                << " iters, rel residual " << report.relative_residual;
    return;
  }

  SolveReport report = bicgstab_impl(a, b, x, m, opts, ws);
  if (!report.converged) {
    // One retry from scratch with a fresh zero guess and more iterations —
    // BiCGSTAB can stagnate from an unlucky shadow residual.
    x.assign(a.rows(), 0.0);
    SolveOptions retry = opts;
    retry.max_iterations = retry_max_iters(a.rows(), opts);
    report = bicgstab_impl(a, b, x, m, retry, ws);
  }
  if (!report.converged && opts.method == GeneralMethod::kAuto) {
    // Robust fallback for strongly advective systems: restarted GMRES with
    // the same preconditioner.
    x.assign(a.rows(), 0.0);
    const SolveReport gmres_report =
        gmres_solve(a, b, x, m, ws, gmres_options(opts));
    if (gmres_report.converged) {
      LCN_DEBUG() << context << ": GMRES fallback converged in "
                  << gmres_report.iterations << " iters";
      return;
    }
    report = gmres_report;
  }
  if (!report.converged) {
    throw RuntimeError(context +
                       ": BiCGSTAB and GMRES failed to converge (rel residual " +
                       std::to_string(report.relative_residual) + " after " +
                       std::to_string(report.iterations) + " iterations)");
  }
  LCN_DEBUG() << context << ": BiCGSTAB converged in " << report.iterations
              << " iters, rel residual " << report.relative_residual;
}
}  // namespace

SolveReport cg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& m, const SolveOptions& opts) {
  SolverWorkspace ws;
  return cg_impl(a, b, x, m, opts, ws);
}

SolveReport cg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& m, SolverWorkspace& ws,
                     const SolveOptions& opts) {
  instrument::add_workspace_reuse();
  return cg_impl(a, b, x, m, opts, ws);
}

SolveReport bicgstab_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                           const Preconditioner& m, const SolveOptions& opts) {
  SolverWorkspace ws;
  return bicgstab_impl(a, b, x, m, opts, ws);
}

SolveReport bicgstab_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                           const Preconditioner& m, SolverWorkspace& ws,
                           const SolveOptions& opts) {
  instrument::add_workspace_reuse();
  return bicgstab_impl(a, b, x, m, opts, ws);
}

void solve_spd_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                        const std::string& context, const SolveOptions& opts) {
  // IC(0) when the matrix admits it, Jacobi otherwise.
  SolveReport report;
  try {
    const Ic0Preconditioner ic0(a);
    report = cg_solve(a, b, x, ic0, opts);
  } catch (const RuntimeError&) {
    report.converged = false;
  }
  if (!report.converged) {
    x.assign(a.rows(), 0.0);
    const JacobiPreconditioner jacobi(a);
    report = cg_solve(a, b, x, jacobi, opts);
  }
  if (!report.converged) {
    throw RuntimeError(context + ": CG failed to converge (rel residual " +
                       std::to_string(report.relative_residual) + " after " +
                       std::to_string(report.iterations) + " iterations)");
  }
  LCN_DEBUG() << context << ": CG converged in " << report.iterations
              << " iters, rel residual " << report.relative_residual;
}

void solve_general_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                            const std::string& context,
                            const SolveOptions& opts) {
  const Ilu0Preconditioner ilu(a);
  SolverWorkspace ws;
  general_cascade(a, b, x, context, ilu, ws, opts);
}

void solve_general_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                            const std::string& context,
                            const Ilu0Preconditioner& ilu, SolverWorkspace& ws,
                            const SolveOptions& opts) {
  instrument::add_workspace_reuse();
  general_cascade(a, b, x, context, ilu, ws, opts);
}

void solve_general_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                            const std::string& context, const Preconditioner& m,
                            SolverWorkspace& ws, const SolveOptions& opts) {
  instrument::add_workspace_reuse();
  general_cascade(a, b, x, context, m, ws, opts);
}

}  // namespace lcn::sparse
