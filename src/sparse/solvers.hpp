// Iterative Krylov solvers: preconditioned CG for the SPD flow system and
// preconditioned BiCGSTAB for the nonsymmetric thermal system.
#pragma once

#include <string>

#include "sparse/csr.hpp"
#include "sparse/preconditioner.hpp"

namespace lcn::sparse {

struct SolveOptions {
  double rel_tolerance = 1e-10;  ///< on ||r|| / ||b||
  std::size_t max_iterations = 0;  ///< 0 => 10 * n + 100
};

struct SolveReport {
  bool converged = false;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
};

/// Preconditioned conjugate gradient. A must be symmetric positive definite.
/// x carries the initial guess in and the solution out.
SolveReport cg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& m, const SolveOptions& opts = {});

/// Preconditioned BiCGSTAB for general square systems.
SolveReport bicgstab_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                           const Preconditioner& m,
                           const SolveOptions& opts = {});

/// Convenience: solve and throw lcn::RuntimeError(context) on failure.
void solve_spd_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                        const std::string& context,
                        const SolveOptions& opts = {});
void solve_general_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                            const std::string& context,
                            const SolveOptions& opts = {});

}  // namespace lcn::sparse
