// Iterative Krylov solvers: preconditioned CG for the SPD flow system and
// preconditioned BiCGSTAB for the nonsymmetric thermal system, with
// restarted GMRES available as a fallback or opt-in method.
//
// Every solver has two entry points: the classic one (allocates its Krylov
// vectors per call) and a workspace one that reuses a caller-owned
// SolverWorkspace across solves. Both produce bit-identical iterates — the
// workspace variants re-initialise exactly the state the classic variants
// construct, so persistent scratch never leaks a previous solve into the
// next (DESIGN.md §S18).
#pragma once

#include <string>

#include "sparse/csr.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/sell.hpp"

namespace lcn::sparse {

/// Method selection for the general (nonsymmetric) solve path.
enum class GeneralMethod {
  kAuto,      ///< BiCGSTAB, retry, then GMRES fallback (seed behaviour)
  kBicgstab,  ///< BiCGSTAB + retry only — no GMRES fallback
  kGmres,     ///< restarted GMRES directly (hard-to-converge systems)
};

/// Arithmetic policy for the general solve path (DESIGN.md §S20).
enum class Precision {
  kDouble,  ///< everything in fp64 (seed behaviour, bit-identical)
  kMixed,   ///< fp32 inner Krylov + fp64 iterative refinement; falls back to
            ///< the fp64 cascade when refinement stalls, so the final result
            ///< always meets the fp64 tolerance
};

struct SolveOptions {
  double rel_tolerance = 1e-10;  ///< on ||r|| / ||b||
  std::size_t max_iterations = 0;  ///< 0 => 10 * n + 100
  /// Which Krylov method the general solve path uses (opt-in; the default
  /// preserves the historical BiCGSTAB-with-GMRES-fallback cascade).
  GeneralMethod method = GeneralMethod::kAuto;
  std::size_t gmres_restart = 40;   ///< Krylov dimension when GMRES runs
  std::size_t gmres_max_outer = 0;  ///< 0 => ceil(10·n / restart) + 4
  /// Arithmetic policy. The default fp64 path is untouched; kMixed runs the
  /// fp32 inner solve + fp64 refinement loop of mixed_refined_solve().
  Precision precision = Precision::kDouble;
  /// Relative tolerance of each fp32 inner solve (on the scaled residual
  /// system). fp32 cannot usefully go below ~1e-6; 1e-4 keeps the inner
  /// iteration count small while each refinement step still gains ~4 digits.
  double mixed_inner_tolerance = 1e-4;
  std::size_t mixed_max_refinements = 40;
  /// Opt-in convergence telemetry (DESIGN.md §S19): capture the
  /// per-iteration relative residual into SolveReport::residual_history so
  /// stalls and preconditioner regressions are visible, not just iteration
  /// totals. Off by default — recording allocates and is not needed on the
  /// hot path. Never changes the iterates.
  bool record_residuals = false;
};

struct SolveReport {
  bool converged = false;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  /// Per-iteration relative residuals, populated only when
  /// SolveOptions::record_residuals is set. The final entry always equals
  /// `relative_residual` (for GMRES the per-iteration entries are the
  /// Givens-implied estimates and a final true-residual entry is appended
  /// when it differs).
  std::vector<double> residual_history;
};

/// Persistent Krylov scratch. A default-constructed workspace works for any
/// solver and any problem size; vectors grow on first use and are then
/// reused allocation-free. Safe to reuse across different matrices and
/// solvers (each solve re-initialises everything it reads), but NOT across
/// threads concurrently — use one workspace per thread.
struct SolverWorkspace {
  // CG / shared scratch.
  Vector r, ax, z, p, ap;
  // BiCGSTAB extras.
  Vector r0, v, phat, shat, s, t;
  // GMRES scratch (Arnoldi basis, Givens-reduced Hessenberg, correction).
  std::vector<Vector> basis;
  std::vector<Vector> h;
  Vector cs, sn, g, w, y, update;
  // Mixed-precision scratch: the fp32 copy of the system (SELL-C-σ, refilled
  // in place while the matrix keeps its symbolic structure) plus the fp32
  // Krylov vectors and the fp64 refinement residual.
  SellMatrixF a32;
  VectorF xf, rf, axf, r0f, pf, vf, phatf, shatf, sf, tf;
  Vector resid;
};

/// Preconditioned conjugate gradient. A must be symmetric positive definite.
/// x carries the initial guess in and the solution out.
SolveReport cg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& m, const SolveOptions& opts = {});
SolveReport cg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& m, SolverWorkspace& ws,
                     const SolveOptions& opts = {});

/// Preconditioned BiCGSTAB for general square systems.
SolveReport bicgstab_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                           const Preconditioner& m,
                           const SolveOptions& opts = {});
SolveReport bicgstab_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                           const Preconditioner& m, SolverWorkspace& ws,
                           const SolveOptions& opts = {});

/// Convenience: solve and throw lcn::RuntimeError(context) on failure.
void solve_spd_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                        const std::string& context,
                        const SolveOptions& opts = {});
void solve_general_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                            const std::string& context,
                            const SolveOptions& opts = {});

/// Fast-path variant: reuse a caller-held ILU(0) (already refactored for
/// `a`) and a persistent workspace. Same method cascade and bit-identical
/// iterates as the allocating variant with a fresh Ilu0Preconditioner(a).
void solve_general_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                            const std::string& context,
                            const Ilu0Preconditioner& ilu, SolverWorkspace& ws,
                            const SolveOptions& opts = {});

/// Generic-preconditioner variant of the same cascade: any Preconditioner
/// (multigrid, Jacobi, ...) already factored for `a`. With an
/// Ilu0Preconditioner this is the exact code path of the overload above.
void solve_general_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                            const std::string& context, const Preconditioner& m,
                            SolverWorkspace& ws, const SolveOptions& opts = {});

/// Mixed-precision solve (DESIGN.md §S20): fp64 iterative refinement around
/// fp32 BiCGSTAB inner solves of the scaled residual system, with the fp32
/// system held as a SELL-C-σ copy in the workspace and the preconditioner
/// applied through its fp32 path. Each refinement step computes the true
/// fp64 residual, so `relative_residual` (and the convergence decision) are
/// exact; `iterations` counts fp32 inner iterations. Returns unconverged —
/// without throwing — when refinement stalls; callers (the cascade) then
/// fall back to fp64.
SolveReport mixed_refined_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                                const Preconditioner& m, SolverWorkspace& ws,
                                const SolveOptions& opts = {});

}  // namespace lcn::sparse
