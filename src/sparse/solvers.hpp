// Iterative Krylov solvers: preconditioned CG for the SPD flow system and
// preconditioned BiCGSTAB for the nonsymmetric thermal system, with
// restarted GMRES available as a fallback or opt-in method.
//
// Every solver has two entry points: the classic one (allocates its Krylov
// vectors per call) and a workspace one that reuses a caller-owned
// SolverWorkspace across solves. Both produce bit-identical iterates — the
// workspace variants re-initialise exactly the state the classic variants
// construct, so persistent scratch never leaks a previous solve into the
// next (DESIGN.md §S18).
#pragma once

#include <string>

#include "sparse/csr.hpp"
#include "sparse/preconditioner.hpp"

namespace lcn::sparse {

/// Method selection for the general (nonsymmetric) solve path.
enum class GeneralMethod {
  kAuto,      ///< BiCGSTAB, retry, then GMRES fallback (seed behaviour)
  kBicgstab,  ///< BiCGSTAB + retry only — no GMRES fallback
  kGmres,     ///< restarted GMRES directly (hard-to-converge systems)
};

struct SolveOptions {
  double rel_tolerance = 1e-10;  ///< on ||r|| / ||b||
  std::size_t max_iterations = 0;  ///< 0 => 10 * n + 100
  /// Which Krylov method the general solve path uses (opt-in; the default
  /// preserves the historical BiCGSTAB-with-GMRES-fallback cascade).
  GeneralMethod method = GeneralMethod::kAuto;
  std::size_t gmres_restart = 40;   ///< Krylov dimension when GMRES runs
  std::size_t gmres_max_outer = 0;  ///< 0 => ceil(10·n / restart) + 4
  /// Opt-in convergence telemetry (DESIGN.md §S19): capture the
  /// per-iteration relative residual into SolveReport::residual_history so
  /// stalls and preconditioner regressions are visible, not just iteration
  /// totals. Off by default — recording allocates and is not needed on the
  /// hot path. Never changes the iterates.
  bool record_residuals = false;
};

struct SolveReport {
  bool converged = false;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  /// Per-iteration relative residuals, populated only when
  /// SolveOptions::record_residuals is set. The final entry always equals
  /// `relative_residual` (for GMRES the per-iteration entries are the
  /// Givens-implied estimates and a final true-residual entry is appended
  /// when it differs).
  std::vector<double> residual_history;
};

/// Persistent Krylov scratch. A default-constructed workspace works for any
/// solver and any problem size; vectors grow on first use and are then
/// reused allocation-free. Safe to reuse across different matrices and
/// solvers (each solve re-initialises everything it reads), but NOT across
/// threads concurrently — use one workspace per thread.
struct SolverWorkspace {
  // CG / shared scratch.
  Vector r, ax, z, p, ap;
  // BiCGSTAB extras.
  Vector r0, v, phat, shat, s, t;
  // GMRES scratch (Arnoldi basis, Givens-reduced Hessenberg, correction).
  std::vector<Vector> basis;
  std::vector<Vector> h;
  Vector cs, sn, g, w, y, update;
};

/// Preconditioned conjugate gradient. A must be symmetric positive definite.
/// x carries the initial guess in and the solution out.
SolveReport cg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& m, const SolveOptions& opts = {});
SolveReport cg_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& m, SolverWorkspace& ws,
                     const SolveOptions& opts = {});

/// Preconditioned BiCGSTAB for general square systems.
SolveReport bicgstab_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                           const Preconditioner& m,
                           const SolveOptions& opts = {});
SolveReport bicgstab_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                           const Preconditioner& m, SolverWorkspace& ws,
                           const SolveOptions& opts = {});

/// Convenience: solve and throw lcn::RuntimeError(context) on failure.
void solve_spd_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                        const std::string& context,
                        const SolveOptions& opts = {});
void solve_general_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                            const std::string& context,
                            const SolveOptions& opts = {});

/// Fast-path variant: reuse a caller-held ILU(0) (already refactored for
/// `a`) and a persistent workspace. Same method cascade and bit-identical
/// iterates as the allocating variant with a fresh Ilu0Preconditioner(a).
void solve_general_or_throw(const CsrMatrix& a, const Vector& b, Vector& x,
                            const std::string& context,
                            const Ilu0Preconditioner& ilu, SolverWorkspace& ws,
                            const SolveOptions& opts = {});

}  // namespace lcn::sparse
