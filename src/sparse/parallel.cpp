#include "sparse/parallel.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace lcn::sparse {

bool parallel_kernels_enabled(std::size_t work, std::size_t grain) {
  if (work < grain) return false;
  if (ThreadPool::in_task()) return false;
  return global_pool_threads() > 1;
}

void parallel_ranges(std::size_t n,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  ThreadPool& pool = global_pool();
  const std::size_t parts = std::min(pool.size(), n);
  if (parts <= 1 || ThreadPool::in_task()) {
    fn(0, n);
    return;
  }
  pool.parallel_for(parts, [&](std::size_t p) {
    const std::size_t begin = n * p / parts;
    const std::size_t end = n * (p + 1) / parts;
    if (begin < end) fn(begin, end);
  });
}

}  // namespace lcn::sparse
