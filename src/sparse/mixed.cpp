// Mixed-precision solve (DESIGN.md §S20): fp64 iterative refinement wrapped
// around fp32 BiCGSTAB inner solves.
//
// Each refinement step solves A d ≈ r / ||r|| in fp32 (SELL-C-σ operator,
// fp32 preconditioner path, dot products accumulated in double) and applies
// the correction x += ||r|| · d in fp64. Scaling the residual to unit norm
// before the downcast keeps the fp32 values mid-range no matter how far the
// outer residual has already dropped — the standard trick that lets fp32
// inner solves drive an fp64 residual to 1e-10 and beyond. Convergence is
// judged on the true fp64 residual only, so a converged report is exact; a
// stalled refinement returns unconverged and the caller's cascade falls back
// to fp64, which is what guarantees the same-tolerance contract.
#include <cmath>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/trace.hpp"
#include "sparse/solvers.hpp"

namespace lcn::sparse {

namespace {

std::size_t mixed_max_iters(const SolveOptions& opts, std::size_t n) {
  return opts.max_iterations != 0 ? opts.max_iterations : 10 * n + 100;
}

/// fp32 BiCGSTAB on the workspace's SELL system: solves a32 · x ≈ rhs from a
/// zero guess to `rel_tolerance` on ||r||/||rhs||, double-accumulated dots.
/// Returns the iteration count; convergence is the caller's to judge from
/// the fp64 residual it recomputes anyway.
std::size_t inner_bicgstab_f32(const SellMatrixF& a32, const VectorF& rhs,
                               VectorF& x, const Preconditioner& m,
                               SolverWorkspace& ws, double rel_tolerance,
                               std::size_t max_iters) {
  const std::size_t n = a32.rows();
  x.assign(n, 0.0f);
  const double bnorm = norm2_f32(rhs);
  if (bnorm == 0.0) return 0;

  VectorF& r = ws.rf;
  r = rhs;  // zero guess: r = rhs
  VectorF& r0 = ws.r0f;
  r0 = r;
  ws.pf.assign(n, 0.0f);
  ws.vf.assign(n, 0.0f);
  VectorF& p = ws.pf;
  VectorF& v = ws.vf;
  VectorF& phat = ws.phatf;
  VectorF& shat = ws.shatf;
  VectorF& s = ws.sf;
  VectorF& t = ws.tf;

  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;

  for (std::size_t it = 0; it < max_iters; ++it) {
    const double rho_next = dot_f32(r0, r);
    if (std::abs(rho_next) < 1e-40) return it;  // breakdown
    if (it == 0) {
      p = r;
    } else {
      const float beta = static_cast<float>((rho_next / rho) * (alpha / omega));
      const float w = static_cast<float>(omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - w * v[i]);
      }
    }
    rho = rho_next;

    m.apply_f32(p, phat);
    a32.multiply(phat, v);
    const double r0v = dot_f32(r0, v);
    if (std::abs(r0v) < 1e-40) return it;
    alpha = rho / r0v;

    s = r;
    axpy_f32(static_cast<float>(-alpha), v, s);
    if (norm2_f32(s) / bnorm < rel_tolerance) {
      axpy_f32(static_cast<float>(alpha), phat, x);
      return it + 1;
    }

    m.apply_f32(s, shat);
    a32.multiply(shat, t);
    const double tt = dot_f32(t, t);
    if (tt < 1e-40) return it;
    omega = dot_f32(t, s) / tt;

    axpy_f32(static_cast<float>(alpha), phat, x);
    axpy_f32(static_cast<float>(omega), shat, x);
    r = s;
    axpy_f32(static_cast<float>(-omega), t, r);

    if (norm2_f32(r) / bnorm < rel_tolerance) return it + 1;
    if (std::abs(omega) < 1e-40) return it + 1;
  }
  return max_iters;
}

// residual_history contract helper (same rule as solvers.cpp).
void finish_history(SolveReport& report, bool recording) {
  if (!recording) return;
  if (report.residual_history.empty() ||
      report.residual_history.back() != report.relative_residual) {
    report.residual_history.push_back(report.relative_residual);
  }
}

}  // namespace

SolveReport mixed_refined_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                                const Preconditioner& m, SolverWorkspace& ws,
                                const SolveOptions& opts) {
  const std::size_t n = a.rows();
  LCN_REQUIRE(a.cols() == n, "mixed solve needs a square matrix");
  LCN_REQUIRE(b.size() == n, "mixed solve rhs size mismatch");
  LCN_TRACE_SPAN("mixed_refined_solve");
  x.resize(n, 0.0);

  SolveReport report;
  const bool recording = opts.record_residuals;
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    report.converged = true;
    finish_history(report, recording);
    return report;
  }

  ws.a32.refill(a);  // fast path when `a` kept its symbolic structure

  // True fp64 residual of the current iterate.
  Vector& resid = ws.resid;
  a.multiply(x, ws.ax);
  resid = b;
  axpy(-1.0, ws.ax, resid);

  const std::size_t max_inner = mixed_max_iters(opts, n);
  double rel = norm2(resid) / bnorm;
  int stalls = 0;
  for (std::size_t step = 0; step < opts.mixed_max_refinements; ++step) {
    if (recording) report.residual_history.push_back(rel);
    if (rel < opts.rel_tolerance) {
      report.converged = true;
      break;
    }

    // Scale the residual to unit norm and downcast.
    const double rnorm = norm2(resid);
    ws.xf.assign(n, 0.0f);
    VectorF& rhs32 = ws.axf;  // ax scratch is free between residual updates
    rhs32.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      rhs32[i] = static_cast<float>(resid[i] / rnorm);
    }

    const std::size_t inner = inner_bicgstab_f32(
        ws.a32, rhs32, ws.xf, m, ws, opts.mixed_inner_tolerance, max_inner);
    instrument::add_fp32_inner(inner);
    instrument::add_refinement_step();
    report.iterations += inner;

    for (std::size_t i = 0; i < n; ++i) {
      x[i] += rnorm * static_cast<double>(ws.xf[i]);
    }
    a.multiply(x, ws.ax);
    resid = b;
    axpy(-1.0, ws.ax, resid);
    const double next_rel = norm2(resid) / bnorm;

    // A refinement step that barely moves the true residual means fp32 has
    // hit its wall (or the inner solve diverged): give up after two in a row
    // rather than loop — the caller falls back to fp64.
    const bool stalled = next_rel > 0.5 * rel;
    rel = next_rel;
    if (stalled) {
      if (++stalls >= 2) break;
    } else {
      stalls = 0;
    }
  }

  report.relative_residual = rel;
  report.converged = report.converged || rel < opts.rel_tolerance;
  finish_history(report, recording);
  return report;
}

}  // namespace lcn::sparse
