#include "sparse/multigrid.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace lcn::sparse {

namespace {

/// Per-level grid coordinates carried down the hierarchy while geometric
/// coarsening is possible.
struct Coords {
  std::vector<std::int32_t> layer, row, col;
  std::size_t size() const { return layer.size(); }
  bool empty() const { return layer.empty(); }
};

constexpr std::int32_t kCoordLimit = 1 << 20;

bool coords_encodable(const Coords& c) {
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c.layer[i] < 0 || c.layer[i] >= kCoordLimit || c.row[i] < 0 ||
        c.row[i] >= kCoordLimit || c.col[i] < 0 || c.col[i] >= kCoordLimit) {
      return false;
    }
  }
  return true;
}

/// Geometric aggregation: merge along the strong (vertical) couplings first —
/// pairs of adjacent layers, which also coalesces coincident nodes such as
/// 2RM's solid/liquid pair of a block — then, once a single layer remains,
/// coarsen the plane 2×2. Aggregate ids are assigned in order of first
/// appearance over the node scan, so the result is deterministic. Returns the
/// coarse node count and replaces `coords` with the coarse coordinates.
std::size_t geometric_aggregate(std::vector<std::uint32_t>& agg,
                                Coords& coords) {
  const std::size_t n = coords.size();
  std::int32_t max_layer = 0;
  for (std::int32_t l : coords.layer) max_layer = std::max(max_layer, l);
  const bool vertical = max_layer > 0;

  agg.assign(n, 0);
  Coords coarse;
  std::unordered_map<std::int64_t, std::uint32_t> id_of;
  id_of.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t cl = vertical ? coords.layer[i] >> 1 : 0;
    const std::int32_t cr = vertical ? coords.row[i] : coords.row[i] >> 1;
    const std::int32_t cc = vertical ? coords.col[i] : coords.col[i] >> 1;
    const std::int64_t key =
        (static_cast<std::int64_t>(cl) << 40) |
        (static_cast<std::int64_t>(cr) << 20) | static_cast<std::int64_t>(cc);
    auto [it, inserted] =
        id_of.try_emplace(key, static_cast<std::uint32_t>(coarse.size()));
    if (inserted) {
      coarse.layer.push_back(cl);
      coarse.row.push_back(cr);
      coarse.col.push_back(cc);
    }
    agg[i] = it->second;
  }
  coords = std::move(coarse);
  return coords.size();
}

/// Algebraic fallback: greedy pairwise aggregation along the strongest
/// off-diagonal coupling. Scans rows in order; an unaggregated row pairs with
/// its unaggregated neighbor of largest |a_ij| (ties: smallest column), or
/// stays a singleton. Deterministic by construction.
std::size_t algebraic_aggregate(const CsrMatrix& a,
                                std::vector<std::uint32_t>& agg) {
  const std::size_t n = a.rows();
  const std::vector<std::size_t>& row_ptr = a.row_ptr();
  const std::vector<std::size_t>& col_idx = a.col_idx();
  const std::vector<double>& values = a.values();
  constexpr std::uint32_t kUnset = 0xffffffffu;
  agg.assign(n, kUnset);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (agg[i] != kUnset) continue;
    std::size_t best = n;
    double best_mag = -1.0;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const std::size_t j = col_idx[k];
      if (j == i || j >= n || agg[j] != kUnset) continue;
      const double mag = std::abs(values[k]);
      if (mag > best_mag) {
        best_mag = mag;
        best = j;
      }
    }
    agg[i] = next;
    if (best < n) agg[best] = next;
    ++next;
  }
  return next;
}

}  // namespace

MultigridPreconditioner::MultigridPreconditioner(const CsrMatrix& a,
                                                 const MgGridHint* hint,
                                                 const MultigridOptions& options)
    : opts_(options) {
  LCN_REQUIRE(a.rows() == a.cols(), "multigrid needs a square matrix");
  if (hint != nullptr && hint->consistent() && hint->size() == a.rows()) {
    have_hint_ = true;
    hint_ = *hint;
  }
  build(a);
}

void MultigridPreconditioner::refactor(const CsrMatrix& a) {
  if (!levels_.empty() && a.shared_row_ptr() == src_row_ptr_ &&
      a.shared_col_idx() == src_col_idx_) {
    refill(a);
    return;
  }
  LCN_REQUIRE(a.rows() == a.cols(), "multigrid needs a square matrix");
  build(a);
}

void MultigridPreconditioner::finish_level_numeric(Level& level,
                                                   const CsrMatrix& op) {
  level.op.refill(op);
  level.op32.refill(op);
  level.inv_diag = op.diagonal();
  for (double& d : level.inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;
  level.inv_diag32.assign(level.inv_diag.begin(), level.inv_diag.end());
  if (opts_.smoother == MultigridOptions::Smoother::kIlu0) {
    try {
      if (level.ilu.has_value()) {
        level.ilu->refactor(op);
      } else {
        level.ilu.emplace(op);
      }
    } catch (const RuntimeError&) {
      // Zero pivot on this level: smooth it with damped Jacobi instead.
      level.ilu.reset();
    }
  } else {
    level.ilu.reset();
  }
}

void MultigridPreconditioner::smooth(const Level& lvl, const Vector& rhs,
                                     Vector& x, int sweeps,
                                     bool x_is_zero) const {
  const double w = opts_.jacobi_weight;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    if (sweep == 0 && x_is_zero) {
      // x = 0: the sweep needs no SpMV — smooth the rhs directly.
      if (lvl.ilu.has_value()) {
        lvl.ilu->apply(rhs, x);
      } else {
        x.resize(lvl.n);
        for (std::size_t i = 0; i < lvl.n; ++i) {
          x[i] = w * lvl.inv_diag[i] * rhs[i];
        }
      }
      continue;
    }
    lvl.op.multiply(x, lvl.ax);
    if (lvl.ilu.has_value()) {
      lvl.resid.resize(lvl.n);
      for (std::size_t i = 0; i < lvl.n; ++i) {
        lvl.resid[i] = rhs[i] - lvl.ax[i];
      }
      lvl.ilu->apply(lvl.resid, lvl.zs);
      for (std::size_t i = 0; i < lvl.n; ++i) x[i] += lvl.zs[i];
    } else {
      for (std::size_t i = 0; i < lvl.n; ++i) {
        x[i] += w * lvl.inv_diag[i] * (rhs[i] - lvl.ax[i]);
      }
    }
  }
}

void MultigridPreconditioner::smooth_f32(const Level& lvl, const VectorF& rhs,
                                         VectorF& x, int sweeps,
                                         bool x_is_zero) const {
  const float w = static_cast<float>(opts_.jacobi_weight);
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    if (sweep == 0 && x_is_zero) {
      if (lvl.ilu.has_value()) {
        lvl.ilu->apply_f32(rhs, x);
      } else {
        x.resize(lvl.n);
        for (std::size_t i = 0; i < lvl.n; ++i) {
          x[i] = w * lvl.inv_diag32[i] * rhs[i];
        }
      }
      continue;
    }
    lvl.op32.multiply(x, lvl.ax32);
    if (lvl.ilu.has_value()) {
      lvl.resid32.resize(lvl.n);
      for (std::size_t i = 0; i < lvl.n; ++i) {
        lvl.resid32[i] = rhs[i] - lvl.ax32[i];
      }
      lvl.ilu->apply_f32(lvl.resid32, lvl.zs32);
      for (std::size_t i = 0; i < lvl.n; ++i) x[i] += lvl.zs32[i];
    } else {
      for (std::size_t i = 0; i < lvl.n; ++i) {
        x[i] += w * lvl.inv_diag32[i] * (rhs[i] - lvl.ax32[i]);
      }
    }
  }
}

void MultigridPreconditioner::build(const CsrMatrix& a) {
  src_row_ptr_ = a.shared_row_ptr();
  src_col_idx_ = a.shared_col_idx();
  levels_.clear();
  coarse_lu_.reset();

  Coords coords;
  if (have_hint_ && hint_.size() == a.rows()) {
    coords.layer = hint_.layer;
    coords.row = hint_.row;
    coords.col = hint_.col;
    if (!coords_encodable(coords)) coords = Coords{};
  }

  levels_.emplace_back();
  std::size_t li = 0;
  while (true) {
    const CsrMatrix& cur = li == 0 ? a : levels_[li].a;
    levels_[li].n = cur.rows();

    bool coarsest = cur.rows() <= opts_.coarse_size ||
                    levels_.size() >= opts_.max_levels;
    std::vector<std::uint32_t> agg;
    std::size_t coarse_n = 0;
    if (!coarsest) {
      if (coords.size() == cur.rows()) {
        coarse_n = geometric_aggregate(agg, coords);
      } else {
        coords = Coords{};
        coarse_n = algebraic_aggregate(cur, agg);
      }
      // Stop when coarsening stalls — a further level would only add cost.
      coarsest = static_cast<double>(coarse_n) * opts_.min_coarsening >
                 static_cast<double>(cur.rows());
    }

    if (coarsest) {
      try {
        coarse_lu_.emplace(DenseMatrix::from_csr(cur));
      } catch (const RuntimeError&) {
        // Singular coarse operator: fall back to damped-Jacobi sweeps there.
        coarse_lu_.reset();
        levels_[li].op = SellMatrixD(cur);
        levels_[li].op32 = SellMatrixF(cur);
        finish_level_numeric(levels_[li], cur);
      }
      break;
    }

    Level& lvl = levels_[li];
    lvl.agg = std::move(agg);
    lvl.coarse_n = coarse_n;
    std::vector<Triplet> pattern;
    pattern.reserve(cur.nnz());
    const std::vector<std::size_t>& row_ptr = cur.row_ptr();
    const std::vector<std::size_t>& col_idx = cur.col_idx();
    for (std::size_t r = 0; r < cur.rows(); ++r) {
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        pattern.push_back(Triplet{lvl.agg[r], lvl.agg[col_idx[k]], 0.0});
      }
    }
    lvl.galerkin = SparsityPlan::analyze(coarse_n, coarse_n, pattern);
    lvl.op = SellMatrixD(cur);
    lvl.op32 = SellMatrixF(cur);
    finish_level_numeric(lvl, cur);
    lvl.ax.resize(lvl.n);
    lvl.resid.resize(lvl.n);
    lvl.rc.resize(coarse_n);
    lvl.xc.resize(coarse_n);
    lvl.ax32.resize(lvl.n);
    lvl.resid32.resize(lvl.n);
    lvl.rc32.resize(coarse_n);
    lvl.xc32.resize(coarse_n);

    const std::vector<double>& fine_values = cur.values();
    CsrMatrix coarse = lvl.galerkin.refill_matrix(
        [&fine_values](std::size_t slot) { return fine_values[slot]; });
    levels_.emplace_back();
    levels_[li + 1].a = std::move(coarse);
    ++li;
  }
}

void MultigridPreconditioner::refill(const CsrMatrix& a) {
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    const CsrMatrix& cur = li == 0 ? a : levels_[li].a;
    const bool coarsest = li + 1 == levels_.size();
    if (coarsest) {
      if (coarse_lu_.has_value()) {
        coarse_lu_.emplace(DenseMatrix::from_csr(cur));
      } else {
        finish_level_numeric(levels_[li], cur);
      }
      break;
    }
    Level& lvl = levels_[li];
    finish_level_numeric(lvl, cur);
    const std::vector<double>& fine_values = cur.values();
    // refill_matrix borrows the plan's index arrays, so the next level keeps
    // its shared structure across refills (the SELL refill fast path).
    levels_[li + 1].a = lvl.galerkin.refill_matrix(
        [&fine_values](std::size_t slot) { return fine_values[slot]; });
  }
}

void MultigridPreconditioner::coarse_solve(const Vector& rhs, Vector& x) const {
  instrument::add_mg_coarse_solve();
  if (coarse_lu_.has_value()) {
    x = coarse_lu_->solve(rhs);
    return;
  }
  // Singular-coarse fallback: a few smoothing sweeps from zero.
  const Level& lvl = levels_.back();
  x.assign(rhs.size(), 0.0);
  smooth(lvl, rhs, x, 8, /*x_is_zero=*/true);
}

void MultigridPreconditioner::vcycle(std::size_t level, const Vector& rhs,
                                     Vector& x) const {
  if (level + 1 == levels_.size()) {
    coarse_solve(rhs, x);
    return;
  }
  const Level& lvl = levels_[level];
  x.assign(lvl.n, 0.0);
  // Pre-smoothing. The first sweep starts from x = 0, so it needs no SpMV.
  smooth(lvl, rhs, x, opts_.pre_smooth, /*x_is_zero=*/true);
  // Coarse-grid correction: restrict the residual (piecewise-constant P^T is
  // a scatter-add; kept serial — it is a reduction), recurse, prolongate.
  lvl.op.multiply(x, lvl.ax);
  for (std::size_t i = 0; i < lvl.n; ++i) {
    lvl.resid[i] = rhs[i] - lvl.ax[i];
  }
  std::fill(lvl.rc.begin(), lvl.rc.end(), 0.0);
  for (std::size_t i = 0; i < lvl.n; ++i) {
    lvl.rc[lvl.agg[i]] += lvl.resid[i];
  }
  vcycle(level + 1, lvl.rc, lvl.xc);
  for (std::size_t i = 0; i < lvl.n; ++i) {
    x[i] += lvl.xc[lvl.agg[i]];
  }
  // Post-smoothing.
  smooth(lvl, rhs, x, opts_.post_smooth, /*x_is_zero=*/false);
}

void MultigridPreconditioner::vcycle_f32(std::size_t level, const VectorF& rhs,
                                         VectorF& x) const {
  if (level + 1 == levels_.size()) {
    // The coarse system is tiny; solve it in fp64 through the dense LU.
    Vector rhs64(rhs.begin(), rhs.end());
    Vector x64;
    coarse_solve(rhs64, x64);
    x.assign(x64.begin(), x64.end());
    return;
  }
  const Level& lvl = levels_[level];
  x.assign(lvl.n, 0.0f);
  smooth_f32(lvl, rhs, x, opts_.pre_smooth, /*x_is_zero=*/true);
  lvl.op32.multiply(x, lvl.ax32);
  for (std::size_t i = 0; i < lvl.n; ++i) {
    lvl.resid32[i] = rhs[i] - lvl.ax32[i];
  }
  std::fill(lvl.rc32.begin(), lvl.rc32.end(), 0.0f);
  for (std::size_t i = 0; i < lvl.n; ++i) {
    lvl.rc32[lvl.agg[i]] += lvl.resid32[i];
  }
  vcycle_f32(level + 1, lvl.rc32, lvl.xc32);
  for (std::size_t i = 0; i < lvl.n; ++i) {
    x[i] += lvl.xc32[lvl.agg[i]];
  }
  smooth_f32(lvl, rhs, x, opts_.post_smooth, /*x_is_zero=*/false);
}

void MultigridPreconditioner::apply(const Vector& r, Vector& z) const {
  LCN_REQUIRE(r.size() == levels_.front().n, "multigrid apply: size mismatch");
  LCN_TRACE_SPAN_FINE("mg_vcycle");
  const metrics::ScopedLatency latency(metrics::Hist::mg_vcycle_seconds,
                                       metrics::kFine);
  instrument::add_mg_vcycle();
  vcycle(0, r, z);
}

void MultigridPreconditioner::apply_f32(const VectorF& r, VectorF& z) const {
  LCN_REQUIRE(r.size() == levels_.front().n, "multigrid apply: size mismatch");
  LCN_TRACE_SPAN_FINE("mg_vcycle");
  const metrics::ScopedLatency latency(metrics::Hist::mg_vcycle_seconds,
                                       metrics::kFine);
  instrument::add_mg_vcycle();
  vcycle_f32(0, r, z);
}

double MultigridPreconditioner::sell_padding_ratio() const {
  const SellMatrixD& op = levels_.front().op;
  return op.nnz() == 0 ? 1.0
                       : static_cast<double>(op.padded_slots()) /
                             static_cast<double>(op.nnz());
}

std::unique_ptr<Preconditioner> make_multigrid(const CsrMatrix& a,
                                               const MgGridHint* hint) {
  return std::make_unique<MultigridPreconditioner>(a, hint);
}

}  // namespace lcn::sparse
