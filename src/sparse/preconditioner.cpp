#include "sparse/preconditioner.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace lcn::sparse {

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) {
  LCN_REQUIRE(a.rows() == a.cols(), "Jacobi needs a square matrix");
  inv_diag_ = a.diagonal();
  for (double& d : inv_diag_) d = (d != 0.0) ? 1.0 / d : 1.0;
  inv_diag32_.assign(inv_diag_.begin(), inv_diag_.end());
}

void JacobiPreconditioner::apply(const Vector& r, Vector& z) const {
  LCN_REQUIRE(r.size() == inv_diag_.size(), "Jacobi apply: size mismatch");
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
}

void JacobiPreconditioner::apply_f32(const VectorF& r, VectorF& z) const {
  LCN_REQUIRE(r.size() == inv_diag32_.size(), "Jacobi apply: size mismatch");
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag32_[i];
}

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a) { refactor(a); }

void Ilu0Preconditioner::refactor(const CsrMatrix& a) {
  if (a.shared_row_ptr() != row_ptr_ || a.shared_col_idx() != col_idx_) {
    analyze(a);
  }
  values_ = a.values();
  factorize();
  values32_.assign(values_.begin(), values_.end());
}

void Ilu0Preconditioner::analyze(const CsrMatrix& a) {
  LCN_REQUIRE(a.rows() == a.cols(), "ILU(0) needs a square matrix");
  n_ = a.rows();
  row_ptr_ = a.shared_row_ptr();
  col_idx_ = a.shared_col_idx();
  diag_.assign(n_, 0);
  pos_.assign(n_, -1);

  // Locate diagonal entries (every row must have one for ILU0).
  const std::vector<std::size_t>& row_ptr = *row_ptr_;
  const std::vector<std::size_t>& col_idx = *col_idx_;
  for (std::size_t r = 0; r < n_; ++r) {
    bool found = false;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] == r) {
        diag_[r] = k;
        found = true;
        break;
      }
    }
    if (!found) {
      throw RuntimeError("ILU(0): missing diagonal entry in row " +
                         std::to_string(r));
    }
  }
}

void Ilu0Preconditioner::factorize() {
  // IKJ-variant incomplete factorization restricted to the pattern of A.
  // pos_ maps col -> value index for the current row; it is kept all -1
  // between calls (every row restores the entries it set).
  const std::vector<std::size_t>& row_ptr = *row_ptr_;
  const std::vector<std::size_t>& col_idx = *col_idx_;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      pos_[col_idx[k]] = static_cast<std::ptrdiff_t>(k);
    }
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const std::size_t j = col_idx[k];
      if (j >= i) break;  // only strictly-lower entries eliminate
      const double piv = values_[diag_[j]];
      if (std::abs(piv) < 1e-300) {
        // Keep pos_ all -1 so a later same-structure refactor stays clean.
        for (std::size_t kk = row_ptr[i]; kk < row_ptr[i + 1]; ++kk) {
          pos_[col_idx[kk]] = -1;
        }
        throw RuntimeError("ILU(0): zero pivot at row " + std::to_string(j));
      }
      const double lij = values_[k] / piv;
      values_[k] = lij;
      // subtract lij * U(j, *) on the existing pattern of row i
      for (std::size_t kk = diag_[j] + 1; kk < row_ptr[j + 1]; ++kk) {
        const std::ptrdiff_t p = pos_[col_idx[kk]];
        if (p >= 0) values_[static_cast<std::size_t>(p)] -= lij * values_[kk];
      }
    }
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      pos_[col_idx[k]] = -1;
    }
    if (std::abs(values_[diag_[i]]) < 1e-300) {
      throw RuntimeError("ILU(0): factorization produced zero pivot at row " +
                         std::to_string(i));
    }
  }
}

void Ilu0Preconditioner::apply(const Vector& r, Vector& z) const {
  LCN_REQUIRE(r.size() == n_, "ILU(0) apply: size mismatch");
  const std::vector<std::size_t>& row_ptr = *row_ptr_;
  const std::vector<std::size_t>& col_idx = *col_idx_;
  z = r;
  // Forward solve L z = r (unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = z[i];
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const std::size_t j = col_idx[k];
      if (j >= i) break;
      sum -= values_[k] * z[j];
    }
    z[i] = sum;
  }
  // Backward solve U z = z.
  for (std::size_t ii = n_; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t k = diag_[ii] + 1; k < row_ptr[ii + 1]; ++k) {
      sum -= values_[k] * z[col_idx[k]];
    }
    z[ii] = sum / values_[diag_[ii]];
  }
}

void Ilu0Preconditioner::apply_f32(const VectorF& r, VectorF& z) const {
  LCN_REQUIRE(r.size() == n_, "ILU(0) apply: size mismatch");
  const std::vector<std::size_t>& row_ptr = *row_ptr_;
  const std::vector<std::size_t>& col_idx = *col_idx_;
  z = r;
  for (std::size_t i = 0; i < n_; ++i) {
    float sum = z[i];
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const std::size_t j = col_idx[k];
      if (j >= i) break;
      sum -= values32_[k] * z[j];
    }
    z[i] = sum;
  }
  for (std::size_t ii = n_; ii-- > 0;) {
    float sum = z[ii];
    for (std::size_t k = diag_[ii] + 1; k < row_ptr[ii + 1]; ++k) {
      sum -= values32_[k] * z[col_idx[k]];
    }
    z[ii] = sum / values32_[diag_[ii]];
  }
}

std::unique_ptr<Preconditioner> make_jacobi(const CsrMatrix& a) {
  return std::make_unique<JacobiPreconditioner>(a);
}

std::unique_ptr<Preconditioner> make_ilu0(const CsrMatrix& a) {
  return std::make_unique<Ilu0Preconditioner>(a);
}

}  // namespace lcn::sparse
