// Symbolic half of the COO→CSR split (DESIGN.md §S18).
//
// compress_triplets() does three jobs every time a system is assembled:
// sort the triplet sequence, merge duplicates, and build the CSR index
// arrays. For a fixed (problem, network) all of that is invariant across
// probe parameters — only the *values* change. SparsityPlan runs the
// symbolic work once and captures, for every original triplet slot, where
// its value lands in the CSR value array and in which order duplicate
// contributions are summed. A numeric refill() is then a single linear pass
// with no sorting and no index allocation.
//
// Bit-identity contract: refill() produces value arrays bit-identical to a
// fresh TripletList::to_csr()/merge_to_csr() of the same triplet sequence.
// Three facts make this exact rather than approximate:
//   1. analyze() sorts with the same std::sort instantiation and the same
//      comparator (triplet_pattern_order) as compress_triplets(). The sort's
//      permutation depends only on comparator outcomes over (row, col) keys,
//      so tagging triplets with slot indices instead of values yields the
//      permutation a fresh compression would apply.
//   2. refill() accumulates contributions in captured sorted order into
//      slots initialised to 0.0 — the same `sum = 0.0; sum += v...` loop
//      compress_triplets() runs per duplicate group.
//   3. The caller guarantees the pattern is really invariant: same number
//      of triplets, same (row, col) per slot (assembly code that skips
//      zero-valued entries must skip them identically on every emission).
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/csr.hpp"

namespace lcn::sparse {

class SparsityPlan {
 public:
  SparsityPlan() = default;

  /// Symbolic analysis of a triplet pattern. `pattern` values are ignored;
  /// only (row, col) per slot matter. Counts one `assemblies_symbolic`.
  static SparsityPlan analyze(std::size_t rows, std::size_t cols,
                              const std::vector<Triplet>& pattern);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return col_idx_->size(); }
  /// Number of triplet slots the plan was analyzed from (≥ nnz: duplicate
  /// (row, col) slots compress into one CSR entry).
  std::size_t slots() const { return perm_.size(); }

  /// Original triplet slot feeding sorted position s.
  const std::vector<std::size_t>& perm() const { return perm_; }
  /// CSR value slot receiving sorted position s.
  const std::vector<std::size_t>& slot() const { return slot_; }

  const SharedIndexes& shared_row_ptr() const { return row_ptr_; }
  const SharedIndexes& shared_col_idx() const { return col_idx_; }

  /// Numeric pass: values[csr_slot] accumulates value_of(triplet_slot) in
  /// the captured duplicate-summation order. `value_of` is any callable
  /// std::size_t → double over [0, slots()).
  template <class ValueFn>
  void refill(ValueFn&& value_of, std::vector<double>& values) const {
    values.assign(nnz(), 0.0);
    for (std::size_t s = 0; s < perm_.size(); ++s) {
      values[slot_[s]] += value_of(perm_[s]);
    }
  }

  /// refill() packaged as a matrix that *borrows* the plan's index arrays —
  /// no symbolic copies, just one value-array allocation.
  template <class ValueFn>
  CsrMatrix refill_matrix(ValueFn&& value_of) const {
    std::vector<double> values;
    refill(value_of, values);
    return CsrMatrix(rows_, cols_, row_ptr_, col_idx_, std::move(values));
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  SharedIndexes row_ptr_;
  SharedIndexes col_idx_;
  std::vector<std::size_t> perm_;
  std::vector<std::size_t> slot_;
};

}  // namespace lcn::sparse
