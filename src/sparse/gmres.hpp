// Restarted GMRES(m) for general square systems.
//
// BiCGSTAB is the workhorse for the thermal systems; GMRES(m) is the robust
// fallback for strongly advective (high-P_sys) assemblies where BiCGSTAB's
// short recurrences can stagnate. Right-preconditioned so the residual norm
// it monitors is the true residual.
#pragma once

#include "sparse/preconditioner.hpp"
#include "sparse/solvers.hpp"

namespace lcn::sparse {

struct GmresOptions {
  double rel_tolerance = 1e-10;
  std::size_t restart = 40;        ///< Krylov subspace dimension m
  std::size_t max_outer = 0;       ///< 0 => ceil(10·n / restart) + 4
  /// Capture per-iteration residual estimates into
  /// SolveReport::residual_history (see SolveOptions::record_residuals).
  bool record_residuals = false;
};

/// Solve A x = b with restarted, right-preconditioned GMRES.
/// x carries the initial guess in and the solution out.
SolveReport gmres_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                        const Preconditioner& m,
                        const GmresOptions& options = {});

/// Workspace variant: reuses caller-held Arnoldi scratch across solves.
/// Bit-identical to the allocating variant (every vector it reads is
/// re-initialised to the state the allocating variant constructs).
SolveReport gmres_solve(const CsrMatrix& a, const Vector& b, Vector& x,
                        const Preconditioner& m, SolverWorkspace& ws,
                        const GmresOptions& options = {});

}  // namespace lcn::sparse
