// Geometric/algebraic multigrid preconditioner (DESIGN.md §S20).
//
// The thermal systems live on structured layer × row × col grids whose
// couplings are strongly anisotropic: vertical conductances (thin layers,
// g ~ k·A/(t/2)) dwarf in-plane ones (g ~ k·t). Aggregation therefore
// coarsens *along the strong direction first* — adjacent layers of a
// (row, col) pillar are merged (2RM's solid/liquid pair of a block merges the
// same way) until one layer remains, then the plane is coarsened 2×2 — which
// is exactly when piecewise-constant transfer is accurate: after smoothing,
// the error is near-constant across strong couplings. Without a grid hint the
// same principle runs algebraically (greedy pairwise aggregation on the
// strongest |a_ij| coupling).
//
// The hierarchy is a symbolic/numeric split in the §S18 idiom: aggregates,
// transfer maps and every Galerkin coarse pattern (A_c = P^T A P with
// piecewise-constant P, i.e. A_c(I,J) = Σ_{agg(i)=I, agg(j)=J} a_ij) are
// captured once per sparsity structure as SparsityPlans; refactor() on a
// structure-sharing matrix refills values level by level with no symbolic
// work, and falls back to full reconstruction when the structure changed.
//
// apply() runs one V-cycle over SELL-C-σ operators with a dense-LU coarse
// solve — a fixed linear operation, so it composes with
// CG/BiCGSTAB/GMRES through the ordinary Preconditioner interface. The
// default smoother is a per-level ILU(0): the thermal matrices carry
// advective liquid rows whose diagonal (convective conductance) sits orders
// of magnitude below the ±cv·q/2 flow couplings, and pointwise damped Jacobi
// *amplifies* error on those rows — the V-cycle diverges — while ILU(0)'s
// triangular sweeps follow the flow chain exactly. Damped Jacobi remains
// available for diffusion-dominated SPD systems. The
// fp32 overload runs the same cycle on fp32 copies of the hierarchy for the
// mixed-precision inner solves. Results are identical for every thread count
// (each output element is produced by one task in serial operation order),
// but one instance must not be applied from two threads concurrently — the
// per-level scratch is a workspace, like SolverWorkspace.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sparse/dense.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/sell.hpp"
#include "sparse/sparsity_plan.hpp"

namespace lcn::sparse {

/// Structured-grid coordinates of each matrix row, provided by the thermal
/// assembly plans: layer index plus in-plane (row, col). Nodes sharing all
/// three (e.g. 2RM's solid and liquid node of one block) are coalesced by the
/// first vertical coarsening step.
struct MgGridHint {
  std::vector<std::int32_t> layer;
  std::vector<std::int32_t> row;
  std::vector<std::int32_t> col;

  std::size_t size() const { return layer.size(); }
  bool consistent() const {
    return row.size() == layer.size() && col.size() == layer.size();
  }
};

struct MultigridOptions {
  /// Per-level smoother. kIlu0 (default) is robust for the advective thermal
  /// systems; kJacobi is cheaper per sweep but diverges on rows that are far
  /// from diagonally dominant. A level whose ILU(0) factorization hits a
  /// zero pivot falls back to damped Jacobi on that level alone.
  enum class Smoother { kIlu0, kJacobi };
  Smoother smoother = Smoother::kIlu0;
  std::size_t max_levels = 25;
  /// Coarsest-level size: stop coarsening at or below this and solve the
  /// coarse system directly (dense LU).
  std::size_t coarse_size = 200;
  int pre_smooth = 1;   ///< smoothing sweeps before coarse correction
  int post_smooth = 1;  ///< sweeps after
  double jacobi_weight = 0.7;  ///< damping for the Jacobi smoother paths
  /// Stop adding levels when a coarsening step shrinks the system by less
  /// than this factor (guards against aggregation stalling).
  double min_coarsening = 1.1;
};

class MultigridPreconditioner final : public Preconditioner {
 public:
  /// Build the full hierarchy for `a`. `hint` (optional, may be null) enables
  /// the geometric coarsening path; it is copied, so the caller's hint may
  /// die. Without a hint — or once the hint's structure is exhausted —
  /// aggregation proceeds algebraically.
  explicit MultigridPreconditioner(const CsrMatrix& a,
                                   const MgGridHint* hint = nullptr,
                                   const MultigridOptions& options = {});

  /// Refactorize for a new matrix. When `a` shares the previous matrix's
  /// symbolic structure (pointer-identical index arrays) only the numeric
  /// hierarchy is refilled (values, Galerkin products, smoother factors,
  /// coarse LU) on the existing aggregates; otherwise the whole hierarchy —
  /// aggregates included — is rebuilt, reusing the stored grid hint when the
  /// node count still matches and dropping to algebraic aggregation when it
  /// does not. With a grid hint the aggregates depend only on coordinates,
  /// so a same-structure refill is bit-identical to a fresh construction
  /// from `a`. Hint-less (algebraic) aggregation follows the strongest
  /// couplings of the matrix the hierarchy was *built* from; a refill keeps
  /// those aggregates — still a valid preconditioner, but possibly a
  /// different hierarchy than a fresh build on the new values would choose.
  void refactor(const CsrMatrix& a);

  /// One V-cycle: z ≈ A⁻¹ r.
  void apply(const Vector& r, Vector& z) const override;
  /// Same V-cycle on the fp32 hierarchy (mixed-precision inner solves).
  void apply_f32(const VectorF& r, VectorF& z) const override;

  std::size_t level_count() const { return levels_.size(); }
  std::size_t level_rows(std::size_t level) const {
    return levels_.at(level).n;
  }
  /// Padded-slot overhead of the finest SELL operator (diagnostics).
  double sell_padding_ratio() const;

 private:
  struct Level {
    std::size_t n = 0;
    CsrMatrix a;            ///< owned on levels ≥ 1; empty handle on level 0
    SellMatrixD op;         ///< smoother/residual operator
    SellMatrixF op32;       ///< fp32 copy for apply_f32
    Vector inv_diag;
    VectorF inv_diag32;
    /// ILU(0) smoother factors; absent under Smoother::kJacobi or after a
    /// zero pivot (that level then smooths with damped Jacobi).
    std::optional<Ilu0Preconditioner> ilu;
    // Coarsening to the next level (absent on the coarsest level).
    std::vector<std::uint32_t> agg;  ///< this-level row -> coarse aggregate
    std::size_t coarse_n = 0;
    SparsityPlan galerkin;  ///< coarse pattern over this level's nnz sequence
    // V-cycle scratch (workspace semantics: not concurrency-safe).
    mutable Vector ax, resid, zs, rc, xc;
    mutable VectorF ax32, resid32, zs32, rc32, xc32;
  };

  void build(const CsrMatrix& a);
  void refill(const CsrMatrix& a);
  void finish_level_numeric(Level& level, const CsrMatrix& op);
  void smooth(const Level& lvl, const Vector& rhs, Vector& x, int sweeps,
              bool x_is_zero) const;
  void smooth_f32(const Level& lvl, const VectorF& rhs, VectorF& x, int sweeps,
                  bool x_is_zero) const;
  void vcycle(std::size_t level, const Vector& rhs, Vector& x) const;
  void vcycle_f32(std::size_t level, const VectorF& rhs, VectorF& x) const;
  void coarse_solve(const Vector& rhs, Vector& x) const;

  MultigridOptions opts_;
  bool have_hint_ = false;
  MgGridHint hint_;
  SharedIndexes src_row_ptr_;
  SharedIndexes src_col_idx_;
  std::vector<Level> levels_;
  std::optional<DenseLu> coarse_lu_;
};

std::unique_ptr<Preconditioner> make_multigrid(const CsrMatrix& a,
                                               const MgGridHint* hint = nullptr);

}  // namespace lcn::sparse
