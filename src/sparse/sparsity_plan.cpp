#include "sparse/sparsity_plan.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/instrument.hpp"

namespace lcn::sparse {

SparsityPlan SparsityPlan::analyze(std::size_t rows, std::size_t cols,
                                   const std::vector<Triplet>& pattern) {
  // Tag every slot with its index (exact as a double for any realistic nnz)
  // and run the identical sort compress_triplets() runs. The comparator
  // never reads values, so the permutation is the one a fresh compression
  // of this pattern would apply.
  LCN_REQUIRE(pattern.size() < (1ull << 53),
              "SparsityPlan: pattern too large to tag exactly");
  std::vector<Triplet> tagged(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    LCN_REQUIRE(pattern[i].row < rows && pattern[i].col < cols,
                "SparsityPlan: triplet index out of range");
    tagged[i] = {pattern[i].row, pattern[i].col, static_cast<double>(i)};
  }
  std::sort(tagged.begin(), tagged.end(), &triplet_pattern_order);

  SparsityPlan plan;
  plan.rows_ = rows;
  plan.cols_ = cols;
  plan.perm_.reserve(tagged.size());
  plan.slot_.reserve(tagged.size());

  // Same duplicate-group walk as compress_triplets(), recording the scatter
  // map instead of summing values.
  std::vector<std::size_t> row_ptr(rows + 1, 0);
  std::vector<std::size_t> col_idx;
  col_idx.reserve(tagged.size());
  for (std::size_t i = 0; i < tagged.size();) {
    std::size_t j = i;
    const std::size_t csr_slot = col_idx.size();
    while (j < tagged.size() && tagged[j].row == tagged[i].row &&
           tagged[j].col == tagged[i].col) {
      plan.perm_.push_back(static_cast<std::size_t>(tagged[j].value));
      plan.slot_.push_back(csr_slot);
      ++j;
    }
    col_idx.push_back(tagged[i].col);
    ++row_ptr[tagged[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) row_ptr[r + 1] += row_ptr[r];

  plan.row_ptr_ =
      std::make_shared<const std::vector<std::size_t>>(std::move(row_ptr));
  plan.col_idx_ =
      std::make_shared<const std::vector<std::size_t>>(std::move(col_idx));
  instrument::add_assembly_symbolic();
  return plan;
}

}  // namespace lcn::sparse
