// Partition-based parallel execution for the sparse kernels (DESIGN.md §S1).
//
// Kernels fan out over the global thread pool only when (a) the pool has
// more than one worker, (b) the caller is not already inside a pool task
// (SpMV under a parallel SA neighbor evaluation stays serial — parallelism
// is spent once, at the widest level), and (c) the work is large enough to
// amortize dispatch. Every parallel kernel in this module is *bit-identical*
// to its serial form for any thread count: outputs are partitioned so each
// element is produced by exactly one task with an unchanged operation order.
// Reductions (dot, norms) intentionally stay serial — chunked partial sums
// would round differently per thread count and break the serial/parallel
// equivalence contract the SA determinism tests rely on.
#pragma once

#include <cstddef>
#include <functional>

namespace lcn::sparse {

/// Minimum element count before an element-wise vector kernel fans out.
inline constexpr std::size_t kVectorGrain = std::size_t{1} << 15;
/// Minimum nonzero count before SpMV fans out.
inline constexpr std::size_t kSpmvGrain = std::size_t{1} << 14;

/// True when a kernel of size `work` (elements or nonzeros) should fan out.
bool parallel_kernels_enabled(std::size_t work, std::size_t grain);

/// Run fn(begin, end) over contiguous sub-ranges covering [0, n); the range
/// count equals the pool width. Caller guarantees fn writes disjoint outputs.
void parallel_ranges(std::size_t n,
                     const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace lcn::sparse
