// Incomplete Cholesky IC(0) preconditioner for SPD systems (the flow
// pressure Laplacian). Falls back-compatible with the Preconditioner
// interface used by cg_solve; typically 3-5x fewer CG iterations than
// Jacobi on the benchmark networks.
#pragma once

#include "sparse/preconditioner.hpp"

namespace lcn::sparse {

class Ic0Preconditioner final : public Preconditioner {
 public:
  /// Factorize L·Lᵀ ≈ A on the lower-triangular pattern of A. Throws
  /// lcn::RuntimeError when a pivot is not positive (matrix not SPD enough
  /// for IC(0); callers can fall back to Jacobi).
  explicit Ic0Preconditioner(const CsrMatrix& a);

  /// z = (L·Lᵀ)⁻¹ r via forward + backward triangular solves.
  void apply(const Vector& r, Vector& z) const override;

 private:
  std::size_t n_ = 0;
  // Lower-triangular factor in CSR (diagonal stored explicitly, last in row).
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
  // Column-major access for the transposed (backward) solve.
  std::vector<std::size_t> col_ptr_;
  std::vector<std::size_t> row_idx_;
  std::vector<double> t_values_;
};

}  // namespace lcn::sparse
