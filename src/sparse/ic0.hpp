// Incomplete Cholesky IC(0) preconditioner for SPD systems (the flow
// pressure Laplacian). Falls back-compatible with the Preconditioner
// interface used by cg_solve; typically 3-5x fewer CG iterations than
// Jacobi on the benchmark networks.
//
// Split into a symbolic phase (extract the lower-triangular pattern and the
// gather maps from A's value array and into the transposed view) and a
// numeric phase (gather + factorize). refactor() reruns only the numeric
// phase when the new matrix shares the previous structure (DESIGN.md §S18).
#pragma once

#include "sparse/preconditioner.hpp"

namespace lcn::sparse {

class Ic0Preconditioner final : public Preconditioner {
 public:
  /// Factorize L·Lᵀ ≈ A on the lower-triangular pattern of A. Throws
  /// lcn::RuntimeError when a pivot is not positive (matrix not SPD enough
  /// for IC(0); callers can fall back to Jacobi).
  explicit Ic0Preconditioner(const CsrMatrix& a);

  /// Refactorize for a new matrix; skips the symbolic phase when `a` shares
  /// the previous matrix's structure (pointer-identical shared index
  /// arrays). Either way the factors are bit-identical to a fresh
  /// construction from `a`. On throw the object is unusable until a
  /// refactor()/reconstruction succeeds.
  void refactor(const CsrMatrix& a);

  /// z = (L·Lᵀ)⁻¹ r via forward + backward triangular solves.
  void apply(const Vector& r, Vector& z) const override;

 private:
  void analyze(const CsrMatrix& a);
  void factorize(const std::vector<double>& a_values);

  std::size_t n_ = 0;
  // Identity of the source matrix's structure (refactor fast-path check).
  SharedIndexes a_row_ptr_;
  SharedIndexes a_col_idx_;
  // Lower-triangular factor in CSR (diagonal stored explicitly, last in row).
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
  std::vector<std::size_t> lower_src_;  // lower slot -> index into A values
  // Column-major access for the transposed (backward) solve.
  std::vector<std::size_t> col_ptr_;
  std::vector<std::size_t> row_idx_;
  std::vector<double> t_values_;
  std::vector<std::size_t> t_src_;  // transposed slot -> lower slot
  std::vector<std::ptrdiff_t> pos_;  // col -> slot scratch (kept all -1)
};

}  // namespace lcn::sparse
