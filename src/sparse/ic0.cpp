#include "sparse/ic0.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace lcn::sparse {

Ic0Preconditioner::Ic0Preconditioner(const CsrMatrix& a) { refactor(a); }

void Ic0Preconditioner::refactor(const CsrMatrix& a) {
  if (a.shared_row_ptr() != a_row_ptr_ || a.shared_col_idx() != a_col_idx_) {
    analyze(a);
  }
  factorize(a.values());
}

void Ic0Preconditioner::analyze(const CsrMatrix& a) {
  LCN_REQUIRE(a.rows() == a.cols(), "IC(0) needs a square matrix");
  n_ = a.rows();
  a_row_ptr_ = a.shared_row_ptr();
  a_col_idx_ = a.shared_col_idx();

  // Extract the lower-triangular pattern (including diagonal) of A and the
  // gather map from A's value array.
  row_ptr_.assign(n_ + 1, 0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      if (a.col_idx()[k] <= r) ++row_ptr_[r + 1];
    }
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];
  col_idx_.resize(row_ptr_[n_]);
  lower_src_.resize(row_ptr_[n_]);
  values_.resize(row_ptr_[n_]);
  {
    std::vector<std::size_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
        const std::size_t c = a.col_idx()[k];
        if (c > r) continue;
        col_idx_[cursor[r]] = c;
        lower_src_[cursor[r]] = k;
        ++cursor[r];
      }
    }
  }
  for (std::size_t i = 0; i < n_; ++i) {
    LCN_REQUIRE(row_ptr_[i + 1] > row_ptr_[i] &&
                    col_idx_[row_ptr_[i + 1] - 1] == i,
                "IC(0): missing diagonal entry");
  }

  // Transposed (CSC-like) pattern for the backward solve, plus the gather
  // map from the row-major factor.
  col_ptr_.assign(n_ + 1, 0);
  for (std::size_t k = 0; k < col_idx_.size(); ++k) ++col_ptr_[col_idx_[k] + 1];
  for (std::size_t c = 0; c < n_; ++c) col_ptr_[c + 1] += col_ptr_[c];
  row_idx_.resize(col_idx_.size());
  t_src_.resize(col_idx_.size());
  t_values_.resize(col_idx_.size());
  std::vector<std::size_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      row_idx_[cursor[c]] = r;
      t_src_[cursor[c]] = k;
      ++cursor[c];
    }
  }

  pos_.assign(n_, -1);
}

void Ic0Preconditioner::factorize(const std::vector<double>& a_values) {
  LCN_REQUIRE(a_values.size() == a_col_idx_->size(),
              "IC(0): value array mismatch");
  // Gather the lower triangle of A (bit-identical to the extraction loop a
  // fresh construction runs — a pure per-slot copy either way).
  for (std::size_t s = 0; s < lower_src_.size(); ++s) {
    values_[s] = a_values[lower_src_[s]];
  }

  // IC(0) factorization in place on the lower pattern. Row entries are
  // sorted (CSR from TripletList is sorted), diagonal last in each row.
  // pos_ maps col -> index in the current row; kept all -1 between calls.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t row_begin = row_ptr_[i];
    const std::size_t row_end = row_ptr_[i + 1];
    for (std::size_t k = row_begin; k < row_end; ++k) {
      pos_[col_idx_[k]] = static_cast<std::ptrdiff_t>(k);
    }
    // For each entry L(i,j), j < i:
    for (std::size_t k = row_begin; k + 1 < row_end; ++k) {
      const std::size_t j = col_idx_[k];
      // L(i,j) = (A(i,j) - sum_{m<j} L(i,m)·L(j,m)) / L(j,j)
      double sum = values_[k];
      for (std::size_t kj = row_ptr_[j]; kj + 1 < row_ptr_[j + 1]; ++kj) {
        const std::ptrdiff_t p = pos_[col_idx_[kj]];
        if (p >= 0 && static_cast<std::size_t>(p) < k) {
          sum -= values_[static_cast<std::size_t>(p)] * values_[kj];
        }
      }
      const double diag_j = values_[row_ptr_[j + 1] - 1];
      values_[k] = sum / diag_j;
    }
    // Diagonal: L(i,i) = sqrt(A(i,i) - sum_m L(i,m)²)
    double diag = values_[row_end - 1];
    for (std::size_t k = row_begin; k + 1 < row_end; ++k) {
      diag -= values_[k] * values_[k];
    }
    if (diag <= 0.0) {
      // Keep pos_ all -1 so a later same-structure refactor stays clean.
      for (std::size_t k = row_begin; k < row_end; ++k) pos_[col_idx_[k]] = -1;
      throw RuntimeError("IC(0): non-positive pivot at row " +
                         std::to_string(i));
    }
    values_[row_end - 1] = std::sqrt(diag);
    for (std::size_t k = row_begin; k < row_end; ++k) pos_[col_idx_[k]] = -1;
  }

  // Refresh the transposed view (pure gather from the factored values).
  for (std::size_t t = 0; t < t_src_.size(); ++t) {
    t_values_[t] = values_[t_src_[t]];
  }
}

void Ic0Preconditioner::apply(const Vector& r, Vector& z) const {
  LCN_REQUIRE(r.size() == n_, "IC(0) apply: size mismatch");
  z = r;
  // Forward: L y = r (diagonal is the last entry of each row).
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = z[i];
    for (std::size_t k = row_ptr_[i]; k + 1 < row_ptr_[i + 1]; ++k) {
      sum -= values_[k] * z[col_idx_[k]];
    }
    z[i] = sum / values_[row_ptr_[i + 1] - 1];
  }
  // Backward: Lᵀ z = y, walking columns of L (rows of Lᵀ) in reverse. Rows
  // within a column are ascending, so the first entry is the diagonal.
  for (std::size_t ii = n_; ii-- > 0;) {
    const std::size_t begin = col_ptr_[ii];
    LCN_ASSERT(row_idx_[begin] == ii, "IC(0): column must start at diagonal");
    double sum = z[ii];
    for (std::size_t k = begin + 1; k < col_ptr_[ii + 1]; ++k) {
      sum -= t_values_[k] * z[row_idx_[k]];
    }
    z[ii] = sum / t_values_[begin];
  }
}

}  // namespace lcn::sparse
