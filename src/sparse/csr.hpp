// Compressed-sparse-row matrix plus a COO-style triplet builder.
//
// The flow solver assembles an SPD Laplacian over liquid cells; the thermal
// simulators assemble a nonsymmetric advection-diffusion matrix over thermal
// nodes. Both go through TripletList::to_csr(), which sorts and sums
// duplicate entries (so assembly code can freely add partial conductances).
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/vector_ops.hpp"

namespace lcn::sparse {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// y = A x. Rows are partitioned across the global thread pool (balanced
  /// by nonzero count) when the matrix is large enough; each y[r] is
  /// produced by exactly one task with the serial operation order, so the
  /// result is bit-identical for every thread count.
  void multiply(const Vector& x, Vector& y) const;
  Vector multiply(const Vector& x) const;

  /// Reference serial SpMV (always single-threaded; equivalence tests
  /// compare the partitioned path against this).
  void multiply_serial(const Vector& x, Vector& y) const;

  /// Entry lookup (binary search within the row); zero if absent.
  double at(std::size_t row, std::size_t col) const;

  /// Main diagonal (zero where absent).
  Vector diagonal() const;

  /// max |A(i,j) - A(j,i)| — used by tests to assert SPD-ness of the flow
  /// matrix and quantify the asymmetry the advection terms introduce.
  double symmetry_gap() const;

  /// Dense copy (row-major), for small reference checks only.
  std::vector<double> to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

class TripletList {
 public:
  TripletList(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  void add(std::size_t row, std::size_t col, double value);
  void reserve(std::size_t n) { triplets_.reserve(n); }
  std::size_t size() const { return triplets_.size(); }
  const std::vector<Triplet>& triplets() const { return triplets_; }

  /// Sort, merge duplicates (summing), and build CSR.
  CsrMatrix to_csr() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

/// Concatenate partial triplet lists (in the given order) and build CSR.
/// Row-block parallel assembly fills one list per block; concatenating in
/// block order reproduces the exact serial triplet sequence, so the merged
/// matrix is bit-identical to a single-list assembly for any thread count.
CsrMatrix merge_to_csr(std::size_t rows, std::size_t cols,
                       const std::vector<const TripletList*>& parts);

}  // namespace lcn::sparse
