// Compressed-sparse-row matrix plus a COO-style triplet builder.
//
// The flow solver assembles an SPD Laplacian over liquid cells; the thermal
// simulators assemble a nonsymmetric advection-diffusion matrix over thermal
// nodes. Both go through TripletList::to_csr(), which sorts and sums
// duplicate entries (so assembly code can freely add partial conductances).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sparse/vector_ops.hpp"

namespace lcn::sparse {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// The one ordering used everywhere COO triplets are compressed to CSR:
/// row-major, then by column. compress_triplets() and SparsityPlan::analyze()
/// must sort with this exact comparator (same function, same std::sort
/// instantiation) so the duplicate-summation order a plan captures is the
/// order a fresh compression would use — the root of the refill ≡ fresh
/// bit-identity guarantee.
inline bool triplet_pattern_order(const Triplet& a, const Triplet& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}

/// Immutable symbolic CSR structure (row pointers + column indices), shared
/// between every matrix assembled from the same sparsity pattern. A
/// SparsityPlan analyzes a triplet sequence once and hands the structure to
/// each numeric refill, so repeated assemblies of the same system only ever
/// allocate a value array.
using SharedIndexes = std::shared_ptr<const std::vector<std::size_t>>;

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);
  /// Borrow an existing symbolic structure (no index copies) — the
  /// symbolic/numeric split's fast path.
  CsrMatrix(std::size_t rows, std::size_t cols, SharedIndexes row_ptr,
            SharedIndexes col_idx, std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return *row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return *col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// Handles to the shared symbolic structure. Two matrices with the same
  /// handle provably share a sparsity pattern (pointer identity), which lets
  /// preconditioners skip their symbolic phase on refactorization.
  const SharedIndexes& shared_row_ptr() const { return row_ptr_; }
  const SharedIndexes& shared_col_idx() const { return col_idx_; }

  /// y = A x. Rows are partitioned across the global thread pool (balanced
  /// by nonzero count) when the matrix is large enough; each y[r] is
  /// produced by exactly one task with the serial operation order, so the
  /// result is bit-identical for every thread count.
  void multiply(const Vector& x, Vector& y) const;
  Vector multiply(const Vector& x) const;

  /// Reference serial SpMV (always single-threaded; equivalence tests
  /// compare the partitioned path against this).
  void multiply_serial(const Vector& x, Vector& y) const;

  /// Entry lookup (binary search within the row); zero if absent.
  double at(std::size_t row, std::size_t col) const;

  /// Main diagonal (zero where absent).
  Vector diagonal() const;

  /// max |A(i,j) - A(j,i)| — used by tests to assert SPD-ness of the flow
  /// matrix and quantify the asymmetry the advection terms introduce.
  double symmetry_gap() const;

  /// Dense copy (row-major), for small reference checks only.
  std::vector<double> to_dense() const;

 private:
  /// Shared empty structure backing default-constructed matrices.
  static const SharedIndexes& empty_indexes();

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  SharedIndexes row_ptr_ = empty_indexes();
  SharedIndexes col_idx_ = empty_indexes();
  std::vector<double> values_;
};

class TripletList {
 public:
  TripletList(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  void add(std::size_t row, std::size_t col, double value);
  void reserve(std::size_t n) { triplets_.reserve(n); }
  std::size_t size() const { return triplets_.size(); }
  const std::vector<Triplet>& triplets() const { return triplets_; }

  /// Sort, merge duplicates (summing), and build CSR.
  CsrMatrix to_csr() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

/// Concatenate partial triplet lists (in the given order) and build CSR.
/// Row-block parallel assembly fills one list per block; concatenating in
/// block order reproduces the exact serial triplet sequence, so the merged
/// matrix is bit-identical to a single-list assembly for any thread count.
CsrMatrix merge_to_csr(std::size_t rows, std::size_t cols,
                       const std::vector<const TripletList*>& parts);

}  // namespace lcn::sparse
