// Content-addressed evaluator cache for the SA optimizer (DESIGN.md §S10).
//
// Algorithm 3 and multi-round SA repeatedly probe identical candidate
// networks: the incumbent is re-scored at every stage boundary, round seeds
// restart from the same state, and small neighbor pools frequently
// regenerate a layout seen a few iterations ago. A full network evaluation
// costs several assemblies + Krylov solves, so repeats are cached under a
// content hash of (realized network, thermal model, evaluation mode, fixed
// pressure) mixed with a fingerprint of the cooling problem — changing the
// network, the stack, or the power maps changes the key and naturally
// invalidates stale entries. Evaluations are deterministic (bit-identical
// for any thread count), so a cached result equals a fresh one exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "opt/evaluator.hpp"

namespace lcn {

/// How a network was scored; part of the cache key because the same network
/// yields different EvalResults under different evaluation protocols.
enum class EvalMode : std::uint8_t {
  kFullP1 = 0,        ///< evaluate_p1 (Algorithm 2 pressure search)
  kFullP2 = 1,        ///< evaluate_p2 (golden-section under budget)
  kFixedPressure = 2, ///< ΔT at a fixed P_sys (SA stage-1 cost)
  kP2Follower = 3,    ///< evaluate_p2_at (grouped-iteration follower)
};

/// Stable fingerprint of the fixed problem inputs (grid, stack, power maps,
/// coolant, boundary conditions). Two optimizers over different problems can
/// never alias cache entries even with identical networks.
std::uint64_t problem_fingerprint(const CoolingProblem& problem);

struct EvalCacheKey {
  std::uint64_t network = 0;  ///< CoolingNetwork::content_hash()
  std::uint64_t context = 0;  ///< problem fp ⊕ sim config ⊕ mode ⊕ pressure

  friend bool operator==(const EvalCacheKey&, const EvalCacheKey&) = default;
};

EvalCacheKey make_eval_key(std::uint64_t problem_fp,
                           const CoolingNetwork& network,
                           const SimConfig& sim, EvalMode mode,
                           double pressure = 0.0);

/// Thread-safe (network layout + P_sys → metrics) memo. Lookup misses are
/// computed outside the lock by the caller and stored afterwards; concurrent
/// duplicate computation is benign because evaluations are deterministic.
class EvaluatorCache {
 public:
  std::optional<EvalResult> find(const EvalCacheKey& key) const;
  void store(const EvalCacheKey& key, const EvalResult& result);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  double hit_rate() const;
  std::size_t size() const;
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const EvalCacheKey& key) const {
      // splitmix-style final mix of the two halves.
      std::uint64_t z = key.network + 0x9e3779b97f4a7c15ULL * key.context;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<EvalCacheKey, EvalResult, KeyHash> map_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace lcn
