#include "opt/sa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/log.hpp"
#include "common/task_context.hpp"
#include "common/trace.hpp"
#include "network/design_rules.hpp"
#include "opt/islands.hpp"

namespace lcn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int scaled(int value, double scale) {
  return std::max(1, static_cast<int>(std::lround(value * scale)));
}

}  // namespace

std::vector<SaStage> default_p1_stages(double scale) {
  // Paper §6: stages of 60/40/40/30 iterations and 8/4/2/1 rounds, 64
  // neighbors, 2RM for stages 1-3 and 4RM for stage 4. The default scale
  // shrinks the schedule for a single-core box; LCN_SA_SCALE restores it.
  const SimConfig fast{ThermalModelKind::k2RM, 4};
  const SimConfig accurate{ThermalModelKind::k4RM, 1};
  std::vector<SaStage> stages;
  stages.push_back({"s1-fixedP", scaled(60, scale), scaled(3, scale),
                    scaled(8, scale), 12, fast, true, 1});
  stages.push_back({"s2-coarse", scaled(24, scale), scaled(2, scale),
                    scaled(6, scale), 12, fast, false, 1});
  stages.push_back({"s3-fine", scaled(16, scale), 1, scaled(6, scale), 4,
                    fast, false, 1});
  stages.push_back({"s4-signoff", scaled(2, scale), 1, 2, 2, accurate,
                    false, 1});
  return stages;
}

std::vector<SaStage> default_p2_stages(double scale) {
  // Paper §6: 80/20/20 iterations, 8/2/1 rounds; stage 1 of Problem 1 is
  // dropped and grouped evaluation makes 4RM affordable earlier (§5).
  const SimConfig fast{ThermalModelKind::k2RM, 4};
  const SimConfig accurate{ThermalModelKind::k4RM, 1};
  std::vector<SaStage> stages;
  stages.push_back({"g1-coarse", scaled(40, scale), scaled(3, scale),
                    scaled(8, scale), 12, fast, false, 4});
  stages.push_back({"g2-fine", scaled(20, scale), scaled(2, scale),
                    scaled(8, scale), 4, fast, false, 4});
  stages.push_back({"g3-signoff", scaled(3, scale), 1, 2, 2, accurate, false,
                    4});
  return stages;
}

std::string format_stages(const std::vector<SaStage>& stages) {
  TextTable table({"stage", "iterations", "rounds", "neighbors", "step",
                   "model", "cost"});
  for (const SaStage& s : stages) {
    table.add_row(
        {s.name, cell_int(s.iterations), cell_int(s.rounds),
         cell_int(s.neighbors), cell_int(s.step),
         s.sim.model == ThermalModelKind::k4RM
             ? "4RM"
             : strfmt("2RM m=%d", s.sim.thermal_cell),
         s.fixed_pressure_cost
             ? "dT @ fixed P"
             : (s.group_size > 1 ? strfmt("grouped/%d", s.group_size)
                                 : "full eval")});
  }
  return table.str();
}

TreeTopologyOptimizer::TreeTopologyOptimizer(const BenchmarkCase& bench,
                                             DesignObjective objective,
                                             std::uint64_t seed)
    : bench_(bench), objective_(objective), constraints_(bench.constraints),
      seed_(seed) {
  if (objective_ == DesignObjective::kThermalGradient &&
      constraints_.w_pump_max <= 0.0) {
    constraints_.w_pump_max = problem2_pump_budget(bench);
  }
  // 4RM probes are ~40x pricier; keep the search frugal but accurate enough
  // for the metrics reported.
  search_options_.rel_precision = 1e-2;
  search_options_.max_probes = 60;
  problem_fp_ = problem_fingerprint(bench_.problem);
}

void TreeTopologyOptimizer::enable_robust_mode(const RobustOptions& options) {
  robust_ = RobustSample(
      bench_.problem.grid,
      static_cast<int>(bench_.problem.source_power.size()), options);
  // Robust scores live in a different universe than nominal ones; re-key the
  // cache so entries from either mode never alias the other.
  problem_fp_ =
      problem_fingerprint(bench_.problem) ^ robust_.fingerprint();
  cache_.clear();
}

CoolingNetwork TreeTopologyOptimizer::realize(const TreeLayout& layout,
                                              int direction) const {
  CoolingNetwork net = make_tree_network(bench_.problem.grid, layout)
                           .transformed(D4Transform(direction));
  if (!bench_.forbidden.empty()) {
    apply_forbidden_region(net, bench_.forbidden);
  }
  return net;
}

EvalResult TreeTopologyOptimizer::evaluate_network(
    const CoolingNetwork& network, const SimConfig& sim) const {
  DesignRules rules;
  rules.forbidden = bench_.forbidden;
  if (!check_design_rules(network, rules).ok()) {
    return EvalResult::infeasible_result();
  }
  const EvalMode mode = objective_ == DesignObjective::kPumpingPower
                            ? EvalMode::kFullP1
                            : EvalMode::kFullP2;
  const EvalCacheKey key = make_eval_key(problem_fp_, network, sim, mode);
  if (const auto cached = cache_.find(key)) return *cached;
  EvalResult result;
  if (!robust_.empty()) {
    result = robust_evaluate(bench_.problem, network, constraints_, mode,
                             sim, search_options_, robust_);
  } else {
    try {
      SystemEvaluator eval(bench_.problem, network, sim);
      result = objective_ == DesignObjective::kPumpingPower
                   ? evaluate_p1(eval, constraints_, search_options_)
                   : evaluate_p2(eval, constraints_, search_options_);
    } catch (const RuntimeError&) {
      result = EvalResult::infeasible_result();
    }
  }
  cache_.store(key, result);
  return result;
}

TreeLayout TreeTopologyOptimizer::initial_layout() const {
  const Grid2D& grid = bench_.problem.grid;
  int b1 = grid.cols() / 3;
  int b2 = 2 * grid.cols() / 3;
  b1 -= b1 % 2;
  b2 -= b2 % 2;
  return make_uniform_layout(grid, b1, b2);
}

TreeLayout TreeTopologyOptimizer::mutate(const TreeLayout& layout, int step,
                                         Rng& rng) const {
  TreeLayout out = layout;
  for (TreeSpec& spec : out.trees) {
    // Each parameter moves by ±step or stays, with equal probability (§4.4).
    for (int* param : {&spec.b1, &spec.b2}) {
      if (rng.next_bool()) continue;
      *param += rng.next_bool() ? step : -step;
    }
    legalize_tree_spec(bench_.problem.grid, spec);
  }
  return out;
}

int TreeTopologyOptimizer::pick_direction(const TreeLayout& probe_layout,
                                          const SimConfig& sim,
                                          std::size_t* evaluations) const {
  LCN_TRACE_SPAN("sa_direction_sweep");
  double best_score = kInf;
  int best_dir = 0;
  for (int dir = 0; dir < D4Transform::kCount; ++dir) {
    throw_if_cancelled();
    const EvalResult result =
        evaluate_network(realize(probe_layout, dir), sim);
    if (evaluations != nullptr) ++*evaluations;
    LCN_INFO() << bench_.name << ": direction " << dir << " score "
               << result.score;
    if (result.score < best_score) {
      best_score = result.score;
      best_dir = dir;
    }
  }
  return best_dir;
}

DesignOutcome TreeTopologyOptimizer::run(const std::vector<SaStage>& stages) {
  // The annealing loop itself lives in the island engine (opt/islands.cpp):
  // running it with one island and communication off IS the plain
  // single-chain SA, so there is exactly one trajectory implementation and
  // the K=1 equivalence contract of DESIGN.md §S21 holds by construction.
  return detail::run_islands(*this, stages, IslandOptions{}).best;
}

BaselineOutcome best_straight_baseline(const BenchmarkCase& bench,
                                       DesignObjective objective,
                                       const SimConfig& signoff) {
  DesignConstraints limits = bench.constraints;
  if (objective == DesignObjective::kThermalGradient &&
      limits.w_pump_max <= 0.0) {
    limits.w_pump_max = problem2_pump_budget(bench);
  }
  DesignRules rules;
  rules.forbidden = bench.forbidden;

  PressureSearchOptions options;
  options.rel_precision = 1e-2;

  BaselineOutcome best;
  best.eval = EvalResult::infeasible_result();
  const CoolingNetwork canonical = make_straight_channels(bench.problem.grid);
  // Straight channels are invariant under the row mirror, so only the four
  // rotations are distinct directions. Select with the fast model, then sign
  // off the winner with the accurate one.
  const SimConfig fast{ThermalModelKind::k2RM, 4};
  for (int dir = 0; dir < 4; ++dir) {
    CoolingNetwork net = canonical.transformed(D4Transform(dir));
    if (!bench.forbidden.empty()) apply_forbidden_region(net, bench.forbidden);
    if (!check_design_rules(net, rules).ok()) continue;
    try {
      SystemEvaluator eval(bench.problem, net, fast);
      const EvalResult result =
          objective == DesignObjective::kPumpingPower
              ? evaluate_p1(eval, limits, options)
              : evaluate_p2(eval, limits, options);
      if (result.score < best.eval.score) {
        best.eval = result;
        best.network = net;
        best.direction = dir;
        best.feasible = result.feasible;
      }
    } catch (const RuntimeError&) {
      continue;
    }
  }
  if (best.feasible || best.eval.p_sys > 0.0) {
    try {
      SystemEvaluator eval(bench.problem, best.network, signoff);
      best.eval = objective == DesignObjective::kPumpingPower
                      ? evaluate_p1(eval, limits, options)
                      : evaluate_p2(eval, limits, options);
      best.feasible = best.eval.feasible;
    } catch (const RuntimeError&) {
      best.feasible = false;
    }
  }
  return best;
}

}  // namespace lcn
