#include "opt/sa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/env.hpp"
#include "common/instrument.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "network/design_rules.hpp"

namespace lcn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int scaled(int value, double scale) {
  return std::max(1, static_cast<int>(std::lround(value * scale)));
}

}  // namespace

std::vector<SaStage> default_p1_stages(double scale) {
  // Paper §6: stages of 60/40/40/30 iterations and 8/4/2/1 rounds, 64
  // neighbors, 2RM for stages 1-3 and 4RM for stage 4. The default scale
  // shrinks the schedule for a single-core box; LCN_SA_SCALE restores it.
  const SimConfig fast{ThermalModelKind::k2RM, 4};
  const SimConfig accurate{ThermalModelKind::k4RM, 1};
  std::vector<SaStage> stages;
  stages.push_back({"s1-fixedP", scaled(60, scale), scaled(3, scale),
                    scaled(8, scale), 12, fast, true, 1});
  stages.push_back({"s2-coarse", scaled(24, scale), scaled(2, scale),
                    scaled(6, scale), 12, fast, false, 1});
  stages.push_back({"s3-fine", scaled(16, scale), 1, scaled(6, scale), 4,
                    fast, false, 1});
  stages.push_back({"s4-signoff", scaled(2, scale), 1, 2, 2, accurate,
                    false, 1});
  return stages;
}

std::vector<SaStage> default_p2_stages(double scale) {
  // Paper §6: 80/20/20 iterations, 8/2/1 rounds; stage 1 of Problem 1 is
  // dropped and grouped evaluation makes 4RM affordable earlier (§5).
  const SimConfig fast{ThermalModelKind::k2RM, 4};
  const SimConfig accurate{ThermalModelKind::k4RM, 1};
  std::vector<SaStage> stages;
  stages.push_back({"g1-coarse", scaled(40, scale), scaled(3, scale),
                    scaled(8, scale), 12, fast, false, 4});
  stages.push_back({"g2-fine", scaled(20, scale), scaled(2, scale),
                    scaled(8, scale), 4, fast, false, 4});
  stages.push_back({"g3-signoff", scaled(3, scale), 1, 2, 2, accurate, false,
                    4});
  return stages;
}

std::string format_stages(const std::vector<SaStage>& stages) {
  TextTable table({"stage", "iterations", "rounds", "neighbors", "step",
                   "model", "cost"});
  for (const SaStage& s : stages) {
    table.add_row(
        {s.name, cell_int(s.iterations), cell_int(s.rounds),
         cell_int(s.neighbors), cell_int(s.step),
         s.sim.model == ThermalModelKind::k4RM
             ? "4RM"
             : strfmt("2RM m=%d", s.sim.thermal_cell),
         s.fixed_pressure_cost
             ? "dT @ fixed P"
             : (s.group_size > 1 ? strfmt("grouped/%d", s.group_size)
                                 : "full eval")});
  }
  return table.str();
}

TreeTopologyOptimizer::TreeTopologyOptimizer(const BenchmarkCase& bench,
                                             DesignObjective objective,
                                             std::uint64_t seed)
    : bench_(bench), objective_(objective), constraints_(bench.constraints),
      seed_(seed) {
  if (objective_ == DesignObjective::kThermalGradient &&
      constraints_.w_pump_max <= 0.0) {
    constraints_.w_pump_max = problem2_pump_budget(bench);
  }
  // 4RM probes are ~40x pricier; keep the search frugal but accurate enough
  // for the metrics reported.
  search_options_.rel_precision = 1e-2;
  search_options_.max_probes = 60;
  problem_fp_ = problem_fingerprint(bench_.problem);
}

void TreeTopologyOptimizer::enable_robust_mode(const RobustOptions& options) {
  robust_ = RobustSample(
      bench_.problem.grid,
      static_cast<int>(bench_.problem.source_power.size()), options);
  // Robust scores live in a different universe than nominal ones; re-key the
  // cache so entries from either mode never alias the other.
  problem_fp_ =
      problem_fingerprint(bench_.problem) ^ robust_.fingerprint();
  cache_.clear();
}

CoolingNetwork TreeTopologyOptimizer::realize(const TreeLayout& layout,
                                              int direction) const {
  CoolingNetwork net = make_tree_network(bench_.problem.grid, layout)
                           .transformed(D4Transform(direction));
  if (!bench_.forbidden.empty()) {
    apply_forbidden_region(net, bench_.forbidden);
  }
  return net;
}

EvalResult TreeTopologyOptimizer::evaluate_network(
    const CoolingNetwork& network, const SimConfig& sim) const {
  DesignRules rules;
  rules.forbidden = bench_.forbidden;
  if (!check_design_rules(network, rules).ok()) {
    return EvalResult::infeasible_result();
  }
  const EvalMode mode = objective_ == DesignObjective::kPumpingPower
                            ? EvalMode::kFullP1
                            : EvalMode::kFullP2;
  const EvalCacheKey key = make_eval_key(problem_fp_, network, sim, mode);
  if (const auto cached = cache_.find(key)) return *cached;
  EvalResult result;
  if (!robust_.empty()) {
    result = robust_evaluate(bench_.problem, network, constraints_, mode,
                             sim, search_options_, robust_);
  } else {
    try {
      SystemEvaluator eval(bench_.problem, network, sim);
      result = objective_ == DesignObjective::kPumpingPower
                   ? evaluate_p1(eval, constraints_, search_options_)
                   : evaluate_p2(eval, constraints_, search_options_);
    } catch (const RuntimeError&) {
      result = EvalResult::infeasible_result();
    }
  }
  cache_.store(key, result);
  return result;
}

TreeLayout TreeTopologyOptimizer::initial_layout() const {
  const Grid2D& grid = bench_.problem.grid;
  int b1 = grid.cols() / 3;
  int b2 = 2 * grid.cols() / 3;
  b1 -= b1 % 2;
  b2 -= b2 % 2;
  return make_uniform_layout(grid, b1, b2);
}

TreeLayout TreeTopologyOptimizer::mutate(const TreeLayout& layout, int step,
                                         Rng& rng) const {
  TreeLayout out = layout;
  for (TreeSpec& spec : out.trees) {
    // Each parameter moves by ±step or stays, with equal probability (§4.4).
    for (int* param : {&spec.b1, &spec.b2}) {
      if (rng.next_bool()) continue;
      *param += rng.next_bool() ? step : -step;
    }
    legalize_tree_spec(bench_.problem.grid, spec);
  }
  return out;
}

int TreeTopologyOptimizer::pick_direction(const TreeLayout& probe_layout,
                                          const SimConfig& sim,
                                          std::size_t* evaluations) const {
  LCN_TRACE_SPAN("sa_direction_sweep");
  double best_score = kInf;
  int best_dir = 0;
  for (int dir = 0; dir < D4Transform::kCount; ++dir) {
    const EvalResult result =
        evaluate_network(realize(probe_layout, dir), sim);
    if (evaluations != nullptr) ++*evaluations;
    LCN_INFO() << bench_.name << ": direction " << dir << " score "
               << result.score;
    if (result.score < best_score) {
      best_score = result.score;
      best_dir = dir;
    }
  }
  return best_dir;
}

DesignOutcome TreeTopologyOptimizer::run(const std::vector<SaStage>& stages) {
  LCN_REQUIRE(!stages.empty(), "need at least one SA stage");
  trace::Span run_span("sa_run");
  if (run_span.active()) {
    run_span.set_args(strfmt("\"bench\":\"%s\",\"stages\":%zu",
                             bench_.name.c_str(), stages.size()));
  }
  WallTimer timer;
  DesignOutcome outcome;
  Rng rng(seed_);

  TreeLayout incumbent = initial_layout();
  const int direction =
      pick_direction(incumbent, stages.front().sim, &outcome.evaluations);
  outcome.direction = direction;

  // Score of the incumbent under a stage's *full* metric.
  auto full_score = [&](const TreeLayout& layout,
                        const SimConfig& sim) -> EvalResult {
    ++outcome.evaluations;
    return evaluate_network(realize(layout, direction), sim);
  };

  // Seed the incumbent from a handful of uniform layouts spanning the
  // branch-position range: on hard cases (e.g. case 5) most of the space is
  // infeasible (+inf) and SA gets no gradient, so starting near a feasible
  // pocket matters.
  {
    const int cols = bench_.problem.grid.cols();
    double best_score = full_score(incumbent, stages.front().sim).score;
    for (const auto& [f1, f2] :
         {std::pair{0.05, 0.12}, {0.15, 0.30}, {0.25, 0.50}, {0.45, 0.75}}) {
      const TreeLayout seed = make_uniform_layout(
          bench_.problem.grid, static_cast<int>(cols * f1),
          static_cast<int>(cols * f2));
      const double score = full_score(seed, stages.front().sim).score;
      if (score < best_score) {
        best_score = score;
        incumbent = seed;
      }
    }
    // Power-aware seed: per-band branch positions derived from where the
    // heat actually sits (§3 compensation), mapped into the canonical frame
    // of the chosen direction.
    PowerMap combined = bench_.problem.source_power.front();
    for (std::size_t i = 1; i < bench_.problem.source_power.size(); ++i) {
      const PowerMap& map = bench_.problem.source_power[i];
      for (int r = 0; r < combined.grid().rows(); ++r) {
        for (int c = 0; c < combined.grid().cols(); ++c) {
          combined.at(r, c) += map.at(r, c);
        }
      }
    }
    const TreeLayout aware = make_power_aware_layout(
        bench_.problem.grid,
        combined.transformed(D4Transform(direction).inverse()));
    const double aware_score = full_score(aware, stages.front().sim).score;
    if (aware_score < best_score) {
      best_score = aware_score;
      incumbent = aware;
    }
  }

  for (std::size_t stage_idx = 0; stage_idx < stages.size(); ++stage_idx) {
    const SaStage& stage = stages[stage_idx];
    trace::Span stage_span("sa_stage");
    if (stage_span.active()) {
      stage_span.set_args(strfmt(
          "\"stage\":\"%s\",\"rounds\":%d,\"iterations\":%d,\"neighbors\":%d",
          stage.name.c_str(), stage.rounds, stage.iterations,
          stage.neighbors));
    }

    // Stage-1-style cost needs a representative fixed pressure: take the
    // incumbent's optimal operating point (fallback: the search's P_init).
    double fixed_pressure = search_options_.p_init;
    if (stage.fixed_pressure_cost) {
      const EvalResult ref = full_score(incumbent, stage.sim);
      if (ref.feasible) fixed_pressure = ref.p_sys;
    }

    // Group-leader pressure for Problem-2 grouped evaluation.
    double group_pressure = search_options_.p_init;

    auto cost_of = [&](const TreeLayout& layout,
                       bool leader) -> EvalResult {
      const CoolingNetwork net = realize(layout, direction);
      DesignRules rules;
      rules.forbidden = bench_.forbidden;
      if (!check_design_rules(net, rules).ok()) {
        return EvalResult::infeasible_result();
      }
      // SA pools frequently regenerate layouts seen a few iterations ago;
      // identical (network, model, mode, pressure) probes hit the cache.
      EvalMode mode;
      double key_pressure = 0.0;
      if (stage.fixed_pressure_cost) {
        mode = EvalMode::kFixedPressure;
        key_pressure = fixed_pressure;
      } else if (objective_ == DesignObjective::kPumpingPower) {
        mode = EvalMode::kFullP1;
      } else if (stage.group_size > 1 && !leader) {
        mode = EvalMode::kP2Follower;
        key_pressure = group_pressure;
      } else {
        mode = EvalMode::kFullP2;
      }
      const EvalCacheKey key =
          make_eval_key(problem_fp_, net, stage.sim, mode, key_pressure);
      if (const auto cached = cache_.find(key)) return *cached;
      EvalResult result;
      if (!robust_.empty() &&
          (mode == EvalMode::kFullP1 || mode == EvalMode::kFullP2)) {
        // Robust mode: worst case over the fixed fault sample. The cheap
        // fixed-pressure / follower probes keep nominal scoring.
        result = robust_evaluate(bench_.problem, net, constraints_, mode,
                                 stage.sim, search_options_, robust_);
      } else {
        try {
          SystemEvaluator eval(bench_.problem, net, stage.sim);
          if (stage.fixed_pressure_cost) {
            // ΔT at a fixed pressure: one simulation (§4.4 stage 1).
            result.feasible = true;
            result.p_sys = fixed_pressure;
            result.w_pump = eval.pumping_power(fixed_pressure);
            result.at_p = eval.probe(fixed_pressure);
            result.score = result.at_p.delta_t;
          } else if (objective_ == DesignObjective::kPumpingPower) {
            result = evaluate_p1(eval, constraints_, search_options_);
          } else if (stage.group_size > 1 && !leader) {
            result = evaluate_p2_at(eval, constraints_, group_pressure);
          } else {
            result = evaluate_p2(eval, constraints_, search_options_);
          }
        } catch (const RuntimeError&) {
          result = EvalResult::infeasible_result();
        }
      }
      cache_.store(key, result);
      return result;
    };

    // Multi-round SA; rounds differ only in the random seed (§4.4).
    struct RoundBest {
      TreeLayout layout;
      double score = kInf;
    };
    std::vector<RoundBest> round_bests;

    for (int round = 0; round < stage.rounds; ++round) {
      LCN_TRACE_SPAN("sa_round");
      Rng round_rng = rng.fork();
      // Root of the per-neighbor streams: every (round, iteration, neighbor)
      // triple gets an independent rng derived below, so the trajectory is
      // identical no matter how many threads score the pool.
      const std::uint64_t round_key = round_rng.next_u64();
      TreeLayout state = incumbent;
      EvalResult state_eval = cost_of(state, /*leader=*/true);
      ++outcome.evaluations;
      if (state_eval.feasible) group_pressure = state_eval.p_sys;
      double state_score = state_eval.score;

      RoundBest best{state, state_score};

      // Geometric temperature schedule anchored to the initial score.
      const double anchor =
          std::isfinite(state_score) ? std::max(std::abs(state_score), 1e-6)
                                     : 1.0;
      double temperature = 0.3 * anchor;
      const double alpha =
          stage.iterations > 1
              ? std::pow(1e-2, 1.0 / (stage.iterations - 1))
              : 1.0;

      int accepted_count = 0;

      for (int iter = 0; iter < stage.iterations; ++iter) {
        const bool leader =
            stage.group_size <= 1 || iter % stage.group_size == 0;
        // Progress-stream bookkeeping: pressure probes consumed by this
        // iteration alone. Counter reads happen only while tracing.
        const std::uint64_t probes_before =
            trace::enabled() ? instrument::snapshot().pressure_probes : 0;

        // Generate and score the neighbor pool concurrently (the paper
        // scores 64 neighbors at once on an 80-core server). Each neighbor
        // mutates under its own rng stream keyed by (round, iteration,
        // neighbor index), so the pool — and hence the accepted-move
        // sequence — does not depend on evaluation order or thread count.
        std::vector<TreeLayout> pool(static_cast<std::size_t>(stage.neighbors));
        std::vector<EvalResult> scores(pool.size());
        global_pool().parallel_for(pool.size(), [&](std::size_t k) {
          SplitMix64 sm(round_key ^
                        (static_cast<std::uint64_t>(iter) << 20) ^ k);
          Rng neighbor_rng(sm.next());
          pool[k] = mutate(state, stage.step, neighbor_rng);
          scores[k] = cost_of(pool[k], leader);
        });
        outcome.evaluations += pool.size();

        std::size_t best_k = 0;
        for (std::size_t k = 1; k < pool.size(); ++k) {
          if (scores[k].score < scores[best_k].score) best_k = k;
        }
        const double candidate = scores[best_k].score;

        // Metropolis acceptance of the pool's best candidate.
        bool accept = false;
        if (candidate < state_score) {
          accept = true;
        } else if (std::isfinite(candidate) && temperature > 0.0) {
          const double delta = candidate - state_score;
          accept = round_rng.next_double() < std::exp(-delta / temperature);
        }
        if (accept) {
          ++accepted_count;
          state = pool[best_k];
          state_score = candidate;
          if (leader && scores[best_k].feasible) {
            group_pressure = scores[best_k].p_sys;
          }
          if (state_score < best.score) best = {state, state_score};
        }
        if (trace::enabled()) {
          // One record per SA iteration: where the anneal is (temperature,
          // acceptance), what it sees (scores), and what it cost (cache hit
          // rate so far, pressure probes this iteration).
          const std::uint64_t hits = cache_.hits();
          const std::uint64_t misses = cache_.misses();
          const double lookups = static_cast<double>(hits + misses);
          const double hit_rate =
              lookups > 0.0 ? static_cast<double>(hits) / lookups : 0.0;
          const std::uint64_t probes =
              instrument::snapshot().pressure_probes - probes_before;
          trace::emit_instant(
              "sa_iter", trace::kCoarse,
              strfmt("\"stage\":\"%s\",\"round\":%d,\"iter\":%d,"
                     "\"temperature\":%.6g,\"current\":%.9g,"
                     "\"candidate\":%.9g,\"best\":%.9g,\"accepted\":%s,"
                     "\"accept_rate\":%.4f,\"cache_hit_rate\":%.4f,"
                     "\"probes\":%llu",
                     stage.name.c_str(), round, iter, temperature,
                     state_score, candidate, best.score,
                     accept ? "true" : "false",
                     static_cast<double>(accepted_count) / (iter + 1),
                     hit_rate, static_cast<unsigned long long>(probes))
                  .c_str());
        }
        temperature *= alpha;
      }
      round_bests.push_back(best);
    }

    // Select the stage output: re-evaluate round bests with the next stage's
    // (or the sign-off) metric and keep the winner.
    const SimConfig& next_sim = stage_idx + 1 < stages.size()
                                    ? stages[stage_idx + 1].sim
                                    : stage.sim;
    double best_score = kInf;
    TreeLayout best_layout = incumbent;
    for (const RoundBest& rb : round_bests) {
      const EvalResult re = full_score(rb.layout, next_sim);
      if (re.score < best_score) {
        best_score = re.score;
        best_layout = rb.layout;
      }
    }
    // Keep the incumbent when no round improved on it.
    const EvalResult incumbent_eval = full_score(incumbent, next_sim);
    if (incumbent_eval.score <= best_score) {
      best_score = incumbent_eval.score;
    } else {
      incumbent = best_layout;
    }
    LCN_INFO() << bench_.name << ": stage " << stage.name
               << " done, score " << best_score;
  }

  // Final sign-off with the accurate model.
  const SimConfig signoff{ThermalModelKind::k4RM, 1};
  outcome.layout = incumbent;
  outcome.network = realize(incumbent, direction);
  outcome.eval = evaluate_network(outcome.network, signoff);
  ++outcome.evaluations;
  outcome.feasible = outcome.eval.feasible;
  outcome.seconds = timer.seconds();
  outcome.cache_hits = static_cast<std::size_t>(cache_.hits());
  outcome.cache_misses = static_cast<std::size_t>(cache_.misses());
  return outcome;
}

BaselineOutcome best_straight_baseline(const BenchmarkCase& bench,
                                       DesignObjective objective,
                                       const SimConfig& signoff) {
  DesignConstraints limits = bench.constraints;
  if (objective == DesignObjective::kThermalGradient &&
      limits.w_pump_max <= 0.0) {
    limits.w_pump_max = problem2_pump_budget(bench);
  }
  DesignRules rules;
  rules.forbidden = bench.forbidden;

  PressureSearchOptions options;
  options.rel_precision = 1e-2;

  BaselineOutcome best;
  best.eval = EvalResult::infeasible_result();
  const CoolingNetwork canonical = make_straight_channels(bench.problem.grid);
  // Straight channels are invariant under the row mirror, so only the four
  // rotations are distinct directions. Select with the fast model, then sign
  // off the winner with the accurate one.
  const SimConfig fast{ThermalModelKind::k2RM, 4};
  for (int dir = 0; dir < 4; ++dir) {
    CoolingNetwork net = canonical.transformed(D4Transform(dir));
    if (!bench.forbidden.empty()) apply_forbidden_region(net, bench.forbidden);
    if (!check_design_rules(net, rules).ok()) continue;
    try {
      SystemEvaluator eval(bench.problem, net, fast);
      const EvalResult result =
          objective == DesignObjective::kPumpingPower
              ? evaluate_p1(eval, limits, options)
              : evaluate_p2(eval, limits, options);
      if (result.score < best.eval.score) {
        best.eval = result;
        best.network = net;
        best.direction = dir;
        best.feasible = result.feasible;
      }
    } catch (const RuntimeError&) {
      continue;
    }
  }
  if (best.feasible || best.eval.p_sys > 0.0) {
    try {
      SystemEvaluator eval(bench.problem, best.network, signoff);
      best.eval = objective == DesignObjective::kPumpingPower
                      ? evaluate_p1(eval, limits, options)
                      : evaluate_p2(eval, limits, options);
      best.feasible = best.eval.feasible;
    } catch (const RuntimeError&) {
      best.feasible = false;
    }
  }
  return best;
}

}  // namespace lcn
