#include "opt/islands.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/env.hpp"
#include "common/instrument.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "common/task_context.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "network/design_rules.hpp"

namespace lcn {

IslandOptions island_options_from_env() {
  IslandOptions options;
  options.islands =
      static_cast<int>(std::max(1L, env_int("LCN_ISLANDS", 4)));
  options.migration_period =
      static_cast<int>(std::max(0L, env_int("LCN_MIGRATION_PERIOD", 8)));
  options.tempering = env_flag("LCN_PT");
  return options;
}

IslandOptimizer::IslandOptimizer(const BenchmarkCase& bench,
                                 DesignObjective objective,
                                 const IslandOptions& options,
                                 std::uint64_t seed)
    : base_(bench, objective, seed), options_(options) {
  LCN_REQUIRE(options_.islands >= 1, "need at least one island");
  LCN_REQUIRE(options_.tempering_spread > 0.0,
              "tempering spread must be positive");
}

IslandOutcome IslandOptimizer::run(const std::vector<SaStage>& stages) {
  return detail::run_islands(base_, stages, options_);
}

void IslandOptimizer::enable_robust_mode(const RobustOptions& options) {
  base_.enable_robust_mode(options);
}

namespace detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Salt separating the communication stream from every chain stream.
constexpr std::uint64_t kCommSalt = 0x636f6d6d2d726e67ULL;  // "comm-rng"

/// Master seed of chain `island`. Island 0 IS the plain single-chain stream
/// (the K=1 bit-identity contract); higher islands re-mix through SplitMix64
/// rather than offsetting the seed, so no two chains' xoshiro states share
/// seed-expansion words.
std::uint64_t chain_seed(std::uint64_t seed, int island) {
  if (island == 0) return seed;
  return SplitMix64(seed ^ 0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(island))
      .next();
}

}  // namespace

/// The staged-SA loop of TreeTopologyOptimizer::run generalized to K
/// lockstep chains. Every rng draw, evaluation and archive insertion happens
/// either on the coordinating thread in fixed island order or under a
/// per-(island, round, iteration, neighbor) stream, so the whole outcome is
/// bit-identical at any thread count — and collapses to the plain
/// single-chain trajectory when K=1.
class IslandEngine {
 public:
  IslandEngine(TreeTopologyOptimizer& opt, const IslandOptions& options)
      : opt_(opt), options_(options) {}

  IslandOutcome run(const std::vector<SaStage>& stages);

 private:
  TreeTopologyOptimizer& opt_;
  IslandOptions options_;
};

IslandOutcome IslandEngine::run(const std::vector<SaStage>& stages) {
  LCN_REQUIRE(!stages.empty(), "need at least one SA stage");
  LCN_REQUIRE(options_.islands >= 1, "need at least one island");
  const int K = options_.islands;
  const bool migrate = K > 1 && options_.migration_period > 0;
  const bool temper = K > 1 && options_.tempering;

  // Per-session progress stream (§S22): when the job runs under a service
  // session with a sink, every sa_iter record is mirrored there — whether or
  // not process-wide tracing is on — so daemon clients see live convergence.
  ProgressSink* const progress = task_progress_sink();

  trace::Span run_span("sa_run");
  if (run_span.active()) {
    run_span.set_args(
        K > 1 ? strfmt("\"bench\":\"%s\",\"stages\":%zu,\"islands\":%d",
                       opt_.bench_.name.c_str(), stages.size(), K)
              : strfmt("\"bench\":\"%s\",\"stages\":%zu",
                       opt_.bench_.name.c_str(), stages.size()));
  }
  WallTimer timer;
  IslandOutcome out;
  DesignOutcome& outcome = out.best;

  // Migration donors and tempering swaps draw from this stream only, on this
  // thread only; chain streams never see communication draws, so a K=1 run
  // (which never touches it) is the plain single-chain trajectory.
  Rng comm_rng(SplitMix64(opt_.seed_ ^ kCommSalt).next());

  // Every feasible main-thread evaluation feeds the archive; insertion order
  // is fixed (coordinating thread, island-major), so the counters — not just
  // the frontier set — are deterministic.
  auto archive_add = [&](std::uint64_t design, const EvalResult& result,
                         const char* tag) {
    if (design == 0 || !result.feasible) return;
    ParetoPoint point;
    point.design = design;
    point.w_pump = result.w_pump;
    point.delta_t = result.at_p.delta_t;
    point.t_max = result.at_p.t_max;
    point.p_sys = result.p_sys;
    point.tag = tag;
    if (out.archive.insert(point) == ArchiveInsert::kInserted) {
      instrument::add_archive_insert();
    }
  };

  TreeLayout seeded = opt_.initial_layout();
  const int direction =
      opt_.pick_direction(seeded, stages.front().sim, &outcome.evaluations);
  outcome.direction = direction;

  // Score a layout under a stage's *full* metric (and archive the result).
  auto full_score = [&](const TreeLayout& layout, const SimConfig& sim,
                        const char* tag) -> EvalResult {
    ++outcome.evaluations;
    const CoolingNetwork net = opt_.realize(layout, direction);
    const EvalResult result = opt_.evaluate_network(net, sim);
    archive_add(net.content_hash(), result, tag);
    return result;
  };

  // Seed the shared starting incumbent from a handful of uniform layouts
  // spanning the branch-position range: on hard cases (e.g. case 5) most of
  // the space is infeasible (+inf) and SA gets no gradient, so starting near
  // a feasible pocket matters. Every island starts here; their trajectories
  // diverge from the first mutation on.
  {
    const int cols = opt_.bench_.problem.grid.cols();
    double best_score = full_score(seeded, stages.front().sim, "seed").score;
    for (const auto& [f1, f2] :
         {std::pair{0.05, 0.12}, {0.15, 0.30}, {0.25, 0.50}, {0.45, 0.75}}) {
      const TreeLayout seed = make_uniform_layout(
          opt_.bench_.problem.grid, static_cast<int>(cols * f1),
          static_cast<int>(cols * f2));
      const double score = full_score(seed, stages.front().sim, "seed").score;
      if (score < best_score) {
        best_score = score;
        seeded = seed;
      }
    }
    // Power-aware seed: per-band branch positions derived from where the
    // heat actually sits (§3 compensation), mapped into the canonical frame
    // of the chosen direction.
    PowerMap combined = opt_.bench_.problem.source_power.front();
    for (std::size_t i = 1; i < opt_.bench_.problem.source_power.size(); ++i) {
      const PowerMap& map = opt_.bench_.problem.source_power[i];
      for (int r = 0; r < combined.grid().rows(); ++r) {
        for (int c = 0; c < combined.grid().cols(); ++c) {
          combined.at(r, c) += map.at(r, c);
        }
      }
    }
    const TreeLayout aware = make_power_aware_layout(
        opt_.bench_.problem.grid,
        combined.transformed(D4Transform(direction).inverse()));
    const double aware_score =
        full_score(aware, stages.front().sim, "seed").score;
    if (aware_score < best_score) {
      best_score = aware_score;
      seeded = aware;
    }
  }

  struct Island {
    Rng rng;  ///< master chain stream; forked once per round
    TreeLayout incumbent;
  };
  std::vector<Island> isl;
  isl.reserve(static_cast<std::size_t>(K));
  for (int i = 0; i < K; ++i) {
    isl.push_back({Rng(chain_seed(opt_.seed_, i)), seeded});
  }

  for (std::size_t stage_idx = 0; stage_idx < stages.size(); ++stage_idx) {
    const SaStage& stage = stages[stage_idx];
    trace::Span stage_span("sa_stage");
    if (stage_span.active()) {
      stage_span.set_args(strfmt(
          "\"stage\":\"%s\",\"rounds\":%d,\"iterations\":%d,\"neighbors\":%d",
          stage.name.c_str(), stage.rounds, stage.iterations,
          stage.neighbors));
    }

    // Stage-1-style cost needs a representative fixed pressure: take each
    // island's incumbent optimal operating point (fallback: the search's
    // P_init). Per-island because incumbents diverge after stage 1.
    std::vector<double> fixed_pressure(
        static_cast<std::size_t>(K), opt_.search_options_.p_init);
    if (stage.fixed_pressure_cost) {
      for (int i = 0; i < K; ++i) {
        const EvalResult ref =
            full_score(isl[i].incumbent, stage.sim, stage.name.c_str());
        if (ref.feasible) fixed_pressure[i] = ref.p_sys;
      }
    }

    // Group-leader pressure for Problem-2 grouped evaluation, per island.
    // Written on the coordinating thread between pool evaluations only, so
    // pool workers see a stable value for their island.
    std::vector<double> group_pressure(
        static_cast<std::size_t>(K), opt_.search_options_.p_init);

    auto cost_of = [&](const TreeLayout& layout, bool leader, int island,
                       std::uint64_t* design) -> EvalResult {
      const CoolingNetwork net = opt_.realize(layout, direction);
      DesignRules rules;
      rules.forbidden = opt_.bench_.forbidden;
      if (!check_design_rules(net, rules).ok()) {
        if (design != nullptr) *design = 0;
        return EvalResult::infeasible_result();
      }
      // SA pools frequently regenerate layouts seen a few iterations ago —
      // by any island: the cache is shared population-wide, so a design
      // reached by two chains is only evaluated once.
      EvalMode mode;
      double key_pressure = 0.0;
      if (stage.fixed_pressure_cost) {
        mode = EvalMode::kFixedPressure;
        key_pressure = fixed_pressure[static_cast<std::size_t>(island)];
      } else if (opt_.objective_ == DesignObjective::kPumpingPower) {
        mode = EvalMode::kFullP1;
      } else if (stage.group_size > 1 && !leader) {
        mode = EvalMode::kP2Follower;
        key_pressure = group_pressure[static_cast<std::size_t>(island)];
      } else {
        mode = EvalMode::kFullP2;
      }
      const EvalCacheKey key = make_eval_key(opt_.problem_fp_, net, stage.sim,
                                             mode, key_pressure);
      if (design != nullptr) *design = key.network;
      if (const auto cached = opt_.cache_.find(key)) return *cached;
      EvalResult result;
      if (!opt_.robust_.empty() &&
          (mode == EvalMode::kFullP1 || mode == EvalMode::kFullP2)) {
        // Robust mode: worst case over the fixed fault sample. The cheap
        // fixed-pressure / follower probes keep nominal scoring.
        result = robust_evaluate(opt_.bench_.problem, net, opt_.constraints_,
                                 mode, stage.sim, opt_.search_options_,
                                 opt_.robust_);
      } else {
        try {
          SystemEvaluator eval(opt_.bench_.problem, net, stage.sim);
          if (stage.fixed_pressure_cost) {
            // ΔT at a fixed pressure: one simulation (§4.4 stage 1).
            const double p = fixed_pressure[static_cast<std::size_t>(island)];
            result.feasible = true;
            result.p_sys = p;
            result.w_pump = eval.pumping_power(p);
            result.at_p = eval.probe(p);
            result.score = result.at_p.delta_t;
          } else if (opt_.objective_ == DesignObjective::kPumpingPower) {
            result = evaluate_p1(eval, opt_.constraints_,
                                 opt_.search_options_);
          } else if (stage.group_size > 1 && !leader) {
            result = evaluate_p2_at(
                eval, opt_.constraints_,
                group_pressure[static_cast<std::size_t>(island)]);
          } else {
            result = evaluate_p2(eval, opt_.constraints_,
                                 opt_.search_options_);
          }
        } catch (const RuntimeError&) {
          result = EvalResult::infeasible_result();
        }
      }
      opt_.cache_.store(key, result);
      return result;
    };

    // Multi-round SA; rounds differ only in the random seed (§4.4). Rounds
    // run in lockstep across islands so migration/tempering partners are
    // always at the same (round, iteration).
    struct RoundBest {
      TreeLayout layout;
      double score = kInf;
    };
    std::vector<std::vector<RoundBest>> round_bests(
        static_cast<std::size_t>(K));

    for (int round = 0; round < stage.rounds; ++round) {
      LCN_TRACE_SPAN("sa_round");
      struct ChainRound {
        Rng round_rng;
        std::uint64_t round_key = 0;
        TreeLayout state;
        double state_score = kInf;
        RoundBest best;
        double temperature = 0.0;
        int accepted = 0;
      };
      std::vector<ChainRound> chains(static_cast<std::size_t>(K));
      const double alpha =
          stage.iterations > 1 ? std::pow(1e-2, 1.0 / (stage.iterations - 1))
                               : 1.0;
      for (int i = 0; i < K; ++i) {
        ChainRound& cr = chains[static_cast<std::size_t>(i)];
        cr.round_rng = isl[static_cast<std::size_t>(i)].rng.fork();
        // Root of the per-neighbor streams: every (island, round, iteration,
        // neighbor) tuple gets an independent rng derived below, so the
        // trajectory is identical no matter how many threads score the pool.
        cr.round_key = cr.round_rng.next_u64();
        cr.state = isl[static_cast<std::size_t>(i)].incumbent;
        std::uint64_t design = 0;
        const EvalResult state_eval =
            cost_of(cr.state, /*leader=*/true, i, &design);
        ++outcome.evaluations;
        archive_add(design, state_eval, stage.name.c_str());
        if (state_eval.feasible) {
          group_pressure[static_cast<std::size_t>(i)] = state_eval.p_sys;
        }
        cr.state_score = state_eval.score;
        cr.best = {cr.state, cr.state_score};
        // Geometric temperature schedule anchored to the initial score; with
        // tempering on, replica i starts spread^(i/(K-1)) hotter so the
        // ladder spans exploration to refinement.
        const double anchor = std::isfinite(cr.state_score)
                                  ? std::max(std::abs(cr.state_score), 1e-6)
                                  : 1.0;
        cr.temperature = 0.3 * anchor;
        if (temper) {
          cr.temperature *= std::pow(options_.tempering_spread,
                                     static_cast<double>(i) / (K - 1));
        }
      }

      for (int iter = 0; iter < stage.iterations; ++iter) {
        // Cooperative cancellation (§S22): checked once per lockstep
        // iteration on the coordinating thread, between pool passes, so a
        // cancelled job unwinds cleanly without observing partial pools.
        throw_if_cancelled();
        const bool leader =
            stage.group_size <= 1 || iter % stage.group_size == 0;
        const bool want_iter = trace::enabled() || progress != nullptr;
        // Progress-stream bookkeeping: pressure probes consumed by this
        // iteration alone (single-chain records only; with K>1 islands share
        // one pool pass, so per-island attribution would be fiction).
        const std::uint64_t probes_before =
            want_iter && K == 1 ? instrument::snapshot().pressure_probes : 0;

        // Generate and score every island's neighbor pool in one parallel
        // pass (the paper scores 64 neighbors at once on an 80-core server;
        // K islands widen that to K×64). Each neighbor mutates under its own
        // rng stream keyed by (island, round, iteration, neighbor index), so
        // the pool — and hence the accepted-move sequence — does not depend
        // on evaluation order or thread count.
        const std::size_t width = static_cast<std::size_t>(stage.neighbors);
        std::vector<TreeLayout> pool(width * static_cast<std::size_t>(K));
        std::vector<EvalResult> scores(pool.size());
        std::vector<std::uint64_t> designs(pool.size());
        global_pool().parallel_for(pool.size(), [&](std::size_t j) {
          const int i = static_cast<int>(j / width);
          const std::uint64_t k = j % width;
          SplitMix64 sm(chains[static_cast<std::size_t>(i)].round_key ^
                        (static_cast<std::uint64_t>(iter) << 20) ^ k);
          Rng neighbor_rng(sm.next());
          pool[j] = opt_.mutate(chains[static_cast<std::size_t>(i)].state,
                                stage.step, neighbor_rng);
          scores[j] = cost_of(pool[j], leader, i, &designs[j]);
        });
        outcome.evaluations += pool.size();

        for (int i = 0; i < K; ++i) {
          ChainRound& cr = chains[static_cast<std::size_t>(i)];
          const std::size_t base = static_cast<std::size_t>(i) * width;
          std::size_t best_k = base;
          for (std::size_t k = base + 1; k < base + width; ++k) {
            if (scores[k].score < scores[best_k].score) best_k = k;
          }
          const double candidate = scores[best_k].score;

          // Metropolis acceptance of the pool's best candidate.
          bool accept = false;
          if (candidate < cr.state_score) {
            accept = true;
          } else if (std::isfinite(candidate) && cr.temperature > 0.0) {
            const double delta = candidate - cr.state_score;
            accept =
                cr.round_rng.next_double() < std::exp(-delta / cr.temperature);
          }
          if (accept) {
            ++cr.accepted;
            cr.state = pool[best_k];
            cr.state_score = candidate;
            if (leader && scores[best_k].feasible) {
              group_pressure[static_cast<std::size_t>(i)] =
                  scores[best_k].p_sys;
            }
            if (cr.state_score < cr.best.score) {
              cr.best = {cr.state, cr.state_score};
            }
          }
          for (std::size_t k = base; k < base + width; ++k) {
            archive_add(designs[k], scores[k], stage.name.c_str());
          }
          if (want_iter) {
            // One record per (island,) iteration, built once and mirrored to
            // both consumers: the process-wide trace sink (§S19) and the
            // session's progress stream (§S22) when one is installed.
            std::string args;
            if (K == 1) {
              // Where the anneal is (temperature, acceptance), what it sees
              // (scores), and what it cost (cache hit rate so far, pressure
              // probes this iteration).
              const std::uint64_t hits = opt_.cache_.hits();
              const std::uint64_t misses = opt_.cache_.misses();
              const double lookups = static_cast<double>(hits + misses);
              const double hit_rate =
                  lookups > 0.0 ? static_cast<double>(hits) / lookups : 0.0;
              const std::uint64_t probes =
                  instrument::snapshot().pressure_probes - probes_before;
              args = strfmt(
                  "\"stage\":\"%s\",\"round\":%d,\"iter\":%d,"
                  "\"temperature\":%.6g,\"current\":%.9g,"
                  "\"candidate\":%.9g,\"best\":%.9g,\"accepted\":%s,"
                  "\"accept_rate\":%.4f,\"cache_hit_rate\":%.4f,"
                  "\"probes\":%llu",
                  stage.name.c_str(), round, iter, cr.temperature,
                  cr.state_score, candidate, cr.best.score,
                  accept ? "true" : "false",
                  static_cast<double>(cr.accepted) / (iter + 1), hit_rate,
                  static_cast<unsigned long long>(probes));
            } else {
              // Per-island variant. The aggregate cost fields are dropped —
              // they are population-wide and live in the instrument counters.
              args = strfmt(
                  "\"stage\":\"%s\",\"island\":%d,\"round\":%d,"
                  "\"iter\":%d,\"temperature\":%.6g,\"current\":%.9g,"
                  "\"candidate\":%.9g,\"best\":%.9g,\"accepted\":%s",
                  stage.name.c_str(), i, round, iter, cr.temperature,
                  cr.state_score, candidate, cr.best.score,
                  accept ? "true" : "false");
            }
            if (trace::enabled()) {
              trace::emit_instant("sa_iter", trace::kCoarse, args.c_str());
            }
            if (progress != nullptr) progress->emit("sa_iter", args.c_str());
          }
          cr.temperature *= alpha;
        }

        // Parallel tempering: adjacent replicas attempt a Metropolis swap of
        // temperatures, alternating pair parity so every boundary is tried
        // every other iteration. States stay put; only temperatures move.
        if (temper) {
          for (int j = iter % 2; j + 1 < K; j += 2) {
            ChainRound& lo = chains[static_cast<std::size_t>(j)];
            ChainRound& hi = chains[static_cast<std::size_t>(j + 1)];
            ++out.pt_swap_attempts;
            const double u = comm_rng.next_double();
            bool accept = false;
            if (std::isfinite(lo.state_score) &&
                std::isfinite(hi.state_score) && lo.temperature > 0.0 &&
                hi.temperature > 0.0) {
              const double delta =
                  (1.0 / lo.temperature - 1.0 / hi.temperature) *
                  (lo.state_score - hi.state_score);
              accept = delta >= 0.0 || u < std::exp(delta);
            }
            if (accept) {
              std::swap(lo.temperature, hi.temperature);
              ++out.pt_swaps;
              instrument::add_pt_swap();
            }
            out.events.push_back({CommEvent::Kind::kPtSwap,
                                  static_cast<int>(stage_idx), round, iter, j,
                                  j + 1, accept});
          }
        }

        // Migration: each island may adopt the round-best of a donor drawn
        // from the communication stream, accepted only on strict
        // improvement over the receiver's current state.
        if (migrate && (iter + 1) % options_.migration_period == 0) {
          for (int i = 0; i < K; ++i) {
            ChainRound& cr = chains[static_cast<std::size_t>(i)];
            ++out.migration_attempts;
            const std::uint64_t draw =
                comm_rng.next_below(static_cast<std::uint64_t>(K - 1));
            const int donor = static_cast<int>(
                draw >= static_cast<std::uint64_t>(i) ? draw + 1 : draw);
            const RoundBest& gift =
                chains[static_cast<std::size_t>(donor)].best;
            const bool accept = gift.score < cr.state_score;
            if (accept) {
              cr.state = gift.layout;
              cr.state_score = gift.score;
              if (cr.state_score < cr.best.score) {
                cr.best = {cr.state, cr.state_score};
              }
              ++out.migrations;
              instrument::add_island_migration();
            }
            out.events.push_back({CommEvent::Kind::kMigration,
                                  static_cast<int>(stage_idx), round, iter,
                                  donor, i, accept});
          }
        }
      }
      for (int i = 0; i < K; ++i) {
        round_bests[static_cast<std::size_t>(i)].push_back(
            chains[static_cast<std::size_t>(i)].best);
      }
    }

    // Select each island's stage output: re-evaluate its round bests with
    // the next stage's (or the sign-off) metric and keep the winner.
    const SimConfig& next_sim = stage_idx + 1 < stages.size()
                                    ? stages[stage_idx + 1].sim
                                    : stage.sim;
    for (int i = 0; i < K; ++i) {
      throw_if_cancelled();
      TreeLayout& incumbent = isl[static_cast<std::size_t>(i)].incumbent;
      double best_score = kInf;
      TreeLayout best_layout = incumbent;
      for (const RoundBest& rb : round_bests[static_cast<std::size_t>(i)]) {
        const EvalResult re =
            full_score(rb.layout, next_sim, stage.name.c_str());
        if (re.score < best_score) {
          best_score = re.score;
          best_layout = rb.layout;
        }
      }
      // Keep the incumbent when no round improved on it.
      const EvalResult incumbent_eval =
          full_score(incumbent, next_sim, stage.name.c_str());
      if (incumbent_eval.score <= best_score) {
        best_score = incumbent_eval.score;
      } else {
        incumbent = best_layout;
      }
      if (K == 1) {
        LCN_INFO() << opt_.bench_.name << ": stage " << stage.name
                   << " done, score " << best_score;
      } else {
        LCN_INFO() << opt_.bench_.name << ": stage " << stage.name
                   << " island " << i << " done, score " << best_score;
      }
    }
  }

  // Final sign-off of every island with the accurate model; the best island
  // (ties to the lowest index) becomes the run's outcome.
  const SimConfig signoff{ThermalModelKind::k4RM, 1};
  out.island_designs.resize(static_cast<std::size_t>(K));
  out.island_scores.resize(static_cast<std::size_t>(K));
  TreeLayout best_layout;
  CoolingNetwork best_network;
  EvalResult best_eval;
  for (int i = 0; i < K; ++i) {
    throw_if_cancelled();
    std::optional<trace::Span> island_span;
    if (K > 1) island_span.emplace("sa_island");
    const CoolingNetwork net =
        opt_.realize(isl[static_cast<std::size_t>(i)].incumbent, direction);
    const EvalResult eval = opt_.evaluate_network(net, signoff);
    ++outcome.evaluations;
    const std::uint64_t design = net.content_hash();
    archive_add(design, eval, "signoff");
    out.island_designs[static_cast<std::size_t>(i)] = design;
    out.island_scores[static_cast<std::size_t>(i)] = eval.score;
    if (island_span && island_span->active()) {
      island_span->set_args(
          strfmt("\"island\":%d,\"score\":%.9g,\"design\":%llu", i, eval.score,
                 static_cast<unsigned long long>(design)));
    }
    if (i == 0 || eval.score < best_eval.score) {
      out.best_island = i;
      best_layout = isl[static_cast<std::size_t>(i)].incumbent;
      best_network = net;
      best_eval = eval;
    }
  }
  outcome.layout = best_layout;
  outcome.network = best_network;
  outcome.eval = best_eval;
  outcome.feasible = best_eval.feasible;
  outcome.seconds = timer.seconds();
  outcome.cache_hits = static_cast<std::size_t>(opt_.cache_.hits());
  outcome.cache_misses = static_cast<std::size_t>(opt_.cache_.misses());
  return out;
}

IslandOutcome run_islands(TreeTopologyOptimizer& opt,
                          const std::vector<SaStage>& stages,
                          const IslandOptions& options) {
  IslandEngine engine(opt, options);
  return engine.run(stages);
}

}  // namespace detail

}  // namespace lcn
