#include "opt/eval_cache.hpp"

#include "common/bits.hpp"
#include "common/instrument.hpp"
#include "common/metrics.hpp"

namespace lcn {

namespace {

class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h_ ^= (v >> (byte * 8)) & 0xffULL;
      h_ *= 0x100000001b3ULL;
    }
  }
  // Exact-match semantics via the shared bit-pattern key (common/bits.hpp):
  // the fingerprint distinguishes every distinct double, including ±0.0.
  void mix_double(double v) { mix(bits::double_key(v)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace

std::uint64_t problem_fingerprint(const CoolingProblem& problem) {
  Fnv fnv;
  fnv.mix(static_cast<std::uint64_t>(problem.grid.rows()));
  fnv.mix(static_cast<std::uint64_t>(problem.grid.cols()));
  fnv.mix_double(problem.grid.pitch());
  fnv.mix(static_cast<std::uint64_t>(problem.stack.layer_count()));
  for (int l = 0; l < problem.stack.layer_count(); ++l) {
    const Layer& layer = problem.stack.layer(l);
    fnv.mix(static_cast<std::uint64_t>(layer.kind));
    fnv.mix_double(layer.thickness);
    fnv.mix_double(layer.material.conductivity);
    fnv.mix_double(layer.material.volumetric_heat);
  }
  for (const PowerMap& map : problem.source_power) {
    for (const double w : map.cells()) fnv.mix_double(w);
  }
  fnv.mix_double(problem.coolant.dynamic_viscosity);
  fnv.mix_double(problem.coolant.conductivity);
  fnv.mix_double(problem.coolant.volumetric_heat);
  fnv.mix_double(problem.coolant.nusselt);
  fnv.mix_double(problem.inlet_temperature);
  fnv.mix_double(problem.ambient_conductance);
  fnv.mix_double(problem.ambient_temperature);
  // Flow options change the solved field (reliability fault injection scales
  // per-cell conductances through them), so they are part of the identity.
  fnv.mix_double(problem.flow_options.edge_conductance_factor);
  fnv.mix_double(problem.flow_options.rel_tolerance);
  fnv.mix(problem.flow_options.cell_conductance_scale.size());
  for (const double s : problem.flow_options.cell_conductance_scale) {
    fnv.mix_double(s);
  }
  return fnv.value();
}

EvalCacheKey make_eval_key(std::uint64_t problem_fp,
                           const CoolingNetwork& network,
                           const SimConfig& sim, EvalMode mode,
                           double pressure) {
  Fnv fnv;
  fnv.mix(problem_fp);
  fnv.mix(static_cast<std::uint64_t>(sim.model));
  fnv.mix(static_cast<std::uint64_t>(sim.thermal_cell));
  fnv.mix(static_cast<std::uint64_t>(mode));
  // Fixed-pressure modes key on the exact operating point; full searches
  // derive the pressure themselves, so it is zero there.
  fnv.mix_double(mode == EvalMode::kFixedPressure ||
                         mode == EvalMode::kP2Follower
                     ? pressure
                     : 0.0);
  return EvalCacheKey{network.content_hash(), fnv.value()};
}

std::optional<EvalResult> EvaluatorCache::find(const EvalCacheKey& key) const {
  const metrics::ScopedLatency latency(metrics::Hist::cache_lookup_seconds,
                                       metrics::kFine);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      instrument::add_cache_hit();
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  instrument::add_cache_miss();
  return std::nullopt;
}

void EvaluatorCache::store(const EvalCacheKey& key, const EvalResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.emplace(key, result);
}

double EvaluatorCache::hit_rate() const {
  const std::uint64_t total = hits() + misses();
  return total == 0 ? 0.0 : static_cast<double>(hits()) / total;
}

std::size_t EvaluatorCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void EvaluatorCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace lcn
