#include "opt/evaluator.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/trace.hpp"

namespace lcn {

namespace {

std::variant<Thermal2RM, Thermal4RM> make_sim(const CoolingProblem& problem,
                                              const CoolingNetwork& network,
                                              const SimConfig& config) {
  std::vector<CoolingNetwork> nets(
      static_cast<std::size_t>(problem.stack.channel_count()), network);
  if (config.model == ThermalModelKind::k4RM) {
    return std::variant<Thermal2RM, Thermal4RM>(
        std::in_place_type<Thermal4RM>, problem, std::move(nets));
  }
  return std::variant<Thermal2RM, Thermal4RM>(
      std::in_place_type<Thermal2RM>, problem, std::move(nets),
      config.thermal_cell);
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SystemEvaluator::SystemEvaluator(const CoolingProblem& problem,
                                 const CoolingNetwork& network,
                                 const SimConfig& config)
    : sim_(make_sim(problem, network, config)) {}

ThermalProbe SystemEvaluator::probe(double p_sys) {
  const std::uint64_t key = bits::double_key(p_sys);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  LCN_TRACE_SPAN_FINE("thermal_probe");
  // Warm-start from the previous probe's field: successive pressures in the
  // searches are close, so the old temperatures are near the new solution.
  const AssembledThermal system = std::visit(
      [p_sys](const auto& sim) { return sim.assemble(p_sys); }, sim_);
  ThermalField field = solve_steady(system, 1e-9, &last_temps_, &workspace_);
  ++simulations_;
  const ThermalProbe result{field.delta_t, field.t_max};
  last_temps_ = std::move(field.temperatures);
  cache_.emplace(key, result);
  return result;
}

double SystemEvaluator::pumping_power(double p_sys) const {
  return std::visit(
      [p_sys](const auto& sim) { return sim.pumping_power(p_sys); }, sim_);
}

double SystemEvaluator::system_resistance() const {
  const double q = std::visit(
      [](const auto& sim) { return sim.system_flow(1.0); }, sim_);
  LCN_CHECK(q > 0.0, "system flow at unit pressure must be positive");
  return 1.0 / q;
}

ThermalField SystemEvaluator::field(double p_sys) const {
  return std::visit(
      [p_sys](const auto& sim) { return sim.simulate(p_sys); }, sim_);
}

EvalResult EvalResult::infeasible_result() {
  EvalResult out;
  out.score = kInf;
  out.feasible = false;
  return out;
}

EvalResult evaluate_p1(SystemEvaluator& eval, const DesignConstraints& limits,
                       const PressureSearchOptions& options) {
  // Step 1 (Algorithm 2 line 1): minimize P_sys under the ΔT constraint.
  const PressureSearchResult gradient = minimize_pressure_for_target(
      [&eval](double p) { return eval.delta_t(p); }, limits.delta_t_max,
      options);
  if (!gradient.feasible) return EvalResult::infeasible_result();

  double p_sys = gradient.p_sys;

  // Step 2 (lines 3-5): if T*_max is violated, push P_sys up along the
  // monotone h; then re-check both constraints (raising P_sys may have moved
  // ΔT past its minimum back above ΔT*).
  if (eval.t_max(p_sys) > limits.t_max) {
    const PressureSearchResult peak = minimize_pressure_monotone(
        [&eval](double p) { return eval.t_max(p); }, limits.t_max, p_sys,
        options.p_max, options);
    if (!peak.feasible) return EvalResult::infeasible_result();
    p_sys = peak.p_sys;
  }

  const ThermalProbe at_p = eval.probe(p_sys);
  if (at_p.delta_t > limits.delta_t_max * (1.0 + 1e-9) ||
      at_p.t_max > limits.t_max * (1.0 + 1e-9)) {
    return EvalResult::infeasible_result();
  }

  EvalResult out;
  out.feasible = true;
  out.p_sys = p_sys;
  out.w_pump = eval.pumping_power(p_sys);
  out.score = out.w_pump;
  out.at_p = at_p;
  return out;
}

EvalResult evaluate_p2(SystemEvaluator& eval, const DesignConstraints& limits,
                       const PressureSearchOptions& options) {
  LCN_REQUIRE(limits.w_pump_max > 0.0,
              "Problem 2 needs a positive pumping-power budget");
  // W = P²/R  =>  the budget caps the pressure at P* = sqrt(W*·R).
  const double p_star =
      std::sqrt(limits.w_pump_max * eval.system_resistance());
  if (p_star < options.p_min) return EvalResult::infeasible_result();

  // If P* sits on the falling side of f, it is optimal outright (§5);
  // detect it with one backward probe, otherwise golden-section.
  double p_opt;
  const double f_star = eval.delta_t(p_star);
  const double p_back = p_star * 0.95;
  if (p_back >= options.p_min && eval.delta_t(p_back) >= f_star) {
    p_opt = p_star;
  } else {
    const double lo = std::max(options.p_min, p_star * 1e-3);
    p_opt = golden_section_min(
                [&eval](double p) { return eval.delta_t(p); }, lo, p_star,
                options)
                .p_sys;
  }

  // Enforce T*_max: increasing pressure lowers T_max but must stay under P*.
  if (eval.t_max(p_opt) > limits.t_max) {
    const PressureSearchResult peak = minimize_pressure_monotone(
        [&eval](double p) { return eval.t_max(p); }, limits.t_max, p_opt,
        p_star, options);
    if (!peak.feasible) return EvalResult::infeasible_result();
    p_opt = peak.p_sys;
  }

  const ThermalProbe at_p = eval.probe(p_opt);
  if (at_p.t_max > limits.t_max * (1.0 + 1e-9)) {
    return EvalResult::infeasible_result();
  }

  EvalResult out;
  out.feasible = true;
  out.p_sys = p_opt;
  out.w_pump = eval.pumping_power(p_opt);
  out.score = at_p.delta_t;
  out.at_p = at_p;
  return out;
}

EvalResult evaluate_p2_at(SystemEvaluator& eval,
                          const DesignConstraints& limits, double p_sys) {
  LCN_REQUIRE(p_sys > 0.0, "fixed evaluation pressure must be positive");
  const double w = eval.pumping_power(p_sys);
  if (limits.w_pump_max > 0.0 && w > limits.w_pump_max * (1.0 + 1e-9)) {
    return EvalResult::infeasible_result();
  }
  const ThermalProbe at_p = eval.probe(p_sys);
  if (at_p.t_max > limits.t_max * (1.0 + 1e-9)) {
    return EvalResult::infeasible_result();
  }
  EvalResult out;
  out.feasible = true;
  out.p_sys = p_sys;
  out.w_pump = w;
  out.score = at_p.delta_t;
  out.at_p = at_p;
  return out;
}

}  // namespace lcn
