// Exhaustive grid search over *uniform* tree layouts: every legal (b1, b2)
// pair (optionally strided) with the same value for all trees.
//
// The uniform subspace is small (O(cols²/4) points), so it can be swept
// exactly — used to cross-validate the SA optimizer on small cases and as a
// strong deterministic starting point.
#pragma once

#include "geom/benchmarks.hpp"
#include "opt/sa.hpp"

namespace lcn {

struct ExhaustiveResult {
  bool feasible = false;
  int b1 = 0;
  int b2 = 0;
  EvalResult eval;
  std::size_t evaluations = 0;
};

/// Sweep uniform layouts (b1, b2) with the given stride (even, >= 2) for a
/// fixed direction, scoring with the objective's full network evaluation.
ExhaustiveResult exhaustive_uniform_search(const BenchmarkCase& bench,
                                           DesignObjective objective,
                                           const SimConfig& sim,
                                           int stride = 8, int direction = 0);

}  // namespace lcn
