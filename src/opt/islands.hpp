// Population-scale SA: K communicating chains over one evaluator cache
// (DESIGN.md §S21).
//
// The paper's Algorithm 1 anneals a single chain; the island model runs K
// chains in lockstep over the same staged schedule, sharing the
// content-hash evaluator cache (§S10) so any design reached by two chains
// is only ever evaluated once. Chains communicate two ways, both opt-in:
//  - migration: every `migration_period` iterations each island may adopt
//    the round-best design of a donor island drawn from a dedicated
//    communication rng stream (accepted only when strictly better);
//  - parallel tempering: adjacent replicas attempt a Metropolis swap of
//    their current annealing temperatures every iteration (alternating
//    pair parity), so hot replicas explore while cold replicas refine.
//
// Determinism contract (tests/islands_test.cpp): every chain derives its
// rng from (seed, island) — island 0's stream IS the plain single-chain
// stream — per-neighbor mutation streams are keyed (round, iteration,
// neighbor) per chain exactly as in §S10, and all communication draws come
// from one dedicated stream consumed on the coordinating thread only. The
// whole run — best design, per-island outcomes, Pareto archive contents,
// migration/swap logs — is therefore a pure function of the seed,
// bit-identical at any `LCN_THREADS`. With K=1 the engine reproduces
// `TreeTopologyOptimizer::run` exactly; in fact the plain optimizer
// delegates to this engine, so the equivalence is structural.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/pareto.hpp"
#include "opt/sa.hpp"

namespace lcn {

struct IslandOptions {
  /// Number of chains K (>= 1). 1 disables all communication and is the
  /// plain single-chain SA.
  int islands = 1;
  /// Iterations between migration attempts; 0 disables migration.
  int migration_period = 0;
  /// Opt-in parallel tempering: adjacent replicas attempt temperature
  /// swaps every iteration (alternating pair parity).
  bool tempering = false;
  /// Temperature ratio between the hottest and coldest replica when
  /// tempering is on (replica i starts at spread^(i/(K-1)) × base).
  double tempering_spread = 4.0;
};

/// Options from the environment: LCN_ISLANDS (default 4),
/// LCN_MIGRATION_PERIOD (default 8), LCN_PT (default off).
IslandOptions island_options_from_env();

/// One communication attempt, in coordinating-thread order. The log is part
/// of the determinism contract: two runs from the same seed produce equal
/// logs, at any thread count.
struct CommEvent {
  enum class Kind : std::uint8_t { kMigration = 0, kPtSwap = 1 };
  Kind kind = Kind::kMigration;
  int stage = 0;
  int round = 0;
  int iter = 0;
  int from = 0;  ///< donor island (migration) / lower replica (swap)
  int to = 0;    ///< receiving island (migration) / upper replica (swap)
  bool accepted = false;
  friend bool operator==(const CommEvent&, const CommEvent&) = default;
};

struct IslandOutcome {
  /// Best island's sign-off outcome (ties break to the lowest index).
  /// Aggregate fields (evaluations, cache traffic, seconds) cover the
  /// whole population, not just the winning island.
  DesignOutcome best;
  int best_island = 0;
  /// Per-island sign-off results, indexed by island.
  std::vector<std::uint64_t> island_designs;  ///< network content hashes
  std::vector<double> island_scores;
  /// Communication accounting (accepted / attempted).
  std::uint64_t migrations = 0;
  std::uint64_t migration_attempts = 0;
  std::uint64_t pt_swaps = 0;
  std::uint64_t pt_swap_attempts = 0;
  std::vector<CommEvent> events;
  /// Every feasible evaluation of the run, frontier-filtered (§S21).
  ParetoArchive archive;
};

/// K communicating chains around one TreeTopologyOptimizer evaluation
/// context (shared evaluator cache, shared robust sample, one seed).
class IslandOptimizer {
 public:
  IslandOptimizer(const BenchmarkCase& bench, DesignObjective objective,
                  const IslandOptions& options, std::uint64_t seed = 1);

  IslandOutcome run(const std::vector<SaStage>& stages);

  /// Robust mode (§S17) applies to every chain: they share one fault
  /// sample, so scores stay comparable across islands. Call before run().
  void enable_robust_mode(const RobustOptions& options);

  const IslandOptions& options() const { return options_; }
  /// The population-shared evaluator cache.
  const EvaluatorCache& cache() const { return base_.cache(); }
  /// The underlying evaluation context (exposed for tests).
  TreeTopologyOptimizer& base() { return base_; }

 private:
  TreeTopologyOptimizer base_;
  IslandOptions options_;
};

namespace detail {

class IslandEngine;  // befriended by TreeTopologyOptimizer (opt/sa.hpp)

/// The staged-SA engine generalized to K lockstep chains. K=1 with
/// communication off is exactly the plain `TreeTopologyOptimizer::run`
/// (which delegates here).
IslandOutcome run_islands(TreeTopologyOptimizer& opt,
                          const std::vector<SaStage>& stages,
                          const IslandOptions& options);

}  // namespace detail

}  // namespace lcn
