#include "opt/report.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "flow/flow_stats.hpp"
#include "network/design_rules.hpp"
#include "network/network_stats.hpp"
#include "opt/evaluator.hpp"
#include "thermal/temp_map.hpp"

namespace lcn {

std::string design_report(const BenchmarkCase& bench,
                          const CoolingNetwork& network, double p_sys,
                          const ReportOptions& options) {
  LCN_REQUIRE(p_sys > 0.0, "report needs a positive operating pressure");
  std::ostringstream os;
  os << "=== cooling-system design report ===\n";
  os << strfmt("benchmark: %s  (%d dies, %.3f W total)\n",
               bench.name.c_str(), bench.dies(), bench.problem.total_power());
  os << strfmt("constraints: dT* = %.2f K, Tmax* = %.2f K%s\n",
               bench.constraints.delta_t_max, bench.constraints.t_max,
               bench.constraints.w_pump_max > 0.0
                   ? strfmt(", W*_pump = %.3f mW",
                            bench.constraints.w_pump_max * 1e3)
                         .c_str()
                   : "");

  // Design rules.
  DesignRules rules;
  rules.forbidden = bench.forbidden;
  const DrcResult drc = check_design_rules(network, rules);
  os << strfmt("design rules: %s\n",
               drc.ok() ? "clean"
                        : strfmt("%zu violations", drc.violations.size())
                              .c_str());

  // Network geometry.
  const int channel_layer = bench.problem.stack.channel_layers().front();
  const double h_c = bench.problem.stack.layer(channel_layer).thickness;
  const NetworkStats net_stats = compute_network_stats(network, h_c);
  os << strfmt(
      "network: %zu liquid cells (%.1f%% of layer), %zu inlets, %zu "
      "outlets\n",
      net_stats.liquid_cells, 100.0 * net_stats.liquid_fraction,
      net_stats.inlet_count, net_stats.outlet_count);
  os << strfmt(
      "         %zu straight / %zu bend / %zu branch cells, %zu dead ends\n",
      net_stats.straight_cells, net_stats.bend_cells, net_stats.branch_cells,
      net_stats.dead_end_cells);
  os << strfmt("         wall area: top %.2f mm^2, side %.2f mm^2\n",
               net_stats.top_wall_area * 1e6, net_stats.side_wall_area * 1e6);

  // Hydraulics.
  const ChannelGeometry geom = bench.problem.channel_geometry(channel_layer);
  const FlowSolution flow = solve_unit_flow(network, geom,
                                            bench.problem.coolant,
                                            bench.problem.flow_options);
  const FlowStats flow_stats = compute_flow_stats(
      network, flow, geom, bench.problem.coolant, p_sys);
  os << strfmt(
      "hydraulics @ %.2f kPa: Q = %.3g m^3/s, R_sys = %.3g Pa.s/m^3, "
      "W_pump = %.3f mW\n",
      p_sys / 1e3, flow.system_flow * p_sys, flow.system_resistance(),
      flow.pumping_power(p_sys) * 1e3);
  os << strfmt("         v_max = %.3g m/s, Re_max = %.0f (%s), %zu stagnant "
               "cells\n",
               flow_stats.max_velocity, flow_stats.max_reynolds,
               flow_stats.laminar() ? "laminar: model valid"
                                    : "TURBULENT: Eq. 1 invalid",
               flow_stats.stagnant_cells);

  // Thermal sign-off.
  const SimConfig sim = options.use_4rm
                            ? SimConfig{ThermalModelKind::k4RM, 1}
                            : SimConfig{ThermalModelKind::k2RM,
                                        options.thermal_cell};
  SystemEvaluator eval(bench.problem, network, sim);
  const ThermalField field = eval.field(p_sys);
  os << strfmt("thermal (%s): Tmax = %.2f K (%s), dT = %.2f K (%s)\n",
               options.use_4rm ? "4RM" : "2RM", field.t_max,
               field.t_max <= bench.constraints.t_max ? "ok" : "VIOLATED",
               field.delta_t,
               bench.constraints.delta_t_max <= 0.0 ||
                       field.delta_t <= bench.constraints.delta_t_max
                   ? "ok"
                   : "VIOLATED");
  for (std::size_t layer = 0; layer < field.per_layer_delta.size(); ++layer) {
    os << strfmt("         source layer %zu: dT_i = %.2f K\n", layer,
                 field.per_layer_delta[layer]);
  }

  if (options.include_heatmap) {
    os << "bottom source layer:\n";
    os << ascii_heatmap(field, 0, options.heatmap_width);
  }
  return os.str();
}

}  // namespace lcn
