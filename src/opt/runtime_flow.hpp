// Run-time thermal management with adjustable flow rates (the paper's §7
// future work: "combining cooling networks with run-time thermal management
// techniques (e.g., DVFS and adjustable flow rates) to handle dynamic die
// power").
//
// Given a fixed cooling network and a sequence of power phases (workload
// intervals with different power maps), the controller picks the minimum
// pump pressure per phase that keeps T_max and ΔT within limits at steady
// state, and reports the pumping energy saved versus running the worst-case
// pressure continuously.
#pragma once

#include <vector>

#include "network/cooling_network.hpp"
#include "opt/evaluator.hpp"
#include "scenario/scenario.hpp"  // PowerPhase lives with the scenario engine
#include "thermal/problem.hpp"

namespace lcn {

struct PhasePlan {
  double p_sys = 0.0;     ///< chosen pump pressure for the phase
  double w_pump = 0.0;    ///< pumping power at that pressure
  ThermalProbe at_p;      ///< steady-state metrics under the phase's power
  bool feasible = false;
};

struct RuntimePlan {
  std::vector<PhasePlan> phases;
  double adaptive_energy = 0.0;   ///< J over the whole schedule
  double worst_case_energy = 0.0; ///< J running max-phase pressure always
  bool feasible = false;

  double energy_saving() const {
    return worst_case_energy > 0.0
               ? 1.0 - adaptive_energy / worst_case_energy
               : 0.0;
  }
};

struct RuntimeOptions {
  SimConfig sim{ThermalModelKind::k2RM, 4};
  PressureSearchOptions search;
};

/// Plan one pump pressure per phase: the smallest P_sys meeting ΔT* and
/// T*_max for the phase's scaled power (Algorithm-2-style evaluation per
/// phase; the flow field is solved once and shared since it does not depend
/// on power).
RuntimePlan plan_runtime_flow(const CoolingProblem& nominal,
                              const CoolingNetwork& network,
                              const DesignConstraints& limits,
                              const std::vector<PowerPhase>& phases,
                              const RuntimeOptions& options = {});

struct TransientCheck {
  double peak_t_max = 0.0;     ///< max T_max observed over the whole schedule
  double peak_delta_t = 0.0;   ///< max ΔT observed
  bool within_t_max = false;   ///< peak_t_max <= limits.t_max (+ margin)
  std::vector<double> phase_peaks;  ///< per-phase peak T_max
};

/// Verify a plan dynamically: run the scenario engine (§S23) through the
/// phase sequence with the plan's pressures as a per-phase pump schedule
/// (power and pressure switch at phase boundaries, temperature state carries
/// over) and report the transient peaks. Steady-state planning alone can
/// miss overshoot when a hot phase starts from a warm state; backward-Euler
/// stepping with `dt` checks it.
TransientCheck verify_plan_transient(const CoolingProblem& nominal,
                                     const CoolingNetwork& network,
                                     const DesignConstraints& limits,
                                     const std::vector<PowerPhase>& phases,
                                     const RuntimePlan& plan, double dt = 2e-3,
                                     const RuntimeOptions& options = {});

}  // namespace lcn
