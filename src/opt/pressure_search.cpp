#include "opt/pressure_search.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/trace.hpp"

namespace lcn {

namespace {

/// Probe wrapper that counts evaluations and enforces the probe budget.
class CountingProbe {
 public:
  CountingProbe(const PressureProbe& f, int budget) : f_(f), budget_(budget) {}

  double operator()(double p) {
    ++count_;
    instrument::add_pressure_probe();
    // Soft budget: Algorithm 3 terminates by interval width; the budget is a
    // backstop against pathological probes (e.g. noisy f).
    LCN_CHECK(count_ <= 4 * budget_, "pressure search probe budget exhausted");
    return f_(p);
  }

  int count() const { return count_; }

 private:
  const PressureProbe& f_;
  int budget_;
  int count_ = 0;
};

}  // namespace

PressureSearchResult minimize_pressure_for_target(
    const PressureProbe& raw_f, double target,
    const PressureSearchOptions& options) {
  LCN_TRACE_SPAN_FINE("pressure_search");
  LCN_REQUIRE(options.p_min > 0.0 && options.p_min < options.p_max,
              "invalid pressure bounds");
  CountingProbe f(raw_f, options.max_probes);
  PressureSearchResult out;

  // --- Initialization (Algorithm 3 lines 1-4): ensure f(P0) > target and
  // f(P0) >= f(P1), i.e. P0 sits left of both the *left* crossing and the
  // minimum. Landing on the rising (right) side loops back to the halving
  // step ("go to 2"), walking past the feasible valley to its left edge.
  double p0 = options.p_init;
  double f0 = f(p0);
  double step;
  double p1;
  double f1;
  for (;;) {
    bool hit_floor = false;
    while (f0 <= target) {  // line 2
      if (p0 / 2.0 < options.p_min) {
        hit_floor = true;
        break;
      }
      p0 /= 2.0;
      f0 = f(p0);
    }
    if (hit_floor) {
      // Everything down to the numerical floor is feasible.
      out.p_sys = p0;
      out.f_value = f0;
      out.feasible = true;
      out.probes = f.count();
      return out;
    }
    step = p0 * options.r_init;  // line 3
    p1 = p0 + step;
    f1 = f(p1);
    if (f0 >= f1) break;  // left of the minimum: proceed to expansion
    if (p0 / 2.0 < options.p_min) break;  // minimum hugs the floor: accept
    p0 /= 2.0;  // line 4: rising side — move left and go to 2
    f0 = f(p0);
  }

  // --- Expansion / contraction (lines 5-11).
  int flat_streak = 0;
  while (f1 > target) {
    step *= 2.0;
    double p2 = p1 + step;
    if (p2 > options.p_max) p2 = options.p_max;
    double f2 = f(p2);

    while (f1 < f2) {  // passed the minimum without crossing the target
      const bool narrow = std::abs(1.0 - p0 / p1) < options.rel_precision &&
                          std::abs(1.0 - p2 / p1) < options.rel_precision;
      if (narrow) {  // line 8: converged on the minimum — infeasible target
        out.p_sys = p1;
        out.f_value = f1;
        out.feasible = f1 <= target;
        out.probes = f.count();
        return out;
      }
      p2 = p1;
      f2 = f1;
      p1 = (p0 + p2) / 2.0;
      f1 = f(p1);
      step = p2 - p1;
      if (f1 <= target) break;  // contraction found a feasible point
    }
    if (f1 <= target) break;

    // Move right (line 10) and watch for a plateau (line 11).
    const double rel_change = std::abs(1.0 - f0 / f1);
    if (rel_change < options.rel_flat) {
      if (++flat_streak >= options.flat_moves || p2 >= options.p_max) {
        out.p_sys = p1;
        out.f_value = f1;
        out.feasible = false;  // flat above the target: infeasible
        out.probes = f.count();
        return out;
      }
    } else {
      flat_streak = 0;
    }
    p0 = p1;
    f0 = f1;
    p1 = p2;
    f1 = f2;
    if (p1 >= options.p_max && f1 > target) {
      out.p_sys = p1;
      out.f_value = f1;
      out.feasible = false;
      out.probes = f.count();
      return out;
    }
  }

  // --- Bisection for f(P) = target on [p0, p1] (line 12), maintaining
  // f(p0) > target >= f(p1); the returned point is feasible.
  while (std::abs(1.0 - p0 / p1) > options.rel_precision) {
    const double mid = 0.5 * (p0 + p1);
    const double fm = f(mid);
    if (fm <= target) {
      p1 = mid;
      f1 = fm;
    } else {
      p0 = mid;
    }
  }
  out.p_sys = p1;
  out.f_value = f1;
  out.feasible = true;
  out.probes = f.count();
  return out;
}

PressureSearchResult minimize_pressure_monotone(
    const PressureProbe& raw_h, double target, double p_lo, double p_hi,
    const PressureSearchOptions& options) {
  LCN_TRACE_SPAN_FINE("pressure_bisection");
  LCN_REQUIRE(p_lo > 0.0 && p_lo <= p_hi, "invalid bisection interval");
  CountingProbe h(raw_h, options.max_probes);
  PressureSearchResult out;

  double f_hi = h(p_hi);
  if (f_hi > target) {  // even the largest allowed pressure fails
    out.p_sys = p_hi;
    out.f_value = f_hi;
    out.feasible = false;
    out.probes = h.count();
    return out;
  }
  double f_lo = h(p_lo);
  if (f_lo <= target) {  // the smallest pressure already satisfies it
    out.p_sys = p_lo;
    out.f_value = f_lo;
    out.feasible = true;
    out.probes = h.count();
    return out;
  }

  double lo = p_lo;  // h(lo) > target
  double hi = p_hi;  // h(hi) <= target
  while (std::abs(1.0 - lo / hi) > options.rel_precision) {
    const double mid = 0.5 * (lo + hi);
    const double fm = h(mid);
    if (fm <= target) {
      hi = mid;
      f_hi = fm;
    } else {
      lo = mid;
    }
  }
  out.p_sys = hi;
  out.f_value = f_hi;
  out.feasible = true;
  out.probes = h.count();
  return out;
}

PressureSearchResult golden_section_min(const PressureProbe& raw_f,
                                        double p_lo, double p_hi,
                                        const PressureSearchOptions& options) {
  LCN_TRACE_SPAN_FINE("golden_section");
  LCN_REQUIRE(p_lo > 0.0 && p_lo < p_hi, "invalid golden-section interval");
  CountingProbe f(raw_f, options.max_probes);
  constexpr double kInvPhi = 0.6180339887498949;

  double a = p_lo;
  double b = p_hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while ((b - a) > options.rel_precision * b) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    if (f.count() >= options.max_probes) break;
  }
  PressureSearchResult out;
  if (f1 <= f2) {
    out.p_sys = x1;
    out.f_value = f1;
  } else {
    out.p_sys = x2;
    out.f_value = f2;
  }
  out.feasible = true;
  out.probes = f.count();
  return out;
}

}  // namespace lcn
