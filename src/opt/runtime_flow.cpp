#include "opt/runtime_flow.hpp"

#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "thermal/transient.hpp"

namespace lcn {

RuntimePlan plan_runtime_flow(const CoolingProblem& nominal,
                              const CoolingNetwork& network,
                              const DesignConstraints& limits,
                              const std::vector<PowerPhase>& phases,
                              const RuntimeOptions& options) {
  LCN_REQUIRE(!phases.empty(), "need at least one power phase");
  RuntimePlan plan;
  plan.feasible = true;

  for (const PowerPhase& phase : phases) {
    LCN_REQUIRE(phase.layer_scale.size() == nominal.source_power.size(),
                "one scale factor per source layer required");
    LCN_REQUIRE(phase.duration > 0.0, "phase duration must be positive");

    CoolingProblem scaled = nominal;
    for (std::size_t i = 0; i < scaled.source_power.size(); ++i) {
      LCN_REQUIRE(phase.layer_scale[i] >= 0.0,
                  "power scale must be non-negative");
      scaled.source_power[i].scale_to(nominal.source_power[i].total() *
                                      phase.layer_scale[i]);
    }

    PhasePlan pp;
    try {
      SystemEvaluator eval(scaled, network, options.sim);
      const EvalResult result = evaluate_p1(eval, limits, options.search);
      pp.feasible = result.feasible;
      if (result.feasible) {
        pp.p_sys = result.p_sys;
        pp.w_pump = result.w_pump;
        pp.at_p = result.at_p;
      }
    } catch (const RuntimeError&) {
      pp.feasible = false;
    }
    plan.feasible = plan.feasible && pp.feasible;
    plan.phases.push_back(pp);
  }

  if (plan.feasible) {
    double worst_pressure = 0.0;
    for (const PhasePlan& pp : plan.phases) {
      worst_pressure = std::max(worst_pressure, pp.p_sys);
    }
    // Pumping power scales as P²/R with a power-independent R, so the
    // worst-case-pressure energy uses the same resistance.
    double r_sys = 0.0;
    if (!plan.phases.empty() && plan.phases.front().p_sys > 0.0) {
      r_sys = plan.phases.front().p_sys * plan.phases.front().p_sys /
              plan.phases.front().w_pump;
    }
    for (std::size_t i = 0; i < phases.size(); ++i) {
      plan.adaptive_energy += plan.phases[i].w_pump * phases[i].duration;
      plan.worst_case_energy +=
          (worst_pressure * worst_pressure / r_sys) * phases[i].duration;
    }
  }
  return plan;
}

TransientCheck verify_plan_transient(const CoolingProblem& nominal,
                                     const CoolingNetwork& network,
                                     const DesignConstraints& limits,
                                     const std::vector<PowerPhase>& phases,
                                     const RuntimePlan& plan, double dt,
                                     const RuntimeOptions& options) {
  LCN_REQUIRE(plan.feasible, "can only verify a feasible plan");
  LCN_REQUIRE(plan.phases.size() == phases.size(),
              "plan/phase count mismatch");
  LCN_REQUIRE(dt > 0.0, "time step must be positive");

  // Ride the scenario engine: the phases become a kPhases trace and the
  // plan's pressures a per-phase pump schedule. State carries across phase
  // switches inside the engine; power scaling rides the RHS boundary, so
  // only the pressure changes touch the operator.
  ScenarioConfig scenario;
  scenario.sim = options.sim;
  scenario.dt = dt;
  scenario.rel_tolerance = 1e-9;
  scenario.trace.kind = TraceKind::kPhases;
  scenario.trace.phases = phases;
  scenario.pump.kind = PumpPolicyKind::kSchedule;
  for (const PhasePlan& pp : plan.phases) {
    scenario.pump.schedule.push_back(pp.p_sys);
  }

  TransientCheck check;
  check.phase_peaks.assign(phases.size(), 0.0);
  const ScenarioResult result = run_scenario(nominal, network, scenario);
  for (const ScenarioSample& s : result.samples) {
    LCN_CHECK(s.phase >= 0 &&
                  s.phase < static_cast<int>(check.phase_peaks.size()),
              "phase trace must tag every sample");
    double& peak = check.phase_peaks[static_cast<std::size_t>(s.phase)];
    peak = std::max(peak, s.t_max);
  }
  check.peak_t_max = result.peak_t_max;
  check.peak_delta_t = result.peak_delta_t;
  check.within_t_max = check.peak_t_max <= limits.t_max * (1.0 + 1e-6);
  return check;
}

}  // namespace lcn
