// Full design report for a cooling-system design: constraints, operating
// point, hydraulic diagnostics (incl. the laminar-flow validity check),
// network geometry statistics, per-layer thermal metrics and a temperature
// heatmap — everything a sign-off reviewer would want on one page.
#pragma once

#include <string>

#include "geom/benchmarks.hpp"
#include "network/cooling_network.hpp"

namespace lcn {

struct ReportOptions {
  bool include_heatmap = true;
  int heatmap_width = 56;
  /// Model used for the report's simulation (default: accurate 4RM).
  bool use_4rm = true;
  int thermal_cell = 4;  ///< 2RM cell size when use_4rm is false
};

/// Simulate the design at `p_sys` and render the report. Throws
/// lcn::RuntimeError when the design cannot be simulated (broken network).
std::string design_report(const BenchmarkCase& bench,
                          const CoolingNetwork& network, double p_sys,
                          const ReportOptions& options = {});

}  // namespace lcn
