#include "opt/exhaustive.hpp"

#include "common/thread_pool.hpp"

namespace lcn {

ExhaustiveResult exhaustive_uniform_search(const BenchmarkCase& bench,
                                           DesignObjective objective,
                                           const SimConfig& sim, int stride,
                                           int direction) {
  LCN_REQUIRE(stride >= 2 && stride % 2 == 0,
              "stride must be even and >= 2");
  TreeTopologyOptimizer opt(bench, objective, /*seed=*/1);

  const int lo = min_branch_col(bench.problem.grid);
  const int hi = max_branch_col(bench.problem.grid);
  std::vector<std::pair<int, int>> grid_points;
  for (int b1 = lo; b1 + 2 <= hi; b1 += stride) {
    for (int b2 = b1 + 2; b2 <= hi; b2 += stride) {
      grid_points.emplace_back(b1, b2);
    }
  }

  std::vector<EvalResult> scores(grid_points.size());
  global_pool().parallel_for(grid_points.size(), [&](std::size_t i) {
    const TreeLayout layout = make_uniform_layout(
        bench.problem.grid, grid_points[i].first, grid_points[i].second);
    scores[i] = opt.evaluate_network(opt.realize(layout, direction), sim);
  });

  ExhaustiveResult best;
  best.eval = EvalResult::infeasible_result();
  best.evaluations = grid_points.size();
  for (std::size_t i = 0; i < grid_points.size(); ++i) {
    if (scores[i].score < best.eval.score) {
      best.eval = scores[i];
      best.b1 = grid_points[i].first;
      best.b2 = grid_points[i].second;
      best.feasible = scores[i].feasible;
    }
  }
  return best;
}

}  // namespace lcn
