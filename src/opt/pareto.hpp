// Persistent Pareto archive over (W_pump, ΔT, T_max) — optionally extended
// by the transient-aware t_peak objective, §S23 — (DESIGN.md §S21).
//
// The paper's two problems are the two ends of one trade-off: Problem 1
// minimizes pumping power under thermal limits, Problem 2 minimizes the
// thermal gradient under a pumping budget. Every full network evaluation the
// optimizer performs lands somewhere on that trade-off surface, so instead
// of discarding all but the incumbent, the archive keeps every
// non-dominated (W_pump, ΔT, T_max) point seen by a campaign — across SA
// stages, rounds, islands and runs. Points are deduplicated by the design's
// content hash (evaluations are deterministic, so one design maps to one
// point), dominated points are pruned on insertion, and the archive
// serializes to JSON-lines so long campaigns can snapshot and resume it.
//
// The archive is insertion-order independent: the surviving *set* of points
// is a pure function of the inserted multiset, which is what makes it safe
// to fill from differently-ordered replays of the same deterministic search
// (locked down by tests/pareto_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lcn {

/// One design on the trade-off surface. The objectives are all minimized;
/// the rest is provenance for resuming a campaign.
struct ParetoPoint {
  std::uint64_t design = 0;  ///< CoolingNetwork::content_hash()
  double w_pump = 0.0;       ///< pumping power at the operating point (W)
  double delta_t = 0.0;      ///< thermal gradient at the operating point (K)
  double t_max = 0.0;        ///< peak temperature at the operating point (K)
  /// Transient-aware objective (§S23): peak T_max over a reference dynamic
  /// scenario (scenario_peak_t_max). Participates in dominance only when the
  /// archive enables it; 0.0 means "not evaluated".
  double t_peak = 0.0;
  double p_sys = 0.0;        ///< operating pressure realizing the point (Pa)
  std::string tag;           ///< provenance, e.g. "island2/s2-coarse"

  friend bool operator==(const ParetoPoint&, const ParetoPoint&) = default;
};

/// Strict Pareto dominance under minimization of (w_pump, delta_t, t_max):
/// a is no worse in every objective and better in at least one.
bool pareto_dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Dominance with `t_peak` as a fourth minimized objective.
bool pareto_dominates_transient(const ParetoPoint& a, const ParetoPoint& b);

/// Outcome of one insertion attempt.
enum class ArchiveInsert : std::uint8_t {
  kInserted = 0,   ///< entered the frontier (dominated incumbents pruned)
  kDuplicate = 1,  ///< same design content hash already archived
  kDominated = 2,  ///< dominated by (or objective-equal to a point of) the frontier
  kNotFinite = 3,  ///< rejected: a non-finite objective (infeasible design)
};

class ParetoArchive {
 public:
  /// `transient_objective` adds t_peak — the peak T_max over a reference
  /// dynamic scenario — as a fourth minimized objective: dominance, pruning
  /// and the non-finite check then cover it too. Every point inserted into
  /// such an archive must carry an evaluated t_peak.
  ParetoArchive() = default;
  explicit ParetoArchive(bool transient_objective)
      : transient_objective_(transient_objective) {}

  bool transient_objective() const { return transient_objective_; }

  /// Insert one point, pruning any archived point the newcomer dominates.
  /// A point whose objectives exactly equal an archived point's (but with a
  /// different design hash) is kept — distinct designs may tie.
  ArchiveInsert insert(const ParetoPoint& point);

  /// Current frontier, in insertion order of the survivors.
  const std::vector<ParetoPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  void clear();

  /// Frontier in canonical order (ascending w_pump, delta_t, t_max, design):
  /// two archives hold the same frontier iff their sorted() vectors match.
  std::vector<ParetoPoint> sorted() const;

  /// Lifetime accounting (monotonic; clear() resets).
  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t inserted() const { return inserted_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t dominated() const { return dominated_; }
  std::uint64_t pruned() const { return pruned_; }

  /// Hypervolume dominated by the frontier w.r.t. a reference point
  /// (r_w, r_dt, r_tmax), the standard frontier-quality indicator: the
  /// volume of the union of boxes [point, reference]. Points not strictly
  /// better than the reference in every objective contribute nothing.
  /// Exact sweep over t_max slabs; O(n² log n), fine for archive sizes.
  /// Always over the three steady objectives — t_peak is ignored here even
  /// in transient-objective mode.
  double hypervolume(double ref_w_pump, double ref_delta_t,
                     double ref_t_max) const;

  /// One JSON object per point, canonical order — the snapshot format.
  /// Doubles are printed with %.17g so load() round-trips them exactly.
  std::string to_jsonl() const;

  /// Write to_jsonl() to `path` (overwrites). Throws RuntimeError on I/O
  /// failure.
  void save_jsonl(const std::string& path) const;

  /// Load a snapshot and insert every point (so a corrupted-by-hand file
  /// with dominated rows still loads to a valid frontier). Throws
  /// RuntimeError on I/O or parse failure. `transient_objective` selects the
  /// dominance mode of the loaded archive; snapshots written before t_peak
  /// existed load with t_peak = 0.
  static ParetoArchive load_jsonl(const std::string& path,
                                  bool transient_objective = false);

  /// Parse one to_jsonl() line (exposed for the loader and tests).
  static ParetoPoint parse_point(const std::string& line);

 private:
  bool transient_objective_ = false;
  std::vector<ParetoPoint> points_;
  std::uint64_t attempts_ = 0;
  std::uint64_t inserted_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t dominated_ = 0;
  std::uint64_t pruned_ = 0;
};

}  // namespace lcn
