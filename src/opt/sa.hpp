// Multi-stage simulated-annealing topology optimization (paper Algorithm 1,
// §4.4 for pumping power, §5 for thermal gradient).
//
// The outer SA searches the per-tree branch positions (b1, b2) of the
// hierarchical tree-like network. Stages go from rough-and-fast to
// accurate-and-slow: a fixed-pressure ΔT stage (one simulation per
// candidate), full lowest-feasible-pumping-power stages on the 2RM model
// with large then small steps, and a final 4RM stage. Problem 2 replaces the
// cost with ΔT, drops the first stage, and groups consecutive iterations so
// only group leaders run the full pressure search (§5 changes 1-4).
//
// The eight global flow directions (Fig. 8(a)) are the D4 symmetries of the
// square die: candidates are generated in a canonical west-to-east frame and
// mapped through the chosen transform; all eight are scored and the best is
// kept, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/eval_cache.hpp"
#include "opt/evaluator.hpp"
#include "reliability/robust.hpp"

namespace lcn {

namespace detail {
class IslandEngine;  // opt/islands.cpp: the K-chain generalization of run()
}  // namespace detail

enum class DesignObjective {
  kPumpingPower,    ///< Problem 1: min W_pump s.t. ΔT*, T*_max
  kThermalGradient  ///< Problem 2: min ΔT s.t. W*_pump, T*_max
};

struct SaStage {
  std::string name;
  int iterations = 10;
  int rounds = 1;
  int neighbors = 4;  ///< candidates evaluated per iteration (paper: 64)
  int step = 8;       ///< branch-position move size, basic cells (even)
  SimConfig sim;      ///< thermal model used by this stage
  /// Stage-1 style single-simulation cost (ΔT at a fixed pressure) vs the
  /// full network evaluation (Algorithm 2 / §5).
  bool fixed_pressure_cost = false;
  /// Problem-2 grouped iterations: leaders run the full pressure search,
  /// followers reuse the leader's optimal pressure (1 = no grouping).
  int group_size = 1;
};

/// The paper's four-stage Problem-1 schedule (60/40/40/30 iterations at
/// 8/4/2/1 rounds, 64-wide) scaled by `scale`; the default scale targets a
/// single-core machine (see DESIGN.md §4, substitution 3).
std::vector<SaStage> default_p1_stages(double scale = 1.0);

/// The paper's three-stage Problem-2 schedule (80/20/20 iterations at 8/2/1
/// rounds) scaled by `scale`.
std::vector<SaStage> default_p2_stages(double scale = 1.0);

/// Render a stage schedule as an aligned table (the paper's Table 1).
std::string format_stages(const std::vector<SaStage>& stages);

struct DesignOutcome {
  bool feasible = false;
  CoolingNetwork network;  ///< chip frame, restricted region applied
  TreeLayout layout;       ///< canonical frame
  int direction = 0;       ///< D4 code
  EvalResult eval;         ///< final sign-off evaluation
  double seconds = 0.0;
  std::size_t evaluations = 0;   ///< candidate networks scored
  std::size_t cache_hits = 0;    ///< evaluator-cache hits over the run
  std::size_t cache_misses = 0;  ///< evaluator-cache misses over the run
};

class TreeTopologyOptimizer {
 public:
  TreeTopologyOptimizer(const BenchmarkCase& bench, DesignObjective objective,
                        std::uint64_t seed = 1);

  /// Full flow: direction sweep, staged SA, 4RM sign-off.
  DesignOutcome run(const std::vector<SaStage>& stages);

  /// Realize a canonical layout in the chip frame (transform + restricted
  /// region).
  CoolingNetwork realize(const TreeLayout& layout, int direction) const;

  /// Score one network: DRC + flow + thermal evaluation; infeasible designs
  /// (including hydraulically broken ones) score +inf.
  EvalResult evaluate_network(const CoolingNetwork& network,
                              const SimConfig& sim) const;

  const DesignConstraints& constraints() const { return constraints_; }

  /// The run's evaluator cache (DESIGN.md §S10); exposed for tests and
  /// bench instrumentation.
  const EvaluatorCache& cache() const { return cache_; }

  /// Opt-in robust mode (DESIGN.md §S17): every full network evaluation
  /// becomes the worst case over a fixed fault sample drawn here from the
  /// problem grid, so the SA prefers designs that survive degradation.
  /// Fixed-pressure and grouped-follower probes keep nominal scoring (they
  /// exist to be cheap). The sample fingerprint is mixed into the cache
  /// fingerprint, so robust and nominal probes never alias. Call before
  /// run().
  void enable_robust_mode(const RobustOptions& options);
  const RobustSample& robust_sample() const { return robust_; }

 private:
  /// The island engine (opt/islands.cpp) runs K generalized copies of this
  /// optimizer's annealing loop over its private evaluation context; run()
  /// itself delegates there with K=1, so single-chain and island SA share
  /// one trajectory implementation by construction.
  friend class detail::IslandEngine;

  TreeLayout initial_layout() const;
  TreeLayout mutate(const TreeLayout& layout, int step, Rng& rng) const;
  int pick_direction(const TreeLayout& probe_layout, const SimConfig& sim,
                     std::size_t* evaluations) const;

  const BenchmarkCase& bench_;
  DesignObjective objective_;
  DesignConstraints constraints_;
  std::uint64_t seed_;
  PressureSearchOptions search_options_;
  std::uint64_t problem_fp_ = 0;
  mutable EvaluatorCache cache_;
  RobustSample robust_;
};

struct BaselineOutcome {
  bool feasible = false;
  CoolingNetwork network;
  int direction = 0;
  EvalResult eval;
};

/// The paper's baseline: regular straight channels, best global direction
/// (evaluated with the sign-off model).
BaselineOutcome best_straight_baseline(const BenchmarkCase& bench,
                                       DesignObjective objective,
                                       const SimConfig& signoff = {
                                           ThermalModelKind::k4RM, 1});

}  // namespace lcn
