#include "opt/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace lcn {

namespace {

bool finite_objectives(const ParetoPoint& p, bool with_t_peak) {
  return std::isfinite(p.w_pump) && std::isfinite(p.delta_t) &&
         std::isfinite(p.t_max) && (!with_t_peak || std::isfinite(p.t_peak));
}

bool objectives_equal(const ParetoPoint& a, const ParetoPoint& b,
                      bool with_t_peak) {
  return a.w_pump == b.w_pump && a.delta_t == b.delta_t &&
         a.t_max == b.t_max && (!with_t_peak || a.t_peak == b.t_peak);
}

/// Weak dominance: a is no worse than b in every objective.
bool dominates_or_equal(const ParetoPoint& a, const ParetoPoint& b,
                        bool with_t_peak) {
  return a.w_pump <= b.w_pump && a.delta_t <= b.delta_t &&
         a.t_max <= b.t_max && (!with_t_peak || a.t_peak <= b.t_peak);
}

bool strict_dominates(const ParetoPoint& a, const ParetoPoint& b,
                      bool with_t_peak) {
  return dominates_or_equal(a, b, with_t_peak) &&
         !objectives_equal(a, b, with_t_peak);
}

bool canonical_less(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.w_pump != b.w_pump) return a.w_pump < b.w_pump;
  if (a.delta_t != b.delta_t) return a.delta_t < b.delta_t;
  if (a.t_max != b.t_max) return a.t_max < b.t_max;
  if (a.t_peak != b.t_peak) return a.t_peak < b.t_peak;
  return a.design < b.design;
}

std::string escape_tag(const std::string& tag) {
  std::string out;
  out.reserve(tag.size());
  for (char c : tag) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Find `"key":` in a to_jsonl()-formatted line and return the raw value
/// text (number, or quoted string for "tag").
std::string field_text(const std::string& line, const char* key) {
  const std::string needle = strfmt("\"%s\":", key);
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) {
    throw RuntimeError(strfmt("pareto line missing %s", key));
  }
  std::size_t i = at + needle.size();
  while (i < line.size() && line[i] == ' ') ++i;
  if (i < line.size() && line[i] == '"') {
    // Quoted string: scan to the closing unescaped quote.
    std::string out;
    for (++i; i < line.size(); ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        out.push_back(line[i + 1] == 'n' ? '\n' : line[i + 1]);
        ++i;
        continue;
      }
      if (line[i] == '"') return out;
      out.push_back(line[i]);
    }
    throw RuntimeError("pareto line: unterminated string value");
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(i, end - i);
}

double field_double(const std::string& line, const char* key) {
  const std::string text = field_text(line, key);
  char* parse_end = nullptr;
  const double value = std::strtod(text.c_str(), &parse_end);
  if (parse_end == text.c_str()) {
    throw RuntimeError(strfmt("pareto line: bad number for %s", key));
  }
  return value;
}

}  // namespace

bool pareto_dominates(const ParetoPoint& a, const ParetoPoint& b) {
  return strict_dominates(a, b, /*with_t_peak=*/false);
}

bool pareto_dominates_transient(const ParetoPoint& a, const ParetoPoint& b) {
  return strict_dominates(a, b, /*with_t_peak=*/true);
}

ArchiveInsert ParetoArchive::insert(const ParetoPoint& point) {
  const bool with_t_peak = transient_objective_;
  ++attempts_;
  if (!finite_objectives(point, with_t_peak)) {
    return ArchiveInsert::kNotFinite;
  }
  for (const ParetoPoint& existing : points_) {
    if (existing.design == point.design) {
      ++duplicates_;
      return ArchiveInsert::kDuplicate;
    }
  }
  // Reject when any archived point weakly dominates the newcomer — except
  // an exact objective tie from a different design, which coexists (both
  // survive regardless of arrival order, keeping the archive order-free).
  for (const ParetoPoint& existing : points_) {
    if (strict_dominates(existing, point, with_t_peak)) {
      ++dominated_;
      return ArchiveInsert::kDominated;
    }
  }
  // Prune everything the newcomer strictly dominates.
  const std::size_t before = points_.size();
  points_.erase(
      std::remove_if(points_.begin(), points_.end(),
                     [&](const ParetoPoint& existing) {
                       return strict_dominates(point, existing, with_t_peak);
                     }),
      points_.end());
  pruned_ += before - points_.size();
  points_.push_back(point);
  ++inserted_;
  return ArchiveInsert::kInserted;
}

void ParetoArchive::clear() {
  points_.clear();
  attempts_ = inserted_ = duplicates_ = dominated_ = pruned_ = 0;
}

std::vector<ParetoPoint> ParetoArchive::sorted() const {
  std::vector<ParetoPoint> out = points_;
  std::sort(out.begin(), out.end(), canonical_less);
  return out;
}

double ParetoArchive::hypervolume(double ref_w_pump, double ref_delta_t,
                                  double ref_t_max) const {
  // Contributors must beat the reference in every objective; clip is not
  // needed because each box spans [point, reference].
  std::vector<ParetoPoint> pts;
  for (const ParetoPoint& p : points_) {
    if (p.w_pump < ref_w_pump && p.delta_t < ref_delta_t &&
        p.t_max < ref_t_max) {
      pts.push_back(p);
    }
  }
  if (pts.empty()) return 0.0;

  // Sweep t_max slabs: between consecutive t_max levels the dominated
  // cross-section is the 2D staircase of every point at or below the slab.
  std::vector<double> levels;
  levels.reserve(pts.size() + 1);
  for (const ParetoPoint& p : pts) levels.push_back(p.t_max);
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  levels.push_back(ref_t_max);

  double volume = 0.0;
  for (std::size_t s = 0; s + 1 < levels.size(); ++s) {
    const double slab = levels[s + 1] - levels[s];
    if (slab <= 0.0) continue;
    // Active set: points whose t_max is within the slab's floor.
    std::vector<ParetoPoint> active;
    for (const ParetoPoint& p : pts) {
      if (p.t_max <= levels[s]) active.push_back(p);
    }
    if (active.empty()) continue;
    std::sort(active.begin(), active.end(), canonical_less);
    // 2D staircase area w.r.t. (ref_w_pump, ref_delta_t): scanning by
    // ascending w_pump, each point extends the area left of the next kept
    // point by its own delta_t headroom.
    double area = 0.0;
    double best_dt = ref_delta_t;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (active[i].delta_t >= best_dt) continue;  // 2D-dominated in slab
      double next_w = ref_w_pump;
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        if (active[j].delta_t < active[i].delta_t) {
          next_w = active[j].w_pump;
          break;
        }
      }
      area += (next_w - active[i].w_pump) * (ref_delta_t - active[i].delta_t);
      best_dt = active[i].delta_t;
    }
    volume += slab * area;
  }
  return volume;
}

std::string ParetoArchive::to_jsonl() const {
  std::string out;
  for (const ParetoPoint& p : sorted()) {
    out += strfmt(
        "{\"design\":%llu,\"w_pump\":%.17g,\"delta_t\":%.17g,"
        "\"t_max\":%.17g,\"t_peak\":%.17g,\"p_sys\":%.17g,\"tag\":\"%s\"}\n",
        static_cast<unsigned long long>(p.design), p.w_pump, p.delta_t,
        p.t_max, p.t_peak, p.p_sys, escape_tag(p.tag).c_str());
  }
  return out;
}

void ParetoArchive::save_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw RuntimeError("cannot open pareto snapshot: " + path);
  out << to_jsonl();
  out.flush();
  if (!out) throw RuntimeError("failed writing pareto snapshot: " + path);
}

ParetoPoint ParetoArchive::parse_point(const std::string& line) {
  ParetoPoint p;
  p.design = static_cast<std::uint64_t>(
      std::strtoull(field_text(line, "design").c_str(), nullptr, 10));
  p.w_pump = field_double(line, "w_pump");
  p.delta_t = field_double(line, "delta_t");
  p.t_max = field_double(line, "t_max");
  // Snapshots written before the transient objective existed lack t_peak;
  // they load as "not evaluated" (0.0).
  if (line.find("\"t_peak\":") != std::string::npos) {
    p.t_peak = field_double(line, "t_peak");
  }
  p.p_sys = field_double(line, "p_sys");
  p.tag = field_text(line, "tag");
  return p;
}

ParetoArchive ParetoArchive::load_jsonl(const std::string& path,
                                        bool transient_objective) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot read pareto snapshot: " + path);
  ParetoArchive archive(transient_objective);
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    archive.insert(parse_point(line));
  }
  return archive;
}

}  // namespace lcn
