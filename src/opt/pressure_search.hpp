// One-dimensional searches over the system pressure drop (paper §4.1/§4.2,
// Algorithm 3, and the golden-section variant of §5).
//
// For a fixed network N, ΔT = f(P_sys) is either uni-modal (a minimum) or
// monotone decreasing, and T_max = h(P_sys) is monotone decreasing; both
// flatten once the coolant everywhere approaches T_in ("turning points",
// Fig. 5/6). The probes come from numerical simulation, so all searches
// below are derivative-free and frugal with evaluations.
#pragma once

#include <functional>

namespace lcn {

/// A probe of f(P_sys) — normally a (cached) thermal simulation.
using PressureProbe = std::function<double(double)>;

struct PressureSearchOptions {
  double p_init = 2000.0;      ///< P_init, Pa
  double r_init = 0.5;         ///< initial step ratio
  double rel_precision = 5e-3; ///< "small enough" interval width
  double p_min = 1.0;          ///< Pa, numerical floor
  double p_max = 5e7;          ///< Pa, give-up ceiling
  int max_probes = 80;
  /// Plateau detection (Algorithm 3 line 11): this many consecutive
  /// right-moves with |1 - f(P0)/f(P1)| below rel_flat ends the search.
  int flat_moves = 3;
  double rel_flat = 1e-3;
};

struct PressureSearchResult {
  double p_sys = 0.0;
  double f_value = 0.0;   ///< f at p_sys
  bool feasible = false;  ///< f(p_sys) <= target
  int probes = 0;
};

/// Algorithm 3: the smallest P_sys with f(P_sys) <= target when one exists
/// (returns feasible=true), otherwise the P_sys minimizing f
/// (feasible=false — which proves infeasibility for uni-modal f).
PressureSearchResult minimize_pressure_for_target(const PressureProbe& f,
                                                  double target,
                                                  const PressureSearchOptions&
                                                      options = {});

/// Monotone bisection for decreasing h: the smallest P_sys in [p_lo, p_hi]
/// with h(P_sys) <= target. feasible=false when even h(p_hi) > target.
PressureSearchResult minimize_pressure_monotone(const PressureProbe& h,
                                                double target, double p_lo,
                                                double p_hi,
                                                const PressureSearchOptions&
                                                    options = {});

/// Golden-section minimization of a uni-modal (or monotone) f on
/// [p_lo, p_hi]; returns the minimizing pressure (feasible always true).
PressureSearchResult golden_section_min(const PressureProbe& f, double p_lo,
                                        double p_hi,
                                        const PressureSearchOptions& options =
                                            {});

}  // namespace lcn
