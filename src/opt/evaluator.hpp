// Cooling-system evaluation (paper §4.2 Algorithm 2 and §5).
//
// SystemEvaluator binds a cooling problem to one candidate network (shared
// across all channel layers, which also satisfies the case-4 matched
// inlet/outlet rule by construction), builds the flow field once, and serves
// cached ΔT/T_max probes at any P_sys. evaluate_p1/evaluate_p2 implement the
// two-step network evaluations that score a network by its lowest feasible
// pumping power (Problem 1) or its lowest achievable thermal gradient under
// a pumping budget (Problem 2).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <variant>

#include "network/cooling_network.hpp"
#include "opt/pressure_search.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"
#include "thermal/problem.hpp"

namespace lcn {

enum class ThermalModelKind { k2RM, k4RM };

struct SimConfig {
  ThermalModelKind model = ThermalModelKind::k2RM;
  /// Thermal cell size in basic cells (2RM only). 4 => 400 µm cells on the
  /// benchmark grid, the paper's accuracy/runtime sweet spot.
  int thermal_cell = 4;
};

struct ThermalProbe {
  double delta_t = 0.0;
  double t_max = 0.0;
};

class SystemEvaluator {
 public:
  /// Throws (flow solve) when the network is hydraulically singular — the
  /// caller treats construction failure as an infeasible design.
  SystemEvaluator(const CoolingProblem& problem, const CoolingNetwork& network,
                  const SimConfig& config);

  /// ΔT and T_max at a pressure (cached; one linear solve per new P_sys).
  ThermalProbe probe(double p_sys);

  double delta_t(double p_sys) { return probe(p_sys).delta_t; }
  double t_max(double p_sys) { return probe(p_sys).t_max; }

  double pumping_power(double p_sys) const;
  double system_resistance() const;

  /// Full-resolution field (for maps); bypasses the cache.
  ThermalField field(double p_sys) const;

  std::size_t simulations() const { return simulations_; }

 private:
  std::variant<Thermal2RM, Thermal4RM> sim_;
  /// Probe memoization keyed on the bit pattern of P_sys (bits::double_key):
  /// exact-match semantics — two pressures hit the same entry iff they are
  /// the same double (+0.0 and -0.0 differ, NaN never matches itself via
  /// arithmetic but distinct NaN payloads get distinct entries). The searches
  /// re-probe exact values (bracket endpoints, final operating points), which
  /// is precisely what bit-pattern equality captures; near-misses are cheap
  /// again now that they only refill values on the cached assembly plan.
  std::unordered_map<std::uint64_t, ThermalProbe> cache_;
  std::vector<double> last_temps_;  ///< warm start for the next probe
  /// Preconditioner + Krylov scratch carried across probes (all probe
  /// matrices share the assembly plan's sparsity pattern).
  SteadyWorkspace workspace_;
  std::size_t simulations_ = 0;
};

/// Outcome of a network evaluation: the evaluation score (W'_pump in W for
/// Problem 1, ΔT in K for Problem 2; +inf when infeasible) plus the operating
/// point that realizes it.
struct EvalResult {
  double score = 0.0;
  bool feasible = false;
  double p_sys = 0.0;
  double w_pump = 0.0;
  ThermalProbe at_p;  ///< ΔT / T_max at p_sys

  static EvalResult infeasible_result();
};

/// Problem 1 (Algorithm 2): lowest feasible pumping power under ΔT* and
/// T*_max.
EvalResult evaluate_p1(SystemEvaluator& eval, const DesignConstraints& limits,
                       const PressureSearchOptions& options = {});

/// Problem 2 (§5): lowest ΔT under W*_pump and T*_max. The pumping budget
/// bounds the pressure at P* = sqrt(W*·R_sys); golden-section finds min f on
/// (0, P*] unless P* already sits on the falling side.
EvalResult evaluate_p2(SystemEvaluator& eval, const DesignConstraints& limits,
                       const PressureSearchOptions& options = {});

/// Problem-2 follower evaluation (§5 change 2): score ΔT with one simulation
/// at a fixed pressure inherited from the group leader; enforces the same
/// constraints.
EvalResult evaluate_p2_at(SystemEvaluator& eval,
                          const DesignConstraints& limits, double p_sys);

}  // namespace lcn
