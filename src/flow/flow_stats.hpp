// Hydraulic diagnostics for a solved flow field.
//
// The model assumes fully developed laminar flow (paper Eq. 1). These
// statistics let a design flow verify that assumption — Reynolds number
// under ~2300 in every channel segment — and expose velocities and
// per-segment flow extremes for reporting.
#pragma once

#include "flow/flow_solver.hpp"

namespace lcn {

struct FlowStats {
  double max_velocity = 0.0;       ///< m/s over all channel segments
  double mean_velocity = 0.0;      ///< mean |v| over segments carrying flow
  double max_reynolds = 0.0;       ///< peak segment Reynolds number
  double total_flow = 0.0;         ///< Q_sys, m³/s
  std::size_t active_segments = 0; ///< segments with non-negligible flow
  std::size_t stagnant_cells = 0;  ///< liquid cells with ~zero throughflow

  /// Laminar-flow assumption check (transition at Re ≈ 2300).
  bool laminar(double re_limit = 2300.0) const {
    return max_reynolds < re_limit;
  }
};

/// Compute statistics of a flow field at the solution's reference pressure;
/// scale velocities/Re linearly for other pressures via `pressure_scale`.
FlowStats compute_flow_stats(const CoolingNetwork& net,
                             const FlowSolution& solution,
                             const ChannelGeometry& channel,
                             const CoolantProperties& coolant,
                             double pressure_scale = 1.0);

/// Reynolds number of one segment: Re = ρ·v·D_h/µ = v·D_h/ν. Water density
/// is taken as 997 kg/m³ (the model itself only needs µ and C_v; density
/// enters only this diagnostic).
double segment_reynolds(double velocity, const ChannelGeometry& channel,
                        const CoolantProperties& coolant,
                        double density = 997.0);

}  // namespace lcn
