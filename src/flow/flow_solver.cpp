#include "flow/flow_solver.hpp"

#include "common/assert.hpp"
#include "common/trace.hpp"
#include "flow/flow_plan.hpp"
#include "sparse/solvers.hpp"

namespace lcn {

double FlowSolution::system_resistance() const {
  LCN_REQUIRE(system_flow > 0.0, "system flow must be positive");
  return p_ref / system_flow;
}

double FlowSolution::pumping_power(double p_sys) const {
  LCN_REQUIRE(p_sys >= 0.0, "pressure drop must be non-negative");
  return p_sys * p_sys / system_resistance();
}

double FlowSolution::flow_toward(const Grid2D& grid, int row, int col,
                                 Side side) const {
  const std::int32_t idx = liquid_index[grid.index(row, col)];
  LCN_REQUIRE(idx >= 0, "flow_toward: cell is not liquid");
  const auto i = static_cast<std::size_t>(idx);
  switch (side) {
    case Side::kEast:
      return q_east[i];
    case Side::kSouth:
      return q_south[i];
    case Side::kWest: {
      if (col == 0) return 0.0;
      const std::int32_t w = liquid_index[grid.index(row, col - 1)];
      return w >= 0 ? -q_east[static_cast<std::size_t>(w)] : 0.0;
    }
    case Side::kNorth: {
      if (row == 0) return 0.0;
      const std::int32_t n = liquid_index[grid.index(row - 1, col)];
      return n >= 0 ? -q_south[static_cast<std::size_t>(n)] : 0.0;
    }
  }
  return 0.0;
}

FlowSolver::FlowSolver(const CoolingNetwork& net,
                       const ChannelGeometry& channel,
                       const CoolantProperties& coolant,
                       const FlowOptions& options)
    : net_(net), channel_(channel), coolant_(coolant), options_(options) {
  LCN_REQUIRE(options.edge_conductance_factor > 0.0,
              "edge conductance factor must be positive");
  if (!options.cell_conductance_scale.empty()) {
    LCN_REQUIRE(options.cell_conductance_scale.size() ==
                    net.grid().cell_count(),
                "cell conductance scale must cover every grid cell");
    for (const double s : options.cell_conductance_scale) {
      LCN_REQUIRE(s > 0.0, "cell conductance scale factors must be positive");
    }
  }
}

FlowSolution FlowSolver::solve(double p_sys) const {
  LCN_TRACE_SPAN_FINE("flow_solve");
  LCN_REQUIRE(p_sys > 0.0, "system pressure drop must be positive");
  const Grid2D& grid = net_.grid();

  // Symbolic work (liquid indexing, port-reachability check, COO→CSR
  // analysis) comes from the process-wide plan cache; degenerate networks
  // throw from analyze() with the historical messages.
  const std::shared_ptr<const FlowPlan> plan = flow_plan_for(net_);
  const std::size_t n = plan->n;

  FlowSolution sol;
  sol.p_ref = p_sys;
  sol.liquid_cells = plan->liquid_cells;
  sol.liquid_index = plan->liquid_index;

  const double g_bulk = fluid_conductance(channel_, coolant_, grid.pitch());
  const double g_edge = g_bulk * options_.edge_conductance_factor;

  // Per-cell clogging factors (reliability fault injection): the conductance
  // of a cell pair is the harmonic mean of the two cell factors — two
  // constricted half-segments in series — and a port scales by its cell's
  // factor. An empty vector keeps the nominal arithmetic bit-identical.
  const std::vector<double>& scale = options_.cell_conductance_scale;
  auto cell_scale = [&scale](std::size_t cell) {
    return scale.empty() ? 1.0 : scale[cell];
  };
  auto pair_conductance = [&](std::size_t cell_i, std::size_t cell_j) {
    if (scale.empty()) return g_bulk;
    const double si = scale[cell_i];
    const double sj = scale[cell_j];
    return g_bulk * (2.0 * si * sj / (si + sj));
  };

  // Numeric refill on the cached pattern. Conductance arithmetic matches the
  // fresh traversal exactly: one pair_conductance() per slot with a sign flip
  // for off-diagonals (exact), so the compressed values are bit-identical. A
  // slot refilled to exactly 0.0 (conductance underflow) would have been
  // dropped by the fresh path's TripletList::add — that corner invalidates
  // the cached pattern, so assemble from scratch instead.
  std::vector<double> slot_value(plan->slots.size());
  bool pattern_exact = true;
  for (std::size_t s = 0; s < plan->slots.size() && pattern_exact; ++s) {
    const FlowPlan::Slot& slot = plan->slots[s];
    double v = 0.0;
    switch (slot.kind) {
      case FlowPlan::SlotKind::kPair:
        v = pair_conductance(slot.cell_a, slot.cell_b);
        break;
      case FlowPlan::SlotKind::kPairNeg:
        v = -pair_conductance(slot.cell_a, slot.cell_b);
        break;
      case FlowPlan::SlotKind::kPort:
        v = g_edge * cell_scale(slot.cell_a);
        break;
    }
    if (v == 0.0) pattern_exact = false;
    slot_value[s] = v;
  }

  sparse::CsrMatrix matrix;
  sparse::Vector rhs(n, 0.0);
  if (pattern_exact) {
    matrix = plan->pattern.refill_matrix(
        [&](std::size_t s) { return slot_value[s]; });
    for (const FlowPlan::InletOp& op : plan->inlet_ops) {
      const double g = g_edge * cell_scale(op.cell);
      rhs[op.node] += g * p_sys;
    }
  } else {
    // Fresh traversal fallback — same emission order as the plan, with
    // TripletList::add dropping the underflowed entries.
    sparse::TripletList triplets(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const CellCoord cc = grid.coord(sol.liquid_cells[i]);
      const int neighbors[2][2] = {{cc.row, cc.col + 1}, {cc.row + 1, cc.col}};
      for (const auto& nb : neighbors) {
        if (!grid.in_bounds(nb[0], nb[1])) continue;
        const std::int32_t jdx = sol.liquid_index[grid.index(nb[0], nb[1])];
        if (jdx < 0) continue;
        const auto j = static_cast<std::size_t>(jdx);
        const double g =
            pair_conductance(sol.liquid_cells[i], sol.liquid_cells[j]);
        triplets.add(i, i, g);
        triplets.add(j, j, g);
        triplets.add(i, j, -g);
        triplets.add(j, i, -g);
      }
    }
    for (const Port& port : net_.ports()) {
      const std::int32_t idx = sol.liquid_index[grid.index(port.row, port.col)];
      const auto i = static_cast<std::size_t>(idx);
      const double g = g_edge * cell_scale(grid.index(port.row, port.col));
      triplets.add(i, i, g);
      if (port.kind == PortKind::kInlet) rhs[i] += g * p_sys;
    }
    matrix = triplets.to_csr();
  }
  sol.pressure.assign(n, 0.0);
  sparse::SolveOptions opts;
  opts.rel_tolerance = options_.rel_tolerance;
  sparse::solve_spd_or_throw(matrix, rhs, sol.pressure, "flow pressure solve",
                             opts);

  // Local flow rates (Eq. 1), with the same per-edge conductances as the
  // pressure system so conservation holds under clogging faults.
  sol.q_east.assign(n, 0.0);
  sol.q_south.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const CellCoord cc = grid.coord(sol.liquid_cells[i]);
    if (grid.in_bounds(cc.row, cc.col + 1)) {
      const std::int32_t j = sol.liquid_index[grid.index(cc.row, cc.col + 1)];
      if (j >= 0) {
        const auto sj = static_cast<std::size_t>(j);
        sol.q_east[i] =
            pair_conductance(sol.liquid_cells[i], sol.liquid_cells[sj]) *
            (sol.pressure[i] - sol.pressure[sj]);
      }
    }
    if (grid.in_bounds(cc.row + 1, cc.col)) {
      const std::int32_t j = sol.liquid_index[grid.index(cc.row + 1, cc.col)];
      if (j >= 0) {
        const auto sj = static_cast<std::size_t>(j);
        sol.q_south[i] =
            pair_conductance(sol.liquid_cells[i], sol.liquid_cells[sj]) *
            (sol.pressure[i] - sol.pressure[sj]);
      }
    }
  }

  sol.port_flow.resize(net_.ports().size());
  double inflow = 0.0;
  double outflow = 0.0;
  for (std::size_t p = 0; p < net_.ports().size(); ++p) {
    const Port& port = net_.ports()[p];
    const std::int32_t idx = sol.liquid_index[grid.index(port.row, port.col)];
    const double cell_pressure = sol.pressure[static_cast<std::size_t>(idx)];
    const double g = g_edge * cell_scale(grid.index(port.row, port.col));
    if (port.kind == PortKind::kInlet) {
      sol.port_flow[p] = g * (p_sys - cell_pressure);
      inflow += sol.port_flow[p];
    } else {
      sol.port_flow[p] = g * cell_pressure;
      outflow += sol.port_flow[p];
    }
  }
  // A network whose inlets were all lost (e.g. blocked by an injected fault)
  // solves to a zero field; that is a degenerate input, not a library bug.
  if (!(inflow > 0.0)) {
    throw RuntimeError("flow solve: no inflow at any inlet (pump decoupled)");
  }
  sol.system_flow = 0.5 * (inflow + outflow);  // equal up to solver residual
  return sol;
}

FlowSolution solve_unit_flow(const CoolingNetwork& net,
                             const ChannelGeometry& channel,
                             const CoolantProperties& coolant,
                             const FlowOptions& options) {
  return FlowSolver(net, channel, coolant, options).solve(1.0);
}

}  // namespace lcn
