// Symbolic half of the flow-matrix assembly (DESIGN.md §S18).
//
// The sparsity pattern of the pressure system G·P = Q_in depends only on the
// network geometry: which cells are liquid, which pairs neighbor each other,
// and where the ports sit. Reliability sweeps solve the same network dozens
// of times with different per-cell conductance scales; optimization probes
// re-solve identical networks after cache misses. FlowPlan captures the
// symbolic work (liquid indexing, port-reachability check, COO→CSR analysis)
// once per distinct network, so each subsequent solve is a numeric refill.
//
// Plans are held in FlowPlanCache instances keyed by
// CoolingNetwork::content_hash() and verified against a stored copy of the
// network with operator== — a hash collision degrades to a rebuild, never to
// a wrong plan. One process-wide cache serves single-job binaries; service
// sessions (DESIGN.md §S22) may own a private shard instead, routed through
// the calling thread's TaskContext, so one tenant's cache churn (or clear)
// never touches another's.
//
// Bit-identity contract: a solve through the plan produces the same CSR
// matrix, right-hand side, and therefore the same solution as the historical
// fresh TripletList traversal (see SparsityPlan's contract). The one corner
// where the pattern could differ — a conductance underflowing to exactly 0.0,
// which the fresh path's TripletList::add would have dropped — is detected at
// refill time and routed back to the fresh assembly path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "network/cooling_network.hpp"
#include "sparse/sparsity_plan.hpp"

namespace lcn {

struct FlowPlan {
  /// One matrix-entry emission of the fresh traversal, in emission order.
  /// Pair slots carry the two grid cell ids whose harmonic-mean conductance
  /// feeds the entry; port slots carry the port's cell id twice.
  enum class SlotKind : std::uint8_t {
    kPair,     ///< +g(cell_a, cell_b)
    kPairNeg,  ///< -g(cell_a, cell_b)
    kPort,     ///< +g_edge · scale(cell_a)
  };
  struct Slot {
    std::size_t cell_a = 0;
    std::size_t cell_b = 0;
    SlotKind kind = SlotKind::kPair;
  };
  /// One inlet right-hand-side contribution, in port order.
  struct InletOp {
    std::size_t node = 0;  ///< dense liquid index
    std::size_t cell = 0;  ///< grid linear id of the port's cell
  };

  std::size_t n = 0;  ///< liquid cell count
  std::vector<std::size_t> liquid_cells;
  std::vector<std::int32_t> liquid_index;
  std::vector<Slot> slots;
  std::vector<InletOp> inlet_ops;
  sparse::SparsityPlan pattern;

  /// Symbolic analysis of one network. Throws lcn::RuntimeError exactly where
  /// a fresh solve would: no liquid cells, or a liquid component with no port
  /// (singular pressure system).
  static std::shared_ptr<const FlowPlan> analyze(const CoolingNetwork& net);
};

/// One flow-plan cache shard. Thread-safe: lookups and inserts serialize on
/// an internal mutex; plans are immutable and handed out as shared_ptr, so
/// clear() under concurrent readers is safe — a reader either resolved its
/// plan before the clear (and keeps it alive through its shared_ptr) or
/// rebuilds after it; it never observes a half-cleared entry.
class FlowPlanCache {
 public:
  /// Look up (or build and cache) the plan for `net`. Bumps the
  /// flow_plan_hits / flow_plan_misses instrument counters. Failed analyses
  /// (degenerate networks) are not cached and rethrow on every call,
  /// matching the fresh path's behavior.
  std::shared_ptr<const FlowPlan> plan_for(const CoolingNetwork& net);

  /// Drop every cached plan. In-flight solves holding a plan shared_ptr are
  /// unaffected; subsequent lookups rebuild.
  void clear();

  /// Distinct cached plans (collision-bucket entries counted individually).
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  /// Hash bucket -> (network copy, plan). The copy disambiguates collisions.
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<CoolingNetwork,
                                           std::shared_ptr<const FlowPlan>>>>
      entries_;
};

/// The process-wide cache (single-job binaries, sessions without a private
/// shard).
FlowPlanCache& global_flow_plan_cache();

/// Look up (or build and cache) the plan for `net` in the calling thread's
/// session shard when its TaskContext carries one (§S22), in the
/// process-wide cache otherwise.
std::shared_ptr<const FlowPlan> flow_plan_for(const CoolingNetwork& net);

/// Drop every plan in the *process-wide* cache (test hook; also useful to
/// bound memory in long-running processes that churn through many distinct
/// networks). Safe under concurrent readers — see FlowPlanCache::clear().
/// Session shards are owned and cleared by their SessionContext instead.
void flow_plan_cache_clear();

}  // namespace lcn
