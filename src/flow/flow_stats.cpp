#include "flow/flow_stats.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace lcn {

double segment_reynolds(double velocity, const ChannelGeometry& channel,
                        const CoolantProperties& coolant, double density) {
  return density * std::abs(velocity) * channel.hydraulic_diameter() /
         coolant.dynamic_viscosity;
}

FlowStats compute_flow_stats(const CoolingNetwork& net,
                             const FlowSolution& solution,
                             const ChannelGeometry& channel,
                             const CoolantProperties& coolant,
                             double pressure_scale) {
  LCN_REQUIRE(pressure_scale > 0.0, "pressure scale must be positive");
  FlowStats stats;
  const double area = channel.cross_section();
  const Grid2D& grid = net.grid();

  double velocity_sum = 0.0;
  // Negligible-flow threshold: 10^-6 of the mean per-segment magnitude.
  double q_scale = 0.0;
  std::size_t q_count = 0;
  for (std::size_t i = 0; i < solution.liquid_cells.size(); ++i) {
    for (double q : {solution.q_east[i], solution.q_south[i]}) {
      if (q != 0.0) {
        q_scale += std::abs(q);
        ++q_count;
      }
    }
  }
  const double threshold =
      q_count > 0 ? 1e-6 * q_scale / static_cast<double>(q_count) : 0.0;

  for (std::size_t i = 0; i < solution.liquid_cells.size(); ++i) {
    double through = 0.0;
    for (double q : {solution.q_east[i], solution.q_south[i]}) {
      if (q == 0.0) continue;
      const double velocity = std::abs(q) * pressure_scale / area;
      if (std::abs(q) > threshold) {
        ++stats.active_segments;
        velocity_sum += velocity;
        stats.max_velocity = std::max(stats.max_velocity, velocity);
        stats.max_reynolds = std::max(
            stats.max_reynolds, segment_reynolds(velocity, channel, coolant));
      }
      through += std::abs(q);
    }
    // Include inflow from west/north so pass-through cells are not counted
    // as stagnant.
    const CellCoord cc = grid.coord(solution.liquid_cells[i]);
    if (cc.col > 0) {
      const std::int32_t w = solution.liquid_index[grid.index(cc.row, cc.col - 1)];
      if (w >= 0) through += std::abs(solution.q_east[static_cast<std::size_t>(w)]);
    }
    if (cc.row > 0) {
      const std::int32_t n = solution.liquid_index[grid.index(cc.row - 1, cc.col)];
      if (n >= 0) through += std::abs(solution.q_south[static_cast<std::size_t>(n)]);
    }
    if (through <= 2.0 * threshold) ++stats.stagnant_cells;
  }

  stats.mean_velocity = stats.active_segments > 0
                            ? velocity_sum / stats.active_segments
                            : 0.0;
  stats.total_flow = solution.system_flow * pressure_scale;
  return stats;
}

}  // namespace lcn
