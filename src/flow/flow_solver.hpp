// Flow-rate computation inside a cooling network (paper §2.1).
//
// For fully developed laminar flow, the volumetric flow between neighboring
// liquid cells is Q_ij = g_fluid (P_i - P_j) (Eq. 1) with
// g_fluid = D_h² A_c / (32 l µ); volume conservation at every cell (Eq. 2)
// yields the SPD linear system G·P = Q_in (Eq. 3) with the outlet pressure
// pinned at 0 and the inlet pressure at P_sys.
//
// The system is linear in P_sys, so we solve once at unit pressure and scale:
// pressures, flow rates and the system flow rate all scale by P_sys, which
// lets the optimizer probe many pressures per network with a single solve.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/materials.hpp"
#include "network/cooling_network.hpp"

namespace lcn {

struct FlowOptions {
  /// Ratio of an inlet/outlet surface conductance to the cell-to-cell bulk
  /// conductance. The paper uses "a smaller fluid conductance" at ports to
  /// capture entrance/exit losses; 0.5 halves the bulk value.
  double edge_conductance_factor = 0.5;
  double rel_tolerance = 1e-11;
  /// Per-cell hydraulic conductance scale factors indexed by grid linear id
  /// (empty = nominal everywhere). A cell-to-cell conductance uses the
  /// harmonic mean of the two cell factors (two constricted half-segments in
  /// series); a port conductance scales by its cell's factor. Factors must
  /// be positive — fully blocked cells are removed from the network instead
  /// (see src/reliability). All-ones reproduces the nominal field exactly.
  std::vector<double> cell_conductance_scale;
};

/// Flow field at a reference system pressure drop `p_ref` (normally 1 Pa).
/// Multiply by any P_sys/p_ref to get the field at that pressure.
struct FlowSolution {
  double p_ref = 1.0;

  /// Row-major linear ids of liquid cells, ascending; positions index the
  /// per-liquid-cell arrays below.
  std::vector<std::size_t> liquid_cells;
  /// cell linear id -> dense liquid index, or -1 for non-liquid cells.
  std::vector<std::int32_t> liquid_index;

  std::vector<double> pressure;  ///< Pa at each liquid cell (outlet = 0)

  /// Signed flow (m³/s) from each liquid cell to its east / south liquid
  /// neighbor; 0 when that neighbor is not liquid.
  std::vector<double> q_east;
  std::vector<double> q_south;

  /// Flow through each port of the network (aligned with net.ports()):
  /// positive = into the network at inlets, out of it at outlets.
  std::vector<double> port_flow;

  double system_flow = 0.0;  ///< Q_sys (m³/s) at p_ref

  /// System fluid resistance R_sys = p_ref / Q_sys (Pa·s/m³).
  double system_resistance() const;

  /// Pumping power at a given system pressure drop: W = P²/R_sys (Eq. 10).
  double pumping_power(double p_sys) const;

  /// Signed flow from the liquid cell at (row,col) toward `side`'s neighbor.
  double flow_toward(const Grid2D& grid, int row, int col, Side side) const;
};

class FlowSolver {
 public:
  /// Keeps a reference to `net`; the network must outlive the solver.
  FlowSolver(const CoolingNetwork& net, const ChannelGeometry& channel,
             const CoolantProperties& coolant, const FlowOptions& options = {});

  /// Solve the pressure system at the given system pressure drop.
  /// Throws lcn::RuntimeError when a liquid component carries no port
  /// (singular system) or the linear solve fails.
  FlowSolution solve(double p_sys = 1.0) const;

 private:
  const CoolingNetwork& net_;
  ChannelGeometry channel_;
  CoolantProperties coolant_;
  FlowOptions options_;
};

/// Convenience wrapper: solve at unit pressure.
FlowSolution solve_unit_flow(const CoolingNetwork& net,
                             const ChannelGeometry& channel,
                             const CoolantProperties& coolant,
                             const FlowOptions& options = {});

}  // namespace lcn
