#include "flow/flow_plan.hpp"

#include <queue>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/task_context.hpp"

namespace lcn {

std::shared_ptr<const FlowPlan> FlowPlan::analyze(const CoolingNetwork& net) {
  const Grid2D& grid = net.grid();
  auto plan = std::make_shared<FlowPlan>();

  plan->liquid_cells = net.liquid_cells();
  const std::size_t n = plan->liquid_cells.size();
  if (n == 0) throw RuntimeError("flow solve: network has no liquid cells");
  plan->n = n;
  plan->liquid_index.assign(grid.cell_count(), -1);
  for (std::size_t i = 0; i < n; ++i) {
    plan->liquid_index[plan->liquid_cells[i]] = static_cast<std::int32_t>(i);
  }

  // Every liquid component must carry at least one port, or pressures on it
  // are undefined and G is singular.
  {
    std::vector<char> reached(n, 0);
    std::queue<std::size_t> frontier;
    for (const Port& port : net.ports()) {
      const std::int32_t idx =
          plan->liquid_index[grid.index(port.row, port.col)];
      LCN_CHECK(idx >= 0, "port must open into a liquid cell");
      if (!reached[static_cast<std::size_t>(idx)]) {
        reached[static_cast<std::size_t>(idx)] = 1;
        frontier.push(static_cast<std::size_t>(idx));
      }
    }
    std::size_t count = frontier.size();
    while (!frontier.empty()) {
      const std::size_t i = frontier.front();
      frontier.pop();
      const CellCoord cc = grid.coord(plan->liquid_cells[i]);
      const int dr[] = {1, -1, 0, 0};
      const int dc[] = {0, 0, 1, -1};
      for (int k = 0; k < 4; ++k) {
        const int nr = cc.row + dr[k];
        const int nc = cc.col + dc[k];
        if (!grid.in_bounds(nr, nc)) continue;
        const std::int32_t jdx = plan->liquid_index[grid.index(nr, nc)];
        if (jdx < 0 || reached[static_cast<std::size_t>(jdx)]) continue;
        reached[static_cast<std::size_t>(jdx)] = 1;
        frontier.push(static_cast<std::size_t>(jdx));
        ++count;
      }
    }
    if (count != n) {
      throw RuntimeError(
          "flow solve: a liquid component has no inlet/outlet (singular "
          "pressure system)");
    }
  }

  // Capture the emission pattern in the exact order of the fresh traversal:
  // cell-to-cell conductances (east and south neighbors cover each pair
  // once), then ports.
  std::vector<sparse::Triplet> emissions;
  for (std::size_t i = 0; i < n; ++i) {
    const CellCoord cc = grid.coord(plan->liquid_cells[i]);
    const int neighbors[2][2] = {{cc.row, cc.col + 1}, {cc.row + 1, cc.col}};
    for (const auto& nb : neighbors) {
      if (!grid.in_bounds(nb[0], nb[1])) continue;
      const std::int32_t jdx = plan->liquid_index[grid.index(nb[0], nb[1])];
      if (jdx < 0) continue;
      const auto j = static_cast<std::size_t>(jdx);
      const std::size_t cell_i = plan->liquid_cells[i];
      const std::size_t cell_j = plan->liquid_cells[j];
      plan->slots.push_back({cell_i, cell_j, FlowPlan::SlotKind::kPair});
      emissions.push_back({i, i, 0.0});
      plan->slots.push_back({cell_i, cell_j, FlowPlan::SlotKind::kPair});
      emissions.push_back({j, j, 0.0});
      plan->slots.push_back({cell_i, cell_j, FlowPlan::SlotKind::kPairNeg});
      emissions.push_back({i, j, 0.0});
      plan->slots.push_back({cell_i, cell_j, FlowPlan::SlotKind::kPairNeg});
      emissions.push_back({j, i, 0.0});
    }
  }
  for (const Port& port : net.ports()) {
    const std::size_t cell = grid.index(port.row, port.col);
    const std::int32_t idx = plan->liquid_index[cell];
    const auto i = static_cast<std::size_t>(idx);
    plan->slots.push_back({cell, cell, FlowPlan::SlotKind::kPort});
    emissions.push_back({i, i, 0.0});
    if (port.kind == PortKind::kInlet) plan->inlet_ops.push_back({i, cell});
  }

  plan->pattern = sparse::SparsityPlan::analyze(n, n, emissions);
  return plan;
}

std::shared_ptr<const FlowPlan> FlowPlanCache::plan_for(
    const CoolingNetwork& net) {
  const std::uint64_t key = net.content_hash();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      for (const auto& [stored, plan] : it->second) {
        if (stored == net) {
          instrument::add_flow_plan_hit();
          return plan;
        }
      }
    }
  }
  instrument::add_flow_plan_miss();
  // Analyze outside the lock: plans for distinct networks build in parallel,
  // and a throwing analysis leaves the cache untouched.
  std::shared_ptr<const FlowPlan> plan = FlowPlan::analyze(net);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& bucket = entries_[key];
    for (const auto& [stored, existing] : bucket) {
      if (stored == net) return existing;  // lost a benign race; reuse theirs
    }
    bucket.emplace_back(net, plan);
  }
  return plan;
}

void FlowPlanCache::clear() {
  // Move the map out under the lock and destroy it after releasing: entry
  // destruction (network copies, plan refcounts) happens off the hot path,
  // and a concurrent plan_for() blocks only for the swap. Readers that
  // already resolved a plan keep it alive through their shared_ptr.
  decltype(entries_) doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    doomed.swap(entries_);
  }
}

std::size_t FlowPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, bucket] : entries_) n += bucket.size();
  return n;
}

FlowPlanCache& global_flow_plan_cache() {
  static FlowPlanCache cache;
  return cache;
}

std::shared_ptr<const FlowPlan> flow_plan_for(const CoolingNetwork& net) {
  const TaskContext* ctx = current_task_context();
  FlowPlanCache& cache = ctx != nullptr && ctx->flow_plans != nullptr
                             ? *ctx->flow_plans
                             : global_flow_plan_cache();
  return cache.plan_for(net);
}

void flow_plan_cache_clear() { global_flow_plan_cache().clear(); }

}  // namespace lcn
