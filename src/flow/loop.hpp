// Rack-level coolant loop (CDU) model for chip-to-rack co-simulation
// (DESIGN.md §S23; in the spirit of the direct-to-chip cooling literature in
// PAPERS.md).
//
// The chip's microchannel network is one branch of a closed secondary loop:
// a centrifugal pump drives coolant through supply/return headers into the
// chip cold plate, a counterflow liquid-to-liquid heat exchanger rejects the
// picked-up heat to the facility (primary) side, and the loop's coolant mass
// integrates the supply temperature. The loop feeds back into the chip
// simulation through BoundaryState::inlet_temperature each scenario step.
//
// Hydraulics. The pump follows a quadratic head curve with affinity-law
// speed scaling, P(Q, s) = s²·p_max − (p_max/q_max²)·Q² (the quadratic droop
// coefficient is speed-invariant under the affinity laws). The chip branch
// is linear laminar, ΔP_chip = R_chip·Q; headers and fittings add a
// turbulent K·Q² loss. Balancing pump head against losses gives a
// closed-form operating point — no iteration, so the co-simulation stays
// deterministic.
//
// Heat. Counterflow effectiveness–NTU: ε = (1 − e^{−NTU(1−Cr)}) /
// (1 − Cr·e^{−NTU(1−Cr)}), with the Cr → 1 limit NTU/(1+NTU). The loop
// coolant volume V relaxes the supply temperature toward the HX outlet with
// the transport time constant τ = V/Q via one backward-Euler update per
// step (unconditionally stable, matching the chip integrator).
#pragma once

namespace lcn {

/// Quadratic pump curve: shutoff head `p_max` (Pa) at zero flow, free
/// delivery `q_max` (m³/s) at zero head, both at rated speed (s = 1).
struct PumpCurve {
  double p_max = 2.0e4;
  double q_max = 2.0e-4;
};

struct CduConfig {
  PumpCurve pump;
  /// Quadratic supply/return header loss coefficient, Pa/(m³/s)².
  double header_loss = 0.0;
  /// Heat-exchanger conductance UA, W/K.
  double hx_ua = 5.0;
  /// Facility (primary) side volumetric flow, m³/s.
  double facility_flow = 1.0e-4;
  /// Facility supply temperature, K.
  double facility_temperature = 293.15;
  /// Facility coolant volumetric heat capacity, J/(m³·K) (water).
  double facility_volumetric_heat = 4.18e6;
  /// Secondary-loop coolant volume (thermal mass), m³.
  double loop_volume = 2.0e-5;
};

/// Closed secondary coolant loop. All state updates are serial scalar
/// arithmetic: trajectories are bit-identical for any thread count.
class CduLoop {
 public:
  /// `chip_unit_flow` is the chip branch's flow at 1 Pa (FlowSolution
  /// system_flow — the branch is linear, R_chip = 1/chip_unit_flow);
  /// `coolant_volumetric_heat` is the secondary coolant's C_v, J/(m³·K).
  /// The loop starts thermally relaxed at `initial_supply` K.
  CduLoop(const CduConfig& config, double chip_unit_flow,
          double coolant_volumetric_heat, double initial_supply);

  struct Operating {
    double flow = 0.0;           ///< loop flow Q, m³/s
    double chip_pressure = 0.0;  ///< ΔP across the chip branch, Pa
  };

  /// Hydraulic operating point at pump speed `s` ∈ [0, 1]: pump head
  /// s²·p_max − (p_max/q_max²)Q² balances R_chip·Q + K·Q².
  Operating operating_point(double speed) const;

  /// Largest chip pressure the loop can deliver (operating point at s = 1).
  double max_chip_pressure() const { return operating_point(1.0).chip_pressure; }

  /// Update the chip branch's hydraulic resistance (a blockage mid-scenario
  /// changes the branch, not the rest of the loop).
  void set_chip_unit_flow(double chip_unit_flow);

  /// Advance the loop one step: the chip heats the branch flow by
  /// `chip_heat` W at loop flow `flow`, the HX rejects to the facility side,
  /// and the loop volume integrates the supply temperature (backward Euler).
  void advance(double dt, double flow, double chip_heat);

  double supply_temperature() const { return supply_temperature_; }
  double return_temperature() const { return return_temperature_; }
  /// Heat rejected to the facility side in the last advance(), W.
  double rejected_heat() const { return rejected_heat_; }

 private:
  CduConfig config_;
  double chip_resistance_ = 0.0;  ///< Pa·s/m³
  double coolant_cv_ = 0.0;       ///< J/(m³·K)
  double supply_temperature_ = 0.0;
  double return_temperature_ = 0.0;
  double rejected_heat_ = 0.0;
};

}  // namespace lcn
