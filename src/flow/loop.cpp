#include "flow/loop.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace lcn {

CduLoop::CduLoop(const CduConfig& config, double chip_unit_flow,
                 double coolant_volumetric_heat, double initial_supply)
    : config_(config),
      coolant_cv_(coolant_volumetric_heat),
      supply_temperature_(initial_supply),
      return_temperature_(initial_supply) {
  LCN_REQUIRE(config.pump.p_max > 0.0 && config.pump.q_max > 0.0,
              "pump curve must have positive shutoff head and free delivery");
  LCN_REQUIRE(config.header_loss >= 0.0, "header loss must be non-negative");
  LCN_REQUIRE(config.hx_ua > 0.0, "heat-exchanger UA must be positive");
  LCN_REQUIRE(config.facility_flow > 0.0 &&
                  config.facility_volumetric_heat > 0.0,
              "facility side must have positive flow and heat capacity");
  LCN_REQUIRE(config.loop_volume > 0.0, "loop volume must be positive");
  LCN_REQUIRE(chip_unit_flow > 0.0, "chip branch must carry flow at 1 Pa");
  LCN_REQUIRE(coolant_volumetric_heat > 0.0,
              "coolant heat capacity must be positive");
  chip_resistance_ = 1.0 / chip_unit_flow;
}

void CduLoop::set_chip_unit_flow(double chip_unit_flow) {
  LCN_REQUIRE(chip_unit_flow > 0.0, "chip branch must carry flow at 1 Pa");
  chip_resistance_ = 1.0 / chip_unit_flow;
}

CduLoop::Operating CduLoop::operating_point(double speed) const {
  LCN_REQUIRE(speed >= 0.0 && speed <= 1.0, "pump speed must be in [0, 1]");
  if (speed == 0.0) return {};
  // (K + p_max/q_max²)·Q² + R·Q − s²·p_max = 0, positive root.
  const double a =
      config_.header_loss + config_.pump.p_max /
                                (config_.pump.q_max * config_.pump.q_max);
  const double r = chip_resistance_;
  const double head = speed * speed * config_.pump.p_max;
  const double q = (-r + std::sqrt(r * r + 4.0 * a * head)) / (2.0 * a);
  return {q, r * q};
}

void CduLoop::advance(double dt, double flow, double chip_heat) {
  LCN_REQUIRE(dt > 0.0, "time step must be positive");
  LCN_REQUIRE(flow > 0.0, "loop flow must be positive");
  // Chip branch outlet temperature from the heat pickup.
  const double c_hot = coolant_cv_ * flow;
  return_temperature_ = supply_temperature_ + chip_heat / c_hot;

  // Counterflow HX effectiveness (ε-NTU).
  const double c_cold =
      config_.facility_volumetric_heat * config_.facility_flow;
  const double c_min = c_hot < c_cold ? c_hot : c_cold;
  const double c_max = c_hot < c_cold ? c_cold : c_hot;
  const double ntu = config_.hx_ua / c_min;
  const double cr = c_min / c_max;
  double eff;
  if (cr > 1.0 - 1e-12) {
    eff = ntu / (1.0 + ntu);
  } else {
    const double e = std::exp(-ntu * (1.0 - cr));
    eff = (1.0 - e) / (1.0 - cr * e);
  }
  rejected_heat_ =
      eff * c_min * (return_temperature_ - config_.facility_temperature);
  const double hx_out = return_temperature_ - rejected_heat_ / c_hot;

  // Loop volume integrates the supply temperature toward the HX outlet with
  // τ = V/Q, backward Euler: T' = (T + (dt/τ)·T_hx) / (1 + dt/τ).
  const double k = dt * flow / config_.loop_volume;
  supply_temperature_ = (supply_temperature_ + k * hx_out) / (1.0 + k);
}

}  // namespace lcn
