#include "reliability/robust.hpp"

#include "common/instrument.hpp"

namespace lcn {

RobustSample::RobustSample(const Grid2D& grid, int source_layers,
                           const RobustOptions& options) {
  LCN_REQUIRE(options.scenarios >= 0,
              "robust scenario count must be non-negative");
  scenarios_.reserve(static_cast<std::size_t>(options.scenarios));
  std::uint64_t fp = 0x9e3779b97f4a7c15ULL ^
                     static_cast<std::uint64_t>(options.scenarios);
  for (int k = 0; k < options.scenarios; ++k) {
    Rng rng = scenario_rng(options.seed, static_cast<std::size_t>(k));
    FaultScenario scenario =
        sample_scenario(options.distribution, grid, source_layers, rng);
    fp ^= scenario_fingerprint(scenario) + 0x9e3779b97f4a7c15ULL +
          (fp << 6) + (fp >> 2);
    scenarios_.push_back(std::move(scenario));
  }
  fingerprint_ = fp;
}

EvalResult robust_evaluate(const CoolingProblem& nominal,
                           const CoolingNetwork& network,
                           const DesignConstraints& limits, EvalMode mode,
                           const SimConfig& sim,
                           const PressureSearchOptions& search,
                           const RobustSample& sample) {
  LCN_REQUIRE(mode == EvalMode::kFullP1 || mode == EvalMode::kFullP2,
              "robust evaluation supports the full P1/P2 modes only");
  auto evaluate_one = [&](const CoolingProblem& problem,
                          const CoolingNetwork& net) -> EvalResult {
    try {
      SystemEvaluator eval(problem, net, sim);
      return mode == EvalMode::kFullP1 ? evaluate_p1(eval, limits, search)
                                       : evaluate_p2(eval, limits, search);
    } catch (const RuntimeError&) {
      return EvalResult::infeasible_result();
    }
  };

  EvalResult worst = evaluate_one(nominal, network);
  if (!worst.feasible) return worst;

  for (const FaultScenario& scenario : sample.scenarios()) {
    const DegradedSystem degraded =
        apply_scenario(nominal, network, scenario);
    instrument::add_scenario_evaluated();
    EvalResult result = evaluate_one(degraded.problem, degraded.network);
    // A droop caps the pressure the search may assume: scale the found
    // operating point back to the commanded frame so scores stay in
    // commanded-pressure units across scenarios.
    if (!result.feasible) {
      instrument::add_scenario_infeasible();
      return EvalResult::infeasible_result();
    }
    if (degraded.pressure_derate != 1.0) {
      result.p_sys /= degraded.pressure_derate;
    }
    if (result.score > worst.score) worst = result;
  }
  return worst;
}

}  // namespace lcn
