// Fault models for cooling-network reliability analysis (DESIGN.md §S17).
//
// Every evaluation elsewhere in the library assumes a pristine system: exact
// channel geometry, nominal pump pressure, nominal inlet temperature. Real
// interlayer liquid cooling degrades — channels clog with particulates, pumps
// droop, inlet coolant warms, workloads overshoot their power budgets. A
// `FaultScenario` is a list of such perturbations; applying it to a
// (problem, network) pair yields a *degraded copy* of both without mutating
// the originals, so the nominal design stays available for comparison.
//
// Fault semantics:
//   kChannelBlockage  a square patch of radius `radius` around (row, col),
//                     mapped to the nearest liquid cells of the network at
//                     apply time (fault locations are defined on the grid so
//                     one scenario is applicable to any candidate network).
//                     severity < 1 scales the hydraulic conductance of the
//                     affected cells by (1 - severity) via
//                     FlowOptions::cell_conductance_scale; severity >= 1
//                     removes the cells (and their ports) outright.
//   kPumpDroop        the pump delivers only (1 - severity) of the commanded
//                     pressure; recorded as DegradedSystem::pressure_derate.
//   kInletDrift       inlet coolant enters `magnitude` K warmer.
//   kPowerExcursion   one source layer (or all, layer = -1) dissipates
//                     (1 + magnitude) times its nominal power.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "network/cooling_network.hpp"
#include "thermal/problem.hpp"

namespace lcn {

enum class FaultKind : std::uint8_t {
  kChannelBlockage = 0,
  kPumpDroop = 1,
  kInletDrift = 2,
  kPowerExcursion = 3,
};

const char* fault_kind_name(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kPumpDroop;
  /// Blockage patch center (grid frame) and Chebyshev radius.
  int row = 0;
  int col = 0;
  int radius = 0;
  /// Blockage / pump-droop severity in [0, 1]; 1 = full loss.
  double severity = 0.0;
  /// Inlet drift in K, or fractional power excursion (0.2 = +20 %).
  double magnitude = 0.0;
  /// Source layer hit by a power excursion; -1 = all layers.
  int layer = -1;

  friend bool operator==(const Fault&, const Fault&) = default;
};

struct FaultScenario {
  std::vector<Fault> faults;

  bool empty() const { return faults.empty(); }
  /// Short human-readable summary, e.g. "block(12,8 r1 70%) + droop(20%)".
  std::string describe() const;
};

/// Stable 64-bit hash of a scenario; mixed into evaluator-cache keys so a
/// robust-mode evaluation can never alias a nominal one.
std::uint64_t scenario_fingerprint(const FaultScenario& scenario);

/// A degraded copy of the system under one scenario. `pressure_derate` maps
/// commanded pump pressure to delivered pressure (droop faults compose
/// multiplicatively); geometry and boundary-condition faults are baked into
/// `problem` / `network`.
struct DegradedSystem {
  CoolingProblem problem;
  CoolingNetwork network;
  double pressure_derate = 1.0;

  double delivered_pressure(double commanded_p_sys) const {
    return commanded_p_sys * pressure_derate;
  }
};

/// Apply a scenario; the inputs are untouched. A zero-magnitude scenario
/// returns bit-identical copies (unit conductance scales are not installed),
/// so its evaluation reproduces the nominal metrics exactly.
DegradedSystem apply_scenario(const CoolingProblem& nominal,
                              const CoolingNetwork& network,
                              const FaultScenario& scenario);

/// Distribution the Monte-Carlo engine samples scenarios from. Each fault
/// class appears independently with its own probability; magnitudes are
/// uniform over the configured ranges. Defaults model routine wear
/// (moderate clogging, mild droop/drift) with occasional severe events.
struct FaultDistribution {
  double p_blockage = 0.6;           ///< P(at least the first blockage)
  int max_blockages = 2;             ///< further ones at p_blockage^k
  double full_blockage_fraction = 0.2;  ///< share of blockages that are full
  double severity_min = 0.3;         ///< partial-blockage severity range
  double severity_max = 0.9;
  int radius_max = 1;                ///< blockage patch Chebyshev radius

  double p_pump_droop = 0.35;
  double droop_max = 0.3;            ///< up to 30 % pressure loss

  double p_inlet_drift = 0.35;
  double drift_max = 8.0;            ///< up to +8 K inlet temperature

  double p_power_excursion = 0.3;
  double excursion_max = 0.25;       ///< up to +25 % layer power
};

/// Sample one scenario. Blockage centers are uniform over the grid;
/// `source_layers` bounds the power-excursion layer choice.
FaultScenario sample_scenario(const FaultDistribution& distribution,
                              const Grid2D& grid, int source_layers, Rng& rng);

/// Independent per-scenario rng stream keyed by (seed, index) — the PR-1
/// per-neighbor pattern, so sweep sampling is identical no matter which
/// thread draws which scenario.
Rng scenario_rng(std::uint64_t seed, std::size_t index);

// --- Time-triggered faults (DESIGN.md §S23).
//
// A dynamic scenario schedules faults on the simulation clock: a blockage
// appears at its onset time, a pump droop ramps in over `ramp` seconds, the
// inlet drifts warmer as the facility loop loads up. Continuous fault kinds
// (droop, drift, excursion) scale linearly with the activation; structural
// faults (blockage) switch on at onset at full configured severity — a
// partially ramped blockage would change the hydraulic structure every step.

struct TimedFault {
  double onset = 0.0;  ///< s on the scenario clock
  double ramp = 0.0;   ///< s from onset to full effect; 0 = step change
  Fault fault;
};

/// Activation of a timed fault at time t: 0 before onset, linear over the
/// ramp, 1 afterwards.
double timed_activation(const TimedFault& timed, double t);

/// Structural (blockage) faults active at time t, at full severity.
/// Feed to apply_scenario() when the active set changes.
FaultScenario active_structural_faults(const std::vector<TimedFault>& faults,
                                       double t);

/// Commanded→delivered pressure factor at t: droop faults compose
/// multiplicatively, each scaled by its activation.
double timed_pressure_derate(const std::vector<TimedFault>& faults, double t);

/// Additional inlet warming at t, K: drift magnitudes sum, each scaled by
/// its activation.
double timed_inlet_drift(const std::vector<TimedFault>& faults, double t);

/// Power multiplier for one source layer at t: excursion faults hitting the
/// layer (or all layers) compose multiplicatively.
double timed_power_factor(const std::vector<TimedFault>& faults, double t,
                          int source_layer);

}  // namespace lcn
