// Monte-Carlo degradation sweeps and graceful-degradation planning
// (DESIGN.md §S17).
//
// Given a finished design — a network plus its nominal operating pressure —
// the sweep samples N fault scenarios from a FaultDistribution, evaluates the
// degraded system at the *delivered* pressure each scenario leaves the pump
// able to command, and reduces the outcomes into exceedance probabilities
// P(T_max > T*_max) / P(ΔT > ΔT*), margin quantiles, and the worst offending
// scenario. For every scenario that violates the limits, the planner reuses
// the Algorithm-2 pressure search to find the minimum command that restores
// feasibility, classifying the fault as recoverable (with its recovery
// pumping-power cost) or unrecoverable.
//
// Determinism: scenario k is sampled from an rng stream keyed by
// (seed, k) and evaluations are bit-identical at any thread count (PR-1
// serial-equivalence contract), so fanning the sweep over the LCN_THREADS
// pool and reducing in scenario order yields bit-identical statistics for
// LCN_THREADS ∈ {1, 2, 4, 8, ...}.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/evaluator.hpp"
#include "opt/pressure_search.hpp"
#include "reliability/fault_model.hpp"

namespace lcn {

enum class RecoveryKind : std::uint8_t {
  kNotNeeded = 0,     ///< scenario meets the limits at the delivered pressure
  kRecovered = 1,     ///< a higher pump command restores feasibility
  kUnrecoverable = 2  ///< no command in the search range is feasible
};

const char* recovery_kind_name(RecoveryKind kind);

struct ScenarioOutcome {
  FaultScenario scenario;
  /// False when the degraded flow system could not be evaluated at all
  /// (e.g. a blockage decoupled every inlet) — counted as exceeding both
  /// limits and as unrecoverable.
  bool evaluated = false;
  bool feasible = false;
  double p_delivered = 0.0;  ///< Pa actually reaching the network
  double w_pump = 0.0;       ///< W at the delivered pressure
  ThermalProbe at_p;         ///< metrics at the delivered pressure
  double t_margin = 0.0;     ///< T*_max - T_max, K (negative = violation)
  double dt_margin = 0.0;    ///< ΔT* - ΔT, K

  RecoveryKind recovery = RecoveryKind::kNotNeeded;
  double recovery_p_sys = 0.0;   ///< commanded Pa restoring feasibility
  double recovery_w_pump = 0.0;  ///< W at the recovery operating point
};

struct SweepOptions {
  int scenarios = 64;
  std::uint64_t seed = 0x5eedfau;
  SimConfig sim{ThermalModelKind::k2RM, 4};
  FaultDistribution distribution;
  /// Run the graceful-degradation planner on infeasible scenarios.
  bool plan_recovery = true;
  PressureSearchOptions search;
};

struct SweepReport {
  /// Nominal (fault-free) reference at the commanded pressure.
  double p_nominal = 0.0;
  double w_nominal = 0.0;
  ThermalProbe nominal;

  std::vector<ScenarioOutcome> outcomes;  ///< scenario order (index = k)

  std::size_t evaluated = 0;
  std::size_t infeasible = 0;      ///< violate limits at delivered pressure
  std::size_t recovered = 0;
  std::size_t unrecoverable = 0;

  /// Exceedance probabilities over all N scenarios (unevaluable scenarios
  /// count as exceeding).
  double p_exceed_t_max = 0.0;
  double p_exceed_delta_t = 0.0;
  double p_infeasible = 0.0;

  /// T_max / ΔT margin quantiles over the evaluated scenarios (K).
  double t_margin_q10 = 0.0, t_margin_q50 = 0.0, t_margin_q90 = 0.0;
  double dt_margin_q10 = 0.0, dt_margin_q50 = 0.0, dt_margin_q90 = 0.0;

  /// Index of the worst offending scenario (smallest T_max margin;
  /// unevaluable scenarios rank worst of all), -1 when N = 0.
  int worst_scenario = -1;

  double seconds = 0.0;

  /// Mean extra pumping power across recovered scenarios (W), 0 when none.
  double mean_recovery_w_extra = 0.0;
};

/// Evaluate one already-applied scenario at the commanded pressure
/// `p_command` (the scenario's droop decides what is delivered), planning
/// recovery when asked. Exposed for tests and for custom (non-Monte-Carlo)
/// what-if studies.
ScenarioOutcome evaluate_scenario(const DegradedSystem& system,
                                  const FaultScenario& scenario,
                                  const DesignConstraints& limits,
                                  double p_command, const SweepOptions& options);

/// Run the full sweep. `p_nominal` is the design's commanded operating
/// pressure (e.g. EvalResult::p_sys from evaluate_p1). Throws when the
/// *nominal* system itself cannot be evaluated.
SweepReport run_sweep(const CoolingProblem& problem,
                      const CoolingNetwork& network,
                      const DesignConstraints& limits, double p_nominal,
                      const SweepOptions& options);

}  // namespace lcn
