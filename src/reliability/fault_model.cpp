#include "reliability/fault_model.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/strings.hpp"

namespace lcn {

namespace {

class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h_ ^= (v >> (byte * 8)) & 0xffULL;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix_double(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Liquid cell nearest to (row, col): smallest squared Euclidean distance,
/// ties broken by the ascending scan order (lowest linear id), so the mapping
/// is deterministic for any candidate network. Returns the grid linear id,
/// or SIZE_MAX when the network has no liquid cells.
std::size_t nearest_liquid_cell(const Grid2D& grid,
                                const std::vector<std::size_t>& liquid,
                                int row, int col) {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  long best_d2 = std::numeric_limits<long>::max();
  for (const std::size_t cell : liquid) {
    const CellCoord cc = grid.coord(cell);
    const long dr = cc.row - row;
    const long dc = cc.col - col;
    const long d2 = dr * dr + dc * dc;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = cell;
    }
  }
  return best;
}

void apply_blockage(DegradedSystem& sys, const Fault& fault) {
  const Grid2D& grid = sys.network.grid();
  // Collect the affected liquid cells: each patch cell maps to the nearest
  // liquid cell (dedup'd), so a blockage defined on a solid region still
  // lands on the channel it would clog in practice.
  const std::vector<std::size_t> liquid = sys.network.liquid_cells();
  std::vector<std::size_t> targets;
  for (int r = fault.row - fault.radius; r <= fault.row + fault.radius; ++r) {
    for (int c = fault.col - fault.radius; c <= fault.col + fault.radius;
         ++c) {
      const std::size_t cell = nearest_liquid_cell(grid, liquid, r, c);
      if (cell == std::numeric_limits<std::size_t>::max()) continue;
      if (std::find(targets.begin(), targets.end(), cell) == targets.end()) {
        targets.push_back(cell);
      }
    }
  }
  if (fault.severity >= 1.0) {
    for (const std::size_t cell : targets) {
      const CellCoord cc = grid.coord(cell);
      sys.network.remove_ports_at(cc.row, cc.col);
      sys.network.set_solid(cc.row, cc.col);
    }
    return;
  }
  if (fault.severity <= 0.0) return;  // zero-magnitude: bit-identical system
  std::vector<double>& scale =
      sys.problem.flow_options.cell_conductance_scale;
  if (scale.empty()) scale.assign(grid.cell_count(), 1.0);
  const double factor = std::max(1.0 - fault.severity, 1e-6);
  for (const std::size_t cell : targets) {
    scale[cell] = std::max(scale[cell] * factor, 1e-6);
  }
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kChannelBlockage: return "block";
    case FaultKind::kPumpDroop: return "droop";
    case FaultKind::kInletDrift: return "drift";
    case FaultKind::kPowerExcursion: return "power";
  }
  return "?";
}

std::string FaultScenario::describe() const {
  if (faults.empty()) return "nominal";
  std::string out;
  for (const Fault& fault : faults) {
    if (!out.empty()) out += " + ";
    switch (fault.kind) {
      case FaultKind::kChannelBlockage:
        out += strfmt("block(%d,%d r%d %s)", fault.row, fault.col,
                      fault.radius,
                      fault.severity >= 1.0
                          ? "full"
                          : strfmt("%.0f%%", fault.severity * 100.0).c_str());
        break;
      case FaultKind::kPumpDroop:
        out += strfmt("droop(%.0f%%)", fault.severity * 100.0);
        break;
      case FaultKind::kInletDrift:
        out += strfmt("drift(+%.1fK)", fault.magnitude);
        break;
      case FaultKind::kPowerExcursion:
        out += fault.layer < 0
                   ? strfmt("power(all +%.0f%%)", fault.magnitude * 100.0)
                   : strfmt("power(L%d +%.0f%%)", fault.layer,
                            fault.magnitude * 100.0);
        break;
    }
  }
  return out;
}

std::uint64_t scenario_fingerprint(const FaultScenario& scenario) {
  Fnv fnv;
  fnv.mix(scenario.faults.size());
  for (const Fault& fault : scenario.faults) {
    fnv.mix(static_cast<std::uint64_t>(fault.kind));
    fnv.mix(static_cast<std::uint64_t>(fault.row));
    fnv.mix(static_cast<std::uint64_t>(fault.col));
    fnv.mix(static_cast<std::uint64_t>(fault.radius));
    fnv.mix_double(fault.severity);
    fnv.mix_double(fault.magnitude);
    fnv.mix(static_cast<std::uint64_t>(fault.layer));
  }
  return fnv.value();
}

DegradedSystem apply_scenario(const CoolingProblem& nominal,
                              const CoolingNetwork& network,
                              const FaultScenario& scenario) {
  LCN_REQUIRE(network.grid() == nominal.grid,
              "apply_scenario: network grid must match the problem grid");
  DegradedSystem sys{nominal, network, 1.0};
  for (const Fault& fault : scenario.faults) {
    switch (fault.kind) {
      case FaultKind::kChannelBlockage:
        apply_blockage(sys, fault);
        break;
      case FaultKind::kPumpDroop:
        LCN_REQUIRE(fault.severity >= 0.0 && fault.severity < 1.0,
                    "pump droop severity must be in [0, 1)");
        sys.pressure_derate *= 1.0 - fault.severity;
        break;
      case FaultKind::kInletDrift:
        sys.problem.inlet_temperature += fault.magnitude;
        break;
      case FaultKind::kPowerExcursion: {
        const auto layers =
            static_cast<int>(sys.problem.source_power.size());
        LCN_REQUIRE(fault.layer < layers,
                    "power excursion layer out of range");
        for (int l = 0; l < layers; ++l) {
          if (fault.layer >= 0 && l != fault.layer) continue;
          PowerMap& map = sys.problem.source_power[static_cast<std::size_t>(l)];
          for (int r = 0; r < map.grid().rows(); ++r) {
            for (int c = 0; c < map.grid().cols(); ++c) {
              map.at(r, c) *= 1.0 + fault.magnitude;
            }
          }
        }
        break;
      }
    }
  }
  return sys;
}

FaultScenario sample_scenario(const FaultDistribution& distribution,
                              const Grid2D& grid, int source_layers,
                              Rng& rng) {
  FaultScenario scenario;
  for (int k = 0; k < distribution.max_blockages; ++k) {
    if (rng.next_double() >= distribution.p_blockage) break;
    Fault fault;
    fault.kind = FaultKind::kChannelBlockage;
    fault.row = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(grid.rows())));
    fault.col = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(grid.cols())));
    fault.radius = distribution.radius_max > 0
                       ? static_cast<int>(rng.next_below(
                             static_cast<std::uint64_t>(
                                 distribution.radius_max + 1)))
                       : 0;
    fault.severity =
        rng.next_double() < distribution.full_blockage_fraction
            ? 1.0
            : rng.next_real(distribution.severity_min,
                            distribution.severity_max);
    scenario.faults.push_back(fault);
  }
  if (rng.next_double() < distribution.p_pump_droop) {
    Fault fault;
    fault.kind = FaultKind::kPumpDroop;
    fault.severity = rng.next_real(0.0, distribution.droop_max);
    scenario.faults.push_back(fault);
  }
  if (rng.next_double() < distribution.p_inlet_drift) {
    Fault fault;
    fault.kind = FaultKind::kInletDrift;
    fault.magnitude = rng.next_real(0.0, distribution.drift_max);
    scenario.faults.push_back(fault);
  }
  if (rng.next_double() < distribution.p_power_excursion && source_layers > 0) {
    Fault fault;
    fault.kind = FaultKind::kPowerExcursion;
    fault.magnitude = rng.next_real(0.0, distribution.excursion_max);
    // One extra slot means "all layers at once".
    const auto pick = rng.next_below(
        static_cast<std::uint64_t>(source_layers) + 1);
    fault.layer = pick == static_cast<std::uint64_t>(source_layers)
                      ? -1
                      : static_cast<int>(pick);
    scenario.faults.push_back(fault);
  }
  return scenario;
}

Rng scenario_rng(std::uint64_t seed, std::size_t index) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(index) *
                        0x9e3779b97f4a7c15ULL));
  return Rng(sm.next());
}

double timed_activation(const TimedFault& timed, double t) {
  if (t < timed.onset) return 0.0;
  if (timed.ramp <= 0.0) return 1.0;
  const double a = (t - timed.onset) / timed.ramp;
  return a < 1.0 ? a : 1.0;
}

FaultScenario active_structural_faults(const std::vector<TimedFault>& faults,
                                       double t) {
  FaultScenario active;
  for (const TimedFault& timed : faults) {
    if (timed.fault.kind != FaultKind::kChannelBlockage) continue;
    if (t >= timed.onset) active.faults.push_back(timed.fault);
  }
  return active;
}

double timed_pressure_derate(const std::vector<TimedFault>& faults, double t) {
  double derate = 1.0;
  for (const TimedFault& timed : faults) {
    if (timed.fault.kind != FaultKind::kPumpDroop) continue;
    derate *= 1.0 - timed.fault.severity * timed_activation(timed, t);
  }
  return derate;
}

double timed_inlet_drift(const std::vector<TimedFault>& faults, double t) {
  double drift = 0.0;
  for (const TimedFault& timed : faults) {
    if (timed.fault.kind != FaultKind::kInletDrift) continue;
    drift += timed.fault.magnitude * timed_activation(timed, t);
  }
  return drift;
}

double timed_power_factor(const std::vector<TimedFault>& faults, double t,
                          int source_layer) {
  double factor = 1.0;
  for (const TimedFault& timed : faults) {
    if (timed.fault.kind != FaultKind::kPowerExcursion) continue;
    if (timed.fault.layer != -1 && timed.fault.layer != source_layer) continue;
    factor *= 1.0 + timed.fault.magnitude * timed_activation(timed, t);
  }
  return factor;
}

}  // namespace lcn
