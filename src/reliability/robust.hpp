// Robust (worst-case-over-faults) network evaluation (DESIGN.md §S17).
//
// The SA optimizer normally scores a candidate under pristine conditions;
// robust mode re-scores it as the *worst case* over a small fixed fault
// sample, so the search prefers designs that keep working when a channel
// clogs or the pump droops. The sample is drawn once per run from the grid
// (blockage centers map to each candidate's nearest liquid cells at apply
// time), so every candidate faces the same faults and scores stay
// comparable; its fingerprint is mixed into the evaluator-cache problem
// fingerprint so robust and nominal probes can never alias.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/eval_cache.hpp"
#include "opt/evaluator.hpp"
#include "reliability/fault_model.hpp"

namespace lcn {

struct RobustOptions {
  /// Fault sample size. Every full network evaluation costs (1 + scenarios)
  /// nominal evaluations, so keep it small for SA (the default quadruples
  /// the cost, not more).
  int scenarios = 3;
  std::uint64_t seed = 0x0b0b5eedu;
  FaultDistribution distribution;
};

/// The fixed fault sample of one robust run.
class RobustSample {
 public:
  RobustSample() = default;
  RobustSample(const Grid2D& grid, int source_layers,
               const RobustOptions& options);

  const std::vector<FaultScenario>& scenarios() const { return scenarios_; }
  bool empty() const { return scenarios_.empty(); }

  /// Mixed into the eval-cache problem fingerprint (opt/eval_cache.hpp).
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  std::vector<FaultScenario> scenarios_;
  std::uint64_t fingerprint_ = 0;
};

/// Worst-case evaluation: the nominal system and every degraded variant are
/// scored with evaluate_p1 (mode kFullP1) or evaluate_p2 (kFullP2); the
/// result is the highest (worst) score, and the design is feasible only when
/// every variant is. Runs serially over the sample — robust evaluations are
/// invoked from inside SA neighbor tasks, where the inner kernels already
/// stay serial by the nesting guard.
EvalResult robust_evaluate(const CoolingProblem& nominal,
                           const CoolingNetwork& network,
                           const DesignConstraints& limits, EvalMode mode,
                           const SimConfig& sim,
                           const PressureSearchOptions& search,
                           const RobustSample& sample);

}  // namespace lcn
