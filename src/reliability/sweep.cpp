#include "reliability/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/instrument.hpp"
#include "common/strings.hpp"
#include "common/task_context.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace lcn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Linear-interpolated quantile of an unsorted sample (deterministic: the
/// sample is copied and sorted; comparisons on doubles are exact).
double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace

const char* recovery_kind_name(RecoveryKind kind) {
  switch (kind) {
    case RecoveryKind::kNotNeeded: return "ok";
    case RecoveryKind::kRecovered: return "recovered";
    case RecoveryKind::kUnrecoverable: return "unrecoverable";
  }
  return "?";
}

ScenarioOutcome evaluate_scenario(const DegradedSystem& system,
                                  const FaultScenario& scenario,
                                  const DesignConstraints& limits,
                                  double p_command,
                                  const SweepOptions& options) {
  LCN_REQUIRE(p_command > 0.0, "commanded pressure must be positive");
  ScenarioOutcome out;
  out.scenario = scenario;
  out.p_delivered = system.delivered_pressure(p_command);
  out.t_margin = -kInf;
  out.dt_margin = -kInf;
  try {
    SystemEvaluator eval(system.problem, system.network, options.sim);
    out.at_p = eval.probe(out.p_delivered);
    out.w_pump = eval.pumping_power(out.p_delivered);
    out.evaluated = true;
    out.t_margin = limits.t_max - out.at_p.t_max;
    out.dt_margin = limits.delta_t_max - out.at_p.delta_t;
    out.feasible = out.t_margin >= 0.0 && out.dt_margin >= 0.0;
    if (!out.feasible) {
      instrument::add_scenario_infeasible();
      if (options.plan_recovery) {
        instrument::add_recovery_search();
        // Algorithm 2 on the degraded system: the smallest *delivered*
        // pressure meeting both limits; the pump must command it through
        // the droop.
        const EvalResult recovery =
            evaluate_p1(eval, limits, options.search);
        if (recovery.feasible) {
          out.recovery = RecoveryKind::kRecovered;
          out.recovery_p_sys = recovery.p_sys / system.pressure_derate;
          out.recovery_w_pump = recovery.w_pump;
        } else {
          out.recovery = RecoveryKind::kUnrecoverable;
        }
      }
    }
  } catch (const RuntimeError&) {
    // The degraded flow system is not evaluable (every inlet decoupled, a
    // liquid component cut off from its ports, ...): no pump command can
    // help, so the scenario is unrecoverable by construction.
    out.evaluated = false;
    instrument::add_scenario_infeasible();
    out.recovery = RecoveryKind::kUnrecoverable;
  }
  instrument::add_scenario_evaluated();
  return out;
}

SweepReport run_sweep(const CoolingProblem& problem,
                      const CoolingNetwork& network,
                      const DesignConstraints& limits, double p_nominal,
                      const SweepOptions& options) {
  LCN_REQUIRE(options.scenarios >= 0, "scenario count must be non-negative");
  LCN_REQUIRE(p_nominal > 0.0, "nominal pressure must be positive");
  trace::Span sweep_span("reliability_sweep");
  if (sweep_span.active()) {
    sweep_span.set_args(strfmt("\"scenarios\":%d,\"seed\":%llu",
                               options.scenarios,
                               static_cast<unsigned long long>(options.seed)));
  }
  WallTimer timer;

  SweepReport report;
  report.p_nominal = p_nominal;
  {
    // The nominal system must evaluate — a design that cannot be simulated
    // has no business being swept. Exceptions propagate to the caller.
    SystemEvaluator eval(problem, network, options.sim);
    report.nominal = eval.probe(p_nominal);
    report.w_nominal = eval.pumping_power(p_nominal);
  }

  const int source_layers = static_cast<int>(problem.source_power.size());
  const auto n = static_cast<std::size_t>(options.scenarios);
  report.outcomes.resize(n);

  // Fan scenarios over the pool. Each index samples from its own (seed, k)
  // stream and writes only its slot, so the outcome vector — and every
  // statistic reduced from it below in index order — is bit-identical at any
  // thread count.
  global_pool().parallel_for(n, [&](std::size_t k) {
    // Cooperative cancellation (§S22): a cancelled sweep's report is
    // discarded wholesale, so short-circuiting remaining scenarios here
    // cannot leak a partial statistic.
    throw_if_cancelled();
    LCN_TRACE_SPAN_FINE("fault_scenario");
    Rng rng = scenario_rng(options.seed, k);
    const FaultScenario scenario =
        sample_scenario(options.distribution, problem.grid, source_layers,
                        rng);
    const DegradedSystem degraded =
        apply_scenario(problem, network, scenario);
    report.outcomes[k] =
        evaluate_scenario(degraded, scenario, limits, p_nominal, options);
  });

  // Reduce in scenario order.
  std::vector<double> t_margins;
  std::vector<double> dt_margins;
  t_margins.reserve(n);
  dt_margins.reserve(n);
  std::size_t exceed_t = 0;
  std::size_t exceed_dt = 0;
  double worst_margin = kInf;
  double recovery_extra = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const ScenarioOutcome& out = report.outcomes[k];
    if (out.evaluated) {
      ++report.evaluated;
      t_margins.push_back(out.t_margin);
      dt_margins.push_back(out.dt_margin);
    }
    if (!out.evaluated || out.at_p.t_max > limits.t_max) ++exceed_t;
    if (!out.evaluated || out.at_p.delta_t > limits.delta_t_max) ++exceed_dt;
    if (!out.feasible) ++report.infeasible;
    if (out.recovery == RecoveryKind::kRecovered) {
      ++report.recovered;
      recovery_extra += out.recovery_w_pump - report.w_nominal;
    } else if (out.recovery == RecoveryKind::kUnrecoverable) {
      ++report.unrecoverable;
    }
    if (out.t_margin < worst_margin) {
      worst_margin = out.t_margin;
      report.worst_scenario = static_cast<int>(k);
    }
  }
  if (n > 0) {
    const auto dn = static_cast<double>(n);
    report.p_exceed_t_max = static_cast<double>(exceed_t) / dn;
    report.p_exceed_delta_t = static_cast<double>(exceed_dt) / dn;
    report.p_infeasible = static_cast<double>(report.infeasible) / dn;
  }
  if (report.recovered > 0) {
    report.mean_recovery_w_extra =
        recovery_extra / static_cast<double>(report.recovered);
  }
  report.t_margin_q10 = quantile(t_margins, 0.1);
  report.t_margin_q50 = quantile(t_margins, 0.5);
  report.t_margin_q90 = quantile(t_margins, 0.9);
  report.dt_margin_q10 = quantile(dt_margins, 0.1);
  report.dt_margin_q50 = quantile(dt_margins, 0.5);
  report.dt_margin_q90 = quantile(dt_margins, 0.9);
  report.seconds = timer.seconds();
  return report;
}

}  // namespace lcn
