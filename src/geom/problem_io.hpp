// Text formats for the optimizer inputs (paper Algorithm 1: "stack
// description and floorplan files").
//
// Stack description:
//   grid <rows> <cols> <pitch_m>
//   inlet_temperature <K>
//   ambient <conductance W/(m²K)> <temperature K>
//   layer <solid|source|channel> <name> <thickness_m> <k W/(mK)> <c J/(m³K)>
//   constraint <delta_t|t_max|w_pump> <value>
//   # comments and blank lines are ignored
//
// Floorplan (one file per source layer, HotSpot-unit style, cell units):
//   <unit-name> <row0> <col0> <rows> <cols> <watts>
//
// The loaders validate aggressively and throw lcn::ContractError /
// lcn::RuntimeError with the offending line.
#pragma once

#include <string>
#include <vector>

#include "thermal/problem.hpp"

namespace lcn {

struct ProblemDescription {
  CoolingProblem problem;
  DesignConstraints constraints;
};

/// Parse a stack description (see format above). Floorplans are attached
/// separately — power maps start all-zero, one per source layer.
ProblemDescription parse_stack_description(const std::string& text);

/// Parse one floorplan file into a power map on `grid`.
PowerMap parse_floorplan(const std::string& text, const Grid2D& grid);

/// Load a full problem: stack file + one floorplan file per source layer.
ProblemDescription load_problem(const std::string& stack_path,
                                const std::vector<std::string>& floorplan_paths);

/// Serializers (round-trip with the parsers).
std::string format_stack_description(const ProblemDescription& desc);
std::string format_floorplan(const PowerMap& map, const std::string& prefix);

/// Whole-file helpers.
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& text);

}  // namespace lcn
