// Vertical layer stack of a liquid-cooled 3D IC.
//
// Layers are listed bottom-up. A standard interlayer-cooled stack has, per
// die, an active (source) silicon layer and a bulk silicon layer, with a
// microchannel layer etched between consecutive dies (paper Fig. 1(a)).
#pragma once

#include <string>
#include <vector>

#include "geom/materials.hpp"

namespace lcn {

enum class LayerKind { kSolid, kSource, kChannel };

struct Layer {
  LayerKind kind = LayerKind::kSolid;
  double thickness = 0.0;  ///< m
  SolidMaterial material;  ///< solid material (walls/TSV region for channels)
  std::string name;
  int source_index = -1;   ///< dense index among source layers, or -1
  int channel_index = -1;  ///< dense index among channel layers, or -1
};

class Stack {
 public:
  Stack& add_solid(std::string name, double thickness,
                   const SolidMaterial& material);
  Stack& add_source(std::string name, double thickness,
                    const SolidMaterial& material);
  /// `thickness` is the channel height h_c; `material` describes the solid
  /// walls (and TSV cells) sharing the layer.
  Stack& add_channel(std::string name, double thickness,
                     const SolidMaterial& material);

  const std::vector<Layer>& layers() const { return layers_; }
  int layer_count() const { return static_cast<int>(layers_.size()); }
  const Layer& layer(int i) const { return layers_.at(static_cast<std::size_t>(i)); }

  int source_count() const { return source_count_; }
  int channel_count() const { return channel_count_; }

  /// Layer indices (bottom-up) of all source / channel layers.
  std::vector<int> source_layers() const;
  std::vector<int> channel_layers() const;

  double total_thickness() const;

  /// Throws lcn::ContractError when the stack is not physically meaningful:
  /// empty, channel at the very top/bottom, or two adjacent channel layers.
  void validate() const;

 private:
  std::vector<Layer> layers_;
  int source_count_ = 0;
  int channel_count_ = 0;
};

struct InterlayerStackOptions {
  double source_thickness = 100e-6;  ///< active silicon per die
  double bulk_thickness = 200e-6;    ///< backside bulk silicon per die
  SolidMaterial material = silicon();
  /// Optional oxide bonding interface under each channel layer (0 = none).
  /// Bonding oxide is a significant extra thermal resistance in real
  /// TSV-bonded stacks; exposed for stack-sensitivity studies.
  double bonding_thickness = 0.0;
  SolidMaterial bonding_material = oxide();
};

/// Standard stack: per die (bottom-up) source + bulk silicon, one channel
/// layer of height `channel_height` between consecutive dies (preceded by a
/// bonding layer when configured).
Stack make_interlayer_stack(int dies, double channel_height,
                            const InterlayerStackOptions& opts = {});

}  // namespace lcn
