#include "geom/power_map.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace lcn {

PowerMap::PowerMap(const Grid2D& grid, double total_watts)
    : grid_(grid), watts_(grid.cell_count(), 0.0) {
  LCN_REQUIRE(total_watts >= 0.0, "total power must be non-negative");
  const double per_cell = total_watts / static_cast<double>(grid.cell_count());
  std::fill(watts_.begin(), watts_.end(), per_cell);
}

PowerMap::PowerMap(const Grid2D& grid, const std::vector<PowerBlock>& blocks)
    : grid_(grid), watts_(grid.cell_count(), 0.0) {
  for (const auto& block : blocks) {
    LCN_REQUIRE(!block.rect.empty(), "power block must be non-empty");
    LCN_REQUIRE(grid.in_bounds(block.rect.row0, block.rect.col0) &&
                    grid.in_bounds(block.rect.row1, block.rect.col1),
                "power block out of grid bounds");
    LCN_REQUIRE(block.watts >= 0.0, "block power must be non-negative");
    const double per_cell =
        block.watts /
        (static_cast<double>(block.rect.rows()) * block.rect.cols());
    for (int r = block.rect.row0; r <= block.rect.row1; ++r) {
      for (int c = block.rect.col0; c <= block.rect.col1; ++c) {
        watts_[grid_.index(r, c)] += per_cell;
      }
    }
  }
}

double PowerMap::total() const {
  double sum = 0.0;
  for (double w : watts_) sum += w;
  return sum;
}

double PowerMap::max_cell() const {
  double m = 0.0;
  for (double w : watts_) m = std::max(m, w);
  return m;
}

void PowerMap::scale_to(double target_watts) {
  LCN_REQUIRE(target_watts >= 0.0, "target power must be non-negative");
  const double current = total();
  LCN_REQUIRE(current > 0.0 || target_watts == 0.0,
              "cannot scale an all-zero power map to a positive total");
  if (current == 0.0) return;
  const double factor = target_watts / current;
  for (double& w : watts_) w *= factor;
}

PowerMap PowerMap::transformed(const D4Transform& t) const {
  PowerMap out;
  out.grid_ = t.transform_grid(grid_);
  out.watts_.assign(out.grid_.cell_count(), 0.0);
  for (int r = 0; r < grid_.rows(); ++r) {
    for (int c = 0; c < grid_.cols(); ++c) {
      const CellCoord image = t.apply(grid_, CellCoord{r, c});
      out.watts_[out.grid_.index(image.row, image.col)] =
          watts_[grid_.index(r, c)];
    }
  }
  return out;
}

PowerMap synthesize_power_map(const Grid2D& grid, double total_watts,
                              std::uint64_t seed,
                              const SyntheticPowerOptions& opts) {
  LCN_REQUIRE(opts.block_count >= 1, "need at least one block");
  LCN_REQUIRE(opts.hotspot_count >= 0 && opts.hotspot_count <= opts.block_count,
              "hotspot count out of range");
  LCN_REQUIRE(opts.hotspot_fraction >= 0.0 && opts.background_fraction >= 0.0 &&
                  opts.hotspot_fraction + opts.background_fraction <= 1.0,
              "power fractions must partition [0, 1]");
  Rng rng(seed);

  std::vector<PowerBlock> blocks;
  auto random_rect = [&](int min_span, int max_span) {
    const int h = static_cast<int>(rng.next_int(min_span, max_span));
    const int w = static_cast<int>(rng.next_int(min_span, max_span));
    const int r0 = static_cast<int>(rng.next_int(0, grid.rows() - h));
    const int c0 = static_cast<int>(rng.next_int(0, grid.cols() - w));
    return CellRect{r0, c0, r0 + h - 1, c0 + w - 1};
  };

  // Hotspots: compact, higher-density blocks.
  const double hotspot_watts = total_watts * opts.hotspot_fraction;
  const int hot_span_min = std::max(3, grid.rows() / 10);
  const int hot_span_max = std::max(hot_span_min + 1, grid.rows() / 5);
  for (int i = 0; i < opts.hotspot_count; ++i) {
    blocks.push_back({random_rect(hot_span_min, hot_span_max),
                      hotspot_watts / std::max(1, opts.hotspot_count)});
  }

  // Regular floorplan units: medium blocks with random power weights.
  const double unit_watts =
      total_watts * (1.0 - opts.hotspot_fraction - opts.background_fraction);
  const int unit_count = opts.block_count - opts.hotspot_count;
  std::vector<double> weights;
  double weight_sum = 0.0;
  for (int i = 0; i < unit_count; ++i) {
    weights.push_back(0.2 + rng.next_double());
    weight_sum += weights.back();
  }
  const int unit_span_max = std::max(4, grid.rows() / 3);
  for (int i = 0; i < unit_count; ++i) {
    blocks.push_back({random_rect(4, unit_span_max),
                      unit_watts * weights[static_cast<std::size_t>(i)] /
                          weight_sum});
  }

  // Uniform background leakage.
  blocks.push_back({CellRect{0, 0, grid.rows() - 1, grid.cols() - 1},
                    total_watts * opts.background_fraction});

  PowerMap map(grid, blocks);
  for (int pass = 0; pass < opts.smoothing_passes; ++pass) {
    PowerMap blurred(grid, 0.0);
    for (int r = 0; r < grid.rows(); ++r) {
      for (int c = 0; c < grid.cols(); ++c) {
        double sum = 0.0;
        int count = 0;
        for (int dr = -1; dr <= 1; ++dr) {
          for (int dc = -1; dc <= 1; ++dc) {
            if (!grid.in_bounds(r + dr, c + dc)) continue;
            sum += map.at(r + dr, c + dc);
            ++count;
          }
        }
        blurred.at(r, c) = sum / count;
      }
    }
    map = blurred;
  }
  map.scale_to(total_watts);
  return map;
}

}  // namespace lcn
