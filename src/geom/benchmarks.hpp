// Synthetic reconstruction of the ICCAD 2015 contest benchmark suite
// (paper Table 2). The original contest files are not distributed, so each
// case is rebuilt to match every published statistic — die count, channel
// height h_c, total die power, ΔT* and T*_max, plus the case-specific
// constraints (case 3: a restricted no-channel region; case 4: matched
// inlets/outlets across the two channel layers; case 5: high, strongly
// non-uniform power with a tight T*_max). Power maps are deterministic
// pseudo-random floorplans (see DESIGN.md §4, substitution 1).
#pragma once

#include <string>
#include <vector>

#include "thermal/problem.hpp"

namespace lcn {

struct BenchmarkCase {
  int id = 0;
  std::string name;
  CoolingProblem problem;
  DesignConstraints constraints;
  /// Restricted no-channel region (empty except case 3).
  CellRect forbidden;
  /// Inlets/outlets must match across channel layers (case 4). Designs here
  /// always replicate one network across layers, satisfying it by
  /// construction.
  bool matched_layers = false;

  int dies() const { return problem.stack.source_count(); }
  double channel_height() const {
    return problem.stack.layer(problem.stack.channel_layers().front())
        .thickness;
  }
};

/// Build ICCAD-2015-like case 1..5 (Table 2).
BenchmarkCase make_iccad_case(int id);

/// All five cases.
std::vector<BenchmarkCase> all_iccad_cases();

/// Problem-2 pumping-power budget: the paper evaluates Table 4 with
/// W*_pump = 0.1% of the die power.
double problem2_pump_budget(const BenchmarkCase& bench);

}  // namespace lcn
