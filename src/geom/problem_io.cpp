#include "geom/problem_io.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace lcn {

namespace {

/// Split a line into whitespace-separated fields, dropping comments.
std::vector<std::string> fields_of(const std::string& line) {
  const std::string body = line.substr(0, line.find('#'));
  std::vector<std::string> fields;
  std::istringstream is{body};
  std::string field;
  while (is >> field) fields.push_back(field);
  return fields;
}

double parse_double(const std::string& field, const std::string& context) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(field, &pos);
    if (pos != field.size()) throw std::invalid_argument(field);
    return value;
  } catch (const std::exception&) {
    throw RuntimeError("problem file: bad number `" + field + "` in " +
                       context);
  }
}

int parse_int(const std::string& field, const std::string& context) {
  try {
    std::size_t pos = 0;
    const int value = std::stoi(field, &pos);
    if (pos != field.size()) throw std::invalid_argument(field);
    return value;
  } catch (const std::exception&) {
    throw RuntimeError("problem file: bad integer `" + field + "` in " +
                       context);
  }
}

}  // namespace

ProblemDescription parse_stack_description(const std::string& text) {
  ProblemDescription desc;
  bool grid_seen = false;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto fields = fields_of(line);
    if (fields.empty()) continue;
    const std::string context = "line " + std::to_string(line_no);

    if (fields[0] == "grid") {
      if (fields.size() != 4) {
        throw RuntimeError("problem file: grid needs rows cols pitch (" +
                           context + ")");
      }
      desc.problem.grid = Grid2D(parse_int(fields[1], context),
                                 parse_int(fields[2], context),
                                 parse_double(fields[3], context));
      grid_seen = true;
    } else if (fields[0] == "inlet_temperature") {
      if (fields.size() != 2) {
        throw RuntimeError("problem file: inlet_temperature needs one value (" +
                           context + ")");
      }
      desc.problem.inlet_temperature = parse_double(fields[1], context);
    } else if (fields[0] == "ambient") {
      if (fields.size() != 3) {
        throw RuntimeError(
            "problem file: ambient needs conductance and temperature (" +
            context + ")");
      }
      desc.problem.ambient_conductance = parse_double(fields[1], context);
      desc.problem.ambient_temperature = parse_double(fields[2], context);
    } else if (fields[0] == "layer") {
      if (fields.size() != 6) {
        throw RuntimeError(
            "problem file: layer needs kind name thickness k c (" + context +
            ")");
      }
      const double thickness = parse_double(fields[3], context);
      const SolidMaterial material{parse_double(fields[4], context),
                                   parse_double(fields[5], context)};
      if (fields[1] == "solid") {
        desc.problem.stack.add_solid(fields[2], thickness, material);
      } else if (fields[1] == "source") {
        desc.problem.stack.add_source(fields[2], thickness, material);
      } else if (fields[1] == "channel") {
        desc.problem.stack.add_channel(fields[2], thickness, material);
      } else {
        throw RuntimeError("problem file: unknown layer kind `" + fields[1] +
                           "` (" + context + ")");
      }
    } else if (fields[0] == "constraint") {
      if (fields.size() != 3) {
        throw RuntimeError("problem file: constraint needs name value (" +
                           context + ")");
      }
      const double value = parse_double(fields[2], context);
      if (fields[1] == "delta_t") desc.constraints.delta_t_max = value;
      else if (fields[1] == "t_max") desc.constraints.t_max = value;
      else if (fields[1] == "w_pump") desc.constraints.w_pump_max = value;
      else {
        throw RuntimeError("problem file: unknown constraint `" + fields[1] +
                           "` (" + context + ")");
      }
    } else {
      throw RuntimeError("problem file: unknown directive `" + fields[0] +
                         "` (" + context + ")");
    }
  }
  if (!grid_seen) throw RuntimeError("problem file: missing grid directive");
  desc.problem.stack.validate();
  // Power maps start empty; the caller attaches floorplans.
  for (int i = 0; i < desc.problem.stack.source_count(); ++i) {
    desc.problem.source_power.emplace_back(desc.problem.grid, 0.0);
  }
  return desc;
}

PowerMap parse_floorplan(const std::string& text, const Grid2D& grid) {
  std::vector<PowerBlock> blocks;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto fields = fields_of(line);
    if (fields.empty()) continue;
    const std::string context = "line " + std::to_string(line_no);
    if (fields.size() != 6) {
      throw RuntimeError(
          "floorplan: unit needs name row0 col0 rows cols watts (" + context +
          ")");
    }
    const int row0 = parse_int(fields[1], context);
    const int col0 = parse_int(fields[2], context);
    const int rows = parse_int(fields[3], context);
    const int cols = parse_int(fields[4], context);
    if (rows <= 0 || cols <= 0 || !grid.in_bounds(row0, col0) ||
        !grid.in_bounds(row0 + rows - 1, col0 + cols - 1)) {
      throw RuntimeError("floorplan: unit `" + fields[0] +
                         "` out of grid bounds (" + context + ")");
    }
    blocks.push_back({CellRect{row0, col0, row0 + rows - 1,
                               col0 + cols - 1},
                      parse_double(fields[5], context)});
  }
  return PowerMap(grid, blocks);
}

ProblemDescription load_problem(
    const std::string& stack_path,
    const std::vector<std::string>& floorplan_paths) {
  ProblemDescription desc =
      parse_stack_description(read_text_file(stack_path));
  LCN_REQUIRE(static_cast<int>(floorplan_paths.size()) ==
                  desc.problem.stack.source_count(),
              "one floorplan file per source layer required");
  for (std::size_t i = 0; i < floorplan_paths.size(); ++i) {
    desc.problem.source_power[i] =
        parse_floorplan(read_text_file(floorplan_paths[i]), desc.problem.grid);
  }
  desc.problem.validate();
  return desc;
}

std::string format_stack_description(const ProblemDescription& desc) {
  std::ostringstream os;
  os << "# lcn stack description\n";
  os << strfmt("grid %d %d %.9g\n", desc.problem.grid.rows(),
               desc.problem.grid.cols(), desc.problem.grid.pitch());
  os << strfmt("inlet_temperature %.9g\n", desc.problem.inlet_temperature);
  if (desc.problem.ambient_conductance > 0.0) {
    os << strfmt("ambient %.9g %.9g\n", desc.problem.ambient_conductance,
                 desc.problem.ambient_temperature);
  }
  for (const Layer& layer : desc.problem.stack.layers()) {
    const char* kind = layer.kind == LayerKind::kSolid ? "solid"
                       : layer.kind == LayerKind::kSource ? "source"
                                                          : "channel";
    os << strfmt("layer %s %s %.9g %.9g %.9g\n", kind, layer.name.c_str(),
                 layer.thickness, layer.material.conductivity,
                 layer.material.volumetric_heat);
  }
  os << strfmt("constraint delta_t %.9g\n", desc.constraints.delta_t_max);
  os << strfmt("constraint t_max %.9g\n", desc.constraints.t_max);
  if (desc.constraints.w_pump_max > 0.0) {
    os << strfmt("constraint w_pump %.9g\n", desc.constraints.w_pump_max);
  }
  return os.str();
}

std::string format_floorplan(const PowerMap& map, const std::string& prefix) {
  // Emit one unit per non-zero cell run is wasteful; instead emit each cell
  // as a 1x1 unit only when non-zero — fine for the compact demo floorplans,
  // and exact for round-tripping.
  std::ostringstream os;
  os << "# lcn floorplan (1x1 cell units)\n";
  int unit = 0;
  for (int r = 0; r < map.grid().rows(); ++r) {
    for (int c = 0; c < map.grid().cols(); ++c) {
      const double w = map.at(r, c);
      if (w <= 0.0) continue;
      os << strfmt("%s%d %d %d 1 1 %.9g\n", prefix.c_str(), unit++, r, c, w);
    }
  }
  return os.str();
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open file for writing: " + path);
  out << text;
  if (!out) throw RuntimeError("failed writing file: " + path);
}

}  // namespace lcn
