#include "geom/materials.hpp"

namespace lcn {

double fluid_conductance(const ChannelGeometry& geom,
                         const CoolantProperties& coolant, double length) {
  LCN_REQUIRE(length > 0.0, "fluid conductance needs positive length");
  const double dh = geom.hydraulic_diameter();
  return dh * dh * geom.cross_section() /
         (32.0 * length * coolant.dynamic_viscosity);
}

double convective_coefficient(const ChannelGeometry& geom,
                              const CoolantProperties& coolant) {
  return coolant.nusselt * coolant.conductivity / geom.hydraulic_diameter();
}

}  // namespace lcn
