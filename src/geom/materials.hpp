// Material properties and microchannel geometry/derived quantities.
//
// Defaults follow the paper's setup (water coolant, silicon stack,
// 100 µm channel width, laminar fully developed flow with a constant
// Nusselt number from Shah & London).
#pragma once

#include "common/assert.hpp"

namespace lcn {

/// Solid material: thermal conductivity and volumetric heat capacity.
struct SolidMaterial {
  double conductivity = 0.0;       ///< W/(m·K)
  double volumetric_heat = 0.0;    ///< J/(m³·K)
};

/// Silicon around 350 K operating temperature.
inline SolidMaterial silicon() { return {130.0, 1.63e6}; }
/// Silicon dioxide (bonding / BEOL filler, used in stack variants).
inline SolidMaterial oxide() { return {1.38, 1.62e6}; }
/// Copper (TSV fill material in the TSV-density ablation).
inline SolidMaterial copper() { return {400.0, 3.45e6}; }

/// Single-phase coolant (water near 310 K).
struct CoolantProperties {
  double dynamic_viscosity = 8.9e-4;  ///< µ, Pa·s
  double conductivity = 0.6;          ///< k_liquid, W/(m·K)
  double volumetric_heat = 4.183e6;   ///< C_v, J/(m³·K)
  double nusselt = 4.86;  ///< Nu, laminar rectangular duct (Shah & London)
};

/// Geometry of one microchannel segment spanning a basic cell.
struct ChannelGeometry {
  double width = 100e-6;   ///< w_c, m — equals the basic-cell pitch
  double height = 200e-6;  ///< h_c, m — per benchmark (Table 2)

  double cross_section() const { return width * height; }  ///< A_c, m²

  /// Hydraulic diameter of the rectangular duct, D_h = 4A/P = 2wh/(w+h).
  double hydraulic_diameter() const {
    LCN_REQUIRE(width > 0.0 && height > 0.0, "channel dims must be positive");
    return 2.0 * width * height / (width + height);
  }
};

/// Laminar fully developed fluid conductance g = D_h² A_c / (32 l µ)
/// (paper Eq. (1)); `length` is the center-to-center distance.
double fluid_conductance(const ChannelGeometry& geom,
                         const CoolantProperties& coolant, double length);

/// Convective film coefficient h_conv = Nu · k / D_h.
double convective_coefficient(const ChannelGeometry& geom,
                              const CoolantProperties& coolant);

}  // namespace lcn
