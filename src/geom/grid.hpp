// 2D basic-cell grid of the channel layer (paper §2.1): the die is divided
// into rows×cols square cells of `pitch` meters; each cell of a channel layer
// is either solid or liquid, and boundary liquid cells may carry inlet/outlet
// ports on the chip edge.
//
// Also provides the dihedral-group (D4) grid transforms used to realize the
// paper's eight global flow directions (Fig. 8(a)): a tree-like network is
// generated in a canonical west-to-east frame and mapped through one of the
// eight symmetries of the square.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"

namespace lcn {

/// Chip-edge side identifiers. Rows grow to the south, columns to the east.
enum class Side : std::uint8_t { kWest = 0, kEast = 1, kNorth = 2, kSouth = 3 };

constexpr std::array<Side, 4> kAllSides = {Side::kWest, Side::kEast,
                                           Side::kNorth, Side::kSouth};

const char* side_name(Side side);
Side opposite(Side side);

/// Integer cell coordinate; row 0 is the north edge, col 0 the west edge.
struct CellCoord {
  int row = 0;
  int col = 0;

  friend bool operator==(const CellCoord&, const CellCoord&) = default;
};

/// Axis-aligned inclusive cell rectangle [row0,row1] x [col0,col1].
struct CellRect {
  int row0 = 0;
  int col0 = 0;
  int row1 = -1;
  int col1 = -1;

  bool empty() const { return row1 < row0 || col1 < col0; }
  bool contains(int row, int col) const {
    return row >= row0 && row <= row1 && col >= col0 && col <= col1;
  }
  int rows() const { return empty() ? 0 : row1 - row0 + 1; }
  int cols() const { return empty() ? 0 : col1 - col0 + 1; }
};

class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(int rows, int cols, double pitch);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  double pitch() const { return pitch_; }
  std::size_t cell_count() const {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }

  bool in_bounds(int row, int col) const {
    return row >= 0 && row < rows_ && col >= 0 && col < cols_;
  }

  std::size_t index(int row, int col) const {
    LCN_ASSERT(in_bounds(row, col), "grid index out of bounds");
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col);
  }

  CellCoord coord(std::size_t index) const {
    LCN_ASSERT(index < cell_count(), "grid linear index out of bounds");
    return {static_cast<int>(index / static_cast<std::size_t>(cols_)),
            static_cast<int>(index % static_cast<std::size_t>(cols_))};
  }

  /// True when the cell touches the given chip edge.
  bool on_side(int row, int col, Side side) const;

  /// Die dimensions in meters.
  double width() const { return cols_ * pitch_; }
  double height() const { return rows_ * pitch_; }

  friend bool operator==(const Grid2D&, const Grid2D&) = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  double pitch_ = 0.0;
};

/// One of the eight symmetries of the square: index 0..3 are rotations by
/// 90°·k, index 4..7 the same rotations composed with a horizontal mirror.
class D4Transform {
 public:
  explicit D4Transform(int code = 0);

  int code() const { return code_; }

  /// Shape of the transformed grid (rows/cols swap under odd rotations).
  Grid2D transform_grid(const Grid2D& grid) const;

  /// Image of a cell of `grid` under the transform (valid in
  /// transform_grid(grid)).
  CellCoord apply(const Grid2D& grid, CellCoord coord) const;

  /// Image of a side of the chip under the transform.
  Side apply(Side side) const;

  /// Image of a cell rectangle (corners mapped, then re-normalized).
  CellRect apply(const Grid2D& grid, const CellRect& rect) const;

  D4Transform inverse() const;

  static constexpr int kCount = 8;

 private:
  int code_ = 0;
};

}  // namespace lcn
