#include "geom/benchmarks.hpp"

#include "common/assert.hpp"

namespace lcn {

namespace {

constexpr int kGridSize = 101;       // 10.1 mm die, 100 µm basic cells
constexpr double kPitch = 100e-6;

/// Split the total die power across dies: the bottom die runs hotter (it is
/// farthest from any heat path except the channel), mirroring the contest's
/// non-uniform per-die budgets.
std::vector<double> die_power_split(int dies, double total) {
  if (dies == 2) return {0.58 * total, 0.42 * total};
  if (dies == 3) return {0.42 * total, 0.33 * total, 0.25 * total};
  return std::vector<double>(static_cast<std::size_t>(dies),
                             total / dies);
}

}  // namespace

BenchmarkCase make_iccad_case(int id) {
  LCN_REQUIRE(id >= 1 && id <= 5, "ICCAD case id must be 1..5");

  struct Spec {
    int dies;
    double h_c;
    double power;
    double delta_t_star;
    double t_max_star;
  };
  // Table 2, rows 1..5.
  static const Spec kSpecs[5] = {
      {2, 200e-6, 42.038, 15.0, 358.15},
      {2, 400e-6, 37.038, 10.0, 358.15},
      {2, 400e-6, 43.038, 15.0, 358.15},
      {3, 200e-6, 43.438, 10.0, 358.15},
      {2, 400e-6, 148.174, 10.0, 338.15},
  };
  const Spec& spec = kSpecs[id - 1];

  BenchmarkCase bench;
  bench.id = id;
  bench.name = "iccad15-case" + std::to_string(id);
  bench.problem.grid = Grid2D(kGridSize, kGridSize, kPitch);
  bench.problem.stack = make_interlayer_stack(spec.dies, spec.h_c);
  bench.constraints.delta_t_max = spec.delta_t_star;
  bench.constraints.t_max = spec.t_max_star;

  SyntheticPowerOptions power_opts;
  if (id == 5) {
    // The paper notes "high and highly varied die power" and a tight T*_max:
    // at 148 W even mild *relative* non-uniformity leaves an absolute
    // residual gradient above ΔT* = 10 K at any flow rate, which makes
    // Problem 1 infeasible for straight channels and for SA over the
    // tree family — matching the paper, where case 5 also defeated SA and
    // needed a manual design. The map stays smooth enough that Problem 2
    // (Table 4) remains feasible under its pumping budget.
    power_opts.hotspot_fraction = 0.04;
    power_opts.hotspot_count = 8;
    power_opts.background_fraction = 0.55;
    power_opts.smoothing_passes = 6;
  }
  const std::vector<double> split =
      die_power_split(spec.dies, spec.power);
  for (int die = 0; die < spec.dies; ++die) {
    const std::uint64_t seed =
        0x1ccadULL * 1000 + static_cast<std::uint64_t>(id) * 10 +
        static_cast<std::uint64_t>(die);
    bench.problem.source_power.push_back(synthesize_power_map(
        bench.problem.grid, split[static_cast<std::size_t>(die)], seed,
        power_opts));
  }

  if (id == 3) {
    // Restricted no-channel region (roughly a 2 mm x 2.4 mm block off-center).
    bench.forbidden = CellRect{38, 52, 58, 75};
  }
  if (id == 4) bench.matched_layers = true;

  bench.problem.validate();
  return bench;
}

std::vector<BenchmarkCase> all_iccad_cases() {
  std::vector<BenchmarkCase> cases;
  for (int id = 1; id <= 5; ++id) cases.push_back(make_iccad_case(id));
  return cases;
}

double problem2_pump_budget(const BenchmarkCase& bench) {
  return 1e-3 * bench.problem.total_power();
}

}  // namespace lcn
