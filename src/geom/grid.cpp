#include "geom/grid.hpp"

#include <algorithm>

namespace lcn {

const char* side_name(Side side) {
  switch (side) {
    case Side::kWest: return "W";
    case Side::kEast: return "E";
    case Side::kNorth: return "N";
    case Side::kSouth: return "S";
  }
  return "?";
}

Side opposite(Side side) {
  switch (side) {
    case Side::kWest: return Side::kEast;
    case Side::kEast: return Side::kWest;
    case Side::kNorth: return Side::kSouth;
    case Side::kSouth: return Side::kNorth;
  }
  return Side::kWest;
}

Grid2D::Grid2D(int rows, int cols, double pitch)
    : rows_(rows), cols_(cols), pitch_(pitch) {
  LCN_REQUIRE(rows > 0 && cols > 0, "grid dimensions must be positive");
  LCN_REQUIRE(pitch > 0.0, "grid pitch must be positive");
}

bool Grid2D::on_side(int row, int col, Side side) const {
  LCN_REQUIRE(in_bounds(row, col), "on_side: cell out of bounds");
  switch (side) {
    case Side::kWest: return col == 0;
    case Side::kEast: return col == cols_ - 1;
    case Side::kNorth: return row == 0;
    case Side::kSouth: return row == rows_ - 1;
  }
  return false;
}

D4Transform::D4Transform(int code) : code_(code) {
  LCN_REQUIRE(code >= 0 && code < kCount, "D4 code must be in [0, 8)");
}

Grid2D D4Transform::transform_grid(const Grid2D& grid) const {
  if (code_ % 2 == 1) {
    return Grid2D(grid.cols(), grid.rows(), grid.pitch());
  }
  return grid;
}

CellCoord D4Transform::apply(const Grid2D& grid, CellCoord coord) const {
  LCN_REQUIRE(grid.in_bounds(coord.row, coord.col),
              "D4 apply: cell out of bounds");
  int rows = grid.rows();
  int cols = grid.cols();
  int r = coord.row;
  int c = coord.col;
  if (code_ >= 4) c = cols - 1 - c;  // horizontal mirror first
  const int k = code_ % 4;
  for (int i = 0; i < k; ++i) {
    // 90° clockwise: (r, c) in rows x cols -> (c, rows-1-r) in cols x rows.
    const int nr = c;
    const int nc = rows - 1 - r;
    r = nr;
    c = nc;
    std::swap(rows, cols);
  }
  return {r, c};
}

Side D4Transform::apply(Side side) const {
  Side s = side;
  if (code_ >= 4) {
    if (s == Side::kWest) s = Side::kEast;
    else if (s == Side::kEast) s = Side::kWest;
  }
  const int k = code_ % 4;
  for (int i = 0; i < k; ++i) {
    switch (s) {
      case Side::kNorth: s = Side::kEast; break;
      case Side::kEast: s = Side::kSouth; break;
      case Side::kSouth: s = Side::kWest; break;
      case Side::kWest: s = Side::kNorth; break;
    }
  }
  return s;
}

CellRect D4Transform::apply(const Grid2D& grid, const CellRect& rect) const {
  if (rect.empty()) return rect;
  const CellCoord a = apply(grid, CellCoord{rect.row0, rect.col0});
  const CellCoord b = apply(grid, CellCoord{rect.row1, rect.col1});
  return CellRect{std::min(a.row, b.row), std::min(a.col, b.col),
                  std::max(a.row, b.row), std::max(a.col, b.col)};
}

D4Transform D4Transform::inverse() const {
  if (code_ < 4) return D4Transform((4 - code_) % 4);
  return D4Transform(code_);  // reflections are involutions
}

}  // namespace lcn
