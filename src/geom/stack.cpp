#include "geom/stack.hpp"

#include "common/assert.hpp"

namespace lcn {

Stack& Stack::add_solid(std::string name, double thickness,
                        const SolidMaterial& material) {
  LCN_REQUIRE(thickness > 0.0, "layer thickness must be positive");
  layers_.push_back({LayerKind::kSolid, thickness, material, std::move(name),
                     -1, -1});
  return *this;
}

Stack& Stack::add_source(std::string name, double thickness,
                         const SolidMaterial& material) {
  LCN_REQUIRE(thickness > 0.0, "layer thickness must be positive");
  layers_.push_back({LayerKind::kSource, thickness, material, std::move(name),
                     source_count_++, -1});
  return *this;
}

Stack& Stack::add_channel(std::string name, double thickness,
                          const SolidMaterial& material) {
  LCN_REQUIRE(thickness > 0.0, "layer thickness must be positive");
  layers_.push_back({LayerKind::kChannel, thickness, material, std::move(name),
                     -1, channel_count_++});
  return *this;
}

std::vector<int> Stack::source_layers() const {
  std::vector<int> out;
  for (int i = 0; i < layer_count(); ++i) {
    if (layers_[static_cast<std::size_t>(i)].kind == LayerKind::kSource) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<int> Stack::channel_layers() const {
  std::vector<int> out;
  for (int i = 0; i < layer_count(); ++i) {
    if (layers_[static_cast<std::size_t>(i)].kind == LayerKind::kChannel) {
      out.push_back(i);
    }
  }
  return out;
}

double Stack::total_thickness() const {
  double sum = 0.0;
  for (const auto& layer : layers_) sum += layer.thickness;
  return sum;
}

void Stack::validate() const {
  LCN_REQUIRE(!layers_.empty(), "stack must have at least one layer");
  LCN_REQUIRE(source_count_ >= 1, "stack must have at least one source layer");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].kind != LayerKind::kChannel) continue;
    LCN_REQUIRE(i != 0 && i != layers_.size() - 1,
                "channel layer cannot be the top or bottom of the stack");
    LCN_REQUIRE(layers_[i - 1].kind != LayerKind::kChannel &&
                    layers_[i + 1].kind != LayerKind::kChannel,
                "two channel layers cannot be adjacent");
  }
}

Stack make_interlayer_stack(int dies, double channel_height,
                            const InterlayerStackOptions& opts) {
  LCN_REQUIRE(dies >= 1, "stack needs at least one die");
  LCN_REQUIRE(channel_height > 0.0, "channel height must be positive");
  Stack stack;
  for (int die = 0; die < dies; ++die) {
    const std::string suffix = std::to_string(die);
    stack.add_source("die" + suffix + ".active", opts.source_thickness,
                     opts.material);
    stack.add_solid("die" + suffix + ".bulk", opts.bulk_thickness,
                    opts.material);
    if (die + 1 < dies) {
      if (opts.bonding_thickness > 0.0) {
        stack.add_solid("bond" + suffix, opts.bonding_thickness,
                        opts.bonding_material);
      }
      stack.add_channel("channel" + suffix, channel_height, opts.material);
    }
  }
  stack.validate();
  return stack;
}

}  // namespace lcn
