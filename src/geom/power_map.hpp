// Per-cell heat dissipation of one source layer, rasterized from a
// rectangular-block floorplan (the granularity the thermal models consume).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/grid.hpp"

namespace lcn {

/// A floorplan unit: `watts` total power spread uniformly over `rect`.
struct PowerBlock {
  CellRect rect;
  double watts = 0.0;
};

class PowerMap {
 public:
  PowerMap() = default;
  /// Uniform map with the given total power.
  PowerMap(const Grid2D& grid, double total_watts);
  /// Rasterize a block list; overlapping blocks sum.
  PowerMap(const Grid2D& grid, const std::vector<PowerBlock>& blocks);

  const Grid2D& grid() const { return grid_; }
  double at(int row, int col) const { return watts_[grid_.index(row, col)]; }
  double& at(int row, int col) { return watts_[grid_.index(row, col)]; }
  const std::vector<double>& cells() const { return watts_; }

  double total() const;
  double max_cell() const;

  /// Rescale so total() == target (no-op target on an all-zero map throws).
  void scale_to(double target_watts);

  /// Map through a D4 symmetry (used when sweeping global flow directions:
  /// the network stays canonical and the world rotates instead).
  PowerMap transformed(const D4Transform& t) const;

 private:
  Grid2D grid_;
  std::vector<double> watts_;
};

struct SyntheticPowerOptions {
  int block_count = 24;          ///< random floorplan units
  double hotspot_fraction = 0.15;  ///< share of power in a few hot blocks
  int hotspot_count = 3;
  double background_fraction = 0.35;  ///< share spread uniformly
  /// 3x3 box-blur passes applied after rasterization. Real floorplans have
  /// no single-cell power spikes (heat spreads in the active layer); the
  /// blur keeps the map non-uniform at block scale but smooth at cell scale,
  /// matching the contest benchmarks' feasible ΔT* constraints.
  int smoothing_passes = 2;
};

/// Deterministic non-uniform power map with the requested total power.
/// Used to synthesize the ICCAD-2015-like benchmark floorplans (DESIGN.md §4).
PowerMap synthesize_power_map(const Grid2D& grid, double total_watts,
                              std::uint64_t seed,
                              const SyntheticPowerOptions& opts = {});

}  // namespace lcn
