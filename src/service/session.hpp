// Per-session state isolation (DESIGN.md §S22, layer 1 of the serving stack).
//
// A SessionContext bundles every piece of formerly process-wide mutable state
// one job needs: a counter shard, an optional private flow-plan cache, the
// cooperative cancellation flag, the job's fair share of the pool, and the
// progress sink streaming sa_iter events back to the submitting client. The
// scheduler installs the session's TaskContext on the runner thread for the
// job's whole lifetime; ThreadPool::parallel_for propagates it to every
// worker, so concurrent jobs never observe each other's state and results are
// bit-identical to running the same job alone in a fresh process.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/instrument.hpp"
#include "common/metrics.hpp"
#include "common/task_context.hpp"
#include "flow/flow_plan.hpp"

namespace lcn::service {

struct SessionConfig {
  std::string name;        ///< client-visible label, "" for anonymous
  std::uint64_t seed = 1;  ///< job rng seed (recorded in the manifest)
  int shares = 1;          ///< fair-share weight relative to other jobs
  /// Private flow-plan shard: plan_for misses analyze into the session's own
  /// cache instead of the shared one. Costs recomputation across sessions but
  /// guarantees a tenant's clear() never touches anyone else's entries.
  bool private_flow_plans = false;
};

/// All mutable state owned by one job, plus the TaskContext pointing into it.
/// The TaskContext's address is stable for the session's lifetime (the
/// scheduler hands it to pool threads), so SessionContext is neither copyable
/// nor movable.
class SessionContext {
 public:
  SessionContext(std::uint64_t id, SessionConfig config);
  SessionContext(const SessionContext&) = delete;
  SessionContext& operator=(const SessionContext&) = delete;

  std::uint64_t id() const { return id_; }
  const SessionConfig& config() const { return config_; }

  instrument::CounterShard& counters() { return counters_; }
  metrics::MetricShard& metrics() { return metrics_; }
  /// The session's private flow-plan shard, nullptr when it shares the
  /// process-wide cache.
  FlowPlanCache* flow_plans() { return flow_plans_.get(); }

  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Fair-share width granted by the scheduler; parallel_for calls under this
  /// session fan out over at most this many workers. 0 = whole pool.
  void set_pool_share(std::size_t width) {
    pool_share_.store(width, std::memory_order_relaxed);
  }
  std::size_t pool_share() const {
    return pool_share_.load(std::memory_order_relaxed);
  }

  /// Attach the progress stream BEFORE the job starts running; the sink must
  /// outlive the session (the server keeps connections alive until every job
  /// they stream for has finished).
  void set_progress_sink(ProgressSink* sink) { ctx_.progress = sink; }

  /// The context to install on threads executing this session's job.
  const TaskContext& task_context() const { return ctx_; }

  /// Session identity + process run manifest as one flat JSON object:
  /// {"session":3,"name":"...","seed":7,"shares":2,"git_sha":...}.
  std::string manifest_json() const;

 private:
  std::uint64_t id_;
  SessionConfig config_;
  instrument::CounterShard counters_;
  metrics::MetricShard metrics_;
  std::unique_ptr<FlowPlanCache> flow_plans_;
  std::atomic<bool> cancel_{false};
  std::atomic<std::size_t> pool_share_{0};
  TaskContext ctx_;
};

/// Install a session's TaskContext on the current thread for the scope.
class SessionScope {
 public:
  explicit SessionScope(const SessionContext& session)
      : inner_(&session.task_context()) {}

 private:
  ScopedTaskContext inner_;
};

}  // namespace lcn::service
