#include "service/protocol.hpp"

#include "common/manifest.hpp"
#include "common/strings.hpp"
#include "service/json.hpp"

namespace lcn::service {

namespace {

bool parse_submit(const JsonObject& obj, JobRequest& job, std::string& error) {
  const std::string kind = obj.get_string("kind", "evaluate");
  if (kind == "design") {
    job.kind = JobKind::kDesign;
  } else if (kind == "evaluate") {
    job.kind = JobKind::kEvaluate;
  } else if (kind == "sweep") {
    job.kind = JobKind::kSweep;
  } else if (kind == "scenario") {
    job.kind = JobKind::kScenario;
    // The NDJSON scenario description travels as one escaped string; it is
    // parsed (and validated) when the job runs.
    job.scenario_text = obj.get_string("scenario");
    if (job.scenario_text.empty()) {
      error = "scenario jobs need a non-empty 'scenario' description";
      return false;
    }
  } else {
    error = strfmt("unknown kind '%s'", kind.c_str());
    return false;
  }
  job.name = obj.get_string("name");
  job.case_id = static_cast<int>(obj.get_int("case", 2));
  if (job.case_id < 1 || job.case_id > 5) {
    error = "case must be 1..5";
    return false;
  }
  const std::string objective = obj.get_string("objective", "p1");
  if (objective == "p1") {
    job.objective = DesignObjective::kPumpingPower;
  } else if (objective == "p2") {
    job.objective = DesignObjective::kThermalGradient;
  } else {
    error = strfmt("unknown objective '%s'", objective.c_str());
    return false;
  }
  job.scale = obj.get_number("scale", job.scale);
  if (job.scale <= 0.0) {
    error = "scale must be positive";
    return false;
  }
  // Seeds are part of the reproducibility contract (the manifest records the
  // exact value), so they must not round through the parsed double.
  switch (obj.get_uint64("seed", job.seed)) {
    case JsonObject::IntStatus::kMissing: job.seed = 1; break;
    case JsonObject::IntStatus::kOk: break;
    case JsonObject::IntStatus::kBad:
      error = "seed must be a non-negative integer below 2^64";
      return false;
  }
  job.b1 = static_cast<int>(obj.get_int("b1", -1));
  job.b2 = static_cast<int>(obj.get_int("b2", -1));
  job.direction = static_cast<int>(obj.get_int("direction", 0));
  if (job.direction < 0 || job.direction > 7) {
    error = "direction must be 0..7";
    return false;
  }
  const std::string model = obj.get_string("model", "2rm");
  if (model == "2rm") {
    job.sim = SimConfig{ThermalModelKind::k2RM,
                        static_cast<int>(obj.get_int("cell", 4))};
  } else if (model == "4rm") {
    job.sim = SimConfig{ThermalModelKind::k4RM, 1};
  } else {
    error = strfmt("unknown model '%s'", model.c_str());
    return false;
  }
  job.scenarios = static_cast<int>(obj.get_int("scenarios", job.scenarios));
  if (job.scenarios < 0) {
    error = "scenarios must be non-negative";
    return false;
  }
  job.shares = static_cast<int>(obj.get_int("shares", 0));
  job.priority = static_cast<int>(obj.get_int("priority", 0));
  job.timeout_seconds = obj.get_number("timeout", 0.0);
  job.private_flow_plans = obj.get_bool("private_flow_plans", false);
  return true;
}

}  // namespace

bool parse_request(const std::string& line, Request& out, std::string& error) {
  out = Request{};
  JsonObject obj;
  if (!parse_json_object(line, obj, error)) return false;
  const std::string op = obj.get_string("op");
  if (op == "submit") {
    out.op = Request::Op::kSubmit;
    out.stream = obj.get_bool("stream", false);
    return parse_submit(obj, out.job, error);
  }
  if (op == "status" || op == "result" || op == "cancel") {
    out.op = op == "status"  ? Request::Op::kStatus
             : op == "result" ? Request::Op::kResult
                              : Request::Op::kCancel;
    std::uint64_t id = 0;
    if (obj.get_uint64("job", id) != JsonObject::IntStatus::kOk || id == 0) {
      error = "missing or invalid 'job'";
      return false;
    }
    out.job_id = id;
    return true;
  }
  if (op == "list") {
    out.op = Request::Op::kList;
    return true;
  }
  if (op == "ping") {
    out.op = Request::Op::kPing;
    return true;
  }
  if (op == "metrics") {
    out.op = Request::Op::kMetrics;
    return true;
  }
  if (op == "shutdown") {
    out.op = Request::Op::kShutdown;
    return true;
  }
  error = op.empty() ? "missing 'op'" : strfmt("unknown op '%s'", op.c_str());
  return false;
}

std::string error_json(const std::string& message) {
  return strfmt("{\"ok\":false,\"error\":\"%s\"}",
                json_escape(message).c_str());
}

std::string submit_ack_json(std::uint64_t id) {
  return strfmt("{\"ok\":true,\"job\":%llu,\"status\":\"queued\"}",
                static_cast<unsigned long long>(id));
}

std::string status_json(std::uint64_t id, JobStatus status) {
  return strfmt("{\"ok\":true,\"job\":%llu,\"status\":\"%s\"}",
                static_cast<unsigned long long>(id), job_status_name(status));
}

std::string result_json(std::uint64_t id, const JobResult& result) {
  std::string out = strfmt(
      "{\"ok\":true,\"job\":%llu,\"status\":\"%s\"",
      static_cast<unsigned long long>(id), job_status_name(result.status));
  if (!result.error.empty()) {
    out += strfmt(",\"error\":\"%s\"", json_escape(result.error).c_str());
  }
  if (result.status == JobStatus::kDone) {
    out += strfmt(
        ",\"feasible\":%s,\"score\":%.17g,\"p_sys\":%.17g,\"w_pump\":%.17g,"
        "\"t_max\":%.17g,\"delta_t\":%.17g,\"direction\":%d,"
        "\"design_hash\":\"%016llx\",\"evaluations\":%zu",
        result.feasible ? "true" : "false", result.score, result.p_sys,
        result.w_pump, result.t_max, result.delta_t, result.direction,
        static_cast<unsigned long long>(result.design_hash),
        result.evaluations);
    if (!result.network_text.empty()) {
      out += strfmt(",\"network\":\"%s\"",
                    json_escape(result.network_text).c_str());
    }
    if (result.scenarios > 0) {
      out += strfmt(
          ",\"scenarios\":%zu,\"p_exceed_t_max\":%.17g,"
          "\"p_exceed_delta_t\":%.17g,\"unrecoverable\":%zu",
          result.scenarios, result.p_exceed_t_max, result.p_exceed_delta_t,
          result.unrecoverable);
    }
    if (result.scenario_steps > 0) {
      out += strfmt(
          ",\"scenario_steps\":%zu,\"peak_t_max\":%.17g,"
          "\"peak_delta_t\":%.17g,\"final_inlet\":%.17g",
          result.scenario_steps, result.peak_t_max, result.peak_delta_t,
          result.final_inlet);
    }
  }
  out += strfmt(",\"seconds\":%.6f,\"start_order\":%llu", result.seconds,
                static_cast<unsigned long long>(result.start_order));
  out += ",\"counters\":" + result.counters.json();
  out += ",\"metrics\":" + result.metrics.json();
  if (!result.manifest.empty()) out += ",\"manifest\":" + result.manifest;
  out += '}';
  return out;
}

std::string metrics_json(const metrics::MetricsSnapshot& metrics,
                         const instrument::Snapshot& counters) {
  std::string out = "{\"ok\":true,\"metrics\":" + metrics.json();
  out += ",\"counters\":" + counters.json();
  out += ",\"manifest\":" + run_manifest().json();
  out += '}';
  return out;
}

std::string job_list_json(const std::vector<Scheduler::JobInfo>& jobs) {
  std::string out = "{\"ok\":true,\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i != 0) out += ',';
    out += strfmt("{\"job\":%llu,\"kind\":\"%s\",\"status\":\"%s\","
                  "\"name\":\"%s\"}",
                  static_cast<unsigned long long>(jobs[i].id),
                  job_kind_name(jobs[i].kind), job_status_name(jobs[i].status),
                  json_escape(jobs[i].name).c_str());
  }
  out += "]}";
  return out;
}

std::string event_json(const char* name, std::uint64_t job_id,
                       const char* args) {
  std::string out = strfmt("{\"event\":\"%s\",\"job\":%llu", name,
                           static_cast<unsigned long long>(job_id));
  if (args != nullptr && args[0] != '\0') {
    out += ",\"args\":{";
    out += args;
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace lcn::service
