// Newline-delimited JSON wire protocol for lcn_serve (DESIGN.md §S22).
//
// Requests are flat JSON objects, one per line:
//   {"op":"submit","kind":"design","case":2,"objective":"p1","scale":0.05,
//    "seed":7,"shares":2,"priority":0,"timeout":30,"stream":true}
//   {"op":"status","job":3}   {"op":"result","job":3}   {"op":"cancel","job":3}
//   {"op":"list"}   {"op":"ping"}   {"op":"metrics"}   {"op":"shutdown"}
//
// Responses are one JSON object per line with "ok":true|false. A streaming
// submit additionally receives "event" lines ({"event":"sa_iter",...},
// {"event":"job_done",...}) interleaved on the same connection.
#pragma once

#include <cstdint>
#include <string>

#include "service/scheduler.hpp"

namespace lcn::service {

struct Request {
  enum class Op : std::uint8_t {
    kSubmit = 0,
    kStatus = 1,
    kResult = 2,
    kCancel = 3,
    kList = 4,
    kPing = 5,
    kShutdown = 6,
    kMetrics = 7
  };

  Op op = Op::kPing;
  JobRequest job;           ///< kSubmit payload
  bool stream = false;      ///< kSubmit: stream progress events
  std::uint64_t job_id = 0; ///< kStatus / kResult / kCancel target
};

/// Parse one request line. Returns false with `error` set on malformed JSON,
/// unknown op, or out-of-range fields.
bool parse_request(const std::string& line, Request& out, std::string& error);

/// {"ok":false,"error":"..."}
std::string error_json(const std::string& message);

/// {"ok":true,"job":N,"status":"queued"} — submit acknowledgment.
std::string submit_ack_json(std::uint64_t id);

/// {"ok":true,"job":N,"status":"..."}
std::string status_json(std::uint64_t id, JobStatus status);

/// Full result object: scores, sweep stats, per-session counters and the
/// session manifest as nested objects.
std::string result_json(std::uint64_t id, const JobResult& result);

/// {"ok":true,"jobs":[{"job":1,"kind":"design","status":"running",...},...]}
/// (the one response with a nested array; clients treat it as opaque JSON).
std::string job_list_json(const std::vector<Scheduler::JobInfo>& jobs);

/// {"event":"<name>","job":N,<args>} — progress stream line.
std::string event_json(const char* name, std::uint64_t job_id,
                       const char* args);

/// {"ok":true,"metrics":{...},"counters":{...},"manifest":{...}} — the
/// process-wide metrics registry (§S24), instrument counters and run
/// manifest as one snapshot line for the `metrics` op.
std::string metrics_json(const metrics::MetricsSnapshot& metrics,
                         const instrument::Snapshot& counters);

}  // namespace lcn::service
