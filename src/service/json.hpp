// Minimal JSON support for the serving wire protocol (DESIGN.md §S22).
//
// The daemon speaks newline-delimited JSON; requests are *flat* objects
// (strings, numbers, booleans, null — no nested containers), which keeps the
// parser a few dozen lines of dependency-free code. Responses are emitted
// with strfmt plus json_escape; nested response fields (counters, manifests)
// are composed from fragments that are already valid JSON.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace lcn::service {

/// Escape a string for embedding inside a JSON string literal (quotes not
/// included): ", \, control characters -> \uXXXX.
std::string json_escape(const std::string& text);

/// A parsed flat JSON object. Typed accessors fall back to the provided
/// default when the field is absent; a field parsed as the wrong type simply
/// misses (requests treat that as "use the default").
struct JsonObject {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
  /// Raw source text of each number, keyed like `numbers`. Doubles only
  /// round-trip integers up to 2^53, so exact integer fields (seeds, job
  /// ids) re-parse from here instead of casting the double.
  std::map<std::string, std::string> number_tokens;
  std::map<std::string, bool> bools;

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_number(const std::string& key, double fallback = 0.0) const;
  long get_int(const std::string& key, long fallback = 0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  enum class IntStatus {
    kMissing,  ///< field absent (caller applies its default)
    kOk,       ///< out holds the exact value
    kBad       ///< present but negative, fractional, or > UINT64_MAX
  };
  /// Exact unsigned 64-bit integer parsed from the raw token.
  IntStatus get_uint64(const std::string& key, std::uint64_t& out) const;
};

/// Parse one flat JSON object. Returns false (with `error` set) on malformed
/// input or nested containers. Duplicate keys keep the last value.
bool parse_json_object(const std::string& text, JsonObject& out,
                       std::string& error);

}  // namespace lcn::service
