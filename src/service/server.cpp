#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "common/instrument.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "service/protocol.hpp"

namespace lcn::service {

namespace {

constexpr const char* kDefaultAddress = "tcp:127.0.0.1:7733";

struct ParsedAddress {
  bool is_unix = false;
  std::string path;  ///< unix
  std::string host;  ///< tcp
  int port = 0;      ///< tcp
};

ParsedAddress parse_address(const std::string& address) {
  ParsedAddress out;
  if (address.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = address.substr(5);
    if (out.path.empty()) {
      throw RuntimeError("serve address: empty unix socket path");
    }
    return out;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw RuntimeError(
          strfmt("serve address '%s': expected tcp:host:port",
                 address.c_str()));
    }
    out.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const long value = std::strtol(port.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value < 0 || value > 65535) {
      throw RuntimeError(
          strfmt("serve address '%s': bad port '%s'", address.c_str(),
                 port.c_str()));
    }
    out.port = static_cast<int>(value);
    return out;
  }
  throw RuntimeError(strfmt(
      "serve address '%s': expected unix:<path> or tcp:<host>:<port>",
      address.c_str()));
}

/// Minimal HTTP/1.0 response framing for the Prometheus scrape: respond,
/// then close (the NDJSON reader never parses request headers, so the
/// connection cannot be reused for protocol traffic afterwards).
std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = strfmt(
      "HTTP/1.0 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status, reason, content_type, body.size());
  out += body;
  return out;
}

}  // namespace

/// One client connection. Writes are serialized by `write_mutex` so response
/// lines and progress events from pool threads never interleave mid-line.
struct Server::Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> closed{false};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    write_raw(framed);
  }

  /// Unframed write (the HTTP exposition path frames itself with headers).
  void write_raw(const std::string& data_str) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (closed.load(std::memory_order_relaxed)) return;
    const char* data = data_str.data();
    std::size_t remaining = data_str.size();
    while (remaining > 0) {
      // MSG_NOSIGNAL: a vanished client surfaces as EPIPE, not SIGPIPE.
      const ssize_t n =
          ::send(fd, data, remaining, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        closed.store(true, std::memory_order_relaxed);
        return;
      }
      data += n;
      remaining -= static_cast<std::size_t>(n);
    }
  }

  void shutdown_both() {
    std::lock_guard<std::mutex> lock(write_mutex);
    closed.store(true, std::memory_order_relaxed);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

  /// Close the fd eagerly (reader-thread exit). Sinks may still hold the
  /// Connection, but their writes see `closed` and drop; without this the
  /// socket would sit in CLOSE_WAIT until the whole Server died.
  void close_now() {
    std::lock_guard<std::mutex> lock(write_mutex);
    closed.store(true, std::memory_order_relaxed);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

/// ProgressSink bridging one streaming job to its client connection. Owned
/// by the server (not the connection): a job may outlive its client, in
/// which case emits land on a closed connection and are dropped.
class Server::StreamSink : public ProgressSink {
 public:
  StreamSink(std::shared_ptr<Connection> conn, Scheduler* scheduler)
      : conn_(std::move(conn)), scheduler_(scheduler) {}

  void bind_job(std::uint64_t job_id) override {
    job_id_.store(job_id, std::memory_order_relaxed);
  }

  void emit(const char* name, const char* args) override {
    const std::uint64_t id = job_id_.load(std::memory_order_relaxed);
    conn_->write_line(event_json(name, id, args));
    if (std::strcmp(name, "job_done") == 0) {
      // The scheduler stores the final result before emitting job_done, so
      // this read observes the terminal state.
      conn_->write_line(result_json(id, scheduler_->result(id)));
      // Last action on purpose: once this store is visible the server's
      // reaper may delete the sink, so `this` must not be touched again.
      finished_.store(true, std::memory_order_release);
    }
  }

  /// True once the final result line has been delivered; the sink is then
  /// garbage-collectable.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

 private:
  std::shared_ptr<Connection> conn_;
  Scheduler* scheduler_;
  std::atomic<std::uint64_t> job_id_{0};
  std::atomic<bool> finished_{false};
};

Server::Server(ServerOptions options)
    : scheduler_(Scheduler::Options{options.max_running}) {
  std::string address = options.address;
  if (address.empty()) {
    address = env_string("LCN_SERVE_ADDR", kDefaultAddress);
  }
  const ParsedAddress parsed = parse_address(address);

  if (parsed.is_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (parsed.path.size() >= sizeof(addr.sun_path)) {
      throw RuntimeError(strfmt("serve address: unix path too long (%zu)",
                                parsed.path.size()));
    }
    std::strncpy(addr.sun_path, parsed.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw RuntimeError("serve: socket() failed");
    ::unlink(parsed.path.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw RuntimeError(strfmt("serve: bind(%s) failed: %s",
                                parsed.path.c_str(), std::strerror(err)));
    }
    unix_path_ = parsed.path;
    address_ = address;
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(parsed.port));
    if (::inet_pton(AF_INET, parsed.host.c_str(), &addr.sin_addr) != 1) {
      throw RuntimeError(
          strfmt("serve: bad tcp host '%s' (dotted quad required)",
                 parsed.host.c_str()));
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw RuntimeError("serve: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw RuntimeError(strfmt("serve: bind(%s:%d) failed: %s",
                                parsed.host.c_str(), parsed.port,
                                std::strerror(err)));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    address_ = strfmt("tcp:%s:%d", parsed.host.c_str(),
                      static_cast<int>(ntohs(bound.sin_port)));
  }

  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw RuntimeError(strfmt("serve: listen failed: %s",
                              std::strerror(err)));
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  // Connections may still have reader threads if run() never executed or
  // was interrupted; make sure they can exit before joining.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& conn : connections_) conn->shutdown_both();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void Server::run() {
  LCN_INFO() << "lcn_serve listening on " << address_;
  while (!shutdown_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    {
      // Piggyback housekeeping on the poll tick: join readers whose client
      // vanished and drop sinks whose job has delivered its final event, so
      // a long-lived daemon does not accumulate one fd + thread + sink per
      // connection served.
      std::lock_guard<std::mutex> lock(mutex_);
      reap_locked();
    }
    if (ready <= 0) continue;  // timeout, EINTR (signal), or spurious wake
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Bound blocking sends: a client that stops reading must not be able to
    // wedge a progress emit (and with it shutdown) forever — after the
    // timeout write_line marks the connection closed and drops output.
    timeval send_timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    metrics::gauge_add(metrics::Gauge::client_connections, 1);
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.push_back(conn);
    threads_.emplace_back([this, conn] {
      serve_connection(conn);
      conn->close_now();
      metrics::gauge_add(metrics::Gauge::client_connections, -1);
      std::lock_guard<std::mutex> cleanup_lock(mutex_);
      connections_.erase(
          std::remove(connections_.begin(), connections_.end(), conn),
          connections_.end());
      // The accept loop (or shutdown) joins us via this id; pushing it is
      // the thread's last locked action.
      finished_threads_.push_back(std::this_thread::get_id());
    });
  }

  LCN_INFO() << "lcn_serve draining";
  // Let every accepted job finish; streaming clients still receive their
  // final result lines through the sinks during the drain.
  scheduler_.drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& conn : connections_) conn->shutdown_both();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  finished_threads_.clear();
  LCN_INFO() << "lcn_serve stopped";
}

void Server::reap_locked() {
  for (const std::thread::id id : finished_threads_) {
    for (auto it = threads_.begin(); it != threads_.end(); ++it) {
      if (it->get_id() == id) {
        // The thread recorded its id as its final locked action, so this
        // join only waits for the lambda frame to unwind — no deadlock.
        it->join();
        threads_.erase(it);
        break;
      }
    }
  }
  finished_threads_.clear();
  for (auto it = sinks_.begin(); it != sinks_.end();) {
    it = it->second->finished() ? sinks_.erase(it) : std::next(it);
  }
}

void Server::serve_connection(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  while (!conn->closed.load(std::memory_order_relaxed)) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n == 0) break;  // client closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!handle_line(conn, line)) {
        conn->shutdown_both();
        break;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > (1u << 20)) {
      conn->write_line(error_json("request line too long"));
      break;
    }
  }
}

bool Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  // Prometheus co-hosting: an HTTP GET on the NDJSON socket is answered
  // with one text-exposition page (format 0.0.4) and the connection closes
  // (HTTP/1.0 style; the reader never parses the request headers).
  if (line.rfind("GET ", 0) == 0) {
    std::string path = line.substr(4);
    const std::size_t space = path.find(' ');
    if (space != std::string::npos) path.resize(space);
    if (path == "/metrics") {
      metrics::count(metrics::Counter::metrics_scrapes);
      const std::string body = metrics::prometheus_text(
          metrics::global_shard().snapshot(), instrument::snapshot(),
          metrics::manifest_labels());
      conn->write_raw(http_response(
          200, "OK", "text/plain; version=0.0.4; charset=utf-8", body));
    } else {
      conn->write_raw(http_response(404, "Not Found", "text/plain",
                                    "only /metrics is served\n"));
    }
    return false;
  }

  Request request;
  std::string parse_error;
  if (!parse_request(line, request, parse_error)) {
    conn->write_line(error_json(parse_error));
    return true;  // malformed request, healthy connection
  }

  switch (request.op) {
    case Request::Op::kSubmit: {
      StreamSink* sink = nullptr;
      std::unique_ptr<StreamSink> owned;
      if (request.stream) {
        owned = std::make_unique<StreamSink>(conn, &scheduler_);
        sink = owned.get();
      }
      const std::uint64_t id = scheduler_.submit(request.job, sink);
      if (id == 0) {
        conn->write_line(error_json("server is draining"));
        return true;
      }
      if (owned != nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        sinks_.emplace(id, std::move(owned));
      }
      conn->write_line(submit_ack_json(id));
      return true;
    }
    case Request::Op::kStatus:
      conn->write_line(
          status_json(request.job_id, scheduler_.status(request.job_id)));
      return true;
    case Request::Op::kResult:
      conn->write_line(
          result_json(request.job_id, scheduler_.result(request.job_id)));
      return true;
    case Request::Op::kCancel: {
      const bool ok = scheduler_.cancel(request.job_id);
      if (ok) {
        conn->write_line(strfmt(
            "{\"ok\":true,\"job\":%llu,\"status\":\"cancelling\"}",
            static_cast<unsigned long long>(request.job_id)));
      } else {
        conn->write_line(error_json("unknown or already finished job"));
      }
      return true;
    }
    case Request::Op::kList:
      conn->write_line(job_list_json(scheduler_.jobs()));
      return true;
    case Request::Op::kPing:
      conn->write_line("{\"ok\":true}");
      return true;
    case Request::Op::kMetrics:
      metrics::count(metrics::Counter::metrics_scrapes);
      conn->write_line(metrics_json(metrics::global_shard().snapshot(),
                                    instrument::snapshot()));
      return true;
    case Request::Op::kShutdown:
      conn->write_line("{\"ok\":true,\"draining\":true}");
      request_shutdown();
      return true;
  }
  return true;
}

}  // namespace lcn::service
