// Fair-share job scheduler (DESIGN.md §S22, layer 2 of the serving stack).
//
// Jobs (design / evaluate / sweep / scenario) are queued with a priority and a
// fair-share weight. A small set of runner threads executes one job each;
// every running job gets a SessionContext whose pool_share is
// max(1, W * weight / total_weight) of the LCN_THREADS pool width, recomputed
// whenever a job starts or finishes, so a long design run cannot starve a
// short evaluate job of pool workers — parallel_for fans each job out over at
// most its share. Cancellation and deadlines are cooperative: the watchdog
// raises the session's cancel flag and the job unwinds at its next
// cancellation point with lcn::Cancelled.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/instrument.hpp"
#include "common/task_context.hpp"
#include "opt/sa.hpp"
#include "scenario/scenario.hpp"
#include "service/session.hpp"

namespace lcn::service {

enum class JobKind : std::uint8_t {
  kDesign = 0,   ///< full staged-SA topology design (Algorithm 1)
  kEvaluate = 1, ///< score one uniform-tree layout (DRC + flow + thermal)
  kSweep = 2,    ///< Monte-Carlo degradation sweep of a layout
  kScenario = 3  ///< dynamic-scenario co-simulation of a layout (§S23)
};

const char* job_kind_name(JobKind kind);

enum class JobStatus : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4
};

const char* job_status_name(JobStatus status);
bool job_status_terminal(JobStatus status);

struct JobRequest {
  JobKind kind = JobKind::kEvaluate;
  std::string name;  ///< client label, echoed in status and manifests
  int case_id = 2;   ///< ICCAD case 1..5
  DesignObjective objective = DesignObjective::kPumpingPower;
  double scale = 0.05;     ///< design: SA schedule scale
  std::uint64_t seed = 1;  ///< design SA / sweep scenario seed
  /// Evaluate/sweep: uniform-tree branch columns; -1 picks the canonical
  /// cols/3 and 2*cols/3 (rounded even) used by the SA's initial layout.
  int b1 = -1;
  int b2 = -1;
  int direction = 0;  ///< D4 transform code of the evaluated layout
  SimConfig sim{ThermalModelKind::k2RM, 4};  ///< evaluate/sweep model
  int scenarios = 32;  ///< sweep: Monte-Carlo scenario count
  /// Scenario jobs: the NDJSON scenario description (scenario_io.hpp). Wire
  /// clients pass it as one escaped string; parsed when the job runs.
  std::string scenario_text;
  /// Fair-share weight; 0 resolves to LCN_JOB_SHARES (default 1).
  int shares = 0;
  int priority = 0;  ///< higher runs first among queued jobs
  /// Wall-clock deadline; <= 0 means none. Expiry cancels the job (status
  /// kCancelled, error "deadline exceeded").
  double timeout_seconds = 0.0;
  /// Give the session its own flow-plan cache shard instead of the shared
  /// process-wide one (satellite: per-session plan ownership).
  bool private_flow_plans = false;

  // In-process embedding hooks (tests, benches). Not reachable from the wire
  // protocol: clients always run the published ICCAD cases and schedules.
  /// Run against this case instead of make_iccad_case(case_id).
  std::shared_ptr<const BenchmarkCase> custom_case;
  /// Design jobs: use this schedule instead of the scale-derived default.
  std::vector<SaStage> custom_stages;
  /// Scenario jobs: use this config instead of parsing scenario_text.
  std::shared_ptr<const ScenarioConfig> custom_scenario;
};

struct JobResult {
  JobStatus status = JobStatus::kQueued;
  std::string error;  ///< failure / cancellation reason, "" when kDone

  bool feasible = false;
  double score = 0.0;
  double p_sys = 0.0;    ///< Pa
  double w_pump = 0.0;   ///< W
  double t_max = 0.0;    ///< K
  double delta_t = 0.0;  ///< K
  int direction = 0;
  std::uint64_t design_hash = 0;  ///< CoolingNetwork::content_hash()
  std::string network_text;       ///< design jobs: the winning network
  std::size_t evaluations = 0;

  // Sweep reductions (kSweep only).
  double p_exceed_t_max = 0.0;
  double p_exceed_delta_t = 0.0;
  std::size_t scenarios = 0;
  std::size_t unrecoverable = 0;

  // Scenario trajectory reductions (kScenario only).
  double peak_t_max = 0.0;
  double peak_delta_t = 0.0;
  double final_inlet = 0.0;
  std::size_t scenario_steps = 0;

  double seconds = 0.0;
  /// 1-based order in which the scheduler started jobs (tests use it to
  /// prove concurrency without relying on wall clocks).
  std::uint64_t start_order = 0;
  instrument::Snapshot counters;     ///< the session shard at completion
  metrics::MetricsSnapshot metrics;  ///< the session metric shard (§S24)
  std::string manifest;              ///< SessionContext::manifest_json()
};

class Scheduler {
 public:
  struct Options {
    /// Jobs running concurrently; 0 resolves to min(4, hardware threads,
    /// pool width) but never below 2 — fair-share needs at least two lanes.
    std::size_t max_running = 0;
  };

  Scheduler() : Scheduler(Options{}) {}
  explicit Scheduler(Options options);
  /// Cancels everything still queued or running, then joins the runners.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Queue a job. `sink` (optional) streams the job's sa_iter progress and
  /// lifecycle events; it must stay alive until the job reaches a terminal
  /// status. Returns the job id, or 0 when the scheduler is draining.
  std::uint64_t submit(JobRequest request, ProgressSink* sink = nullptr);

  /// Cancel a job: a queued job completes immediately as kCancelled, a
  /// running one unwinds at its next cancellation point. False for unknown
  /// or already-terminal ids.
  bool cancel(std::uint64_t id);

  JobStatus status(std::uint64_t id) const;

  /// Snapshot of a job's result; meaningful once terminal (status() tells).
  JobResult result(std::uint64_t id) const;

  /// Block until the job is terminal and return its result.
  JobResult wait(std::uint64_t id);

  struct JobInfo {
    std::uint64_t id = 0;
    JobKind kind = JobKind::kEvaluate;
    JobStatus status = JobStatus::kQueued;
    std::string name;
  };
  std::vector<JobInfo> jobs() const;

  /// Stop accepting new jobs and block until every submitted job is
  /// terminal (running jobs finish normally; nothing is cancelled).
  void drain();

  std::size_t max_running() const { return max_running_; }

 private:
  struct Job;

  void runner_loop();
  void watchdog_loop();
  Job* find_locked(std::uint64_t id) const;
  /// Recompute every running job's pool share from the live weight total.
  void rebalance_locked();
  /// Publish queue depth / running jobs to the metrics gauges (§S24).
  void publish_gauges_locked() const;
  /// Retire the oldest terminal jobs once the history exceeds the retention
  /// cap, so a long-lived daemon's job map stays bounded.
  void gc_terminal_locked();
  void execute(Job& job);

  std::size_t max_running_ = 2;
  std::size_t pool_width_ = 1;
  std::size_t retain_jobs_ = 1024;  ///< LCN_JOB_HISTORY
  double slo_seconds_ = 0.0;        ///< LCN_SLO_SECONDS (0 = no SLO)

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;      ///< runners: queue or stop changed
  std::condition_variable done_cv_;      ///< waiters: some job became terminal
  std::condition_variable watchdog_cv_;  ///< watchdog: dedicated wakeup so it
                                         ///< never consumes a runner's notify
  bool stop_ = false;
  bool accepting_ = true;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_start_order_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::vector<std::uint64_t> queue_;  ///< queued ids, submission order
  std::size_t running_count_ = 0;

  std::vector<std::thread> runners_;
  std::thread watchdog_;
};

}  // namespace lcn::service
