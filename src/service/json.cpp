#include "service/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace lcn::service {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool JsonObject::has(const std::string& key) const {
  return strings.count(key) != 0 || numbers.count(key) != 0 ||
         bools.count(key) != 0;
}

std::string JsonObject::get_string(const std::string& key,
                                   const std::string& fallback) const {
  const auto it = strings.find(key);
  return it != strings.end() ? it->second : fallback;
}

double JsonObject::get_number(const std::string& key, double fallback) const {
  const auto it = numbers.find(key);
  return it != numbers.end() ? it->second : fallback;
}

long JsonObject::get_int(const std::string& key, long fallback) const {
  const auto it = numbers.find(key);
  return it != numbers.end() ? static_cast<long>(it->second) : fallback;
}

bool JsonObject::get_bool(const std::string& key, bool fallback) const {
  const auto it = bools.find(key);
  return it != bools.end() ? it->second : fallback;
}

JsonObject::IntStatus JsonObject::get_uint64(const std::string& key,
                                             std::uint64_t& out) const {
  const auto it = number_tokens.find(key);
  if (it == number_tokens.end()) return IntStatus::kMissing;
  const std::string& token = it->second;
  std::size_t start = 0;
  if (start < token.size() && token[start] == '+') ++start;
  if (start >= token.size()) return IntStatus::kBad;
  for (std::size_t i = start; i < token.size(); ++i) {
    // Rejects '-', '.', and exponents: negative seeds must not wrap and
    // fractional values must not silently truncate.
    if (token[i] < '0' || token[i] > '9') return IntStatus::kBad;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(token.c_str() + start, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    return IntStatus::kBad;
  }
  out = static_cast<std::uint64_t>(value);
  return IntStatus::kOk;
}

namespace {

/// Cursor over the request line; all helpers leave `i` on the first
/// unconsumed character.
struct Cursor {
  const std::string& text;
  std::size_t i = 0;

  void skip_ws() {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  }
  bool done() const { return i >= text.size(); }
  char peek() const { return i < text.size() ? text[i] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++i;
    return true;
  }
};

bool parse_string(Cursor& cur, std::string& out, std::string& error) {
  if (!cur.consume('"')) {
    error = "expected string";
    return false;
  }
  out.clear();
  while (!cur.done()) {
    const char c = cur.text[cur.i++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (cur.done()) break;
    const char esc = cur.text[cur.i++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (cur.i + 4 > cur.text.size()) {
          error = "truncated \\u escape";
          return false;
        }
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = cur.text[cur.i++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else {
            error = "bad \\u escape";
            return false;
          }
        }
        // UTF-8 encode (basic multilingual plane only; surrogate pairs are
        // not needed by the protocol and decode as two replacement-free
        // 3-byte sequences, which round-trips for our ASCII-heavy payloads).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        error = strfmt("bad escape '\\%c'", esc);
        return false;
    }
  }
  error = "unterminated string";
  return false;
}

bool parse_number(Cursor& cur, double& out, std::string& error) {
  const std::size_t start = cur.i;
  if (cur.peek() == '-' || cur.peek() == '+') ++cur.i;
  while (!cur.done()) {
    const char c = cur.peek();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == 'e' ||
        c == 'E' || c == '-' || c == '+') {
      ++cur.i;
    } else {
      break;
    }
  }
  if (cur.i == start) {
    error = "expected number";
    return false;
  }
  const std::string token = cur.text.substr(start, cur.i - start);
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    error = strfmt("bad number '%s'", token.c_str());
    return false;
  }
  return true;
}

bool parse_literal(Cursor& cur, const char* literal, std::string& error) {
  for (const char* p = literal; *p != '\0'; ++p) {
    if (!cur.consume(*p)) {
      error = strfmt("expected '%s'", literal);
      return false;
    }
  }
  return true;
}

}  // namespace

bool parse_json_object(const std::string& text, JsonObject& out,
                       std::string& error) {
  out = JsonObject{};
  Cursor cur{text};
  cur.skip_ws();
  if (!cur.consume('{')) {
    error = "expected '{'";
    return false;
  }
  cur.skip_ws();
  if (cur.consume('}')) {
    cur.skip_ws();
    if (!cur.done()) {
      error = "trailing characters after object";
      return false;
    }
    return true;
  }
  while (true) {
    cur.skip_ws();
    std::string key;
    if (!parse_string(cur, key, error)) return false;
    cur.skip_ws();
    if (!cur.consume(':')) {
      error = "expected ':'";
      return false;
    }
    cur.skip_ws();
    const char c = cur.peek();
    if (c == '"') {
      std::string value;
      if (!parse_string(cur, value, error)) return false;
      out.strings[key] = value;
    } else if (c == 't') {
      if (!parse_literal(cur, "true", error)) return false;
      out.bools[key] = true;
    } else if (c == 'f') {
      if (!parse_literal(cur, "false", error)) return false;
      out.bools[key] = false;
    } else if (c == 'n') {
      if (!parse_literal(cur, "null", error)) return false;
      // Absent and null are equivalent for flat requests.
    } else if (c == '{' || c == '[') {
      error = "nested containers are not allowed in requests";
      return false;
    } else {
      const std::size_t token_start = cur.i;
      double value = 0.0;
      if (!parse_number(cur, value, error)) return false;
      out.numbers[key] = value;
      out.number_tokens[key] = text.substr(token_start, cur.i - token_start);
    }
    cur.skip_ws();
    if (cur.consume(',')) continue;
    if (cur.consume('}')) break;
    error = "expected ',' or '}'";
    return false;
  }
  cur.skip_ws();
  if (!cur.done()) {
    error = "trailing characters after object";
    return false;
  }
  return true;
}

}  // namespace lcn::service
