#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "network/generators.hpp"
#include "reliability/sweep.hpp"
#include "scenario/scenario_io.hpp"

namespace lcn::service {

namespace {

using Clock = std::chrono::steady_clock;

int resolve_shares(int requested) {
  if (requested > 0) return requested;
  const long env = env_int("LCN_JOB_SHARES", 1);
  return env > 0 ? static_cast<int>(env) : 1;
}

/// The canonical uniform layout the SA starts from (sa.cpp initial_layout):
/// branches at cols/3 and 2*cols/3, rounded down to even.
TreeLayout default_layout(const Grid2D& grid, int b1, int b2) {
  if (b1 < 0) {
    b1 = grid.cols() / 3;
    b1 -= b1 % 2;
  }
  if (b2 < 0) {
    b2 = 2 * grid.cols() / 3;
    b2 -= b2 % 2;
  }
  return make_uniform_layout(grid, b1, b2);
}

void fill_eval_fields(JobResult& result, const EvalResult& eval) {
  result.feasible = eval.feasible;
  result.score = eval.score;
  result.p_sys = eval.p_sys;
  result.w_pump = eval.w_pump;
  result.t_max = eval.at_p.t_max;
  result.delta_t = eval.at_p.delta_t;
}

metrics::Hist job_latency_hist(JobKind kind) {
  switch (kind) {
    case JobKind::kDesign: return metrics::Hist::job_design_seconds;
    case JobKind::kEvaluate: return metrics::Hist::job_evaluate_seconds;
    case JobKind::kSweep: return metrics::Hist::job_sweep_seconds;
    case JobKind::kScenario: return metrics::Hist::job_scenario_seconds;
  }
  return metrics::Hist::job_evaluate_seconds;
}

}  // namespace

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kDesign: return "design";
    case JobKind::kEvaluate: return "evaluate";
    case JobKind::kSweep: return "sweep";
    case JobKind::kScenario: return "scenario";
  }
  return "?";
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

bool job_status_terminal(JobStatus status) {
  return status == JobStatus::kDone || status == JobStatus::kFailed ||
         status == JobStatus::kCancelled;
}

struct Scheduler::Job {
  std::uint64_t id = 0;
  JobRequest request;
  ProgressSink* sink = nullptr;
  JobStatus status = JobStatus::kQueued;
  bool deadline_hit = false;
  Clock::time_point deadline{};  ///< valid when request.timeout_seconds > 0
  std::unique_ptr<SessionContext> session;  ///< created when the job starts
  JobResult result;
};

Scheduler::Scheduler(Options options) {
  pool_width_ = std::max<std::size_t>(1, global_pool_threads());
  retain_jobs_ = static_cast<std::size_t>(
      std::max(1L, env_int("LCN_JOB_HISTORY", 1024)));
  slo_seconds_ = std::max(0.0, env_double("LCN_SLO_SECONDS", 0.0));
  const auto hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  max_running_ =
      options.max_running != 0
          ? options.max_running
          : std::max<std::size_t>(
                2, std::min<std::size_t>(4, std::max(hw, pool_width_)));
  runners_.reserve(max_running_);
  for (std::size_t i = 0; i < max_running_; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    // Jobs still queued will never run; retire them as cancelled. Running
    // jobs get their cancel flag raised and the runners join after their
    // next cancellation point unwinds.
    for (const std::uint64_t id : queue_) {
      Job* job = find_locked(id);
      if (job == nullptr) continue;
      job->status = JobStatus::kCancelled;
      job->result.status = JobStatus::kCancelled;
      job->result.error = "scheduler shut down";
    }
    queue_.clear();
    publish_gauges_locked();
    for (auto& [id, job] : jobs_) {
      if (job->status == JobStatus::kRunning && job->session != nullptr) {
        job->session->request_cancel();
      }
    }
    stop_ = true;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (std::thread& t : runners_) t.join();
  if (watchdog_.joinable()) watchdog_.join();
}

std::uint64_t Scheduler::submit(JobRequest request, ProgressSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!accepting_) {
    metrics::count(metrics::Counter::jobs_rejected);
    return 0;
  }
  const std::uint64_t id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->request = std::move(request);
  job->sink = sink;
  if (sink != nullptr) sink->bind_job(id);
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  gc_terminal_locked();
  publish_gauges_locked();
  work_cv_.notify_one();
  return id;
}

bool Scheduler::cancel(std::uint64_t id) {
  bool became_terminal = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Job* job = find_locked(id);
    if (job == nullptr || job_status_terminal(job->status)) return false;
    if (job->status == JobStatus::kQueued) {
      queue_.erase(std::remove(queue_.begin(), queue_.end(), id),
                   queue_.end());
      job->status = JobStatus::kCancelled;
      job->result.status = JobStatus::kCancelled;
      job->result.error = "cancelled before start";
      became_terminal = true;
      publish_gauges_locked();
    } else if (job->session != nullptr) {
      job->session->request_cancel();
    }
  }
  if (became_terminal) done_cv_.notify_all();
  return true;
}

JobStatus Scheduler::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  return job != nullptr ? job->status : JobStatus::kFailed;
}

JobResult Scheduler::result(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  if (job == nullptr) {
    JobResult missing;
    missing.status = JobStatus::kFailed;
    missing.error = strfmt("unknown job %llu",
                           static_cast<unsigned long long>(id));
    return missing;
  }
  JobResult out = job->result;
  out.status = job->status;
  return out;
}

JobResult Scheduler::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    const Job* job = find_locked(id);
    return job == nullptr || job_status_terminal(job->status);
  });
  const Job* job = find_locked(id);
  if (job == nullptr) {
    JobResult missing;
    missing.status = JobStatus::kFailed;
    missing.error = strfmt("unknown job %llu",
                           static_cast<unsigned long long>(id));
    return missing;
  }
  JobResult out = job->result;
  out.status = job->status;
  return out;
}

std::vector<Scheduler::JobInfo> Scheduler::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    out.push_back({id, job->request.kind, job->status, job->request.name});
  }
  return out;
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  accepting_ = false;
  done_cv_.wait(lock, [&] {
    if (!queue_.empty() || running_count_ > 0) return false;
    return true;
  });
}

Scheduler::Job* Scheduler::find_locked(std::uint64_t id) const {
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? it->second.get() : nullptr;
}

void Scheduler::gc_terminal_locked() {
  // A long-running daemon would otherwise accumulate one Job record per
  // submission forever. Clients read results promptly (wait(), the streamed
  // result line, or a 'result' query), so retiring the oldest terminal
  // entries past the LCN_JOB_HISTORY cap only drops stale history; queued
  // and running jobs are never touched.
  if (jobs_.size() <= retain_jobs_) return;
  std::size_t excess = jobs_.size() - retain_jobs_;
  for (auto it = jobs_.begin(); it != jobs_.end() && excess > 0;) {
    if (job_status_terminal(it->second->status)) {
      it = jobs_.erase(it);
      --excess;
    } else {
      ++it;
    }
  }
}

void Scheduler::publish_gauges_locked() const {
  metrics::gauge_set(metrics::Gauge::queue_depth,
                     static_cast<std::int64_t>(queue_.size()));
  metrics::gauge_set(metrics::Gauge::running_jobs,
                     static_cast<std::int64_t>(running_count_));
}

void Scheduler::rebalance_locked() {
  // Weighted fair share of the pool width over running jobs (§S22):
  // share_i = max(1, W * weight_i / total_weight). Shares are advisory caps
  // on parallel_for fan-out, so rounding the sum above W merely time-slices
  // the queue a little; correctness and determinism never depend on it.
  int total_weight = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->status == JobStatus::kRunning) {
      total_weight += resolve_shares(job->request.shares);
    }
  }
  if (total_weight <= 0) return;
  for (auto& [id, job] : jobs_) {
    if (job->status != JobStatus::kRunning || job->session == nullptr)
      continue;
    const int weight = resolve_shares(job->request.shares);
    const std::size_t share = std::max<std::size_t>(
        1, pool_width_ * static_cast<std::size_t>(weight) /
               static_cast<std::size_t>(total_weight));
    job->session->set_pool_share(share);
  }
}

void Scheduler::runner_loop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // Highest priority first, submission order within a priority.
      std::size_t pick = 0;
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        const Job* a = find_locked(queue_[i]);
        const Job* b = find_locked(queue_[pick]);
        if (a != nullptr && b != nullptr &&
            a->request.priority > b->request.priority) {
          pick = i;
        }
      }
      const std::uint64_t id = queue_[pick];
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
      job = find_locked(id);
      if (job == nullptr) continue;

      SessionConfig config;
      config.name = job->request.name;
      config.seed = job->request.seed;
      config.shares = resolve_shares(job->request.shares);
      config.private_flow_plans = job->request.private_flow_plans;
      job->session = std::make_unique<SessionContext>(id, config);
      job->session->set_progress_sink(job->sink);
      job->status = JobStatus::kRunning;
      job->result.start_order = next_start_order_++;
      if (job->request.timeout_seconds > 0.0) {
        job->deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   job->request.timeout_seconds));
      }
      ++running_count_;
      rebalance_locked();
      publish_gauges_locked();
    }

    execute(*job);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_count_;
      rebalance_locked();
      publish_gauges_locked();
    }
    done_cv_.notify_all();
  }
}

void Scheduler::watchdog_loop() {
  // Deadline monitor: a coarse 50 ms scan is plenty — deadlines are
  // second-scale and cancellation is cooperative anyway. It waits on its own
  // condition variable: sharing work_cv_ would let the watchdog swallow a
  // submit()'s notify_one and leave a queued job with no runner awake.
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    watchdog_cv_.wait_for(lock, std::chrono::milliseconds(50));
    if (stop_) return;
    const auto now = Clock::now();
    for (auto& [id, job] : jobs_) {
      if (job->status != JobStatus::kRunning || job->deadline_hit) continue;
      if (job->request.timeout_seconds <= 0.0 || job->session == nullptr)
        continue;
      if (now >= job->deadline) {
        job->deadline_hit = true;
        job->session->request_cancel();
        metrics::count(metrics::Counter::deadline_misses);
      }
    }
  }
}

void Scheduler::execute(Job& job) {
  SessionContext& session = *job.session;
  // The runner thread is the job's coordinator: install the session context
  // here and every parallel_for below propagates it to the pool workers.
  SessionScope scope(session);
  WallTimer timer;
  JobStatus final_status = JobStatus::kDone;
  std::string error;
  // Accumulate into a local result and publish it into job.result only under
  // mutex_ at the end: connection threads may copy job.result via result()
  // at any time while the job runs, so unlocked writes would race.
  JobResult local;

  if (job.sink != nullptr) {
    job.sink->emit("job_started",
                   strfmt("\"job\":%llu,\"kind\":\"%s\"",
                          static_cast<unsigned long long>(job.id),
                          job_kind_name(job.request.kind))
                       .c_str());
  }

  try {
    throw_if_cancelled();  // cancelled while still queued-to-running
    const JobRequest& req = job.request;
    BenchmarkCase bench = req.custom_case != nullptr
                              ? *req.custom_case
                              : make_iccad_case(req.case_id);
    const bool p2 = req.objective == DesignObjective::kThermalGradient;
    if (p2 && bench.constraints.w_pump_max <= 0.0) {
      bench.constraints.w_pump_max = problem2_pump_budget(bench);
    }
    TreeTopologyOptimizer optimizer(bench, req.objective, req.seed);

    switch (req.kind) {
      case JobKind::kDesign: {
        const auto stages = !req.custom_stages.empty() ? req.custom_stages
                            : p2 ? default_p2_stages(req.scale)
                                 : default_p1_stages(req.scale);
        const DesignOutcome outcome = optimizer.run(stages);
        fill_eval_fields(local, outcome.eval);
        local.direction = outcome.direction;
        local.design_hash = outcome.network.content_hash();
        local.network_text = outcome.network.to_text();
        local.evaluations = outcome.evaluations;
        break;
      }
      case JobKind::kEvaluate: {
        const TreeLayout layout =
            default_layout(bench.problem.grid, req.b1, req.b2);
        const CoolingNetwork net = optimizer.realize(layout, req.direction);
        const EvalResult eval = optimizer.evaluate_network(net, req.sim);
        fill_eval_fields(local, eval);
        local.direction = req.direction;
        local.design_hash = net.content_hash();
        local.evaluations = 1;
        break;
      }
      case JobKind::kSweep: {
        const TreeLayout layout =
            default_layout(bench.problem.grid, req.b1, req.b2);
        const CoolingNetwork net = optimizer.realize(layout, req.direction);
        const EvalResult nominal = optimizer.evaluate_network(net, req.sim);
        if (!nominal.feasible) {
          throw RuntimeError("sweep: nominal design is infeasible");
        }
        fill_eval_fields(local, nominal);
        local.direction = req.direction;
        local.design_hash = net.content_hash();
        SweepOptions options;
        options.scenarios = req.scenarios;
        options.seed = req.seed;
        options.sim = req.sim;
        const SweepReport report =
            run_sweep(bench.problem, net, bench.constraints, nominal.p_sys,
                      options);
        local.p_exceed_t_max = report.p_exceed_t_max;
        local.p_exceed_delta_t = report.p_exceed_delta_t;
        local.scenarios = report.outcomes.size();
        local.unrecoverable = report.unrecoverable;
        local.evaluations = report.outcomes.size();
        break;
      }
      case JobKind::kScenario: {
        const TreeLayout layout =
            default_layout(bench.problem.grid, req.b1, req.b2);
        const CoolingNetwork net = optimizer.realize(layout, req.direction);
        const ScenarioConfig config =
            req.custom_scenario != nullptr
                ? *req.custom_scenario
                : parse_scenario_text(req.scenario_text);
        // run_scenario mirrors every step to the session's progress sink as
        // a scenario_step event, so a streaming submit sees the trajectory.
        const ScenarioResult trajectory =
            run_scenario(bench.problem, net, config);
        local.feasible = true;
        local.peak_t_max = trajectory.peak_t_max;
        local.peak_delta_t = trajectory.peak_delta_t;
        local.final_inlet = trajectory.final_inlet;
        local.scenario_steps = static_cast<std::size_t>(trajectory.steps);
        if (!trajectory.samples.empty()) {
          const ScenarioSample& last = trajectory.samples.back();
          local.t_max = last.t_max;
          local.delta_t = last.delta_t;
          local.p_sys = last.p_delivered;
          local.w_pump = last.w_pump;
        }
        local.direction = req.direction;
        local.design_hash = net.content_hash();
        local.evaluations = trajectory.samples.size();
        break;
      }
    }
  } catch (const Cancelled&) {
    final_status = JobStatus::kCancelled;
    error = job.deadline_hit ? "deadline exceeded" : "cancelled";
  } catch (const std::exception& e) {
    final_status = JobStatus::kFailed;
    error = e.what();
  } catch (...) {
    final_status = JobStatus::kFailed;
    error = "unknown error";
  }

  if (final_status == JobStatus::kCancelled) {
    instrument::add_job_cancelled();
  } else {
    instrument::add_job_completed();
  }

  local.seconds = timer.seconds();
  // Billed under the session scope, so the job's own shard carries its
  // latency too; snapshotted below so the result reflects it.
  if (metrics::enabled()) {
    metrics::observe(job_latency_hist(job.request.kind), local.seconds);
  }
  if (slo_seconds_ > 0.0 && local.seconds > slo_seconds_) {
    metrics::count(metrics::Counter::slo_breaches);
  }
  local.error = error;
  local.counters = session.counters().snapshot();
  local.metrics = session.metrics().snapshot();
  local.manifest = session.manifest_json();
  local.status = final_status;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    local.start_order = job.result.start_order;
    job.result = std::move(local);
    job.status = final_status;
  }
  if (job.sink != nullptr) {
    job.sink->emit("job_done",
                   strfmt("\"job\":%llu,\"status\":\"%s\"",
                          static_cast<unsigned long long>(job.id),
                          job_status_name(final_status))
                       .c_str());
  }
}

}  // namespace lcn::service
