// The lcn_serve daemon (DESIGN.md §S22, layer 3 of the serving stack).
//
// Speaks the newline-delimited JSON protocol (service/protocol.hpp) over a
// Unix-domain or loopback TCP socket. One reader thread per connection;
// writes to a connection are serialized by a per-connection mutex so
// progress events from pool threads never interleave mid-line with
// request/response traffic.
//
// Address syntax (LCN_SERVE_ADDR or ServerOptions::address):
//   unix:/path/to.sock      Unix-domain stream socket (path unlinked first)
//   tcp:host:port           loopback/TCP; port 0 binds an ephemeral port
// Default: tcp:127.0.0.1:7733.
//
// Shutdown: request_shutdown() (wired to SIGTERM/SIGINT by lcn_serve) stops
// the accept loop; run() then drains the scheduler — running and queued jobs
// finish, their final results are still delivered to streaming clients —
// before closing connections and returning.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/scheduler.hpp"

namespace lcn::service {

struct ServerOptions {
  /// "" resolves LCN_SERVE_ADDR, then the default loopback address.
  std::string address;
  /// Scheduler lanes (0 = Scheduler default).
  std::size_t max_running = 0;
};

class Server {
 public:
  /// Binds and listens; throws lcn::RuntimeError when the address cannot be
  /// parsed or bound.
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound address in the same syntax as the input, with the actual port
  /// substituted for tcp:...:0.
  const std::string& address() const { return address_; }

  /// Accept/serve until request_shutdown(), then drain and return.
  void run();

  /// Async-signal-safe shutdown request (sets an atomic; run() polls it).
  void request_shutdown() { shutdown_.store(true, std::memory_order_relaxed); }

  Scheduler& scheduler() { return scheduler_; }

 private:
  struct Connection;
  class StreamSink;

  void serve_connection(const std::shared_ptr<Connection>& conn);
  /// Handle one request line; returns false when the connection should close.
  bool handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  /// Join reader threads that have exited and drop sinks whose job has
  /// emitted its final event. Called with mutex_ held (accept-loop tick).
  void reap_locked();

  std::string address_;
  int listen_fd_ = -1;
  std::string unix_path_;  ///< unlink target for unix sockets, "" otherwise
  std::atomic<bool> shutdown_{false};

  std::mutex mutex_;  ///< guards connections_, threads_, sinks_
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;
  /// Ids of reader threads that finished serving; the accept loop joins and
  /// erases them so a churny daemon does not hoard dead thread handles.
  std::vector<std::thread::id> finished_threads_;
  /// Sinks for streaming jobs, keyed by job id. A running job may emit into
  /// its sink long after the client disconnected (the sink then writes into
  /// a closed connection, which is a no-op); once the job's final event has
  /// been delivered the accept loop garbage-collects the entry.
  std::map<std::uint64_t, std::unique_ptr<StreamSink>> sinks_;

  /// Declared last so it is destroyed first: ~Scheduler joins the runners
  /// before sinks_ and connections_ go away, so a still-running job can
  /// never emit into a freed sink during ~Server.
  Scheduler scheduler_;
};

}  // namespace lcn::service
