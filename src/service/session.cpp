#include "service/session.hpp"

#include "common/manifest.hpp"
#include "common/strings.hpp"
#include "service/json.hpp"

namespace lcn::service {

SessionContext::SessionContext(std::uint64_t id, SessionConfig config)
    : id_(id), config_(std::move(config)) {
  if (config_.private_flow_plans) {
    flow_plans_ = std::make_unique<FlowPlanCache>();
  }
  ctx_.counters = &counters_;
  ctx_.metrics = &metrics_;
  ctx_.cancel = &cancel_;
  ctx_.pool_share = &pool_share_;
  ctx_.flow_plans = flow_plans_.get();
}

std::string SessionContext::manifest_json() const {
  const std::string run = run_manifest().json();
  // Splice the session identity into the front of the process manifest
  // object: {"session":N,...,<run fields>}.
  std::string out = strfmt(
      "{\"session\":%llu,\"name\":\"%s\",\"seed\":%llu,"
      "\"shares\":%d,\"private_flow_plans\":%s",
      static_cast<unsigned long long>(id_), json_escape(config_.name).c_str(),
      static_cast<unsigned long long>(config_.seed), config_.shares,
      config_.private_flow_plans ? "true" : "false");
  if (run.size() > 2 && run.front() == '{') {
    out += ',';
    out += run.substr(1);
  } else {
    out += '}';
  }
  return out;
}

}  // namespace lcn::service
