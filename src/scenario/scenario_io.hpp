// NDJSON scenario files and sample-row formatting for the CLI/service layer
// (DESIGN.md §S23). A scenario file is newline-delimited flat JSON — the
// same dependency-free dialect the serving protocol speaks (§S22):
//
//   {"type":"scenario","model":"2rm","dt":1e-3,"steps":200,"scale":1.0,...}
//   {"type":"periodic","period":0.1,"duty":0.5,"low":0.5,"high":1.0}
//   {"type":"bursty","idle_scale":0.5,"burst_scale":1.5,"seed":7,...}
//   {"type":"phase","scales":"1.0,2.0","duration":0.05,"pressure":6000}
//   {"type":"pump","kind":"thermostat","t_target":345,"gain":500,...}
//   {"type":"fault","kind":"blockage","onset":0.05,"row":10,"col":10,...}
//
// The first line must be the `scenario` header; every later line refines it.
// `phase` lines switch the trace to kPhases and append in file order; a
// `pressure` field on every phase line builds a kSchedule pump policy.
// Blank lines and lines starting with '#' are skipped.
#pragma once

#include <string>

#include "scenario/scenario.hpp"

namespace lcn {

/// Parse an NDJSON scenario description. Throws lcn::RuntimeError with a
/// line-numbered message on malformed input.
ScenarioConfig parse_scenario_text(const std::string& text);

/// Read and parse a scenario file (throws lcn::RuntimeError on IO errors).
ScenarioConfig load_scenario_file(const std::string& path);

/// Column header matching scenario_sample_csv(), no trailing newline.
std::string scenario_csv_header();

/// One CSV row per sample, no trailing newline.
std::string scenario_sample_csv(const ScenarioSample& sample);

/// One flat JSON object per sample (for JSONL streams), no trailing newline.
std::string scenario_sample_json(const ScenarioSample& sample);

}  // namespace lcn
